// Command vdecode decodes a vcprof bitstream container (produced by
// vencode -bitstream) and reports the decoded sequence, proving the
// stream is genuinely decodable rather than a size estimate.
//
// Usage:
//
//	vencode -encoder svt-av1 -clip game1 -crf 40 -bitstream game1.vcbs
//	vdecode game1.vcbs
package main

import (
	"flag"
	"fmt"
	"hash/crc32"
	"os"

	"vcprof/internal/encoders"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vdecode:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: vdecode <bitstream-file>")
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	frames, err := encoders.DecodeBitstream(data)
	if err != nil {
		return err
	}
	fmt.Printf("container    %d bytes\n", len(data))
	fmt.Printf("frames       %d\n", len(frames))
	if len(frames) > 0 {
		fmt.Printf("resolution   %dx%d\n", frames[0].Width(), frames[0].Height())
	}
	for _, f := range frames {
		sum := crc32.ChecksumIEEE(f.Y.Pix)
		sum = crc32.Update(sum, crc32.IEEETable, f.U.Pix)
		sum = crc32.Update(sum, crc32.IEEETable, f.V.Pix)
		fmt.Printf("  frame %2d   crc32 %08x\n", f.Index, sum)
	}
	return nil
}
