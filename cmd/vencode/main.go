// Command vencode encodes a procedural vbench clip with one of the five
// encoder models and reports quality, rate, timing and the dynamic
// instruction mix. With -trace it writes the encode's deterministic
// frame/stage span trace as Chrome trace-event JSON; with -optrace it
// records a micro-op window (the Pin substitute) for cmd/uarchsim and
// cmd/cbpsim; with -profile it prints the gprof-style flat profile.
//
// Usage:
//
//	vencode -encoder svt-av1 -clip game1 -crf 35 -preset 4
//	vencode -encoder x265 -clip hall -crf 28 -preset 5 -threads 4
//	vencode -encoder svt-av1 -clip game1 -crf 35 -trace game1.json -stats
//	vencode -encoder svt-av1 -clip game1 -crf 63 -preset 8 -optrace game1.vctr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"vcprof/internal/encoders"
	"vcprof/internal/obs"
	"vcprof/internal/perf"
	"vcprof/internal/trace"
	"vcprof/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vencode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		encName  = flag.String("encoder", "svt-av1", "encoder family: svt-av1, x264, x265, libaom, libvpx-vp9")
		clipName = flag.String("clip", "game1", "vbench clip name (see -list)")
		crf      = flag.Int("crf", 35, "constant rate factor (family range)")
		preset   = flag.Int("preset", 4, "speed preset (family range and direction)")
		threads  = flag.Int("threads", 1, "worker threads")
		frames   = flag.Int("frames", 8, "frames to encode")
		scale    = flag.Int("scale", 8, "linear resolution divisor")
		trOut    = flag.String("trace", "", "write the frame/stage span trace (Chrome trace-event JSON, virtual ticks) to this file")
		stats    = flag.Bool("stats", false, "print obs counters and the self-profile table")
		traceOut = flag.String("optrace", "", "write a halfway micro-op window to this file")
		brOut    = flag.String("branchtrace", "", "write a compact branch-only trace (VCBR) to this file")
		winOps   = flag.Uint64("window", perf.DefaultWindowOps, "micro-op window length for -optrace")
		profile  = flag.Bool("profile", false, "print the flat function profile")
		bsOut    = flag.String("bitstream", "", "write the decodable container to this file")
		y4mIn    = flag.String("y4m", "", "encode this .y4m file instead of a procedural clip")
		kbps     = flag.Float64("kbps", 0, "ABR target bitrate (0 = constant-quality CRF mode)")
		scenecut = flag.Bool("scenecut", false, "insert keyframes at detected scene changes")
		list     = flag.Bool("list", false, "list vbench clips and exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, m := range video.Vbench() {
			fmt.Println(m.String())
		}
		return nil
	}
	enc, err := encoders.New(encoders.Family(*encName))
	if err != nil {
		return err
	}
	var clip *video.Clip
	if *y4mIn != "" {
		f, err := os.Open(*y4mIn)
		if err != nil {
			return err
		}
		clip, err = video.ReadY4M(f, *y4mIn)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		meta, err := video.LookupClip(*clipName)
		if err != nil {
			return err
		}
		clip, err = video.Generate(meta, video.GenerateOptions{Frames: *frames, ScaleDiv: *scale})
		if err != nil {
			return err
		}
	}
	opts := encoders.Options{CRF: *crf, Preset: *preset, Threads: *threads,
		KeepBitstream: *bsOut != "",
		TargetKbps:    *kbps,
		SceneCut:      *scenecut,
		NewWorkerCtx:  func(int) *trace.Ctx { return trace.New() }}
	res, err := enc.Encode(ctx, clip, opts)
	if err != nil {
		return err
	}

	fmt.Printf("encoder      %s (crf=%d preset=%d threads=%d)\n", *encName, *crf, *preset, *threads)
	fmt.Printf("input        %s %dx%d x%d frames\n", clip.Meta.Name, clip.Meta.Width, clip.Meta.Height, len(clip.Frames))
	fmt.Printf("bitstream    %d bytes (%.1f kbps)\n", res.Bytes, res.BitrateKbps)
	fmt.Printf("quality      %.2f dB PSNR\n", res.PSNR)
	fmt.Printf("wall time    %.1f ms\n", res.Wall.Seconds()*1000)
	fmt.Printf("instructions %d\n", res.Insts)
	m := res.Mix
	fmt.Printf("mix          branch %.1f%%  load %.1f%%  store %.1f%%  avx %.1f%%  sse %.1f%%  other %.1f%%\n",
		m.Percent(trace.OpBranch), m.Percent(trace.OpLoad), m.Percent(trace.OpStore),
		m.Percent(trace.OpAVX), m.Percent(trace.OpSSE), m.Percent(trace.OpOther))
	fmt.Printf("partitions  ")
	for sh, n := range res.Shapes {
		if n > 0 {
			fmt.Printf(" %s:%d", encoders.Shape(sh), n)
		}
	}
	if res.SkipBlocks > 0 {
		fmt.Printf("  skip:%d", res.SkipBlocks)
	}
	fmt.Println()

	if *trOut != "" || *stats {
		sess := obs.NewSession()
		tr := sess.Lane(fmt.Sprintf("vencode/%s/%s", *encName, clip.Meta.Name))
		encoders.ObserveResult(tr, res)
		if *trOut != "" {
			f, err := os.Create(*trOut)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, sess); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("spantrace    %d spans → %s\n", tr.SpanCount(), *trOut)
		}
		if *stats {
			fmt.Println()
			fmt.Print(obs.RenderCounters(true))
			fmt.Print(obs.RenderProfile(sess.Profile(), 20))
		}
	}

	if *bsOut != "" {
		if err := os.WriteFile(*bsOut, res.Bitstream, 0o644); err != nil {
			return err
		}
		fmt.Printf("container    %d bytes → %s\n", len(res.Bitstream), *bsOut)
	}

	if *profile {
		prof, err := perf.Profile(ctx, enc, clip, encoders.Options{CRF: *crf, Preset: *preset})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(prof.Render())
	}

	if *traceOut != "" || *brOut != "" {
		rec, total, err := perf.RecordWindow(ctx, enc, clip, encoders.Options{CRF: *crf, Preset: *preset}, 0.5, *winOps)
		if err != nil {
			return err
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := trace.WriteTrace(f, rec.Ops); err != nil {
				f.Close()
				return err
			}
			f.Close()
			fmt.Printf("optrace      %d ops (window at %d/%d) → %s\n", len(rec.Ops), rec.Start, total, *traceOut)
		}
		if *brOut != "" {
			f, err := os.Create(*brOut)
			if err != nil {
				return err
			}
			if err := trace.WriteBranchTrace(f, rec.Ops, uint64(len(rec.Ops))); err != nil {
				f.Close()
				return err
			}
			f.Close()
			fmt.Printf("branchtrace  %d branches → %s\n", len(rec.Branches()), *brOut)
		}
	}
	return nil
}
