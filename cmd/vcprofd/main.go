// Command vcprofd serves the measurement engine over HTTP: clients POST
// encode or experiment job specs, poll their status, and fetch results
// from a content-addressed disk store that survives restarts. Identical
// jobs — concurrent or repeated — are computed once.
//
// Usage:
//
//	vcprofd -store /tmp/vcprof-store            # listen on :8791
//	vcprofd -addr 127.0.0.1:0 -j 8 -queue 256   # random port, bigger pool
//	vcprofd -trace                              # enable /debug/trace spans
//
// The daemon prints "listening on <host:port>" once the socket is
// bound (scripts parse this to discover a random port), serves until
// SIGINT/SIGTERM, then drains: new submissions get 503 while queued and
// in-flight jobs finish under -drain, and the store index is flushed so
// the next start reuses the warm cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vcprof/internal/obs"
	"vcprof/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcprofd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8791", "listen address (host:port; port 0 picks a free one)")
		storeDir = flag.String("store", "vcprofd-store", "result store directory")
		storeMax = flag.Int64("store-max", 0, "store size budget in bytes (0 = 1 GiB)")
		workers  = flag.Int("j", 4, "worker pool size")
		queueCap = flag.Int("queue", 64, "queued-job bound before submissions get 429")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-job execution budget")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		traceOn  = flag.Bool("trace", false, "record worker spans; export at /debug/trace")
		sample   = flag.Duration("sample", 250*time.Millisecond, "telemetry time-series sampling interval (0 disables /v1/telemetry/series)")
		shard    = flag.Bool("shard", true, "run jobs on the work-stealing shard scheduler (false = serial per-worker execution)")
		shardN   = flag.Int("shard-workers", 0, "shard pool size (0 = same as -j)")
		stealSed = flag.Uint64("steal-seed", 0, "shard-scheduler victim-selection seed (results are identical for any value; 0 = 1)")
		admit    = flag.String("admission", "sjf", "queue policy: sjf (shortest estimated job first within a priority) or fifo")
		name     = flag.String("name", "", "shard name echoed by GET /v1/registry (for vcgate clusters; default \"vcprofd\")")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sess *obs.Session
	if *traceOn {
		sess = obs.NewSession()
	}
	// The server's base context is NOT the signal context: jobs must
	// survive the start of a drain and only die when the drain budget
	// runs out (Shutdown cancels the base context itself).
	srv, err := service.NewServer(context.Background(), service.Config{
		StoreDir:        *storeDir,
		StoreMaxBytes:   *storeMax,
		Workers:         *workers,
		QueueCap:        *queueCap,
		DefaultTimeout:  *timeout,
		DrainTimeout:    *drain,
		Obs:             sess,
		SampleInterval:  *sample,
		ShardWorkers:    *shardN,
		DisableSharding: !*shard,
		StealSeed:       *stealSed,
		Admission:       *admit,
		ShardName:       *name,
	})
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	st := srv.Store().Stats()
	fmt.Fprintf(os.Stderr, "store %s: %d objects, %d bytes\n", *storeDir, st.Objects, st.Bytes)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	fmt.Fprintln(os.Stderr, "draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job pipeline first — the HTTP surface stays up so
	// clients see 503 on submit and can still poll and fetch results of
	// jobs completed during the drain.
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "vcprofd: drain:", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "bye")
	return nil
}
