// Command vclive is the deterministic live-session load generator and
// study driver for the internal/live engine. A seeded PRNG draws a
// fixed session mix over the clip catalog × encoder families × ladder
// shapes × mid-stream preset switches; -c workers each drive one
// session at a time — create, feed the arrival watermark in batches,
// eos — either in-process (-addr empty) or over the vcprofd/vcgate
// session protocol. Every pass with the same seed and count generates
// byte-identical specs, and the tool folds every session digest into
// one order-independent digest: the in-process run, a single daemon,
// and a gate with a shard dying mid-run must all print the same line
// or the serving layer broke determinism.
//
// Usage:
//
//	vclive -n 8 -c 4                      # in-process engine
//	vclive -addr 127.0.0.1:8791 -n 8 -c 4 # vcprofd or vcgate
//	vclive -ladder-compare                # ABR ladder sharing saving
//	vclive -study                         # live-vs-VOD top-down table
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcprof/internal/cluster"
	"vcprof/internal/encoders"
	"vcprof/internal/live"
	"vcprof/internal/sched"
	"vcprof/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vclive:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "", "vcprofd/vcgate address (host:port); empty runs the engine in-process")
		n        = flag.Int("n", 8, "total sessions to complete")
		conc     = flag.Int("c", 4, "closed-loop concurrency (in-flight sessions)")
		seed     = flag.Uint64("seed", 1, "session-mix seed")
		frames   = flag.Int("frames", 16, "frames per session")
		gop      = flag.Int("gop", 8, "GOP size (keyframe cadence and splice granularity)")
		fps      = flag.Int("fps", 30, "feed rate (frames per second on the virtual clock)")
		div      = flag.Int("div", 8, "resolution divisor per session")
		feed     = flag.Int("feed", 8, "frames per feed batch (arrival watermark step)")
		swEvery  = flag.Int("switch-every", 4, "give every k-th session a mid-stream preset switch (0 = off)")
		bench    = flag.Bool("bench", false, "print benchjson-compatible Benchmark lines")
		ladder   = flag.Bool("ladder-compare", false, "run the ABR ladder-sharing comparison (share on vs off) and exit")
		study    = flag.Bool("study", false, "run the live-vs-VOD top-down study and exit")
		studyFam = flag.String("study-family", "svt-av1", "family for -study / -ladder-compare")
	)
	flag.Parse()
	if *ladder || *study {
		if _, err := encoders.New(encoders.Family(*studyFam)); err != nil {
			return err
		}
	}
	if *ladder {
		return runLadderCompare(*studyFam, *frames, *gop, *fps, *div, *bench)
	}
	if *study {
		return runStudy(*studyFam, *frames, *gop, *fps, *div)
	}
	if *n < 1 || *conc < 1 || *feed < 1 {
		return fmt.Errorf("-n, -c and -feed must be positive")
	}

	specs := buildMix(*seed, *n, *frames, *gop, *fps, *div, *swEvery)

	var drive func(i int) (sessionOutcome, error)
	if *addr == "" {
		// One shared work-stealing pool for the whole run: the
		// schedule-invariance contract says its worker count and seed
		// cannot change a byte of any digest.
		pool := sched.NewPool(sched.Config{Workers: *conc, Seed: *seed})
		defer pool.Close()
		drive = func(i int) (sessionOutcome, error) {
			return driveLocal(&specs[i], live.Config{Pool: pool}, *feed)
		}
	} else {
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		client := &http.Client{Timeout: 5 * time.Minute}
		drive = func(i int) (sessionOutcome, error) {
			return driveRemote(client, base, &specs[i], *feed)
		}
	}

	var (
		next     atomic.Int64
		failures atomic.Int64
		mu       sync.Mutex
		firstErr error
		digests  = make([][32]byte, *n)
		outcomes = make([]sessionOutcome, *n)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				out, err := drive(i)
				if err != nil {
					failures.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("session %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				outcomes[i] = out
				// The fold slot is the session index, so the combined
				// digest is independent of worker interleaving.
				digests[i] = sha256.Sum256([]byte(out.digest))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d/%d sessions failed; first: %w", f, *n, firstErr)
	}

	var misses, droppedFrames, gops, degrades int
	for _, out := range outcomes {
		misses += out.stats.Misses
		droppedFrames += out.stats.Dropped
		gops += out.stats.GOPs
		degrades += out.stats.DegradeTotal
	}
	fmt.Printf("vclive: %d sessions ok in %.2fs (%.1f sessions/s, c=%d)\n",
		*n, wall.Seconds(), float64(*n)/wall.Seconds(), *conc)
	fmt.Printf("gops %d, deadline-misses %d, dropped-frames %d, degrade-steps %d\n",
		gops, misses, droppedFrames, degrades)
	fmt.Printf("digest %s\n", cluster.FoldDigest(digests))

	if *bench {
		fmt.Printf("BenchmarkLiveSession %d %d ns/op\n", *n, wall.Nanoseconds()/int64(*n))
		if gops > 0 {
			fmt.Printf("BenchmarkLiveGOP %d %d ns/op\n", gops, wall.Nanoseconds()/int64(gops))
		}
	}
	return nil
}

// sessionOutcome is what one driven session contributes to the run
// report: its folded digest and final stats.
type sessionOutcome struct {
	digest string
	stats  live.Stats
}

// buildMix derives the session list from the seed: a pure function, so
// every pass offers the same sessions. Every flag-gated feature draws
// its randomness unconditionally, so toggling a flag never shifts the
// stream for the sessions it does not touch.
func buildMix(seed uint64, n, frames, gop, fps, div, swEvery int) []live.SessionSpec {
	clips := video.Vbench()
	fams := encoders.Families()
	rng := splitmix{state: seed}
	specs := make([]live.SessionSpec, n)
	for i := range specs {
		fam := fams[int(rng.next()%uint64(len(fams)))]
		clip := clips[int(rng.next()%uint64(len(clips)))].Name
		enc := encoders.MustNew(fam)
		lo, hi := enc.CRFRange()
		// Four ladder anchor points spread across the family's CRF
		// range; one is the base rung, up to two more ride along.
		points := [4]int{}
		for k := range points {
			points[k] = lo + k*(hi-lo)/4
		}
		base := int(rng.next() % 4)
		nRungs := int(rng.next() % 3) // 0..2 extra rungs
		var rungs []int
		for k := 1; k <= nRungs; k++ {
			rungs = append(rungs, points[(base+k)%4])
		}
		plo, phi, reversed := enc.PresetRange()
		// Live feeds run near the family's fast end: the calibrated mix
		// must meet the feed rate with zero deadline misses, which the
		// slow half of the preset range cannot.
		quarter := (phi - plo) / 4
		var preset int
		if reversed {
			preset = plo + quarter
		} else {
			preset = phi - quarter
		}
		specs[i] = live.SessionSpec{
			Clip: clip, Frames: frames, Div: div,
			Family: string(fam), CRF: points[base], Preset: preset,
			GOP: gop, FPS: fps,
			Rungs: rungs, Share: len(rungs) > 0,
		}
		// The switch draw always happens so -switch-every never shifts
		// the mix; every k-th session actually takes it — a same-family
		// preset step at a mid-stream GOP boundary, kept in the fast
		// half of the range for the same deadline reason.
		swGOP := 1 + int(rng.next()%2)
		swOff := int(rng.next() % uint64(quarter+1))
		var swPreset int
		if reversed {
			swPreset = plo + swOff
		} else {
			swPreset = phi - swOff
		}
		if swEvery > 0 && (i+1)%swEvery == 0 {
			specs[i].Switches = []live.Switch{{
				AtGOP: swGOP, Family: string(fam), CRF: points[base], Preset: swPreset,
			}}
		}
		specs[i].Normalize()
	}
	return specs
}

// driveLocal runs one session in-process: the baseline every remote
// topology must match byte for byte.
func driveLocal(spec *live.SessionSpec, cfg live.Config, batch int) (sessionOutcome, error) {
	s, err := live.New(*spec, cfg)
	if err != nil {
		return sessionOutcome{}, err
	}
	ctx := context.Background()
	for fed := 0; fed < spec.Frames; {
		fed += batch
		if fed >= spec.Frames {
			if _, err := s.Feed(ctx, batch, true); err != nil {
				return sessionOutcome{}, err
			}
			break
		}
		if _, err := s.Feed(ctx, batch, false); err != nil {
			return sessionOutcome{}, err
		}
	}
	return sessionOutcome{digest: s.Digest(), stats: s.Stats()}, nil
}

// The daemon/gate session wire forms (mirrors internal/service).
type wireCreate struct {
	ID   string           `json:"id"`
	Key  string           `json:"key"`
	Spec live.SessionSpec `json:"spec"`
}

type wireFeed struct {
	ID    string           `json:"id"`
	GOPs  []live.GOPResult `json:"gops"`
	Stats live.Stats       `json:"stats"`
}

// driveRemote drives one session over the HTTP protocol: create, then
// absolute arrival watermarks in batches, eos on the last. The digests
// come back per GOP and fold client-side.
func driveRemote(client *http.Client, base string, spec *live.SessionSpec, batch int) (sessionOutcome, error) {
	var created wireCreate
	if err := postJSON(client, base+"/v1/sessions",
		map[string]any{"spec": spec}, http.StatusCreated, &created); err != nil {
		return sessionOutcome{}, fmt.Errorf("create: %w", err)
	}
	var ds [][32]byte
	var last wireFeed
	for fed := 0; ; {
		fed += batch
		eos := fed >= spec.Frames
		if eos {
			fed = spec.Frames
		}
		err := postJSON(client, base+"/v1/sessions/"+created.ID+"/frames",
			map[string]any{"fed": fed, "eos": eos}, http.StatusOK, &last)
		if err != nil {
			return sessionOutcome{}, fmt.Errorf("feed %d: %w", fed, err)
		}
		for _, g := range last.GOPs {
			raw, err := hex.DecodeString(g.Digest)
			if err != nil || len(raw) != 32 {
				return sessionOutcome{}, fmt.Errorf("bad wire digest %q", g.Digest)
			}
			var d [32]byte
			copy(d[:], raw)
			ds = append(ds, d)
		}
		if eos {
			break
		}
	}
	if !last.Stats.Done {
		return sessionOutcome{}, fmt.Errorf("session not done after eos: %+v", last.Stats)
	}
	return sessionOutcome{digest: live.SessionDigest(ds), stats: last.Stats}, nil
}

func postJSON(client *http.Client, url string, body any, want int, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

// ladderSpec is the fixed operating point the comparison and the study
// run: a 4-rung ladder at the family's default-ish point, heavy enough
// that sharing has real work to elide.
func ladderSpec(family string, frames, gop, fps, div int) live.SessionSpec {
	enc := encoders.MustNew(encoders.Family(family))
	lo, hi := enc.CRFRange()
	// Mid-range rungs one step apart — the quality band real ABR
	// ladders occupy, where the shared motion/intra analysis is the
	// dominant per-rung cost (extreme-CRF rungs dilute the saving).
	base := lo + 4*(hi-lo)/9
	step := (hi - lo) / 8
	plo, phi, reversed := enc.PresetRange()
	fastest := phi
	if reversed {
		fastest = plo
	}
	return live.SessionSpec{
		Clip: "game1", Frames: frames, Div: div,
		Family: family, CRF: base, Preset: fastest,
		GOP: gop, FPS: fps,
		Rungs: []int{base + step, base + 2*step, base + 3*step},
		Share: true,
	}
}

// runLadderCompare encodes the same 4-rung session with analysis
// sharing on and off and reports the instruction saving. The two runs
// must produce byte-identical digests and output bytes — sharing
// changes cost, never content.
func runLadderCompare(family string, frames, gop, fps, div int, bench bool) error {
	spec := ladderSpec(family, frames, gop, fps, div)
	shared, err := driveLocal(&spec, live.Config{}, spec.Frames)
	if err != nil {
		return err
	}
	spec.Share = false
	solo, err := driveLocal(&spec, live.Config{}, spec.Frames)
	if err != nil {
		return err
	}
	saving := 100 * (1 - float64(shared.stats.Insts)/float64(solo.stats.Insts))
	fmt.Printf("ladder-compare %s: rungs=%d shared-insts=%d solo-insts=%d saving=%.1f%%\n",
		family, shared.stats.Rungs, shared.stats.Insts, solo.stats.Insts, saving)
	fmt.Printf("ladder-compare bytes-equal=%v digest-equal=%v (shared %d bytes, solo %d bytes)\n",
		shared.stats.Bytes == solo.stats.Bytes, shared.digest == solo.digest,
		shared.stats.Bytes, solo.stats.Bytes)
	if bench {
		fmt.Printf("BenchmarkLadderSharedInsts %d %d ns/op\n", spec.Frames, int64(shared.stats.Insts))
		fmt.Printf("BenchmarkLadderSoloInsts %d %d ns/op\n", spec.Frames, int64(solo.stats.Insts))
	}
	if shared.digest != solo.digest || shared.stats.Bytes != solo.stats.Bytes {
		return fmt.Errorf("ladder sharing changed output bytes")
	}
	return nil
}

// runStudy prints the live-vs-VOD microarchitectural comparison for
// one session under deadline pressure (EXPERIMENTS.md §live).
func runStudy(family string, frames, gop, fps, div int) error {
	spec := ladderSpec(family, frames, gop, fps, div)
	spec.Rungs, spec.Share = nil, false
	enc := encoders.MustNew(encoders.Family(family))
	plo, phi, reversed := enc.PresetRange()
	// The study runs a calibrated pressure config, not the load-mix
	// flags: a preset four effort steps from the family's fastest at a
	// 240 fps feed with a half-GOP deadline — overloaded enough that
	// the degrade policy engages and the schedule walks more than one
	// operating point.
	if reversed {
		spec.Preset = plo + 4
	} else {
		spec.Preset = phi - 4
	}
	spec.Frames, spec.Div, spec.GOP = 24, 8, 8
	spec.FPS, spec.Deadline = 240, 4
	rep, err := live.Study(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("study %s p%d crf%d: frames=%d gop=%d fps=%d deadline=%d\n",
		spec.Family, spec.Preset, spec.CRF, spec.Frames, spec.GOP, spec.FPS, spec.Deadline)
	fmt.Printf("live schedule: %d operating points, misses=%d dropped=%d degrade-steps=%d\n",
		len(rep.Live), rep.Misses, rep.Dropped, rep.Degrade)
	for _, p := range rep.Live {
		fmt.Printf("  point %s p%d crf%d: %d frames, IPC %.3f, retiring %.1f%% frontend %.1f%% backend %.1f%% badspec %.1f%%\n",
			p.Family, p.Preset, p.CRF, p.Frames, p.C.IPC,
			100*p.C.TopDown.Retiring, 100*p.C.TopDown.Frontend,
			100*p.C.TopDown.Backend, 100*p.C.TopDown.BadSpec)
	}
	fmt.Printf("live (weighted): IPC %.3f, retiring %.1f%% frontend %.1f%% backend %.1f%% (mem %.1f%% core %.1f%%) badspec %.1f%%\n",
		rep.LiveIPC, 100*rep.LiveTD.Retiring, 100*rep.LiveTD.Frontend,
		100*rep.LiveTD.Backend, 100*rep.LiveTD.MemoryBound,
		100*rep.LiveTD.CoreBound, 100*rep.LiveTD.BadSpec)
	fmt.Printf("vod  (baseline): IPC %.3f, retiring %.1f%% frontend %.1f%% backend %.1f%% (mem %.1f%% core %.1f%%) badspec %.1f%%\n",
		rep.VOD.IPC, 100*rep.VOD.TopDown.Retiring, 100*rep.VOD.TopDown.Frontend,
		100*rep.VOD.TopDown.Backend, 100*rep.VOD.TopDown.MemoryBound,
		100*rep.VOD.TopDown.CoreBound, 100*rep.VOD.TopDown.BadSpec)
	return nil
}

// splitmix is the repo's stable PRNG (splitmix64) — no ambient
// randomness, no math/rand drift across Go releases.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
