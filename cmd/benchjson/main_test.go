package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: vcprof
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMotionSAD-8         	 3424016	       345.3 ns/op	 741.38 MB/s
BenchmarkDisabledSpan        	981244image	ignored garbage
BenchmarkRangeCoderEncode-8  	   18516	     64625 ns/op	   7.92 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	vcprof	19.388s
`

func TestParseStream(t *testing.T) {
	f, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header = %q/%q/%q", f.Goos, f.Goarch, f.CPU)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (malformed line must be skipped)", len(f.Benchmarks))
	}
	sad := f.Benchmarks[0]
	if sad.Name != "BenchmarkMotionSAD" || sad.Procs != 8 || sad.Iterations != 3424016 || sad.Pkg != "vcprof" {
		t.Errorf("first benchmark = %+v", sad)
	}
	if len(sad.Metrics) != 2 || sad.Metrics[0] != (Metric{Unit: "ns/op", Value: 345.3}) {
		t.Errorf("metrics = %+v", sad.Metrics)
	}
	rc := f.Benchmarks[1]
	if len(rc.Metrics) != 4 || rc.Metrics[3] != (Metric{Unit: "allocs/op", Value: 0}) {
		t.Errorf("benchmem metrics = %+v", rc.Metrics)
	}
	if len(f.Raw) != strings.Count(sample, "\n") {
		t.Errorf("raw preserved %d lines, want %d", len(f.Raw), strings.Count(sample, "\n"))
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkRange-Coder", "BenchmarkRange-Coder", 1}, // dash but no numeric suffix
		{"BenchmarkY-16", "BenchmarkY", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = %q,%d want %q,%d", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
