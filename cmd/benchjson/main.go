// Command benchjson converts `go test -bench` text output into a
// stable JSON artifact. The text format stays the benchstat-compatible
// source of truth; the JSON carries the same measurements parsed into
// records (plus the raw lines verbatim) for dashboards and scripted
// regression checks that should not re-implement the bench grammar.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json BENCH.txt
//
// Parsing never fails the run: lines that are not benchmark results
// (headers, PASS/ok trailers, harness noise) are preserved in "raw" and
// otherwise ignored, so a partially failed bench run still yields a
// well-formed artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Metric is one (value, unit) measurement from a benchmark line, e.g.
// 345.3 ns/op or 741.38 MB/s. Order follows the line.
type Metric struct {
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string   `json:"name"` // without the -P GOMAXPROCS suffix
	Pkg        string   `json:"pkg,omitempty"`
	Procs      int      `json:"procs"`
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// File is the top-level artifact.
type File struct {
	Format     string      `json:"format"` // "vcprof-bench/1"
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        []string    `json:"raw"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchjson [-o out.json] [bench.txt]\nReads `go test -bench` output from the file or stdin.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	file, err := parse(in)
	if err != nil {
		fatal(err)
	}
	enc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(file.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse consumes the bench text. Grammar per result line:
//
//	BenchmarkName[-procs] <tab/space> N <value unit>...
func parse(r io.Reader) (*File, error) {
	file := &File{Format: "vcprof-bench/1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		file.Raw = append(file.Raw, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			file.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		b, ok := parseResult(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		file.Benchmarks = append(file.Benchmarks, b)
	}
	return file, sc.Err()
}

func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// name, iterations, and at least one value+unit pair
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters < 0 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics = append(b.Metrics, Metric{Unit: fields[i+1], Value: v})
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// splitProcs strips the trailing -N GOMAXPROCS suffix if present.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return name, 1
	}
	return name[:i], n
}
