// Command vcload is a deterministic closed-loop load generator for
// vcprofd. A seeded PRNG draws a fixed job mix over the clip catalog ×
// encoder families × a CRF spread; -c workers each drive one job at a
// time through the full lifecycle (submit, poll, fetch), so offered
// load is closed-loop, not open-loop. Every pass with the same seed and
// count generates byte-identical specs, and the tool folds every result
// body into one order-independent digest — two passes against any
// server (fresh, warm, restarted) must print the same digest or the
// serving layer broke determinism.
//
// Usage:
//
//	vcload -addr 127.0.0.1:8791 -n 200 -c 16
//	vcload -n 500 -c 32 -seed 7 -bench
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcprof/internal/cluster"
	"vcprof/internal/encoders"
	"vcprof/internal/obs"
	"vcprof/internal/service"
	"vcprof/internal/telemetry"
	"vcprof/internal/video"
)

// latHist is the client-side job latency distribution, on the same
// shared bucket layout as the server's svc.job.latency_ms — the two
// line up bucket for bucket, so BENCH_pr5.json latency lines are
// comparable with what the daemon exposes on /metrics. Volatile: it
// measures wall time.
var latHist = obs.NewVolatileHistogram("vcload.latency_ms", telemetry.LatencyBucketsMS)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:8791", "vcprofd address (host:port)")
		n       = flag.Int("n", 200, "total jobs to complete")
		conc    = flag.Int("c", 16, "closed-loop concurrency (in-flight jobs)")
		seed    = flag.Uint64("seed", 1, "job-mix seed")
		frames  = flag.Int("frames", 2, "frames per encode job")
		div     = flag.Int("div", 32, "resolution divisor per encode job")
		expFrac = flag.Int("exp-every", 0, "make every k-th job a quick experiment (0 = encodes only)")
		heavy   = flag.Int("heavy-every", 0, "make every k-th encode heavy (4× frames, 4× resolution, slowest preset) — the bimodal mix the tail-latency study uses (0 = off)")
		flat    = flag.Bool("flat-prio", false, "serve everything at one priority class (the tail-latency study isolates cost-aware ordering from priority tiers)")
		bench   = flag.Bool("bench", false, "print benchjson-compatible Benchmark lines")
		gate    = flag.Bool("gate", false, "the target is a vcgate router: fetch /v1/cluster/stats after the run and print per-route stats (warm-rate, hedges, failovers, per-shard rows)")
	)
	flag.Parse()
	if *n < 1 || *conc < 1 {
		return fmt.Errorf("-n and -c must be positive")
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	specs := buildMix(*seed, *n, *frames, *div, *expFrac, *heavy, *flat)

	client := &http.Client{Timeout: 5 * time.Minute}
	var (
		next       atomic.Int64
		failures   atomic.Int64
		cached     atomic.Int64
		retried    atomic.Int64
		reconnects atomic.Int64
		mu         sync.Mutex
		latencies  = make([]time.Duration, *n)
		digests    = make([][32]byte, *n)
		firstErr   error
	)
	fail := func(err error) {
		failures.Add(1)
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				body, wasCached, ds, err := driveJob(client, base, &specs[i])
				if err != nil {
					fail(fmt.Errorf("job %d: %w", i, err))
					continue
				}
				// Only the served latency reaches the distribution:
				// admission retries are accounted separately, so a
				// saturated server shows up as retries, not as a fake
				// latency tail.
				latencies[i] = ds.Served
				latHist.Observe(uint64(ds.Served.Milliseconds()))
				digests[i] = sha256.Sum256(body)
				if wasCached {
					cached.Add(1)
				}
				retried.Add(int64(ds.Retries429))
				reconnects.Add(int64(ds.Reconnects))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if f := failures.Load(); f > 0 {
		return fmt.Errorf("%d/%d jobs failed; first: %w", f, *n, firstErr)
	}

	done := *n
	attempts := int64(done) + retried.Load() + reconnects.Load()
	fmt.Printf("vcload: %d jobs ok in %.2fs (%.1f jobs/s, c=%d)\n",
		done, wall.Seconds(), float64(done)/wall.Seconds(), *conc)
	fmt.Printf("cached-at-submit %d/%d (%.1f%%), %d retries after 429\n",
		cached.Load(), done, 100*float64(cached.Load())/float64(done), retried.Load())
	fmt.Printf("attempts %d (%d served + %d retries_429 + %d reconnects); latency counts served time only\n",
		attempts, done, retried.Load(), reconnects.Load())
	fmt.Print(telemetry.RenderHistogram(latHist.Snapshot(), "ms"))
	// The digest folds per-job result digests in job-index order — a
	// pure function of (seed, n, frames, div) and the service's result
	// bytes, independent of worker interleaving, topology and routing.
	fmt.Printf("digest %s\n", cluster.FoldDigest(digests))

	if *gate {
		if err := printGateStats(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "vcload: gate stats: %v\n", err)
		}
	}

	if *bench {
		perJob := wall.Nanoseconds() / int64(done)
		quantiles := func(tag string, lats []time.Duration) {
			if len(lats) == 0 {
				return
			}
			sorted := append([]time.Duration(nil), lats...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			p := func(q float64) int64 { return sorted[int(q*float64(len(sorted)-1))].Nanoseconds() }
			fmt.Printf("BenchmarkServeLatency%sP50 %d %d ns/op\n", tag, len(sorted), p(0.50))
			fmt.Printf("BenchmarkServeLatency%sP95 %d %d ns/op\n", tag, len(sorted), p(0.95))
			fmt.Printf("BenchmarkServeLatency%sP99 %d %d ns/op\n", tag, len(sorted), p(0.99))
		}
		fmt.Printf("BenchmarkServeJob %d %d ns/op\n", done, perJob)
		quantiles("", latencies)
		// In a bimodal mix the populations have different tails by
		// construction, so publish them separately: the light-job p99 is
		// the study's headline metric (heavy jobs drown it out of the
		// combined quantile).
		if *heavy > 0 {
			var light, heavyLat []time.Duration
			for i, spec := range specs {
				switch {
				case spec.Kind != service.KindEncode:
				case (i+1)%*heavy == 0:
					heavyLat = append(heavyLat, latencies[i])
				default:
					light = append(light, latencies[i])
				}
			}
			quantiles("Light", light)
			quantiles("Heavy", heavyLat)
		}
	}
	return nil
}

// printGateStats renders the per-route report after a -gate run: the
// router's aggregate counters (the warm-rate line is the one the
// cluster smoke greps) plus one row per shard.
func printGateStats(client httpDoer, base string) error {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/cluster/stats", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d (is the target really a vcgate?)", resp.StatusCode)
	}
	var s cluster.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return err
	}
	fmt.Printf("gate warm-rate %.1f%% (%d/%d warm routes), hedges %d launched %d won, failovers %d, fallbacks %d\n",
		s.WarmRatePct, s.WarmHits, s.Routes, s.HedgesLaunched, s.HedgesWon, s.Failovers, s.Fallbacks)
	for _, row := range s.Shards {
		state := "alive"
		if !row.Alive {
			state = "dead"
		}
		fmt.Printf("gate shard %s: %s, routes %d, warm %d, failures %d, p50 %dms, p95 %dms (%d obs)\n",
			row.Name, state, row.Routes, row.WarmHits, row.Failures,
			row.LatencyP50MS, row.LatencyP95MS, row.LatencyObs)
	}
	return nil
}

// buildMix derives the job list from the seed: a pure function, so
// every pass (and every process) with the same parameters offers the
// same work in the same order.
func buildMix(seed uint64, n, frames, div, expEvery, heavyEvery int, flatPrio bool) []service.JobSpec {
	clips := video.Vbench()
	fams := encoders.Families()
	exps := []string{"fig1", "fig4"}
	rng := splitmix{state: seed}
	specs := make([]service.JobSpec, n)
	for i := range specs {
		if expEvery > 0 && (i+1)%expEvery == 0 {
			specs[i] = service.JobSpec{
				Kind:       service.KindExperiment,
				Experiment: exps[int(rng.next()%uint64(len(exps)))],
				Quick:      true,
			}
		} else {
			fam := fams[int(rng.next()%uint64(len(fams)))]
			clip := clips[int(rng.next()%uint64(len(clips)))].Name
			enc := encoders.MustNew(fam)
			lo, hi := enc.CRFRange()
			// Four CRF operating points spread across the family range.
			crf := lo + int(rng.next()%4)*(hi-lo)/4
			plo, phi, reversed := enc.PresetRange()
			specs[i] = service.JobSpec{
				Kind:     service.KindEncode,
				Family:   string(fam),
				Clip:     clip,
				Frames:   frames,
				ScaleDiv: div,
				CRF:      crf,
				Preset:   (plo + phi) / 2,
				Threads:  1,
				Priority: int(rng.next() % 3),
			}
			// The heavy override lands after every rng draw: a run with
			// -heavy-every off draws the exact same stream, so the default
			// mix (and its digest) is untouched by the flag's existence.
			if heavyEvery > 0 && (i+1)%heavyEvery == 0 {
				specs[i].Frames = frames * 4
				if d := div / 4; d >= 1 {
					specs[i].ScaleDiv = d
				} else {
					specs[i].ScaleDiv = 1
				}
				if reversed {
					specs[i].Preset = phi // larger = slower (x264/x265)
				} else {
					specs[i].Preset = plo // smaller = slower
				}
			}
			// Like the heavy override, applied after the draws so the rng
			// stream (and the default mix) is untouched.
			if flatPrio {
				specs[i].Priority = 0
			}
		}
		specs[i].Normalize()
	}
	return specs
}

// splitmix is a tiny deterministic PRNG (splitmix64), used instead of
// math/rand so the mix is stable across Go releases and the tool stays
// inside the repo's no-ambient-randomness rule.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// driveStats is one job's attempt accounting. Served measures the
// serving latency — acceptance (2xx submit) to result fetched — NOT
// the time spent getting accepted: 429 backoff sleeps and reconnect
// retries are admission noise, counted in their own fields. Before
// this split a saturated or flapping server inflated the latency
// quantiles with retry sleep time, conflating "the server is slow"
// with "the server asked me to come back later".
type driveStats struct {
	Served     time.Duration // accepted submit → result bytes in hand
	Retries429 int           // submits answered 429 and retried
	Reconnects int           // submit transport errors retried
}

// maxReconnects bounds transport-level submit retries: transient
// connect errors (a gate failing over, a listener mid-restart) are
// retried with backoff and counted, anything persistent fails the job.
const maxReconnects = 3

// driveJob pushes one job through submit → poll → fetch and returns the
// result body plus the attempt/served split.
func driveJob(client httpDoer, base string, spec *service.JobSpec) (body []byte, cached bool, ds driveStats, err error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, false, ds, err
	}
	id := spec.Key()
	for {
		st, code, err := postJob(client, base, payload)
		if err != nil {
			if ds.Reconnects >= maxReconnects {
				return nil, false, ds, fmt.Errorf("submit (after %d reconnects): %w", ds.Reconnects, err)
			}
			ds.Reconnects++
			time.Sleep(10 * time.Millisecond)
			continue
		}
		switch code {
		case http.StatusOK:
			cached = true
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			ds.Retries429++
			time.Sleep(25 * time.Millisecond)
			continue
		default:
			return nil, false, ds, fmt.Errorf("submit: HTTP %d: %s", code, st.Error)
		}
		if st.ID != id {
			return nil, false, ds, fmt.Errorf("server key %s != local key %s", st.ID, id)
		}
		break
	}
	// The served clock starts here: the job is accepted (or cached);
	// everything before this point was admission, not service.
	accepted := time.Now()
	delay := 1 * time.Millisecond
	for {
		st, code, err := getJSON(client, base+"/v1/jobs/"+id)
		if err != nil {
			return nil, false, ds, err
		}
		if code != http.StatusOK {
			return nil, false, ds, fmt.Errorf("status: HTTP %d: %s", code, st.Error)
		}
		if st.Status == "failed" {
			return nil, false, ds, fmt.Errorf("job failed: %s", st.Error)
		}
		if st.Status == "done" {
			break
		}
		time.Sleep(delay)
		if delay < 50*time.Millisecond {
			delay *= 2
		}
	}
	body, err = fetchResult(client, base, id)
	if err != nil {
		return nil, false, ds, err
	}
	ds.Served = time.Since(accepted)
	return body, cached, ds, nil
}

func fetchResult(client httpDoer, base, id string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/results/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// status mirrors the server's jobStatus wire form.
type status struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

// httpDoer is the transport seam: *http.Client in production, a fake
// in the attempt/served-split regression tests.
type httpDoer interface {
	Do(req *http.Request) (*http.Response, error)
}

func postJob(client httpDoer, base string, payload []byte) (status, int, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return status{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return status{}, 0, err
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode < 500 {
		return status{}, resp.StatusCode, fmt.Errorf("bad status body: %w", err)
	}
	return st, resp.StatusCode, nil
}

func getJSON(client httpDoer, url string) (status, int, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return status{}, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return status{}, 0, err
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return status{}, resp.StatusCode, fmt.Errorf("bad status body: %w", err)
	}
	return st, resp.StatusCode, nil
}
