package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vcprof/internal/service"
)

func testSpec(t *testing.T) *service.JobSpec {
	t.Helper()
	s := &service.JobSpec{
		Kind: service.KindEncode, Family: "x264", Clip: "desktop",
		Frames: 1, ScaleDiv: 32, CRF: 24, Preset: 2,
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// slowAdmitServer answers the first reject429 submits with 429 (each
// costing the client its 25ms backoff), then accepts and serves the
// job after serveDelay. The served latency a correct client reports is
// ~serveDelay — the 429 backoff sleeps must not leak into it.
func slowAdmitServer(t *testing.T, spec *service.JobSpec, reject429 int, serveDelay time.Duration) *httptest.Server {
	t.Helper()
	id := spec.Key()
	var submits int
	var acceptedAt time.Time
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits++
		if submits <= reject429 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "saturated"})
			return
		}
		acceptedAt = time.Now()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": service.StateQueued})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st := service.StateRunning
		if time.Since(acceptedAt) >= serveDelay {
			st = service.StateDone
		}
		json.NewEncoder(w).Encode(map[string]string{"id": id, "status": st})
	})
	mux.HandleFunc("GET /v1/results/{id}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"result":"bytes"}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestDriveJobSplitsRetriesFromServedLatency is the regression test
// for the latency-conflation bug: under 429 retries, the reported
// served latency must cover only accepted-submit → result, while the
// retries land in their own counter. Before the split, three 429s
// added ~75ms of backoff sleep to the "latency" of a 30ms job.
func TestDriveJobSplitsRetriesFromServedLatency(t *testing.T) {
	spec := testSpec(t)
	const rejects = 3
	const serveDelay = 30 * time.Millisecond
	srv := slowAdmitServer(t, spec, rejects, serveDelay)

	body, cached, ds, err := driveJob(srv.Client(), srv.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 || cached {
		t.Fatalf("body=%d bytes cached=%v, want bytes and not cached", len(body), cached)
	}
	if ds.Retries429 != rejects {
		t.Fatalf("retries_429 = %d, want %d", ds.Retries429, rejects)
	}
	if ds.Reconnects != 0 {
		t.Fatalf("reconnects = %d, want 0", ds.Reconnects)
	}
	// The served clock must exclude the ~75ms of 429 backoff: it has
	// to cover the serve delay but stay well under delay + backoffs.
	if ds.Served < serveDelay {
		t.Fatalf("served latency %v < serve delay %v — clock started too late", ds.Served, serveDelay)
	}
	if max := serveDelay + 2*rejects*25*time.Millisecond; ds.Served >= max {
		t.Fatalf("served latency %v >= %v — 429 backoff leaked into the served clock", ds.Served, max)
	}
}

// flakyTransport fails the first n round-trips at the transport level
// (connect-error shaped), then delegates.
type flakyTransport struct {
	fails int
	next  http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.fails > 0 {
		f.fails--
		return nil, fmt.Errorf("dial tcp: connection refused (injected)")
	}
	return f.next.RoundTrip(req)
}

// TestDriveJobCountsReconnectsSeparately pins the transport-retry
// path: connect errors during submit are retried up to maxReconnects,
// counted in their own field, and never reach the latency clock.
func TestDriveJobCountsReconnectsSeparately(t *testing.T) {
	spec := testSpec(t)
	srv := slowAdmitServer(t, spec, 0, time.Millisecond)

	client := &http.Client{Transport: &flakyTransport{fails: 2, next: http.DefaultTransport}}
	_, _, ds, err := driveJob(client, srv.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Reconnects != 2 {
		t.Fatalf("reconnects = %d, want 2", ds.Reconnects)
	}
	if ds.Retries429 != 0 {
		t.Fatalf("retries_429 = %d, want 0", ds.Retries429)
	}
}

// TestDriveJobGivesUpAfterMaxReconnects pins the bound: persistent
// connect failure fails the job instead of retrying forever.
func TestDriveJobGivesUpAfterMaxReconnects(t *testing.T) {
	spec := testSpec(t)
	client := &http.Client{Transport: &flakyTransport{fails: 1 << 30, next: http.DefaultTransport}}
	_, _, ds, err := driveJob(client, "http://127.0.0.1:0", spec)
	if err == nil {
		t.Fatal("driveJob succeeded against a dead transport")
	}
	if ds.Reconnects != maxReconnects {
		t.Fatalf("reconnects = %d, want %d", ds.Reconnects, maxReconnects)
	}
}

// TestBuildMixDeterministic pins the mix as a pure function of its
// parameters — the property every digest comparison rests on.
func TestBuildMixDeterministic(t *testing.T) {
	a := buildMix(7, 50, 2, 32, 4, 15, false)
	b := buildMix(7, 50, 2, 32, 4, 15, false)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("mix lengths %d/%d, want 50", len(a), len(b))
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("mix diverged at %d: %s vs %s", i, a[i].Key()[:8], b[i].Key()[:8])
		}
	}
	c := buildMix(8, 50, 2, 32, 4, 15, false)
	same := 0
	for i := range a {
		if a[i].Key() == c[i].Key() {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds drew an identical mix")
	}
}
