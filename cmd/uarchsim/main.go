// Command uarchsim replays a recorded micro-op trace (from vencode
// -trace) through the out-of-order core model of the paper's Xeon
// E5-2650 v4 and prints cycles, IPC, MPKIs, resource stalls and the
// top-down slot breakdown.
//
// Usage:
//
//	uarchsim game1.vctr
//	uarchsim -predictor gshare-2KB -width 4 game1.vctr
package main

import (
	"flag"
	"fmt"
	"os"

	"vcprof/internal/trace"
	"vcprof/internal/uarch/pipeline"
	"vcprof/internal/uarch/topdown"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uarchsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		predictor = flag.String("predictor", "tage-8KB", "branch predictor (gshare-2KB, gshare-32KB, tage-8KB, tage-64KB, perceptron-8KB)")
		width     = flag.Int("width", 4, "machine width")
		robSize   = flag.Int("rob", 224, "reorder buffer entries")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: uarchsim [flags] <trace-file>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	ops, err := trace.ReadTrace(f)
	if err != nil {
		return err
	}

	cfg := pipeline.Broadwell()
	cfg.Predictor = *predictor
	cfg.Width = *width
	cfg.ROBSize = *robSize
	sim, err := pipeline.New(cfg)
	if err != nil {
		return err
	}
	res, err := sim.Run(ops)
	if err != nil {
		return err
	}

	fmt.Printf("ops          %d\n", res.Ops)
	fmt.Printf("cycles       %d\n", res.Cycles)
	fmt.Printf("IPC          %.3f\n", res.IPC)
	fmt.Printf("branches     %d (%.2f%% mispredicted, %.3f MPKI)\n",
		res.Branches, 100*float64(res.Mispredicts)/float64(max64(res.Branches, 1)), res.BranchMPKI)
	fmt.Printf("cache MPKI   L1D %.2f  L2 %.2f  LLC %.3f\n", res.L1DMPKI, res.L2MPKI, res.LLCMPKI)
	k := float64(res.Ops) / 1000
	fmt.Printf("stalls/kinst FU %.2f  RS %.2f  LQ %.2f  SQ %.2f  ROB %.2f\n",
		float64(res.StallFU)/k, float64(res.StallRS)/k, float64(res.StallLQ)/k,
		float64(res.StallSQ)/k, float64(res.StallROB)/k)
	td, err := topdown.FromSlots(res.TotalSlots, res.RetiringSlots, res.BadSpecSlots,
		res.FrontendSlots, res.BackendSlots, res.StallLQ+res.StallSQ, res.StallFU+res.StallRS)
	if err != nil {
		return err
	}
	fmt.Printf("top-down     %s\n", td)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
