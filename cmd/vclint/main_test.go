package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtures = "../../internal/analysis/testdata/"

// runCLI invokes the vclint entry point and captures its streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the CLI contract: 0 clean, 1 findings, 2 errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean-fixture", []string{fixtures + "clean"}, 0},
		{"findings", []string{fixtures + "detrand"}, 1},
		{"missing-dir", []string{fixtures + "nosuch"}, 2},
		{"broken-fixture", []string{fixtures + "broken"}, 2},
		{"bad-flag", []string{"-definitely-not-a-flag"}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != tc.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, tc.want, stderr)
			}
		})
	}
}

// TestFixturePackagesTrip: every analyzer's fixture package must make
// the CLI exit non-zero — the acceptance contract for the fixtures.
func TestFixturePackagesTrip(t *testing.T) {
	for _, tc := range []struct {
		pattern  string // fixture pattern under testdata
		analyzer string // analyzer that must be attributed in output
	}{
		{"detnow", "detnow"},
		{"detmaprange", "detmaprange"},
		{"detrand", "detrand"},
		{"lockheld", "lockheld"},
		{"hotalloc", "hotalloc"},
		{"detenv", "detenv"},
		{"detflow/...", "detflow"},
		{"lockorder", "lockorder"},
		{"shardpure", "shardpure"},
	} {
		t.Run(tc.analyzer, func(t *testing.T) {
			code, stdout, _ := runCLI(t, fixtures+tc.pattern)
			if code != 1 {
				t.Fatalf("exit = %d, want 1", code)
			}
			if !strings.Contains(stdout, tc.analyzer+": ") {
				t.Errorf("output does not attribute findings to %s:\n%s", tc.analyzer, stdout)
			}
		})
	}
}

// TestWhyOutput: -why must follow a detflow finding with its root→sink
// call chain, root first, one indented hop per line — the acceptance
// contract for whole-program diagnostics.
func TestWhyOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-why", fixtures+"detflow/...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "detflow: wall-clock time.Since reachable from deterministic root detflow.DetRootCell") {
		t.Fatalf("missing cross-package detflow finding:\n%s", stdout)
	}
	var sawRoot, sawSink bool
	for _, line := range strings.Split(stdout, "\n") {
		if !strings.HasPrefix(line, "\t") {
			continue // chain hops are the indented lines
		}
		if strings.Contains(line, "detflow.DetRootCell (") {
			sawRoot = true
		}
		if sawRoot && strings.Contains(line, "→") && strings.Contains(line, "inner.tick (") {
			sawSink = true
		}
	}
	if !sawRoot || !sawSink {
		t.Errorf("-why chain missing root and/or sink hop (root=%v sink=%v):\n%s", sawRoot, sawSink, stdout)
	}
	// Without -why the chains must stay off the human output.
	_, plain, _ := runCLI(t, fixtures+"detflow/...")
	if strings.Contains(plain, "→") {
		t.Errorf("chain hops printed without -why:\n%s", plain)
	}
}

// TestJSONChain: whole-program findings carry their call chain in the
// JSON output; per-package findings omit the key entirely.
func TestJSONChain(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", fixtures+"detflow/...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			Chain    []struct {
				Func string `json:"func"`
				File string `json:"file"`
				Line int    `json:"line"`
				Col  int    `json:"col"`
			} `json:"chain"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-json output unparseable: %v\n%s", err, stdout)
	}
	var chained bool
	for _, f := range doc.Findings {
		if f.Analyzer != "detflow" {
			continue
		}
		if len(f.Chain) == 0 {
			t.Errorf("detflow finding without chain: %+v", f)
			continue
		}
		chained = true
		if first := f.Chain[0]; !strings.HasPrefix(first.Func, "detflow.DetRoot") || first.Line == 0 {
			t.Errorf("chain does not start at a root hop: %+v", first)
		}
	}
	if !chained {
		t.Fatal("no detflow finding with a chain in JSON output")
	}
}

// TestJSONOutput: -json emits one parseable object with the documented
// shape and still exits 1 on findings.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", fixtures+"detrand")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var doc struct {
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(stdout), &doc); err != nil {
		t.Fatalf("-json output unparseable: %v\n%s", err, stdout)
	}
	if doc.Count != len(doc.Findings) || doc.Count == 0 {
		t.Fatalf("count %d vs %d findings", doc.Count, len(doc.Findings))
	}
	f := doc.Findings[0]
	if f.Analyzer != "detrand" || f.Line == 0 || !strings.HasSuffix(f.File, ".go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestHumanOutput: the default rendering is file:line:col: analyzer:
// message, one per line.
func TestHumanOutput(t *testing.T) {
	_, stdout, _ := runCLI(t, fixtures+"detrand")
	line := strings.SplitN(strings.TrimSpace(stdout), "\n", 2)[0]
	if !strings.Contains(line, ".go:") || !strings.Contains(line, ": detrand: ") {
		t.Errorf("unexpected human output line: %q", line)
	}
}

// TestListOutput names every shipped analyzer.
func TestListOutput(t *testing.T) {
	_, stdout, _ := runCLI(t, "-list")
	for _, name := range []string{
		"detnow", "detmaprange", "detrand", "lockheld", "hotalloc", "detenv",
		"detflow", "lockorder", "shardpure",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}
