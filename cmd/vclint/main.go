// vclint runs vcprof's determinism and concurrency analyzers over the
// repository (see internal/analysis and DESIGN.md §6).
//
// Usage:
//
//	vclint [-json] [-why] [-list] [packages]
//
// Packages are directory patterns relative to the working directory
// ("./...", "./internal/harness", "internal/analysis/testdata/detnow");
// the default is "./...". Wildcard patterns skip testdata directories,
// so the repo gate stays clean while fixture trees remain individually
// lintable.
//
// Exit status: 0 when no findings, 1 when findings were reported, 2 on
// usage, load, or type-check errors. Findings print one per line as
// file:line:col: analyzer: message, or as one JSON object with -json
// (whole-program findings carry their root→sink call chain in a
// "chain" array). -why appends the call chain to each chain-carrying
// text finding, one indented hop per line.
// Suppress an individual finding with //lint:ignore <analyzer> <reason>
// on the same line or the line above; chain-carrying findings may also
// be suppressed on the declaration line of the function containing the
// sink (the chain's last hop).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vcprof/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON object")
	why := fs.Bool("why", false, "print the root→sink call chain under each whole-program finding")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vclint [-json] [-why] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.VCProfAnalyzers()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "vclint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "vclint:", err)
		return 2
	}
	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "vclint:", err)
			return 2
		}
	} else {
		analysis.WriteText(stdout, diags, *why)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "vclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
