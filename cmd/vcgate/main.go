// Command vcgate is the cluster router daemon: it consistent-hashes
// content-addressed job ids across N vcprofd shards with replication
// factor R, routes warm (preferring the shard whose result store
// already holds the id), hedges slow requests after a quantile-derived
// delay, and fails over with backoff when a shard dies mid-job. Its
// HTTP surface is vcprofd's job lifecycle — submit, poll, fetch — so
// any daemon client (vcload included) points at the gate unchanged,
// plus /v1/cluster/stats and /v1/cluster/shards for routing
// introspection.
//
// Usage:
//
//	vcgate -shards http://127.0.0.1:8791,http://127.0.0.1:8792
//	vcgate -addr 127.0.0.1:0 -shards s1=http://h1:8791,s2=http://h2:8791 -replicas 2
//
// The daemon prints "listening on <host:port>" once the socket is
// bound (scripts parse this to discover a random port), serves until
// SIGINT/SIGTERM, then drains in-flight drives under -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vcprof/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vcgate:", err)
		os.Exit(1)
	}
}

// parseShards turns "-shards" into the shard set: a comma-separated
// list of base URLs, each optionally prefixed "name=". Unnamed shards
// get s0, s1, ... in list order.
func parseShards(spec string) ([]cluster.Shard, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("-shards is required (comma-separated vcprofd base URLs)")
	}
	var out []cluster.Shard
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sh := cluster.Shard{Name: "s" + strconv.Itoa(i)}
		if eq := strings.Index(part, "="); eq > 0 && !strings.Contains(part[:eq], "/") {
			sh.Name = part[:eq]
			part = part[eq+1:]
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		sh.URL = strings.TrimRight(part, "/")
		out = append(out, sh)
	}
	if len(out) == 0 {
		return nil, errors.New("-shards parsed to an empty set")
	}
	return out, nil
}

func run() error {
	var (
		addr       = flag.String("addr", ":8790", "listen address (host:port; port 0 picks a free one)")
		shardsSpec = flag.String("shards", "", "vcprofd shards: comma-separated [name=]URL list")
		replicas   = flag.Int("replicas", 1, "replication factor R: owners per job id")
		vnodes     = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		hedgeQ     = flag.Float64("hedge-quantile", 0.95, "latency quantile that derives the hedge delay")
		hedgeMin   = flag.Duration("hedge-min", 25*time.Millisecond, "hedge delay floor")
		hedgeMax   = flag.Duration("hedge-max", 2*time.Second, "hedge delay ceiling (also the cold-shard delay)")
		attempts   = flag.Int("attempts", 0, "failover attempts per job (0 = one per shard)")
		backoff    = flag.Duration("backoff", 10*time.Millisecond, "base failover backoff (doubles per attempt)")
		probe      = flag.Duration("probe", 250*time.Millisecond, "shard health-probe interval (0 disables probing)")
		probeFails = flag.Int("probe-fails", 2, "consecutive failures before a shard is marked down")
		inflight   = flag.Int("inflight", 64, "concurrently driven jobs before submissions get 429")
		cacheN     = flag.Int("cache", 512, "completed results kept in gate memory")
		driveTO    = flag.Duration("timeout", 5*time.Minute, "per-job routed lifecycle budget across all attempts")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	shards, err := parseShards(*shardsSpec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The router's base context is NOT the signal context: drives must
	// survive the start of a drain and only die when the drain budget
	// runs out (Shutdown cancels the base context itself).
	rt, err := cluster.NewRouter(context.Background(), cluster.Config{
		Shards:        shards,
		Replicas:      *replicas,
		VNodes:        *vnodes,
		HedgeQuantile: *hedgeQ,
		HedgeMin:      *hedgeMin,
		HedgeMax:      *hedgeMax,
		MaxAttempts:   *attempts,
		RetryBackoff:  *backoff,
		ProbeInterval: *probe,
		ProbeFails:    *probeFails,
		MaxInflight:   *inflight,
		ResultCacheEntries: func() int {
			if *cacheN < 1 {
				return 1
			}
			return *cacheN
		}(),
		DriveTimeout: *driveTO,
	})
	if err != nil {
		return err
	}
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	for _, sh := range shards {
		fmt.Fprintf(os.Stderr, "shard %s: %s\n", sh.Name, sh.URL)
	}

	httpSrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills hard

	fmt.Fprintln(os.Stderr, "draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "vcgate: drain:", err)
	}
	httpCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "bye")
	return nil
}
