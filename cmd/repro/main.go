// Command repro regenerates the paper's tables and figures. Each
// experiment prints one or more aligned text tables; -csv writes them as
// CSV files instead.
//
// Usage:
//
//	repro -list                  # show all experiment IDs
//	repro fig1 fig4              # run selected experiments
//	repro -quick all             # everything at the fast scale
//	repro -csv out/ fig8         # write CSVs to out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vcprof/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick  = flag.Bool("quick", false, "use the fast three-clip scale")
		csvDir = flag.String("csv", "", "write CSV files into this directory instead of printing")
		list   = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.List() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ids := flag.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given (use -list, or 'all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	}
	scale := harness.DefaultScale()
	if *quick {
		scale = harness.QuickScale()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		e, err := harness.Lookup(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		tables, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			if *csvDir != "" {
				path := filepath.Join(*csvDir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	return nil
}
