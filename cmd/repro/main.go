// Command repro regenerates the paper's tables and figures through the
// harness experiment engine. Each experiment prints one or more aligned
// text tables; -csv writes them as CSV files instead. Cells shared
// between experiments (the SVT-AV1 CRF grid feeds figs 2b and 4–7) are
// measured once per process, and -j fans independent cells out across
// a bounded worker pool.
//
// Usage:
//
//	repro -list                  # show all experiment IDs
//	repro fig1 fig4              # run selected experiments
//	repro -quick all             # everything at the fast scale
//	repro -csv out/ fig8         # write CSVs to out/
//	repro -j 8 -v all            # 8 workers, per-experiment stats
//	repro -trace out.json fig4   # Chrome trace (virtual ticks) of the run
//	repro -stats fig4            # obs counters + self-profile afterwards
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		quick    = flag.Bool("quick", false, "use the fast three-clip scale")
		csvDir   = flag.String("csv", "", "write CSV files into this directory instead of printing")
		list     = flag.Bool("list", false, "list experiments and exit")
		workers  = flag.Int("j", runtime.NumCPU(), "max concurrent cell measurements")
		verbose  = flag.Bool("v", false, "report per-experiment wall time and cache hits")
		trOut    = flag.String("trace", "", "write a Chrome trace-event JSON (virtual ticks) of the run to this file")
		stats    = flag.Bool("stats", false, "print obs counters and the self-profile table after the run")
		foldOut  = flag.String("fold", "", "write folded stacks (flamegraph.pl collapsed format, virtual ticks) of the run to this file")
		stealSed = flag.Uint64("steal-seed", 0, "shard-scheduler victim-selection seed (any value prints identical tables; 0 = 1)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.List() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return nil
	}
	ids := flag.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given (use -list, or 'all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil // RunAll's default: every registered experiment
	}
	scale := harness.DefaultScale()
	if *quick {
		scale = harness.QuickScale()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var sess *obs.Session
	if *trOut != "" || *stats || *foldOut != "" {
		sess = obs.NewSession()
	}
	rep, err := harness.RunAll(ctx, scale, harness.Options{Workers: *workers, Experiments: ids, Obs: sess, StealSeed: *stealSed})
	if rep != nil {
		for _, er := range rep.Results {
			if *verbose {
				fmt.Fprintf(os.Stderr, "%-20s %8.2fs  cells=%-3d hits=%d\n",
					er.ID, er.Wall.Seconds(), er.Cells, er.CacheHits)
			}
			for _, t := range er.Tables {
				if *csvDir != "" {
					path := filepath.Join(*csvDir, t.ID+".csv")
					if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
						return err
					}
					fmt.Fprintf(os.Stderr, "  wrote %s\n", path)
				} else {
					fmt.Println(t.Render())
				}
			}
		}
	}
	if err != nil {
		return err
	}
	if *verbose {
		st := harness.CellCacheStats()
		fmt.Fprintf(os.Stderr, "total %.2fs  workers=%d  cache: %d hits / %d misses (%d entries, weight %d/%d)\n",
			rep.Wall.Seconds(), rep.Workers, st.Hits, st.Misses, st.Entries, st.Weight, st.Cap)
	}
	if *trOut != "" {
		f, err := os.Create(*trOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, sess); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace → %s (load in chrome://tracing or ui.perfetto.dev)\n", *trOut)
	}
	if *foldOut != "" {
		f, err := os.Create(*foldOut)
		if err != nil {
			return err
		}
		if err := obs.WriteFolded(f, obs.FoldedProfile(sess)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "folded stacks → %s (feed to flamegraph.pl)\n", *foldOut)
	}
	if *stats {
		fmt.Print(obs.RenderCounters(true))
		fmt.Print(obs.RenderProfile(sess.Profile(), 20))
	}
	return nil
}
