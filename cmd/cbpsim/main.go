// Command cbpsim runs the Championship Branch Prediction evaluation on
// recorded traces (from vencode -trace): every named predictor is
// scored by miss rate and MPKI on each trace's conditional branches.
//
// Usage:
//
//	cbpsim game1.vctr hall.vctr
//	cbpsim -predictors tage-8KB,perceptron-8KB -metric missrate game1.vctr
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vcprof/internal/cbp"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/bpred"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cbpsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		predictors = flag.String("predictors", strings.Join(bpred.PaperSet(), ","), "comma-separated predictor names")
		metric     = flag.String("metric", "mpki", "table metric: mpki or missrate")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: cbpsim [flags] <trace-file>...")
	}
	var traces []cbp.Trace
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var branches []trace.MicroOp
		var window uint64
		switch {
		case len(data) >= 4 && string(data[:4]) == "VCBR":
			branches, window, err = trace.ReadBranchTrace(bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		default:
			ops, err := trace.ReadTrace(bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			for _, op := range ops {
				if op.IsBranch() {
					branches = append(branches, op)
				}
			}
			window = uint64(len(ops))
		}
		if len(branches) == 0 {
			return fmt.Errorf("%s: trace contains no branches", path)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		traces = append(traces, cbp.Trace{Name: name, Branches: branches, Instructions: window})
	}
	scores, err := cbp.Championship(strings.Split(*predictors, ","), traces)
	if err != nil {
		return err
	}
	tbl, err := cbp.Table(scores, *metric)
	if err != nil {
		return err
	}
	fmt.Print(tbl)
	return nil
}
