// Command vgen synthesizes vbench clips as YUV4MPEG2 (.y4m) files, the
// format the real suite distributes, so external encoders can run on
// the same procedural inputs this repository characterizes.
//
// Usage:
//
//	vgen -clip game1 -frames 30 -scale 4 game1.y4m
//	vgen -clip hall -cut 15 hall-cut.y4m   # hard scene change at frame 15
package main

import (
	"flag"
	"fmt"
	"os"

	"vcprof/internal/video"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		clipName = flag.String("clip", "game1", "vbench clip name")
		frames   = flag.Int("frames", 30, "frames to synthesize")
		scale    = flag.Int("scale", 4, "linear resolution divisor (1 = native)")
		cut      = flag.Int("cut", 0, "insert a hard scene change at this frame (0 = none)")
		measure  = flag.Bool("measure", false, "print the measured content entropy")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: vgen [flags] <output.y4m>")
	}
	meta, err := video.LookupClip(*clipName)
	if err != nil {
		return err
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: *frames, ScaleDiv: *scale, CutAt: *cut})
	if err != nil {
		return err
	}
	f, err := os.Create(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := video.WriteY4M(f, clip); err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d@%d x%d frames (catalog entropy %.2g) → %s\n",
		meta.Name, clip.Meta.Width, clip.Meta.Height, clip.Meta.FPS, len(clip.Frames), meta.Entropy, flag.Arg(0))
	if *measure {
		e, err := video.MeasureEntropy(clip)
		if err != nil {
			return err
		}
		fmt.Printf("measured content entropy: %.2f bits\n", e)
	}
	return nil
}
