// Command vcperf is the live telemetry console for vcprofd. It speaks
// only the daemon's public HTTP surface — Prometheus text exposition on
// /metrics, JSON top-down snapshots, the ring-buffer time series and
// the folded-stack profile — so everything it shows is equally
// available to any scraper.
//
//	vcperf top                        # live top-down + MPKIs + latency, refreshed
//	vcperf top -once -assert          # one snapshot; exit 1 unless invariants hold
//	vcperf top -job <id>              # stream one job's top-down while it runs
//	vcperf series -window 32          # recent gauge samples from the ring buffer
//	vcperf flame -o out.folded        # folded stacks (pipe to flamegraph.pl)
//	vcperf trace j-0123abcd -o t.json # merged cluster Chrome trace for one job
//	vcperf slo -assert                # live SLO burn rates; exit 1 over budget
//
// trace and slo speak to a gate (vcgate) or a single daemon alike —
// both serve /v1/cluster/trace/{id} and /v1/slo; the daemon's answer
// is the one-shard degenerate case.
//
// Exit codes: 0 ok, 1 assertion failed (-assert), 2 usage, 3 the
// daemon could not be reached or answered malformed data.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "top":
		return cmdTop(args[1:])
	case "series":
		return cmdSeries(args[1:])
	case "flame":
		return cmdFlame(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "slo":
		return cmdSlo(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "vcperf: unknown subcommand %q\n", args[0])
	usage()
	return 2
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: vcperf <top|series|flame|trace|slo> [flags]
  top     live top-down fractions, MPKIs and latency histograms
  series  dump the daemon's ring-buffer gauge time series
  flame   fetch the folded-stack profile (flamegraph.pl input)
  trace   fetch one merged cluster Chrome trace by id (j-…/s-…)
  slo     live SLO burn rates; -assert gates on budgets
`)
}

// client is the shared HTTP client: short timeout, since everything
// vcperf asks for is served from memory.
var client = &http.Client{Timeout: 10 * time.Second}

func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

func fetch(base, path string) ([]byte, error) {
	resp, err := client.Get(base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// ---- top ----

// topdownWire mirrors the server's JSON top-down snapshot.
type topdownWire struct {
	ID         string  `json:"id"`
	State      string  `json:"state"`
	Retiring   float64 `json:"retiring"`
	BadSpec    float64 `json:"bad_spec"`
	Frontend   float64 `json:"frontend"`
	Backend    float64 `json:"backend"`
	TotalSlots uint64  `json:"total_slots"`
	Producers  int     `json:"producers"`
	Flushes    uint64  `json:"flushes"`
	Commits    uint64  `json:"commits"`
}

func cmdTop(args []string) int {
	fs := flag.NewFlagSet("vcperf top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "vcprofd address (host:port)")
	once := fs.Bool("once", false, "print one snapshot and exit instead of refreshing")
	assert := fs.Bool("assert", false, "check telemetry invariants; exit 1 on violation")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval in live mode")
	jobID := fs.String("job", "", "stream this job's top-down instead of the process aggregate")
	fs.Parse(args)
	base := baseURL(*addr)

	for {
		snap, err := snapshotTop(base, *jobID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vcperf:", err)
			return 3
		}
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // home + clear: cheap full-screen refresh
		}
		fmt.Print(snap.render())
		if *assert {
			if msgs := snap.check(); len(msgs) > 0 {
				for _, m := range msgs {
					fmt.Fprintln(os.Stderr, "vcperf: ASSERT FAILED:", m)
				}
				return 1
			}
			fmt.Println("asserts ok")
		}
		if *once {
			return 0
		}
		time.Sleep(*interval)
	}
}

// topSnapshot is one fetched view: the parsed exposition plus the
// JSON top-down, taken back to back.
type topSnapshot struct {
	td      topdownWire
	scalars map[string]float64
	hists   map[string]obs.HistogramValue
}

func snapshotTop(base, jobID string) (*topSnapshot, error) {
	tdPath := "/v1/telemetry/topdown"
	if jobID != "" {
		tdPath = "/v1/jobs/" + jobID + "/topdown"
	}
	tdBody, err := fetch(base, tdPath)
	if err != nil {
		return nil, err
	}
	var td topdownWire
	if err := json.Unmarshal(tdBody, &td); err != nil {
		return nil, fmt.Errorf("top-down JSON: %w", err)
	}
	metBody, err := fetch(base, "/metrics")
	if err != nil {
		return nil, err
	}
	parsed, err := telemetry.ParseProm(string(metBody))
	if err != nil {
		return nil, err
	}
	return &topSnapshot{td: td, scalars: parsed.Scalars, hists: parsed.Hists}, nil
}

func (s *topSnapshot) render() string {
	var b strings.Builder
	if s.td.ID != "" {
		fmt.Fprintf(&b, "job %s (%s)\n", s.td.ID, s.td.State)
	}
	fmt.Fprintf(&b, "jobs  submitted %.0f  completed %.0f  failed %.0f  running %.0f  queue %.0f  engine-inflight %.0f\n",
		s.scalars["vcprof_svc_jobs_submitted"], s.scalars["vcprof_svc_jobs_completed"],
		s.scalars["vcprof_svc_jobs_failed"], s.scalars["vcprof_svc_jobs_running"],
		s.scalars["vcprof_svc_queue_depth"], s.scalars["vcprof_svc_engine_inflight"])
	fmt.Fprintf(&b, "store %.0f objects  cells %.0f entries\n",
		s.scalars["vcprof_svc_store_objects"], s.scalars["vcprof_svc_cells_entries"])

	b.WriteString("top-down (level 1, streaming)")
	fmt.Fprintf(&b, "  slots %d  producers %d  flushes %d  commits %d\n",
		s.td.TotalSlots, s.td.Producers, s.td.Flushes, s.td.Commits)
	if s.td.TotalSlots == 0 {
		b.WriteString("  (no slots observed yet)\n")
	} else {
		for _, row := range []struct {
			name string
			frac float64
		}{
			{"retiring", s.td.Retiring}, {"bad-spec", s.td.BadSpec},
			{"frontend", s.td.Frontend}, {"backend", s.td.Backend},
		} {
			bar := strings.Repeat("#", int(row.frac*40+0.5))
			fmt.Fprintf(&b, "  %-9s %6.2f%%  %s\n", row.name, 100*row.frac, bar)
		}
	}

	if insts := s.scalars["vcprof_perf_stat_instructions"]; insts > 0 {
		mpki := func(name string) float64 { return 1000 * s.scalars[name] / insts }
		fmt.Fprintf(&b, "MPKI (per perf.stat kilo-instruction)  branch %.2f  l1d %.2f  l2 %.2f  llc %.2f\n",
			mpki("vcprof_perf_stat_branch_misses"), mpki("vcprof_uarch_cache_l1d_misses"),
			mpki("vcprof_uarch_cache_l2_misses"), mpki("vcprof_uarch_cache_llc_misses"))
	}
	if ops := s.scalars["vcprof_uarch_pipeline_ops"]; ops > 0 {
		fmt.Fprintf(&b, "pipeline replayer  mispredict MPKI %.2f  IPC %.2f\n",
			1000*s.scalars["vcprof_uarch_pipeline_mispredicts"]/ops,
			s.scalars["vcprof_uarch_pipeline_ops"]/nonZero(s.scalars["vcprof_uarch_pipeline_cycles"]))
	}
	for _, name := range []string{"vcprof_svc_job_latency_ms", "vcprof_svc_queue_wait_ms"} {
		if h, ok := s.hists[name]; ok && h.Count > 0 {
			b.WriteString(telemetry.RenderHistogram(h, "ms"))
		}
	}
	return b.String()
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// check enforces the invariants the smoke test pins mid-run: the four
// level-1 fractions partition the slot budget (sum 1 ± 0.001 with a
// non-zero denominator), and the latency histogram's quantiles are
// monotone (p99 ≥ p50).
func (s *topSnapshot) check() []string {
	var msgs []string
	sum := s.td.Retiring + s.td.BadSpec + s.td.Frontend + s.td.Backend
	if s.td.TotalSlots == 0 {
		msgs = append(msgs, "top-down total_slots is 0 (no producer flushed yet)")
	} else if sum < 0.999 || sum > 1.001 {
		msgs = append(msgs, fmt.Sprintf("top-down fractions sum to %.6f, want 1.0±0.001", sum))
	}
	if s.td.Retiring <= 0 && s.td.TotalSlots > 0 {
		msgs = append(msgs, "retiring fraction is zero with slots observed")
	}
	if h, ok := s.hists["vcprof_svc_job_latency_ms"]; ok && h.Count > 0 {
		p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
		if p99 < p50 {
			msgs = append(msgs, fmt.Sprintf("latency p99 %d < p50 %d", p99, p50))
		}
	} else {
		msgs = append(msgs, "no job latency observations")
	}
	return msgs
}

// ---- series ----

// seriesWire mirrors the server's ring-buffer window JSON.
type seriesWire struct {
	Names   []string    `json:"names"`
	TimesMS []int64     `json:"times_ms"`
	Samples [][]float64 `json:"samples"`
}

func cmdSeries(args []string) int {
	fs := flag.NewFlagSet("vcperf series", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "vcprofd address (host:port)")
	window := fs.Int("window", 0, "most recent samples to fetch (0 = everything retained)")
	raw := fs.Bool("raw", false, "dump the JSON window verbatim")
	fs.Parse(args)

	body, err := fetch(baseURL(*addr), "/v1/telemetry/series?window="+strconv.Itoa(*window))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	if *raw {
		os.Stdout.Write(body)
		return 0
	}
	var w seriesWire
	if err := json.Unmarshal(body, &w); err != nil {
		fmt.Fprintln(os.Stderr, "vcperf: series JSON:", err)
		return 3
	}
	if len(w.TimesMS) == 0 {
		fmt.Println("series: no samples yet")
		return 0
	}
	span := time.Duration(w.TimesMS[len(w.TimesMS)-1]-w.TimesMS[0]) * time.Millisecond
	fmt.Printf("series: %d samples over %s\n", len(w.TimesMS), span)
	// One row per gauge: the summary reads naturally even with many
	// gauges, where a column-per-gauge table would wrap.
	names := append([]string(nil), w.Names...)
	sort.Strings(names)
	col := make(map[string]int, len(w.Names))
	for i, n := range w.Names {
		col[n] = i
	}
	for _, name := range names {
		c := col[name]
		first, last := w.Samples[0][c], w.Samples[len(w.Samples)-1][c]
		min, max := first, first
		for _, row := range w.Samples {
			if row[c] < min {
				min = row[c]
			}
			if row[c] > max {
				max = row[c]
			}
		}
		fmt.Printf("  %-36s first %-12g last %-12g min %-12g max %g\n", name, first, last, min, max)
	}
	return 0
}

// ---- flame ----

func cmdFlame(args []string) int {
	fs := flag.NewFlagSet("vcperf flame", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "vcprofd address (host:port)")
	out := fs.String("o", "", "write folded stacks to this file (default stdout)")
	fs.Parse(args)

	body, err := fetch(baseURL(*addr), "/debug/profile?fold=1")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	if *out == "" {
		os.Stdout.Write(body)
		return 0
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	fmt.Fprintf(os.Stderr, "folded stacks → %s (feed to flamegraph.pl)\n", *out)
	return 0
}

// ---- trace ----

func cmdTrace(args []string) int {
	fs := flag.NewFlagSet("vcperf trace", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "vcgate or vcprofd address (host:port)")
	det := fs.Bool("det", false, "deterministic view only (?volatile=0): byte-stable across topologies")
	out := fs.String("o", "", "write the Chrome trace to this file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vcperf trace: exactly one trace id required (j-… for jobs, s-… for sessions)")
		return 2
	}
	id := fs.Arg(0)
	path := "/v1/cluster/trace/" + id
	if *det {
		path += "?volatile=0"
	}
	body, err := fetch(baseURL(*addr), path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	if *out == "" {
		os.Stdout.Write(body)
		return 0
	}
	if err := os.WriteFile(*out, body, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	fmt.Fprintf(os.Stderr, "merged trace %s → %s (open in a Chrome trace viewer)\n", id, *out)
	return 0
}

// ---- slo ----

func cmdSlo(args []string) int {
	fs := flag.NewFlagSet("vcperf slo", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8791", "vcgate or vcprofd address (host:port)")
	assert := fs.Bool("assert", false, "exit 1 when a burn rate exceeds its budget")
	maxMiss := fs.Uint64("max-miss-ppm", 0, "deadline-miss burn budget, misses per million frames")
	maxDegrade := fs.Uint64("max-degrade-ppm", 0, "degrade-step burn budget, steps per million GOPs")
	fs.Parse(args)

	body, err := fetch(baseURL(*addr), "/v1/slo")
	if err != nil {
		fmt.Fprintln(os.Stderr, "vcperf:", err)
		return 3
	}
	var rep telemetry.SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "vcperf: SLO JSON:", err)
		return 3
	}
	fmt.Printf("sessions %d (resumed %d)  frames %d  gops %d  dropped %d\n",
		rep.Sessions, rep.Resumes, rep.Frames, rep.GOPs, rep.Dropped)
	fmt.Printf("deadline misses %d  burn %d ppm (budget %d)\n", rep.Misses, rep.MissBurnPPM, *maxMiss)
	fmt.Printf("degrade steps   %d  burn %d ppm (budget %d)\n", rep.Degrades, rep.DegradeBurnPPM, *maxDegrade)
	if *assert {
		if msgs := rep.Check(*maxMiss, *maxDegrade); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "vcperf: SLO ASSERT FAILED:", m)
			}
			return 1
		}
		fmt.Println("slo ok")
	}
	return 0
}
