package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tkey derives a well-formed (hex) store key from a label.
func tkey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := tkey("a")
	data := []byte(`{"v":1}` + "\n")
	if err := st.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(key) {
		t.Fatal("Contains is false after Put")
	}
	got, ok, err := st.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q, want %q", got, data)
	}
	// Re-putting an immutable object is a no-op, not an error.
	if err := st.Put(key, data); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if s := st.Stats(); s.Objects != 1 || s.Bytes != int64(len(data)) {
		t.Errorf("stats = %+v", s)
	}
	// No temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "objects", "*", "*.tmp"))
	if len(matches) != 0 {
		t.Errorf("temp files not cleaned: %v", matches)
	}
}

func TestStoreRejectsTraversalKeys(t *testing.T) {
	st, err := OpenStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "../escape", "a/b", `a\b`, "x.json"} {
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("Put accepted malformed key %q", key)
		}
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	st, err := OpenStore(dir, 250) // fits two 100-byte objects, not three
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{tkey("1"), tkey("2"), tkey("3")}
	for _, k := range keys {
		if err := st.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st.Contains(keys[0]) {
		t.Error("least-recently-used object survived over-budget Put")
	}
	if !st.Contains(keys[1]) || !st.Contains(keys[2]) {
		t.Error("recently used objects were evicted")
	}
	if _, err := os.Stat(objectPath(dir, keys[0])); !os.IsNotExist(err) {
		t.Errorf("evicted object still on disk: %v", err)
	}
	if s := st.Stats(); s.Bytes > 250 {
		t.Errorf("store over budget: %+v", s)
	}
}

// TestStoreFlushReloadPreservesLRU pins the warm-restart contract: the
// index persists recency order, so eviction decisions after a restart
// match what they would have been without one.
func TestStoreFlushReloadPreservesLRU(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 100)
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := tkey("a"), tkey("b"), tkey("c")
	for _, k := range []string{a, b, c} {
		if err := st.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so recency is a, c, b (most to least recent).
	if _, ok, _ := st.Get(a); !ok {
		t.Fatal("Get(a) missed")
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reopen with room for only two objects: b — the LRU per the
	// persisted index — must be the one evicted.
	st2, err := OpenStore(dir, 250)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Contains(a) || !st2.Contains(c) {
		t.Error("recently used objects lost across restart")
	}
	if st2.Contains(b) {
		t.Error("LRU order not preserved across restart: b survived")
	}
}

func TestStoreReloadWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{tkey("p"), tkey("q")}
	for _, k := range keys {
		if err := st.Put(k, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Flush, no index. Reload must still find every object.
	st2, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !st2.Contains(k) {
			t.Errorf("object %s lost without index", k[:8])
		}
	}
	// A corrupt index degrades to the same fallback.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.Contains(keys[0]) || !st3.Contains(keys[1]) {
		t.Error("corrupt index lost objects")
	}
}

func TestStoreVanishedObject(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := tkey("gone")
	if err := st.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(objectPath(dir, key)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(key); ok || err != nil {
		t.Fatalf("Get of vanished object: ok=%v err=%v, want miss", ok, err)
	}
	if st.Contains(key) {
		t.Error("vanished object still indexed after failed Get")
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "objects", "zz"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "objects", "zz", "stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Objects != 0 {
		t.Errorf("stray file counted as object: %+v", s)
	}
	if strings.Contains(tkey("sanity"), "/") {
		t.Fatal("tkey produced a path separator")
	}
}
