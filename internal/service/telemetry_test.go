package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
	"vcprof/internal/uarch/topdown"
)

// resetTelemetryState clears every process-global observation store so
// a test observes only its own work.
func resetTelemetryState() {
	harness.ResetCellCache()
	harness.ResetClipCache()
	obs.ResetCounters()
	obs.ResetHistograms()
}

// getBody fetches a URL and returns body and status.
func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// runJobToDone submits a spec and waits for completion. The budget is
// generous because these tests run experiment jobs, which are far
// slower than encodes and slower again under the race detector.
func runJobToDone(t *testing.T, base string, spec JobSpec) string {
	t.Helper()
	spec.Normalize()
	st, code := submit(t, base, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d (%s)", code, st.Error)
	}
	pollDoneWithin(t, base, st.ID, 10*time.Minute)
	return st.ID
}

// quickExperimentSpec is a fig4-class job: perf.Stat cells, so it
// exercises the streaming top-down producer end to end.
func quickExperimentSpec() JobSpec {
	return JobSpec{Kind: KindExperiment, Experiment: "fig4", Quick: true}
}

// TestMetricsRestartByteStable pins the warm-restart exposition
// contract from both directions. A daemon restarted onto a warm store
// recomputes nothing, so its deterministic exposition must equal the
// do-nothing baseline byte for byte (no timestamps, no process
// identity, no registration-order leakage); and re-running the same
// work from a cold state must reproduce the first run's exposition
// exactly.
func TestMetricsRestartByteStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs harness cells; skipped in -short")
	}
	storeDir := t.TempDir()
	detMetrics := func(hts *httptest.Server) string {
		body, code := getBody(t, hts.URL+"/metrics?volatile=0")
		if code != http.StatusOK {
			t.Fatalf("/metrics: HTTP %d", code)
		}
		return string(body)
	}
	runGen := func(warm bool) (baseline, loaded string) {
		resetTelemetryState()
		srv, err := NewServer(context.Background(), Config{
			StoreDir: storeDir,
			Workers:  2,
			// Experiment jobs overrun the 2-minute default budget
			// under the race detector.
			DefaultTimeout: 15 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		hts := httptest.NewServer(srv.Handler())
		defer func() {
			hts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
		}()
		baseline = detMetrics(hts)
		id := runJobToDone(t, hts.URL, quickExperimentSpec())
		if warm && !srv.Store().Contains(id) {
			t.Fatal("warm generation missing stored result")
		}
		return baseline, detMetrics(hts)
	}

	base1, loaded1 := runGen(false)
	if base1 == loaded1 {
		t.Fatal("running a job left no trace in the deterministic exposition")
	}
	// Generation 2: same store, warm. The job is satisfied from the
	// store without recomputation, so the exposition must stay at the
	// fresh-process baseline — and that baseline must be byte-identical
	// across process generations.
	base2, loaded2 := runGen(true)
	if base2 != base1 {
		t.Errorf("baseline exposition differs across restarts:\n%s", firstLineDiff(base1, base2))
	}
	if loaded2 != base2 {
		t.Errorf("warm restart recomputed work (exposition moved off baseline):\n%s", firstLineDiff(base2, loaded2))
	}

	// Generation 3: cold store, same work — the loaded exposition must
	// reproduce generation 1 exactly.
	storeDir = t.TempDir()
	_, loaded3 := runGen(false)
	if loaded3 != loaded1 {
		t.Errorf("cold re-run exposition differs:\n%s", firstLineDiff(loaded1, loaded3))
	}
}

func firstLineDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "line " + strings.TrimSpace(w) + " != " + strings.TrimSpace(g)
		}
	}
	return "(identical?)"
}

// TestTopdownEndpoints drives a fig4-class job and checks both the
// per-job and the aggregate streaming top-down surfaces.
func TestTopdownEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs harness cells; skipped in -short")
	}
	resetTelemetryState()
	_, hts := testServer(t, Config{Workers: 2, DefaultTimeout: 15 * time.Minute}, true)

	if _, code := getBody(t, hts.URL+"/v1/jobs/nonexistent/topdown"); code != http.StatusNotFound {
		t.Errorf("unknown job topdown: HTTP %d, want 404", code)
	}

	id := runJobToDone(t, hts.URL, quickExperimentSpec())
	for _, path := range []string{"/v1/jobs/" + id + "/topdown", "/v1/telemetry/topdown"} {
		body, code := getBody(t, hts.URL+path)
		if code != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", path, code, body)
		}
		var wire struct {
			ID         string  `json:"id"`
			State      string  `json:"state"`
			Retiring   float64 `json:"retiring"`
			BadSpec    float64 `json:"bad_spec"`
			Frontend   float64 `json:"frontend"`
			Backend    float64 `json:"backend"`
			TotalSlots uint64  `json:"total_slots"`
			Commits    uint64  `json:"commits"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if wire.TotalSlots == 0 || wire.Commits == 0 {
			t.Fatalf("%s: no slots streamed: %+v", path, wire)
		}
		sum := wire.Retiring + wire.BadSpec + wire.Frontend + wire.Backend
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v, want 1±0.001", path, sum)
		}
		if wire.Retiring <= 0 {
			t.Errorf("%s: retiring fraction is zero", path)
		}
	}
	body, _ := getBody(t, hts.URL+"/v1/jobs/"+id+"/topdown")
	if !strings.Contains(string(body), `"state":"done"`) {
		t.Errorf("completed job state not done: %s", body)
	}
}

// TestSeriesEndpoint pins the ring-buffer surface: 404 when sampling
// is off, windowed JSON rows when on.
func TestSeriesEndpoint(t *testing.T) {
	_, off := testServer(t, Config{Workers: 1}, true)
	if _, code := getBody(t, off.URL+"/v1/telemetry/series"); code != http.StatusNotFound {
		t.Fatalf("series with sampling disabled: HTTP %d, want 404", code)
	}

	_, hts := testServer(t, Config{Workers: 1, SampleInterval: 2 * time.Millisecond, SeriesCap: 8}, true)
	var win struct {
		Names   []string    `json:"names"`
		TimesMS []int64     `json:"times_ms"`
		Samples [][]float64 `json:"samples"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		body, code := getBody(t, hts.URL+"/v1/telemetry/series")
		if code != http.StatusOK {
			t.Fatalf("series: HTTP %d", code)
		}
		if err := json.Unmarshal(body, &win); err != nil {
			t.Fatal(err)
		}
		if len(win.TimesMS) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler produced no rows")
		}
		time.Sleep(5 * time.Millisecond)
	}
	found := false
	for _, n := range win.Names {
		if n == "svc.queue.depth" {
			found = true
		}
	}
	if !found {
		t.Errorf("series names missing svc.queue.depth: %v", win.Names)
	}
	for i, row := range win.Samples {
		if len(row) != len(win.Names) {
			t.Fatalf("row %d has %d values for %d names", i, len(row), len(win.Names))
		}
		if i > 0 && win.TimesMS[i] < win.TimesMS[i-1] {
			t.Fatalf("series times not ordered: %v", win.TimesMS)
		}
	}
	if body, code := getBody(t, hts.URL+"/v1/telemetry/series?window=1"); code != http.StatusOK {
		t.Fatalf("window=1: HTTP %d", code)
	} else {
		var w1 struct {
			TimesMS []int64 `json:"times_ms"`
		}
		if err := json.Unmarshal(body, &w1); err != nil {
			t.Fatal(err)
		}
		if len(w1.TimesMS) != 1 {
			t.Errorf("window=1 returned %d rows", len(w1.TimesMS))
		}
	}
	if _, code := getBody(t, hts.URL+"/v1/telemetry/series?window=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad window: HTTP %d, want 400", code)
	}
}

// TestProfileEndpoint pins the continuous-profiler surface: 404
// without tracing; with tracing, a flat table by default and folded
// stacks (including adopted per-job spans) with ?fold=1.
func TestProfileEndpoint(t *testing.T) {
	_, off := testServer(t, Config{Workers: 1}, true)
	if _, code := getBody(t, off.URL+"/debug/profile"); code != http.StatusNotFound {
		t.Fatalf("profile without tracing: HTTP %d, want 404", code)
	}

	resetTelemetryState()
	_, hts := testServer(t, Config{Workers: 1, Obs: obs.NewSession()}, true)
	runJobToDone(t, hts.URL, validEncodeSpec())

	body, code := getBody(t, hts.URL+"/debug/profile?fold=1")
	if code != http.StatusOK {
		t.Fatalf("folded profile: HTTP %d", code)
	}
	folded := strings.TrimSpace(string(body))
	if folded == "" {
		t.Fatal("folded profile empty after a traced job")
	}
	for _, line := range strings.Split(folded, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("folded line %q not `stack count`", line)
		}
	}
	if !strings.Contains(folded, "stage/") {
		t.Errorf("folded stacks missing adopted per-job encode-stage lanes:\n%s", folded)
	}
	flat, code := getBody(t, hts.URL+"/debug/profile")
	if code != http.StatusOK || len(flat) == 0 {
		t.Fatalf("flat profile: HTTP %d, %d bytes", code, len(flat))
	}
}

// TestExecuteObservedBytesInvariant is the telemetry-transparency
// acceptance check in unit form: the result document is byte-identical
// with observation fully on (span session + topdown accumulators on
// the context) and fully off.
func TestExecuteObservedBytesInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs harness cells; skipped in -short")
	}
	for _, spec := range []JobSpec{validEncodeSpec(), quickExperimentSpec()} {
		spec.Normalize()
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		resetTelemetryState()
		plain, err := Execute(context.Background(), &spec)
		if err != nil {
			t.Fatal(err)
		}
		resetTelemetryState()
		ctx := topdown.WithAccumulator(context.Background(), topdown.NewAccumulator())
		ctx = topdown.WithAccumulator(ctx, topdown.NewAccumulator())
		observed, err := ExecuteObserved(ctx, &spec, obs.NewSession())
		if err != nil {
			t.Fatal(err)
		}
		if string(plain.Encode()) != string(observed.Encode()) {
			t.Errorf("spec %s: result bytes differ with telemetry on", spec.Key()[:12])
		}
	}
}
