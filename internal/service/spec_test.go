package service

import (
	"strings"
	"testing"
)

func validEncodeSpec() JobSpec {
	return JobSpec{
		Kind: KindEncode, Family: "x264", Clip: "desktop",
		Frames: 2, ScaleDiv: 32, CRF: 28, Preset: 4, Threads: 1,
	}
}

func TestSpecKeyIgnoresScheduling(t *testing.T) {
	a := validEncodeSpec()
	b := validEncodeSpec()
	b.Priority = PriorityBatch
	b.TimeoutMS = 5000
	a.Normalize()
	b.Normalize()
	if a.Key() != b.Key() {
		t.Errorf("priority/timeout changed the content key:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := validEncodeSpec()
	c.CRF = 29
	c.Normalize()
	if c.Key() == a.Key() {
		t.Error("different CRF produced the same key")
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	implicit := JobSpec{Kind: KindEncode, Family: "x264", Clip: "desktop", CRF: 28, Preset: 4}
	implicit.Normalize()
	explicit := JobSpec{Kind: KindEncode, Family: "x264", Clip: "desktop",
		Frames: 4, ScaleDiv: 16, CRF: 28, Preset: 4, Threads: 1}
	explicit.Normalize()
	if implicit.Key() != explicit.Key() {
		t.Errorf("defaulted spec does not canonicalize to the explicit form:\n%s\n%s",
			implicit.Canonical(), explicit.Canonical())
	}

	// Irrelevant fields are cleared per kind, so they cannot split keys.
	enc := validEncodeSpec()
	enc.Experiment = "fig1"
	enc.Quick = true
	enc.Normalize()
	if enc.Experiment != "" || enc.Quick {
		t.Error("encode spec kept experiment fields after Normalize")
	}
	exp := JobSpec{Kind: KindExperiment, Experiment: "fig1", Family: "x264", CRF: 10}
	exp.Normalize()
	if exp.Family != "" || exp.CRF != 0 {
		t.Error("experiment spec kept encode fields after Normalize")
	}

	p := validEncodeSpec()
	p.Priority = 99
	p.Normalize()
	if p.Priority != PriorityBatch {
		t.Errorf("priority not clamped: %d", p.Priority)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string // substring of the error, "" = valid
	}{
		{"valid", func(s *JobSpec) {}, ""},
		{"bad kind", func(s *JobSpec) { s.Kind = "transcode" }, "unknown job kind"},
		{"bad family", func(s *JobSpec) { s.Family = "av2" }, "unknown family"},
		{"bad clip", func(s *JobSpec) { s.Clip = "no-such-clip" }, "unknown vbench clip"},
		{"crf high", func(s *JobSpec) { s.CRF = 99 }, "crf 99 out of range"},
		{"frames high", func(s *JobSpec) { s.Frames = 1000 }, "frames 1000 out of range"},
		{"threads high", func(s *JobSpec) { s.Threads = 99 }, "threads 99 out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validEncodeSpec()
			tc.mut(&s)
			s.Normalize()
			err := s.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	exp := JobSpec{Kind: KindExperiment, Experiment: "fig1"}
	exp.Normalize()
	if err := exp.Validate(); err != nil {
		t.Errorf("valid experiment rejected: %v", err)
	}
	exp.Experiment = "fig99"
	if err := exp.Validate(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
