package service

import (
	"errors"
	"testing"
	"time"
)

func qjob(prio int) *job {
	s := validEncodeSpec()
	s.Priority = prio
	s.CRF = 20 + prio // make specs distinct
	return newJob(s, "")
}

func TestQueuePriorityThenArrival(t *testing.T) {
	q := newQueue(16, false)
	interactive := qjob(PriorityInteractive)
	batch := qjob(PriorityBatch)
	defA := qjob(PriorityDefault)
	defB := qjob(PriorityDefault)
	defB.spec.Frames = 3 // distinct from defA
	for _, j := range []*job{batch, defA, defB, interactive} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []*job{interactive, defA, defB, batch}
	for i, w := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if j != w {
			t.Fatalf("pop %d: got priority %d seq %d, want priority %d seq %d",
				i, j.spec.Priority, j.seq, w.spec.Priority, w.seq)
		}
	}
}

func TestQueueSaturation(t *testing.T) {
	q := newQueue(2, false)
	if err := q.push(qjob(0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(1)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(2)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third push: err = %v, want ErrSaturated", err)
	}
	if d := q.depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	// Popping frees a slot.
	q.pop()
	if err := q.push(qjob(2)); err != nil {
		t.Errorf("push after pop: %v", err)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(8, false)
	q.push(qjob(0))
	q.push(qjob(1))
	q.close()
	if err := q.push(qjob(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: err = %v, want ErrClosed", err)
	}
	// Already-queued jobs still drain...
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close returned !ok before drain", i)
		}
	}
	// ...then pop reports exhaustion.
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a job from a closed empty queue")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue(4, false)
	got := make(chan *job, 1)
	go func() {
		j, ok := q.pop()
		if ok {
			got <- j
		}
	}()
	// The popper must be parked, not spinning on an empty queue.
	select {
	case <-got:
		t.Fatal("pop returned from an empty queue")
	case <-time.After(10 * time.Millisecond):
	}
	want := qjob(1)
	if err := q.push(want); err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-got:
		if j != want {
			t.Fatal("popped a different job")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("push did not wake the popper")
	}
}
