package service

import (
	"net/http"

	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
)

// Distributed-trace endpoints. Every vcprofd keeps a bounded hop log
// (see internal/obs/hop.go) and serves its slice of any trace id; a
// gate collects slices from all shards and merges them, and a
// single-daemon deployment is just the degenerate one-slice merge —
// GET /v1/cluster/trace/{id} here answers exactly what a gate would
// assemble for a one-shard cluster, which is what the topology
// equivalence tests pin.

// traceSliceWire is the slice-exchange document: the emitting process,
// the trace id, and its hop events in emission order. Merging,
// deduplication and clock alignment happen at the collector — slices
// stay raw so the same bytes serve any view.
type traceSliceWire struct {
	Proc   string         `json:"proc"`
	Trace  string         `json:"trace"`
	Events []obs.HopEvent `json:"events"`
}

func (s *Server) handleTraceSlice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, "bad trace id %q", id)
		return
	}
	// An unknown trace answers 200 with zero events, not 404: a shard
	// that never saw the job legitimately has an empty slice, and the
	// collector must not treat that as a failed shard.
	writeJSON(w, http.StatusOK, traceSliceWire{
		Proc: s.hops.Proc(), Trace: id, Events: s.hops.Slice(id),
	})
}

func (s *Server) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !obs.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, "bad trace id %q", id)
		return
	}
	includeVolatile := r.URL.Query().Get("volatile") != "0"
	merged := obs.MergeHops([][]obs.HopEvent{s.hops.Slice(id)}, includeVolatile)
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteHopTrace(w, merged); err != nil {
		// Headers are gone; nothing more to do than drop the conn.
		return
	}
}

func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.SLOFromRegistry())
}

// shortArg truncates a content hash to the 16-hex-char prefix hop
// events carry — long enough to be unambiguous in a trace, short
// enough to keep exports compact.
func shortArg(s string) string {
	if len(s) > 16 {
		return s[:16]
	}
	return s
}
