package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"vcprof/internal/live"
)

func liveTestSpec() live.SessionSpec {
	return live.SessionSpec{
		Clip: "game1", Frames: 16, Div: 8,
		Family: "svt-av1", CRF: 28, Preset: 8,
		GOP: 8, FPS: 30, Deadline: 16,
		Rungs: []int{36, 44}, Share: true,
	}
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: bad body (HTTP %d): %v", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

func foldWire(t *testing.T, gops []live.GOPResult) string {
	t.Helper()
	var ds [][32]byte
	for _, g := range gops {
		b, err := hex.DecodeString(g.Digest)
		if err != nil || len(b) != 32 {
			t.Fatalf("bad wire digest %q", g.Digest)
		}
		var d [32]byte
		copy(d[:], b)
		ds = append(ds, d)
	}
	return live.SessionDigest(ds)
}

// TestSessionHTTPMatchesDirect drives a session over the HTTP surface
// and checks the wire digests and stats are byte-identical with an
// in-process engine run — transport must not touch outputs.
func TestSessionHTTPMatchesDirect(t *testing.T) {
	spec := liveTestSpec()
	direct, err := live.New(spec, live.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var directGOPs []live.GOPResult
	gs, err := direct.Feed(context.Background(), spec.Frames, true)
	if err != nil {
		t.Fatal(err)
	}
	directGOPs = append(directGOPs, gs...)

	_, hts := testServer(t, Config{Workers: 2}, true)
	var created sessionCreateResp
	if code := postJSON(t, hts.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &created); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}

	// Feed in two batches with a replayed watermark in between — the
	// replay must be a no-op, not a double-feed.
	var wire []live.GOPResult
	var feed sessionFeedResp
	for _, req := range []sessionFeedReq{{Fed: 8}, {Fed: 8}, {Fed: 16, EOS: true}} {
		if code := postJSON(t, hts.URL+"/v1/sessions/"+created.ID+"/frames", req, &feed); code != http.StatusOK {
			t.Fatalf("feed %+v: HTTP %d", req, code)
		}
		wire = append(wire, feed.GOPs...)
	}
	if got, want := foldWire(t, wire), foldWire(t, directGOPs); got != want {
		t.Fatalf("HTTP digest %s != direct %s", got, want)
	}
	if ds, ws := direct.Stats(), feed.Stats; ds.Misses != ws.Misses || ds.Insts != ws.Insts || ds.FinishTick != ws.FinishTick {
		t.Fatalf("stats diverged: direct=%+v wire=%+v", ds, ws)
	}
	if !feed.Stats.Done {
		t.Fatalf("session not done after eos: %+v", feed.Stats)
	}
	for _, g := range wire {
		if g.Bitstreams != nil {
			t.Fatalf("bitstreams leaked onto the wire")
		}
	}
	// The finished session is gone from the table.
	resp, err := http.Get(hts.URL + "/v1/sessions/" + created.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats after eos: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestSessionResumeOverHTTP re-anchors a half-fed session on a second
// daemon via the resume token and checks the combined digests equal a
// straight single-daemon run — the failover building block the gate
// leans on.
func TestSessionResumeOverHTTP(t *testing.T) {
	spec := liveTestSpec()
	_, hts1 := testServer(t, Config{Workers: 2}, true)
	_, hts2 := testServer(t, Config{Workers: 2}, true)

	var created sessionCreateResp
	postJSON(t, hts1.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &created)
	var feed sessionFeedResp
	if code := postJSON(t, hts1.URL+"/v1/sessions/"+created.ID+"/frames", sessionFeedReq{Fed: 8}, &feed); code != http.StatusOK {
		t.Fatalf("feed: HTTP %d", code)
	}
	gops := append([]live.GOPResult{}, feed.GOPs...)
	tok := feed.Resume

	var created2 sessionCreateResp
	if code := postJSON(t, hts2.URL+"/v1/sessions", sessionCreateReq{Spec: spec, Resume: &tok}, &created2); code != http.StatusCreated {
		t.Fatalf("resume create: HTTP %d", code)
	}
	if !created2.Resumed {
		t.Fatalf("resume flag not echoed")
	}
	if code := postJSON(t, hts2.URL+"/v1/sessions/"+created2.ID+"/frames", sessionFeedReq{Fed: 16, EOS: true}, &feed); code != http.StatusOK {
		t.Fatalf("resumed feed: HTTP %d", code)
	}
	gops = append(gops, feed.GOPs...)

	direct, err := live.New(spec, live.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := direct.Feed(context.Background(), spec.Frames, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := foldWire(t, gops), foldWire(t, dg); got != want {
		t.Fatalf("resumed digest %s != straight %s", got, want)
	}
}

// TestSessionDrain checks the graceful-drain contract: shutdown refuses
// new feeds with 503 but the drained server has fully encoded
// everything it accepted (the session table empties through eos before
// Shutdown returns).
func TestSessionDrain(t *testing.T) {
	spec := liveTestSpec()
	spec.Frames = 8
	spec.Rungs = nil
	srv, hts := testServer(t, Config{Workers: 1}, true)

	var created sessionCreateResp
	postJSON(t, hts.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &created)
	var feed sessionFeedResp
	if code := postJSON(t, hts.URL+"/v1/sessions/"+created.ID+"/frames", sessionFeedReq{Fed: 8, EOS: true}, &feed); code != http.StatusOK {
		t.Fatalf("feed: HTTP %d", code)
	}
	if !feed.Stats.Done || feed.Stats.Encoded != 8 {
		t.Fatalf("feed incomplete before drain: %+v", feed.Stats)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Draining server refuses new sessions and feeds.
	if code := postJSON(t, hts.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &sessionCreateResp{}); code != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: HTTP %d, want 503", code)
	}
}
