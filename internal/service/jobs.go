package service

import (
	"sync"
	"time"
)

// Job lifecycle states, as reported by GET /v1/jobs/{id}.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// job is one tracked submission. The spec (and derived key) is
// immutable after construction; seq is written once by the queue under
// its own mutex before any worker can see the job; state and errMsg
// change only under the owning jobShard's mutex. done is closed (under
// the shard lock) exactly when the job reaches a terminal state, so
// synchronous waiters need no polling.
type job struct {
	spec JobSpec
	key  string
	seq  uint64 // queue arrival order, assigned by queue.push
	// cost is the static admission cost estimate (spec.EstimatedCost)
	// and class its size bucket for the queue-wait histograms. Both are
	// scheduling hints: they steer pop order and telemetry, and are
	// excluded from the canonical spec, so they never touch the key or
	// the result bytes.
	cost  uint64
	class costClass
	// ocost is the cost the queue actually orders by: cost under the
	// sjf policy, 0 under fifo. Written once by queue.push, with seq.
	ocost uint64
	// enqueuedAt stamps admission for the queue-wait histogram —
	// telemetry only, never part of the result document. Written once
	// at construction, before the job is published to the queue.
	enqueuedAt time.Time
	// traceID is the propagated (or key-derived) hop-trace id. Written
	// once at construction; observability only, never in the result.
	traceID string

	state  string
	errMsg string
	done   chan struct{}
}

func newJob(spec JobSpec, traceID string) *job {
	cost := spec.EstimatedCost()
	return &job{spec: spec, key: spec.Key(), cost: cost, class: classOf(cost),
		traceID: traceID, state: StateQueued, done: make(chan struct{}), enqueuedAt: time.Now()}
}

// jobShards is the stripe count of the in-flight table. Keys are
// uniformly distributed hex SHA-256, so the first byte is an unbiased
// shard selector.
const jobShards = 16

// jobTable is the sharded in-flight job map, keyed by content address.
// Sharding keeps submit/poll traffic from serializing on one lock while
// the worker pool updates states.
type jobTable struct {
	shards [jobShards]jobShard
}

type jobShard struct {
	mu sync.Mutex
	m  map[string]*job
}

func newJobTable() *jobTable {
	t := &jobTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*job)
	}
	return t
}

func (t *jobTable) shard(key string) *jobShard {
	if len(key) == 0 {
		return &t.shards[0]
	}
	// Keys are lowercase hex; the first two nibbles give 0..255.
	v := hexNibble(key[0])
	if len(key) > 1 {
		v = v<<4 | hexNibble(key[1])
	}
	return &t.shards[v%jobShards]
}

func hexNibble(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}

// getOrAdd returns the tracked job for a key, creating and registering
// a fresh one when absent. loaded reports whether an existing job was
// joined (the singleflight path: the duplicate submission shares the
// original's computation and result).
func (t *jobTable) getOrAdd(spec JobSpec, key, traceID string) (j *job, loaded bool) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.m[key]; ok && cur.state != StateFailed {
		return cur, true
	}
	// Absent, or present but failed: a failed job is replaced by a
	// fresh attempt (timeouts are the common failure, and a retry may
	// have a longer budget).
	j = newJob(spec, traceID)
	sh.m[key] = j
	return j, false
}

// get looks up a tracked job.
func (t *jobTable) get(key string) (*job, bool) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	j, ok := sh.m[key]
	return j, ok
}

// remove untracks a job (admission failed; it never entered the queue).
func (t *jobTable) remove(key string, j *job) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.m[key]; ok && cur == j {
		delete(sh.m, key)
	}
}

// setState transitions a job. Terminal states close done.
func (t *jobTable) setState(j *job, state, errMsg string) {
	sh := t.shard(j.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.state = state
	j.errMsg = errMsg
	if state == StateDone || state == StateFailed {
		close(j.done)
	}
	// Done jobs are untracked — their results live in the store, which
	// answers all later polls. Failed jobs stay tracked so pollers can
	// read the error; a resubmission replaces them.
	if state == StateDone {
		if cur, ok := sh.m[j.key]; ok && cur == j {
			delete(sh.m, j.key)
		}
	}
}

// snapshot reads a job's current state and error consistently.
func (t *jobTable) snapshot(j *job) (state, errMsg string) {
	sh := t.shard(j.key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return j.state, j.errMsg
}
