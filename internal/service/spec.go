// Package service wraps the harness measurement engine in a long-lived
// HTTP daemon: a bounded priority job queue with admission control, a
// sharded worker pool that reuses the engine's process-wide memo cache,
// and a content-addressed disk store so results survive restarts and
// repeat traffic is served without recomputation. cmd/vcprofd is the
// server binary; cmd/vcload is the closed-loop load generator that
// turns the service itself into a measurable workload.
//
// Everything the service computes is deterministic: a job's result
// bytes depend only on its canonical spec, never on scheduling, worker
// count, or whether the bytes came from memory, disk, or a fresh
// computation. That is the property the lifecycle tests and vcload's
// cross-pass digest comparison pin.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vcprof/internal/encoders"
	"vcprof/internal/harness"
	"vcprof/internal/video"
)

// Job kinds.
const (
	KindEncode     = "encode"     // one counted encode at an operating point
	KindExperiment = "experiment" // one registered paper experiment
)

// Priority classes. Lower runs first; the queue orders by (priority,
// arrival).
const (
	PriorityInteractive = 0
	PriorityDefault     = 1
	PriorityBatch       = 2
)

// JobSpec is the wire form of one job request. The zero value of every
// optional field is replaced by its default in Normalize, so two specs
// that describe the same work canonicalize to the same bytes and
// therefore the same key — the content address under which the result
// is queued, deduplicated, and stored.
type JobSpec struct {
	Kind     string `json:"kind"`
	Priority int    `json:"priority"`
	// TimeoutMS bounds the job's execution (0 = server default).
	TimeoutMS int64 `json:"timeout_ms"`

	// Encode jobs: the operating point.
	Family   string `json:"family,omitempty"`
	Clip     string `json:"clip,omitempty"`
	Frames   int    `json:"frames,omitempty"`
	ScaleDiv int    `json:"scale_div,omitempty"`
	CRF      int    `json:"crf,omitempty"`
	Preset   int    `json:"preset,omitempty"`
	Threads  int    `json:"threads,omitempty"`

	// Experiment jobs: a registered experiment ID ("fig4", "table2")
	// and the scale preset to run it at.
	Experiment string `json:"experiment,omitempty"`
	Quick      bool   `json:"quick,omitempty"`
}

// Normalize fills defaults in place. It must run before Validate and
// Key so equivalent requests share one canonical form.
func (s *JobSpec) Normalize() {
	switch s.Kind {
	case KindEncode:
		if s.Frames == 0 {
			s.Frames = 4
		}
		if s.ScaleDiv == 0 {
			s.ScaleDiv = 16
		}
		if s.Threads == 0 {
			s.Threads = 1
		}
		s.Experiment = ""
		s.Quick = false
	case KindExperiment:
		s.Family = ""
		s.Clip = ""
		s.Frames, s.ScaleDiv, s.CRF, s.Preset, s.Threads = 0, 0, 0, 0, 0
	}
	if s.Priority < PriorityInteractive {
		s.Priority = PriorityInteractive
	}
	if s.Priority > PriorityBatch {
		s.Priority = PriorityBatch
	}
	if s.TimeoutMS < 0 {
		s.TimeoutMS = 0
	}
}

// Validate checks a normalized spec against the encoder catalog, the
// clip catalog and the experiment registry.
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case KindEncode:
		enc, err := encoders.New(encoders.Family(s.Family))
		if err != nil {
			return err
		}
		if _, err := video.LookupClip(s.Clip); err != nil {
			return err
		}
		if s.Frames < 1 || s.Frames > 64 {
			return fmt.Errorf("service: frames %d out of range [1, 64]", s.Frames)
		}
		if s.ScaleDiv < 1 || s.ScaleDiv > 64 {
			return fmt.Errorf("service: scale_div %d out of range [1, 64]", s.ScaleDiv)
		}
		if lo, hi := enc.CRFRange(); s.CRF < lo || s.CRF > hi {
			return fmt.Errorf("service: %s crf %d out of range [%d, %d]", s.Family, s.CRF, lo, hi)
		}
		if lo, hi, _ := enc.PresetRange(); s.Preset < lo || s.Preset > hi {
			return fmt.Errorf("service: %s preset %d out of range [%d, %d]", s.Family, s.Preset, lo, hi)
		}
		// 0 threads is the 1-thread default (encoders.Options.Threads);
		// Normalize folds it, and direct Validate callers accept it too.
		if s.Threads < 0 || s.Threads > 16 {
			return fmt.Errorf("service: threads %d out of range [0, 16]", s.Threads)
		}
	case KindExperiment:
		if _, err := harness.Lookup(s.Experiment); err != nil {
			return err
		}
	default:
		return fmt.Errorf("service: unknown job kind %q (want %q or %q)", s.Kind, KindEncode, KindExperiment)
	}
	return nil
}

// Canonical returns the canonical byte form of a normalized spec: JSON
// with every semantic field explicit and in fixed struct order. The
// priority and timeout are scheduling hints, not part of the work, so
// they are excluded — an interactive and a batch request for the same
// measurement share one result.
func (s *JobSpec) Canonical() []byte {
	c := *s
	c.Priority = 0
	c.TimeoutMS = 0
	b, err := json.Marshal(&c)
	if err != nil {
		// A JobSpec contains only marshalable scalar fields.
		panic("service: canonical marshal: " + err.Error())
	}
	return b
}

// Key returns the content address of the spec: the hex SHA-256 of its
// canonical form. Keys double as job IDs, which is what makes duplicate
// submissions converge on one computation and one stored object.
func (s *JobSpec) Key() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}

// Experiment cost constants: a registered experiment runs a whole cell
// grid, so either scale outranks any single encode the admission table
// can produce (the largest encode spec costs well under 2³²).
const (
	expQuickCost uint64 = 1 << 32
	expFullCost  uint64 = 1 << 36
)

// EstimatedCost is the admission-control cost estimate of a normalized
// spec: the static (resolution × frames × family × effort) table from
// encoders.CostHint for encode jobs, and large scale-ranked constants
// for experiment jobs. It orders the queue under the sjf policy and
// buckets the queue-wait histograms; it is derived, never serialized,
// so the content address is identical whichever policy admitted the
// job.
func (s *JobSpec) EstimatedCost() uint64 {
	switch s.Kind {
	case KindEncode:
		meta, err := video.LookupClip(s.Clip)
		if err != nil {
			return 1
		}
		m := meta.Scale(s.ScaleDiv)
		return encoders.CostHint(encoders.Family(s.Family), m.Width*m.Height, s.Frames, s.CRF, s.Preset)
	case KindExperiment:
		if s.Quick {
			return expQuickCost
		}
		return expFullCost
	}
	return 1
}

// costClass buckets job costs for the queue-wait-by-size histograms,
// which is what makes "do light jobs still wait behind heavy ones?"
// answerable from /metrics alone.
type costClass uint8

const (
	classSmall costClass = iota
	classMedium
	classLarge
)

// Class thresholds, in CostHint units: a default-scale x264 encode
// lands small, the slower families land medium, 4×-resolution or
// long-frame encodes and all experiments land large.
const (
	classMediumMin = 1 << 19
	classLargeMin  = 1 << 23
)

func classOf(cost uint64) costClass {
	switch {
	case cost < classMediumMin:
		return classSmall
	case cost < classLargeMin:
		return classMedium
	default:
		return classLarge
	}
}

// cell lowers an encode spec onto the harness cell grid.
func (s *JobSpec) cell() harness.Cell {
	return harness.Cell{
		Kind:    harness.CellCounted,
		Family:  encoders.Family(s.Family),
		Clip:    s.Clip,
		Frames:  s.Frames,
		Div:     s.ScaleDiv,
		CRF:     s.CRF,
		Preset:  s.Preset,
		Threads: s.Threads,
	}
}
