package service

import "vcprof/internal/obs"

// Service counters, named per internal/telemetry/naming.go.
// Deterministic counters depend only on the set of jobs the server was
// asked to complete (fixed request mix → fixed totals, any worker
// count); volatile counters measure races the scheduler decides —
// whether a duplicate arrived while its twin was still in flight,
// whether the queue happened to be full — and are excluded from every
// byte-compared export, as usual.
var (
	obsJobsSubmitted = obs.NewCounter("svc.jobs.submitted") // accepted into the queue
	obsJobsCompleted = obs.NewCounter("svc.jobs.completed")
	obsJobsFailed    = obs.NewCounter("svc.jobs.failed")

	obsJobsDeduped  = obs.NewVolatileCounter("svc.jobs.deduped")  // joined an in-flight twin
	obsJobsCached   = obs.NewVolatileCounter("svc.jobs.cached")   // answered from the store at submit
	obsJobsRejected = obs.NewVolatileCounter("svc.jobs.rejected") // 429: queue saturated
	obsJobsRefused  = obs.NewVolatileCounter("svc.jobs.refused")  // 503: draining
	obsQueuePeak    = obs.NewVolatileCounter("svc.queue.depth_peak")

	// Store traffic is scheduling-shaped too: a duplicate that joins an
	// in-flight job never reads the store, one that arrives later does,
	// and eviction churn can force a re-put of recomputed bytes.
	obsStoreHits      = obs.NewVolatileCounter("svc.store.hits")
	obsStoreMisses    = obs.NewVolatileCounter("svc.store.misses")
	obsStoreEvictions = obs.NewVolatileCounter("svc.store.evictions")
	obsStorePutBytes  = obs.NewVolatileCounter("svc.store.put_bytes")

	// Cluster traffic: replica writes a gate pushed (PUT /v1/results)
	// and ownership-hint probes (HEAD /v1/results). Volatile — both
	// follow the router's racing, not the job set.
	obsReplicaPuts = obs.NewVolatileCounter("svc.replica.puts")
	obsOwnerProbes = obs.NewVolatileCounter("svc.owner.probes")

	// Span names for worker job lanes in the Chrome trace.
	obsJobDoneName   = obs.Name("job/done")
	obsJobFailedName = obs.Name("job/failed")
)
