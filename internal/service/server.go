package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

// Config sizes a Server. Zero values select the defaults noted inline.
type Config struct {
	StoreDir      string // result store root (required)
	StoreMaxBytes int64  // store budget (default 1 GiB)
	Workers       int    // worker pool size (default 4)
	QueueCap      int    // queued-job bound before 429 (default 64)
	// DefaultTimeout bounds a job whose spec carries no timeout
	// (default 2m). Specs may only tighten it, never exceed it.
	DefaultTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight and queued jobs
	// get this long to finish before the base context is cancelled and
	// they abort at the next task boundary (default 10s).
	DrainTimeout time.Duration
	// Obs, when non-nil, receives one span lane per worker plus the
	// service counters; /debug/trace exports it. nil disables tracing.
	Obs *obs.Session
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Server is the vcprofd core: admission control, the job table, the
// worker pool and the result store, behind a plain http.Handler so the
// transport (real listener in cmd/vcprofd, httptest in the lifecycle
// tests) stays outside.
type Server struct {
	cfg   Config
	store *Store
	q     *queue
	jobs  *jobTable
	board *traceBoard

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	draining   atomic.Bool
}

// NewServer opens the store and builds a stopped server; Start launches
// the workers. The base context — parent of every job — is derived from
// ctx, so cancelling ctx hard-stops all computation.
func NewServer(ctx context.Context, cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("service: Config.StoreDir is required")
	}
	store, err := OpenStore(cfg.StoreDir, cfg.StoreMaxBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		q:     newQueue(cfg.QueueCap),
		jobs:  newJobTable(),
		board: newTraceBoard(cfg.Obs, cfg.Workers),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(ctx)
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
}

// Store exposes the result store (read-side: tests and vcprofd stats).
func (s *Server) Store() *Store { return s.store }

// Shutdown drains the server: admission stops (new submissions get
// 503), queued and in-flight jobs get until ctx's deadline to finish,
// then the base context is cancelled and stragglers abort at their next
// task boundary. The store index is flushed last, so a warm restart
// resumes with the same LRU order. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.q.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: abort in-flight jobs and wait for the pool
		// to notice (task boundaries are fine-grained, so this is fast).
		err = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	if ferr := s.store.Flush(); err == nil {
		err = ferr
	}
	return err
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// jobStatus is the wire form of a job's state.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := spec.Key()
	if s.store.Contains(key) {
		obsJobsCached.Add(1)
		writeJSON(w, http.StatusOK, jobStatus{ID: key, Status: StateDone, Cached: true})
		return
	}
	j, joined := s.jobs.getOrAdd(spec, key)
	if joined {
		// Singleflight: this submission rides the identical in-flight
		// job; one computation will satisfy both.
		obsJobsDeduped.Add(1)
		state, _ := s.jobs.snapshot(j)
		writeJSON(w, http.StatusAccepted, jobStatus{ID: key, Status: state})
		return
	}
	if err := s.q.push(j); err != nil {
		s.jobs.remove(key, j)
		switch err {
		case ErrSaturated:
			obsJobsRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue saturated (%d queued)", s.q.depth())
		default:
			obsJobsRefused.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		}
		return
	}
	obsJobsSubmitted.Add(1)
	obsQueuePeak.Max(uint64(s.q.depth()))
	writeJSON(w, http.StatusAccepted, jobStatus{ID: key, Status: StateQueued})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.jobs.get(id); ok {
		state, errMsg := s.jobs.snapshot(j)
		writeJSON(w, http.StatusOK, jobStatus{ID: id, Status: state, Error: errMsg})
		return
	}
	if s.store.Contains(id) {
		writeJSON(w, http.StatusOK, jobStatus{ID: id, Status: StateDone, Cached: true})
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %q", id)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok, err := s.store.Get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	if j, ok := s.jobs.get(id); ok {
		state, errMsg := s.jobs.snapshot(j)
		if state == StateFailed {
			writeJSON(w, http.StatusInternalServerError, jobStatus{ID: id, Status: state, Error: errMsg})
			return
		}
		// Known but not finished: poll again.
		writeJSON(w, http.StatusConflict, jobStatus{ID: id, Status: state})
		return
	}
	writeError(w, http.StatusNotFound, "no result for %q", id)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, obs.RenderCounters(true))
	st := s.store.Stats()
	cc := harness.CellCacheStats()
	fmt.Fprintf(w, "-- service --\n")
	fmt.Fprintf(w, "queue.depth     %d\n", s.q.depth())
	fmt.Fprintf(w, "store.objects   %d\n", st.Objects)
	fmt.Fprintf(w, "store.bytes     %d\n", st.Bytes)
	fmt.Fprintf(w, "store.cap       %d\n", st.Cap)
	fmt.Fprintf(w, "cells.hits      %d\n", cc.Hits)
	fmt.Fprintf(w, "cells.misses    %d\n", cc.Misses)
	fmt.Fprintf(w, "cells.entries   %d\n", cc.Entries)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.board.enabled() {
		writeError(w, http.StatusNotFound, "tracing disabled (start vcprofd with -trace)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.board.export(w); err != nil {
		// Too late for a status change; the body is already partial.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
