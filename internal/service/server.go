package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vcprof/internal/obs"
	"vcprof/internal/sched"
	"vcprof/internal/telemetry"
)

// Config sizes a Server. Zero values select the defaults noted inline.
type Config struct {
	StoreDir      string // result store root (required)
	StoreMaxBytes int64  // store budget (default 1 GiB)
	Workers       int    // worker pool size (default 4)
	QueueCap      int    // queued-job bound before 429 (default 64)
	// DefaultTimeout bounds a job whose spec carries no timeout
	// (default 2m). Specs may only tighten it, never exceed it.
	DefaultTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight and queued jobs
	// get this long to finish before the base context is cancelled and
	// they abort at the next task boundary (default 10s).
	DrainTimeout time.Duration
	// Obs, when non-nil, receives one span lane per worker plus the
	// service counters; /debug/trace exports it, and each traced job
	// gets its own session folded into /debug/profile afterwards. nil
	// disables tracing.
	Obs *obs.Session
	// SampleInterval is the telemetry sampler tick: every interval one
	// gauge snapshot row lands in the ring-buffer series behind
	// /v1/telemetry/series. Zero disables sampling (the endpoint then
	// reports 404) — sampling is strictly read-only, so results are
	// byte-identical either way.
	SampleInterval time.Duration
	// SeriesCap bounds the ring buffer (default 1024 samples).
	SeriesCap int
	// ShardWorkers sizes the work-stealing shard pool every job's cells
	// and encode shards run on (default: Workers). The pool is shared
	// across jobs — that sharing is what lets a light job's shards
	// interleave with a heavy encode already in flight.
	ShardWorkers int
	// DisableSharding turns the shard pool off: jobs then run their
	// cells serially inside their worker goroutine, the pre-scheduler
	// behavior. Result bytes are identical either way; the knob exists
	// for A/B latency comparison (see scripts/sched_smoke.sh).
	DisableSharding bool
	// StealSeed seeds the shard pool's victim-selection PRNG (0 means
	// 1). Any seed serves byte-identical results.
	StealSeed uint64
	// Admission selects the queue policy: "sjf" (the default) orders
	// equal-priority jobs by their static cost estimate, shortest
	// first; "fifo" by arrival alone.
	Admission string
	// ShardName identifies this daemon in a vcgate cluster; it is
	// echoed by GET /v1/registry so router probes can confirm they
	// reached the shard they meant to (default "vcprofd").
	ShardName string
	// HopTraces bounds the distributed-tracing hop log: how many trace
	// ids this daemon retains hop events for, FIFO-evicted (default
	// 512). Hop tracing is always on — emission is two map ops per
	// lifecycle edge, far off the encode path.
	HopTraces int
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.SeriesCap < 1 {
		c.SeriesCap = 1024
	}
	if c.ShardWorkers < 1 {
		c.ShardWorkers = c.Workers
	}
	if c.Admission == "" {
		c.Admission = "sjf"
	}
	if c.ShardName == "" {
		c.ShardName = "vcprofd"
	}
	if c.HopTraces < 1 {
		c.HopTraces = 512
	}
}

// Server is the vcprofd core: admission control, the job table, the
// worker pool and the result store, behind a plain http.Handler so the
// transport (real listener in cmd/vcprofd, httptest in the lifecycle
// tests) stays outside.
type Server struct {
	cfg      Config
	store    *Store
	q        *queue
	jobs     *jobTable
	board    *traceBoard
	tele     *teleBoard
	sessions *sessionTable
	hops     *obs.HopLog
	pool     *sched.Pool // shared shard scheduler; nil when sharding is disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	draining   atomic.Bool

	samplerStop chan struct{}
	samplerOnce sync.Once
	samplerWG   sync.WaitGroup
}

// NewServer opens the store and builds a stopped server; Start launches
// the workers. The base context — parent of every job — is derived from
// ctx, so cancelling ctx hard-stops all computation.
func NewServer(ctx context.Context, cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("service: Config.StoreDir is required")
	}
	switch cfg.Admission {
	case "sjf", "fifo":
	default:
		return nil, fmt.Errorf("service: unknown admission policy %q (want \"sjf\" or \"fifo\")", cfg.Admission)
	}
	store, err := OpenStore(cfg.StoreDir, cfg.StoreMaxBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		store:       store,
		q:           newQueue(cfg.QueueCap, cfg.Admission == "sjf"),
		jobs:        newJobTable(),
		board:       newTraceBoard(cfg.Obs, cfg.Workers, cfg.ShardWorkers),
		sessions:    newSessionTable(),
		hops:        obs.NewHopLog(cfg.ShardName, cfg.HopTraces),
		samplerStop: make(chan struct{}),
	}
	if !cfg.DisableSharding {
		s.pool = sched.NewPool(sched.Config{
			Workers:  cfg.ShardWorkers,
			Seed:     cfg.StealSeed,
			Observer: s.board.shardObserver(),
		})
	}
	s.tele = newTeleBoard(s, cfg.SeriesCap)
	s.baseCtx, s.baseCancel = context.WithCancel(ctx)
	return s, nil
}

// Start launches the worker pool and, when configured, the telemetry
// sampler.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	if s.cfg.SampleInterval > 0 {
		s.samplerWG.Add(1)
		go s.sampleLoop()
	}
}

// sampleLoop appends one gauge row per tick until shutdown. It lives
// outside the worker WaitGroup: the drain waits for jobs, not for the
// sampler, which stops via its own channel the moment Shutdown begins.
func (s *Server) sampleLoop() {
	defer s.samplerWG.Done()
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.samplerStop:
			return
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			s.tele.series.Sample(now.UnixMilli())
		}
	}
}

func (s *Server) stopSampler() {
	s.samplerOnce.Do(func() { close(s.samplerStop) })
	s.samplerWG.Wait()
}

// Store exposes the result store (read-side: tests and vcprofd stats).
func (s *Server) Store() *Store { return s.store }

// Shutdown drains the server: admission stops (new submissions get
// 503), queued and in-flight jobs get until ctx's deadline to finish,
// then the base context is cancelled and stragglers abort at their next
// task boundary. The store index is flushed last, so a warm restart
// resumes with the same LRU order. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopSampler()
	s.q.close()
	// Live sessions stop admitting feeds now; ones already accepted
	// finish their in-flight GOPs before the pool closes.
	s.sessions.close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.sessions.wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: abort in-flight jobs and wait for the pool
		// to notice (task boundaries are fine-grained, so this is fast).
		err = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	// Streams still open after the drain barrier were cut short by
	// shutdown, not end-of-stream; their traces record the fact so a
	// merged cluster view shows where each stream stopped and why.
	for _, trace := range s.sessions.openTraces() {
		s.hops.Emit(obs.HopEvent{Trace: trace, Kind: obs.HopDrainFinish,
			StartMS: time.Now().UnixMilli()})
	}
	if s.pool != nil {
		// After the worker WaitGroup drains no job can submit new graphs;
		// Close waits for the pool's standing workers to exit.
		s.pool.Close()
	}
	if ferr := s.store.Flush(); err == nil {
		err = ferr
	}
	return err
}

// SchedStats snapshots the shard pool's scheduling counters; ok is
// false when sharding is disabled.
func (s *Server) SchedStats() (sched.Stats, bool) {
	if s.pool == nil {
		return sched.Stats{}, false
	}
	return s.pool.Stats(), true
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", s.handleSessionFeed)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleSessionStats)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("HEAD /v1/results/{id}", s.handleResultHead)
	mux.HandleFunc("PUT /v1/results/{id}", s.handleResultPut)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /v1/jobs/{id}/topdown", s.handleJobTopdown)
	mux.HandleFunc("GET /v1/telemetry/topdown", s.handleTopdown)
	mux.HandleFunc("GET /v1/telemetry/series", s.handleSeries)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTraceSlice)
	mux.HandleFunc("GET /v1/cluster/trace/{id}", s.handleClusterTrace)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/profile", s.handleProfile)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// jobStatus is the wire form of a job's state.
type jobStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := spec.Key()
	if s.store.Contains(key) {
		obsJobsCached.Add(1)
		writeJSON(w, http.StatusOK, jobStatus{ID: key, Status: StateDone, Cached: true})
		return
	}
	j, joined := s.jobs.getOrAdd(spec, key, traceIDFromRequest(r, obs.JobTraceID(key)))
	if joined {
		// Singleflight: this submission rides the identical in-flight
		// job; one computation will satisfy both.
		obsJobsDeduped.Add(1)
		state, _ := s.jobs.snapshot(j)
		writeJSON(w, http.StatusAccepted, jobStatus{ID: key, Status: state})
		return
	}
	if err := s.q.push(j); err != nil {
		s.jobs.remove(key, j)
		switch err {
		case ErrSaturated:
			obsJobsRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue saturated (%d queued)", s.q.depth())
		default:
			obsJobsRefused.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		}
		return
	}
	obsJobsSubmitted.Add(1)
	obsQueuePeak.Max(uint64(s.q.depth()))
	// Deterministic admission hop: the fact the job was admitted is
	// content-derived, so the tuple merges clean across topologies.
	s.hops.Emit(obs.HopEvent{Trace: j.traceID, Kind: obs.HopAdmitted})
	writeJSON(w, http.StatusAccepted, jobStatus{ID: key, Status: StateQueued})
}

// traceIDFromRequest reads the propagated trace id off the wire,
// falling back to the content-derived default — which a gate, deriving
// from the same key, sends anyway. The validation bound keeps
// arbitrary header bytes out of exports.
func traceIDFromRequest(r *http.Request, fallback string) string {
	if v := r.Header.Get(obs.TraceHeader); obs.ValidTraceID(v) {
		return v
	}
	return fallback
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.jobs.get(id); ok {
		state, errMsg := s.jobs.snapshot(j)
		writeJSON(w, http.StatusOK, jobStatus{ID: id, Status: state, Error: errMsg})
		return
	}
	if s.store.Contains(id) {
		writeJSON(w, http.StatusOK, jobStatus{ID: id, Status: StateDone, Cached: true})
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %q", id)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok, err := s.store.Get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	if j, ok := s.jobs.get(id); ok {
		state, errMsg := s.jobs.snapshot(j)
		if state == StateFailed {
			writeJSON(w, http.StatusInternalServerError, jobStatus{ID: id, Status: state, Error: errMsg})
			return
		}
		// Known but not finished: poll again.
		writeJSON(w, http.StatusConflict, jobStatus{ID: id, Status: state})
		return
	}
	writeError(w, http.StatusNotFound, "no result for %q", id)
}

// handleResultHead is the router's ownership-hint probe: 200 when this
// shard's store holds the result, 404 otherwise, no body either way. A
// gate uses it to warm-route and to answer status queries for jobs it
// never drove itself.
func (s *Server) handleResultHead(w http.ResponseWriter, r *http.Request) {
	obsOwnerProbes.Add(1)
	if s.store.Contains(r.PathValue("id")) {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.WriteHeader(http.StatusNotFound)
}

// isResultKey reports whether id has the canonical content-address
// shape: 64 lowercase hex characters (a JobSpec.Key).
func isResultKey(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleResultPut accepts a replica write: a gate pushing completed
// result bytes to this shard so a future routed job finds them warm.
// Keys are content addresses, so re-putting an existing key is a no-op
// and concurrent identical puts converge on the same bytes — the write
// is idempotent by construction.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	id := r.PathValue("id")
	if !isResultKey(id) {
		writeError(w, http.StatusBadRequest, "bad result key %q (want 64 hex chars)", id)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "replica body: %v", err)
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, "empty replica body")
		return
	}
	if err := s.store.Put(id, data); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	obsReplicaPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleRegistry is the lightweight shard-registry protocol: one
// document naming the shard, its lifecycle state, and enough occupancy
// detail for a router to probe health and reason about capacity.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	state := "serving"
	if s.draining.Load() {
		state = "draining"
	}
	st := s.store.Stats()
	writeJSON(w, http.StatusOK, registryInfo{
		Name:         s.cfg.ShardName,
		State:        state,
		StoreObjects: st.Objects,
		StoreBytes:   st.Bytes,
		QueueDepth:   s.q.depth(),
	})
}

// registryInfo is the GET /v1/registry wire document (the cluster
// package keeps a matching decoder, cluster.RegistryInfo).
type registryInfo struct {
	Name         string `json:"name"`
	State        string `json:"state"`
	StoreObjects int    `json:"store_objects"`
	StoreBytes   int64  `json:"store_bytes"`
	QueueDepth   int    `json:"queue_depth"`
}

// handleMetrics renders the Prometheus text exposition v0.0.4 over the
// obs registry plus the server's instantaneous gauges (including SLO
// quantiles from the latency histograms). Every family is sorted by
// name and no timestamps are emitted, so equal registry/store states
// expose equal bytes — across worker counts and warm restarts alike.
// ?volatile=0 narrows to the deterministic subset (counters and
// histograms only), the form golden tests pin.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	opts := telemetry.PromOptions{IncludeVolatile: r.URL.Query().Get("volatile") != "0"}
	if opts.IncludeVolatile {
		opts.Gauges = s.gaugeSamples()
	}
	if err := telemetry.WriteProm(w, opts); err != nil {
		return
	}
}

// handleJobTopdown streams the per-job top-down: while the job runs,
// fractions come from the producers' provisional mid-run snapshots;
// after completion they settle to the committed totals.
func (s *Server) handleJobTopdown(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	acc, ok := s.tele.findJobAcc(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			"no telemetry for job %q (never executed here: unknown, cached at submit, or evicted)", id)
		return
	}
	wire := topdownOf(acc.Snapshot())
	wire.ID = id
	wire.State = s.jobState(id)
	writeJSON(w, http.StatusOK, wire)
}

// jobState reports a job's lifecycle state for telemetry responses.
func (s *Server) jobState(id string) string {
	if j, ok := s.jobs.get(id); ok {
		state, _ := s.jobs.snapshot(j)
		return state
	}
	if s.store.Contains(id) {
		return StateDone
	}
	return "unknown"
}

// handleTopdown serves the process-wide aggregate: every job's
// committed slots plus all in-flight producers.
func (s *Server) handleTopdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, topdownOf(s.tele.agg.Snapshot()))
}

// handleSeries serves the last ?window= samples of the ring-buffer
// time series (all of them by default), oldest first.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SampleInterval <= 0 {
		writeError(w, http.StatusNotFound, "telemetry sampling disabled (start vcprofd with -sample)")
		return
	}
	n := 0
	if v := r.URL.Query().Get("window"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			writeError(w, http.StatusBadRequest, "bad window %q", v)
			return
		}
		n = p
	}
	writeJSON(w, http.StatusOK, s.tele.series.Window(n))
}

// handleProfile serves the continuous self-profile accumulated from
// the worker lanes plus every adopted per-job session: the flat
// aligned table by default, flamegraph.pl folded-stack lines with
// ?fold=1. Spans advance on the virtual-tick clock, so the profile
// needs no wall-clock sampler and is exact, not statistical.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !s.board.enabled() {
		writeError(w, http.StatusNotFound, "tracing disabled (start vcprofd with -trace)")
		return
	}
	fold := r.URL.Query().Get("fold") == "1"
	topN := 30
	if v := r.URL.Query().Get("top"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad top %q", v)
			return
		}
		topN = p
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.board.writeProfile(w, fold, topN); err != nil {
		return
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.board.enabled() {
		writeError(w, http.StatusNotFound, "tracing disabled (start vcprofd with -trace)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.board.export(w); err != nil {
		// Too late for a status change; the body is already partial.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
