package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
)

// TestJobHopTrace drives one job and checks its hop slice: a
// deterministic admitted + exec pair under the derived trace id, a
// volatile queue-wait stamped with the process name, and the
// single-daemon /v1/cluster/trace answering a byte-stable
// deterministic view.
func TestJobHopTrace(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, ShardName: "s0"}, true)
	spec := validEncodeSpec()
	spec.Normalize()
	st, _ := submit(t, hts.URL, spec)
	pollDone(t, hts.URL, st.ID)

	trace := obs.JobTraceID(st.ID)
	evs := srv.hops.Slice(trace)
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
		if ev.Proc != "s0" {
			t.Errorf("hop proc = %q, want s0 (%+v)", ev.Proc, ev)
		}
	}
	if kinds[obs.HopAdmitted] != 1 || kinds[obs.HopExec] != 1 {
		t.Fatalf("hop kinds = %v, want one admitted and one exec", kinds)
	}
	if kinds[obs.HopQueueWait] != 1 {
		t.Errorf("hop kinds = %v, want one queue-wait", kinds)
	}

	// The slice endpoint serves the same events.
	body, code := getBody(t, hts.URL+"/v1/trace/"+trace)
	if code != http.StatusOK {
		t.Fatalf("trace slice: HTTP %d", code)
	}
	var slice struct {
		Proc   string         `json:"proc"`
		Events []obs.HopEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &slice); err != nil {
		t.Fatal(err)
	}
	if slice.Proc != "s0" || len(slice.Events) != len(evs) {
		t.Fatalf("slice = proc %q / %d events, want s0 / %d", slice.Proc, len(slice.Events), len(evs))
	}

	// Unknown traces are empty, not errors: a shard that never saw the
	// job legitimately has nothing.
	body, code = getBody(t, hts.URL+"/v1/trace/j-0000000000000000")
	if code != http.StatusOK {
		t.Fatalf("unknown trace slice: HTTP %d: %s", code, body)
	}

	// Deterministic merged view: twice the same bytes, no proc labels.
	det1, code := getBody(t, hts.URL+"/v1/cluster/trace/"+trace+"?volatile=0")
	if code != http.StatusOK {
		t.Fatalf("cluster trace: HTTP %d", code)
	}
	det2, _ := getBody(t, hts.URL+"/v1/cluster/trace/"+trace+"?volatile=0")
	if string(det1) != string(det2) {
		t.Fatal("deterministic trace not byte-stable across fetches")
	}
	if string(det1) == "" || stringContains(det1, `"proc"`) {
		t.Fatalf("deterministic view leaks proc labels:\n%s", det1)
	}
	full, _ := getBody(t, hts.URL+"/v1/cluster/trace/"+trace)
	if !stringContains(full, `"queue-wait`) {
		t.Errorf("full view missing queue-wait lane:\n%s", full)
	}

	if _, code := getBody(t, hts.URL+"/v1/cluster/trace/NOT%20VALID"); code != http.StatusBadRequest {
		t.Errorf("invalid trace id: HTTP %d, want 400", code)
	}
}

func stringContains(b []byte, sub string) bool {
	return bytes.Contains(b, []byte(sub))
}

// TestSessionHopTrace checks a live session's hops: session-open at
// create, one deterministic gop hop per encoded GOP carrying its index,
// digest prefix and modeled cost, and a session-resume volatile hop on
// the resumed leg.
func TestSessionHopTrace(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, ShardName: "s0"}, true)
	spec := liveTestSpec()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.SessionTraceID(key)

	var created sessionCreateResp
	if code := postJSON(t, hts.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &created); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	var feed sessionFeedResp
	if code := postJSON(t, hts.URL+"/v1/sessions/"+created.ID+"/frames", sessionFeedReq{Fed: 16, EOS: true}, &feed); code != http.StatusOK {
		t.Fatalf("feed: HTTP %d", code)
	}
	if !feed.Stats.Done {
		t.Fatal("session did not finish")
	}

	evs := srv.hops.Slice(trace)
	var open, gops int
	gopSeqs := map[uint64]bool{}
	for _, ev := range evs {
		switch ev.Kind {
		case obs.HopSessionOpen:
			open++
		case obs.HopGOP:
			gops++
			gopSeqs[ev.Seq] = true
			if ev.Arg == "" || ev.Dur == 0 {
				t.Errorf("gop hop missing digest/cost: %+v", ev)
			}
		}
	}
	if open != 1 {
		t.Errorf("session-open hops = %d, want 1", open)
	}
	if gops != feed.Stats.GOPs {
		t.Errorf("gop hops = %d, want %d (one per encoded GOP)", gops, feed.Stats.GOPs)
	}
	for i := 0; i < feed.Stats.GOPs; i++ {
		if !gopSeqs[uint64(i)] {
			t.Errorf("no gop hop for index %d", i)
		}
	}

	// Resume into a second daemon: it opens under the same derived trace
	// id and marks the leg with a volatile session-resume hop.
	srv2, hts2 := testServer(t, Config{Workers: 1, ShardName: "s1"}, true)
	tok := feed.Resume
	var resumed sessionCreateResp
	if code := postJSON(t, hts2.URL+"/v1/sessions", sessionCreateReq{Spec: spec, Resume: &tok}, &resumed); code != http.StatusCreated {
		t.Fatalf("resume create: HTTP %d", code)
	}
	found := false
	for _, ev := range srv2.hops.Slice(trace) {
		if ev.Kind == obs.HopSessionResume {
			found = true
			if ev.StartMS == 0 {
				t.Error("session-resume hop without a wall stamp")
			}
		}
	}
	if !found {
		t.Error("resumed daemon emitted no session-resume hop")
	}
}

// TestSLOEndpoint checks /v1/slo serves the registry-derived report and
// that stats responses carry a per-session SLO projection.
func TestSLOEndpoint(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 1}, true)
	spec := liveTestSpec()
	var created sessionCreateResp
	if code := postJSON(t, hts.URL+"/v1/sessions", sessionCreateReq{Spec: spec}, &created); code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	var feed sessionFeedResp
	if code := postJSON(t, hts.URL+"/v1/sessions/"+created.ID+"/frames", sessionFeedReq{Fed: 8}, &feed); code != http.StatusOK {
		t.Fatalf("feed: HTTP %d", code)
	}

	body, code := getBody(t, hts.URL+"/v1/slo")
	if code != http.StatusOK {
		t.Fatalf("slo: HTTP %d", code)
	}
	var rep telemetry.SLOReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	// live.* counters are process-global, so other tests contribute;
	// assert presence and internal consistency, not exact counts.
	if rep.Sessions == 0 || rep.Frames == 0 {
		t.Errorf("SLO report empty after a live feed: %+v", rep)
	}
	if rep.Frames > 0 && rep.MissBurnPPM != rep.Misses*1_000_000/rep.Frames {
		t.Errorf("burn not derived from counts: %+v", rep)
	}

	var stats sessionStatsResp
	resp, err := http.Get(hts.URL + "/v1/sessions/" + created.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SLO.Sessions != 1 || stats.SLO.Frames != uint64(stats.Stats.Fed) {
		t.Errorf("per-session SLO projection mismatch: %+v vs %+v", stats.SLO, stats.Stats)
	}
}
