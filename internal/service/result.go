package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"vcprof/internal/encoders"
	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

// JobResult is the stored (and served) outcome of a job. Output is the
// deterministic text payload: for experiment jobs it is byte-identical
// to what `repro <id>` prints for the same experiment and scale, so a
// result fetched over HTTP can be diffed directly against a CLI run.
// Wall-clock, worker counts and cache provenance are deliberately
// absent — the document depends only on the canonical spec.
type JobResult struct {
	Key    string  `json:"key"`
	Spec   JobSpec `json:"spec"`
	Output string  `json:"output"`
}

// Encode serializes the result document. Field order is fixed by the
// struct, so equal results are equal bytes — the property the store's
// content addressing and vcload's cross-pass digests rely on.
func (r *JobResult) Encode() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// JobResult is plain scalars and strings.
		panic("service: result marshal: " + err.Error())
	}
	return append(b, '\n')
}

// DecodeResult parses stored result bytes.
func DecodeResult(data []byte) (*JobResult, error) {
	var r JobResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("service: corrupt result document: %w", err)
	}
	return &r, nil
}

// Execute runs a normalized, validated spec to completion and returns
// its result document. This is the single computation path: workers
// call it through the daemon, tests call it directly to pin that the
// served bytes match an in-process run.
func Execute(ctx context.Context, spec *JobSpec) (*JobResult, error) {
	return ExecuteObserved(ctx, spec, nil)
}

// ExecuteObserved is Execute with an optional per-job span session:
// when sess is non-nil the job's frame/stage (or experiment) spans
// land on fresh lanes of it, for adoption into the daemon's profile
// after completion. Observation never touches the result document —
// the returned bytes are identical for any sess, which is what keeps
// result digests stable with telemetry on or off.
func ExecuteObserved(ctx context.Context, spec *JobSpec, sess *obs.Session) (*JobResult, error) {
	out, err := executeOutput(ctx, spec, sess)
	if err != nil {
		return nil, err
	}
	return &JobResult{Key: spec.Key(), Spec: *spec, Output: out}, nil
}

func executeOutput(ctx context.Context, spec *JobSpec, sess *obs.Session) (string, error) {
	switch spec.Kind {
	case KindEncode:
		res, _, err := harness.RunCell(ctx, spec.cell())
		if err != nil {
			return "", err
		}
		// Stage histograms accumulate per served job (cache hits
		// included): the serving-layer view of stage time, matching how
		// the engine observes per experiment run.
		encoders.ObserveStageHistograms(res.Enc.FrameStages)
		if sess != nil {
			encoders.ObserveResult(sess.Lane("encode/"+string(spec.Family)), res.Enc)
		}
		return renderEncode(spec, res.Enc), nil
	case KindExperiment:
		scale := harness.DefaultScale()
		if spec.Quick {
			scale = harness.QuickScale()
		}
		rep, err := harness.RunExperiment(ctx, spec.Experiment, scale, 1, sess)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for _, t := range rep.Tables {
			// repro prints each table with fmt.Println(t.Render()).
			b.WriteString(t.Render())
			b.WriteByte('\n')
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("service: unknown job kind %q", spec.Kind)
}

// renderEncode formats a counted encode deterministically: every field
// is a pure function of the operating point (no wall time, no worker
// accounting), in fixed order.
func renderEncode(spec *JobSpec, r *encoders.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "encode %s %s frames=%d div=%d crf=%d preset=%d threads=%d\n",
		spec.Family, spec.Clip, spec.Frames, spec.ScaleDiv, spec.CRF, spec.Preset, spec.Threads)
	fmt.Fprintf(&b, "bytes        %d\n", r.Bytes)
	fmt.Fprintf(&b, "bitrate_kbps %.3f\n", r.BitrateKbps)
	fmt.Fprintf(&b, "psnr_db      %.4f\n", r.PSNR)
	fmt.Fprintf(&b, "ssim         %.6f\n", r.SSIM)
	fmt.Fprintf(&b, "instructions %d\n", r.Insts)
	fmt.Fprintf(&b, "skip_blocks  %d\n", r.SkipBlocks)
	fmt.Fprintf(&b, "keyframes    %v\n", r.KeyFrames)
	fmt.Fprintf(&b, "qindices     %v\n", r.QIndices)
	fmt.Fprintf(&b, "frame_bytes  %v\n", r.FrameBytes)
	fmt.Fprintf(&b, "shapes       %v\n", r.Shapes)
	return b.String()
}
