package service

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// heavySpec is an encode whose cost estimate sits two orders above
// lightSpec's (15× family base, 2× frames, 4× pixels) while staying
// cheap enough to drain a burst of them under -race — the admission
// tests exercise ordering, not actual service time.
func heavySpec(crf int) JobSpec {
	return JobSpec{
		Kind: KindEncode, Family: "libaom", Clip: "cricket",
		Frames: 2, ScaleDiv: 32, CRF: crf, Preset: 4, Threads: 1,
	}
}

// lightSpec is a minimal x264 encode.
func lightSpec(crf int) JobSpec {
	return JobSpec{
		Kind: KindEncode, Family: "x264", Clip: "desktop",
		Frames: 1, ScaleDiv: 64, CRF: crf, Preset: 8, Threads: 1,
	}
}

func mustJob(t *testing.T, s JobSpec) *job {
	t.Helper()
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return newJob(s, "")
}

// TestSJFPopsLightJobsFirst pins the admission policy: under sjf,
// equal-priority jobs pop in cost order however they arrived, so a
// light job admitted after a burst of heavy ones does not wait behind
// them. Priority still dominates cost.
func TestSJFPopsLightJobsFirst(t *testing.T) {
	q := newQueue(16, true)
	heavy1 := mustJob(t, heavySpec(20))
	heavy2 := mustJob(t, heavySpec(40))
	light := mustJob(t, lightSpec(30))
	batchLight := mustJob(t, lightSpec(31))
	batchLight.spec.Priority = PriorityBatch
	for _, j := range []*job{heavy1, heavy2, batchLight, light} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []*job{light, heavy1, heavy2, batchLight}
	if heavy1.cost < heavy2.cost == false {
		want = []*job{light, heavy2, heavy1, batchLight}
	}
	for i, w := range want {
		j, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if j != w {
			t.Fatalf("pop %d: got cost=%d prio=%d, want cost=%d prio=%d",
				i, j.cost, j.spec.Priority, w.cost, w.spec.Priority)
		}
	}
}

// TestFIFOIgnoresCost pins the fifo escape hatch: with sjf off the
// queue is strictly (priority, arrival) even when costs differ wildly.
func TestFIFOIgnoresCost(t *testing.T) {
	q := newQueue(16, false)
	heavy := mustJob(t, heavySpec(20))
	light := mustJob(t, lightSpec(30))
	if err := q.push(heavy); err != nil {
		t.Fatal(err)
	}
	if err := q.push(light); err != nil {
		t.Fatal(err)
	}
	first, _ := q.pop()
	if first != heavy {
		t.Fatal("fifo queue reordered by cost")
	}
}

// TestSJFSaturationUnchanged pins that the 429 path is orthogonal to
// the policy: capacity is a count, not a cost budget, and saturation
// behaves exactly as before.
func TestSJFSaturationUnchanged(t *testing.T) {
	q := newQueue(2, true)
	if err := q.push(mustJob(t, heavySpec(20))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mustJob(t, heavySpec(25))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(mustJob(t, lightSpec(30))); !errors.Is(err, ErrSaturated) {
		t.Fatalf("push into full queue: err = %v, want ErrSaturated", err)
	}
}

// TestCostExcludedFromKey pins that admission cost hints never leak
// into the content address: specs that differ only in quantities the
// cost model reads identically, and — the stronger half — the key of a
// fixed spec is a constant, so no future cost field can slip into the
// canonical form unnoticed.
func TestCostExcludedFromKey(t *testing.T) {
	a := lightSpec(30)
	a.Normalize()
	b := lightSpec(30)
	b.Priority = PriorityBatch
	b.TimeoutMS = 9999
	b.Normalize()
	if a.Key() != b.Key() {
		t.Error("scheduling hints changed the content key")
	}
	if a.EstimatedCost() == 0 || b.EstimatedCost() == 0 {
		t.Error("cost estimate must be positive")
	}
	// Golden key: the canonical form of this exact spec is part of the
	// compatibility contract (stores written by older daemons must stay
	// addressable). Recompute only for an intentional, breaking change.
	const goldenKey = "115564bc8046986b8f346b4b21368acc05f4f9bf65cbeab6e78a42bcdb7c93f5"
	if got := a.Key(); got != goldenKey {
		t.Errorf("canonical key drifted:\ngot  %s\nwant %s\ncanonical: %s", got, goldenKey, a.Canonical())
	}
}

// TestEstimatedCostRanksKinds sanity-checks the service-level cost
// table: heavy encodes outrank light ones, and experiments outrank
// every single encode (they run whole cell grids).
func TestEstimatedCostRanksKinds(t *testing.T) {
	light := lightSpec(30)
	light.Normalize()
	heavy := heavySpec(30)
	heavy.Normalize()
	if light.EstimatedCost() >= heavy.EstimatedCost() {
		t.Errorf("light encode cost %d not below heavy encode cost %d", light.EstimatedCost(), heavy.EstimatedCost())
	}
	quick := JobSpec{Kind: KindExperiment, Experiment: "fig1", Quick: true}
	quick.Normalize()
	full := JobSpec{Kind: KindExperiment, Experiment: "fig1"}
	full.Normalize()
	if heavy.EstimatedCost() >= quick.EstimatedCost() {
		t.Errorf("heavy encode cost %d not below quick experiment cost %d", heavy.EstimatedCost(), quick.EstimatedCost())
	}
	if quick.EstimatedCost() >= full.EstimatedCost() {
		t.Error("quick experiment must cost less than the full scale")
	}
	if classOf(light.EstimatedCost()) != classSmall {
		t.Errorf("light encode classed %d, want small", classOf(light.EstimatedCost()))
	}
	if classOf(full.EstimatedCost()) != classLarge {
		t.Errorf("experiment classed %d, want large", classOf(full.EstimatedCost()))
	}
}

// TestLightJobNotStuckBehindHeavyMix drives a real server: a single
// worker, a burst of heavy jobs admitted first, then a light job. With
// sjf admission the light job must complete long before the burst
// drains. This is the end-to-end form of the tail-latency claim at
// queue granularity.
func TestLightJobNotStuckBehindHeavyMix(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, QueueCap: 32, Admission: "sjf"}, false)
	// Admit while the pool is stopped so arrival order is exact: four
	// heavy jobs, then the light one. These heavies are scaled up from
	// heavySpec so each runs much longer than the 5ms poll below — the
	// completion-order observation needs that resolution.
	var heavyIDs []string
	for i := 0; i < 4; i++ {
		h := heavySpec(20 + i)
		h.Frames = 4
		h.ScaleDiv = 16
		st, code := submit(t, hts.URL, h)
		if code != http.StatusAccepted {
			t.Fatalf("heavy submit %d: HTTP %d", i, code)
		}
		heavyIDs = append(heavyIDs, st.ID)
	}
	lightSt, code := submit(t, hts.URL, lightSpec(30))
	if code != http.StatusAccepted {
		t.Fatalf("light submit: HTTP %d", code)
	}
	srv.Start()
	// Watch for the light job with a tight poll, and count finished
	// heavies in the same snapshot: under sjf the single worker serves
	// the light job first, so at most one heavy (a pathological
	// interleaving at Start) may already be done.
	deadline := time.Now().Add(4 * time.Minute)
	for {
		if st, _ := getStatus(t, hts.URL, lightSt.ID); st.Status == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("light job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var doneHeavy int
	for _, id := range heavyIDs {
		if st, _ := getStatus(t, hts.URL, id); st.Status == StateDone {
			doneHeavy++
		}
	}
	if doneHeavy > 1 {
		t.Errorf("%d heavy jobs finished before the light one; sjf should have served it first", doneHeavy)
	}
	for _, id := range heavyIDs {
		pollDoneWithin(t, hts.URL, id, 4*time.Minute)
	}
}

// TestShardedServerMatchesSerial pins the serving layer's determinism
// contract across the scheduler boundary: the same spec served by a
// sharded daemon and by a serial one produces byte-identical result
// documents.
func TestShardedServerMatchesSerial(t *testing.T) {
	spec := validEncodeSpec()
	spec.Normalize()
	run := func(cfg Config) []byte {
		t.Helper()
		srv, hts := testServer(t, cfg, true)
		st, code := submit(t, hts.URL, spec)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit: HTTP %d", code)
		}
		pollDone(t, hts.URL, st.ID)
		data, ok, err := srv.Store().Get(st.ID)
		if err != nil || !ok {
			t.Fatalf("result missing: ok=%v err=%v", ok, err)
		}
		return data
	}
	sharded := run(Config{Workers: 2, ShardWorkers: 4, StealSeed: 99})
	serial := run(Config{Workers: 2, DisableSharding: true, Admission: "fifo"})
	if string(sharded) != string(serial) {
		t.Errorf("sharded and serial daemons served different bytes:\nsharded: %q\nserial:  %q", sharded, serial)
	}
}

// TestSchedStatsExposed pins the pool accounting surface the smoke
// script and telemetry read.
func TestSchedStatsExposed(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, ShardWorkers: 2}, true)
	st, code := submit(t, hts.URL, lightSpec(33))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	pollDone(t, hts.URL, st.ID)
	stats, ok := srv.SchedStats()
	if !ok {
		t.Fatal("sharding enabled but SchedStats reports disabled")
	}
	if stats.Tasks == 0 || stats.Graphs == 0 {
		t.Errorf("pool executed nothing: %+v", stats)
	}
	off, _ := testServer(t, Config{Workers: 1, DisableSharding: true}, false)
	if _, ok := off.SchedStats(); ok {
		t.Error("DisableSharding still reports a pool")
	}
}

// TestBadAdmissionRejected pins config validation.
func TestBadAdmissionRejected(t *testing.T) {
	_, err := NewServer(context.Background(), Config{StoreDir: t.TempDir(), Admission: "lifo"})
	if err == nil {
		t.Fatal("unknown admission policy accepted")
	}
}

// TestQueueWaitClassObserved pins that the by-class histograms see
// traffic (telemetry only — never part of result bytes).
func TestQueueWaitClassObserved(t *testing.T) {
	before := obsQueueWaitClassMS[classSmall].Snapshot().Count
	_, hts := testServer(t, Config{Workers: 1}, true)
	st, code := submit(t, hts.URL, lightSpec(37))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	pollDone(t, hts.URL, st.ID)
	deadline := time.Now().Add(5 * time.Second)
	for obsQueueWaitClassMS[classSmall].Snapshot().Count == before {
		if time.Now().After(deadline) {
			t.Fatal("small-class queue-wait histogram never observed the job")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
