package service

import (
	"sync"
	"sync/atomic"

	"vcprof/internal/encoders"
	"vcprof/internal/harness"
	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/topdown"
)

// Serving-layer latency histograms. Volatile: both measure host time,
// which no byte-compared export may contain. The bucket layout is the
// shared one, so vcload's client-side distribution lines up bucket for
// bucket with these.
var (
	obsJobLatencyMS = obs.NewVolatileHistogram("svc.job.latency_ms", telemetry.LatencyBucketsMS)
	obsQueueWaitMS  = obs.NewVolatileHistogram("svc.queue.wait_ms", telemetry.LatencyBucketsMS)

	// Queue wait split by job size class: the admission layer's report
	// card. Under fifo a heavy burst drags the small-class tail up with
	// it; under sjf the small class stays flat — that separation is what
	// the tail-latency experiment reads off these.
	obsQueueWaitClassMS = [...]*obs.Histogram{
		classSmall:  obs.NewVolatileHistogram("svc.queue.wait_ms.small", telemetry.LatencyBucketsMS),
		classMedium: obs.NewVolatileHistogram("svc.queue.wait_ms.medium", telemetry.LatencyBucketsMS),
		classLarge:  obs.NewVolatileHistogram("svc.queue.wait_ms.large", telemetry.LatencyBucketsMS),
	}
)

// maxJobAccumulators bounds the per-job top-down retention: the oldest
// job's accumulator is dropped once the table exceeds this, matching
// the job table's own forget-when-done philosophy but keeping recently
// finished jobs queryable.
const maxJobAccumulators = 512

// teleBoard owns the serving layer's live telemetry: the process
// aggregate and per-job streaming top-down accumulators, the running
// job gauge and the ring-buffer time series the sampler feeds. The
// immutable pointers (agg, series) are set once at construction; only
// the per-job table mutates, behind its own lock.
type teleBoard struct {
	agg     *topdown.Accumulator
	series  *telemetry.Series
	running atomic.Int64
	jobs    jobAccTable
}

// jobAccTable maps job keys to their streaming accumulators with
// bounded insertion-order retention.
type jobAccTable struct {
	mu    sync.Mutex
	m     map[string]*topdown.Accumulator
	order []string
}

func newTeleBoard(s *Server, seriesCap int) *teleBoard {
	b := &teleBoard{agg: topdown.NewAccumulator()}
	b.series = telemetry.NewSeries(seriesCap, seriesGauges(s, b))
	return b
}

// seriesGauges is the sampled gauge set: queue depth, worker
// occupancy (running jobs and in-flight engine cells), store size,
// cell-cache size, and per-encoder-stage throughput (cumulative stage
// ticks; the derivative across samples is the live stage throughput).
func seriesGauges(s *Server, b *teleBoard) []telemetry.Gauge {
	gs := []telemetry.Gauge{
		{Name: "svc.queue.depth", Sample: func() float64 { return float64(s.q.depth()) }},
		{Name: "svc.jobs.running", Sample: func() float64 { return float64(b.running.Load()) }},
		{Name: "svc.engine.inflight", Sample: func() float64 { return float64(harness.EngineInflight()) }},
		{Name: "svc.store.objects", Sample: func() float64 { return float64(s.store.Stats().Objects) }},
		{Name: "svc.store.bytes", Sample: func() float64 { return float64(s.store.Stats().Bytes) }},
		{Name: "svc.cells.entries", Sample: func() float64 { return float64(harness.CellCacheStats().Entries) }},
	}
	if s.pool != nil {
		gs = append(gs,
			telemetry.Gauge{Name: "svc.sched.active", Sample: func() float64 { return float64(s.pool.Stats().Active) }},
			telemetry.Gauge{Name: "svc.sched.queued", Sample: func() float64 { return float64(s.pool.Stats().Queued) }},
		)
	}
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		h := obs.FindHistogram(encoders.StageHistogramName(st))
		gs = append(gs, telemetry.Gauge{
			Name:   encoders.StageHistogramName(st) + ".sum",
			Sample: func() float64 { return float64(h.Sum()) },
		})
	}
	return gs
}

// jobAcc returns (creating if needed) the accumulator streaming job
// key's top-down. Creation evicts the oldest tracked job beyond the
// retention bound.
func (b *teleBoard) jobAcc(key string) *topdown.Accumulator { return b.jobs.acc(key) }

// findJobAcc looks a job's accumulator up without creating one.
func (b *teleBoard) findJobAcc(key string) (*topdown.Accumulator, bool) { return b.jobs.find(key) }

func (t *jobAccTable) acc(key string) *topdown.Accumulator {
	t.mu.Lock()
	defer t.mu.Unlock()
	if acc, ok := t.m[key]; ok {
		return acc
	}
	if t.m == nil {
		t.m = make(map[string]*topdown.Accumulator)
	}
	acc := topdown.NewAccumulator()
	t.m[key] = acc
	t.order = append(t.order, key)
	for len(t.order) > maxJobAccumulators {
		delete(t.m, t.order[0])
		t.order = t.order[1:]
	}
	return acc
}

func (t *jobAccTable) find(key string) (*topdown.Accumulator, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	acc, ok := t.m[key]
	return acc, ok
}

// gaugeSamples reads every gauge once for /metrics exposition: the
// sampled series gauges plus the SLO quantiles derived from the
// latency histograms.
func (s *Server) gaugeSamples() []telemetry.GaugeSample {
	var out []telemetry.GaugeSample
	for _, g := range seriesGauges(s, s.tele) {
		out = append(out, telemetry.GaugeSample{Name: g.Name, Value: g.Sample()})
	}
	out = append(out, telemetry.GaugeSample{Name: "svc.store.cap", Value: float64(s.store.Stats().Cap)})
	for _, h := range []*obs.Histogram{obsJobLatencyMS, obsQueueWaitMS} {
		hv := h.Snapshot()
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			out = append(out, telemetry.GaugeSample{
				Name:  hv.Name + "." + q.suffix,
				Value: float64(hv.Quantile(q.q)),
			})
		}
	}
	return out
}

// topdownWire is the JSON form of a top-down snapshot. Fractions are
// level-1 and sum to 1 whenever total_slots > 0.
type topdownWire struct {
	ID         string  `json:"id,omitempty"`
	State      string  `json:"state,omitempty"`
	Retiring   float64 `json:"retiring"`
	BadSpec    float64 `json:"bad_spec"`
	Frontend   float64 `json:"frontend"`
	Backend    float64 `json:"backend"`
	TotalSlots uint64  `json:"total_slots"`
	Producers  int     `json:"producers"`
	Flushes    uint64  `json:"flushes"`
	Commits    uint64  `json:"commits"`
}

func topdownOf(snap topdown.Snapshot) topdownWire {
	w := topdownWire{
		TotalSlots: snap.Total,
		Producers:  snap.Producers,
		Flushes:    snap.Flushes,
		Commits:    snap.Commits,
	}
	if b, err := snap.Level1(); err == nil {
		w.Retiring = b.Retiring
		w.BadSpec = b.BadSpec
		w.Frontend = b.Frontend
		w.Backend = b.Backend
	}
	return w
}
