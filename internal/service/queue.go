package service

import (
	"container/heap"
	"errors"
	"sync"
)

// Queue admission errors.
var (
	// ErrSaturated is returned when the queue is at capacity; the HTTP
	// layer maps it to 429 + Retry-After.
	ErrSaturated = errors.New("service: queue saturated")
	// ErrClosed is returned once the queue stops accepting work; the
	// HTTP layer maps it to 503 during drain.
	ErrClosed = errors.New("service: queue closed")
)

// jobHeap orders queued jobs by (priority, ordering cost, arrival
// sequence). ocost is 0 for every job under the fifo policy — the heap
// degenerates to strict (priority, arrival) order — and the static cost
// estimate under sjf, which serves the shortest expected job first
// inside each priority class. Arrival order breaks all remaining ties,
// so equal work is served in submission order no matter how workers
// race.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority < h[j].spec.Priority
	}
	if h[i].ocost != h[j].ocost {
		return h[i].ocost < h[j].ocost
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// queue is the bounded priority job queue. Admission is non-blocking
// (push fails fast with ErrSaturated so the caller can shed load);
// consumption blocks until work arrives or the queue closes and drains.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	h      jobHeap
	seq    uint64
	limit  int
	sjf    bool // order equal-priority jobs by estimated cost
	closed bool
}

func newQueue(limit int, sjf bool) *queue {
	if limit < 1 {
		limit = 1
	}
	q := &queue{limit: limit, sjf: sjf}
	//lint:ignore lockheld constructor: q is not shared until newQueue returns
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job, assigning its arrival sequence. It never blocks:
// a full queue is an admission-control decision, not a wait.
func (q *queue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.h) >= q.limit {
		return ErrSaturated
	}
	j.seq = q.seq
	q.seq++
	if q.sjf {
		// The ordering cost is fixed at admission: a job's queue rank
		// never changes while it waits, so pop order is a pure function
		// of the admitted set.
		j.ocost = j.cost
	}
	heap.Push(&q.h, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns it; ok is false once
// the queue is closed AND fully drained, which is the workers' exit
// signal (queued jobs are still completed during a graceful drain).
func (q *queue) pop() (j *job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.h) == 0 {
		return nil, false
	}
	return heap.Pop(&q.h).(*job), true
}

// depth reports the current number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// close stops admission and wakes all waiting workers. Already-queued
// jobs remain poppable so a graceful drain can finish them.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
