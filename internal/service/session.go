package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"vcprof/internal/live"
	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
)

// maxSessions bounds concurrently open live sessions per daemon; a
// session frees its slot at end-of-stream or DELETE.
const maxSessions = 64

// sessionEntry is one open live session. The entry mutex serializes
// feeds (and the per-session trace lane, which obs requires to be
// single-goroutine); the engine has its own lock, but the entry-level
// one keeps wire responses — which pair engine results with stats and
// resume tokens — atomic per feed.
type sessionEntry struct {
	id   string
	mu   sync.Mutex
	s    *live.Session
	sess *obs.Session // per-session span lane; nil when tracing is off
	lane *obs.Trace
}

// sessionTable owns the open sessions and the drain gate: once closed,
// new sessions and new feeds are refused, and wait blocks until every
// in-flight feed — meaning every in-flight GOP encode — has finished.
// That is the graceful-drain contract: frames already fed encode to
// completion, nothing is cut mid-GOP.
type sessionTable struct {
	mu     sync.Mutex
	seq    uint64
	m      map[string]*sessionEntry
	traces map[string]string // id -> propagated hop-trace id
	closed bool
	wg     sync.WaitGroup
}

func newSessionTable() *sessionTable {
	return &sessionTable{
		m:      make(map[string]*sessionEntry),
		traces: make(map[string]string),
	}
}

// add registers a new session under a fresh id. The id is a routing
// handle (spec-key prefix + per-daemon sequence), deliberately opaque:
// it appears in no digest, so resuming a session elsewhere under a new
// id changes nothing the client folds.
func (t *sessionTable) add(key string, s *live.Session, traced bool, trace string) (*sessionEntry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("draining")
	}
	if len(t.m) >= maxSessions {
		return nil, fmt.Errorf("session table full (%d open)", maxSessions)
	}
	t.seq++
	id := fmt.Sprintf("%.16s-%04x", key, t.seq)
	var sess *obs.Session
	var lane *obs.Trace
	if traced {
		sess = obs.NewSession()
		lane = sess.Lane("session-" + id)
	}
	e := &sessionEntry{id: id, s: s, sess: sess, lane: lane}
	t.m[id] = e
	t.traces[id] = trace
	return e, nil
}

// trace answers the propagated hop-trace id a session was opened under.
func (t *sessionTable) trace(id string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// openTraces snapshots the (id, trace) pairs of sessions still open —
// the drain path emits their drain-finish hops after wait returns.
func (t *sessionTable) openTraces() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.traces))
	for id, tr := range t.traces {
		out[id] = tr
	}
	return out
}

func (t *sessionTable) get(id string) (*sessionEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[id]
	return e, ok
}

// beginFeed pins an in-flight feed against drain; endFeed releases it.
func (t *sessionTable) beginFeed(id string) (*sessionEntry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("draining")
	}
	e, ok := t.m[id]
	if !ok {
		return nil, nil
	}
	t.wg.Add(1)
	return e, nil
}

func (t *sessionTable) endFeed() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wg.Done()
}

func (t *sessionTable) remove(id string) (*sessionEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[id]
	if ok {
		delete(t.m, id)
		delete(t.traces, id)
	}
	return e, ok
}

// close refuses further sessions and feeds; wait blocks until every
// in-flight feed has finished, so every GOP whose frames were accepted
// is fully encoded before shutdown proceeds.
func (t *sessionTable) close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
}

// wait takes the WaitGroup's address under the lock, then blocks
// outside it so in-flight feeds can release their pins.
func (t *sessionTable) wait() {
	t.mu.Lock()
	wg := &t.wg
	t.mu.Unlock()
	wg.Wait()
}

// Wire forms.

type sessionCreateReq struct {
	Spec   live.SessionSpec  `json:"spec"`
	Resume *live.ResumeToken `json:"resume,omitempty"`
}

type sessionCreateResp struct {
	ID      string           `json:"id"`
	Key     string           `json:"key"`
	Resumed bool             `json:"resumed,omitempty"`
	Spec    live.SessionSpec `json:"spec"`
}

// sessionFeedReq advances the arrival watermark. Fed is the absolute
// total of frames that have arrived — not a delta — so a replayed or
// reordered request can never double-feed a session: feeding to a
// watermark the session already passed is a no-op.
type sessionFeedReq struct {
	Fed int  `json:"fed"`
	EOS bool `json:"eos,omitempty"`
}

type sessionFeedResp struct {
	ID     string           `json:"id"`
	GOPs   []live.GOPResult `json:"gops"`
	Stats  live.Stats       `json:"stats"`
	Resume live.ResumeToken `json:"resume"`
}

type sessionStatsResp struct {
	ID    string              `json:"id"`
	Spec  live.SessionSpec    `json:"spec"`
	Stats live.Stats          `json:"stats"`
	SLO   telemetry.SLOReport `json:"slo"`
}

// sloOfStats projects one session's cumulative stats onto the SLO
// report shape, so a stats poll shows this stream's burn rates with
// the same math the process-wide /v1/slo uses.
func sloOfStats(st live.Stats) telemetry.SLOReport {
	r := telemetry.SLOReport{
		Sessions: 1,
		Frames:   uint64(st.Fed),
		GOPs:     uint64(st.GOPs),
		Dropped:  uint64(st.Dropped),
		Misses:   uint64(st.Misses),
		Degrades: uint64(st.DegradeTotal),
	}
	return r.WithBurn()
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req sessionCreateReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad session spec: %v", err)
		return
	}
	key, err := req.Spec.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := live.Config{Pool: s.pool}
	var sess *live.Session
	if req.Resume != nil {
		sess, err = live.Resume(req.Spec, cfg, *req.Resume)
	} else {
		sess, err = live.New(req.Spec, cfg)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tid := traceIDFromRequest(r, obs.SessionTraceID(key))
	e, err := s.sessions.add(key, sess, s.cfg.Obs != nil, tid)
	if err != nil {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	obsSessionsOpened.Add(1)
	if req.Resume != nil {
		// A resume is a placement fact (which process picked the stream
		// back up, and where in it): volatile, stamped by the caller.
		s.hops.Emit(obs.HopEvent{Trace: tid, Kind: obs.HopSessionResume,
			Seq: uint64(req.Resume.StartFrame), StartMS: time.Now().UnixMilli()})
	} else {
		// Opening is content-derived — every topology opens the same
		// stream exactly once — so it lands in the deterministic view.
		s.hops.Emit(obs.HopEvent{Trace: tid, Kind: obs.HopSessionOpen, Arg: shortArg(key)})
	}
	e.mu.Lock()
	id := e.id
	e.mu.Unlock()
	writeJSON(w, http.StatusCreated, sessionCreateResp{
		ID: id, Key: key, Resumed: req.Resume != nil, Spec: sess.Spec(),
	})
}

func (s *Server) handleSessionFeed(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req sessionFeedReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad feed request: %v", err)
		return
	}
	e, err := s.sessions.beginFeed(id)
	if err != nil {
		obsJobsRefused.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	defer s.sessions.endFeed()
	trace := s.sessions.trace(id)

	e.mu.Lock()
	defer e.mu.Unlock()
	delta := req.Fed - e.s.Stats().Fed
	if delta < 0 {
		delta = 0 // replayed watermark: arrivals never rewind
	}
	// Encodes run under the server's base context: a graceful drain lets
	// them finish (beginFeed pinned us), a hard shutdown cancels them at
	// the next task boundary. The trace context rides along so nested
	// layers can attribute their work to this stream.
	ctx := obs.WithTraceContext(s.baseCtx, obs.TraceContext{Trace: trace})
	gops, err := e.s.Feed(ctx, delta, req.EOS)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	for i := range gops {
		gops[i].Bitstreams = nil
		obsSessionGOPs.Add(1)
		if e.lane != nil {
			sp := e.lane.BeginArg(obsSessionGOPName, fmt.Sprintf("gop-%d", gops[i].Index))
			e.lane.Advance(1 + gops[i].Insts)
			sp.End()
		}
		// GOP hops are pure content: index, digest prefix and modeled
		// instruction count are identical wherever the GOP encodes, so a
		// resumed session's hops merge seamlessly with the original's.
		s.hops.Emit(obs.HopEvent{Trace: trace, Kind: obs.HopGOP,
			Seq: uint64(gops[i].Index), Arg: shortArg(gops[i].Digest), Dur: gops[i].Insts})
	}
	st := e.s.Stats()
	resp := sessionFeedResp{ID: id, GOPs: gops, Stats: st, Resume: e.s.ResumeToken()}
	if st.Done {
		if _, ok := s.sessions.remove(id); ok && e.sess != nil {
			// The session is over; its lane is immutable from here on and
			// joins the daemon profile like a finished job's.
			s.board.adopt(e.sess)
		}
		obsSessionsClosed.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.sessions.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.s.Stats()
	writeJSON(w, http.StatusOK, sessionStatsResp{ID: id, Spec: e.s.Spec(), Stats: st, SLO: sloOfStats(st)})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.sessions.remove(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sess != nil {
		s.board.adopt(e.sess)
	}
	obsSessionsClosed.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

var obsSessionGOPName = obs.Name("session/gop")

// Live-session service counters. Opened/closed and GOP counts follow
// the request mix (deterministic for a fixed drive); the refused path
// reuses svc.jobs.refused like every other 503.
var (
	obsSessionsOpened = obs.NewCounter("svc.sessions.opened")
	obsSessionsClosed = obs.NewCounter("svc.sessions.closed")
	obsSessionGOPs    = obs.NewCounter("svc.sessions.gops")
)
