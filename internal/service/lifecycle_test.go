package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

// testServer spins up a Server over httptest. start=false leaves the
// worker pool idle, which makes queue states (queued, saturated,
// deduplicated) deterministic to assert.
func testServer(t *testing.T, cfg Config, start bool) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	srv, err := NewServer(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		srv.Start()
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hts
}

func submit(t *testing.T, base string, spec JobSpec) (jobStatus, int) {
	t.Helper()
	payload, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit: bad body (HTTP %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) (jobStatus, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status: bad body (HTTP %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

func pollDone(t *testing.T, base, id string) {
	t.Helper()
	pollDoneWithin(t, base, id, 2*time.Minute)
}

// pollDoneWithin is pollDone with an explicit completion budget, for
// tests that drive experiment jobs (an order of magnitude more compute
// than an encode job, and another order slower under -race).
func pollDoneWithin(t *testing.T, base, id string, budget time.Duration) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		st, code := getStatus(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("poll: HTTP %d (%s)", code, st.Error)
		}
		switch st.Status {
		case StateDone:
			return
		case StateFailed:
			t.Fatalf("job %s failed: %s", id[:8], st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id[:8])
}

func fetchResult(t *testing.T, base, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/results/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// TestLifecycleByteIdenticalToDirectRun drives submit → poll → fetch
// over real HTTP and pins the served bytes against a direct in-process
// Execute of the same spec: transport, queue, worker pool and store may
// not perturb a single byte.
func TestLifecycleByteIdenticalToDirectRun(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 2}, true)

	spec := validEncodeSpec()
	spec.Normalize()
	st, code := submit(t, hts.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", code, st.Error)
	}
	if st.ID != spec.Key() {
		t.Fatalf("server id %s != spec key %s", st.ID, spec.Key())
	}
	pollDone(t, hts.URL, st.ID)
	body, code := fetchResult(t, hts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch: HTTP %d: %s", code, body)
	}

	direct, err := Execute(context.Background(), &spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := direct.Encode(); !bytes.Equal(body, want) {
		t.Fatalf("served result differs from direct run:\nhttp:   %q\ndirect: %q", body, want)
	}

	// Resubmitting a finished job answers from the store, immediately.
	st2, code2 := submit(t, hts.URL, spec)
	if code2 != http.StatusOK || !st2.Cached || st2.Status != StateDone {
		t.Fatalf("resubmit: HTTP %d %+v, want cached done", code2, st2)
	}
}

// TestLifecycleExperimentMatchesCLI pins an experiment job's output to
// the exact text `repro` prints for the same experiment and scale.
func TestLifecycleExperimentMatchesCLI(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 1}, true)
	spec := JobSpec{Kind: KindExperiment, Experiment: "fig1", Quick: true}
	spec.Normalize()

	st, code := submit(t, hts.URL, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d (%s)", code, st.Error)
	}
	pollDone(t, hts.URL, st.ID)
	body, code := fetchResult(t, hts.URL, st.ID)
	if code != http.StatusOK {
		t.Fatalf("fetch: HTTP %d", code)
	}
	res, err := DecodeResult(body)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := harness.RunExperiment(context.Background(), "fig1", harness.QuickScale(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, tab := range rep.Tables {
		want.WriteString(tab.Render())
		want.WriteByte('\n')
	}
	if res.Output != want.String() {
		t.Fatalf("served experiment output differs from CLI rendering:\nhttp: %q\ncli:  %q",
			res.Output, want.String())
	}
}

// TestSingleflightDuplicateSubmit holds workers idle so a duplicate
// submission deterministically finds its twin in flight: both get the
// same id, one queue slot is consumed, and one stored object serves
// both.
func TestSingleflightDuplicateSubmit(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1}, false)
	spec := validEncodeSpec()
	spec.Normalize()

	st1, code1 := submit(t, hts.URL, spec)
	if code1 != http.StatusAccepted || st1.Status != StateQueued {
		t.Fatalf("first submit: HTTP %d %+v", code1, st1)
	}
	st2, code2 := submit(t, hts.URL, spec)
	if code2 != http.StatusAccepted {
		t.Fatalf("duplicate submit: HTTP %d %+v", code2, st2)
	}
	if st1.ID != st2.ID {
		t.Fatalf("duplicate got a different id: %s vs %s", st1.ID, st2.ID)
	}
	if d := srv.q.depth(); d != 1 {
		t.Fatalf("queue depth = %d after duplicate submit, want 1", d)
	}

	srv.Start()
	pollDone(t, hts.URL, st1.ID)
	if n := srv.Store().Stats().Objects; n != 1 {
		t.Errorf("store holds %d objects, want 1", n)
	}
	b1, _ := fetchResult(t, hts.URL, st1.ID)
	b2, _ := fetchResult(t, hts.URL, st2.ID)
	if !bytes.Equal(b1, b2) {
		t.Error("duplicate submissions served different bytes")
	}
}

// TestAdmissionControl429 saturates a tiny queue with the pool idle and
// checks the shed path: 429 plus Retry-After, job not tracked, and the
// same spec admitted cleanly once capacity returns.
func TestAdmissionControl429(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1, QueueCap: 1}, false)
	a := validEncodeSpec()
	a.Normalize()
	if _, code := submit(t, hts.URL, a); code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}

	b := validEncodeSpec()
	b.CRF = 30 // different job
	b.Normalize()
	payload, _ := json.Marshal(&b)
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// The rejected job must not linger in the table as a ghost.
	if _, code := getStatus(t, hts.URL, b.Key()); code != http.StatusNotFound {
		t.Errorf("rejected job still visible: HTTP %d", code)
	}

	srv.Start()
	pollDone(t, hts.URL, a.Key())
	st, code := submit(t, hts.URL, b)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("resubmit after drain: HTTP %d (%s)", code, st.Error)
	}
	pollDone(t, hts.URL, b.Key())
}

// TestGracefulShutdown pins the drain contract: accepted work finishes,
// new work is refused with 503, and the store index reaches disk.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	srv, hts := testServer(t, Config{Workers: 2, StoreDir: dir}, true)

	var keys []string
	for _, crf := range []int{22, 26, 30} {
		spec := validEncodeSpec()
		spec.CRF = crf
		spec.Normalize()
		st, code := submit(t, hts.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit crf=%d: HTTP %d", crf, code)
		}
		keys = append(keys, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	// Every accepted job completed and was persisted.
	for _, k := range keys {
		if !srv.Store().Contains(k) {
			t.Errorf("job %s not persisted by drain", k[:8])
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Errorf("store index not flushed: %v", err)
	}

	// The HTTP surface refuses new work but still serves results.
	spec := validEncodeSpec()
	spec.CRF = 40
	spec.Normalize()
	if _, code := submit(t, hts.URL, spec); code != http.StatusServiceUnavailable {
		t.Errorf("submit while drained: HTTP %d, want 503", code)
	}
	if body, code := fetchResult(t, hts.URL, keys[0]); code != http.StatusOK || len(body) == 0 {
		t.Errorf("result fetch after drain: HTTP %d", code)
	}
	// Idempotent.
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

// TestWarmRestartServesFromDisk restarts the service on the same store
// directory and checks a repeat job is answered from disk — with the
// exact bytes of the first run — before any worker exists.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := validEncodeSpec()
	spec.Normalize()

	srv1, hts1 := testServer(t, Config{Workers: 1, StoreDir: dir}, true)
	st, code := submit(t, hts1.URL, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	pollDone(t, hts1.URL, st.ID)
	first, _ := fetchResult(t, hts1.URL, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	hts1.Close()

	// Second life: no Start() — only the disk can answer.
	_, hts2 := testServer(t, Config{Workers: 1, StoreDir: dir}, false)
	st2, code2 := submit(t, hts2.URL, spec)
	if code2 != http.StatusOK || !st2.Cached {
		t.Fatalf("warm submit: HTTP %d %+v, want cached done", code2, st2)
	}
	body, code := fetchResult(t, hts2.URL, st2.ID)
	if code != http.StatusOK {
		t.Fatalf("warm fetch: HTTP %d", code)
	}
	if !bytes.Equal(body, first) {
		t.Fatal("warm restart served different bytes than the original run")
	}
}

// TestHTTPSurfaceErrors covers the non-happy paths of the API.
func TestHTTPSurfaceErrors(t *testing.T) {
	srv, hts := testServer(t, Config{Workers: 1}, false)

	// Malformed and invalid specs → 400.
	resp, err := http.Post(hts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}
	bad := validEncodeSpec()
	bad.Family = "av2"
	if _, code := submit(t, hts.URL, bad); code != http.StatusBadRequest {
		t.Errorf("invalid spec: HTTP %d, want 400", code)
	}

	// Unknown ids → 404.
	if _, code := getStatus(t, hts.URL, strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("unknown status: HTTP %d, want 404", code)
	}
	if _, code := fetchResult(t, hts.URL, strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Errorf("unknown result: HTTP %d, want 404", code)
	}

	// A queued (never-started pool) job's result is not ready → 409.
	spec := validEncodeSpec()
	spec.Normalize()
	if _, code := submit(t, hts.URL, spec); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	if _, code := fetchResult(t, hts.URL, spec.Key()); code != http.StatusConflict {
		t.Errorf("pending result: HTTP %d, want 409", code)
	}

	// Metrics and health are always on; trace is 404 without a session.
	for path, want := range map[string]int{
		"/metrics":     http.StatusOK,
		"/healthz":     http.StatusOK,
		"/debug/trace": http.StatusNotFound,
	} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}
	_ = srv
}

// TestMetricsRenders sanity-checks the human surface: counter names and
// service gauges appear.
func TestMetricsRenders(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 1}, true)
	spec := validEncodeSpec()
	spec.Normalize()
	st, _ := submit(t, hts.URL, spec)
	pollDone(t, hts.URL, st.ID)

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE vcprof_svc_jobs_submitted counter",
		"vcprof_svc_store_put_bytes",
		"vcprof_svc_queue_depth",
		"vcprof_svc_store_objects 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The submit counter is process-global, so other tests in the
	// package contribute — require a positive value, not an exact one.
	if !regexp.MustCompile(`(?m)^vcprof_svc_jobs_submitted [1-9]`).MatchString(text) {
		t.Error("/metrics missing a positive vcprof_svc_jobs_submitted")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q not Prometheus text v0.0.4", ct)
	}
}

// TestTraceExport checks /debug/trace emits a parseable Chrome trace
// with the per-worker lanes when a session is attached.
func TestTraceExport(t *testing.T) {
	_, hts := testServer(t, Config{Workers: 2, Obs: obs.NewSession()}, true)
	spec := validEncodeSpec()
	spec.Normalize()
	st, _ := submit(t, hts.URL, spec)
	pollDone(t, hts.URL, st.ID)

	resp, err := http.Get(hts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if name, _ := ev["name"].(string); name == "job/done" {
			found = true
		}
	}
	if !found {
		t.Error("trace has no job/done span")
	}
}
