package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the content-addressed, disk-persistent result store. One
// object per job key under dir/objects/<k[:2]>/<k>.json, written to a
// temp file in the same directory and atomically renamed, so a crash
// can never leave a torn object — an object either exists complete or
// not at all. Total size is bounded: least-recently-used objects are
// evicted (deleted) once the budget is exceeded.
//
// The LRU order is persisted in dir/index.json by Flush (called on
// graceful shutdown); on open, objects missing from the index are
// appended in sorted-key order, so a store rebuilt from a crashed
// server still loads deterministically.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*storeEntry
	lru     *list.List // front = most recently used
	size    int64
}

type storeEntry struct {
	key  string
	size int64
	elem *list.Element
}

// storeIndex is the on-disk index document.
type storeIndex struct {
	Order []string `json:"order"` // most recently used first
}

// OpenStore opens (creating if needed) a store rooted at dir with the
// given size budget in bytes (<=0 means 1 GiB).
func OpenStore(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*storeEntry),
		lru:      list.New(),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// load scans the object tree and replays the persisted LRU order.
func (s *Store) load() error {
	sizes := make(map[string]int64)
	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".json") {
			return nil // stray temp or foreign file
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		sizes[strings.TrimSuffix(name, ".json")] = info.Size()
		return nil
	})
	if err != nil {
		return err
	}
	var idx storeIndex
	if data, err := os.ReadFile(filepath.Join(s.dir, "index.json")); err == nil {
		// A corrupt index is not fatal: fall back to sorted-key order.
		_ = json.Unmarshal(data, &idx)
	}
	seen := make(map[string]bool)
	var order []string
	for _, k := range idx.Order {
		if _, ok := sizes[k]; ok && !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	var rest []string
	for k := range sizes {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	order = append(order, rest...)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Walk back-to-front so PushFront leaves index order intact.
	for i := len(order) - 1; i >= 0; i-- {
		k := order[i]
		e := &storeEntry{key: k, size: sizes[k]}
		e.elem = s.lru.PushFront(e)
		s.entries[k] = e
		s.size += e.size
	}
	s.evictLocked()
	return nil
}

// objectPath returns the on-disk path for a key under a store root.
func objectPath(dir, key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(dir, "objects", prefix, key+".json")
}

// Get returns the stored result bytes for a key, marking it most
// recently used.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		obsStoreMisses.Add(1)
		return nil, false, nil
	}
	data, err := os.ReadFile(objectPath(s.dir, key))
	if err != nil {
		// The object vanished under us (manual deletion); drop the entry.
		s.mu.Lock()
		if cur, ok := s.entries[key]; ok && cur == e {
			s.lru.Remove(e.elem)
			delete(s.entries, key)
			s.size -= e.size
		}
		s.mu.Unlock()
		obsStoreMisses.Add(1)
		return nil, false, nil
	}
	obsStoreHits.Add(1)
	return data, true, nil
}

// Contains reports whether a key is present without touching LRU order
// or disk.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Put stores result bytes under a key: temp file, fsync-free atomic
// rename, then LRU accounting and eviction. Re-putting an existing key
// is a no-op (results are content-addressed and immutable).
func (s *Store) Put(key string, data []byte) error {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return fmt.Errorf("service: invalid store key %q", key)
	}
	if s.Contains(key) {
		return nil
	}
	s.mu.Lock()
	path := objectPath(s.dir, key)
	s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return nil // raced with an identical Put; the object is the same
	}
	e := &storeEntry{key: key, size: int64(len(data))}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.size += e.size
	obsStorePutBytes.Add(uint64(len(data)))
	s.evictLocked()
	return nil
}

// evictLocked deletes least-recently-used objects until the store is
// back under budget. At least one object is always retained so a
// single oversized result is still served.
func (s *Store) evictLocked() {
	for s.size > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*storeEntry)
		s.lru.Remove(el)
		delete(s.entries, e.key)
		s.size -= e.size
		os.Remove(objectPath(s.dir, e.key))
		obsStoreEvictions.Add(1)
	}
}

// Flush persists the LRU index atomically (temp + rename), so the next
// OpenStore resumes with the same eviction order.
func (s *Store) Flush() error {
	s.mu.Lock()
	idx := storeIndex{Order: make([]string, 0, s.lru.Len())}
	for el := s.lru.Front(); el != nil; el = el.Next() {
		idx.Order = append(idx.Order, el.Value.(*storeEntry).key)
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(&idx, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "index-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, "index.json"))
}

// StoreStats is a snapshot of the store's occupancy.
type StoreStats struct {
	Objects int
	Bytes   int64
	Cap     int64
}

// Stats reports current occupancy.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Objects: len(s.entries), Bytes: s.size, Cap: s.maxBytes}
}
