package service

import (
	"context"
	"io"
	"strconv"
	"sync"
	"time"

	"vcprof/internal/obs"
)

// worker is one pool goroutine: pop, execute, publish, repeat. It exits
// when the queue is closed and drained (graceful shutdown keeps serving
// queued work until then).
func (s *Server) worker(idx int) {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(idx, j)
	}
}

// runJob executes one job under its deadline and publishes the outcome:
// result bytes into the store (then the job is marked done and
// untracked), or the error onto the job record.
func (s *Server) runJob(idx int, j *job) {
	// A twin submitted, computed and stored while this one waited in
	// the queue satisfies it for free.
	if s.store.Contains(j.key) {
		obsJobsCompleted.Add(1)
		s.jobs.setState(j, StateDone, "")
		return
	}
	s.jobs.setState(j, StateRunning, "")
	timeout := s.cfg.DefaultTimeout
	if t := time.Duration(j.spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	res, err := Execute(ctx, &j.spec)
	cancel()
	if err != nil {
		obsJobsFailed.Add(1)
		s.board.span(idx, obsJobFailedName, j.key, 1)
		s.jobs.setState(j, StateFailed, err.Error())
		return
	}
	data := res.Encode()
	if perr := s.store.Put(j.key, data); perr != nil {
		obsJobsFailed.Add(1)
		s.board.span(idx, obsJobFailedName, j.key, 1)
		s.jobs.setState(j, StateFailed, "store: "+perr.Error())
		return
	}
	obsJobsCompleted.Add(1)
	// Ticks advance by payload size — a modeled quantity, never host
	// time, per the obs contract.
	s.board.span(idx, obsJobDoneName, j.key, uint64(len(data)))
	s.jobs.setState(j, StateDone, "")
}

// traceBoard owns the per-worker span lanes. obs Traces are
// single-goroutine by contract; the board serializes the (rare, cheap)
// span appends against /debug/trace exports with one mutex so the
// export can run while traffic flows.
type traceBoard struct {
	sess *obs.Session // nil = tracing disabled

	mu    sync.Mutex
	lanes []*obs.Trace
}

func newTraceBoard(sess *obs.Session, workers int) *traceBoard {
	if sess == nil {
		return &traceBoard{}
	}
	// Lanes are created here, in index order, before any worker runs —
	// lane layout is deterministic even though span contents follow the
	// scheduler.
	lanes := make([]*obs.Trace, workers)
	for i := range lanes {
		lanes[i] = sess.Lane("worker-" + strconv.Itoa(i))
	}
	return &traceBoard{sess: sess, lanes: lanes}
}

func (b *traceBoard) enabled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sess != nil
}

// span records one closed span of the given virtual width on a worker's
// lane.
func (b *traceBoard) span(idx int, name obs.NameID, arg string, ticks uint64) {
	if b.sess == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.lanes) {
		return
	}
	tr := b.lanes[idx]
	sp := tr.BeginArg(name, arg)
	tr.Advance(ticks)
	sp.End()
}

// export writes the Chrome trace while holding the board lock, so no
// lane mutates mid-export.
func (b *traceBoard) export(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return obs.WriteChromeTrace(w, b.sess)
}
