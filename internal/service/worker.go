package service

import (
	"context"
	"io"
	"strconv"
	"sync"
	"time"

	"vcprof/internal/obs"
	"vcprof/internal/sched"
	"vcprof/internal/uarch/topdown"
)

// worker is one pool goroutine: pop, execute, publish, repeat. It exits
// when the queue is closed and drained (graceful shutdown keeps serving
// queued work until then).
func (s *Server) worker(idx int) {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(idx, j)
	}
}

// runJob executes one job under its deadline and publishes the outcome:
// result bytes into the store (then the job is marked done and
// untracked), or the error onto the job record. Telemetry rides
// alongside: queue-wait and latency histograms, the running-jobs
// gauge, streaming top-down accumulators (per-job and aggregate) on
// the context, and — when tracing — a per-job span session adopted
// into the board afterwards. All of it observes; none of it feeds the
// result bytes, which stay identical with telemetry on or off.
func (s *Server) runJob(idx int, j *job) {
	// A twin submitted, computed and stored while this one waited in
	// the queue satisfies it for free.
	if s.store.Contains(j.key) {
		obsJobsCompleted.Add(1)
		s.jobs.setState(j, StateDone, "")
		return
	}
	if !j.enqueuedAt.IsZero() {
		wait := uint64(time.Since(j.enqueuedAt).Milliseconds())
		obsQueueWaitMS.Observe(wait)
		obsQueueWaitClassMS[j.class].Observe(wait)
		// Queue wait is scheduler-decided: a volatile placement hop,
		// stamped here (obs never reads the clock itself).
		s.hops.Emit(obs.HopEvent{Trace: j.traceID, Kind: obs.HopQueueWait,
			Dur: wait, StartMS: j.enqueuedAt.UnixMilli()})
	}
	s.tele.running.Add(1)
	defer s.tele.running.Add(-1)
	s.jobs.setState(j, StateRunning, "")
	timeout := s.cfg.DefaultTimeout
	if t := time.Duration(j.spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	ctx = obs.WithTraceContext(ctx, obs.TraceContext{Trace: j.traceID})
	ctx = topdown.WithAccumulator(ctx, s.tele.jobAcc(j.key))
	ctx = topdown.WithAccumulator(ctx, s.tele.agg)
	if s.pool != nil {
		// The job's cells — and, below them, its encode shards — run on
		// the shared shard pool instead of serially in this goroutine.
		ctx = sched.WithPool(ctx, s.pool)
	}
	var jobSess *obs.Session
	if s.board.enabled() {
		jobSess = obs.NewSession()
	}
	start := time.Now()
	res, err := ExecuteObserved(ctx, &j.spec, jobSess)
	obsJobLatencyMS.Observe(uint64(time.Since(start).Milliseconds()))
	s.board.adopt(jobSess)
	cancel()
	if err != nil {
		obsJobsFailed.Add(1)
		s.board.span(idx, obsJobFailedName, j.key, 1)
		s.hops.Emit(obs.HopEvent{Trace: j.traceID, Kind: obs.HopJobFailed,
			Arg: shortArg(j.key), StartMS: time.Now().UnixMilli()})
		s.jobs.setState(j, StateFailed, err.Error())
		return
	}
	data := res.Encode()
	if perr := s.store.Put(j.key, data); perr != nil {
		obsJobsFailed.Add(1)
		s.board.span(idx, obsJobFailedName, j.key, 1)
		s.hops.Emit(obs.HopEvent{Trace: j.traceID, Kind: obs.HopJobFailed,
			Arg: shortArg(j.key), StartMS: time.Now().UnixMilli()})
		s.jobs.setState(j, StateFailed, "store: "+perr.Error())
		return
	}
	obsJobsCompleted.Add(1)
	// Ticks advance by payload size — a modeled quantity, never host
	// time, per the obs contract. The exec hop is deterministic on the
	// same grounds: its duration is the result size, identical on every
	// shard (or hedge replay) that computes the job.
	s.board.span(idx, obsJobDoneName, j.key, uint64(len(data)))
	s.hops.Emit(obs.HopEvent{Trace: j.traceID, Kind: obs.HopExec,
		Arg: shortArg(j.key), Dur: uint64(len(data))})
	s.jobs.setState(j, StateDone, "")
}

// traceBoard owns the per-worker span lanes. obs Traces are
// single-goroutine by contract; the board serializes the (rare, cheap)
// span appends against /debug/trace exports with one mutex so the
// export can run while traffic flows.
type traceBoard struct {
	sess *obs.Session // nil = tracing disabled

	mu         sync.Mutex
	lanes      []*obs.Trace
	shardLanes []*obs.Trace   // one per shard-pool worker
	adopted    []*obs.Session // completed per-job sessions, bounded ring
}

// maxAdoptedSessions bounds the per-job sessions the profile
// aggregates; beyond it the oldest traced job falls out of the
// profile, keeping daemon memory flat under sustained traffic.
const maxAdoptedSessions = 256

func newTraceBoard(sess *obs.Session, workers, shardWorkers int) *traceBoard {
	if sess == nil {
		return &traceBoard{}
	}
	// Lanes are created here, in index order, before any worker runs —
	// lane layout is deterministic even though span contents follow the
	// scheduler.
	lanes := make([]*obs.Trace, workers)
	for i := range lanes {
		lanes[i] = sess.Lane("worker-" + strconv.Itoa(i))
	}
	shardLanes := make([]*obs.Trace, shardWorkers)
	for i := range shardLanes {
		shardLanes[i] = sess.Lane("shard-" + strconv.Itoa(i))
	}
	return &traceBoard{sess: sess, lanes: lanes, shardLanes: shardLanes}
}

// Span names for shard-pool lanes in the Chrome trace.
var (
	obsShardRunName   = obs.Name("shard/run")
	obsShardStealName = obs.Name("shard/steal")
)

// shardObserver returns the pool observer feeding per-shard spans onto
// the shard lanes, or nil (no observation overhead) when tracing is
// disabled. Span ticks are the shard's modeled cost — never host time.
func (b *traceBoard) shardObserver() func(sched.TaskEvent) {
	if b.sess == nil {
		return nil
	}
	return func(ev sched.TaskEvent) {
		name := obsShardRunName
		if ev.Stolen {
			name = obsShardStealName
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		if ev.Worker < 0 || ev.Worker >= len(b.shardLanes) {
			return
		}
		tr := b.shardLanes[ev.Worker]
		sp := tr.BeginArg(name, ev.Label)
		tr.Advance(1 + ev.Cost)
		sp.End()
	}
}

func (b *traceBoard) enabled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sess != nil
}

// span records one closed span of the given virtual width on a worker's
// lane.
func (b *traceBoard) span(idx int, name obs.NameID, arg string, ticks uint64) {
	if b.sess == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if idx < 0 || idx >= len(b.lanes) {
		return
	}
	tr := b.lanes[idx]
	sp := tr.BeginArg(name, arg)
	tr.Advance(ticks)
	sp.End()
}

// export writes the Chrome trace while holding the board lock, so no
// lane mutates mid-export.
func (b *traceBoard) export(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return obs.WriteChromeTrace(w, b.sess)
}

// adopt takes ownership of a completed job's span session. Sessions
// are adopted only after the job finishes — a live session must never
// be visible to exports, since Traces are single-goroutine — and from
// then on they are immutable profile inputs.
func (b *traceBoard) adopt(sess *obs.Session) {
	if b.sess == nil || sess == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.adopted = append(b.adopted, sess)
	if len(b.adopted) > maxAdoptedSessions {
		b.adopted = b.adopted[len(b.adopted)-maxAdoptedSessions:]
	}
}

// writeProfile renders the continuous self-profile (flat table, or
// folded stacks with fold) over the worker lanes and every adopted
// job session, under the board lock so no lane mutates mid-read.
func (b *traceBoard) writeProfile(w io.Writer, fold bool, topN int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	sessions := make([]*obs.Session, 0, 1+len(b.adopted))
	sessions = append(sessions, b.sess)
	sessions = append(sessions, b.adopted...)
	if fold {
		return obs.WriteFolded(w, obs.FoldedProfile(sessions...))
	}
	_, err := io.WriteString(w, obs.RenderProfile(obs.ProfileOf(sessions...), topN))
	return err
}
