package video

import "math"

// MeasureEntropy estimates a clip's content complexity on the 0–8 scale
// vbench uses, from the Shannon entropy of spatial gradients and
// temporal frame differences. It validates the procedural generator:
// measured entropy must rank clips in the catalog's order.
func MeasureEntropy(c *Clip) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	spatial := histogramEntropy(spatialGradients(c))
	temporal := 0.0
	if len(c.Frames) > 1 {
		temporal = histogramEntropy(temporalDiffs(c))
	}
	// Blend spatial detail and temporal activity; both are 0..8 bits.
	return 0.5*spatial + 0.5*temporal, nil
}

// spatialGradients collects |dx| values of the first frame's luma.
func spatialGradients(c *Clip) []int {
	y := c.Frames[0].Y
	out := make([]int, 0, (y.W-1)*y.H)
	for r := 0; r < y.H; r++ {
		row := y.Row(r)
		for x := 1; x < y.W; x++ {
			d := int(row[x]) - int(row[x-1])
			if d < 0 {
				d = -d
			}
			out = append(out, d)
		}
	}
	return out
}

// temporalDiffs collects |Δt| values between consecutive luma frames.
func temporalDiffs(c *Clip) []int {
	var out []int
	for i := 1; i < len(c.Frames); i++ {
		a, b := c.Frames[i-1].Y, c.Frames[i].Y
		for j := range a.Pix {
			d := int(a.Pix[j]) - int(b.Pix[j])
			if d < 0 {
				d = -d
			}
			out = append(out, d)
		}
	}
	return out
}

// histogramEntropy returns the Shannon entropy (bits) of a sample set
// of byte-range magnitudes.
func histogramEntropy(samples []int) float64 {
	if len(samples) == 0 {
		return 0
	}
	var hist [256]int
	for _, s := range samples {
		if s > 255 {
			s = 255
		}
		hist[s]++
	}
	total := float64(len(samples))
	h := 0.0
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / total
		h -= p * math.Log2(p)
	}
	return h
}
