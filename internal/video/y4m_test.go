package video

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestY4MRoundTrip(t *testing.T) {
	meta, err := LookupClip("game2")
	if err != nil {
		t.Fatal(err)
	}
	clip, err := Generate(meta, GenerateOptions{Frames: 3, ScaleDiv: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteY4M(&buf, clip); err != nil {
		t.Fatal(err)
	}
	got, err := ReadY4M(&buf, "game2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != 3 {
		t.Fatalf("%d frames, want 3", len(got.Frames))
	}
	if got.Meta.Width != clip.Meta.Width || got.Meta.Height != clip.Meta.Height || got.Meta.FPS != clip.Meta.FPS {
		t.Errorf("meta %+v, want %+v", got.Meta, clip.Meta)
	}
	for i := range clip.Frames {
		for _, pl := range []struct{ a, b *Plane }{
			{clip.Frames[i].Y, got.Frames[i].Y},
			{clip.Frames[i].U, got.Frames[i].U},
			{clip.Frames[i].V, got.Frames[i].V},
		} {
			if !bytes.Equal(pl.a.Pix, pl.b.Pix) {
				t.Fatalf("frame %d plane bytes differ", i)
			}
		}
	}
}

func TestY4MHeaderValidation(t *testing.T) {
	cases := []string{
		"MPEG4 W64 H64 F30:1\nFRAME\n",     // bad magic
		"YUV4MPEG2 W0 H64 F30:1\n",         // zero width
		"YUV4MPEG2 W63 H64 F30:1\n",        // odd width
		"YUV4MPEG2 W64 H64 F30:1 C444\n",   // unsupported chroma
		"YUV4MPEG2 W64 H64 F30:0\n",        // zero denominator
		"YUV4MPEG2 W64 H64 F30:1\nBOGUS\n", // bad frame marker
		"YUV4MPEG2 W64 H64 F30:1\n",        // no frames
	}
	for _, c := range cases {
		if _, err := ReadY4M(strings.NewReader(c), "x"); err == nil {
			t.Errorf("accepted malformed stream %q", c[:min(len(c), 40)])
		}
	}
	// Truncated frame payload.
	trunc := "YUV4MPEG2 W64 H64 F30:1 C420\nFRAME\nshortpayload"
	if _, err := ReadY4M(strings.NewReader(trunc), "x"); err == nil {
		t.Error("accepted truncated frame payload")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestY4MFrameRateFraction(t *testing.T) {
	// 30000:1001 NTSC rates truncate to 29 fps.
	hdr := "YUV4MPEG2 W32 H32 F30000:1001 C420\nFRAME\n" + strings.Repeat("\x80", 32*32*3/2)
	clip, err := ReadY4M(strings.NewReader(hdr), "ntsc")
	if err != nil {
		t.Fatal(err)
	}
	if clip.Meta.FPS != 29 {
		t.Errorf("FPS = %d, want 29", clip.Meta.FPS)
	}
}

func TestMeasureEntropyRanksClips(t *testing.T) {
	// The generator must produce content whose *measured* entropy ranks
	// clips consistently with the vbench catalog values it was given.
	names := []string{"desktop", "bike", "game1", "hall"}
	type point struct {
		name     string
		catalog  float64
		measured float64
	}
	var pts []point
	for _, n := range names {
		meta, err := LookupClip(n)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := Generate(meta, GenerateOptions{Frames: 4, ScaleDiv: 12})
		if err != nil {
			t.Fatal(err)
		}
		m, err := MeasureEntropy(clip)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{n, meta.Entropy, m})
	}
	byCatalog := append([]point{}, pts...)
	sort.Slice(byCatalog, func(i, j int) bool { return byCatalog[i].catalog < byCatalog[j].catalog })
	byMeasured := append([]point{}, pts...)
	sort.Slice(byMeasured, func(i, j int) bool { return byMeasured[i].measured < byMeasured[j].measured })
	for i := range byCatalog {
		if byCatalog[i].name != byMeasured[i].name {
			var co, mo []string
			for _, p := range byCatalog {
				co = append(co, p.name)
			}
			for _, p := range byMeasured {
				mo = append(mo, p.name)
			}
			t.Fatalf("entropy ranking mismatch: catalog order %v, measured order %v", co, mo)
		}
	}
	// Values live on a sane scale.
	for _, p := range pts {
		if p.measured < 0 || p.measured > 8 {
			t.Errorf("%s measured entropy %v out of [0, 8]", p.name, p.measured)
		}
	}
}

func TestMeasureEntropyValidation(t *testing.T) {
	if _, err := MeasureEntropy(&Clip{}); err == nil {
		t.Error("accepted empty clip")
	}
}
