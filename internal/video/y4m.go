package video

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Y4M (YUV4MPEG2) is the raw-video interchange format the vbench suite
// distributes its clips in. WriteY4M/ReadY4M implement the 4:2:0 subset
// so procedural clips can be exported for external tools and real clips
// can be imported in place of the generator.

// WriteY4M serializes the clip as YUV4MPEG2 (C420, progressive).
func WriteY4M(w io.Writer, clip *Clip) error {
	if err := clip.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fps := clip.Meta.FPS
	if fps <= 0 {
		fps = 30
	}
	f := clip.Frames[0]
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:1 Ip A1:1 C420\n",
		f.Width(), f.Height(), fps); err != nil {
		return err
	}
	for _, fr := range clip.Frames {
		if _, err := bw.WriteString("FRAME\n"); err != nil {
			return err
		}
		for _, p := range []*Plane{fr.Y, fr.U, fr.V} {
			for y := 0; y < p.H; y++ {
				if _, err := bw.Write(p.Row(y)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadY4M parses a YUV4MPEG2 stream (C420 only) into a clip. The name
// labels the resulting metadata; entropy is left zero (unknown).
func ReadY4M(r io.Reader, name string) (*Clip, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("video: y4m header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("video: not a YUV4MPEG2 stream")
	}
	meta := ClipMeta{Name: name, FPS: 30}
	for _, f := range fields[1:] {
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case 'W':
			if meta.Width, err = strconv.Atoi(f[1:]); err != nil {
				return nil, fmt.Errorf("video: y4m width: %w", err)
			}
		case 'H':
			if meta.Height, err = strconv.Atoi(f[1:]); err != nil {
				return nil, fmt.Errorf("video: y4m height: %w", err)
			}
		case 'F':
			parts := strings.SplitN(f[1:], ":", 2)
			num, err := strconv.Atoi(parts[0])
			if err != nil {
				return nil, fmt.Errorf("video: y4m frame rate: %w", err)
			}
			den := 1
			if len(parts) == 2 {
				if den, err = strconv.Atoi(parts[1]); err != nil || den <= 0 {
					return nil, fmt.Errorf("video: y4m frame rate denominator %q", parts[1])
				}
			}
			meta.FPS = num / den
		case 'C':
			if f[1:] != "420" && f[1:] != "420jpeg" && f[1:] != "420mpeg2" {
				return nil, fmt.Errorf("video: unsupported y4m chroma %q (only C420)", f[1:])
			}
		}
	}
	if meta.Width <= 0 || meta.Height <= 0 || meta.Width%2 != 0 || meta.Height%2 != 0 {
		return nil, fmt.Errorf("video: invalid y4m geometry %dx%d", meta.Width, meta.Height)
	}
	clip := &Clip{Meta: meta}
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF && line == "" {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("video: y4m frame header: %w", err)
		}
		if !strings.HasPrefix(line, "FRAME") {
			return nil, fmt.Errorf("video: malformed y4m frame marker %q", strings.TrimSpace(line))
		}
		fr, err := NewFrame(meta.Width, meta.Height)
		if err != nil {
			return nil, err
		}
		fr.Index = len(clip.Frames)
		for _, p := range []*Plane{fr.Y, fr.U, fr.V} {
			if _, err := io.ReadFull(br, p.Pix); err != nil {
				return nil, fmt.Errorf("video: y4m frame %d truncated: %w", fr.Index, err)
			}
		}
		clip.Frames = append(clip.Frames, fr)
		if len(clip.Frames) > 100000 {
			return nil, fmt.Errorf("video: y4m stream implausibly long")
		}
	}
	if len(clip.Frames) == 0 {
		return nil, ErrNoFrames
	}
	return clip, nil
}
