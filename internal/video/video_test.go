package video

import (
	"testing"
	"testing/quick"
)

func TestVbenchCatalog(t *testing.T) {
	clips := Vbench()
	if len(clips) != 15 {
		t.Fatalf("vbench catalog has %d clips, want 15", len(clips))
	}
	seen := map[string]bool{}
	for _, m := range clips {
		if seen[m.Name] {
			t.Errorf("duplicate clip name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Width <= 0 || m.Height <= 0 || m.FPS <= 0 {
			t.Errorf("clip %q has invalid geometry %+v", m.Name, m)
		}
		if m.Entropy < 0 || m.Entropy > 8 {
			t.Errorf("clip %q entropy %v out of range", m.Name, m.Entropy)
		}
	}
	for _, want := range []struct {
		name    string
		height  int
		fps     int
		entropy float64
	}{
		{"game1", 1080, 60, 4.6},
		{"chicken", 2160, 30, 5.9},
		{"desktop", 720, 30, 0.2},
		{"hall", 1080, 29, 7.7},
	} {
		m, err := LookupClip(want.name)
		if err != nil {
			t.Fatalf("LookupClip(%q): %v", want.name, err)
		}
		if m.Height != want.height || m.FPS != want.fps || m.Entropy != want.entropy {
			t.Errorf("clip %q = %+v, want height=%d fps=%d entropy=%v",
				want.name, m, want.height, want.fps, want.entropy)
		}
	}
}

func TestLookupClipUnknown(t *testing.T) {
	if _, err := LookupClip("nosuchclip"); err == nil {
		t.Fatal("LookupClip(nosuchclip) succeeded, want error")
	}
}

func TestScaleRoundsEvenAndClamps(t *testing.T) {
	m := ClipMeta{Name: "x", Width: 1920, Height: 1080, FPS: 30}
	s := m.Scale(8)
	if s.Width%2 != 0 || s.Height%2 != 0 {
		t.Errorf("scaled dims %dx%d not even", s.Width, s.Height)
	}
	if s.Width != 240 || s.Height != 136 {
		t.Errorf("Scale(8) = %dx%d, want 240x136", s.Width, s.Height)
	}
	tiny := ClipMeta{Width: 100, Height: 100}.Scale(64)
	if tiny.Width < 32 || tiny.Height < 32 {
		t.Errorf("Scale clamped to %dx%d, want >=32", tiny.Width, tiny.Height)
	}
	if same := m.Scale(1); same != m {
		t.Errorf("Scale(1) changed metadata: %+v", same)
	}
}

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(0, 16); err == nil {
		t.Error("NewFrame(0,16) succeeded, want error")
	}
	if _, err := NewFrame(17, 16); err == nil {
		t.Error("NewFrame(17,16) succeeded, want error for odd width")
	}
	f, err := NewFrame(64, 32)
	if err != nil {
		t.Fatalf("NewFrame: %v", err)
	}
	if f.U.W != 32 || f.U.H != 16 || f.V.W != 32 || f.V.H != 16 {
		t.Errorf("chroma planes %dx%d / %dx%d, want 32x16", f.U.W, f.U.H, f.V.W, f.V.H)
	}
}

func TestPlaneBlockEdgeReplication(t *testing.T) {
	p := NewPlane(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			p.Set(x, y, byte(y*4+x))
		}
	}
	dst := make([]byte, 16)
	p.Block(-2, -2, 4, 4, dst)
	if dst[0] != p.At(0, 0) {
		t.Errorf("top-left overhang = %d, want replicated corner %d", dst[0], p.At(0, 0))
	}
	p.Block(2, 2, 4, 4, dst)
	if dst[15] != p.At(3, 3) {
		t.Errorf("bottom-right overhang = %d, want replicated corner %d", dst[15], p.At(3, 3))
	}
	// Interior extraction must be exact.
	p.Block(1, 1, 2, 2, dst[:4])
	want := []byte{5, 6, 9, 10}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("interior block[%d] = %d, want %d", i, dst[i], w)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	meta, err := LookupClip("game1")
	if err != nil {
		t.Fatal(err)
	}
	opts := GenerateOptions{Frames: 3, ScaleDiv: 8}
	a, err := Generate(meta, opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(meta, opts)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := range a.Frames {
		fa, fb := a.Frames[i], b.Frames[i]
		for j := range fa.Y.Pix {
			if fa.Y.Pix[j] != fb.Y.Pix[j] {
				t.Fatalf("frame %d luma byte %d differs between identical generations", i, j)
			}
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGenerateEntropyOrdersFrameDifference(t *testing.T) {
	// Higher-entropy clips must have more temporal change, since that is
	// what drives encoder effort ordering in the paper's Table 2.
	diff := func(name string) float64 {
		meta, err := LookupClip(name)
		if err != nil {
			t.Fatal(err)
		}
		clip, err := Generate(meta, GenerateOptions{Frames: 4, ScaleDiv: 8})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		a, b := clip.Frames[1].Y, clip.Frames[3].Y
		for i := range a.Pix {
			d := float64(int(a.Pix[i]) - int(b.Pix[i]))
			sum += d * d
		}
		return sum / float64(len(a.Pix))
	}
	low, high := diff("desktop"), diff("hall")
	if low >= high {
		t.Errorf("temporal MSE: desktop=%v >= hall=%v; entropy should order temporal change", low, high)
	}
}

func TestGenerateFrameCountDefaults(t *testing.T) {
	meta := ClipMeta{Name: "t", Width: 64, Height: 64, FPS: 10, Entropy: 1, Seed: 7}
	clip, err := Generate(meta, GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Frames) != 50 {
		t.Errorf("default frame count = %d, want FPS*5 = 50", len(clip.Frames))
	}
	if _, err := Generate(meta, GenerateOptions{Frames: -1}); err == nil {
		t.Error("negative frame count accepted, want error")
	}
}

func TestClipValidateMismatchedFrames(t *testing.T) {
	f1, _ := NewFrame(32, 32)
	f2, _ := NewFrame(64, 32)
	c := &Clip{Frames: []*Frame{f1, f2}}
	if err := c.Validate(); err == nil {
		t.Error("Validate accepted mismatched frame sizes")
	}
	empty := &Clip{}
	if err := empty.Validate(); err != ErrNoFrames {
		t.Errorf("Validate(empty) = %v, want ErrNoFrames", err)
	}
	if empty.PixelsPerFrame() != 0 {
		t.Error("PixelsPerFrame on empty clip should be 0")
	}
}

func TestBounceStaysInRange(t *testing.T) {
	f := func(v float64) bool {
		if v != v || v > 1e12 || v < -1e12 { // skip NaN/huge inputs
			return true
		}
		got := bounce(v, 100)
		return got >= 0 && got <= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformish(t *testing.T) {
	r := newRNG(42)
	var buckets [8]int
	const n = 8000
	for i := 0; i < n; i++ {
		buckets[r.intn(8)]++
	}
	for i, b := range buckets {
		if b < n/8-300 || b > n/8+300 {
			t.Errorf("bucket %d count %d far from uniform %d", i, b, n/8)
		}
	}
}
