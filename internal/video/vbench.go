package video

import "fmt"

// ClipMeta describes a vbench entry: name, resolution class, frame rate
// and content entropy, mirroring Table 1 of the paper.
type ClipMeta struct {
	Name    string
	Width   int
	Height  int
	FPS     int
	Entropy float64
	// Seed makes each clip's procedural content distinct and reproducible.
	Seed uint64
}

// String renders the catalog row, e.g. "game1 1080p@60 entropy=4.6".
func (m ClipMeta) String() string {
	return fmt.Sprintf("%s %s@%d entropy=%.2g", m.Name, resolutionClass(m.Height), m.FPS, m.Entropy)
}

func resolutionClass(h int) string {
	switch {
	case h >= 2160:
		return "2160p"
	case h >= 1080:
		return "1080p"
	case h >= 720:
		return "720p"
	default:
		return "480p"
	}
}

func dims(class string) (w, h int) {
	switch class {
	case "2160p":
		return 3840, 2160
	case "1080p":
		return 1920, 1080
	case "720p":
		return 1280, 720
	case "480p":
		return 854, 480
	default:
		return 1280, 720
	}
}

// Vbench returns the 15-clip catalog of Table 1. The paper's table lists
// "bike" twice and both "house"/"presentation" appear across Table 1 and
// Table 2; we reconcile to 15 distinct names covering both tables.
func Vbench() []ClipMeta {
	type row struct {
		name    string
		class   string
		fps     int
		entropy float64
	}
	rows := []row{
		{"desktop", "720p", 30, 0.2},
		{"presentation", "1080p", 25, 0.2},
		{"bike", "720p", 29, 0.92},
		{"funny", "1080p", 30, 2.5},
		{"house", "1080p", 29, 2.8},
		{"cricket", "720p", 30, 3.4},
		{"game1", "1080p", 60, 4.6},
		{"game2", "720p", 30, 4.9},
		{"game3", "720p", 59, 6.1},
		{"girl", "720p", 30, 5.9},
		{"chicken", "2160p", 30, 5.9},
		{"cat", "480p", 29, 6.8},
		{"holi", "480p", 30, 7.0},
		{"landscape", "1080p", 29, 7.2},
		{"hall", "1080p", 29, 7.7},
	}
	out := make([]ClipMeta, len(rows))
	for i, r := range rows {
		w, h := dims(r.class)
		out[i] = ClipMeta{
			Name: r.name, Width: w, Height: h, FPS: r.fps, Entropy: r.entropy,
			Seed: 0x9E3779B97F4A7C15 ^ uint64(i+1)*0xBF58476D1CE4E5B9,
		}
	}
	return out
}

// LookupClip returns the catalog entry with the given name.
func LookupClip(name string) (ClipMeta, error) {
	for _, m := range Vbench() {
		if m.Name == name {
			return m, nil
		}
	}
	return ClipMeta{}, fmt.Errorf("video: unknown vbench clip %q", name)
}

// Scale returns a copy of the metadata with resolution divided by the
// linear factor f (rounded to even), used to shrink experiments to
// laptop scale while preserving aspect and content parameters.
func (m ClipMeta) Scale(f int) ClipMeta {
	if f <= 1 {
		return m
	}
	s := m
	s.Width = even(m.Width / f)
	s.Height = even(m.Height / f)
	if s.Width < 32 {
		s.Width = 32
	}
	if s.Height < 32 {
		s.Height = 32
	}
	return s
}

func even(v int) int {
	if v%2 != 0 {
		v++
	}
	return v
}
