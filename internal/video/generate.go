package video

import (
	"fmt"
	"math"
)

// rng is a splitmix64 generator: tiny, fast, and deterministic across
// platforms, so clip content never depends on math/rand internals.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// GenerateOptions controls procedural clip synthesis.
type GenerateOptions struct {
	// Frames is the number of frames to synthesize. Zero selects the
	// clip's native frame count for a 5-second sequence (FPS*5), which is
	// usually far more than experiments need.
	Frames int
	// ScaleDiv divides the resolution linearly (0 or 1 = native).
	ScaleDiv int
	// CutAt, when positive, switches to entirely different scene content
	// from that frame index on — a hard scene cut for testing keyframe
	// placement and lookahead heuristics.
	CutAt int
}

// Generate synthesizes a clip for the catalog entry. Content is built
// from three entropy-scaled layers: a smooth illumination field (easy to
// predict), a band-limited texture field (stresses transforms and intra
// prediction), and translational moving objects plus sensor noise
// (stresses motion search and rate control). Entropy near zero yields
// screen-content-like static imagery (desktop, presentation); entropy
// near 8 yields noisy, high-motion imagery (hall, landscape).
func Generate(meta ClipMeta, opts GenerateOptions) (*Clip, error) {
	m := meta
	if opts.ScaleDiv > 1 {
		m = meta.Scale(opts.ScaleDiv)
	}
	n := opts.Frames
	if n == 0 {
		n = m.FPS * 5
	}
	if n < 1 {
		return nil, fmt.Errorf("video: invalid frame count %d", n)
	}
	g, err := newGenerator(m)
	if err != nil {
		return nil, err
	}
	var g2 *generator
	if opts.CutAt > 0 && opts.CutAt < n {
		m2 := m
		m2.Seed ^= 0xC0FFEE5CE11E
		if g2, err = newGenerator(m2); err != nil {
			return nil, err
		}
	}
	clip := &Clip{Meta: m, Frames: make([]*Frame, 0, n)}
	for i := 0; i < n; i++ {
		gen, idx := g, i
		if g2 != nil && i >= opts.CutAt {
			gen, idx = g2, i-opts.CutAt
		}
		f, err := gen.frame(idx)
		if err != nil {
			return nil, err
		}
		f.Index = i
		clip.Frames = append(clip.Frames, f)
	}
	return clip, nil
}

type object struct {
	x, y   float64 // center, luma coordinates
	vx, vy float64 // velocity in pixels/frame
	w, h   float64
	luma   byte
	chroma [2]byte
}

type generator struct {
	meta    ClipMeta
	objects []object
	// texture holds a precomputed band-limited noise field sampled with a
	// per-frame phase shift, cheap enough to synthesize 2160p frames.
	texture  []byte
	texW     int
	texH     int
	noise    *rng
	noiseAmp int
	motion   float64
}

func newGenerator(m ClipMeta) (*generator, error) {
	if m.Width <= 0 || m.Height <= 0 {
		return nil, fmt.Errorf("video: invalid generator size %dx%d", m.Width, m.Height)
	}
	r := newRNG(m.Seed)
	g := &generator{meta: m, noise: newRNG(m.Seed ^ 0xD1B54A32D192ED03)}

	// Entropy → content intensity. vbench entropies span [0.2, 7.7].
	e := m.Entropy / 8.0
	g.noiseAmp = int(math.Round(e * e * 22)) // quadratic: quiet clips are very quiet
	g.motion = 0.5 + e*7.5                   // pixels/frame of dominant motion

	// Texture field: sum of directional cosines with random phases plus
	// white noise, amplitude scaled by entropy.
	g.texW, g.texH = 256, 256
	g.texture = make([]byte, g.texW*g.texH)
	amp := e * 70
	type wave struct{ fx, fy, ph, a float64 }
	waves := make([]wave, 6)
	for i := range waves {
		waves[i] = wave{
			fx: (r.float64()*2 - 1) * 0.9,
			fy: (r.float64()*2 - 1) * 0.9,
			ph: r.float64() * 2 * math.Pi,
			a:  amp * (0.3 + r.float64()),
		}
	}
	for y := 0; y < g.texH; y++ {
		for x := 0; x < g.texW; x++ {
			v := 0.0
			for _, w := range waves {
				v += w.a * math.Cos(w.fx*float64(x)+w.fy*float64(y)+w.ph)
			}
			v += (r.float64()*2 - 1) * amp * 0.5
			g.texture[y*g.texW+x] = clamp8(128 + v/3)
		}
	}

	// Moving objects: count and speed scale with entropy.
	nObj := 2 + int(e*10)
	g.objects = make([]object, nObj)
	for i := range g.objects {
		g.objects[i] = object{
			x:    r.float64() * float64(m.Width),
			y:    r.float64() * float64(m.Height),
			vx:   (r.float64()*2 - 1) * g.motion,
			vy:   (r.float64()*2 - 1) * g.motion * 0.5,
			w:    8 + r.float64()*float64(m.Width)/6,
			h:    8 + r.float64()*float64(m.Height)/6,
			luma: byte(40 + r.intn(176)),
			chroma: [2]byte{
				byte(64 + r.intn(128)),
				byte(64 + r.intn(128)),
			},
		}
	}
	return g, nil
}

func clamp8(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// frame renders display-order frame i.
func (g *generator) frame(i int) (*Frame, error) {
	m := g.meta
	f, err := NewFrame(m.Width, m.Height)
	if err != nil {
		return nil, err
	}
	f.Index = i

	// Global pan proportional to motion; texture phase drifts with it so
	// inter prediction has real translational structure to find.
	panX := int(math.Round(float64(i) * g.motion))
	panY := int(math.Round(float64(i) * g.motion * 0.3))

	// Luma: illumination gradient + panned texture.
	for y := 0; y < m.Height; y++ {
		row := f.Y.Row(y)
		ty := (y + panY) & (g.texH - 1)
		trow := g.texture[ty*g.texW:]
		base := 60 + (120*y)/m.Height
		for x := 0; x < m.Width; x++ {
			t := int(trow[(x+panX)&(g.texW-1)]) - 128
			row[x] = clamp8(float64(base + (60*x)/m.Width/2 + t))
		}
	}

	// Objects move with constant velocity, bouncing off frame edges.
	for oi := range g.objects {
		o := &g.objects[oi]
		cx := o.x + o.vx*float64(i)
		cy := o.y + o.vy*float64(i)
		cx = bounce(cx, float64(m.Width))
		cy = bounce(cy, float64(m.Height))
		x0, x1 := int(cx-o.w/2), int(cx+o.w/2)
		y0, y1 := int(cy-o.h/2), int(cy+o.h/2)
		fillRect(f.Y, x0, y0, x1, y1, o.luma)
		fillRect(f.U, x0/2, y0/2, x1/2, y1/2, o.chroma[0])
		fillRect(f.V, x0/2, y0/2, x1/2, y1/2, o.chroma[1])
	}

	// Sensor noise, entropy-scaled; zero-entropy clips stay noise-free.
	if g.noiseAmp > 0 {
		amp := uint64(2*g.noiseAmp + 1)
		pix := f.Y.Pix
		for j := 0; j < len(pix); j += 2 {
			n := g.noise.next()
			d0 := int(n%amp) - g.noiseAmp
			d1 := int((n>>32)%amp) - g.noiseAmp
			pix[j] = clampAdd(pix[j], d0)
			if j+1 < len(pix) {
				pix[j+1] = clampAdd(pix[j+1], d1)
			}
		}
	}

	// Chroma base: slow fields derived from position, plus objects drawn
	// above. Keep chroma cheap and smooth — codecs spend most effort on
	// luma and so do we.
	for y := 0; y < f.U.H; y++ {
		urow, vrow := f.U.Row(y), f.V.Row(y)
		for x := 0; x < f.U.W; x++ {
			if urow[x] == 0 {
				urow[x] = byte(112 + (x+panX)%32)
			}
			if vrow[x] == 0 {
				vrow[x] = byte(120 + (y+panY)%24)
			}
		}
	}
	return f, nil
}

func bounce(v, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	period := 2 * limit
	v = math.Mod(v, period)
	if v < 0 {
		v += period
	}
	if v > limit {
		v = period - v
	}
	return v
}

func clampAdd(p byte, d int) byte {
	v := int(p) + d
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func fillRect(p *Plane, x0, y0, x1, y1 int, v byte) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > p.W {
		x1 = p.W
	}
	if y1 > p.H {
		y1 = p.H
	}
	for y := y0; y < y1; y++ {
		row := p.Pix[y*p.Stride:]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}
