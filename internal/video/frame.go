// Package video provides YUV 4:2:0 frame types, a procedural clip
// generator parameterized by resolution, frame rate and entropy, and the
// vbench input catalog used throughout the paper's experiments.
//
// The paper uses the 15 five-second clips of vbench (Table 1). Those
// clips are proprietary media; this package substitutes a deterministic
// procedural generator whose output is controlled by the same three
// properties vbench documents for each clip — resolution, frame rate and
// entropy — so that encoder effort ordering across clips is preserved.
package video

import (
	"errors"
	"fmt"
)

// Plane is a single 8-bit sample plane (luma or chroma).
type Plane struct {
	W, H   int
	Stride int
	Pix    []byte
}

// NewPlane allocates a zeroed plane of the given dimensions.
func NewPlane(w, h int) *Plane {
	return &Plane{W: w, H: h, Stride: w, Pix: make([]byte, w*h)}
}

// At returns the sample at (x, y). It does not bounds-check; callers
// iterate within plane dimensions.
func (p *Plane) At(x, y int) byte { return p.Pix[y*p.Stride+x] }

// Set stores a sample at (x, y).
func (p *Plane) Set(x, y int, v byte) { p.Pix[y*p.Stride+x] = v }

// Row returns the pixel row at y as a slice of length W.
func (p *Plane) Row(y int) []byte { return p.Pix[y*p.Stride : y*p.Stride+p.W] }

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := &Plane{W: p.W, H: p.H, Stride: p.Stride, Pix: make([]byte, len(p.Pix))}
	copy(q.Pix, p.Pix)
	return q
}

// Block copies the w×h block at (x, y) into dst (row-major, stride w).
// Blocks that overhang the plane edge are padded by edge replication,
// matching codec reference-frame border extension.
func (p *Plane) Block(x, y, w, h int, dst []byte) {
	for j := 0; j < h; j++ {
		sy := y + j
		if sy < 0 {
			sy = 0
		} else if sy >= p.H {
			sy = p.H - 1
		}
		row := p.Pix[sy*p.Stride:]
		for i := 0; i < w; i++ {
			sx := x + i
			if sx < 0 {
				sx = 0
			} else if sx >= p.W {
				sx = p.W - 1
			}
			dst[j*w+i] = row[sx]
		}
	}
}

// Frame is a YUV 4:2:0 picture.
type Frame struct {
	Y, U, V *Plane
	// Index is the display order of the frame within its clip.
	Index int
}

// NewFrame allocates a YUV 4:2:0 frame. Width and height must be even.
func NewFrame(w, h int) (*Frame, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("video: invalid frame size %dx%d", w, h)
	}
	if w%2 != 0 || h%2 != 0 {
		return nil, fmt.Errorf("video: frame size %dx%d not even (4:2:0 requires even dimensions)", w, h)
	}
	return &Frame{
		Y: NewPlane(w, h),
		U: NewPlane(w/2, h/2),
		V: NewPlane(w/2, h/2),
	}, nil
}

// Width returns the luma width.
func (f *Frame) Width() int { return f.Y.W }

// Height returns the luma height.
func (f *Frame) Height() int { return f.Y.H }

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	return &Frame{Y: f.Y.Clone(), U: f.U.Clone(), V: f.V.Clone(), Index: f.Index}
}

// Clip is an in-memory video sequence plus its catalog metadata.
type Clip struct {
	Meta   ClipMeta
	Frames []*Frame
}

// ErrNoFrames is returned by operations that need at least one frame.
var ErrNoFrames = errors.New("video: clip has no frames")

// Validate checks structural consistency of the clip.
func (c *Clip) Validate() error {
	if len(c.Frames) == 0 {
		return ErrNoFrames
	}
	w, h := c.Frames[0].Width(), c.Frames[0].Height()
	for i, f := range c.Frames {
		if f.Width() != w || f.Height() != h {
			return fmt.Errorf("video: frame %d size %dx%d differs from %dx%d", i, f.Width(), f.Height(), w, h)
		}
	}
	return nil
}

// PixelsPerFrame returns the luma pixel count of one frame.
func (c *Clip) PixelsPerFrame() int {
	if len(c.Frames) == 0 {
		return 0
	}
	return c.Frames[0].Width() * c.Frames[0].Height()
}
