package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHammerStealVsPop floods a wide pool with many concurrent graphs
// of mixed costs so pops, steals and preempts all fire while claims
// race. Run under -race this is the steal-vs-pop contention tripwire;
// the assertions pin exactly-once execution and full completion.
func TestHammerStealVsPop(t *testing.T) {
	p := NewPool(Config{Workers: 8, Seed: 42})
	defer p.Close()
	const graphs = 24
	var wg sync.WaitGroup
	gs := make([]*testGraph, graphs)
	for i := 0; i < graphs; i++ {
		n := 16 + (i%5)*16
		deps := make([][]int, n)
		costs := make([]uint64, n)
		for j := range deps {
			if j > 0 && j%3 == 0 {
				deps[j] = []int{j - 1}
			}
			costs[j] = uint64(1 + (i*j)%97)
		}
		g := newTestGraph(deps, costs)
		g.run = func(context.Context, int, int) error {
			runtime.Gosched() // widen the race window
			return nil
		}
		gs[i] = g
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.RunGraph(context.Background(), g); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var total int
	for i, g := range gs {
		for task, c := range g.claims {
			if c != 1 {
				t.Fatalf("graph %d task %d claimed %d times", i, task, c)
			}
		}
		total += len(g.claims)
	}
	st := p.Stats()
	if st.Tasks < uint64(total) {
		t.Errorf("pool executed %d tasks, want >= %d", st.Tasks, total)
	}
}

// TestHammerCancelMidSteal races cancellation against stealing: many
// graphs are cancelled at random points mid-flight while a wide pool
// churns through them. The contract under test: RunGraph never returns
// while one of its tasks is executing, and no task starts afterwards —
// no orphaned shards.
func TestHammerCancelMidSteal(t *testing.T) {
	p := NewPool(Config{Workers: 8, Seed: 7})
	defer p.Close()
	const rounds = 32
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			n := 48
			g := newTestGraph(chain(n), nil)
			var inFlight, returned atomic.Int32
			g.run = func(ctx context.Context, task, _ int) error {
				inFlight.Add(1)
				defer inFlight.Add(-1)
				if returned.Load() != 0 {
					t.Error("task started after RunGraph returned")
				}
				if task == i%17 {
					cancel()
				}
				runtime.Gosched()
				return ctx.Err()
			}
			err := p.RunGraph(ctx, g)
			returned.Store(1)
			if f := inFlight.Load(); f != 0 {
				t.Errorf("RunGraph returned with %d tasks still executing", f)
			}
			if err == nil {
				t.Error("cancelled run returned nil error")
			} else if !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled", err)
			}
		}(i)
	}
	wg.Wait()
}

// TestHammerNestedForkJoinStorm nests fork-joins from every task of
// every outer graph, on pools of several widths including 1: the
// helper-loop path (the calling worker executing other runs' tasks
// while its fork drains) is the deadlock-prone one, so this is run
// with a watchdog.
func TestHammerNestedForkJoinStorm(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(Config{Workers: workers, Seed: uint64(workers)})
		done := make(chan struct{})
		go func() {
			defer close(done)
			var wg sync.WaitGroup
			for i := 0; i < 6; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					outer := newTestGraph(make([][]int, 4), nil)
					outer.run = func(ctx context.Context, task, worker int) error {
						inner := newTestGraph(chain(5), nil)
						return p.RunGraph(ctx, inner)
					}
					if err := p.RunGraph(context.Background(), outer); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: nested fork-join storm deadlocked", workers)
		}
		p.Close()
	}
}

// TestNoStarvationWhileWorkHangs is the starvation watchdog: one task
// blocks a worker indefinitely (until released) while independent work
// keeps arriving — the remaining workers must keep draining it. A
// worker idling while any deque holds ready tasks would time this out.
func TestNoStarvationWhileWorkHangs(t *testing.T) {
	p := NewPool(Config{Workers: 4, Seed: 9})
	defer p.Close()
	release := make(chan struct{})
	blocker := newTestGraph(make([][]int, 1), []uint64{1 << 40})
	blocker.run = func(context.Context, int, int) error {
		<-release
		return nil
	}
	blockerDone := make(chan error, 1)
	go func() { blockerDone <- p.RunGraph(context.Background(), blocker) }()

	// With one worker captured, 30 further graphs must still complete.
	deadline := time.After(30 * time.Second)
	for i := 0; i < 30; i++ {
		g := newTestGraph(make([][]int, 8), nil)
		done := make(chan error, 1)
		go func() { done <- p.RunGraph(context.Background(), g) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("independent work starved behind a blocked worker")
		}
	}
	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatal(err)
	}
}

// TestHammerGraphsAndSeedsAgree runs one moderately tangled graph many
// times across seeds and worker counts concurrently with itself; every
// instance must complete every task exactly once. This is the raced
// version of TestDeterminismAcrossWorkersAndSeeds.
func TestHammerGraphsAndSeedsAgree(t *testing.T) {
	var wg sync.WaitGroup
	for _, workers := range []int{2, 4} {
		for seed := uint64(1); seed <= 4; seed++ {
			wg.Add(1)
			go func(workers int, seed uint64) {
				defer wg.Done()
				p := NewPool(Config{Workers: workers, Seed: seed})
				defer p.Close()
				n := 60
				deps := make([][]int, n)
				for j := 2; j < n; j++ {
					deps[j] = []int{j - 2}
				}
				g := newTestGraph(deps, nil)
				if err := p.RunGraph(context.Background(), g); err != nil {
					t.Error(err)
					return
				}
				for task, c := range g.claims {
					if c != 1 {
						t.Errorf("workers=%d seed=%d: task %d claimed %d times", workers, seed, task, c)
					}
				}
			}(workers, seed)
		}
	}
	wg.Wait()
}
