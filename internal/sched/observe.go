package sched

import "vcprof/internal/obs"

// Process-wide scheduling counters, aggregated across every pool. All
// volatile: which worker pops versus steals, how often one parks, and
// how many tasks even run (cancellation skips the rest of a graph) are
// decided by the scheduler and the host, so none of it may appear in a
// byte-compared export. Per-pool snapshots come from Pool.Stats.
var (
	obsTasks    = obs.NewVolatileCounter("sched.tasks")
	obsGraphs   = obs.NewVolatileCounter("sched.graphs")
	obsPops     = obs.NewVolatileCounter("sched.pops")
	obsSteals   = obs.NewVolatileCounter("sched.steals")
	obsPreempts = obs.NewVolatileCounter("sched.preempts")
	obsParks    = obs.NewVolatileCounter("sched.parks")
)
