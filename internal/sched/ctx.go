package sched

import "context"

// Context plumbing. Two things travel on the context:
//
//   - the pool itself (WithPool / PoolFrom), so layers that cannot
//     import each other — the engine, the cell memo, the encoders'
//     executor hook — agree on one scheduler per request; and
//   - the identity of the pool worker running the current task, set by
//     the pool around every Run call, which is how a nested RunGraph
//     recognizes fork-join nesting and keeps its worker executing
//     instead of blocking a pool slot.

type poolKey struct{}

type workerKey struct{}

type workerRef struct {
	p *Pool
	w int
}

// WithPool attaches a pool to ctx; work started under the returned
// context (cells, encodes) schedules its shards on it.
func WithPool(ctx context.Context, p *Pool) context.Context {
	return context.WithValue(ctx, poolKey{}, p)
}

// PoolFrom returns the pool governing ctx: the innermost pool a task
// is running on, or one attached with WithPool, or nil.
func PoolFrom(ctx context.Context) *Pool {
	if ref, ok := ctx.Value(workerKey{}).(workerRef); ok {
		return ref.p
	}
	if p, ok := ctx.Value(poolKey{}).(*Pool); ok {
		return p
	}
	return nil
}

// withWorker marks ctx as running on pool p's worker w.
func withWorker(ctx context.Context, p *Pool, w int) context.Context {
	return context.WithValue(ctx, workerKey{}, workerRef{p: p, w: w})
}

// workerFrom reports whether ctx is executing on one of p's workers.
func workerFrom(ctx context.Context, p *Pool) (int, bool) {
	ref, ok := ctx.Value(workerKey{}).(workerRef)
	if !ok || ref.p != p {
		return 0, false
	}
	return ref.w, true
}
