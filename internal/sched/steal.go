package sched

// The deques and the claim policy. Every ready task is indexed twice:
// once on the deque of the worker that readied it (locality) and once
// on its run's ready stack (the shortest-remaining-first claim path).
// Claiming flips the task's state under the pool mutex; the other
// structure's entry goes stale and is skipped when encountered, so
// no task can be taken twice and none can be lost.

// taskRef names one task of one run.
type taskRef struct {
	r    *run
	task int32
}

// deque is one worker's work queue: push and pop at the tail (LIFO,
// cache-warm continuations first), steal from the head (FIFO, the
// oldest — typically largest — subtree). head is an index so steals
// are O(1) without shifting.
type deque struct {
	items []taskRef
	head  int
}

func (d *deque) push(rf taskRef) {
	d.items = append(d.items, rf)
}

// peekTail returns the newest live entry without removing it, pruning
// stale (already claimed) tail entries. Caller holds the pool mutex.
func (d *deque) peekTail() (taskRef, bool) {
	for len(d.items) > d.head {
		rf := d.items[len(d.items)-1]
		if rf.r.state[rf.task] == taskReady {
			return rf, true
		}
		d.items = d.items[:len(d.items)-1]
	}
	d.reset()
	return taskRef{}, false
}

func (d *deque) popTail() (taskRef, bool) {
	rf, ok := d.peekTail()
	if ok {
		d.items = d.items[:len(d.items)-1]
	}
	return rf, ok
}

// stealHead removes the oldest live entry. Caller holds the pool mutex.
func (d *deque) stealHead() (taskRef, bool) {
	for len(d.items) > d.head {
		rf := d.items[d.head]
		d.head++
		if rf.r.state[rf.task] == taskReady {
			return rf, true
		}
	}
	d.reset()
	return taskRef{}, false
}

func (d *deque) reset() {
	d.items = d.items[:0]
	d.head = 0
}

// takeKind classifies how a task was claimed, for the steal counters.
type takeKind uint8

const (
	takeNone  takeKind = iota
	takePop            // own deque, tail
	takeSteal          // another worker's deque entry
	takePreempt
)

// enqueueLocked publishes a newly ready task on worker home's deque
// and its run's ready stack. Caller holds the pool mutex and
// broadcasts afterwards.
func (p *Pool) enqueueLocked(r *run, t int32, home int) {
	r.state[t] = taskReady
	r.home[t] = int32(home)
	r.ready = append(r.ready, t)
	p.deques[home].push(taskRef{r: r, task: t})
}

// lightestLocked returns the active run with the least remaining work
// among those with a claimable task, breaking exact ties with the
// worker's seeded PRNG — the knob that makes distinct steal seeds
// explore distinct interleavings. Caller holds the pool mutex.
func (p *Pool) lightestLocked(rng *splitmix) *run {
	var best *run
	for _, r := range p.runs {
		if !r.hasReady() {
			continue
		}
		switch {
		case best == nil || r.remaining < best.remaining:
			best = r
		case r.remaining == best.remaining && rng.next()&1 == 0:
			best = r
		}
	}
	return best
}

// takeLocked claims one task for worker w, or returns a zero ref when
// nothing is claimable. Policy: find the lightest run (shortest
// expected remaining work); pop the own deque's tail when its top task
// belongs to that run (the locality fast path); otherwise take the
// lightest run's most recently readied task — a steal out of whichever
// victim deque holds it, and a preemption when own work was deferred
// for it. Caller holds the pool mutex.
func (p *Pool) takeLocked(w int, rng *splitmix) (taskRef, takeKind) {
	rm := p.lightestLocked(rng)
	if rm == nil {
		return taskRef{}, takeNone
	}
	own, ownOK := p.deques[w].peekTail()
	if ownOK && own.r == rm {
		rf, _ := p.deques[w].popTail()
		p.claimLocked(rf)
		return rf, takePop
	}
	t, ok := rm.takeReady()
	if !ok {
		// hasReady held under the same lock; unreachable, but fail safe.
		return taskRef{}, takeNone
	}
	rf := taskRef{r: rm, task: t}
	p.claimLocked(rf)
	switch {
	case rm.home[t] == int32(w):
		return rf, takePop
	case ownOK:
		return rf, takePreempt
	default:
		return rf, takeSteal
	}
}

// claimLocked transitions a ready task to running.
func (p *Pool) claimLocked(rf taskRef) {
	rf.r.state[rf.task] = taskRunning
	rf.r.running++
}
