// Package sched is the work-stealing shard scheduler: a pool of
// standing workers with per-worker deques that executes task graphs
// below the cell boundary. The harness engine submits whole cell grids
// as graphs; a counted encode running inside a pool worker hands its
// frame/slice task graph to the same pool (nested fork-join), so one
// heavy cell no longer monopolizes a worker while cheap work queues
// behind it — the scheduler interleaves shards of every active graph.
//
// Scheduling policy. Ready tasks live in two structures at once: the
// deque of the worker that made them ready (LIFO pop for locality) and
// their graph run's ready stack. A worker prefers its own deque as
// long as its top task belongs to the lightest active run — the run
// with the least expected remaining work; otherwise it takes from the
// lightest run directly, stealing the task out of the victim worker's
// deque (the victim's entry goes stale and is skipped). That is
// shortest-expected-remaining-work-first at shard granularity: light
// graphs effectively preempt heavy ones at every task boundary, which
// is what kills the tail on oversubscribed hosts. Ties between runs
// are broken by a per-worker seeded PRNG, so distinct seeds explore
// distinct interleavings — the schedule-invariance tests run several.
//
// Determinism. The pool decides only *when and where* a task runs,
// never *what it computes*: graphs encode every true dependence, each
// task is claimed exactly once (all transitions happen under the pool
// mutex), and results are assembled by task index. Tables, traces and
// digests are therefore byte-identical at any worker count, under any
// steal interleaving and any seed — the property the harness test
// wall pins against golden files.
//
// All queue state sits under one pool mutex. At shard granularity
// (tasks are superblock rows, segments, tiles — hundreds of
// microseconds to milliseconds of modeled work) the lock is
// effectively uncontended; the tail-latency win comes from the
// scheduling structure, not from lock-freedom.
package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by RunGraph on a pool that has been closed.
var ErrClosed = errors.New("sched: pool closed")

// Config sizes a Pool.
type Config struct {
	// Workers is the number of standing worker goroutines (<=0 means 1).
	Workers int
	// Seed seeds the per-worker victim-selection PRNGs (0 means 1).
	// Any seed yields byte-identical graph results; the knob exists so
	// the invariance is testable.
	Seed uint64
	// Observer, when non-nil, receives one event per executed task,
	// after the task body returns and outside the pool lock. For
	// per-shard trace spans; must be safe for concurrent use.
	Observer func(TaskEvent)
}

// TaskEvent describes one executed task for observation.
type TaskEvent struct {
	Worker int    // worker that ran the task
	Label  string // graph's task label
	Cost   uint64 // graph's cost estimate for the task
	Stolen bool   // claimed from another worker's deque
}

// Graph is a task DAG the pool can execute. Tasks are numbered 0..n-1
// in a topological order: every dependency index is smaller than the
// task's own index (the builders' insertion order satisfies this).
// Run is called exactly once per task, after all its dependencies
// completed successfully, with the claiming worker's id in [0,
// Workers()); distinct tasks may run concurrently on distinct workers.
type Graph interface {
	NumTasks() int
	Deps(i int) []int
	// Cost estimates the task's relative work in arbitrary units (0 is
	// treated as 1). Costs steer the shortest-remaining-first policy
	// and never affect results.
	Cost(i int) uint64
	Label(i int) string
	Run(ctx context.Context, task, worker int) error
}

// Pool is the work-stealing worker pool. Safe for concurrent use.
type Pool struct {
	workers  int
	seed     uint64
	observer func(TaskEvent)

	mu     sync.Mutex
	cond   *sync.Cond
	deques []deque
	runs   []*run
	runSeq uint64
	closed bool
	wg     sync.WaitGroup

	stats poolStats
}

// poolStats are the pool's volatile scheduling counters (atomics so
// Stats needs no lock; mirrored into the process-wide obs counters).
type poolStats struct {
	tasks    atomic.Uint64
	graphs   atomic.Uint64
	pops     atomic.Uint64
	steals   atomic.Uint64
	preempts atomic.Uint64
	parks    atomic.Uint64
}

// Stats is a point-in-time snapshot of a pool's scheduling counters.
type Stats struct {
	Workers  int
	Tasks    uint64 // tasks executed (skipped-after-cancel included)
	Graphs   uint64 // graphs completed
	Pops     uint64 // tasks taken from the worker's own deque
	Steals   uint64 // tasks taken out of another worker's deque
	Preempts uint64 // own work deferred for a lighter run's task
	Parks    uint64 // times a worker went idle
	Active   int    // graphs currently running
	Queued   int    // ready, unclaimed tasks
}

// NewPool starts a pool with cfg.Workers standing workers.
func NewPool(cfg Config) *Pool {
	n := cfg.Workers
	if n < 1 {
		n = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Pool{workers: n, seed: seed, observer: cfg.Observer, deques: make([]deque, n)}
	//lint:ignore lockheld constructor: p is not shared until NewPool returns
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < n; w++ {
		p.wg.Add(1)
		go p.workerLoop(w)
	}
	return p
}

// Workers reports the pool's worker count; task Run worker arguments
// are always in [0, Workers()).
func (p *Pool) Workers() int { return p.workers }

// Stats snapshots the scheduling counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Workers:  p.workers,
		Tasks:    p.stats.tasks.Load(),
		Graphs:   p.stats.graphs.Load(),
		Pops:     p.stats.pops.Load(),
		Steals:   p.stats.steals.Load(),
		Preempts: p.stats.preempts.Load(),
		Parks:    p.stats.parks.Load(),
	}
	p.mu.Lock()
	s.Active = len(p.runs)
	for _, r := range p.runs {
		s.Queued += r.readyLen()
	}
	p.mu.Unlock()
	return s
}

// Close stops the standing workers after all active graphs drain and
// waits for them to exit. RunGraph calls that raced with Close still
// complete; calls after Close fail with ErrClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// workerLoop is one standing worker: take, execute, repeat; park when
// nothing is claimable; exit once the pool is closed and drained.
func (p *Pool) workerLoop(w int) {
	defer p.wg.Done()
	rng := splitmix{state: p.seed ^ (uint64(w)+1)*0x9E3779B97F4A7C15}
	p.mu.Lock()
	for {
		if rf, kind := p.takeLocked(w, &rng); rf.r != nil {
			p.mu.Unlock()
			p.execute(rf, w, kind)
			p.mu.Lock()
			continue
		}
		if p.closed && len(p.runs) == 0 {
			break
		}
		p.stats.parks.Add(1)
		obsParks.Add(1)
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// execute runs one claimed task and completes it. Called without the
// pool lock.
func (p *Pool) execute(rf taskRef, w int, kind takeKind) {
	r := rf.r
	t := int(rf.task)
	err := r.ctx.Err()
	if err == nil {
		err = r.g.Run(withWorker(r.ctx, p, w), t, w)
	}
	p.stats.tasks.Add(1)
	obsTasks.Add(1)
	switch kind {
	case takePop:
		p.stats.pops.Add(1)
		obsPops.Add(1)
	case takeSteal:
		p.stats.steals.Add(1)
		obsSteals.Add(1)
	case takePreempt:
		p.stats.steals.Add(1)
		p.stats.preempts.Add(1)
		obsSteals.Add(1)
		obsPreempts.Add(1)
	}
	if p.observer != nil {
		p.observer(TaskEvent{Worker: w, Label: r.g.Label(t), Cost: r.cost(t), Stolen: kind != takePop})
	}
	p.complete(r, t, w, err)
}

// RunGraph executes g to completion and returns the first task error,
// or ctx's error if the run was cancelled. Calls block until every
// started task has settled — no task of g runs after RunGraph returns.
// When called from inside a pool task (fork-join nesting), the calling
// worker keeps executing tasks — of this graph or any other — while it
// waits, so nesting cannot deadlock the pool.
func (p *Pool) RunGraph(ctx context.Context, g Graph) error {
	n := g.NumTasks()
	if n == 0 {
		return ctx.Err()
	}
	r, err := newRun(ctx, g)
	if err != nil {
		return err
	}
	defer r.cancel()
	nestedW, nested := workerFrom(ctx, p)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.runSeq++
	r.seq = p.runSeq
	p.runs = append(p.runs, r)
	home := 0
	if nested {
		home = nestedW
	}
	for i := 0; i < n; i++ {
		if r.indeg[i] == 0 {
			p.enqueueLocked(r, int32(i), home)
			if !nested {
				home = (home + 1) % p.workers // round-robin initial spread
			}
		}
	}
	p.cond.Broadcast()
	if nested {
		// Helper loop: keep the worker productive while its fork is in
		// flight. It may execute tasks of any run; recursion depth is
		// bounded by the number of active runs.
		rng := splitmix{state: p.seed ^ (uint64(nestedW)+1)*0xBF58476D1CE4E5B9 ^ r.seq}
		for !r.finished {
			if rf, kind := p.takeLocked(nestedW, &rng); rf.r != nil {
				p.mu.Unlock()
				p.execute(rf, nestedW, kind)
				p.mu.Lock()
				continue
			}
			p.stats.parks.Add(1)
			obsParks.Add(1)
			p.cond.Wait()
		}
		p.mu.Unlock()
	} else {
		p.mu.Unlock()
		<-r.doneCh
	}
	if r.firstErr != nil {
		return r.firstErr
	}
	return ctx.Err()
}

// complete finishes one executed (or skipped) task: record the error,
// release dependents onto the completing worker's deque, and close the
// run when its last task settles.
func (p *Pool) complete(r *run, t, w int, err error) {
	p.mu.Lock()
	r.state[t] = taskDone
	r.running--
	r.done++
	if c := r.cost(t); c <= r.remaining {
		r.remaining -= c
	} else {
		r.remaining = 0
	}
	// The error is kept verbatim — graphs label their own failures —
	// and cancels the run so remaining tasks drain as skips.
	if err != nil && r.firstErr == nil {
		r.firstErr = err
		r.cancel()
	}
	for _, dep := range r.dependents[t] {
		r.indeg[dep]--
		if r.indeg[dep] == 0 {
			p.enqueueLocked(r, dep, w)
		}
	}
	if r.done == r.n && r.running == 0 {
		r.finished = true
		for i, cand := range p.runs {
			if cand == r {
				p.runs = append(p.runs[:i], p.runs[i+1:]...)
				break
			}
		}
		p.stats.graphs.Add(1)
		obsGraphs.Add(1)
		close(r.doneCh)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// splitmix is splitmix64, the repo's standard tiny deterministic PRNG.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
