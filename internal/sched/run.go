package sched

import (
	"context"
	"fmt"
)

// Task claim states. All transitions happen under the pool mutex, so
// every task is claimed and completed exactly once.
const (
	taskBlocked uint8 = iota // dependencies outstanding
	taskReady                // queued (on a deque and its run's ready stack)
	taskRunning              // claimed by a worker
	taskDone                 // executed or skipped after cancellation
)

// run is the pool-side bookkeeping for one RunGraph call.
type run struct {
	g      Graph
	ctx    context.Context
	cancel context.CancelFunc
	seq    uint64

	n          int
	state      []uint8
	indeg      []int32
	dependents [][]int32
	home       []int32 // worker whose deque holds the task's ready entry
	ready      []int32 // ready stack (LIFO), lazily pruned of claimed entries

	remaining uint64 // cost of tasks not yet done
	running   int
	done      int
	firstErr  error
	finished  bool
	doneCh    chan struct{}
}

// newRun validates the graph's topological numbering and builds the
// dependence bookkeeping.
func newRun(ctx context.Context, g Graph) (*run, error) {
	n := g.NumTasks()
	rctx, cancel := context.WithCancel(ctx)
	r := &run{
		g: g, ctx: rctx, cancel: cancel, n: n,
		state:      make([]uint8, n),
		indeg:      make([]int32, n),
		dependents: make([][]int32, n),
		home:       make([]int32, n),
		doneCh:     make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		deps := g.Deps(i)
		for _, d := range deps {
			if d < 0 || d >= i {
				cancel()
				return nil, fmt.Errorf("sched: task %d (%s) depends on task %d: graphs must be topologically numbered", i, g.Label(i), d)
			}
			r.dependents[d] = append(r.dependents[d], int32(i))
		}
		r.indeg[i] = int32(len(deps))
		r.remaining += r.cost(i)
	}
	return r, nil
}

// cost returns the task's cost estimate, clamped to at least 1 so
// remaining-work comparisons always make progress.
func (r *run) cost(t int) uint64 {
	if c := r.g.Cost(t); c > 0 {
		return c
	}
	return 1
}

// takeReady pops the run's most recently readied task, pruning entries
// already claimed through a deque. Caller holds the pool mutex.
func (r *run) takeReady() (int32, bool) {
	for len(r.ready) > 0 {
		t := r.ready[len(r.ready)-1]
		r.ready = r.ready[:len(r.ready)-1]
		if r.state[t] == taskReady {
			return t, true
		}
	}
	return 0, false
}

// hasReady reports whether any unclaimed ready task remains, pruning
// stale stack entries as a side effect. Caller holds the pool mutex.
func (r *run) hasReady() bool {
	for len(r.ready) > 0 {
		if r.state[r.ready[len(r.ready)-1]] == taskReady {
			return true
		}
		r.ready = r.ready[:len(r.ready)-1]
	}
	return false
}

// readyLen counts unclaimed ready tasks. Caller holds the pool mutex.
func (r *run) readyLen() int {
	n := 0
	for _, t := range r.ready {
		if r.state[t] == taskReady {
			n++
		}
	}
	return n
}
