package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// testGraph is a programmable task DAG for the scheduler tests: deps
// and costs are declared up front, execution appends to a shared log
// under its own lock, and per-task hooks can block, fail, or fork
// nested graphs.
type testGraph struct {
	deps  [][]int
	costs []uint64
	run   func(ctx context.Context, task, worker int) error

	mu     sync.Mutex
	order  []int
	claims []int32
}

func newTestGraph(deps [][]int, costs []uint64) *testGraph {
	return &testGraph{deps: deps, costs: costs, claims: make([]int32, len(deps))}
}

func (g *testGraph) NumTasks() int      { return len(g.deps) }
func (g *testGraph) Deps(i int) []int   { return g.deps[i] }
func (g *testGraph) Label(i int) string { return fmt.Sprintf("t%d", i) }
func (g *testGraph) Cost(i int) uint64 {
	if g.costs == nil {
		return 1
	}
	return g.costs[i]
}

func (g *testGraph) Run(ctx context.Context, task, worker int) error {
	atomic.AddInt32(&g.claims[task], 1)
	g.mu.Lock()
	g.order = append(g.order, task)
	g.mu.Unlock()
	if g.run != nil {
		return g.run(ctx, task, worker)
	}
	return nil
}

// chain is 0 → 1 → ... → n-1.
func chain(n int) [][]int {
	deps := make([][]int, n)
	for i := 1; i < n; i++ {
		deps[i] = []int{i - 1}
	}
	return deps
}

func TestRunGraphRespectsDependencies(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(Config{Workers: workers})
		// Diamond fan: 0 → {1,2,3} → 4.
		g := newTestGraph([][]int{nil, {0}, {0}, {0}, {1, 2, 3}}, nil)
		if err := p.RunGraph(context.Background(), g); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		p.Close()
		pos := make([]int, len(g.deps))
		for i, task := range g.order {
			pos[task] = i
		}
		for task, deps := range g.deps {
			for _, d := range deps {
				if pos[d] > pos[task] {
					t.Errorf("workers=%d: task %d ran before its dependency %d (order %v)", workers, task, d, g.order)
				}
			}
		}
	}
}

func TestRunGraphClaimsExactlyOnce(t *testing.T) {
	p := NewPool(Config{Workers: 8})
	defer p.Close()
	// Wide independent fan to maximize claim contention.
	g := newTestGraph(make([][]int, 200), nil)
	if err := p.RunGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	for i, c := range g.claims {
		if c != 1 {
			t.Errorf("task %d claimed %d times, want exactly 1", i, c)
		}
	}
}

func TestRunGraphErrorVerbatimAndCancels(t *testing.T) {
	p := NewPool(Config{Workers: 4})
	defer p.Close()
	boom := errors.New("task 3 exploded")
	g := newTestGraph(chain(10), nil)
	g.run = func(_ context.Context, task, _ int) error {
		if task == 3 {
			return boom
		}
		return nil
	}
	err := p.RunGraph(context.Background(), g)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
	if err.Error() != boom.Error() {
		t.Errorf("error was wrapped: %q, want verbatim %q", err, boom)
	}
	// The chain cancels at the failure: 4..9 never ran.
	for task := 4; task < 10; task++ {
		if g.claims[task] != 0 {
			t.Errorf("task %d ran after task 3 failed", task)
		}
	}
}

func TestRunGraphContextCancel(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	g := newTestGraph(chain(50), nil)
	g.run = func(_ context.Context, task, _ int) error {
		if task == 5 {
			cancel()
		}
		return nil
	}
	if err := p.RunGraph(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// No task may start after RunGraph returned (the no-orphaned-shards
	// contract); the run drains its remaining tasks as skips.
	got := atomic.LoadInt32(&g.claims[49])
	if got != 0 {
		t.Errorf("tail task ran despite cancellation")
	}
}

func TestRunGraphPreCancelled(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := newTestGraph(chain(4), nil)
	if err := p.RunGraph(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, c := range g.claims {
		if c != 0 {
			t.Errorf("task %d ran under a pre-cancelled context", i)
		}
	}
}

func TestRunGraphEmptyAndBadNumbering(t *testing.T) {
	p := NewPool(Config{Workers: 2})
	defer p.Close()
	if err := p.RunGraph(context.Background(), newTestGraph(nil, nil)); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	// A forward dependency violates topological numbering.
	bad := newTestGraph([][]int{{1}, nil}, nil)
	if err := p.RunGraph(context.Background(), bad); err == nil {
		t.Error("forward-dependency graph was accepted")
	}
	selfish := newTestGraph([][]int{nil, {1}}, nil)
	if err := p.RunGraph(context.Background(), selfish); err == nil {
		t.Error("self-dependency graph was accepted")
	}
}

func TestRunGraphAfterClose(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	p.Close()
	if err := p.RunGraph(context.Background(), newTestGraph(chain(2), nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestNestedForkJoin pins the fork-join contract: a task may submit a
// child graph to its own pool and block on it without deadlocking,
// even on a 1-worker pool (the calling worker executes the child's
// tasks itself).
func TestNestedForkJoin(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(Config{Workers: workers})
		var nestedRan atomic.Int32
		outer := newTestGraph(make([][]int, 3), nil)
		outer.run = func(ctx context.Context, task, worker int) error {
			inner := newTestGraph(chain(4), nil)
			inner.run = func(context.Context, int, int) error {
				nestedRan.Add(1)
				return nil
			}
			return p.RunGraph(ctx, inner)
		}
		if err := p.RunGraph(context.Background(), outer); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		p.Close()
		if got := nestedRan.Load(); got != 12 {
			t.Errorf("workers=%d: %d nested tasks ran, want 12", workers, got)
		}
	}
}

// TestDeterminismAcrossWorkersAndSeeds is the scheduler-level half of
// the schedule-invariance wall: the observable result of a run — here
// the multiset of executed tasks and each task's claim count — is
// identical for every worker count and steal seed. (Byte-identity of
// real outputs is pinned end to end in harness and service tests.)
func TestDeterminismAcrossWorkersAndSeeds(t *testing.T) {
	deps := [][]int{nil, nil, {0}, {1}, {2, 3}, nil, {5}, {4, 6}}
	costs := []uint64{5, 1, 9, 2, 4, 30, 1, 2}
	for _, workers := range []int{1, 2, 8} {
		for _, seed := range []uint64{1, 7, 0xDEAD} {
			p := NewPool(Config{Workers: workers, Seed: seed})
			g := newTestGraph(deps, costs)
			if err := p.RunGraph(context.Background(), g); err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			p.Close()
			if len(g.order) != len(deps) {
				t.Fatalf("workers=%d seed=%d: %d tasks ran, want %d", workers, seed, len(g.order), len(deps))
			}
			for i, c := range g.claims {
				if c != 1 {
					t.Errorf("workers=%d seed=%d: task %d claimed %d times", workers, seed, i, c)
				}
			}
		}
	}
}

// TestSRPTPrefersLighterRun pins the policy that kills the tail: with
// a heavy graph in flight on a 1-worker pool, a newly submitted light
// graph's tasks run before the heavy graph's queued remainder.
func TestSRPTPrefersLighterRun(t *testing.T) {
	p := NewPool(Config{Workers: 1})
	defer p.Close()

	heavyGate := make(chan struct{})
	lightDone := make(chan struct{})
	submitted := make(chan struct{})
	var order []string
	var mu sync.Mutex
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}

	heavy := newTestGraph(chain(4), []uint64{1000, 1000, 1000, 1000})
	heavy.run = func(ctx context.Context, task, _ int) error {
		record(fmt.Sprintf("heavy%d", task))
		if task == 0 {
			// Park inside the first heavy task until the light graph is
			// registered — when the worker resumes it must pick the light
			// run's tasks ahead of the heavy chain's remainder.
			close(submitted)
			<-heavyGate
		}
		return nil
	}
	light := newTestGraph(chain(2), []uint64{1, 1})
	light.run = func(context.Context, int, int) error {
		record("light")
		return nil
	}

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		errs <- p.RunGraph(context.Background(), heavy)
	}()
	go func() {
		defer wg.Done()
		<-submitted
		go func() {
			// Unblock the heavy task once the light graph is registered.
			<-lightStarted(p)
			close(heavyGate)
		}()
		errs <- p.RunGraph(context.Background(), light)
		close(lightDone)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// heavy0 runs first (it was alone); then both light tasks must
	// precede heavy1..heavy3.
	pos := map[string]int{}
	for i, s := range order {
		if _, ok := pos[s]; !ok {
			pos[s] = i
		}
	}
	if !(pos["light"] < pos["heavy1"]) {
		t.Errorf("light tasks did not preempt the heavy chain: order %v", order)
	}
}

// lightStarted returns a channel closed once the pool sees 2 active
// runs (the heavy run plus the light one).
func lightStarted(p *Pool) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		for {
			if p.Stats().Active >= 2 {
				close(ch)
				return
			}
			runtime.Gosched()
		}
	}()
	return ch
}

func TestStatsAccounting(t *testing.T) {
	p := NewPool(Config{Workers: 4, Seed: 3})
	g := newTestGraph(make([][]int, 64), nil)
	if err := p.RunGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	p.Close()
	if st.Tasks != 64 {
		t.Errorf("Tasks = %d, want 64", st.Tasks)
	}
	if st.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1", st.Graphs)
	}
	if st.Pops+st.Steals != st.Tasks {
		t.Errorf("Pops(%d)+Steals(%d) != Tasks(%d)", st.Pops, st.Steals, st.Tasks)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Errorf("drained pool reports Active=%d Queued=%d", st.Active, st.Queued)
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
}

func TestObserverSeesEveryTask(t *testing.T) {
	var mu sync.Mutex
	var events []TaskEvent
	p := NewPool(Config{Workers: 2, Observer: func(ev TaskEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	g := newTestGraph(chain(6), []uint64{1, 2, 3, 4, 5, 6})
	if err := p.RunGraph(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	p.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 6 {
		t.Fatalf("observer saw %d events, want 6", len(events))
	}
	seen := map[string]uint64{}
	for _, ev := range events {
		seen[ev.Label] = ev.Cost
		if ev.Worker < 0 || ev.Worker >= 2 {
			t.Errorf("event worker %d out of range", ev.Worker)
		}
	}
	if seen["t3"] != 4 {
		t.Errorf("t3 cost = %d, want 4", seen["t3"])
	}
}
