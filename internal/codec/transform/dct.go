// Package transform implements the block transforms of the encoder
// toolkit: an orthonormal separable DCT-II (sizes 4–32) used for coding,
// and an integer Walsh–Hadamard transform used for SATD during mode
// decision, mirroring how production encoders split cheap
// mode-decision metrics from the full coding transform.
package transform

import (
	"fmt"
	"math"
	"sync"

	"vcprof/internal/trace"
)

// dctTables caches orthonormal DCT-II matrices per size.
var dctTables sync.Map // int -> *dctTable

type dctTable struct {
	n  int
	m  []float64 // row-major N×N forward matrix
	mt []float64 // transpose
}

func tableFor(n int) *dctTable {
	if t, ok := dctTables.Load(n); ok {
		return t.(*dctTable)
	}
	t := &dctTable{n: n, m: make([]float64, n*n), mt: make([]float64, n*n)}
	for k := 0; k < n; k++ {
		c := math.Sqrt(2 / float64(n))
		if k == 0 {
			c = math.Sqrt(1 / float64(n))
		}
		for x := 0; x < n; x++ {
			v := c * math.Cos(math.Pi*float64(2*x+1)*float64(k)/float64(2*n))
			t.m[k*n+x] = v
			t.mt[x*n+k] = v
		}
	}
	actual, _ := dctTables.LoadOrStore(n, t)
	return actual.(*dctTable)
}

// Per-size transform specializations (dct4, dct8, dct16, dct32), each a
// distinct static code region like production SIMD transform sets.
var (
	pcFwdRow = trace.Sites("transform.Forward/rowpass", 4)
	pcFwdCol = trace.Sites("transform.Forward/colpass", 4)
	pcInvRow = trace.Sites("transform.Inverse/rowpass", 4)
	pcInvCol = trace.Sites("transform.Inverse/colpass", 4)
)

func sizeIdx(n int) int {
	switch n {
	case 4:
		return 0
	case 8:
		return 1
	case 16:
		return 2
	}
	return 3
}

func validSize(n int) error {
	switch n {
	case 4, 8, 16, 32:
		return nil
	}
	return fmt.Errorf("transform: unsupported size %d", n)
}

// Forward applies the N×N orthonormal DCT-II to the residual block src
// (row-major) and writes rounded coefficients to dst. src and dst must
// hold n*n values and may alias.
func Forward(tc *trace.Ctx, src []int32, n int, dst []int32) error {
	defer tc.EndStage(tc.BeginStage(trace.StageTransform))
	if err := validSize(n); err != nil {
		return err
	}
	t := tableFor(n)
	tmp := make([]float64, n*n)
	// Row pass: tmp = src · Mᵀ.
	for r := 0; r < n; r++ {
		for k := 0; k < n; k++ {
			var acc float64
			row := t.m[k*n:]
			for x := 0; x < n; x++ {
				acc += float64(src[r*n+x]) * row[x]
			}
			tmp[r*n+k] = acc
		}
	}
	reportPass(tc, pcFwdRow[sizeIdx(n)], n)
	// Column pass: dst = M · tmp.
	for c := 0; c < n; c++ {
		for k := 0; k < n; k++ {
			var acc float64
			for y := 0; y < n; y++ {
				acc += t.m[k*n+y] * tmp[y*n+c]
			}
			dst[k*n+c] = int32(math.Round(acc))
		}
	}
	reportPass(tc, pcFwdCol[sizeIdx(n)], n)
	return nil
}

// Inverse applies the inverse transform of Forward. src and dst must
// hold n*n values and may alias.
func Inverse(tc *trace.Ctx, src []int32, n int, dst []int32) error {
	defer tc.EndStage(tc.BeginStage(trace.StageTransform))
	if err := validSize(n); err != nil {
		return err
	}
	t := tableFor(n)
	tmp := make([]float64, n*n)
	// Column pass: tmp = Mᵀ · src.
	for c := 0; c < n; c++ {
		for y := 0; y < n; y++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += t.mt[y*n+k] * float64(src[k*n+c])
			}
			tmp[y*n+c] = acc
		}
	}
	reportPass(tc, pcInvCol[sizeIdx(n)], n)
	// Row pass: dst = tmp · M.
	for r := 0; r < n; r++ {
		for x := 0; x < n; x++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += tmp[r*n+k] * t.mt[x*n+k]
			}
			dst[r*n+x] = int32(math.Round(acc))
		}
	}
	reportPass(tc, pcInvRow[sizeIdx(n)], n)
	return nil
}

// reportPass reports one separable transform pass. Production
// transforms are butterfly-factored (n·log2(n) multiply-adds per line,
// not n²), vectorized 8-wide for sizes ≥ 16 and SSE-width for the small
// sizes, and they stream the tile through registers: one 8-byte load and
// store per 8 coefficients, per-row pointer arithmetic, and a loop
// branch per unrolled group of rows.
func reportPass(tc *trace.Ctx, pc trace.PC, n int) {
	if tc == nil {
		return
	}
	log2n := 2
	for v := 4; v < n; v <<= 1 {
		log2n++
	}
	macs := n * n * log2n / 8
	if macs < 1 {
		macs = 1
	}
	class := trace.OpAVX
	if n <= 4 {
		class = trace.OpSSE
	}
	tc.Op(class, macs)
	tc.Loads(pc, trace.ScratchBase+0x2000, n*n/8+1, 8, 8)
	tc.Stores(pc, trace.ScratchBase+0x2800, n*n/8+1, 8, 8)
	tc.Op(trace.OpOther, n+log2n)
	tc.Loop(pc, (n+3)/4)
}
