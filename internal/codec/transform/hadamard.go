package transform

import (
	"fmt"

	"vcprof/internal/trace"
)

var (
	pcSATDLoop = trace.Site("transform.SATD/blockloop")
	fnSATD     = trace.Func("transform.SATD")
)

// hadamard4 applies an in-place 4-point Walsh–Hadamard butterfly to
// v[0..3] with the given stride.
func hadamard4(v []int32, i0, stride int) {
	a := v[i0]
	b := v[i0+stride]
	c := v[i0+2*stride]
	d := v[i0+3*stride]
	s0, s1 := a+c, a-c
	s2, s3 := b+d, b-d
	v[i0] = s0 + s2
	v[i0+stride] = s1 + s3
	v[i0+2*stride] = s0 - s2
	v[i0+3*stride] = s1 - s3
}

// SATD4x4 returns the sum of absolute Hadamard-transformed differences
// of a 4×4 residual block (row-major, stride 4). The result is
// normalized by 2 to approximate SAD scale, the convention x264 uses.
func satd4x4(tc *trace.Ctx, res []int32) int32 {
	var t [16]int32
	copy(t[:], res[:16])
	for r := 0; r < 4; r++ {
		hadamard4(t[:], r*4, 1)
	}
	for c := 0; c < 4; c++ {
		hadamard4(t[:], c, 4)
	}
	var sum int32
	for _, v := range t {
		if v < 0 {
			v = -v
		}
		sum += v
	}
	tc.Loads(pcSATDLoop, trace.ScratchBase+0x5000, 4, 8, 8)
	tc.Op(trace.OpAVX, 8) // 4x4 tiles batched through 8-wide butterflies
	tc.Op(trace.OpSSE, 1) // transpose fix-up
	tc.Op(trace.OpOther, 2)
	return sum / 2
}

// SATD computes the Hadamard-domain cost of a w×h residual (both
// multiples of 4) by tiling 4×4 SATDs, the standard mode-decision
// distortion metric at fast presets.
func SATD(tc *trace.Ctx, res []int32, w, h int) (int32, error) {
	defer tc.EndStage(tc.BeginStage(trace.StageTransform))
	if w%4 != 0 || h%4 != 0 || w <= 0 || h <= 0 {
		return 0, fmt.Errorf("transform: SATD size %dx%d not a positive multiple of 4", w, h)
	}
	tc.Enter(fnSATD)
	defer tc.Leave()
	var total int32
	var tile [16]int32
	for y := 0; y < h; y += 4 {
		for x := 0; x < w; x += 4 {
			for j := 0; j < 4; j++ {
				copy(tile[j*4:j*4+4], res[(y+j)*w+x:(y+j)*w+x+4])
			}
			total += satd4x4(tc, tile[:])
		}
		tc.Loop(pcSATDLoop, w/4)
	}
	return total, nil
}
