package transform

import (
	"math"
	"testing"
	"testing/quick"

	"vcprof/internal/trace"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		src := make([]int32, n*n)
		for i := range src {
			src[i] = int32((i*37)%511 - 255) // residual-range values
		}
		coef := make([]int32, n*n)
		if err := Forward(nil, src, n, coef); err != nil {
			t.Fatalf("Forward(%d): %v", n, err)
		}
		rec := make([]int32, n*n)
		if err := Inverse(nil, coef, n, rec); err != nil {
			t.Fatalf("Inverse(%d): %v", n, err)
		}
		for i := range src {
			if d := rec[i] - src[i]; d < -1 || d > 1 {
				t.Fatalf("n=%d sample %d: roundtrip %d vs %d (err %d)", n, i, rec[i], src[i], d)
			}
		}
	}
}

func TestForwardDCOnly(t *testing.T) {
	// A constant block transforms to a single DC coefficient.
	n := 8
	src := make([]int32, n*n)
	for i := range src {
		src[i] = 100
	}
	coef := make([]int32, n*n)
	if err := Forward(nil, src, n, coef); err != nil {
		t.Fatal(err)
	}
	wantDC := int32(math.Round(100 * float64(n))) // orthonormal: DC = mean·N
	if coef[0] != wantDC {
		t.Errorf("DC = %d, want %d", coef[0], wantDC)
	}
	for i := 1; i < n*n; i++ {
		if coef[i] != 0 {
			t.Errorf("AC coef %d = %d, want 0", i, coef[i])
		}
	}
}

func TestForwardEnergyPreservation(t *testing.T) {
	// Orthonormal transform preserves L2 energy (Parseval) within
	// rounding error.
	f := func(seed int64) bool {
		n := 8
		src := make([]int32, n*n)
		s := uint64(seed)
		for i := range src {
			s = s*6364136223846793005 + 1442695040888963407
			src[i] = int32(s%401) - 200
		}
		coef := make([]int32, n*n)
		if err := Forward(nil, src, n, coef); err != nil {
			return false
		}
		var e1, e2 float64
		for i := range src {
			e1 += float64(src[i]) * float64(src[i])
			e2 += float64(coef[i]) * float64(coef[i])
		}
		if e1 == 0 {
			return e2 < float64(n*n)
		}
		ratio := e2 / e1
		return ratio > 0.98 && ratio < 1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransformSizeValidation(t *testing.T) {
	buf := make([]int32, 36)
	if err := Forward(nil, buf, 6, buf); err == nil {
		t.Error("Forward accepted size 6")
	}
	if err := Inverse(nil, buf, 5, buf); err == nil {
		t.Error("Inverse accepted size 5")
	}
}

func TestSATDZeroResidual(t *testing.T) {
	res := make([]int32, 64)
	got, err := SATD(nil, res, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("SATD of zero residual = %d, want 0", got)
	}
}

func TestSATDMonotoneInMagnitude(t *testing.T) {
	mk := func(amp int32) int32 {
		res := make([]int32, 64)
		for i := range res {
			sign := int32(1)
			if i%3 == 0 {
				sign = -1
			}
			res[i] = sign * amp
		}
		v, err := SATD(nil, res, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if a, b := mk(5), mk(50); a >= b {
		t.Errorf("SATD(amp 5)=%d >= SATD(amp 50)=%d; must grow with residual energy", a, b)
	}
}

func TestSATDValidation(t *testing.T) {
	if _, err := SATD(nil, make([]int32, 9), 3, 3); err == nil {
		t.Error("SATD accepted non-multiple-of-4 size")
	}
	if _, err := SATD(nil, nil, 0, 0); err == nil {
		t.Error("SATD accepted zero size")
	}
}

func TestTransformInstrumentation(t *testing.T) {
	tc := trace.New()
	src := make([]int32, 64)
	coef := make([]int32, 64)
	if err := Forward(tc, src, 8, coef); err != nil {
		t.Fatal(err)
	}
	// 4x4 transforms run at SSE width; 8+ at AVX width.
	if tc.Mix[trace.OpAVX] == 0 {
		t.Error("8x8 Forward reported no AVX work")
	}
	small := trace.New()
	coef4 := make([]int32, 16)
	if err := Forward(small, coef4, 4, coef4); err != nil {
		t.Fatal(err)
	}
	if small.Mix[trace.OpSSE] == 0 {
		t.Error("4x4 Forward reported no SSE work")
	}
	big := trace.New()
	coef32 := make([]int32, 32*32)
	if err := Forward(big, coef32, 32, coef32); err != nil {
		t.Fatal(err)
	}
	if big.Mix[trace.OpAVX] == 0 {
		t.Error("32x32 Forward reported no AVX work")
	}
	if tc.Mix[trace.OpLoad] == 0 || tc.Mix[trace.OpStore] == 0 {
		t.Error("Forward reported no memory traffic")
	}
	if tc.Mix[trace.OpBranch] == 0 {
		t.Error("Forward reported no loop branches")
	}
	before := tc.Total()
	if _, err := SATD(tc, src, 8, 8); err != nil {
		t.Fatal(err)
	}
	if tc.Total() == before {
		t.Error("SATD reported no instructions")
	}
	// SATD must be much cheaper than the full transform: that cost gap is
	// what makes fast presets fast.
	satdCost := tc.Total() - before
	if satdCost >= before {
		t.Errorf("SATD cost %d not below DCT cost %d", satdCost, before)
	}
}
