// Package codec provides the shared toolkit the five encoder models are
// built from: instrumented pixel surfaces, block geometry, and the
// sub-packages transform, entropy, intra, motion, quant and rdo.
package codec

import (
	"fmt"

	"vcprof/internal/trace"
	"vcprof/internal/video"
)

// Surface couples a pixel plane with the virtual base address its pixels
// occupy in the traced address space, so kernels can report the memory
// accesses they perform against it.
type Surface struct {
	*video.Plane
	VBase uint64
}

// NewSurface allocates a surface of the given size in the address space
// under the given buffer name.
func NewSurface(as *trace.AddressSpace, name string, w, h int) (Surface, error) {
	if w <= 0 || h <= 0 {
		return Surface{}, fmt.Errorf("codec: invalid surface %q size %dx%d", name, w, h)
	}
	r, err := as.Alloc(name, w*h)
	if err != nil {
		return Surface{}, err
	}
	return Surface{Plane: video.NewPlane(w, h), VBase: r.Base}, nil
}

// WrapSurface binds an existing plane to an address-space region.
func WrapSurface(as *trace.AddressSpace, name string, p *video.Plane) (Surface, error) {
	if p == nil {
		return Surface{}, fmt.Errorf("codec: nil plane for surface %q", name)
	}
	r, err := as.Alloc(name, p.Stride*p.H)
	if err != nil {
		return Surface{}, err
	}
	return Surface{Plane: p, VBase: r.Base}, nil
}

// VAddr returns the virtual address of pixel (x, y).
func (s Surface) VAddr(x, y int) uint64 {
	return s.VBase + uint64(y*s.Stride+x)
}

// BlockSize is a square coding block side length.
type BlockSize int

// Supported block sizes.
const (
	Block4  BlockSize = 4
	Block8  BlockSize = 8
	Block16 BlockSize = 16
	Block32 BlockSize = 32
	Block64 BlockSize = 64
)

// Valid reports whether the block size is one the toolkit supports.
func (b BlockSize) Valid() bool {
	switch b {
	case Block4, Block8, Block16, Block32, Block64:
		return true
	}
	return false
}

// MV is a motion vector in full-pel units.
type MV struct {
	X, Y int16
}

// Add returns m+o with saturation left to the caller's search bounds.
func (m MV) Add(o MV) MV { return MV{m.X + o.X, m.Y + o.Y} }

// Residual computes dst = cur − pred for a w×h block (row-major, stride
// w) and reports the vector arithmetic to tc. cur and pred must each
// hold w*h samples.
func Residual(tc *trace.Ctx, cur, pred []byte, w, h int, dst []int32) {
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			idx := j*w + i
			dst[idx] = int32(cur[idx]) - int32(pred[idx])
		}
	}
	// Two source loads and one widened store per 8 samples, one 8-wide
	// subtract; the row loop is 4x unrolled.
	n := w * h
	tc.Loads(pcResidualLoop, trace.ScratchBase+0x3000, n/4+2, 8, 8)
	tc.Stores(pcResidualLoop, trace.ScratchBase+0x3800, n/8+1, 8, 8)
	tc.Op(trace.OpAVX, n/8+1)
	tc.Op(trace.OpOther, h/2+1)
	tc.Loop(pcResidualLoop, (h+3)/4)
}

// Reconstruct computes dst = clamp(pred + res) for a w×h block.
func Reconstruct(tc *trace.Ctx, pred []byte, res []int32, w, h int, dst []byte) {
	n := w * h
	for i := 0; i < n; i++ {
		v := int32(pred[i]) + res[i]
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
	tc.Loads(pcReconLoop, trace.ScratchBase+0x3000, n/4+2, 8, 8)
	tc.Stores(pcReconLoop, trace.ScratchBase+0x3800, n/4+2, 8, 8)
	tc.Op(trace.OpAVX, n/4+1)
	tc.Op(trace.OpOther, h/2+1)
	tc.Loop(pcReconLoop, (h+3)/4)
}

var (
	pcResidualLoop = trace.Site("codec.Residual/rowloop")
	pcReconLoop    = trace.Site("codec.Reconstruct/rowloop")
)
