// Package entropy implements the adaptive binary range coder used by the
// encoder models, patterned after the VP8/VP9 boolean coder that AV1's
// multi-symbol coder descends from. Probabilities adapt per coded bit,
// so the coder's control flow — the branch on each coded bit — is
// genuinely data-dependent, which is exactly the branch behaviour the
// paper's CBP study measures on encoder traces.
package entropy

import (
	"errors"
	"math/bits"

	"vcprof/internal/trace"
)

// Prob is the probability (out of 256) that the next bit is zero.
type Prob uint8

// DefaultProb is the uninformed prior.
const DefaultProb Prob = 128

// Adapt moves the probability toward the observed bit with a 1/32 step,
// the backward-adaptation scheme used by VP9-era coders.
func (p Prob) Adapt(bit int) Prob {
	if bit == 0 {
		return p + (255-p)>>5
	}
	return p - p>>5
}

var (
	pcBitBranch = trace.Site("entropy.Bool/bitsplit")
	pcCarry     = trace.Site("entropy.Bool/carry")
	pcByteOut   = trace.Site("entropy.Bool/byteout")
)

// The boolean coder is inlined at every syntax-coding call site in a
// production encoder, so the hot "split" branch exists as many static
// branches. Callers select the active call site with SetSite.

// Encoder is a binary range encoder (VP8 boolean-coder algorithm)
// writing to an in-memory buffer.
type Encoder struct {
	low    uint32
	rng    uint32 // 128..255 between symbols
	count  int
	out    []byte
	tc     *trace.Ctx
	vbase  uint64
	site   trace.PC
	closed bool
}

// NewEncoder returns an encoder reporting instrumentation to tc (which
// may be nil). vbase is the virtual address of the output bitstream
// buffer for cache modeling.
func NewEncoder(tc *trace.Ctx, vbase uint64) *Encoder {
	return &Encoder{rng: 255, count: -24, tc: tc, vbase: vbase, site: pcBitBranch}
}

// SetCtx redirects instrumentation to another context. Schedulers that
// move an in-progress entropy partition between workers (x264's
// frame-row tasks) retarget the coder at each task boundary.
func (e *Encoder) SetCtx(tc *trace.Ctx) { e.tc = tc }

// SetSite selects the static call site subsequent bits are attributed
// to (the inlined copy of the coder in the caller), restoring the
// per-syntax-element branch identity real binaries have. A zero pc
// resets to the generic site.
func (e *Encoder) SetSite(pc trace.PC) {
	if pc == 0 {
		e.site = pcBitBranch
		return
	}
	e.site = pc
}

// Bit encodes one bit with probability p that the bit is zero.
func (e *Encoder) Bit(bit int, p Prob) {
	// Stage attribution is inline (no defer): Bit is the per-coded-bit
	// hot path and has a single exit.
	prevStage := e.tc.BeginStage(trace.StageEntropy)
	split := 1 + (((e.rng - 1) * uint32(p)) >> 8)
	// The split comparison is the canonical data-dependent branch of a
	// range coder: its direction is the coded bit itself.
	e.tc.Branch(e.site, bit != 0)
	e.tc.Loads(e.site, trace.ScratchBase+0x4000, 1, 8, 2)
	e.tc.Stores(e.site, trace.ScratchBase+0x4000, 1, 8, 2) // context adaptation writeback
	e.tc.Op(trace.OpOther, 6)                              // split mul/shift/add, interval update
	if bit != 0 {
		e.low += split
		e.rng -= split
	} else {
		e.rng = split
	}
	shift := bits.LeadingZeros8(uint8(e.rng))
	e.rng <<= uint(shift)
	e.count += shift
	if e.count >= 0 {
		offset := shift - e.count
		if (e.low<<uint(offset-1))&0x80000000 != 0 {
			// Carry propagation into already-emitted bytes.
			e.tc.Branch(pcCarry, true)
			i := len(e.out) - 1
			for i >= 0 && e.out[i] == 0xFF {
				e.out[i] = 0
				i--
			}
			if i >= 0 {
				e.out[i]++
			}
		} else {
			e.tc.Branch(pcCarry, false)
		}
		e.out = append(e.out, byte(e.low>>uint(24-offset)))
		e.tc.Stores(pcByteOut, e.vbase+uint64(len(e.out)-1), 1, 1, 1)
		e.low <<= uint(offset)
		shift = e.count
		e.low &= 0xFFFFFF
		e.count -= 8
	}
	e.low <<= uint(shift)
	e.tc.EndStage(prevStage)
}

// BitAdaptive encodes a bit against a context probability and adapts it.
func (e *Encoder) BitAdaptive(bit int, p *Prob) {
	e.Bit(bit, *p)
	*p = p.Adapt(bit)
}

// Literal encodes an n-bit value MSB-first with flat probability.
func (e *Encoder) Literal(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		e.Bit(int(v>>uint(i))&1, DefaultProb)
	}
}

// Finish flushes the encoder and returns the complete bitstream. It is
// idempotent; no bits may be encoded after the first call.
func (e *Encoder) Finish() []byte {
	if !e.closed {
		for i := 0; i < 32; i++ {
			e.Bit(0, DefaultProb)
		}
		e.closed = true
	}
	return e.out
}

// Len returns the current output length in bytes (without flush bits).
func (e *Encoder) Len() int { return len(e.out) }

// ErrTruncated is returned when the decoder reads past the bitstream.
var ErrTruncated = errors.New("entropy: bitstream truncated")

// Decoder is the matching binary range decoder.
type Decoder struct {
	buf      []byte
	pos      int
	value    uint32
	rng      uint32
	count    int
	overread int
}

// NewDecoder reads a bitstream produced by Encoder.
func NewDecoder(buf []byte) *Decoder {
	d := &Decoder{buf: buf, rng: 255, count: -8}
	d.fill()
	return d
}

func (d *Decoder) fill() {
	shift := 32 - 8 - (d.count + 8)
	for shift >= 0 {
		var b byte
		if d.pos < len(d.buf) {
			b = d.buf[d.pos]
			d.pos++
		} else {
			d.overread++
		}
		d.count += 8
		d.value |= uint32(b) << uint(shift)
		shift -= 8
	}
}

// Bit decodes one bit with probability p that the bit is zero.
func (d *Decoder) Bit(p Prob) int {
	split := 1 + (((d.rng - 1) * uint32(p)) >> 8)
	bigSplit := split << 24
	var bit int
	if d.value >= bigSplit {
		bit = 1
		d.value -= bigSplit
		d.rng -= split
	} else {
		d.rng = split
	}
	shift := bits.LeadingZeros8(uint8(d.rng))
	d.rng <<= uint(shift)
	d.value <<= uint(shift)
	d.count -= shift
	if d.count < 0 {
		d.fill()
	}
	return bit
}

// BitAdaptive decodes a bit against a context probability and adapts it
// identically to the encoder side.
func (d *Decoder) BitAdaptive(p *Prob) int {
	bit := d.Bit(*p)
	*p = p.Adapt(bit)
	return bit
}

// Literal decodes an n-bit value MSB-first.
func (d *Decoder) Literal(n int) uint32 {
	var v uint32
	for i := 0; i < n; i++ {
		v = v<<1 | uint32(d.Bit(DefaultProb))
	}
	return v
}

// Err reports whether the decoder has consumed meaningfully past the end
// of the stream (more than the encoder's flush slack).
func (d *Decoder) Err() error {
	if d.overread > 4 {
		return ErrTruncated
	}
	return nil
}
