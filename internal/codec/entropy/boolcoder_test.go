package entropy

import (
	"testing"
	"testing/quick"

	"vcprof/internal/trace"
)

func TestRoundTripFixedProb(t *testing.T) {
	bitsIn := []int{1, 0, 1, 1, 0, 0, 0, 1, 1, 1, 0, 1, 0, 0, 1}
	e := NewEncoder(nil, 0)
	for _, b := range bitsIn {
		e.Bit(b, 200)
	}
	stream := e.Finish()
	d := NewDecoder(stream)
	for i, want := range bitsIn {
		if got := d.Bit(200); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripAdaptive(t *testing.T) {
	// A biased source: adaptive probabilities must converge and the
	// decoder must track the encoder's adaptation exactly.
	var bitsIn []int
	for i := 0; i < 500; i++ {
		b := 0
		if i%7 == 0 {
			b = 1
		}
		bitsIn = append(bitsIn, b)
	}
	e := NewEncoder(nil, 0)
	pe := DefaultProb
	for _, b := range bitsIn {
		e.BitAdaptive(b, &pe)
	}
	stream := e.Finish()
	d := NewDecoder(stream)
	pd := DefaultProb
	for i, want := range bitsIn {
		if got := d.BitAdaptive(&pd); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if pe != pd {
		t.Errorf("encoder prob %d != decoder prob %d after identical adaptation", pe, pd)
	}
}

func TestRoundTripLiterals(t *testing.T) {
	vals := []struct {
		v uint32
		n int
	}{{0, 1}, {1, 1}, {5, 3}, {255, 8}, {1023, 10}, {0xABCD, 16}}
	e := NewEncoder(nil, 0)
	for _, x := range vals {
		e.Literal(x.v, x.n)
	}
	d := NewDecoder(e.Finish())
	for i, x := range vals {
		if got := d.Literal(x.n); got != x.v {
			t.Fatalf("literal %d = %d, want %d", i, got, x.v)
		}
	}
}

func TestRoundTripRandomQuick(t *testing.T) {
	f := func(data []byte, probSeed uint8) bool {
		if len(data) > 2000 {
			data = data[:2000]
		}
		p := Prob(probSeed)
		if p < 1 {
			p = 1
		}
		e := NewEncoder(nil, 0)
		for _, by := range data {
			for k := 0; k < 8; k++ {
				e.Bit(int(by>>uint(k))&1, p)
			}
		}
		d := NewDecoder(e.Finish())
		for _, by := range data {
			for k := 0; k < 8; k++ {
				if d.Bit(p) != int(by>>uint(k))&1 {
					return false
				}
			}
		}
		return d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCarryPropagation(t *testing.T) {
	// Encoding long runs of 1s at a probability heavily favouring 0
	// forces low-interval additions and eventually carries.
	e := NewEncoder(nil, 0)
	for i := 0; i < 4000; i++ {
		e.Bit(1, 250)
	}
	d := NewDecoder(e.Finish())
	for i := 0; i < 4000; i++ {
		if d.Bit(250) != 1 {
			t.Fatalf("bit %d decoded wrong after carry-heavy stream", i)
		}
	}
}

func TestCompressionBeatsRawForBiasedSource(t *testing.T) {
	// 8000 highly predictable bits must compress far below 1000 bytes.
	e := NewEncoder(nil, 0)
	p := DefaultProb
	for i := 0; i < 8000; i++ {
		e.BitAdaptive(0, &p)
	}
	stream := e.Finish()
	if len(stream) > 200 {
		t.Errorf("biased stream encoded to %d bytes, want strong compression (<200)", len(stream))
	}
	// Incompressible alternating bits should stay near 1 bit/bit.
	e2 := NewEncoder(nil, 0)
	for i := 0; i < 8000; i++ {
		e2.Bit(i&1, DefaultProb)
	}
	if got := len(e2.Finish()); got < 950 {
		t.Errorf("random-ish stream encoded to %d bytes, implausibly small", got)
	}
}

func TestAdaptMovesTowardObservedBit(t *testing.T) {
	p := Prob(128)
	if q := p.Adapt(0); q <= p {
		t.Errorf("Adapt(0) = %d, want > %d", q, p)
	}
	if q := p.Adapt(1); q >= p {
		t.Errorf("Adapt(1) = %d, want < %d", q, p)
	}
	// Saturation: repeated adaptation stays within [1, 255] and keeps
	// round-trip consistency (no wrap to 0).
	p = 255
	for i := 0; i < 100; i++ {
		p = p.Adapt(0)
	}
	if p < 200 {
		t.Errorf("prob collapsed to %d after consistent zeros", p)
	}
	p = 1
	for i := 0; i < 100; i++ {
		p = p.Adapt(1)
	}
	if p > 50 {
		t.Errorf("prob stuck high: %d after consistent ones", p)
	}
}

func TestEncoderInstrumentation(t *testing.T) {
	tc := trace.New()
	e := NewEncoder(tc, 0x9000)
	for i := 0; i < 100; i++ {
		e.Bit(i&1, 128)
	}
	if tc.Mix[trace.OpBranch] == 0 {
		t.Error("encoder emitted no branch events")
	}
	if tc.Mix[trace.OpOther] == 0 {
		t.Error("encoder emitted no scalar ops")
	}
	_ = e.Finish()
	if tc.Mix[trace.OpStore] == 0 {
		t.Error("encoder emitted no byte-out stores")
	}
}

func TestDecoderTruncatedStream(t *testing.T) {
	e := NewEncoder(nil, 0)
	for i := 0; i < 800; i++ {
		e.Bit(i%3&1, 128)
	}
	stream := e.Finish()
	d := NewDecoder(stream[:4])
	for i := 0; i < 800; i++ {
		d.Bit(128)
	}
	if d.Err() == nil {
		t.Error("decoder did not flag overread of truncated stream")
	}
}

func TestFinishIdempotent(t *testing.T) {
	e := NewEncoder(nil, 0)
	e.Bit(1, 128)
	a := e.Finish()
	b := e.Finish()
	if len(a) != len(b) {
		t.Errorf("second Finish changed stream length: %d vs %d", len(a), len(b))
	}
	if e.Len() != len(a) {
		t.Errorf("Len = %d, want %d", e.Len(), len(a))
	}
}
