package entropy

import "testing"

// boolOp is one fuzz-derived coder operation. The same derivation feeds
// the encoder and the decoder, so any divergence is a genuine
// round-trip break, not a harness artifact.
type boolOp struct {
	kind int // 0 fixed-prob bit, 1 adaptive bit, 2 literal
	bit  int
	p    Prob
	ctx  int
	v    uint32
	n    int
}

// deriveOps maps raw fuzz bytes onto a coder operation sequence: pairs
// of (selector, value) bytes choose between fixed-probability bits
// (covering the full 0–255 probability range, including the degenerate
// endpoints), adaptive bits against eight shared contexts, and
// multi-bit literals up to 16 bits.
func deriveOps(data []byte) []boolOp {
	var ops []boolOp
	for i := 0; i+1 < len(data); i += 2 {
		sel, val := data[i], data[i+1]
		switch sel % 3 {
		case 0:
			ops = append(ops, boolOp{kind: 0, bit: int(sel>>7) & 1, p: Prob(val)})
		case 1:
			ops = append(ops, boolOp{kind: 1, bit: int(val) & 1, ctx: int(sel>>2) % 8})
		default:
			n := 1 + int(sel>>2)%16
			ops = append(ops, boolOp{kind: 2, v: uint32(val) & (1<<n - 1), n: n})
		}
	}
	return ops
}

// FuzzBoolCoderRoundTrip asserts the range coder's fundamental
// contract: any operation sequence the encoder accepts decodes back to
// exactly the same bits with the same adapted probabilities, and the
// decoder never reads meaningfully past the flushed stream.
func FuzzBoolCoderRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x80, 0xFF, 0x01, 0x01, 0x02, 0xAB})
	f.Add([]byte{0x00, 0x00, 0x00, 0xFF, 0x80, 0x00, 0x80, 0xFF}) // prob endpoints both bit values
	f.Add([]byte{0x3E, 0x7F, 0x3D, 0x01, 0x3E, 0x80, 0x05, 0x01}) // long literals + adaptation
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound per-input work, not coverage
		}
		ops := deriveOps(data)

		var encCtx [8]Prob
		for i := range encCtx {
			encCtx[i] = DefaultProb
		}
		enc := NewEncoder(nil, 0)
		for _, o := range ops {
			switch o.kind {
			case 0:
				enc.Bit(o.bit, o.p)
			case 1:
				enc.BitAdaptive(o.bit, &encCtx[o.ctx])
			default:
				enc.Literal(o.v, o.n)
			}
		}
		stream := enc.Finish()

		var decCtx [8]Prob
		for i := range decCtx {
			decCtx[i] = DefaultProb
		}
		dec := NewDecoder(stream)
		for i, o := range ops {
			switch o.kind {
			case 0:
				if got := dec.Bit(o.p); got != o.bit {
					t.Fatalf("op %d: fixed-prob bit = %d, want %d (p=%d)", i, got, o.bit, o.p)
				}
			case 1:
				if got := dec.BitAdaptive(&decCtx[o.ctx]); got != o.bit {
					t.Fatalf("op %d: adaptive bit = %d, want %d (ctx %d)", i, got, o.bit, o.ctx)
				}
			default:
				if got := dec.Literal(o.n); got != o.v {
					t.Fatalf("op %d: literal = %d, want %d (n=%d)", i, got, o.v, o.n)
				}
			}
		}
		for i := range encCtx {
			if encCtx[i] != decCtx[i] {
				t.Fatalf("context %d diverged: enc %d, dec %d", i, encCtx[i], decCtx[i])
			}
		}
		if err := dec.Err(); err != nil {
			t.Fatalf("decoder overread a complete stream: %v", err)
		}
	})
}
