package quant

import (
	"testing"
	"testing/quick"

	"vcprof/internal/trace"
)

func TestStepSizeMonotone(t *testing.T) {
	prev := 0.0
	for qi := 0; qi <= MaxQIndex; qi++ {
		s, err := StepSize(qi)
		if err != nil {
			t.Fatal(err)
		}
		if s <= prev {
			t.Fatalf("StepSize(%d) = %v not greater than StepSize(%d) = %v", qi, s, qi-1, prev)
		}
		prev = s
	}
	// Doubling every 24 points.
	a, _ := StepSize(48)
	b, _ := StepSize(72)
	if ratio := b / a; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("step ratio over 24 points = %v, want 2", ratio)
	}
	if _, err := StepSize(-1); err == nil {
		t.Error("StepSize(-1) accepted")
	}
	if _, err := StepSize(256); err == nil {
		t.Error("StepSize(256) accepted")
	}
}

func TestQuantizeRoundTripErrorBounded(t *testing.T) {
	f := func(seed int64, qiRaw uint8) bool {
		qi := int(qiRaw)
		step, err := StepSize(qi)
		if err != nil {
			return false
		}
		coefs := make([]int32, 64)
		s := uint64(seed)
		for i := range coefs {
			s = s*6364136223846793005 + 1442695040888963407
			coefs[i] = int32(s%2001) - 1000
		}
		levels := make([]int32, 64)
		if _, err := Quantize(nil, coefs, qi, levels); err != nil {
			return false
		}
		rec := make([]int32, 64)
		if err := Dequantize(nil, levels, qi, rec); err != nil {
			return false
		}
		// Reconstruction error bounded by ~one step (dead zone widens the
		// zero bin slightly; allow 1.25 steps + fixed-point slack).
		for i := range coefs {
			d := float64(coefs[i] - rec[i])
			if d < 0 {
				d = -d
			}
			if d > 1.25*step+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSparsityGrowsWithQIndex(t *testing.T) {
	coefs := make([]int32, 256)
	for i := range coefs {
		coefs[i] = int32((i%41 - 20) * 3)
	}
	levels := make([]int32, 256)
	nzLow, err := Quantize(nil, coefs, 20, levels)
	if err != nil {
		t.Fatal(err)
	}
	nzHigh, err := Quantize(nil, coefs, 200, levels)
	if err != nil {
		t.Fatal(err)
	}
	if nzHigh >= nzLow {
		t.Errorf("nonzero at qindex 200 (%d) not below qindex 20 (%d)", nzHigh, nzLow)
	}
	if nzLow == 0 {
		t.Error("low qindex quantized everything to zero")
	}
}

func TestQuantizeZeroAtHugeStep(t *testing.T) {
	coefs := []int32{1, -1, 2, -2}
	levels := make([]int32, 4)
	nz, err := Quantize(nil, coefs, MaxQIndex, levels)
	if err != nil {
		t.Fatal(err)
	}
	if nz != 0 {
		t.Errorf("tiny coefficients at max qindex: nonzero = %d, want 0", nz)
	}
}

func TestQuantizePreservesSign(t *testing.T) {
	coefs := []int32{500, -500, 300, -300}
	levels := make([]int32, 4)
	if _, err := Quantize(nil, coefs, 60, levels); err != nil {
		t.Fatal(err)
	}
	for i, l := range levels {
		if (coefs[i] > 0 && l < 0) || (coefs[i] < 0 && l > 0) {
			t.Errorf("level[%d] = %d has wrong sign for coef %d", i, l, coefs[i])
		}
		if l == 0 {
			t.Errorf("level[%d] = 0 for large coef %d at moderate qindex", i, coefs[i])
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize(nil, make([]int32, 4), 10, make([]int32, 3)); err == nil {
		t.Error("Quantize accepted mismatched lengths")
	}
	if _, err := Quantize(nil, make([]int32, 4), 999, make([]int32, 4)); err == nil {
		t.Error("Quantize accepted invalid qindex")
	}
	if err := Dequantize(nil, make([]int32, 4), 10, make([]int32, 5)); err == nil {
		t.Error("Dequantize accepted mismatched lengths")
	}
	if err := Dequantize(nil, make([]int32, 4), -5, make([]int32, 4)); err == nil {
		t.Error("Dequantize accepted invalid qindex")
	}
}

func TestQuantizeInstrumentation(t *testing.T) {
	tc := trace.New()
	coefs := make([]int32, 64)
	for i := range coefs {
		coefs[i] = int32(i * 7 % 100)
	}
	levels := make([]int32, 64)
	if _, err := Quantize(tc, coefs, 80, levels); err != nil {
		t.Fatal(err)
	}
	// A production quantizer is vectorized and branch-light: vector work
	// plus memory traffic, with only the coded-flag branch and loop
	// control — not one branch per coefficient.
	if tc.Mix[trace.OpAVX] == 0 {
		t.Error("quantizer reported no vector work")
	}
	if tc.Mix[trace.OpLoad] == 0 || tc.Mix[trace.OpStore] == 0 {
		t.Error("quantizer reported no memory traffic")
	}
	if tc.Mix[trace.OpBranch] > uint64(len(coefs)/4) {
		t.Errorf("quantizer emitted %d branches for %d coefs; must be branch-light", tc.Mix[trace.OpBranch], len(coefs))
	}
}
