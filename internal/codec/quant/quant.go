// Package quant implements quantizer derivation from CRF-style quality
// indices, dead-zone scalar quantization of transform coefficients, and
// the matching dequantizer.
package quant

import (
	"fmt"
	"math"

	"vcprof/internal/trace"
)

// MaxQIndex is the top of the quantizer-index scale (AV1-style 0..255).
const MaxQIndex = 255

// StepSize converts a quantizer index into a quantization step size.
// The mapping is exponential like the AV1/VP9 lookup tables: every 24
// index points double the step, anchored so qindex 0 is near-lossless.
func StepSize(qindex int) (float64, error) {
	if qindex < 0 || qindex > MaxQIndex {
		return 0, fmt.Errorf("quant: qindex %d out of range [0, %d]", qindex, MaxQIndex)
	}
	return 0.8 * math.Exp2(float64(qindex)/24), nil
}

var (
	pcQuantLoop   = trace.Sites("quant.Quantize/coefloop", 4)
	pcQuantNZ     = trace.Sites("quant.Quantize/nonzero", 4)
	pcDequantLoop = trace.Sites("quant.Dequantize/coefloop", 4)
	fnQuantize    = trace.Func("quant.Quantize")
)

// quantClass selects the per-transform-size kernel specialization.
func quantClass(n int) int {
	switch {
	case n <= 16:
		return 0
	case n <= 64:
		return 1
	case n <= 256:
		return 2
	}
	return 3
}

// Quantize applies dead-zone quantization: level = sign ·
// floor((|coef| + round) / step) with round = step·deadzone. It returns
// the number of nonzero levels. coefs and levels must have equal length
// and may alias.
func Quantize(tc *trace.Ctx, coefs []int32, qindex int, levels []int32) (nonzero int, err error) {
	defer tc.EndStage(tc.BeginStage(trace.StageQuant))
	if len(levels) != len(coefs) {
		return 0, fmt.Errorf("quant: levels length %d != coefs length %d", len(levels), len(coefs))
	}
	step, err := StepSize(qindex)
	if err != nil {
		return 0, err
	}
	tc.Enter(fnQuantize)
	defer tc.Leave()
	// Fixed-point reciprocal multiply, as hardware-friendly quantizers do.
	inv := int64(math.Round((1 << 16) / step))
	round := int64(math.Round(step * 0.375 * float64(1))) // dead zone ~3/8 step
	for i, c := range coefs {
		neg := c < 0
		a := int64(c)
		if neg {
			a = -a
		}
		l := (a + round) * inv >> 16
		if l != 0 {
			nonzero++
		}
		if neg {
			l = -l
		}
		levels[i] = int32(l)
	}
	// The kernel is fully vectorized (abs, madd, shift, sign restore,
	// nonzero population count); like production quantizers it has no
	// per-coefficient branch — the data-dependent branches happen later,
	// in entropy coding of the levels.
	n := len(coefs)
	qc := quantClass(n)
	tc.Loads(pcQuantLoop[qc], trace.ScratchBase, n/8+1, 8, 8)
	tc.Stores(pcQuantLoop[qc], trace.ScratchBase+0x400, n/8+1, 8, 8)
	tc.Op(trace.OpAVX, n/4+1)
	tc.Op(trace.OpOther, n/8+4)
	// One residual branch: was anything nonzero (sets the coded flag).
	tc.Branch(pcQuantNZ[qc], nonzero != 0)
	tc.Loop(pcQuantLoop[qc], n/32+1)
	return nonzero, nil
}

// Dequantize reconstructs coefficients from levels. levels and coefs
// must have equal length and may alias.
func Dequantize(tc *trace.Ctx, levels []int32, qindex int, coefs []int32) error {
	defer tc.EndStage(tc.BeginStage(trace.StageQuant))
	if len(levels) != len(coefs) {
		return fmt.Errorf("quant: coefs length %d != levels length %d", len(coefs), len(levels))
	}
	step, err := StepSize(qindex)
	if err != nil {
		return err
	}
	stepFx := int64(math.Round(step * 256))
	for i, l := range levels {
		coefs[i] = int32(int64(l) * stepFx >> 8)
	}
	n := len(levels)
	qc := quantClass(n)
	tc.Loads(pcDequantLoop[qc], trace.ScratchBase+0x800, n/8+1, 8, 8)
	tc.Stores(pcDequantLoop[qc], trace.ScratchBase+0xC00, n/8+1, 8, 8)
	tc.Op(trace.OpAVX, n/8+1)
	tc.Op(trace.OpOther, n/16+2)
	tc.Loop(pcDequantLoop[qc], n/32+1)
	return nil
}
