package rdo

import (
	"testing"
	"testing/quick"
)

func TestLambdaGrowsQuadratically(t *testing.T) {
	l1, err := Lambda(4)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Lambda(8)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := l2 / l1; ratio < 3.9 || ratio > 4.1 {
		t.Errorf("lambda ratio for doubled step = %v, want 4", ratio)
	}
	if _, err := Lambda(0); err == nil {
		t.Error("Lambda(0) accepted")
	}
	if _, err := Lambda(-1); err == nil {
		t.Error("Lambda(-1) accepted")
	}
}

func TestBitsEstimate(t *testing.T) {
	if got := BitsEstimate(make([]int32, 64)); got != 1 {
		t.Errorf("all-zero block = %d bits, want 1 (coded-block flag)", got)
	}
	small := BitsEstimate([]int32{1, 0, 0, 0})
	big := BitsEstimate([]int32{100, -50, 25, -12})
	if small >= big {
		t.Errorf("sparse small levels (%d bits) not cheaper than dense large levels (%d bits)", small, big)
	}
	// Sign symmetry.
	if BitsEstimate([]int32{7, 0, -3}) != BitsEstimate([]int32{-7, 0, 3}) {
		t.Error("BitsEstimate not symmetric in sign")
	}
}

func TestBitsEstimateMonotoneInMagnitude(t *testing.T) {
	f := func(v int32) bool {
		if v < 0 {
			v = -v
		}
		v = v%10000 + 1
		a := BitsEstimate([]int32{v})
		b := BitsEstimate([]int32{v * 2})
		return b >= a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCost(t *testing.T) {
	if got := Cost(100, 10, 2.0); got != 120 {
		t.Errorf("Cost = %d, want 120", got)
	}
	if got := Cost(100, 10, 0); got != 100 {
		t.Errorf("zero-lambda cost = %d, want pure distortion", got)
	}
}

func TestSSE(t *testing.T) {
	a := []byte{10, 20, 30}
	b := []byte{13, 16, 30}
	got, err := SSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9+16 {
		t.Errorf("SSE = %d, want 25", got)
	}
	if _, err := SSE(a, b[:2]); err == nil {
		t.Error("SSE accepted mismatched lengths")
	}
}
