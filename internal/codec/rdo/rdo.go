// Package rdo provides rate-distortion optimization helpers: the
// lambda schedule tied to the quantizer, fast bit-cost estimation for
// mode decision, and RD cost combination.
package rdo

import (
	"fmt"
	"math"
	"math/bits"
)

// Lambda returns the RD multiplier for a quantizer step size, using the
// conventional λ ∝ (step)² schedule of hybrid encoders.
func Lambda(step float64) (float64, error) {
	if step <= 0 {
		return 0, fmt.Errorf("rdo: invalid quantizer step %v", step)
	}
	return 0.57 * step * step, nil
}

// BitsEstimate approximates the entropy-coded size in bits of a block of
// quantized levels without running the range coder: each nonzero level
// costs a sign bit plus ~2·log2(|level|+1) bits of magnitude and context
// overhead; runs of zeros amortize to a fraction of a bit each. This is
// the fast rate model encoders use inside mode decision.
func BitsEstimate(levels []int32) int {
	total := 0
	zeroRun := 0
	for _, l := range levels {
		if l == 0 {
			zeroRun++
			continue
		}
		m := uint32(l)
		if l < 0 {
			m = uint32(-l)
		}
		total += 3 + 2*bits.Len32(m) + zeroRun/4
		zeroRun = 0
	}
	if total == 0 {
		return 1 // coded-block flag
	}
	return total + 2
}

// Cost combines distortion (SSE or SATD units) with an estimated bit
// count under multiplier lambda.
func Cost(dist int64, bitCount int, lambda float64) int64 {
	return dist + int64(math.Round(lambda*float64(bitCount)))
}

// SSE returns the sum of squared errors between two equally sized
// sample blocks.
func SSE(a, b []byte) (int64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("rdo: SSE length mismatch %d vs %d", len(a), len(b))
	}
	var sum int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		sum += d * d
	}
	return sum, nil
}
