// Package intra implements the spatial prediction modes shared by the
// encoder models: DC, horizontal, vertical, and a planar/smooth mode,
// predicting a block from its reconstructed top and left neighbours.
package intra

import (
	"fmt"

	"vcprof/internal/trace"
)

// Mode is an intra prediction mode.
type Mode uint8

// Prediction modes, a compact subset of each codec family's set. Encoder
// models choose how many of these (and how many synthetic "angular"
// refinements) to evaluate, which is one of the search-space knobs.
const (
	DC Mode = iota
	Vertical
	Horizontal
	Planar
	NumModes
)

var modeNames = [NumModes]string{"DC", "V", "H", "Planar"}

// String returns the mode's short name.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	if IsAngular(m) {
		return fmt.Sprintf("Ang%d", int(m-NumModes))
	}
	return "?"
}

// Neighbors holds the reconstructed border samples for prediction: Top
// has n samples (above row), Left has n samples (left column). Missing
// borders (frame edges) are flagged; predictors fall back to 128.
type Neighbors struct {
	Top     []byte
	Left    []byte
	HasTop  bool
	HasLeft bool
}

var (
	pcPredRow = trace.Site("intra.Predict/rowloop")
	fnPredict = trace.Func("intra.Predict")
)

// Predict fills dst (n×n, row-major) with the prediction for the given
// mode from the neighbours.
func Predict(tc *trace.Ctx, mode Mode, nb Neighbors, n int, dst []byte) error {
	defer tc.EndStage(tc.BeginStage(trace.StageIntra))
	if n <= 0 || len(dst) < n*n {
		return fmt.Errorf("intra: invalid block size %d for dst of %d samples", n, len(dst))
	}
	if nb.HasTop && len(nb.Top) < n {
		return fmt.Errorf("intra: top border has %d samples, need %d", len(nb.Top), n)
	}
	if nb.HasLeft && len(nb.Left) < n {
		return fmt.Errorf("intra: left border has %d samples, need %d", len(nb.Left), n)
	}
	tc.Enter(fnPredict)
	defer tc.Leave()
	switch mode {
	case DC:
		var sum, cnt int
		if nb.HasTop {
			for i := 0; i < n; i++ {
				sum += int(nb.Top[i])
			}
			cnt += n
		}
		if nb.HasLeft {
			for i := 0; i < n; i++ {
				sum += int(nb.Left[i])
			}
			cnt += n
		}
		v := byte(128)
		if cnt > 0 {
			v = byte((sum + cnt/2) / cnt)
		}
		for i := 0; i < n*n; i++ {
			dst[i] = v
		}
		tc.Op(trace.OpAVX, n*n/16+n/8+2)
	case Vertical:
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if nb.HasTop {
					dst[y*n+x] = nb.Top[x]
				} else {
					dst[y*n+x] = 128
				}
			}
		}
		tc.Op(trace.OpAVX, n*n/16+1)
	case Horizontal:
		for y := 0; y < n; y++ {
			v := byte(128)
			if nb.HasLeft {
				v = nb.Left[y]
			}
			for x := 0; x < n; x++ {
				dst[y*n+x] = v
			}
		}
		tc.Op(trace.OpAVX, n*n/16+1)
	case Planar:
		// Bilinear blend of the borders, the smooth predictor family.
		for y := 0; y < n; y++ {
			l := 128
			if nb.HasLeft {
				l = int(nb.Left[y])
			}
			for x := 0; x < n; x++ {
				tp := 128
				if nb.HasTop {
					tp = int(nb.Top[x])
				}
				wx := x + 1
				wy := y + 1
				dst[y*n+x] = byte((tp*wy + l*wx + (wx+wy)/2) / (wx + wy))
			}
		}
		tc.Op(trace.OpAVX, n*n/8+2)
	default:
		if IsAngular(mode) {
			if err := validAngular(mode); err != nil {
				return err
			}
			return predictAngular(tc, mode, nb, n, dst)
		}
		return fmt.Errorf("intra: unknown mode %d", mode)
	}
	tc.Loop(pcPredRow, n)
	return nil
}
