package intra

import (
	"fmt"

	"vcprof/internal/trace"
)

// NumAngles is the number of synthetic angular refinements available
// beyond the four base modes. Newer codec generations evaluate more of
// them, widening the intra search space the way AV1's 56 angle variants
// widen it over H.264's 9 modes.
const NumAngles = 8

// Angular returns the i-th angular mode (0 <= i < NumAngles).
func Angular(i int) Mode {
	if i < 0 || i >= NumAngles {
		return NumModes // invalid; Predict rejects it
	}
	return NumModes + Mode(i)
}

// IsAngular reports whether m is an angular mode.
func IsAngular(m Mode) bool { return m >= NumModes && m < NumModes+NumAngles }

// angularParams maps an angular mode to its extrapolation: vertical-ish
// modes project from the top border with horizontal slope dx/32 per row;
// horizontal-ish modes project from the left border.
var angularParams = [NumAngles]struct {
	vertical bool
	slope    int // in 1/32 pel per line, signed
}{
	{true, 16},   // down-right from top
	{true, -16},  // down-left from top
	{false, 16},  // right-down from left
	{false, -16}, // right-up from left
	{true, 8},
	{true, -8},
	{false, 8},
	{false, -8},
}

var pcAngRow = trace.Site("intra.PredictAngular/rowloop")

// predictAngular fills dst with a directional extrapolation of one
// border. Border indices that fall outside are clamped, matching codec
// border extension.
func predictAngular(tc *trace.Ctx, m Mode, nb Neighbors, n int, dst []byte) error {
	p := angularParams[m-NumModes]
	if p.vertical && !nb.HasTop || !p.vertical && !nb.HasLeft {
		// Missing border: fall back to DC-style flat prediction.
		for i := 0; i < n*n; i++ {
			dst[i] = 128
		}
		tc.Op(trace.OpAVX, n*n/16+1)
		tc.Loop(pcAngRow, n)
		return nil
	}
	clamp := func(i int) int {
		if i < 0 {
			return 0
		}
		if i >= n {
			return n - 1
		}
		return i
	}
	if p.vertical {
		for y := 0; y < n; y++ {
			off := (y + 1) * p.slope / 32
			for x := 0; x < n; x++ {
				dst[y*n+x] = nb.Top[clamp(x+off)]
			}
		}
	} else {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				off := (x + 1) * p.slope / 32
				dst[y*n+x] = nb.Left[clamp(y+off)]
			}
		}
	}
	tc.Op(trace.OpAVX, n*n/8+2)
	tc.Loop(pcAngRow, n)
	return nil
}

func validAngular(m Mode) error {
	if !IsAngular(m) {
		return fmt.Errorf("intra: mode %d is not angular", m)
	}
	return nil
}
