package intra

import (
	"testing"

	"vcprof/internal/trace"
)

func borders(n int) Neighbors {
	top := make([]byte, n)
	left := make([]byte, n)
	for i := 0; i < n; i++ {
		top[i] = byte(100 + i)
		left[i] = byte(50 + 2*i)
	}
	return Neighbors{Top: top, Left: left, HasTop: true, HasLeft: true}
}

func TestDCPrediction(t *testing.T) {
	n := 4
	nb := Neighbors{
		Top:    []byte{10, 20, 30, 40},
		Left:   []byte{50, 60, 70, 80},
		HasTop: true, HasLeft: true,
	}
	dst := make([]byte, n*n)
	if err := Predict(nil, DC, nb, n, dst); err != nil {
		t.Fatal(err)
	}
	want := byte((10 + 20 + 30 + 40 + 50 + 60 + 70 + 80 + 4) / 8)
	for i, v := range dst {
		if v != want {
			t.Fatalf("dst[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestDCNoBordersFallsBackTo128(t *testing.T) {
	dst := make([]byte, 16)
	if err := Predict(nil, DC, Neighbors{}, 4, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 128 {
			t.Fatalf("dst[%d] = %d, want 128", i, v)
		}
	}
}

func TestVerticalCopiesTopRow(t *testing.T) {
	n := 8
	nb := borders(n)
	dst := make([]byte, n*n)
	if err := Predict(nil, Vertical, nb, n, dst); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if dst[y*n+x] != nb.Top[x] {
				t.Fatalf("(%d,%d) = %d, want top[%d]=%d", x, y, dst[y*n+x], x, nb.Top[x])
			}
		}
	}
}

func TestHorizontalCopiesLeftColumn(t *testing.T) {
	n := 8
	nb := borders(n)
	dst := make([]byte, n*n)
	if err := Predict(nil, Horizontal, nb, n, dst); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if dst[y*n+x] != nb.Left[y] {
				t.Fatalf("(%d,%d) = %d, want left[%d]=%d", x, y, dst[y*n+x], y, nb.Left[y])
			}
		}
	}
}

func TestPlanarBlendsWithinBorderRange(t *testing.T) {
	n := 8
	nb := borders(n)
	dst := make([]byte, n*n)
	if err := Predict(nil, Planar, nb, n, dst); err != nil {
		t.Fatal(err)
	}
	lo, hi := byte(255), byte(0)
	for _, v := range append(append([]byte{}, nb.Top[:n]...), nb.Left[:n]...) {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for i, v := range dst {
		if v < lo || v > hi {
			t.Fatalf("planar dst[%d] = %d outside border range [%d, %d]", i, v, lo, hi)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	if err := Predict(nil, DC, Neighbors{}, 0, nil); err == nil {
		t.Error("accepted zero block size")
	}
	if err := Predict(nil, DC, Neighbors{HasTop: true, Top: []byte{1}}, 4, make([]byte, 16)); err == nil {
		t.Error("accepted short top border")
	}
	if err := Predict(nil, DC, Neighbors{HasLeft: true, Left: []byte{1}}, 4, make([]byte, 16)); err == nil {
		t.Error("accepted short left border")
	}
	if err := Predict(nil, Mode(99), borders(4), 4, make([]byte, 16)); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestModeString(t *testing.T) {
	if DC.String() != "DC" || Planar.String() != "Planar" || Mode(77).String() != "?" {
		t.Error("mode names wrong")
	}
}

func TestPredictInstrumentation(t *testing.T) {
	tc := trace.New()
	dst := make([]byte, 64)
	for m := Mode(0); m < NumModes; m++ {
		if err := Predict(tc, m, borders(8), 8, dst); err != nil {
			t.Fatal(err)
		}
	}
	if tc.Mix[trace.OpAVX] == 0 || tc.Mix[trace.OpBranch] == 0 {
		t.Errorf("prediction reported mix %+v; want AVX and branch activity", tc.Mix)
	}
}

func TestAngularModes(t *testing.T) {
	n := 8
	nb := borders(n)
	dst := make([]byte, n*n)
	for i := 0; i < NumAngles; i++ {
		m := Angular(i)
		if !IsAngular(m) {
			t.Fatalf("Angular(%d) not angular", i)
		}
		if err := Predict(nil, m, nb, n, dst); err != nil {
			t.Fatalf("Angular(%d): %v", i, err)
		}
		// Prediction values must come from the borders.
		valid := map[byte]bool{}
		for j := 0; j < n; j++ {
			valid[nb.Top[j]] = true
			valid[nb.Left[j]] = true
		}
		for p, v := range dst {
			if !valid[v] {
				t.Fatalf("Angular(%d) sample %d = %d not a border sample", i, p, v)
			}
		}
	}
	if Angular(-1) != NumModes || Angular(NumAngles) != NumModes {
		t.Error("out-of-range Angular should return an invalid mode")
	}
	if err := Predict(nil, Angular(0), nb, 0, nil); err == nil {
		t.Error("angular accepted zero block size")
	}
	if Angular(0).String() != "Ang0" {
		t.Errorf("Angular(0).String() = %q", Angular(0).String())
	}
}

func TestAngularMissingBorderFallsBack(t *testing.T) {
	dst := make([]byte, 16)
	// Vertical-ish angle without a top border → flat 128.
	if err := Predict(nil, Angular(0), Neighbors{}, 4, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 128 {
			t.Fatalf("sample %d = %d, want 128 fallback", i, v)
		}
	}
}

func TestAngularDistinctFromBaseModes(t *testing.T) {
	// At least one angular mode must differ from V and H on a gradient
	// border — otherwise the extra modes add no search-space value.
	n := 8
	nb := borders(n)
	base := make([]byte, n*n)
	if err := Predict(nil, Vertical, nb, n, base); err != nil {
		t.Fatal(err)
	}
	distinct := false
	dst := make([]byte, n*n)
	for i := 0; i < NumAngles; i++ {
		if err := Predict(nil, Angular(i), nb, n, dst); err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			if dst[j] != base[j] {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Error("all angular modes identical to Vertical")
	}
}
