// Package motion implements block motion estimation: the SAD kernel and
// three search strategies (full, diamond, hexagon) over a reference
// surface. Search-strategy choice and range are preset knobs in the
// encoder models; the compare-and-update branches in the search loops
// are among the data-dependent branches the paper's CBP study exercises.
package motion

import (
	"fmt"

	"vcprof/internal/codec"
	"vcprof/internal/trace"
)

// Sites are specialized per block-size class, mirroring the per-size
// kernel specializations (sad8x8, sad16x16, …) of production encoders.
var (
	pcSADRow   = trace.Sites("motion.SAD/rowloop", 36)
	pcSADLoad  = trace.Sites("motion.SAD/refload", 36)
	pcSADCur   = trace.Sites("motion.SAD/curload", 36)
	pcBetter   = trace.Sites("motion.Search/better", 3)
	pcCandLoop = trace.Site("motion.Search/candloop")
	pcRefine   = trace.Sites("motion.Search/refineloop", 3)
	fnSAD      = trace.Func("motion.SAD")
	fnSearch   = trace.Func("motion.Search")
)

// sizeClass maps a dimension to {4,8,16,32,64,other} → 0..5.
func sizeClass(v int) int {
	switch {
	case v <= 4:
		return 0
	case v <= 8:
		return 1
	case v <= 16:
		return 2
	case v <= 32:
		return 3
	case v <= 64:
		return 4
	}
	return 5
}

func sadSite(w, h int) int { return sizeClass(w)*6 + sizeClass(h) }

// SAD returns the sum of absolute differences between the w×h block at
// (cx, cy) in cur and the block at (rx, ry) in ref. Both blocks must be
// fully inside their surfaces.
func SAD(tc *trace.Ctx, cur codec.Surface, cx, cy int, ref codec.Surface, rx, ry, w, h int) (int32, error) {
	defer tc.EndStage(tc.BeginStage(trace.StageMotion))
	if cx < 0 || cy < 0 || cx+w > cur.W || cy+h > cur.H {
		return 0, fmt.Errorf("motion: current block %d,%d %dx%d outside %dx%d", cx, cy, w, h, cur.W, cur.H)
	}
	if rx < 0 || ry < 0 || rx+w > ref.W || ry+h > ref.H {
		return 0, fmt.Errorf("motion: reference block %d,%d %dx%d outside %dx%d", rx, ry, w, h, ref.W, ref.H)
	}
	tc.Enter(fnSAD)
	var sum int32
	for j := 0; j < h; j++ {
		crow := cur.Pix[(cy+j)*cur.Stride+cx:]
		rrow := ref.Pix[(ry+j)*ref.Stride+rx:]
		for i := 0; i < w; i++ {
			d := int32(crow[i]) - int32(rrow[i])
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	if tc != nil {
		// Vectorized psadbw-style kernel. Memory traffic is reported at
		// 8-byte granularity (the scalar/SSE-width mixture Pin sees);
		// arithmetic as one abs-diff-accumulate per 16 samples, SSE-width
		// for narrow blocks; the row loop is 4x unrolled.
		sc := sadSite(w, h)
		vec := (w + 15) / 16
		tc.Loads(pcSADCur[sc], cur.VAddr(cx, cy), h*vec, cur.Stride, 16)
		tc.Loads(pcSADLoad[sc], ref.VAddr(rx, ry), h*vec, ref.Stride, 16)
		class := trace.OpAVX
		if w <= 8 {
			class = trace.OpSSE
		}
		tc.Op(class, h*((w+15)/16)+h/4+1)
		tc.Op(trace.OpOther, h/2+2)
		tc.Loop(pcSADRow[sc], (h+3)/4)
	}
	tc.Leave()
	return sum, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Result reports the outcome of a motion search.
type Result struct {
	MV     codec.MV
	Cost   int32
	Points int // candidate positions evaluated
}

// Algorithm selects a search strategy.
type Algorithm uint8

// Search strategies from cheapest to most exhaustive.
const (
	Hex Algorithm = iota
	Diamond
	Full
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Hex:
		return "hex"
	case Diamond:
		return "diamond"
	case Full:
		return "full"
	}
	return "?"
}

// Search finds the motion vector minimizing SAD for the w×h block at
// (bx, by) in cur against ref, constrained to |mv| <= rng and to
// in-frame positions. pred seeds the search (the MV predictor from
// neighbouring blocks).
func Search(tc *trace.Ctx, alg Algorithm, cur codec.Surface, bx, by int, ref codec.Surface, w, h, rng int, pred codec.MV) (Result, error) {
	defer tc.EndStage(tc.BeginStage(trace.StageMotion))
	if rng < 1 {
		return Result{}, fmt.Errorf("motion: invalid search range %d", rng)
	}
	tc.Enter(fnSearch)
	defer tc.Leave()

	clampMV := func(mv codec.MV) codec.MV {
		x, y := int(mv.X), int(mv.Y)
		if x < -rng {
			x = -rng
		} else if x > rng {
			x = rng
		}
		if y < -rng {
			y = -rng
		} else if y > rng {
			y = rng
		}
		if bx+x < 0 {
			x = -bx
		}
		if by+y < 0 {
			y = -by
		}
		if bx+x+w > ref.W {
			x = ref.W - w - bx
		}
		if by+y+h > ref.H {
			y = ref.H - h - by
		}
		return codec.MV{X: int16(x), Y: int16(y)}
	}

	best := Result{Cost: 1 << 30}
	tried := make(map[codec.MV]bool)
	eval := func(mv codec.MV) error {
		mv = clampMV(mv)
		if tried[mv] {
			return nil
		}
		tried[mv] = true
		cost, err := SAD(tc, cur, bx, by, ref, bx+int(mv.X), by+int(mv.Y), w, h)
		if err != nil {
			return err
		}
		best.Points++
		// The improvement test: genuinely data-dependent direction.
		better := cost < best.Cost
		tc.Branch(pcBetter[int(alg)%3], better)
		tc.Op(trace.OpOther, 9) // candidate bookkeeping, clamp, cost update
		tc.Stores(pcBetter[int(alg)%3], trace.ScratchBase+0x7000, 1, 8, 8)
		if better {
			best.Cost = cost
			best.MV = mv
		}
		return nil
	}

	if err := eval(clampMV(pred)); err != nil {
		return Result{}, err
	}
	if err := eval(codec.MV{}); err != nil {
		return Result{}, err
	}

	switch alg {
	case Full:
		for dy := -rng; dy <= rng; dy++ {
			for dx := -rng; dx <= rng; dx++ {
				if err := eval(codec.MV{X: int16(dx), Y: int16(dy)}); err != nil {
					return Result{}, err
				}
			}
			tc.Loop(pcCandLoop, 2*rng+1)
		}
	case Diamond:
		if err := patternSearch(tc, alg, eval, &best, largeDiamond[:], smallDiamond[:], rng); err != nil {
			return Result{}, err
		}
	case Hex:
		if err := patternSearch(tc, alg, eval, &best, hexagon[:], smallDiamond[:], rng); err != nil {
			return Result{}, err
		}
	default:
		return Result{}, fmt.Errorf("motion: unknown algorithm %d", alg)
	}
	return best, nil
}

var (
	largeDiamond = [8]codec.MV{{X: 0, Y: -2}, {X: 1, Y: -1}, {X: 2, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 2}, {X: -1, Y: 1}, {X: -2, Y: 0}, {X: -1, Y: -1}}
	hexagon      = [6]codec.MV{{X: -2, Y: 0}, {X: -1, Y: -2}, {X: 1, Y: -2}, {X: 2, Y: 0}, {X: 1, Y: 2}, {X: -1, Y: 2}}
	smallDiamond = [4]codec.MV{{X: 0, Y: -1}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: -1, Y: 0}}
)

// patternSearch iterates a coarse pattern around the best point until no
// candidate improves, then refines with a fine pattern, the classic
// EPZS/hex structure. Iterations are bounded by the search range.
func patternSearch(tc *trace.Ctx, alg Algorithm, eval func(codec.MV) error, best *Result, coarse, fine []codec.MV, rng int) error {
	for iter := 0; iter < rng; iter++ {
		center := best.MV
		prevCost := best.Cost
		for _, d := range coarse {
			if err := eval(center.Add(d)); err != nil {
				return err
			}
		}
		improved := best.Cost < prevCost
		tc.Branch(pcRefine[int(alg)%3], improved)
		if !improved {
			break
		}
	}
	for iter := 0; iter < rng; iter++ {
		center := best.MV
		prevCost := best.Cost
		for _, d := range fine {
			if err := eval(center.Add(d)); err != nil {
				return err
			}
		}
		improved := best.Cost < prevCost
		tc.Branch(pcRefine[int(alg)%3], improved)
		if !improved {
			break
		}
	}
	return nil
}
