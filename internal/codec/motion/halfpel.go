package motion

import (
	"fmt"

	"vcprof/internal/codec"
	"vcprof/internal/trace"
)

// Half-pel motion compensation: the sub-sample interpolation step every
// encoder family of the paper performs. The filter is the classic
// bilinear half-sample kernel (VP8's simple profile): averaging the two
// (or four) nearest integer samples with rounding.

var (
	pcInterp = trace.Sites("motion.Interp/rowloop", 6)
	fnInterp = trace.Func("motion.InterpHalfPel")
)

// SubPel identifies a half-sample phase: 0 = integer, 1 = half.
type SubPel struct {
	X, Y uint8
}

// Valid reports whether the phase components are 0 or 1.
func (s SubPel) Valid() bool { return s.X <= 1 && s.Y <= 1 }

// InterpHalfPel writes the w×h prediction at integer position (x, y)
// plus the half-pel phase into dst (row-major, stride w). Reads extend
// one sample right/below for half phases, so the caller must ensure
// x+w+1 <= ref.W and y+h+1 <= ref.H when a phase component is set.
func InterpHalfPel(tc *trace.Ctx, ref codec.Surface, x, y int, sub SubPel, w, h int, dst []byte) error {
	defer tc.EndStage(tc.BeginStage(trace.StageMotion))
	if !sub.Valid() {
		return fmt.Errorf("motion: invalid sub-pel phase %+v", sub)
	}
	needX, needY := w, h
	if sub.X == 1 {
		needX++
	}
	if sub.Y == 1 {
		needY++
	}
	if x < 0 || y < 0 || x+needX > ref.W || y+needY > ref.H {
		return fmt.Errorf("motion: half-pel read %d,%d %dx%d outside %dx%d", x, y, needX, needY, ref.W, ref.H)
	}
	switch {
	case sub.X == 0 && sub.Y == 0:
		for j := 0; j < h; j++ {
			copy(dst[j*w:(j+1)*w], ref.Pix[(y+j)*ref.Stride+x:(y+j)*ref.Stride+x+w])
		}
	case sub.X == 1 && sub.Y == 0:
		for j := 0; j < h; j++ {
			row := ref.Pix[(y+j)*ref.Stride+x:]
			out := dst[j*w:]
			for i := 0; i < w; i++ {
				out[i] = byte((int(row[i]) + int(row[i+1]) + 1) / 2)
			}
		}
	case sub.X == 0 && sub.Y == 1:
		for j := 0; j < h; j++ {
			rowA := ref.Pix[(y+j)*ref.Stride+x:]
			rowB := ref.Pix[(y+j+1)*ref.Stride+x:]
			out := dst[j*w:]
			for i := 0; i < w; i++ {
				out[i] = byte((int(rowA[i]) + int(rowB[i]) + 1) / 2)
			}
		}
	default: // diagonal half-pel
		for j := 0; j < h; j++ {
			rowA := ref.Pix[(y+j)*ref.Stride+x:]
			rowB := ref.Pix[(y+j+1)*ref.Stride+x:]
			out := dst[j*w:]
			for i := 0; i < w; i++ {
				out[i] = byte((int(rowA[i]) + int(rowA[i+1]) + int(rowB[i]) + int(rowB[i+1]) + 2) / 4)
			}
		}
	}
	if tc != nil {
		tc.Enter(fnInterp)
		sc := sizeClass(w)
		vec := (w + 15) / 16
		taps := 1 + int(sub.X) + int(sub.Y)
		tc.Loads(pcInterp[sc], ref.VAddr(x, y), h*vec*taps, ref.Stride, 16)
		tc.Stores(pcInterp[sc], trace.ScratchBase+0x7800, h*vec, 16, 16)
		tc.Op(trace.OpAVX, h*((w+15)/16)*taps+2)
		tc.Op(trace.OpOther, h/2+2)
		tc.Loop(pcInterp[sc], (h+3)/4)
		tc.Leave()
	}
	return nil
}
