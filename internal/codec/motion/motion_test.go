package motion

import (
	"math"
	"testing"

	"vcprof/internal/codec"
	"vcprof/internal/trace"
	"vcprof/internal/video"
)

func mexp(x float64) float64 { return math.Exp(x) }

// shiftedPair builds a current surface that equals the reference
// translated by (dx, dy), so the true motion vector is known.
func shiftedPair(t *testing.T, w, h, dx, dy int) (cur, ref codec.Surface) {
	t.Helper()
	as := trace.NewAddressSpace()
	refP := video.NewPlane(w, h)
	curP := video.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// A smooth radial blob: the SAD between shifted copies grows
			// monotonically with shift distance, so both exhaustive and
			// gradient-descent pattern searches can find the true shift.
			dx := float64(x - w/2)
			dy := float64(y - h/2)
			d2 := dx*dx + dy*dy
			refP.Set(x, y, byte(30+220*mexp(-d2/float64(w*h/8))))
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := x+dx, y+dy
			if sx < 0 {
				sx = 0
			} else if sx >= w {
				sx = w - 1
			}
			if sy < 0 {
				sy = 0
			} else if sy >= h {
				sy = h - 1
			}
			curP.Set(x, y, refP.At(sx, sy))
		}
	}
	var err error
	ref, err = codec.WrapSurface(as, "ref", refP)
	if err != nil {
		t.Fatal(err)
	}
	cur, err = codec.WrapSurface(as, "cur", curP)
	if err != nil {
		t.Fatal(err)
	}
	return cur, ref
}

func TestSADIdenticalBlocksIsZero(t *testing.T) {
	cur, ref := shiftedPair(t, 64, 64, 0, 0)
	got, err := SAD(nil, cur, 16, 16, ref, 16, 16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("SAD of identical blocks = %d, want 0", got)
	}
}

func TestSADBoundsChecking(t *testing.T) {
	cur, ref := shiftedPair(t, 32, 32, 0, 0)
	if _, err := SAD(nil, cur, 20, 20, ref, 0, 0, 16, 16); err == nil {
		t.Error("SAD accepted out-of-bounds current block")
	}
	if _, err := SAD(nil, cur, 0, 0, ref, 20, 20, 16, 16); err == nil {
		t.Error("SAD accepted out-of-bounds reference block")
	}
	if _, err := SAD(nil, cur, -1, 0, ref, 0, 0, 16, 16); err == nil {
		t.Error("SAD accepted negative current origin")
	}
}

func TestFullSearchFindsExactShift(t *testing.T) {
	dx, dy := 3, -2
	cur, ref := shiftedPair(t, 96, 96, dx, dy)
	res, err := Search(nil, Full, cur, 32, 32, ref, 16, 16, 8, codec.MV{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MV.X != int16(dx) || res.MV.Y != int16(dy) {
		t.Errorf("full search MV = (%d,%d), want (%d,%d)", res.MV.X, res.MV.Y, dx, dy)
	}
	if res.Cost != 0 {
		t.Errorf("full search cost = %d, want 0 for exact match", res.Cost)
	}
	if res.Points < (2*8+1)*(2*8+1) {
		t.Errorf("full search evaluated %d points, want full window %d", res.Points, 17*17)
	}
}

func TestPatternSearchesFindShiftFromPredictor(t *testing.T) {
	dx, dy := 5, 4
	cur, ref := shiftedPair(t, 96, 96, dx, dy)
	for _, alg := range []Algorithm{Diamond, Hex} {
		res, err := Search(nil, alg, cur, 32, 32, ref, 16, 16, 12, codec.MV{X: 3, Y: 3})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.MV.X != int16(dx) || res.MV.Y != int16(dy) {
			t.Errorf("%v MV = (%d,%d), want (%d,%d)", alg, res.MV.X, res.MV.Y, dx, dy)
		}
	}
}

func TestPatternSearchCheaperThanFull(t *testing.T) {
	cur, ref := shiftedPair(t, 96, 96, 2, 1)
	full, err := Search(nil, Full, cur, 32, 32, ref, 16, 16, 12, codec.MV{})
	if err != nil {
		t.Fatal(err)
	}
	hex, err := Search(nil, Hex, cur, 32, 32, ref, 16, 16, 12, codec.MV{})
	if err != nil {
		t.Fatal(err)
	}
	if hex.Points*4 > full.Points {
		t.Errorf("hex evaluated %d points vs full %d; want at least 4x cheaper", hex.Points, full.Points)
	}
}

func TestSearchClampsToFrame(t *testing.T) {
	cur, ref := shiftedPair(t, 48, 48, 0, 0)
	// Block at the frame corner: large search range must not read
	// outside the reference.
	res, err := Search(nil, Diamond, cur, 0, 0, ref, 16, 16, 16, codec.MV{X: -10, Y: -10})
	if err != nil {
		t.Fatal(err)
	}
	if res.MV.X < 0 || res.MV.Y < 0 {
		t.Errorf("corner-block MV = (%d,%d) points outside frame", res.MV.X, res.MV.Y)
	}
}

func TestSearchValidation(t *testing.T) {
	cur, ref := shiftedPair(t, 48, 48, 0, 0)
	if _, err := Search(nil, Full, cur, 0, 0, ref, 16, 16, 0, codec.MV{}); err == nil {
		t.Error("accepted zero search range")
	}
	if _, err := Search(nil, Algorithm(9), cur, 0, 0, ref, 16, 16, 4, codec.MV{}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestSearchInstrumentationEmitsMemAndBranches(t *testing.T) {
	cur, ref := shiftedPair(t, 96, 96, 1, 1)
	tc := trace.New()
	if _, err := Search(tc, Diamond, cur, 32, 32, ref, 16, 16, 8, codec.MV{}); err != nil {
		t.Fatal(err)
	}
	if tc.Mix[trace.OpLoad] == 0 {
		t.Error("search reported no loads")
	}
	if tc.Mix[trace.OpBranch] == 0 {
		t.Error("search reported no branches")
	}
	if tc.Mix[trace.OpAVX] == 0 {
		t.Error("search reported no vector SAD work")
	}
}

func TestAlgorithmString(t *testing.T) {
	if Hex.String() != "hex" || Diamond.String() != "diamond" || Full.String() != "full" || Algorithm(9).String() != "?" {
		t.Error("algorithm names wrong")
	}
}

func TestInterpHalfPelPhases(t *testing.T) {
	as := trace.NewAddressSpace()
	p := video.NewPlane(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			p.Set(x, y, byte(10*y+x))
		}
	}
	ref, err := codec.WrapSurface(as, "hp", p)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4)
	// Integer phase copies.
	if err := InterpHalfPel(nil, ref, 1, 1, SubPel{}, 2, 2, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != p.At(1, 1) || dst[3] != p.At(2, 2) {
		t.Errorf("integer phase wrong: %v", dst)
	}
	// Horizontal half: average of left/right with rounding.
	if err := InterpHalfPel(nil, ref, 1, 1, SubPel{X: 1}, 2, 2, dst); err != nil {
		t.Fatal(err)
	}
	want := byte((int(p.At(1, 1)) + int(p.At(2, 1)) + 1) / 2)
	if dst[0] != want {
		t.Errorf("horizontal half = %d, want %d", dst[0], want)
	}
	// Vertical half.
	if err := InterpHalfPel(nil, ref, 1, 1, SubPel{Y: 1}, 2, 2, dst); err != nil {
		t.Fatal(err)
	}
	want = byte((int(p.At(1, 1)) + int(p.At(1, 2)) + 1) / 2)
	if dst[0] != want {
		t.Errorf("vertical half = %d, want %d", dst[0], want)
	}
	// Diagonal half: 4-sample average.
	if err := InterpHalfPel(nil, ref, 1, 1, SubPel{X: 1, Y: 1}, 2, 2, dst); err != nil {
		t.Fatal(err)
	}
	want = byte((int(p.At(1, 1)) + int(p.At(2, 1)) + int(p.At(1, 2)) + int(p.At(2, 2)) + 2) / 4)
	if dst[0] != want {
		t.Errorf("diagonal half = %d, want %d", dst[0], want)
	}
}

func TestInterpHalfPelBounds(t *testing.T) {
	as := trace.NewAddressSpace()
	ref, err := codec.WrapSurface(as, "hpb", video.NewPlane(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 16)
	// A half phase at the right edge needs one extra column.
	if err := InterpHalfPel(nil, ref, 4, 0, SubPel{X: 1}, 4, 4, dst); err == nil {
		t.Error("accepted half-pel read past the right edge")
	}
	if err := InterpHalfPel(nil, ref, 4, 4, SubPel{}, 4, 4, dst); err != nil {
		t.Errorf("integer phase at the edge rejected: %v", err)
	}
	if err := InterpHalfPel(nil, ref, 0, 0, SubPel{X: 3}, 4, 4, dst); err == nil {
		t.Error("accepted invalid phase")
	}
}

func TestInterpHalfPelInstrumented(t *testing.T) {
	as := trace.NewAddressSpace()
	ref, err := codec.WrapSurface(as, "hpi", video.NewPlane(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	tc := trace.New()
	dst := make([]byte, 16*16)
	if err := InterpHalfPel(tc, ref, 2, 2, SubPel{X: 1, Y: 1}, 16, 16, dst); err != nil {
		t.Fatal(err)
	}
	if tc.Mix[trace.OpAVX] == 0 || tc.Mix[trace.OpLoad] == 0 {
		t.Errorf("interpolation reported no work: %+v", tc.Mix)
	}
}
