package obs_test

import (
	"sync"
	"testing"

	"vcprof/internal/obs"
)

// TestHistogramBucketPlacement pins the bucket edge semantics: bounds
// are inclusive upper edges, values above the last bound land in +Inf.
func TestHistogramBucketPlacement(t *testing.T) {
	h := obs.NewHistogram("test.hist.placement", []uint64{10, 20, 40})
	defer obs.ResetHistograms()
	for _, v := range []uint64{0, 10, 11, 20, 39, 40, 41, 1000} {
		h.Observe(v)
	}
	v := h.Snapshot()
	want := []uint64{2, 2, 2, 2} // (..10], (10..20], (20..40], +Inf
	for i, c := range v.Counts {
		if c != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, c, want[i])
		}
	}
	if v.Count != 8 || h.Count() != 8 {
		t.Errorf("count %d/%d, want 8", v.Count, h.Count())
	}
	if wantSum := uint64(0 + 10 + 11 + 20 + 39 + 40 + 41 + 1000); v.Sum != wantSum {
		t.Errorf("sum %d, want %d", v.Sum, wantSum)
	}
}

// TestHistogramNilSafe pins the disabled-histogram contract: every
// method on a nil receiver is a no-op (FindHistogram returns nil for
// unknown names, and call sites never re-check).
func TestHistogramNilSafe(t *testing.T) {
	var h *obs.Histogram
	h.Observe(7)
	if h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("nil histogram reported observations")
	}
	if got := obs.FindHistogram("test.hist.never-registered"); got != nil {
		t.Fatalf("FindHistogram of unknown name = %v, want nil", got)
	}
}

// TestHistogramRegistry pins registration semantics: same name, same
// instance; volatile histograms are excluded from the deterministic
// listing; the listing is sorted by name.
func TestHistogramRegistry(t *testing.T) {
	defer obs.ResetHistograms()
	a := obs.NewHistogram("test.hist.reg.det", []uint64{1, 2})
	if same := obs.NewHistogram("test.hist.reg.det", []uint64{9, 10}); same != a {
		t.Fatal("re-registration returned a different instance")
	}
	vol := obs.NewVolatileHistogram("test.hist.reg.vol", []uint64{1, 2})
	a.Observe(1)
	vol.Observe(1)
	if obs.FindHistogram("test.hist.reg.det") != a {
		t.Fatal("FindHistogram missed a registered histogram")
	}
	names := func(vs []obs.HistogramValue) map[string]bool {
		m := make(map[string]bool, len(vs))
		for _, v := range vs {
			m[v.Name] = true
		}
		return m
	}
	det := obs.Histograms(false)
	if m := names(det); m["test.hist.reg.vol"] || !m["test.hist.reg.det"] {
		t.Errorf("deterministic listing wrong: %v", m)
	}
	all := obs.Histograms(true)
	if m := names(all); !m["test.hist.reg.vol"] {
		t.Error("volatile histogram missing from full listing")
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("listing not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
}

// TestHistogramPanicsOnBadBounds pins the init-time guard histbuckets
// lints for.
func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]uint64{
		"test.hist.empty":      {},
		"test.hist.flat":       {5, 5},
		"test.hist.descending": {5, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v: no panic", bounds)
				}
			}()
			obs.NewHistogram(name, bounds)
		}()
	}
}

// TestHistogramReset zeroes contents but keeps the registration.
func TestHistogramReset(t *testing.T) {
	h := obs.NewHistogram("test.hist.reset", []uint64{1, 2})
	h.Observe(1)
	obs.ResetHistograms()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("reset left observations behind")
	}
	if obs.FindHistogram("test.hist.reset") != h {
		t.Fatal("reset dropped the registration")
	}
}

// TestHistogramQuantile pins the interpolation estimate: monotone in
// q, covered by the bucket edges, saturating at the largest finite
// bound for the +Inf bucket, and 0 on empty.
func TestHistogramQuantile(t *testing.T) {
	if (obs.HistogramValue{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h := obs.NewHistogram("test.hist.quantile", []uint64{10, 100, 1000})
	defer obs.ResetHistograms()
	rng := splitmixState(42)
	for i := 0; i < 5000; i++ {
		h.Observe(rng.next() % 2000)
	}
	v := h.Snapshot()
	var prev uint64
	for q := 0.01; q <= 1.0; q += 0.01 {
		cur := v.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone: q=%.2f gives %d after %d", q, cur, prev)
		}
		prev = cur
	}
	if p50, p99 := v.Quantile(0.50), v.Quantile(0.99); p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
	if got := v.Quantile(1.0); got > 1000 {
		t.Fatalf("quantile saturates above the largest finite bound: %d", got)
	}
}

// TestHistogramConcurrentHammer drives concurrent Observe against
// concurrent Snapshot under -race: the final tallies must equal the
// offered load exactly (atomic adds lose nothing), and every mid-flight
// snapshot must be internally sane (count = sum of buckets).
func TestHistogramConcurrentHammer(t *testing.T) {
	h := obs.NewVolatileHistogram("test.hist.hammer", []uint64{8, 64, 512})
	defer obs.ResetHistograms()
	const (
		writers = 8
		perG    = 5000
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: snapshots must never tear structurally
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := h.Snapshot()
			var n uint64
			for _, c := range v.Counts {
				n += c
			}
			if n != v.Count {
				t.Errorf("snapshot count %d != bucket sum %d", v.Count, n)
				return
			}
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(seed uint64) {
			defer writersWG.Done()
			rng := splitmixState(seed)
			for i := 0; i < perG; i++ {
				h.Observe(rng.next() % 1024)
			}
		}(uint64(g + 1))
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := h.Count(); got != writers*perG {
		t.Fatalf("count %d, want %d", got, writers*perG)
	}
}

// splitmix is the repo's deterministic test PRNG (splitmix64) — no
// math/rand, per the detrand invariant.
type splitmixState uint64

func (s *splitmixState) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
