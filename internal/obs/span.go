package obs

// Trace records a hierarchy of spans on one goroutine against a virtual
// clock. A nil *Trace is the disabled tracer: every method is a no-op
// with no allocation, so instrumentation sites never need their own
// enable checks. A non-nil Trace is NOT safe for concurrent use; each
// goroutine (or each deterministic assembly pass) gets its own, usually
// via Session.Lane.
type Trace struct {
	now   uint64
	spans []spanRec
	open  []int32
}

// spanRec is one recorded span. parent indexes spans (-1 for roots);
// records are append-only, so recording order is a valid topological
// order and — because assembly passes are sequential — deterministic.
type spanRec struct {
	name   NameID
	arg    string
	start  uint64
	dur    uint64
	parent int32
}

// Span is a handle to an open span. The zero Span (from a nil Trace)
// is valid and End on it is a no-op.
type Span struct {
	t   *Trace
	idx int32
}

// NewTrace returns an enabled tracer starting at tick 0.
func NewTrace() *Trace { return &Trace{} }

// Now returns the current virtual tick.
func (t *Trace) Now() uint64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Advance moves the virtual clock forward by a modeled quantity
// (instructions, simulated cycles, recorded micro-ops — never host
// time).
func (t *Trace) Advance(ticks uint64) {
	if t == nil {
		return
	}
	t.now += ticks
}

// Begin opens a span at the current tick, nested under the innermost
// open span.
func (t *Trace) Begin(name NameID) Span {
	return t.BeginArg(name, "")
}

// BeginArg opens a span carrying a free-form argument (shown in the
// Chrome trace's args panel). Callers on possibly-disabled paths should
// not build arg strings eagerly; check Enabled first or pass "".
func (t *Trace) BeginArg(name NameID, arg string) Span {
	if t == nil {
		return Span{}
	}
	parent := int32(-1)
	if n := len(t.open); n > 0 {
		parent = t.open[n-1]
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanRec{name: name, arg: arg, start: t.now, parent: parent})
	t.open = append(t.open, idx)
	return Span{t: t, idx: idx}
}

// Enabled reports whether the tracer records anything. Use it to skip
// building expensive span arguments on disabled paths.
func (t *Trace) Enabled() bool { return t != nil }

// End closes the span at the current tick. Spans opened after s and
// not yet ended are closed implicitly (truncated at the same tick), so
// a missed End cannot corrupt the hierarchy.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	for len(t.open) > 0 {
		top := t.open[len(t.open)-1]
		t.open = t.open[:len(t.open)-1]
		r := &t.spans[top]
		r.dur = t.now - r.start
		if top == s.idx {
			return
		}
	}
}

// SpanCount reports the number of recorded spans (closed or open).
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}
