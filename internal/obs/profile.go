package obs

import (
	"fmt"
	"strings"
)

// ProfileRow aggregates all spans sharing a name: how many ran, their
// inclusive tick total, and the exclusive total (inclusive minus ticks
// covered by child spans) — the flat self-profile the paper's gprof
// runs produce for the encoders, applied to vcprof itself.
type ProfileRow struct {
	Name  string
	Count int
	Incl  uint64
	Excl  uint64
}

// Profile aggregates every lane of the session into per-name rows
// sorted by inclusive ticks (descending, name as tie-break), so the
// output is deterministic for deterministic traces.
func (s *Session) Profile() []ProfileRow { return ProfileOf(s) }

// RenderProfile returns the aligned top-N self-profile table. topN <= 0
// means all rows.
func RenderProfile(rows []ProfileRow, topN int) string {
	var total uint64
	for _, r := range rows {
		total += r.Excl
	}
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	w := len("span")
	for _, r := range rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== obs: self-profile (top %d spans by inclusive ticks) ==\n", len(rows))
	fmt.Fprintf(&b, "%-*s  %10s  %14s  %14s  %6s\n", w, "span", "count", "incl.ticks", "excl.ticks", "excl%")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Excl) / float64(total)
		}
		fmt.Fprintf(&b, "%-*s  %10d  %14d  %14d  %6.2f\n", w, r.Name, r.Count, r.Incl, r.Excl, pct)
	}
	return b.String()
}
