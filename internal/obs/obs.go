// Package obs is vcprof's self-observation layer: a hierarchical span
// tracer and a process-wide counter registry, both byte-deterministic.
//
// The paper's method is instrumentation all the way down — Pin-like
// traces, perf-like counters, gprof-like profiles — and this package
// applies the same discipline to vcprof itself: where does a sweep's
// time go (motion search? the range coder? the cache simulator? memo
// misses in harness.RunAll)?
//
// Determinism contract (DESIGN.md §7): span timestamps are virtual.
// A Trace owns a monotonic tick counter advanced only by Advance with
// modeled quantities (instructions, simulated cycles, recorded ops) —
// never by the host clock — so the Chrome trace export and the
// self-profile table are byte-identical across runs, hosts and worker
// counts, and can be golden-tested exactly like the harness tables.
// The one wall-clock adapter lives in realclock.go, is allowlisted for
// vclint's detnow analyzer, and is only for cmd/ front-ends narrating
// progress to humans.
//
// Counters split into two domains: deterministic counters (cache
// hits/misses, simulated uarch events) appear in exports and goldens;
// volatile counters (worker occupancy, anything scheduling-dependent)
// are declared with NewVolatileCounter and surface only in the human
// -stats section, never in byte-compared output.
//
// Disabled-path cost: every method is a cheap no-op on a nil *Trace or
// nil *Session — one predictable branch, zero allocations — so
// instrumented code paths need no conditionals of their own. The
// overhead guard in overhead_test.go enforces 0 allocs/op and keeps the
// no-op span under a few nanoseconds.
package obs

import "sync"

// NameID is an interned span name. Interning keeps Begin calls
// allocation-free and makes name comparisons integer comparisons.
type NameID int32

var names = struct {
	sync.Mutex
	byName map[string]NameID
	list   []string
}{byName: make(map[string]NameID)}

// Name interns a span name. Typically called once from package var
// initializers; the returned ID is valid for the process lifetime.
func Name(s string) NameID {
	names.Lock()
	defer names.Unlock()
	if id, ok := names.byName[s]; ok {
		return id
	}
	id := NameID(len(names.list))
	names.list = append(names.list, s)
	names.byName[s] = id
	return id
}

// nameString resolves an interned ID ("?" for unknown IDs).
func nameString(id NameID) string {
	names.Lock()
	defer names.Unlock()
	if id < 0 || int(id) >= len(names.list) {
		return "?"
	}
	return names.list[id]
}
