package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestHopLogNilIsDisabled(t *testing.T) {
	var l *HopLog
	l.Emit(HopEvent{Trace: "j-x", Kind: HopExec}) // must not panic
	if got := l.Slice("j-x"); got != nil {
		t.Fatalf("nil log Slice = %v, want nil", got)
	}
	if got := l.Proc(); got != "" {
		t.Fatalf("nil log Proc = %q, want empty", got)
	}
}

func TestHopLogEmitAndSlice(t *testing.T) {
	l := NewHopLog("s0", 4)
	l.Emit(HopEvent{Trace: "j-a", Kind: HopAdmitted})
	l.Emit(HopEvent{Trace: "j-a", Kind: HopExec, Arg: "deadbeef", Dur: 42})
	l.Emit(HopEvent{Kind: HopExec}) // no trace: dropped
	l.Emit(HopEvent{Trace: "j-a"})  // no kind: dropped
	l.Emit(HopEvent{Trace: "j-a", Kind: HopExec, Start: 99, Proc: "spoof"})

	evs := l.Slice("j-a")
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(evs), evs)
	}
	for _, ev := range evs {
		if ev.Proc != "s0" {
			t.Errorf("event proc = %q, want stamped %q", ev.Proc, "s0")
		}
		if ev.Start != 0 {
			t.Errorf("event start = %d, want 0 (merge-time field)", ev.Start)
		}
	}
	// Slice returns a copy: mutating it must not corrupt the log.
	evs[0].Kind = "mutated"
	if l.Slice("j-a")[0].Kind != HopAdmitted {
		t.Fatal("Slice aliases the log's backing array")
	}
}

func TestHopLogEvictsOldestTrace(t *testing.T) {
	l := NewHopLog("s0", 2)
	l.Emit(HopEvent{Trace: "j-1", Kind: HopExec})
	l.Emit(HopEvent{Trace: "j-2", Kind: HopExec})
	l.Emit(HopEvent{Trace: "j-3", Kind: HopExec})
	if got := l.Slice("j-1"); got != nil {
		t.Fatalf("oldest trace survived eviction: %v", got)
	}
	if l.Slice("j-2") == nil || l.Slice("j-3") == nil {
		t.Fatal("recent traces evicted")
	}
}

func TestTraceIDs(t *testing.T) {
	key := "0123456789abcdef0123456789abcdef"
	if got := JobTraceID(key); got != "j-0123456789abcdef" {
		t.Errorf("JobTraceID = %q", got)
	}
	if got := SessionTraceID(key); got != "s-0123456789abcdef" {
		t.Errorf("SessionTraceID = %q", got)
	}
	for id, want := range map[string]bool{
		"j-0123456789abcdef":    true,
		"s-ab.c_d":              true,
		"":                      false,
		"UPPER":                 false,
		"has space":             false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
	} {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceContextFrom(ctx); ok {
		t.Fatal("empty context claims a trace")
	}
	ctx = WithTraceContext(ctx, TraceContext{Trace: "j-x"})
	tc, ok := TraceContextFrom(ctx)
	if !ok || tc.Trace != "j-x" {
		t.Fatalf("round-trip = %+v, %v", tc, ok)
	}
}

// TestMergeHopsDedupsReplays pins the tentpole invariant: the same
// content-addressed work observed by several processes (shard, gate
// mirror, failover replay) collapses to one deterministic hop, and the
// merged deterministic view is independent of slice order and of which
// subset of witnesses survived.
func TestMergeHopsDedupsReplays(t *testing.T) {
	exec := HopEvent{Trace: "j-a", Kind: HopExec, Arg: "deadbeef", Dur: 100}
	adm := HopEvent{Trace: "j-a", Kind: HopAdmitted}
	gop0 := HopEvent{Trace: "s-a", Kind: HopGOP, Seq: 0, Arg: "d0", Dur: 10}
	gop1 := HopEvent{Trace: "s-a", Kind: HopGOP, Seq: 1, Arg: "d1", Dur: 20}

	stamp := func(ev HopEvent, proc string) HopEvent {
		ev.Proc = proc
		return ev
	}
	shard := []HopEvent{stamp(adm, "s0"), stamp(exec, "s0"), stamp(gop0, "s0"), stamp(gop1, "s0")}
	gate := []HopEvent{stamp(adm, "gate"), stamp(exec, "gate"), stamp(gop0, "gate"), stamp(gop1, "gate")}
	replay := []HopEvent{stamp(gop1, "s1")} // failover re-encode of the last GOP

	merged := MergeHops([][]HopEvent{shard, gate, replay}, false)
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4 deduped: %+v", len(merged), merged)
	}
	for _, ev := range merged {
		if ev.Proc != "" || ev.StartMS != 0 {
			t.Errorf("det hop kept placement fields: %+v", ev)
		}
	}
	// Per-kind lanes carry cumulative virtual clocks.
	if merged[2].Kind != HopGOP || merged[2].Start != 0 {
		t.Errorf("gop0 start = %d, want 0 (%+v)", merged[2].Start, merged[2])
	}
	if merged[3].Kind != HopGOP || merged[3].Start != 11 {
		t.Errorf("gop1 start = %d, want 11 = dur0+1 (%+v)", merged[3].Start, merged[3])
	}

	// Any permutation, any surviving subset with full content coverage:
	// identical bytes.
	want := renderHops(t, merged)
	for _, slices := range [][][]HopEvent{
		{gate, shard, replay},
		{replay, gate, shard},
		{gate, {stamp(gop0, "s1")}}, // shard killed; gate mirror covers
	} {
		if got := renderHops(t, MergeHops(slices, false)); got != want {
			t.Errorf("merge not byte-stable:\n got %q\nwant %q", got, want)
		}
	}
}

func TestMergeHopsVolatileView(t *testing.T) {
	route := HopEvent{Trace: "j-a", Kind: HopRoute, Arg: "s0", Proc: "gate", StartMS: 1000}
	hedge := HopEvent{Trace: "j-a", Kind: HopHedgeFired, Arg: "s1", Proc: "gate", StartMS: 1500}
	wait := HopEvent{Trace: "j-a", Kind: HopQueueWait, Dur: 3, Proc: "s0", StartMS: 1200}
	exec := HopEvent{Trace: "j-a", Kind: HopExec, Arg: "k", Dur: 5, Proc: "s0"}

	merged := MergeHops([][]HopEvent{{route, hedge}, {wait, exec}}, true)
	if len(merged) != 4 {
		t.Fatalf("merged %d events, want 4: %+v", len(merged), merged)
	}
	// Deterministic events lead; volatile follow in wall order, rebased
	// to the earliest stamp.
	if merged[0].Kind != HopExec {
		t.Fatalf("det hop not first: %+v", merged)
	}
	wantOrder := []string{HopRoute, HopQueueWait, HopHedgeFired}
	wantStart := []uint64{0, 200, 500}
	for i, ev := range merged[1:] {
		if ev.Kind != wantOrder[i] || ev.Start != wantStart[i] {
			t.Errorf("volatile[%d] = %s@%d, want %s@%d", i, ev.Kind, ev.Start, wantOrder[i], wantStart[i])
		}
		if ev.Proc == "" {
			t.Errorf("volatile hop lost its proc: %+v", ev)
		}
	}

	// The deterministic view excludes every volatile hop.
	if det := MergeHops([][]HopEvent{{route, hedge}, {wait, exec}}, false); len(det) != 1 {
		t.Fatalf("det view has %d events, want 1: %+v", len(det), det)
	}
}

func TestHopVolatileUnknownKind(t *testing.T) {
	if !HopVolatile("some-future-kind") {
		t.Fatal("unknown kinds must default to volatile, never into byte-pinned merges")
	}
}

func TestWriteHopTraceShape(t *testing.T) {
	events := MergeHops([][]HopEvent{{
		{Trace: "j-a", Kind: HopAdmitted, Proc: "s0"},
		{Trace: "j-a", Kind: HopExec, Arg: "k", Dur: 7, Proc: "s0"},
		{Trace: "j-a", Kind: HopRoute, Arg: "s0", Proc: "gate", StartMS: 5},
	}}, true)
	out := renderHops(t, events)
	for _, want := range []string{
		`"name":"thread_name"`, `"name":"admitted#0"`, `"name":"exec#0"`,
		`"name":"route#0"`, `"pid":1`, `"pid":2`, `"displayTimeUnit":"ns"`,
		`"trace":"j-a"`, `"proc":"gate"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"proc":"s0"`) {
		t.Errorf("deterministic hop leaked proc label:\n%s", out)
	}
}

func renderHops(t *testing.T, events []HopEvent) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteHopTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// BenchmarkHopEmit measures the enabled hop-log hot path: one volatile
// event appended to an existing trace under the log's lock.
func BenchmarkHopEmit(b *testing.B) {
	l := NewHopLog("s0", 4)
	ev := HopEvent{Trace: "j-bench", Kind: HopQueueWait, Dur: 3, StartMS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(ev)
	}
}

// BenchmarkHopEmitDisabled pins the nil-log cost: serving builds that
// never enable tracing must pay only a nil check per hop site.
func BenchmarkHopEmitDisabled(b *testing.B) {
	var l *HopLog
	ev := HopEvent{Trace: "j-bench", Kind: HopQueueWait, Dur: 3, StartMS: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(ev)
	}
}

// BenchmarkMergeHops measures the gate-side merge of a replicated
// session's slices: 3 witnesses x 64 GOP hops deduped and laid out.
func BenchmarkMergeHops(b *testing.B) {
	var slices [][]HopEvent
	for w := 0; w < 3; w++ {
		var s []HopEvent
		s = append(s, HopEvent{Trace: "s-bench", Kind: HopSessionOpen, Arg: "k", Proc: "s0"})
		for g := 0; g < 64; g++ {
			s = append(s, HopEvent{
				Trace: "s-bench", Kind: HopGOP, Seq: uint64(g),
				Arg: "digest", Dur: uint64(1000 + g), Proc: "s0",
			})
		}
		slices = append(slices, s)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := MergeHops(slices, false); len(got) != 65 {
			b.Fatalf("merged %d events, want 65", len(got))
		}
	}
}
