package obs

import "time"

// RealClock is the one bridge between obs and host time, for cmd/
// front-ends that want to narrate progress to a human alongside the
// deterministic virtual-tick traces.
//
// Contract (DESIGN.md §7, enforced by vclint's detnow allowlist on this
// file only): nothing under internal/ may feed RealClock readings into
// a Trace, a Counter or any rendered table — those must stay virtual.
// RealClock output is operator chrome, like harness.Report.Wall.
type RealClock struct{ start time.Time }

// StartRealClock begins a wall-clock measurement.
func StartRealClock() *RealClock {
	return &RealClock{start: time.Now()}
}

// ElapsedSeconds reports host seconds since the start.
func (r *RealClock) ElapsedSeconds() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.start).Seconds()
}
