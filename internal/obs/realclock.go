package obs

import "time"

// RealClock is the one bridge between obs and host time, for cmd/
// front-ends that want to narrate progress to a human alongside the
// deterministic virtual-tick traces.
//
// Contract (DESIGN.md §7, enforced by vclint): nothing under internal/
// may feed RealClock readings into a Trace, a Counter or any rendered
// table — those must stay virtual. RealClock output is operator
// chrome, like harness.Report.Wall. The two functions below carry
// function-level //lint:ignore directives as the sanctioned wall-clock
// bridge; detflow additionally proves the readings never reach a
// deterministic root's call tree.
type RealClock struct{ start time.Time }

// StartRealClock begins a wall-clock measurement.
//
//lint:ignore detnow sanctioned wall-clock bridge for cmd/ progress narration; never feeds traces, counters or tables
func StartRealClock() *RealClock {
	return &RealClock{start: time.Now()}
}

// ElapsedSeconds reports host seconds since the start.
//
//lint:ignore detnow sanctioned wall-clock bridge for cmd/ progress narration; never feeds traces, counters or tables
func (r *RealClock) ElapsedSeconds() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.start).Seconds()
}
