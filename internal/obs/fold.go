package obs

import (
	"fmt"
	"io"
	"sort"
)

// FoldedLine is one flamegraph.pl-compatible folded-stack row: the
// semicolon-joined ancestor chain and the exclusive virtual ticks
// attributed to exactly that chain.
type FoldedLine struct {
	Stack string
	Ticks uint64
}

// FoldedProfile derives folded stacks from the recorded span trees of
// the given sessions. Every span contributes its exclusive ticks
// (inclusive minus ticks covered by children) to the stack named by
// its ancestor chain, and identical chains aggregate across lanes and
// sessions. Because span trees are recorded against the virtual-tick
// clock, the folded output is deterministic for deterministic runs —
// the continuous profiler needs no wall-clock sampler, it replays the
// clock the traces already carry. Zero-tick stacks are dropped (they
// would render as empty frames). Lines are sorted by stack string.
func FoldedProfile(sessions ...*Session) []FoldedLine {
	acc := make(map[string]uint64)
	for _, s := range sessions {
		for _, ln := range s.snapshot() {
			foldLane(ln.tr, acc)
		}
	}
	out := make([]FoldedLine, 0, len(acc))
	for stack, ticks := range acc {
		out = append(out, FoldedLine{Stack: stack, Ticks: ticks})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stack < out[j].Stack })
	return out
}

func foldLane(tr *Trace, acc map[string]uint64) {
	if tr == nil || len(tr.spans) == 0 {
		return
	}
	spans := tr.spans
	childSum := make([]uint64, len(spans))
	for _, r := range spans {
		if r.parent >= 0 {
			childSum[r.parent] += r.dur
		}
	}
	// Records are append-only, so a span's parent always precedes it
	// and one forward pass can build every ancestor path.
	paths := make([]string, len(spans))
	for i, r := range spans {
		if r.parent < 0 {
			paths[i] = nameString(r.name)
		} else {
			paths[i] = paths[r.parent] + ";" + nameString(r.name)
		}
		if excl := r.dur - childSum[i]; excl > 0 {
			acc[paths[i]] += excl
		}
	}
}

// WriteFolded writes the lines in flamegraph.pl input format:
// "stack;frames count\n" per row.
func WriteFolded(w io.Writer, lines []FoldedLine) error {
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.Stack, l.Ticks); err != nil {
			return err
		}
	}
	return nil
}

// ProfileOf aggregates the flat self-profile across several sessions
// (see Session.Profile). The daemon uses it to merge its long-lived
// worker board with the per-job sessions adopted after each traced
// job completes.
func ProfileOf(sessions ...*Session) []ProfileRow {
	acc := make(map[NameID]*ProfileRow)
	var order []NameID
	for _, s := range sessions {
		for _, ln := range s.snapshot() {
			spans := ln.tr.spans
			childSum := make([]uint64, len(spans))
			for _, r := range spans {
				if r.parent >= 0 {
					childSum[r.parent] += r.dur
				}
			}
			for i, r := range spans {
				row := acc[r.name]
				if row == nil {
					row = &ProfileRow{Name: nameString(r.name)}
					acc[r.name] = row
					order = append(order, r.name)
				}
				row.Count++
				row.Incl += r.dur
				row.Excl += r.dur - childSum[i]
			}
		}
	}
	rows := make([]ProfileRow, 0, len(order))
	for _, id := range order {
		rows = append(rows, *acc[id])
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Incl != rows[j].Incl {
			return rows[i].Incl > rows[j].Incl
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}
