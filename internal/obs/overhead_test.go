package obs

import "testing"

// The disabled path is the contract that lets every kernel and engine
// call site keep its obs hook unconditionally: with no Session attached
// the Trace pointer is nil, and Begin/Advance/End must cost a nil check
// and nothing else — no allocation, no atomic, no branch miss fodder.
// The allocation half is asserted exactly (0 allocs/op); the latency
// half is a benchmark target (<2 ns/op for the Begin+Advance+End trio)
// checked by eye in BENCH output rather than asserted, since wall-clock
// bounds are machine-dependent and would flake CI.

func TestDisabledPathAllocs(t *testing.T) {
	var tr *Trace
	nm := Name("overhead.probe")
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(nm)
		tr.Advance(1)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled span path allocates %v allocs/op, want 0", n)
	}
	var c *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		c.Max(2)
	}); n != 0 {
		t.Fatalf("nil counter path allocates %v allocs/op, want 0", n)
	}
	var s *Session
	if n := testing.AllocsPerRun(1000, func() {
		_ = s.Lane("x").Begin(nm)
	}); n != 0 {
		t.Fatalf("nil session lane path allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkDisabledSpan measures the full disabled-span trio. Target:
// <2 ns/op (a nil check per call, inlined).
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Trace
	nm := Name("overhead.bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(nm)
		tr.Advance(1)
		sp.End()
	}
}

// BenchmarkEnabledSpan is the comparison point: the enabled path may
// allocate (amortized slice growth) but stays in the tens of ns.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTrace()
	nm := Name("overhead.bench.on")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin(nm)
		tr.Advance(1)
		sp.End()
	}
}
