package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Histogram is a process-wide fixed-bucket distribution. Bounds are
// inclusive upper edges in strictly increasing order; one implicit
// +Inf bucket catches the overflow. Observe is a pair of atomic adds,
// so concurrent cell workers may feed the same histogram; bucket
// totals are commutative and therefore worker-count independent for
// any fixed set of observed values.
//
// The deterministic/volatile split mirrors Counter: deterministic
// histograms (NewHistogram) record modeled quantities — per-stage
// encode ticks, virtual latencies — and appear in byte-compared
// exposition. Volatile histograms (NewVolatileHistogram) record host
// time — job latency, queue wait, cache lookup time — and render only
// for humans and live dashboards.
type Histogram struct {
	name     string
	volatile bool
	bounds   []uint64
	counts   []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum      atomic.Uint64
}

// Observe records one value. Safe on a nil receiver (disabled).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	// Bucket count is small (≤ ~20); binary search keeps the hot path
	// allocation-free and branch-cheap.
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Sum reads the running total of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Count reads the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot copies the histogram's current state. Bucket reads are
// individually atomic but not mutually consistent under concurrent
// Observe — fine for live views; deterministic exports snapshot
// quiesced registries.
func (h *Histogram) Snapshot() HistogramValue {
	v := HistogramValue{
		Name:     h.name,
		Volatile: h.volatile,
		Bounds:   h.bounds,
		Counts:   make([]uint64, len(h.counts)),
		Sum:      h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		v.Counts[i] = c
		v.Count += c
	}
	return v
}

var histRegistry = struct {
	sync.Mutex
	m map[string]*Histogram
}{m: make(map[string]*Histogram)}

// NewHistogram registers (or returns the existing) deterministic
// histogram. bounds must be strictly increasing and non-empty — a
// programmer error, panicked on here and linted by vclint's
// histbuckets check. Call from package var initializers so
// registration never depends on execution order.
func NewHistogram(name string, bounds []uint64) *Histogram {
	return newHistogram(name, bounds, false)
}

// NewVolatileHistogram registers a histogram excluded from
// deterministic exports.
func NewVolatileHistogram(name string, bounds []uint64) *Histogram {
	return newHistogram(name, bounds, true)
}

func newHistogram(name string, bounds []uint64, volatile bool) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + ": empty bucket bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s: bounds not strictly increasing at index %d", name, i))
		}
	}
	histRegistry.Lock()
	defer histRegistry.Unlock()
	if h, ok := histRegistry.m[name]; ok {
		return h
	}
	b := make([]uint64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, volatile: volatile, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	histRegistry.m[name] = h
	return h
}

// FindHistogram returns the registered histogram with the given name,
// or nil (the disabled histogram) if none exists.
func FindHistogram(name string) *Histogram {
	histRegistry.Lock()
	defer histRegistry.Unlock()
	return histRegistry.m[name]
}

// UnregisterHistogram removes a histogram from the registry so it no
// longer appears in snapshots or expositions. Test support only:
// production histograms live for the process; tests that register
// ad-hoc names use this to avoid leaking them into golden captures
// that share the test binary.
func UnregisterHistogram(name string) {
	histRegistry.Lock()
	defer histRegistry.Unlock()
	delete(histRegistry.m, name)
}

// ResetHistograms zeroes every registered histogram (the registry
// itself persists), mirroring ResetCounters.
func ResetHistograms() {
	histRegistry.Lock()
	defer histRegistry.Unlock()
	for _, h := range histRegistry.m {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
	}
}

// HistogramValue is a histogram snapshot row. Counts are per-bucket
// (not cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramValue struct {
	Name     string
	Volatile bool
	Bounds   []uint64
	Counts   []uint64
	Sum      uint64
	Count    uint64
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the covering bucket, the same estimate
// Prometheus' histogram_quantile computes. Values in the +Inf bucket
// saturate at the largest finite bound. Returns 0 on an empty
// histogram. The estimate is monotone in q, so p99 >= p50 always
// holds.
func (v HistogramValue) Quantile(q float64) uint64 {
	if v.Count == 0 || len(v.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(v.Count)
	var cum float64
	for i, c := range v.Counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(v.Bounds) {
			return v.Bounds[len(v.Bounds)-1]
		}
		lo := uint64(0)
		if i > 0 {
			lo = v.Bounds[i-1]
		}
		hi := v.Bounds[i]
		frac := (target - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + uint64(frac*float64(hi-lo))
	}
	return v.Bounds[len(v.Bounds)-1]
}

// Histograms snapshots every registered histogram sorted by name. With
// includeVolatile false only the deterministic domain is returned —
// the form safe for byte-compared output.
func Histograms(includeVolatile bool) []HistogramValue {
	histRegistry.Lock()
	hs := make([]*Histogram, 0, len(histRegistry.m))
	for _, h := range histRegistry.m {
		if h.volatile && !includeVolatile {
			continue
		}
		hs = append(hs, h)
	}
	histRegistry.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].name < hs[j].name })
	out := make([]HistogramValue, 0, len(hs))
	for _, h := range hs {
		out = append(out, h.Snapshot())
	}
	return out
}
