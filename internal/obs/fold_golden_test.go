package obs_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

// captureFolded runs a pinned fig2b (PSNR vs encode time sweep) from a
// cold cache at the given worker count and folds its span trees.
func captureFolded(t *testing.T, workers int) string {
	t.Helper()
	harness.ResetCellCache()
	harness.ResetClipCache()
	obs.ResetCounters()
	obs.ResetHistograms()
	sess := obs.NewSession()
	_, err := harness.RunAll(context.Background(), goldenScale(), harness.Options{
		Workers:     workers,
		Experiments: []string{"fig2b"},
		Obs:         sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := obs.WriteFolded(&b, obs.FoldedProfile(sess)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestGoldenFolded pins the continuous profiler's folded-stack output
// on a fixed fig2b run: byte-identical between -j1 and -j8 (the
// virtual-tick clock makes the fold scheduling-independent) and
// byte-identical to the checked-in golden file. Regenerate with
// -update after intentional span or clock changes.
func TestGoldenFolded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full harness cells; skipped in -short")
	}
	fold1 := captureFolded(t, 1)
	fold8 := captureFolded(t, 8)
	if fold1 != fold8 {
		t.Errorf("folded stacks differ between -j1 and -j8:\n%s", firstDiff(fold1, fold8))
	}
	path := filepath.Join(goldenDir, "folded.txt")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(fold1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file %s (run with -update): %v", path, err)
	}
	if fold1 != string(want) {
		t.Errorf("folded stacks differ from golden file\n%s", firstDiff(string(want), fold1))
	}
}
