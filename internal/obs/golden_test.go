// Golden test for the observability layer: a pinned harness run's
// Chrome trace and self-profile table are byte-compared against checked
// in files, at two worker counts. This is the executable form of the
// layer's determinism contract — the trace records what was computed,
// never how it was scheduled.
package obs_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
)

// update regenerates the golden files:
//
//	go test ./internal/obs -run Golden -update
var update = flag.Bool("update", false, "rewrite obs golden files")

const goldenDir = "testdata/golden"

// goldenScale pins the run the golden files were rendered at: one clip,
// two frames, two CRF points. Small enough to run in seconds, rich
// enough to exercise counted-encode frame/stage spans (table2, fig3)
// and perf-façade stat cells with cache counters (fig4).
func goldenScale() harness.Scale {
	s := harness.QuickScale()
	s.Clips = []string{"desktop"}
	s.Frames = 2
	s.CRFs = []int{20, 40}
	return s
}

var goldenExperiments = []string{"table2", "fig3", "fig4"}

// capture runs the pinned experiments at the given worker count from a
// cold cache and returns the three rendered artifacts.
func capture(t *testing.T, workers int) (trace, profile, counters string) {
	t.Helper()
	harness.ResetCellCache()
	harness.ResetClipCache()
	obs.ResetCounters()
	sess := obs.NewSession()
	_, err := harness.RunAll(context.Background(), goldenScale(), harness.Options{
		Workers:     workers,
		Experiments: goldenExperiments,
		Obs:         sess,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := obs.WriteChromeTrace(&b, sess); err != nil {
		t.Fatal(err)
	}
	return b.String(), obs.RenderProfile(sess.Profile(), 20), obs.RenderCounters(false)
}

// TestGoldenTrace is the acceptance check from two directions: the
// artifacts must be byte-identical between a serial run and a wide
// pool (scheduling independence), and must match the checked-in golden
// files (cross-version regression). A diff against the goldens means
// an intentional observation change (regenerate with -update and
// review) or a determinism regression.
func TestGoldenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full harness cells; skipped in -short")
	}
	trace1, prof1, ctr1 := capture(t, 1)
	trace8, prof8, ctr8 := capture(t, 8)
	if trace1 != trace8 {
		t.Errorf("Chrome trace differs between -j1 and -j8:\n%s", firstDiff(trace1, trace8))
	}
	if prof1 != prof8 {
		t.Errorf("self-profile differs between -j1 and -j8:\n%s", firstDiff(prof1, prof8))
	}
	if ctr1 != ctr8 {
		t.Errorf("deterministic counters differ between -j1 and -j8:\n%s", firstDiff(ctr1, ctr8))
	}

	files := map[string]string{
		"trace.json":  trace1,
		"profile.txt": prof1,
	}
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, got := range files {
			if err := os.WriteFile(filepath.Join(goldenDir, name), []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("golden files rewritten under %s", goldenDir)
		return
	}
	for name, got := range files {
		path := filepath.Join(goldenDir, name)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("no golden file %s (run with -update): %v", path, err)
			continue
		}
		if got != string(want) {
			t.Errorf("%s differs from golden file\n%s", name, firstDiff(string(want), got))
		}
	}
}

// firstDiff renders the first divergent line of two renderings.
func firstDiff(want, got string) string {
	wl := bytes.Split([]byte(want), []byte("\n"))
	gl := bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(identical?)"
}
