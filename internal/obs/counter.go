package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a process-wide monotonic event counter. Add and Max are
// atomic, so concurrent cell workers may bump the same counter; totals
// are commutative and therefore worker-count independent for any fixed
// set of computed work.
//
// Deterministic counters (NewCounter) appear in the Chrome trace export
// and golden files. Volatile counters (NewVolatileCounter) measure
// scheduling-dependent facts — peak worker occupancy, pool sizes — and
// are excluded from every byte-compared export; they render only in the
// human -stats section.
type Counter struct {
	name     string
	volatile bool
	v        atomic.Uint64
}

// Add increments the counter. Safe on a nil receiver (disabled).
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Max raises the counter to at least n (for peak-style volatile
// counters).
func (c *Counter) Max(n uint64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

var registry = struct {
	sync.Mutex
	m map[string]*Counter
}{m: make(map[string]*Counter)}

// NewCounter registers (or returns the existing) deterministic counter
// with the given dotted name. Call from package var initializers so
// registration order never depends on execution order.
func NewCounter(name string) *Counter { return newCounter(name, false) }

// NewVolatileCounter registers a counter excluded from deterministic
// exports.
func NewVolatileCounter(name string) *Counter { return newCounter(name, true) }

func newCounter(name string, volatile bool) *Counter {
	registry.Lock()
	defer registry.Unlock()
	if c, ok := registry.m[name]; ok {
		return c
	}
	c := &Counter{name: name, volatile: volatile}
	registry.m[name] = c
	return c
}

// ResetCounters zeroes every registered counter (the registry itself
// persists). Tests call it between runs that must start from identical
// state.
func ResetCounters() {
	registry.Lock()
	defer registry.Unlock()
	for _, c := range registry.m {
		c.v.Store(0)
	}
}

// CounterValue is a counter snapshot row.
type CounterValue struct {
	Name     string
	Value    uint64
	Volatile bool
}

// Counters snapshots every registered counter sorted by name. With
// includeVolatile false only the deterministic domain is returned —
// the form safe for byte-compared output.
func Counters(includeVolatile bool) []CounterValue {
	registry.Lock()
	out := make([]CounterValue, 0, len(registry.m))
	for _, c := range registry.m {
		if c.volatile && !includeVolatile {
			continue
		}
		out = append(out, CounterValue{Name: c.name, Value: c.v.Load(), Volatile: c.volatile})
	}
	registry.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RenderCounters returns an aligned text dump of the counter registry,
// deterministic counters first, then (if requested) a volatile section.
func RenderCounters(includeVolatile bool) string {
	rows := Counters(includeVolatile)
	w := 0
	for _, r := range rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	var b strings.Builder
	b.WriteString("== obs: counters ==\n")
	for _, r := range rows {
		if r.Volatile {
			continue
		}
		fmt.Fprintf(&b, "%-*s  %d\n", w, r.Name, r.Value)
	}
	if includeVolatile {
		b.WriteString("-- volatile (scheduling-dependent, never golden-compared) --\n")
		for _, r := range rows {
			if !r.Volatile {
				continue
			}
			fmt.Fprintf(&b, "%-*s  %d\n", w, r.Name, r.Value)
		}
	}
	return b.String()
}
