package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"vcprof/internal/obs"
)

// TestFoldedProfileExact pins the attribution rule on a hand-built
// tree: exclusive ticks (inclusive minus children) land on the
// semicolon-joined ancestor chain, gaps between spans are attributed
// to nothing.
func TestFoldedProfileExact(t *testing.T) {
	nA, nB := obs.Name("foldA"), obs.Name("foldB")
	sess := obs.NewSession()
	tr := sess.Lane("main")
	a := tr.Begin(nA)
	tr.Advance(5)
	b := tr.Begin(nB)
	tr.Advance(3)
	b.End()
	tr.Advance(2)
	a.End()
	tr.Advance(4) // outside any span: attributed nowhere

	lines := obs.FoldedProfile(sess)
	want := []obs.FoldedLine{{Stack: "foldA", Ticks: 7}, {Stack: "foldA;foldB", Ticks: 3}}
	if len(lines) != len(want) {
		t.Fatalf("lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d: %v, want %v", i, lines[i], want[i])
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteFolded(&buf, lines); err != nil {
		t.Fatal(err)
	}
	if got, wantText := buf.String(), "foldA 7\nfoldA;foldB 3\n"; got != wantText {
		t.Errorf("folded text %q, want %q", got, wantText)
	}
}

// treeGen grows a random span tree on one lane and returns the ticks
// covered by root spans (the total the folded output must conserve).
func treeGen(tr *obs.Trace, rng *splitmixState, names []obs.NameID, depth int) uint64 {
	sp := tr.Begin(names[rng.next()%uint64(len(names))])
	start := tr.Now()
	tr.Advance(rng.next() % 50) // exclusive prefix
	if depth > 0 {
		for n := rng.next() % 4; n > 0; n-- {
			treeGen(tr, rng, names, depth-1)
		}
	}
	tr.Advance(rng.next() % 50) // exclusive suffix
	end := tr.Now()
	sp.End()
	return end - start
}

// TestFoldedProfileProperties is the fold invariants under randomized
// span trees (deterministic splitmix seeds, per the detrand rule):
//
//   - conservation: folded ticks sum exactly to the ticks covered by
//     root spans — nothing is dropped, nothing counted twice;
//   - parent dominance: a span's inclusive time covers the sum of its
//     children, so every exclusive attribution is non-negative (an
//     underflow would explode the uint64 sum and break conservation)
//     and every profile row has Excl <= Incl;
//   - output shape: lines strictly sorted by stack, no zero-tick rows,
//     stacks well-formed (no empty frames);
//   - determinism: regenerating from the same seed folds to identical
//     bytes.
func TestFoldedProfileProperties(t *testing.T) {
	names := []obs.NameID{obs.Name("p0"), obs.Name("p1"), obs.Name("p2"), obs.Name("p3")}
	build := func(seed uint64) (*obs.Session, uint64) {
		rng := splitmixState(seed)
		sess := obs.NewSession()
		var covered uint64
		for _, lane := range []string{"laneA", "laneB", "laneC"} {
			tr := sess.Lane(lane)
			for i := uint64(0); i < 1+rng.next()%3; i++ {
				covered += treeGen(tr, &rng, names, 3)
				tr.Advance(rng.next() % 10) // inter-root gap
			}
		}
		return sess, covered
	}
	for seed := uint64(1); seed <= 8; seed++ {
		sess, covered := build(seed)
		lines := obs.FoldedProfile(sess)
		var total uint64
		for i, l := range lines {
			if l.Ticks == 0 {
				t.Fatalf("seed %d: zero-tick line %q", seed, l.Stack)
			}
			if strings.Contains(l.Stack, ";;") || strings.HasPrefix(l.Stack, ";") || strings.HasSuffix(l.Stack, ";") {
				t.Fatalf("seed %d: malformed stack %q", seed, l.Stack)
			}
			if i > 0 && lines[i-1].Stack >= l.Stack {
				t.Fatalf("seed %d: lines not strictly sorted at %d", seed, i)
			}
			total += l.Ticks
		}
		if total != covered {
			t.Fatalf("seed %d: folded ticks %d, root spans cover %d", seed, total, covered)
		}
		for _, row := range obs.ProfileOf(sess) {
			if row.Excl > row.Incl {
				t.Fatalf("seed %d: %s exclusive %d exceeds inclusive %d", seed, row.Name, row.Excl, row.Incl)
			}
		}
		// Same seed, fresh tree: byte-identical fold.
		sess2, _ := build(seed)
		var b1, b2 bytes.Buffer
		if err := obs.WriteFolded(&b1, lines); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteFolded(&b2, obs.FoldedProfile(sess2)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("seed %d: fold not deterministic", seed)
		}
	}
}

// TestFoldedProfileMergesSessions pins cross-session aggregation:
// identical chains from different sessions add up.
func TestFoldedProfileMergesSessions(t *testing.T) {
	n := obs.Name("merged")
	mk := func(ticks uint64) *obs.Session {
		s := obs.NewSession()
		tr := s.Lane("w")
		sp := tr.Begin(n)
		tr.Advance(ticks)
		sp.End()
		return s
	}
	lines := obs.FoldedProfile(mk(3), mk(9))
	if len(lines) != 1 || lines[0].Ticks != 12 || lines[0].Stack != "merged" {
		t.Fatalf("merged fold = %v, want [{merged 12}]", lines)
	}
}
