package obs

import "sync"

// Session groups the lanes (Chrome trace "threads") of one observed
// run. A nil *Session is the disabled session: Lane returns a nil
// *Trace, which disables every downstream span call, so enabling
// observation is a single field on the caller's options.
//
// Lanes are created in call order, which must itself be deterministic
// (the harness creates one lane per experiment, in registry order,
// after each experiment's parallel section has completed). The mutex
// only guards lane creation; each lane's Trace is single-goroutine.
type Session struct {
	mu    sync.Mutex
	lanes []lane
}

type lane struct {
	name string
	tr   *Trace
}

// NewSession returns an enabled, empty session.
func NewSession() *Session { return &Session{} }

// Lane appends a new named lane and returns its tracer. The caller
// must confine the returned Trace to one goroutine.
func (s *Session) Lane(name string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := NewTrace()
	s.lanes = append(s.lanes, lane{name: name, tr: tr})
	return tr
}

// snapshot copies the lane list for export.
func (s *Session) snapshot() []lane {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]lane, len(s.lanes))
	copy(out, s.lanes)
	return out
}
