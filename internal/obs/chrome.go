package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChromeTrace serializes the session as Chrome trace-event JSON
// (the chrome://tracing / Perfetto "JSON Array Format"): one complete
// ("X") event per span, one metadata event naming each lane, and one
// counter ("C") event per deterministic registry counter. Virtual
// ticks map 1:1 onto the format's microsecond field — absolute units
// are modeled quantities, not time, which is exactly what the viewer's
// relative widths should show.
//
// The serialization is hand-built and fully ordered (lanes in creation
// order, spans in recording order, counters sorted by name), so equal
// observed runs produce byte-identical files. Volatile counters are
// excluded, and so are zero-valued ones: the registry is process-global
// and accretes counters from every linked package, and a counter the
// run never touched is noise in the viewer and a golden-file dependency
// on the link set. One event per line keeps goldens reviewable in a
// diff.
func WriteChromeTrace(w io.Writer, s *Session) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line []byte) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(line)
	}
	var buf []byte
	for i, ln := range s.snapshot() {
		tid := i + 1
		buf = buf[:0]
		buf = append(buf, `{"ph":"M","pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"name":"thread_name","args":{"name":`...)
		buf = appendJSONString(buf, ln.name)
		buf = append(buf, `}}`...)
		emit(buf)
		for _, r := range ln.tr.spans {
			buf = buf[:0]
			buf = append(buf, `{"ph":"X","pid":1,"tid":`...)
			buf = strconv.AppendInt(buf, int64(tid), 10)
			buf = append(buf, `,"ts":`...)
			buf = strconv.AppendUint(buf, r.start, 10)
			buf = append(buf, `,"dur":`...)
			buf = strconv.AppendUint(buf, r.dur, 10)
			buf = append(buf, `,"name":`...)
			buf = appendJSONString(buf, nameString(r.name))
			if r.arg != "" {
				buf = append(buf, `,"args":{"arg":`...)
				buf = appendJSONString(buf, r.arg)
				buf = append(buf, '}')
			}
			buf = append(buf, '}')
			emit(buf)
		}
	}
	for _, c := range Counters(false) {
		if c.Value == 0 {
			continue
		}
		buf = buf[:0]
		buf = append(buf, `{"ph":"C","pid":1,"tid":0,"ts":0,"name":`...)
		buf = appendJSONString(buf, c.Name)
		buf = append(buf, `,"args":{"value":`...)
		buf = strconv.AppendUint(buf, c.Value, 10)
		buf = append(buf, `}}`...)
		emit(buf)
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// appendJSONString appends s as a JSON string literal. Covers the
// escapes our span names and cell keys can contain; any other control
// byte gets a \u escape.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c >= 0x20:
			buf = append(buf, c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(buf, '"')
}
