package obs

import (
	"bufio"
	"context"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Distributed hop tracing (DESIGN.md §13). A trace id is derived from
// the job's content address or the session spec key, so every process
// that touches the same work derives the same id with no coordination.
// Each process appends HopEvents to its own HopLog and serves them as a
// slice; a merger (the gate's /v1/cluster/trace/{id}) unions the slices
// into one Chrome trace.
//
// Hops split into two domains, mirroring the counter registry:
//
//   - Deterministic hops (admitted, exec, session-open, gop) describe
//     WHAT was computed. They are content-addressed — (kind, seq, arg,
//     dur) is derived from the job bytes, never from placement — so a
//     hedge, replica or failover replay emits an identical tuple and
//     the merge deduplicates it. The ?volatile=0 merged trace therefore
//     stays byte-identical across topologies, kills and reruns.
//   - Volatile hops (queue-wait, route, hedge-*, failover, replica-push,
//     failover-re-anchor, session-resume, drain-finish, job-failed)
//     describe WHERE and WHEN. They carry the emitting process and a
//     wall-clock stamp (stamped by the caller — this package never
//     reads a clock) and appear only in the full merged view, which is
//     never byte-compared.

// TraceHeader is the HTTP header carrying the trace id between vcgate
// and vcprofd.
const TraceHeader = "X-Vcprof-Trace"

// Deterministic hop kinds, in lane (tid) order.
const (
	HopAdmitted    = "admitted"
	HopExec        = "exec"
	HopSessionOpen = "session-open"
	HopGOP         = "gop"
)

// Volatile hop kinds, in lane (tid) order.
const (
	HopQueueWait     = "queue-wait"
	HopRoute         = "route"
	HopHedgeFired    = "hedge-fired"
	HopHedgeWinner   = "hedge-winner"
	HopHedgeLoser    = "hedge-loser-cancelled"
	HopFailover      = "failover"
	HopReplicaPush   = "replica-push"
	HopReAnchor      = "failover-re-anchor"
	HopSessionResume = "session-resume"
	HopDrainFinish   = "drain-finish"
	HopJobFailed     = "job-failed"
)

// hopLanes fixes every kind's lane rank; merged traces assign Chrome
// tids from this table, so lane layout never depends on arrival order.
var hopLanes = map[string]int{
	HopAdmitted:    0,
	HopExec:        1,
	HopSessionOpen: 2,
	HopGOP:         3,

	HopQueueWait:     0,
	HopRoute:         1,
	HopHedgeFired:    2,
	HopHedgeWinner:   3,
	HopHedgeLoser:    4,
	HopFailover:      5,
	HopReplicaPush:   6,
	HopReAnchor:      7,
	HopSessionResume: 8,
	HopDrainFinish:   9,
	HopJobFailed:     10,
}

// HopVolatile reports whether a kind belongs to the volatile domain.
// Unknown kinds are volatile: a newer peer's hop must never leak into a
// byte-pinned merge.
func HopVolatile(kind string) bool {
	switch kind {
	case HopAdmitted, HopExec, HopSessionOpen, HopGOP:
		return false
	}
	return true
}

// HopID is a hop's deterministic identity within its trace: the kind
// plus the per-kind sequence number (GOP index for gop hops, 0 for
// singletons).
func HopID(kind string, seq uint64) string {
	return kind + "#" + strconv.FormatUint(seq, 10)
}

// JobTraceID derives a job's trace id from its content address.
func JobTraceID(key string) string { return "j-" + shortKey(key) }

// SessionTraceID derives a live session's trace id from its spec key.
func SessionTraceID(key string) string { return "s-" + shortKey(key) }

func shortKey(key string) string {
	if len(key) > 16 {
		return key[:16]
	}
	return key
}

// ValidTraceID bounds what a propagation header may carry: 1..64 bytes
// of [a-z0-9._-]. Anything else falls back to the derived id.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// TraceContext is the propagated trace identity, threaded through
// request contexts so queue, scheduler and session code observe the hop
// chain they run under.
type TraceContext struct {
	Trace string
}

type traceCtxKey struct{}

// WithTraceContext attaches tc to ctx.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom recovers the propagated trace context, if any.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// HopEvent is one per-hop lifecycle record. Dur is a modeled quantity
// (result bytes for exec, GOP instructions for gop, milliseconds for
// wall-domain volatile hops); Start is assigned at merge time, never by
// the emitter. StartMS is the emitter's wall stamp on volatile hops
// (zero on deterministic ones).
type HopEvent struct {
	Trace   string `json:"trace"`
	Kind    string `json:"kind"`
	Seq     uint64 `json:"seq,omitempty"`
	Arg     string `json:"arg,omitempty"`
	Dur     uint64 `json:"dur,omitempty"`
	Proc    string `json:"proc,omitempty"`
	Start   uint64 `json:"start,omitempty"`
	StartMS int64  `json:"start_ms,omitempty"`
}

// maxHopsPerTrace bounds one trace's event list; beyond it new events
// are dropped (a trace that large is a bug, not a workload).
const maxHopsPerTrace = 4096

// HopLog is one process's bounded hop store: per-trace event lists with
// FIFO trace eviction. A nil *HopLog is the disabled log — Emit and
// Slice are no-ops — matching the package's nil-receiver convention.
// The mutex is a leaf: nothing is called while it is held.
type HopLog struct {
	proc string
	max  int

	mu    sync.Mutex
	m     map[string][]HopEvent
	order []string // trace insertion order, for eviction
}

// NewHopLog builds a log stamping proc onto every event, retaining at
// most maxTraces traces (default 512 when <= 0).
func NewHopLog(proc string, maxTraces int) *HopLog {
	if maxTraces <= 0 {
		maxTraces = 512
	}
	return &HopLog{proc: proc, max: maxTraces, m: make(map[string][]HopEvent)}
}

// Proc names the emitting process.
func (l *HopLog) Proc() string {
	if l == nil {
		return ""
	}
	return l.proc
}

// Emit appends one event. Events with an empty trace or kind are
// dropped rather than polluting the log.
func (l *HopLog) Emit(ev HopEvent) {
	if l == nil || ev.Trace == "" || ev.Kind == "" {
		return
	}
	ev.Proc = l.proc
	ev.Start = 0 // merge-time field; emitters never set it
	l.mu.Lock()
	defer l.mu.Unlock()
	evs, ok := l.m[ev.Trace]
	if !ok {
		l.order = append(l.order, ev.Trace)
		for len(l.order) > l.max {
			delete(l.m, l.order[0])
			l.order = l.order[1:]
		}
	}
	if len(evs) >= maxHopsPerTrace {
		return
	}
	l.m[ev.Trace] = append(evs, ev)
}

// Slice copies one trace's events in emission order (empty when the
// trace is unknown or evicted).
func (l *HopLog) Slice(trace string) []HopEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	evs := l.m[trace]
	if len(evs) == 0 {
		return nil
	}
	out := make([]HopEvent, len(evs))
	copy(out, evs)
	return out
}

// MergeHops unions per-process hop slices into one ordered event list.
//
// Deterministic hops deduplicate on (kind, seq, arg, dur) — the
// content-addressed identity — so the same work observed by a shard and
// mirrored by the gate, or re-encoded by a failover replay, collapses
// to one event. They sort by (lane, seq, arg, dur) and each lane gets a
// cumulative virtual-tick clock: hop i starts where hop i-1 ended (plus
// one tick of separation). Process labels are cleared: placement is a
// volatile fact.
//
// Volatile hops (included only with includeVolatile) keep their process
// label, deduplicate exact duplicates only, sort by wall stamp then
// (lane, seq, proc, arg), and map StartMS onto the tick axis relative
// to the earliest volatile stamp.
func MergeHops(slices [][]HopEvent, includeVolatile bool) []HopEvent {
	var det, vol []HopEvent
	seenDet := make(map[HopEvent]bool)
	seenVol := make(map[HopEvent]bool)
	for _, sl := range slices {
		for _, ev := range sl {
			ev.Start = 0
			if HopVolatile(ev.Kind) {
				if !includeVolatile {
					continue
				}
				if key := ev; !seenVol[key] {
					seenVol[key] = true
					vol = append(vol, ev)
				}
				continue
			}
			ev.Proc = ""
			ev.StartMS = 0
			if !seenDet[ev] {
				seenDet[ev] = true
				det = append(det, ev)
			}
		}
	}
	sort.Slice(det, func(i, j int) bool {
		a, b := det[i], det[j]
		if la, lb := hopLanes[a.Kind], hopLanes[b.Kind]; la != lb {
			return la < lb
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Arg != b.Arg {
			return a.Arg < b.Arg
		}
		return a.Dur < b.Dur
	})
	lane := make(map[string]uint64)
	for i := range det {
		det[i].Start = lane[det[i].Kind]
		lane[det[i].Kind] += det[i].Dur + 1
	}
	sort.Slice(vol, func(i, j int) bool {
		a, b := vol[i], vol[j]
		if a.StartMS != b.StartMS {
			return a.StartMS < b.StartMS
		}
		if la, lb := hopLanes[a.Kind], hopLanes[b.Kind]; la != lb {
			return la < lb
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Arg < b.Arg
	})
	if len(vol) > 0 {
		base := vol[0].StartMS
		for i := range vol {
			vol[i].Start = uint64(vol[i].StartMS - base)
		}
	}
	return append(det, vol...)
}

// WriteHopTrace serializes merged hop events as Chrome trace-event
// JSON: pid 1 holds the deterministic lanes, pid 2 the volatile ones,
// tids follow the fixed lane table, and hop names are HopID(kind, seq).
// One event per line, fully ordered input in → byte-identical output
// out, same contract as WriteChromeTrace.
func WriteHopTrace(w io.Writer, events []HopEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line []byte) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.Write(line)
	}
	seenLane := make(map[[2]int]bool)
	var buf []byte
	for _, ev := range events {
		pid, tid := hopLane(ev.Kind)
		if k := [2]int{pid, tid}; !seenLane[k] {
			seenLane[k] = true
			buf = buf[:0]
			buf = append(buf, `{"ph":"M","pid":`...)
			buf = strconv.AppendInt(buf, int64(pid), 10)
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(tid), 10)
			buf = append(buf, `,"name":"thread_name","args":{"name":`...)
			buf = appendJSONString(buf, ev.Kind)
			buf = append(buf, `}}`...)
			emit(buf)
		}
		buf = buf[:0]
		buf = append(buf, `{"ph":"X","pid":`...)
		buf = strconv.AppendInt(buf, int64(pid), 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tid), 10)
		buf = append(buf, `,"ts":`...)
		buf = strconv.AppendUint(buf, ev.Start, 10)
		buf = append(buf, `,"dur":`...)
		buf = strconv.AppendUint(buf, ev.Dur, 10)
		buf = append(buf, `,"name":`...)
		buf = appendJSONString(buf, HopID(ev.Kind, ev.Seq))
		buf = append(buf, `,"args":{"trace":`...)
		buf = appendJSONString(buf, ev.Trace)
		if ev.Arg != "" {
			buf = append(buf, `,"arg":`...)
			buf = appendJSONString(buf, ev.Arg)
		}
		if ev.Proc != "" {
			buf = append(buf, `,"proc":`...)
			buf = appendJSONString(buf, ev.Proc)
		}
		buf = append(buf, `}}`...)
		emit(buf)
	}
	bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return bw.Flush()
}

// hopLane maps a kind onto its (pid, tid): deterministic lanes under
// pid 1, volatile under pid 2, unknown volatile kinds on a shared
// overflow lane.
func hopLane(kind string) (pid, tid int) {
	if !HopVolatile(kind) {
		return 1, hopLanes[kind] + 1
	}
	if r, ok := hopLanes[kind]; ok {
		return 2, r + 1
	}
	return 2, len(hopLanes) + 1
}
