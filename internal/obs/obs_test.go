package obs

import (
	"strings"
	"testing"
)

func TestSpanHierarchyAndDurations(t *testing.T) {
	tr := NewTrace()
	a, b, c := Name("a"), Name("b"), Name("c")
	sa := tr.Begin(a)
	tr.Advance(5)
	sb := tr.Begin(b)
	tr.Advance(7)
	sb.End()
	sc := tr.BeginArg(c, "leaf")
	tr.Advance(3)
	sc.End()
	sa.End()

	if got := tr.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	spans := tr.spans
	if spans[0].name != a || spans[0].start != 0 || spans[0].dur != 15 || spans[0].parent != -1 {
		t.Errorf("root span = %+v, want name=a start=0 dur=15 parent=-1", spans[0])
	}
	if spans[1].name != b || spans[1].start != 5 || spans[1].dur != 7 || spans[1].parent != 0 {
		t.Errorf("child b = %+v, want start=5 dur=7 parent=0", spans[1])
	}
	if spans[2].start != 12 || spans[2].dur != 3 || spans[2].parent != 0 || spans[2].arg != "leaf" {
		t.Errorf("child c = %+v, want start=12 dur=3 parent=0 arg=leaf", spans[2])
	}
	if tr.Now() != 15 {
		t.Errorf("Now = %d, want 15", tr.Now())
	}
}

func TestSpanImplicitClose(t *testing.T) {
	tr := NewTrace()
	outer := tr.Begin(Name("outer"))
	tr.Begin(Name("inner")) // never explicitly ended
	tr.Advance(4)
	outer.End() // must close inner too
	if len(tr.open) != 0 {
		t.Fatalf("open stack not drained: %d", len(tr.open))
	}
	if tr.spans[1].dur != 4 {
		t.Errorf("implicitly closed span dur = %d, want 4", tr.spans[1].dur)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Begin(Name("x"))
	tr.Advance(10)
	sp.End()
	if tr.Now() != 0 || tr.SpanCount() != 0 || tr.Enabled() {
		t.Fatal("nil Trace must be inert")
	}
	var sess *Session
	if ln := sess.Lane("x"); ln != nil {
		t.Fatal("nil Session.Lane must return nil Trace")
	}
}

func TestCounterDomains(t *testing.T) {
	ResetCounters()
	det := NewCounter("test.det")
	vol := NewVolatileCounter("test.vol")
	det.Add(3)
	vol.Max(7)
	vol.Max(5) // must not lower the peak
	if det.Value() != 3 || vol.Value() != 7 {
		t.Fatalf("values = %d/%d, want 3/7", det.Value(), vol.Value())
	}
	for _, cv := range Counters(false) {
		if cv.Name == "test.vol" {
			t.Fatal("volatile counter leaked into deterministic snapshot")
		}
	}
	found := false
	for _, cv := range Counters(true) {
		if cv.Name == "test.vol" && cv.Volatile {
			found = true
		}
	}
	if !found {
		t.Fatal("volatile counter missing from full snapshot")
	}
	if same := NewCounter("test.det"); same != det {
		t.Fatal("NewCounter must be idempotent per name")
	}
	ResetCounters()
	if det.Value() != 0 {
		t.Fatal("ResetCounters must zero values")
	}
}

func TestRenderCountersSections(t *testing.T) {
	ResetCounters()
	NewCounter("test.render.det").Add(1)
	NewVolatileCounter("test.render.vol").Add(2)
	out := RenderCounters(false)
	if strings.Contains(out, "test.render.vol") || strings.Contains(out, "volatile") {
		t.Errorf("deterministic render leaked volatile section:\n%s", out)
	}
	full := RenderCounters(true)
	if !strings.Contains(full, "test.render.vol") || !strings.Contains(full, "volatile") {
		t.Errorf("full render missing volatile section:\n%s", full)
	}
	ResetCounters()
}

func TestChromeTraceShapeAndDeterminism(t *testing.T) {
	ResetCounters()
	NewCounter("test.chrome.events").Add(42)
	build := func() string {
		sess := NewSession()
		tr := sess.Lane(`lane "one"`)
		sp := tr.BeginArg(Name("work"), "cell(a b\tc)")
		tr.Advance(9)
		sp.End()
		var b strings.Builder
		if err := WriteChromeTrace(&b, sess); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	one, two := build(), build()
	if one != two {
		t.Fatal("identical sessions must serialize byte-identically")
	}
	for _, want := range []string{
		`{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"lane \"one\""}}`,
		`{"ph":"X","pid":1,"tid":1,"ts":0,"dur":9,"name":"work","args":{"arg":"cell(a b\tc)"}}`,
		`"name":"test.chrome.events","args":{"value":42}`,
		`"displayTimeUnit"`,
	} {
		if !strings.Contains(one, want) {
			t.Errorf("trace JSON missing %q in:\n%s", want, one)
		}
	}
	ResetCounters()
}

func TestProfileInclusiveExclusive(t *testing.T) {
	sess := NewSession()
	tr := sess.Lane("l")
	root := tr.Begin(Name("prof.root"))
	tr.Advance(10)
	kid := tr.Begin(Name("prof.kid"))
	tr.Advance(30)
	kid.End()
	root.End()
	rows := sess.Profile()
	byName := map[string]ProfileRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	r := byName["prof.root"]
	if r.Incl != 40 || r.Excl != 10 || r.Count != 1 {
		t.Errorf("root row = %+v, want incl=40 excl=10 count=1", r)
	}
	k := byName["prof.kid"]
	if k.Incl != 30 || k.Excl != 30 {
		t.Errorf("kid row = %+v, want incl=excl=30", k)
	}
	if rows[0].Name != "prof.root" {
		t.Errorf("rows not sorted by inclusive ticks: %+v", rows)
	}
	out := RenderProfile(rows, 1)
	if !strings.Contains(out, "prof.root") || strings.Contains(out, "prof.kid") {
		t.Errorf("topN truncation wrong:\n%s", out)
	}
}
