package core

import (
	"testing"

	"vcprof/internal/encoders"
	"vcprof/internal/harness"
)

func quickLab(t *testing.T) *Lab {
	t.Helper()
	s := harness.QuickScale()
	s.Clips = []string{"game1"}
	s.Frames = 3
	lab, err := NewLab(WithScale(s))
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestNewLabOptions(t *testing.T) {
	if _, err := NewLab(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLab(WithQuickScale()); err != nil {
		t.Fatal(err)
	}
	bad := harness.Scale{}
	if _, err := NewLab(WithScale(bad)); err == nil {
		t.Error("accepted invalid scale")
	}
}

func TestLabEncode(t *testing.T) {
	lab := quickLab(t)
	res, err := lab.Encode(SVTAV1, "game1", 40, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 || res.PSNR < 20 || res.Insts == 0 {
		t.Errorf("implausible encode result: %+v", res)
	}
	if _, err := lab.Encode("h262", "game1", 40, 6, 1); err == nil {
		t.Error("accepted unknown family")
	}
	if _, err := lab.Encode(SVTAV1, "nosuchclip", 40, 6, 1); err == nil {
		t.Error("accepted unknown clip")
	}
}

func TestLabCharacterize(t *testing.T) {
	lab := quickLab(t)
	st, err := lab.Characterize(SVTAV1, "game1", 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC <= 0 || st.IPC > 4 {
		t.Errorf("IPC = %v", st.IPC)
	}
	if err := st.TopDown.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLabProfileAndWindow(t *testing.T) {
	lab := quickLab(t)
	prof, err := lab.Profile(SVTAV1, "game1", 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Hottest() == "" {
		t.Error("empty profile")
	}
	rec, err := lab.RecordWindow(SVTAV1, "game1", 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Ops) == 0 {
		t.Fatal("empty window")
	}
	pres, err := lab.ReplayPipeline(rec)
	if err != nil {
		t.Fatal(err)
	}
	if pres.IPC <= 0 || pres.IPC > 4 {
		t.Errorf("replay IPC = %v", pres.IPC)
	}
	if _, err := lab.ReplayPipeline(nil); err == nil {
		t.Error("accepted nil recorder")
	}
}

func TestLabBranchChampionship(t *testing.T) {
	lab := quickLab(t)
	scores, err := lab.BranchChampionship("game1", 50, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("%d scores, want 4 (paper set)", len(scores))
	}
	for _, s := range scores {
		if s.MPKI <= 0 {
			t.Errorf("%s: zero MPKI", s.Predictor)
		}
	}
}

func TestLabSweeps(t *testing.T) {
	lab := quickLab(t)
	pts, err := lab.CRFSweep(SVTAV1, "game1", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(lab.Scale().CRFs) {
		t.Fatalf("%d sweep points, want %d", len(pts), len(lab.Scale().CRFs))
	}
	if pts[0].Stat.Instructions <= pts[len(pts)-1].Stat.Instructions {
		t.Error("instructions did not fall across the CRF sweep")
	}
	tp, err := lab.ThreadSweep(SVTAV1, "game1", 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != len(lab.Scale().Threads) {
		t.Fatalf("%d thread points", len(tp))
	}
	if tp[len(tp)-1].Speedup < 2 {
		t.Errorf("SVT-AV1 simulated speedup at %d threads = %v, want >= 2",
			tp[len(tp)-1].Threads, tp[len(tp)-1].Speedup)
	}
}

func TestLabExperimentDispatch(t *testing.T) {
	lab := quickLab(t)
	tabs, err := lab.Experiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 15 {
		t.Error("table1 dispatch wrong")
	}
	if _, err := lab.Experiment("figX"); err == nil {
		t.Error("accepted unknown experiment")
	}
	if len(lab.Experiments()) < 20 {
		t.Errorf("only %d experiments registered", len(lab.Experiments()))
	}
}

func TestLabEncodeWithAndDecode(t *testing.T) {
	lab := quickLab(t)
	res, err := lab.EncodeWith(SVTAV1, "game1", encodersOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bitstream) == 0 {
		t.Fatal("no bitstream kept")
	}
	frames, err := lab.Decode(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(res.Recon) {
		t.Fatalf("decoded %d frames, want %d", len(frames), len(res.Recon))
	}
	if res.SSIM <= 0 || res.SSIM > 1 {
		t.Errorf("SSIM = %v out of range", res.SSIM)
	}
	if _, err := lab.Decode([]byte("junk")); err == nil {
		t.Error("decoded junk")
	}
}

// encodersOptions builds the options used by TestLabEncodeWithAndDecode
// (ABR + scene cut + kept bitstream).
func encodersOptions() encoders.Options {
	return encoders.Options{TargetKbps: 300, Preset: 6, SceneCut: true, KeepBitstream: true}
}
