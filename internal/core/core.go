// Package core is vcprof's public API: a characterization laboratory
// that couples the procedural vbench workloads, the five encoder
// models, the perf/Pin/gprof instrumentation substitutes, the
// microarchitecture simulators and the paper's experiment harness
// behind one façade. Examples and command-line tools are thin clients
// of this package.
//
// Typical use:
//
//	lab, _ := core.NewLab()
//	res, _ := lab.Encode(core.SVTAV1, "game1", 35, 4, 1)
//	stat, _ := lab.Characterize(core.SVTAV1, "game1", 35, 4)
//	tables, _ := lab.Experiment("fig4")
package core

import (
	"context"
	"fmt"

	"vcprof/internal/cbp"
	"vcprof/internal/encoders"
	"vcprof/internal/harness"
	"vcprof/internal/perf"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/bpred"
	"vcprof/internal/uarch/pipeline"
	"vcprof/internal/video"
)

// Re-exported encoder families.
const (
	SVTAV1 = encoders.SVTAV1
	X264   = encoders.X264
	X265   = encoders.X265
	Libaom = encoders.Libaom
	VP9    = encoders.VP9
)

// Family aliases the encoder family type.
type Family = encoders.Family

// Lab is a configured characterization laboratory.
type Lab struct {
	scale harness.Scale
}

// Option configures a Lab.
type Option func(*Lab) error

// WithScale replaces the workload scale.
func WithScale(s harness.Scale) Option {
	return func(l *Lab) error {
		if err := s.Validate(); err != nil {
			return err
		}
		l.scale = s
		return nil
	}
}

// WithQuickScale selects the fast three-clip scale used by benchmarks.
func WithQuickScale() Option {
	return WithScale(harness.QuickScale())
}

// NewLab builds a laboratory at the default scale.
func NewLab(opts ...Option) (*Lab, error) {
	l := &Lab{scale: harness.DefaultScale()}
	for _, o := range opts {
		if err := o(l); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Scale returns the lab's workload scale.
func (l *Lab) Scale() harness.Scale { return l.scale }

// Clip returns the procedural clip for a vbench name at the lab scale.
func (l *Lab) Clip(name string) (*video.Clip, error) {
	return l.scale.Clip(name)
}

// Encoder returns the model for a family.
func (l *Lab) Encoder(fam Family) (encoders.Encoder, error) {
	return encoders.New(fam)
}

// Encode runs one instrumented encode and returns the full result,
// including PSNR, bitrate, wall time and the dynamic instruction mix.
func (l *Lab) Encode(fam Family, clipName string, crf, preset, threads int) (*encoders.Result, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.Clip(clipName)
	if err != nil {
		return nil, err
	}
	return enc.Encode(context.Background(), clip, encoders.Options{
		CRF: crf, Preset: preset, Threads: threads,
		NewWorkerCtx: func(int) *trace.Ctx { return trace.New() },
	})
}

// EncodeWith runs an encode with full control over the options (ABR
// rate control, scene-cut keyframes, bitstream retention, threads).
func (l *Lab) EncodeWith(fam Family, clipName string, opts encoders.Options) (*encoders.Result, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.Clip(clipName)
	if err != nil {
		return nil, err
	}
	if opts.NewWorkerCtx == nil {
		opts.NewWorkerCtx = func(int) *trace.Ctx { return trace.New() }
	}
	return enc.Encode(context.Background(), clip, opts)
}

// Decode decodes a bitstream container produced by an encode with
// KeepBitstream set.
func (l *Lab) Decode(bitstream []byte) ([]*video.Frame, error) {
	return encoders.DecodeBitstream(bitstream)
}

// Characterize runs the perf-stat substitute: a single-threaded encode
// with a live branch predictor and the Xeon cache hierarchy attached,
// returning counters, IPC, MPKIs and the top-down breakdown.
func (l *Lab) Characterize(fam Family, clipName string, crf, preset int) (*perf.Counters, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.Clip(clipName)
	if err != nil {
		return nil, err
	}
	return perf.Stat(context.Background(), enc, clip, encoders.Options{CRF: crf, Preset: preset})
}

// Profile runs the gprof substitute and returns the flat profile.
func (l *Lab) Profile(fam Family, clipName string, crf, preset int) (*trace.Profile, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.Clip(clipName)
	if err != nil {
		return nil, err
	}
	return perf.Profile(context.Background(), enc, clip, encoders.Options{CRF: crf, Preset: preset})
}

// RecordWindow records a micro-op window (the Pin substitute) from
// halfway through an encode.
func (l *Lab) RecordWindow(fam Family, clipName string, crf, preset int) (*trace.Recorder, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.Clip(clipName)
	if err != nil {
		return nil, err
	}
	rec, _, err := perf.RecordWindow(context.Background(), enc, clip, encoders.Options{CRF: crf, Preset: preset}, 0.5, l.scale.WindowOps)
	return rec, err
}

// ReplayPipeline replays a recorded window through the out-of-order
// core model of the paper's machine.
func (l *Lab) ReplayPipeline(rec *trace.Recorder) (*pipeline.Result, error) {
	if rec == nil || len(rec.Ops) == 0 {
		return nil, fmt.Errorf("core: empty trace window")
	}
	sim, err := pipeline.New(pipeline.Broadwell())
	if err != nil {
		return nil, err
	}
	return sim.Run(rec.Ops)
}

// BranchChampionship records a window from an SVT-AV1 encode of the
// clip and scores the requested predictors on it (nil = the paper's
// four: gshare 2KB/32KB, TAGE 8KB/64KB).
func (l *Lab) BranchChampionship(clipName string, crf, preset int, predictors []string) ([]cbp.Score, error) {
	if predictors == nil {
		predictors = bpred.PaperSet()
	}
	rec, err := l.RecordWindow(SVTAV1, clipName, crf, preset)
	if err != nil {
		return nil, err
	}
	tr, err := cbp.FromRecorder(clipName, rec)
	if err != nil {
		return nil, err
	}
	return cbp.Championship(predictors, []cbp.Trace{tr})
}

// SweepPoint is one operating point of a CRF or preset sweep.
type SweepPoint struct {
	CRF    int
	Preset int
	Stat   *perf.Counters
}

// CRFSweep characterizes the encoder across the lab's CRF grid.
func (l *Lab) CRFSweep(fam Family, clipName string, preset int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, crf := range l.scale.CRFs {
		st, err := l.Characterize(fam, clipName, crf, preset)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{CRF: crf, Preset: preset, Stat: st})
	}
	return out, nil
}

// PresetSweep characterizes the encoder across its full preset range at
// a fixed CRF.
func (l *Lab) PresetSweep(fam Family, clipName string, crf int) ([]SweepPoint, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	lo, hi, _ := enc.PresetRange()
	var out []SweepPoint
	for p := lo; p <= hi; p++ {
		st, err := l.Characterize(fam, clipName, crf, p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{CRF: crf, Preset: p, Stat: st})
	}
	return out, nil
}

// ThreadPoint is one point of a thread-scaling measurement.
type ThreadPoint struct {
	Threads int
	// Work is the simulated makespan in instruction units.
	Work uint64
	// Speedup is serial work over makespan.
	Speedup float64
	// Imbalance is threads divided by speedup (1 = fully utilized).
	Imbalance float64
}

// ThreadSweep profiles the encoder's task-graph schedule once on the
// larger thread-scaling workload and simulates its makespan at every
// thread count of the lab's grid — the substitution for wall-clock
// scaling runs on a multicore machine (see DESIGN.md §1).
func (l *Lab) ThreadSweep(fam Family, clipName string, crf, preset int) ([]ThreadPoint, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	clip, err := l.scale.ThreadClip(clipName)
	if err != nil {
		return nil, err
	}
	sched, _, err := encoders.ProfileSchedule(context.Background(), enc, clip, encoders.Options{CRF: crf, Preset: preset})
	if err != nil {
		return nil, err
	}
	var out []ThreadPoint
	for _, th := range l.scale.Threads {
		span, _, err := sched.Makespan(th)
		if err != nil {
			return nil, err
		}
		sp, err := sched.Speedup(th)
		if err != nil {
			return nil, err
		}
		imb, err := sched.Imbalance(th)
		if err != nil {
			return nil, err
		}
		out = append(out, ThreadPoint{Threads: th, Work: span, Speedup: sp, Imbalance: imb})
	}
	return out, nil
}

// Experiment runs one of the paper's registered tables/figures.
func (l *Lab) Experiment(id string) ([]*harness.Table, error) {
	e, err := harness.Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(l.scale)
}

// Experiments lists the registered experiment IDs and titles.
func (l *Lab) Experiments() []harness.Experiment { return harness.List() }
