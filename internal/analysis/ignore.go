package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// silences the named analyzers on the directive's own line (trailing
// comment) or on the line directly below it (standalone comment). The
// reason is mandatory — an ignore without one is itself reported, so
// every suppression in the tree documents why the invariant does not
// apply. Parsing is purely syntactic; want-style fixture comments and
// ordinary prose are untouched.

const ignorePrefix = "lint:ignore"

// ignoreKey addresses one suppressed (file, line, analyzer) triple.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// suppressed reports whether a diagnostic is covered by a directive on
// its own line or the line above. A chain-carrying diagnostic may also
// be suppressed at its LAST chain hop — the declaration of the function
// containing the sink — so one function-level directive covers every
// volatile site inside that function without being as broad as a
// file allowlist. Directives on intermediate or root hops deliberately
// never suppress: an ignore on harness.RunAll must not hide a leak
// introduced three calls below it.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	if s[ignoreKey{d.File, d.Line, d.Analyzer}] ||
		s[ignoreKey{d.File, d.Line - 1, d.Analyzer}] {
		return true
	}
	if n := len(d.Chain); n > 0 {
		h := d.Chain[n-1]
		return s[ignoreKey{h.File, h.Line, d.Analyzer}] ||
			s[ignoreKey{h.File, h.Line - 1, d.Analyzer}]
	}
	return false
}

// union merges another ignore set into s.
func (s ignoreSet) union(other ignoreSet) {
	for k := range other {
		s[k] = true
	}
}

// parseIgnores scans a package's comments for directives. Malformed
// directives (no analyzer name or no reason) are returned as
// diagnostics under the pseudo-analyzer "vclint" so the driver surfaces
// them instead of silently ignoring nothing.
func parseIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason, ok := splitDirective(text)
				if !ok {
					bad = append(bad, Diagnostic{
						Analyzer: "vclint",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				_ = reason
				for _, name := range names {
					set[ignoreKey{pos.Filename, pos.Line, name}] = true
				}
			}
		}
	}
	return set, bad
}

// directiveText extracts the payload of a //lint:ignore comment.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are not directives
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, ignorePrefix)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. lint:ignorefoo
	}
	return strings.TrimSpace(rest), true
}

// splitDirective parses "<analyzer>[,...] <reason>"; both parts are
// required.
func splitDirective(text string) (names []string, reason string, ok bool) {
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil, "", false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.Join(fields[1:], " "), true
}
