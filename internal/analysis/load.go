package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("vcprof/internal/harness").
	Path string
	// Dir is the directory the files were read from, as derived from
	// the pattern that selected the package (so diagnostics echo the
	// caller's own path style).
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the type-checker results.
	Types *types.Package
	Info  *types.Info

	fset   *token.FileSet // the loader's FileSet, for position lookup
	loader *Loader        // the loader that produced the package, for closure walks
}

// Loader loads module packages from source and type-checks them with
// the standard library's type checker. Module-internal imports resolve
// recursively through the loader itself; standard-library imports go
// through go/importer's source importer, so no compiled export data,
// GOPATH layout, or golang.org/x/tools dependency is needed.
//
// Test files (_test.go) are never loaded: vclint's invariants are about
// shipped measurement paths, and several analyzers (detrand) explicitly
// exempt tests.
type Loader struct {
	// Root is the module root (the directory containing go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Fset positions every loaded file.
	Fset *token.FileSet

	base    string // directory patterns are resolved against
	baseAbs string
	std     types.Importer
	pkgs    map[string]*Package // by import path
	inProg  map[string]bool     // import-cycle guard
}

// NewLoader returns a Loader whose patterns resolve relative to dir.
// The module root is discovered by walking up from dir to go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		Fset:    fset,
		base:    dir,
		baseAbs: abs,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		inProg:  make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Load resolves patterns ("./...", "./internal/harness", "dir/...") to
// package directories, then parses and type-checks each. Results come
// back sorted by import path. Directories named testdata, vendor, or
// starting with "." or "_" are skipped by wildcard patterns but can be
// targeted explicitly — that is how fixture packages are linted.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand turns patterns into a deduplicated list of package dirs.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		walk := false
		if pat == "..." {
			pat, walk = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, walk = rest, true
			if pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(l.base, pat)
		}
		info, err := os.Stat(start)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q: not a directory", pat)
		}
		if !walk {
			if !hasGoFiles(start) {
				return nil, fmt.Errorf("analysis: no Go files in %s", pat)
			}
			add(start)
			continue
		}
		err = filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != start && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// skipDir reports whether wildcard walks descend into a directory.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e os.DirEntry) bool {
	n := e.Name()
	return !e.IsDir() && strings.HasSuffix(n, ".go") &&
		!strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") &&
		!strings.HasPrefix(n, "_")
}

// loadDir loads the package in dir, reusing the cache when the same
// package was already loaded via an import edge.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.dirImportPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadPath(path, dir)
}

// dirImportPath maps a directory inside the module to its import path.
func (l *Loader) dirImportPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.Module)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// displayDir normalizes a package directory for diagnostics: relative
// to the loader's base directory when the package is beneath it, so
// file:line output is stable no matter whether a package was first
// reached by a pattern walk or an import edge.
func (l *Loader) displayDir(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	rel, err := filepath.Rel(l.baseAbs, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return dir
	}
	return rel
}

// loadPath parses and type-checks one package.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if l.inProg[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.inProg[path] = true
	defer delete(l.inProg, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	disp := l.displayDir(dir)
	var files []*ast.File
	for _, e := range ents {
		if !isSourceFile(e) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(disp, e.Name()), src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, fset: l.Fset, loader: l}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths recurse into
// the loader; everything else is resolved from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg.Types, nil
		}
		rel := strings.TrimPrefix(path, l.Module)
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
