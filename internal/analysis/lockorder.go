package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockOrder builds the lockorder analyzer: a whole-program
// lock-acquisition graph whose cycles are potential deadlocks. Locks
// are tracked as *classes*, instance-insensitively — "sched.Pool.mu"
// means the mu field of any Pool, "obs.registry" the package-level
// registry var — because two goroutines deadlock by taking two classes
// in opposite orders regardless of which instances they hold.
//
// Edge extraction is a source-order walk of every function body: a
// sync Lock/RLock call adds an edge from every class currently held to
// the class being taken; Unlock/RUnlock releases; a deferred unlock
// keeps the class held to the end of the function (that is its point).
// Function literals and go statements are walked with an empty held
// set — a goroutine starts holding nothing. Calls made while holding a
// lock add edges to every class the callee can transitively acquire
// (a fixpoint over the call graph), which is what catches the classic
// shape: A.Lock → helper() → B.Lock in one package, B.Lock → A.Lock in
// another.
//
// Cycles are reported once per strongly connected component, at the
// first in-scope acquisition edge, with the enclosing function as the
// suppression hop.
func NewLockOrder(paths []string) *Analyzer {
	scope := pathScope{name: "lockorder", paths: paths}
	az := &Analyzer{
		Name: "lockorder",
		Doc:  "report cycles in the whole-program lock-acquisition order (potential deadlocks)",
	}
	az.RunProgram = func(pp *ProgramPass) {
		g := pp.Prog.CallGraph()
		ext := &lockExtractor{g: g}
		for _, n := range g.Nodes {
			ext.walkNode(n)
		}
		ext.addCallEdges()
		reportLockCycles(pp, scope, ext.edges)
	}
	return az
}

// lockEdge is one observed ordering: `to` was acquired while `from`
// was held, at site inside node.
type lockEdge struct {
	from, to string
	site     token.Pos
	node     *Node
}

// lockCall is a call made while holding locks, pending expansion
// against the callee's transitive acquisition set.
type lockCall struct {
	callees []*Node
	held    []string
	site    token.Pos
	node    *Node
}

type lockExtractor struct {
	g        *CallGraph
	edges    []lockEdge
	calls    []lockCall
	localAcq map[*Node]map[string]bool
}

// walkNode extracts one function's acquisition edges, local acquires,
// and held-calls.
func (x *lockExtractor) walkNode(n *Node) {
	if x.localAcq == nil {
		x.localAcq = make(map[*Node]map[string]bool)
	}
	x.localAcq[n] = make(map[string]bool)
	siteCallees := make(map[token.Pos][]*Node)
	for _, e := range n.Out {
		siteCallees[e.Site] = append(siteCallees[e.Site], e.Callee)
	}
	x.walkBody(n, n.Decl.Body, siteCallees, map[string]bool{}, nil)
}

// walkBody walks stmts in source order with a mutable held set. order
// tracks acquisition order for deterministic held snapshots.
func (x *lockExtractor) walkBody(n *Node, body ast.Node, siteCallees map[token.Pos][]*Node, held map[string]bool, order []string) {
	info := n.Pkg.Info
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.FuncLit:
			// A literal may run later, on another goroutine, or under
			// different locks; start it from an empty held set.
			x.walkBody(n, s.Body, siteCallees, map[string]bool{}, nil)
			return false
		case *ast.GoStmt:
			// A spawned callee — literal or named — starts on a fresh
			// goroutine with an empty held set; the caller's locks are
			// not inherited, so no held→acquirable edge arises. Only
			// the call's operands evaluate on this goroutine.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				x.walkBody(n, lit.Body, siteCallees, map[string]bool{}, nil)
			}
			for _, arg := range s.Call.Args {
				x.walkBody(n, arg, siteCallees, held, order)
			}
			return false
		case *ast.DeferStmt:
			if _, op, ok := syncLockOp(info, s.Call); ok && strings.HasSuffix(op, "Unlock") {
				return false // deferred unlock: class stays held to return
			}
			return true
		case *ast.CallExpr:
			class, op, ok := syncLockOp(info, s)
			if ok {
				switch op {
				case "Lock", "RLock":
					for _, h := range order {
						if held[h] && h != class {
							x.edges = append(x.edges, lockEdge{from: h, to: class, site: s.Pos(), node: n})
						}
					}
					if held[class] {
						// Re-acquiring a held class is a self-edge
						// (guaranteed self-deadlock for a plain Mutex).
						x.edges = append(x.edges, lockEdge{from: class, to: class, site: s.Pos(), node: n})
					} else {
						held[class] = true
						order = append(order, class)
					}
					x.localAcq[n][class] = true
				case "Unlock", "RUnlock":
					delete(held, class)
				}
				return false
			}
			if callees := siteCallees[s.Lparen]; len(callees) > 0 && len(held) > 0 {
				var snap []string
				for _, h := range order {
					if held[h] {
						snap = append(snap, h)
					}
				}
				x.calls = append(x.calls, lockCall{callees: callees, held: snap, site: s.Pos(), node: n})
			}
			return true
		}
		return true
	})
}

// addCallEdges computes each node's transitive acquisition set (a
// fixpoint over the call graph) and expands every held-call into
// held→acquirable edges.
func (x *lockExtractor) addCallEdges() {
	acq := make(map[*Node]map[string]bool, len(x.localAcq))
	for n, local := range x.localAcq {
		s := make(map[string]bool, len(local))
		for c := range local {
			s[c] = true
		}
		acq[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range x.g.Nodes {
			mine := acq[n]
			for _, e := range n.Out {
				for c := range acq[e.Callee] {
					if !mine[c] {
						mine[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, call := range x.calls {
		targets := make(map[string]bool)
		for _, callee := range call.callees {
			for c := range acq[callee] {
				targets[c] = true
			}
		}
		var sorted []string
		for c := range targets {
			sorted = append(sorted, c)
		}
		sort.Strings(sorted)
		for _, h := range call.held {
			for _, c := range sorted {
				if h != c {
					x.edges = append(x.edges, lockEdge{from: h, to: c, site: call.site, node: call.node})
				} else {
					x.edges = append(x.edges, lockEdge{from: h, to: h, site: call.site, node: call.node})
				}
			}
		}
	}
}

// syncLockOp recognizes a call of a sync.Mutex/RWMutex (R)Lock or
// (R)Unlock — directly or through embedding — and returns the lock
// class of the receiver expression.
func syncLockOp(info *types.Info, call *ast.CallExpr) (class, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	class, classOK := lockClassOf(info, sel.X)
	if !classOK {
		return "", "", false
	}
	return class, sel.Sel.Name, true
}

// lockClassOf renders a lock receiver expression as an
// instance-insensitive class name: package-level vars keep their name
// ("obs.registry"), locals and parameters are represented by their
// named type ("sched.Pool"), field selections append the field name,
// and index expressions collapse to "[]" (any element of a container
// is one class).
func lockClassOf(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		v, isVar := obj.(*types.Var)
		if !isVar {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + x.Name, true
		}
		t := v.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			pkg := "_"
			if named.Obj().Pkg() != nil {
				pkg = named.Obj().Pkg().Name()
			}
			return pkg + "." + named.Obj().Name(), true
		}
		return "", false
	case *ast.SelectorExpr:
		base, baseOK := lockClassOf(info, x.X)
		if !baseOK {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	case *ast.IndexExpr:
		base, baseOK := lockClassOf(info, x.X)
		if !baseOK {
			return "", false
		}
		return base + "[]", true
	case *ast.StarExpr:
		return lockClassOf(info, x.X)
	}
	return "", false
}

// reportLockCycles finds strongly connected components of the class
// graph and reports each cycle (SCC of size ≥ 2, or a self-edge) once,
// at its first in-scope edge.
func reportLockCycles(pp *ProgramPass, scope pathScope, edges []lockEdge) {
	adj := make(map[string]map[string]bool)
	var classes []string
	seen := make(map[string]bool)
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	for _, e := range edges {
		note(e.from)
		note(e.to)
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	sort.Strings(classes)
	comp := sccs(classes, adj)
	for _, scc := range comp {
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		cyclic := len(scc) >= 2
		if !cyclic {
			cyclic = adj[scc[0]][scc[0]] // self-edge
		}
		if !cyclic {
			continue
		}
		// First in-scope edge inside the component, by position.
		var best *lockEdge
		for i := range edges {
			e := &edges[i]
			if !inSCC[e.from] || !inSCC[e.to] {
				continue
			}
			if !scope.in(e.node.Pkg.Path) {
				continue
			}
			if best == nil || e.site < best.site {
				best = e
			}
		}
		if best == nil {
			continue // cycle entirely outside the configured scope
		}
		pos := pp.Prog.Fset.Position(best.node.Decl.Pos())
		hop := ChainHop{Func: best.node.Name(), File: pos.Filename, Line: pos.Line, Col: pos.Column}
		if len(scc) == 1 {
			pp.ReportfChain(best.site, []ChainHop{hop},
				"lock class %s can be re-acquired while already held (self-deadlock for a plain Mutex)",
				scc[0])
			continue
		}
		pp.ReportfChain(best.site, []ChainHop{hop},
			"potential deadlock: lock classes %s are acquired in conflicting orders (cycle %s)",
			strings.Join(scc, ", "), strings.Join(append(append([]string{}, scc...), scc[0]), " → "))
	}
}

// sccs computes strongly connected components (iterative Tarjan) over
// the class graph; both the components and their members come back in
// deterministic order.
func sccs(classes []string, adj map[string]map[string]bool) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0

	sortedAdj := func(c string) []string {
		var ns []string
		for n := range adj[c] {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		return ns
	}

	type frame struct {
		node  string
		succs []string
		i     int
	}
	for _, start := range classes {
		if _, visited := index[start]; visited {
			continue
		}
		var work []frame
		push := func(c string) {
			index[c] = next
			low[c] = next
			next++
			stack = append(stack, c)
			onStack[c] = true
			work = append(work, frame{node: c, succs: sortedAdj(c)})
		}
		push(start)
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succs) {
				succ := f.succs[f.i]
				f.i++
				if _, visited := index[succ]; !visited {
					push(succ)
				} else if onStack[succ] {
					if index[succ] < low[f.node] {
						low[f.node] = index[succ]
					}
				}
				continue
			}
			if low[f.node] == index[f.node] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == f.node {
						break
					}
				}
				sort.Strings(comp)
				out = append(out, comp)
			}
			done := *f
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := &work[len(work)-1]
				if low[done.node] < low[parent.node] {
					low[parent.node] = low[done.node]
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
