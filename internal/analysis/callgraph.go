package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The whole-program layer: a Program aggregates every loaded package
// (plus the module-internal import closure the loader pulled in), and a
// CallGraph over it resolves who can call whom. Resolution is
// class-hierarchy style (CHA) over go/types:
//
//   - static calls and method calls on concrete receivers get one edge;
//   - interface method calls get an edge to the matching method of
//     every named type in the program that implements the interface;
//   - calls through function values (fields, variables, parameters,
//     method values) get an edge to every address-taken function or
//     method with an identical signature.
//
// Function literals are inlined into the declaration that lexically
// encloses them: a closure's calls and volatile sites belong to the
// function that built it. That is deliberately conservative — a closure
// handed to a scheduler is reachable as soon as its builder is — and it
// is what lets detflow taint the encoder task bodies through the graph
// builders without tracking closure values through data structures.
//
// The graph is deterministic: nodes are ordered by declaration
// position, edges by call-site position, so analyzer output built on it
// is byte-stable run to run.

// Program is the whole-program view whole-program analyzers run on.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the analyzed packages sorted by import path: the
	// packages the driver was given plus every module-internal package
	// reachable from them through imports.
	Pkgs []*Package

	cg *CallGraph
}

// NewProgram assembles the whole-program view over the given packages
// plus the module-internal import closure (the loader caches every
// package it type-checked), so call chains cross package boundaries
// even when a single package directory was named on the command line.
func NewProgram(pkgs []*Package) *Program {
	seen := make(map[string]*Package)
	var fset *token.FileSet
	for _, p := range pkgs {
		if fset == nil {
			fset = p.fset
		}
		seen[p.Path] = p
		if p.loader == nil {
			continue
		}
		for path, q := range p.loader.pkgs {
			if _, ok := seen[path]; !ok {
				seen[path] = q
			}
		}
	}
	prog := &Program{Fset: fset}
	var paths []string
	for path := range seen {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		prog.Pkgs = append(prog.Pkgs, seen[path])
	}
	return prog
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// EdgeKind classifies how a call site was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a known function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a CHA-resolved interface method call.
	EdgeInterface
	// EdgeDynamic is a call through a function value, resolved to every
	// address-taken function of identical signature.
	EdgeDynamic
)

// Edge is one resolved call: the source position of the call expression
// and the possible callee.
type Edge struct {
	Site   token.Pos
	Kind   EdgeKind
	Callee *Node
}

// Node is one declared function or method with a body. Function
// literals have no nodes of their own; their bodies belong to the
// enclosing declaration.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists the node's resolved call edges in call-site order.
	Out []Edge
}

// Name renders the node the way diagnostics spell functions:
// pkg.Func or pkg.(*Type).Method.
func (n *Node) Name() string { return funcDisplayName(n.Func) }

// funcDisplayName renders a *types.Func as pkg.Name or
// pkg.(*Recv).Name.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + fn.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
		star = "*"
	}
	name := "?"
	if named, okn := t.(*types.Named); okn {
		name = named.Obj().Name()
	}
	return pkg + "(" + star + name + ")." + fn.Name()
}

// CallGraph is the CHA-resolved call graph of a Program.
type CallGraph struct {
	prog  *Program
	nodes map[*types.Func]*Node
	// Nodes lists every declared function with a body, ordered by
	// declaration position (file name, then offset).
	Nodes []*Node
}

// NodeOf returns the node for a declared function, or nil when the
// function has no body in the program (imported, external).
func (g *CallGraph) NodeOf(fn *types.Func) *Node { return g.nodes[fn] }

// buildCallGraph constructs the graph in two passes: collect the nodes,
// then resolve every call site.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{prog: prog, nodes: make(map[*types.Func]*Node)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, fd := range funcDecls(f) {
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		a := prog.Fset.Position(g.Nodes[i].Decl.Pos())
		b := prog.Fset.Position(g.Nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	named := programNamedTypes(prog)
	addr := addressTakenFuncs(prog, g)
	for _, n := range g.Nodes {
		g.resolveEdges(n, named, addr)
		sort.SliceStable(n.Out, func(i, j int) bool { return n.Out[i].Site < n.Out[j].Site })
	}
	return g
}

// programNamedTypes collects every named (non-interface) type declared
// in the program, in deterministic order, for CHA interface resolution.
func programNamedTypes(prog *Program) []*types.Named {
	var out []*types.Named
	for _, pkg := range prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := n.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, n)
		}
	}
	return out
}

// addressTakenFuncs maps a normalized signature key to every declared
// function or method whose value escapes (referenced outside call
// position) — the conservative target set for calls through function
// values.
func addressTakenFuncs(prog *Program, g *CallGraph) map[string][]*Node {
	addr := make(map[string][]*Node)
	seen := make(map[string]map[*Node]bool)
	add := func(key string, n *Node) {
		if seen[key] == nil {
			seen[key] = make(map[*Node]bool)
		}
		if !seen[key][n] {
			seen[key][n] = true
			addr[key] = append(addr[key], n)
		}
	}
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			inCall := make(map[ast.Node]bool)
			ast.Inspect(f, func(nd ast.Node) bool {
				switch e := nd.(type) {
				case *ast.CallExpr:
					// The function operand of a call is not a value use;
					// children are visited after the parent, so marking
					// here is seen in time.
					inCall[ast.Unparen(e.Fun)] = true
				case *ast.Ident:
					if inCall[e] {
						return true
					}
					if fn, ok := info.Uses[e].(*types.Func); ok {
						if n := g.nodes[fn]; n != nil {
							if sig, ok := info.TypeOf(e).(*types.Signature); ok {
								add(sigKey(sig), n)
							}
						}
					}
				case *ast.SelectorExpr:
					if inCall[e] {
						return true
					}
					if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
						if n := g.nodes[fn]; n != nil {
							// A method value's type drops the receiver;
							// key by the expression's type so the call
							// side matches.
							if sig, ok := info.TypeOf(e).(*types.Signature); ok {
								add(sigKey(sig), n)
							}
						}
					}
				}
				return true
			})
		}
	}
	return addr
}

// sigKey normalizes a signature to parameter/result types only (names
// and receivers stripped) with full package paths, so method values and
// plain functions of the same shape share a key.
func sigKey(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	writeTuple := func(t *types.Tuple) {
		b.WriteByte('(')
		for i := 0; i < t.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(types.TypeString(t.At(i).Type(), qual))
		}
		b.WriteByte(')')
	}
	writeTuple(sig.Params())
	if sig.Variadic() {
		b.WriteString("...")
	}
	writeTuple(sig.Results())
	return b.String()
}

// resolveEdges walks one node's body (function literals included) and
// appends an edge per resolvable call site.
func (g *CallGraph) resolveEdges(n *Node, named []*types.Named, addr map[string][]*Node) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		site := call.Lparen
		fun := ast.Unparen(call.Fun)
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[f].(type) {
			case *types.Func:
				if target := g.nodes[obj]; target != nil {
					n.Out = append(n.Out, Edge{Site: site, Kind: EdgeStatic, Callee: target})
				}
				return true
			case *types.Builtin, *types.TypeName:
				return true // builtin or conversion, never an edge
			}
		case *ast.SelectorExpr:
			if sel := info.Selections[f]; sel != nil && sel.Kind() == types.MethodVal {
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					g.addInterfaceEdges(n, site, iface, f.Sel.Name, named)
					return true
				}
			}
			if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
				if target := g.nodes[fn]; target != nil {
					n.Out = append(n.Out, Edge{Site: site, Kind: EdgeStatic, Callee: target})
				}
				return true
			}
			if _, ok := info.Uses[f.Sel].(*types.TypeName); ok {
				return true // conversion through a qualified type
			}
		case *ast.FuncLit:
			return true // immediately-invoked literal: body already inlined
		}
		// Call through a function value: conservative signature match.
		if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
			for _, target := range addr[sigKey(sig)] {
				n.Out = append(n.Out, Edge{Site: site, Kind: EdgeDynamic, Callee: target})
			}
		}
		return true
	})
}

// addInterfaceEdges adds CHA edges for a call of iface method name: one
// per named program type implementing the interface.
func (g *CallGraph) addInterfaceEdges(n *Node, site token.Pos, iface *types.Interface, name string, named []*types.Named) {
	for _, t := range named {
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(t.Obj().Pkg(), name)
		if sel == nil {
			continue
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if target := g.nodes[fn]; target != nil {
			n.Out = append(n.Out, Edge{Site: site, Kind: EdgeInterface, Callee: target})
		}
	}
}

// ---------------------------------------------------------------------
// Reachability with chains.

// chainStep records how a node was first reached during BFS.
type chainStep struct {
	prev *Node
}

// reachFrom runs a breadth-first reachability sweep from roots (in the
// given order) and returns, per reached node, the step that first
// discovered it. Roots map to a zero step. The BFS order is
// deterministic: roots in configuration order, edges in site order.
func (g *CallGraph) reachFrom(roots []*Node) map[*Node]chainStep {
	reached := make(map[*Node]chainStep)
	var queue []*Node
	for _, r := range roots {
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = chainStep{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if _, ok := reached[e.Callee]; ok {
				continue
			}
			reached[e.Callee] = chainStep{prev: n}
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// chainTo reconstructs the root→node call chain recorded by reachFrom:
// one hop per function, positioned at its declaration. The last hop is
// the function containing the sink, which is the only hop a
// //lint:ignore directive may suppress through.
func (g *CallGraph) chainTo(reached map[*Node]chainStep, n *Node) []ChainHop {
	var rev []*Node
	for cur := n; ; {
		step, ok := reached[cur]
		if !ok {
			return nil
		}
		rev = append(rev, cur)
		if step.prev == nil {
			break
		}
		cur = step.prev
	}
	hops := make([]ChainHop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		pos := g.prog.Fset.Position(rev[i].Decl.Pos())
		hops = append(hops, ChainHop{
			Func: rev[i].Name(),
			File: pos.Filename,
			Line: pos.Line,
			Col:  pos.Column,
		})
	}
	return hops
}
