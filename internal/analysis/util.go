package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathScope restricts an analyzer to configured import-path prefixes.
// A package is additionally in scope when it sits under a testdata
// directory segment named after the analyzer ("testdata/detnow/..."),
// so the fixture trees exercise the exact analyzer instances that
// cmd/vclint ships, end to end, without widening the repo config.
type pathScope struct {
	name  string
	paths []string
}

// in reports whether a package path falls inside the scope.
func (s pathScope) in(pkgPath string) bool {
	for _, p := range s.paths {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return strings.Contains(pkgPath, "testdata/"+s.name)
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and indirect calls through
// variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is package pkgPath's function named name
// (methods have no package-level name and never match).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// pkgFuncIn reports whether fn is a package-level function of pkgPath
// whose name appears in names; an empty names set matches any function
// of the package.
func pkgFuncIn(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath ||
		fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// rootIdent walks to the base identifier of a selector chain
// (cellCache.lru.Back → cellCache); nil when the base is not a plain
// identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// funcDecls yields every function declaration with a body in the file.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
