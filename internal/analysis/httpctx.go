package analysis

import (
	"go/ast"
	"go/types"
)

// NewHTTPCtx builds the httpctx analyzer: inside handler-shaped
// functions — anything with the (http.ResponseWriter, *http.Request)
// signature, declared or literal — constructing a fresh root context
// with context.Background() or context.TODO() is banned. A handler that
// reaches the harness through a root context severs the request from
// cancellation: client disconnects, per-request deadlines and the
// daemon's drain would no longer abort the measurement. Handlers must
// derive from r.Context() (or from a server-lifetime context owned by
// whoever coordinates the drain, passed in as a field — never minted
// inline in the handler).
func NewHTTPCtx(paths []string) *Analyzer {
	scope := pathScope{name: "httpctx", paths: paths}
	az := &Analyzer{
		Name: "httpctx",
		Doc:  "require HTTP handlers to propagate r.Context() instead of minting root contexts",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			// reported dedupes sites seen through nested handler-shaped
			// literals inside handler-shaped functions.
			reported := make(map[ast.Node]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.Node
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil && isHandlerSig(funcDeclSig(info, fn)) {
						b := ast.Node(fn.Body)
						body = &b
					}
				case *ast.FuncLit:
					if sig, ok := info.Types[fn].Type.(*types.Signature); ok && isHandlerSig(sig) {
						b := ast.Node(fn.Body)
						body = &b
					}
				}
				if body == nil {
					return true
				}
				ast.Inspect(*body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok || reported[call] {
						return true
					}
					fn := calleeFunc(info, call)
					if pkgFuncIn(fn, "context", "Background", "TODO") {
						reported[call] = true
						pass.Reportf(call.Pos(),
							"context.%s inside an HTTP handler severs request cancellation; derive from r.Context() so disconnects and the server drain reach the harness",
							fn.Name())
					}
					return true
				})
				return true
			})
		}
	}
	return az
}

// funcDeclSig resolves a declaration's signature (nil if unchecked).
func funcDeclSig(info *types.Info, fd *ast.FuncDecl) *types.Signature {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig, _ := obj.Type().(*types.Signature)
	return sig
}

// isHandlerSig reports the (http.ResponseWriter, *http.Request) shape.
func isHandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 {
		return false
	}
	return isHTTPNamed(sig.Params().At(0).Type(), "ResponseWriter") &&
		isHTTPPtr(sig.Params().At(1).Type(), "Request")
}

func isHTTPNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

func isHTTPPtr(t types.Type, name string) bool {
	p, ok := t.(*types.Pointer)
	return ok && isHTTPNamed(p.Elem(), name)
}
