package analysis

import (
	"strconv"
)

// NewDetRand builds the detrand analyzer: no math/rand, math/rand/v2,
// or crypto/rand anywhere outside tests. Even a seeded math/rand source
// is not reproducible across Go releases (the generator is not part of
// the compatibility promise), and crypto/rand is nondeterministic by
// design. vcprof derives every pseudo-random value from the
// deterministic splitmix-style hash generators in internal/video, so
// clip content and experiment tables are identical on every host.
// Test files are exempt structurally: the loader never parses them.
func NewDetRand() *Analyzer {
	banned := map[string]bool{
		"math/rand":    true,
		"math/rand/v2": true,
		"crypto/rand":  true,
	}
	az := &Analyzer{
		Name: "detrand",
		Doc:  "forbid math/rand and crypto/rand outside tests",
	}
	az.Run = func(pass *Pass) {
		for _, f := range pass.Files() {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !banned[path] {
					continue
				}
				pass.Reportf(imp.Pos(),
					"nondeterministic randomness source %q; derive values from the deterministic hash generators (internal/video) so output is host- and release-independent",
					path)
			}
		}
	}
	return az
}
