package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each testdata package annotates the lines it
// expects findings on with comments of the form
//
//	// want `regexp` [`regexp` ...]
//
// Every diagnostic must match a want on its exact line and every want
// must be matched, so fixtures pin both positives and negatives. The
// patterns match against "analyzer: message", and the harness runs the
// full shipped analyzer set — the same instances cmd/vclint uses — so
// the fixtures also prove the scope rules route each package to the
// right analyzers.

var wantPattern = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture loads one package under testdata.
func loadFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./testdata/" + dir)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// collectWants extracts the expectations from a package's comments.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.fset.Position(c.Pos())
					ms := wantPattern.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment without a backquoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runFixture checks one fixture package against its want comments.
func runFixture(t *testing.T, dir string) {
	t.Helper()
	pkgs := loadFixture(t, dir)
	wants := collectWants(t, pkgs)
	diags := Run(pkgs, VCProfAnalyzers())
	for _, d := range diags {
		msg := d.Analyzer + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(msg) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d:%d: %s", d.File, d.Line, d.Col, msg)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.re)
		}
	}
}

// TestFixtures runs every analyzer fixture. Each fixture must both trip
// its analyzer on the annotated lines and stay silent on the
// counter-example functions.
func TestFixtures(t *testing.T) {
	for _, dir := range []string{
		"detnow", "detmaprange", "detrand", "lockheld", "hotalloc", "detenv",
		"httpctx", "histbuckets",
		// Whole-program fixtures; detflow loads its inner subpackage
		// too, pinning a cross-package call chain.
		"detflow/...", "lockorder", "shardpure",
	} {
		t.Run(dir, func(t *testing.T) { runFixture(t, dir) })
	}
}

// TestFixturesFindSomething guards against a silently dead analyzer: a
// fixture with zero findings and zero wants would pass runFixture.
func TestFixturesFindSomething(t *testing.T) {
	for _, dir := range []string{
		"detnow", "detmaprange", "detrand", "lockheld", "hotalloc", "detenv",
		"httpctx", "histbuckets",
		"detflow/...", "lockorder", "shardpure",
	} {
		t.Run(dir, func(t *testing.T) {
			diags := Run(loadFixture(t, dir), VCProfAnalyzers())
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no findings", dir)
			}
		})
	}
}
