package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardPureConfig names what counts as a scheduler task body.
type ShardPureConfig struct {
	// TaskIfaces are interface methods, "import/path.Iface.Method":
	// the method body of every program type implementing the interface
	// is a task body (sched.Graph.Run, encoders.TaskGraph.Run).
	TaskIfaces []string
	// SubmitFuncs are functions or methods, "import/path.Func" or
	// "import/path.Type.Method", whose function-literal arguments are
	// task bodies (encoders' graph.add run closures).
	SubmitFuncs []string
}

// NewShardPure builds the shardpure analyzer: closures and methods the
// scheduler may run concurrently must write shared state only through
// an element index — their own shard-indexed result slot. That is the
// discipline that makes PR 6's schedule-invariance hold by
// construction: res[i] = r is safe for distinct i no matter which
// worker runs what, while res = append(res, r), done++ or st.field = v
// on captured state races and reintroduces schedule-dependent bytes.
//
// Flagged inside a task body, when the target is declared outside it
// (captured variable, receiver state, package-level var):
//
//   - plain stores with no index expression on the path (x = v,
//     st.field = v);
//   - compound assignments (x += v) and ++/-- anywhere, indexed or
//     not — read-modify-write is order-dependent even on elements;
//
// Plain element stores (res[i] = v, pic.segs[slot].data = v) pass.
// Mutex-guarded aggregation is a deliberate design exception: justify
// it with //lint:ignore shardpure <reason> at the site or on the
// enclosing function.
func NewShardPure(cfg ShardPureConfig) *Analyzer {
	az := &Analyzer{
		Name: "shardpure",
		Doc:  "scheduler task bodies may write shared state only through their own indexed slot",
	}
	az.RunProgram = func(pp *ProgramPass) {
		g := pp.Prog.CallGraph()
		type ifaceMethod struct {
			iface  *types.Interface
			method string
		}
		var ifaces []ifaceMethod
		for _, spec := range cfg.TaskIfaces {
			if iface, m := lookupIfaceMethod(pp.Prog, spec); iface != nil {
				ifaces = append(ifaces, ifaceMethod{iface, m})
			}
		}
		submit := make(map[string]bool, len(cfg.SubmitFuncs))
		for _, s := range cfg.SubmitFuncs {
			submit[s] = true
		}
		for _, n := range g.Nodes {
			info := n.Pkg.Info
			sig := n.Func.Type().(*types.Signature)
			// Task-interface method bodies: shared state is the
			// receiver and package-level vars.
			if sig.Recv() != nil {
				recv := sig.Recv().Type()
				for _, im := range ifaces {
					if n.Func.Name() != im.method {
						continue
					}
					if !types.Implements(recv, im.iface) &&
						!types.Implements(types.NewPointer(recv), im.iface) {
						continue
					}
					recvObj := recvVarOf(n)
					checkTaskBody(pp, n, n.Decl.Body, func(obj types.Object) bool {
						if obj == recvObj && recvObj != nil {
							return true
						}
						return isPkgLevelVar(obj)
					})
					break
				}
			}
			// Function literals handed to submit functions: shared
			// state is anything declared outside the literal.
			ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || !submit[funcKey(fn)] {
					return true
				}
				for _, arg := range call.Args {
					lit, isLit := ast.Unparen(arg).(*ast.FuncLit)
					if !isLit {
						continue
					}
					checkTaskBody(pp, n, lit.Body, func(obj types.Object) bool {
						if isPkgLevelVar(obj) {
							return true
						}
						return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
					})
				}
				return true
			})
		}
	}
	return az
}

// funcKey renders a function or method the way ShardPureConfig spells
// it: "pkg/path.Func" or "pkg/path.Type.Method".
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
}

// recvVarOf returns the receiver variable object of a method node, or
// nil for unnamed receivers.
func recvVarOf(n *Node) types.Object {
	recv := n.Decl.Recv
	if recv == nil || len(recv.List) == 0 || len(recv.List[0].Names) == 0 {
		return nil
	}
	return n.Pkg.Info.Defs[recv.List[0].Names[0]]
}

// isPkgLevelVar reports whether obj is a package-level variable.
func isPkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkTaskBody reports impure writes in one task body. shared decides
// whether a root object is outside the body (and thus shared with
// other tasks); the enclosing function n provides the suppression hop.
func checkTaskBody(pp *ProgramPass, n *Node, body ast.Node, shared func(types.Object) bool) {
	info := n.Pkg.Info
	pos := pp.Prog.Fset.Position(n.Decl.Pos())
	hop := []ChainHop{{Func: n.Name(), File: pos.Filename, Line: pos.Line, Col: pos.Column}}
	sharedRoot := func(e ast.Expr) (string, bool) {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return "", false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return "", false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return "", false
		}
		if !shared(obj) {
			return "", false
		}
		return id.Name, true
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				name, isShared := sharedRoot(lhs)
				if !isShared {
					continue
				}
				if s.Tok != token.ASSIGN {
					pp.ReportfChain(lhs.Pos(), hop,
						"task body read-modify-writes shared %q (%s); accumulate into the task's own slot and reduce after the graph completes",
						name, s.Tok)
					continue
				}
				if !hasIndexOnPath(lhs) {
					pp.ReportfChain(lhs.Pos(), hop,
						"task body writes shared %q without an element index; a task may only fill its own shard-indexed slot",
						name)
				}
			}
		case *ast.IncDecStmt:
			if name, isShared := sharedRoot(s.X); isShared {
				pp.ReportfChain(s.X.Pos(), hop,
					"task body increments shared %q; counters belong in per-shard slots reduced after the graph completes",
					name)
			}
		}
		return true
	})
}
