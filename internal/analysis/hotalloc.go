package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotAlloc builds the hotalloc analyzer: the per-pixel/per-block
// kernels (codec transforms, motion search, intra prediction,
// quantization) and the per-access/per-op simulator loops (cache,
// pipeline) are the measured hot paths — an allocation inside their
// loops both distorts the instruction counts the experiments report and
// dominates runtime. Inside any loop in a scoped package the analyzer
// flags: fmt.* calls (formatting allocates and boxes every operand),
// string concatenation (each + builds a fresh string), and explicit
// conversions to interface types (boxing). Error construction belongs
// before the loop (validate, then iterate) or in package-level sentinel
// errors.
func NewHotAlloc(paths []string) *Analyzer {
	scope := pathScope{name: "hotalloc", paths: paths}
	az := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid fmt calls, string concatenation, and interface boxing inside kernel loops",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			for _, fd := range funcDecls(f) {
				scanLoops(pass, info, fd.Body, false)
			}
		}
	}
	return az
}

// scanLoops walks a subtree tracking whether evaluation happens once
// per loop iteration; loop conditions and post statements count as
// inside the loop.
func scanLoops(pass *Pass, info *types.Info, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				scanLoops(pass, info, s.Init, inLoop)
			}
			if s.Cond != nil {
				scanLoops(pass, info, s.Cond, true)
			}
			if s.Post != nil {
				scanLoops(pass, info, s.Post, true)
			}
			scanLoops(pass, info, s.Body, true)
			return false
		case *ast.RangeStmt:
			scanLoops(pass, info, s.X, inLoop)
			scanLoops(pass, info, s.Body, true)
			return false
		}
		if inLoop {
			flagHotAlloc(pass, info, m)
		}
		return true
	})
}

// flagHotAlloc reports one node if it is a loop-allocating construct.
func flagHotAlloc(pass *Pass, info *types.Info, n ast.Node) {
	switch e := n.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(info, e); pkgFuncIn(fn, "fmt") {
			pass.Reportf(e.Pos(),
				"fmt.%s inside a kernel loop allocates and boxes its operands; hoist it out of the loop or use a sentinel error",
				fn.Name())
			return
		}
		// Explicit conversion to an interface type boxes the operand.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				pass.Reportf(e.Pos(),
					"conversion to %s inside a kernel loop boxes the value on the heap; keep kernel data concrete",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isStringType(info.TypeOf(e)) {
			pass.Reportf(e.Pos(),
				"string concatenation inside a kernel loop allocates per iteration; build strings outside the loop or use a preallocated buffer")
		}
	case *ast.AssignStmt:
		if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(info.TypeOf(e.Lhs[0])) {
			pass.Reportf(e.Pos(),
				"string += inside a kernel loop reallocates the whole string per iteration; use a preallocated buffer")
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
