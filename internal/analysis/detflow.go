package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlowConfig names the deterministic roots whose whole call trees
// must be free of volatile sources, and the packages in which reachable
// volatile sites are reported.
type DetFlowConfig struct {
	// Funcs are package-level roots, "import/path.Func".
	Funcs []string
	// Methods are method roots, "import/path.Type.Method" (the receiver
	// type's name, pointer or value receiver).
	Methods []string
	// IfaceImpls name interface methods, "import/path.Iface.Method":
	// every program type implementing the interface contributes its
	// method as a root. This is how scheduler task bodies are tainted —
	// anything runnable by the pool must be deterministic.
	IfaceImpls []string
	// SinkPaths are the import-path prefixes volatile sites are
	// reported in (the deterministic core). Reachable sites in other
	// packages — the serving and telemetry layers, which own wall-clock
	// legitimately — are not findings.
	SinkPaths []string
}

// NewDetFlow builds the detflow analyzer: whole-program determinism
// taint. Every configured root is a function whose result must be
// byte-reproducible; detflow walks the call graph from the roots and
// reports any reachable volatile source — wall-clock reads, randomness,
// host-environment reads, map iteration with order-dependent effects,
// goroutine-captured writes — with the root→sink call chain attached
// (`vclint -why` prints it). Unlike the per-package det* analyzers, a
// leak three calls deep in a helper package is found even though the
// helper itself is not configured anywhere.
//
// Suppression is chain-aware: //lint:ignore detflow <reason> on (or
// above) the declaration of the function containing the site silences
// every finding inside that function, but directives on intermediate
// callers or roots never suppress — a justified exemption must sit next
// to the volatile code it justifies.
func NewDetFlow(cfg DetFlowConfig) *Analyzer {
	scope := pathScope{name: "detflow", paths: cfg.SinkPaths}
	az := &Analyzer{
		Name: "detflow",
		Doc:  "forbid volatile sources (clock, rand, env, map order, racy writes) reachable from deterministic roots",
	}
	az.RunProgram = func(pp *ProgramPass) {
		g := pp.Prog.CallGraph()
		roots := detflowRoots(pp.Prog, g, cfg)
		if len(roots) == 0 {
			return
		}
		reached := g.reachFrom(roots)
		for _, n := range g.Nodes {
			if _, ok := reached[n]; !ok {
				continue
			}
			if !scope.in(n.Pkg.Path) {
				continue
			}
			chain := g.chainTo(reached, n)
			if len(chain) == 0 {
				continue
			}
			root := chain[0].Func
			for _, site := range volatileSites(n) {
				pp.ReportfChain(site.pos, chain,
					"%s reachable from deterministic root %s (%d hops); break the call path or justify with //lint:ignore detflow on the enclosing function",
					site.what, root, len(chain))
			}
		}
	}
	return az
}

// detflowRoots resolves the configured root names against the call
// graph, in node (declaration) order so BFS tie-breaks are stable.
func detflowRoots(prog *Program, g *CallGraph, cfg DetFlowConfig) []*Node {
	funcs := make(map[string]bool, len(cfg.Funcs))
	for _, s := range cfg.Funcs {
		funcs[s] = true
	}
	methods := make(map[string]bool, len(cfg.Methods))
	for _, s := range cfg.Methods {
		methods[s] = true
	}
	type ifaceMethod struct {
		iface  *types.Interface
		method string
	}
	var ifaces []ifaceMethod
	for _, spec := range cfg.IfaceImpls {
		if iface, m := lookupIfaceMethod(prog, spec); iface != nil {
			ifaces = append(ifaces, ifaceMethod{iface, m})
		}
	}
	var roots []*Node
	for _, n := range g.Nodes {
		fn := n.Func
		if fn.Pkg() == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		match := false
		if sig.Recv() == nil {
			match = funcs[fn.Pkg().Path()+"."+fn.Name()]
		} else {
			recv := sig.Recv().Type()
			t := recv
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				match = methods[fn.Pkg().Path()+"."+named.Obj().Name()+"."+fn.Name()]
			}
			if !match {
				for _, im := range ifaces {
					if fn.Name() != im.method {
						continue
					}
					if types.Implements(recv, im.iface) ||
						types.Implements(types.NewPointer(recv), im.iface) {
						match = true
						break
					}
				}
			}
		}
		// Fixture convention: DetRoot* functions in detflow testdata
		// packages are roots, so fixtures need no repo-path config.
		if !match && strings.Contains(n.Pkg.Path, "testdata/detflow") &&
			strings.HasPrefix(fn.Name(), "DetRoot") {
			match = true
		}
		if match {
			roots = append(roots, n)
		}
	}
	return roots
}

// lookupIfaceMethod resolves "import/path.Iface.Method" to the
// interface type and method name, or (nil, "") when the program does
// not contain the package or type.
func lookupIfaceMethod(prog *Program, spec string) (*types.Interface, string) {
	i := strings.LastIndex(spec, ".")
	if i < 0 {
		return nil, ""
	}
	method := spec[i+1:]
	rest := spec[:i]
	j := strings.LastIndex(rest, ".")
	if j < 0 {
		return nil, ""
	}
	pkgPath, typeName := rest[:j], rest[j+1:]
	for _, pkg := range prog.Pkgs {
		if pkg.Path != pkgPath {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil, ""
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			return nil, ""
		}
		return iface, method
	}
	return nil, ""
}

// volatileRandPkgs are the packages any call into which is a
// randomness source (same set detrand bans as imports).
var volatileRandPkgs = map[string]bool{
	"math/rand": true, "math/rand/v2": true, "crypto/rand": true,
}

// volSite is one volatile source inside a function body.
type volSite struct {
	pos  token.Pos
	what string
}

// volatileSites scans one call-graph node's body (function literals
// included — they execute with the node's reachability) for volatile
// sources, in position order.
func volatileSites(n *Node) []volSite {
	info := n.Pkg.Info
	var out []volSite
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, s)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case pkgFuncIn(fn, "time", "Now", "Since", "Until"):
				out = append(out, volSite{s.Pos(), "wall-clock time." + fn.Name()})
			case volatileRandPkgs[fn.Pkg().Path()]:
				out = append(out, volSite{s.Pos(), "randomness " + fn.Pkg().Name() + "." + fn.Name()})
			case hostEnvReads[fn.Pkg().Path()] != nil && hostEnvReads[fn.Pkg().Path()][fn.Name()]:
				out = append(out, volSite{s.Pos(), "host-dependent " + fn.Pkg().Name() + "." + fn.Name()})
			}
		case *ast.RangeStmt:
			t := info.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			appends, fieldAppend, sink := mapRangeEffects(info, s.Body)
			if sink != "" || fieldAppend ||
				(len(appends) > 0 && !sortedAfter(info, n.Decl.Body, appends)) {
				out = append(out, volSite{s.Pos(), "map iteration with order-dependent effects"})
			}
		case *ast.GoStmt:
			lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
			if !ok || litLocks(lit) {
				return true
			}
			for _, w := range capturedWrites(info, lit) {
				out = append(out, volSite{w.pos, "goroutine-captured write to " + w.name})
			}
		}
		return true
	})
	return out
}

// litLocks reports whether a function literal's body takes any mutex
// (a call of a method named Lock): its captured writes are then treated
// as synchronized and left to lockheld/lockorder rather than flagged as
// racy ordering.
func litLocks(lit *ast.FuncLit) bool {
	locked := false
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		if call, ok := nd.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Lock" {
				locked = true
			}
		}
		return !locked
	})
	return locked
}

// capturedWrite is one unsynchronized write inside a go-statement
// literal to state declared outside it.
type capturedWrite struct {
	pos  token.Pos
	name string
}

// capturedWrites finds plain (non-element) stores and compound updates
// inside lit whose target variable is declared outside the literal.
// Element stores (an index expression on the path) are the shard-slot
// pattern and are shardpure's concern, not an ordering hazard per se.
func capturedWrites(info *types.Info, lit *ast.FuncLit) []capturedWrite {
	var out []capturedWrite
	captured := func(e ast.Expr) (string, bool) {
		if hasIndexOnPath(e) {
			return "", false
		}
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return "", false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return "", false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return "", false
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return "", false // declared inside the literal
		}
		return id.Name, true
	}
	ast.Inspect(lit.Body, func(nd ast.Node) bool {
		switch s := nd.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if name, ok := captured(lhs); ok {
					out = append(out, capturedWrite{lhs.Pos(), name})
				}
			}
		case *ast.IncDecStmt:
			if name, ok := captured(s.X); ok {
				out = append(out, capturedWrite{s.X.Pos(), name})
			}
		}
		return true
	})
	return out
}

// hasIndexOnPath reports whether an lvalue path contains an index
// expression (a[i], a[i].f, ...), i.e. the store targets an element
// slot rather than a whole variable or field.
func hasIndexOnPath(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}
