package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewLockHeld builds the lockheld analyzer: every field that shares a
// struct with a sync.Mutex/RWMutex (an embedded mutex, or one named
// mu/mutex/lock) is treated as guarded by that mutex — the convention
// used by the harness cell/clip caches and the experiment registry. An
// access to a guarded field is legal only in a function that locks the
// same struct (a Lock/RLock call on it appears in the function — the
// mu.Lock()/defer mu.Unlock() dominance idiom, checked
// flow-insensitively) or in a helper that declares it runs under the
// lock by the *Locked naming convention (evictCellsLocked).
//
// The scope covers the packages whose caches are hit concurrently by
// the engine's worker pool; fixture packages opt in via the
// testdata/lockheld path rule.
func NewLockHeld(paths []string) *Analyzer {
	scope := pathScope{name: "lockheld", paths: paths}
	az := &Analyzer{
		Name: "lockheld",
		Doc:  "require mutex-guarded struct fields to be accessed with the lock held",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		vars, named := guardedDecls(pass, info)
		if len(vars) == 0 && len(named) == 0 {
			return
		}
		for _, f := range pass.Files() {
			for _, fd := range funcDecls(f) {
				checkLockDiscipline(pass, info, fd, vars, named)
			}
		}
	}
	return az
}

// guardInfo describes one mutex-carrying struct: which fields are
// guarded and which are the mutexes themselves.
type guardInfo struct {
	fields map[string]bool
	mutex  map[string]bool
}

// guardedStruct inspects a type; non-nil when it is a struct carrying a
// sync mutex.
func guardedStruct(t types.Type) *guardInfo {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	gi := &guardInfo{fields: make(map[string]bool), mutex: make(map[string]bool)}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncMutex(f.Type()) && (f.Embedded() || isMutexName(f.Name())) {
			gi.mutex[f.Name()] = true
		} else {
			gi.fields[f.Name()] = true
		}
	}
	if len(gi.mutex) == 0 {
		return nil
	}
	return gi
}

func isSyncMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func isMutexName(name string) bool {
	switch strings.ToLower(name) {
	case "mu", "mutex", "lock":
		return true
	}
	return false
}

// guardedDecls collects the package's guarded roots: package-level vars
// of mutex-carrying struct type (anonymous structs included — the cache
// idiom) and named struct types whose values are guarded wherever they
// flow (receivers, locals).
func guardedDecls(pass *Pass, info *types.Info) (map[types.Object]*guardInfo, map[*types.Named]*guardInfo) {
	vars := make(map[types.Object]*guardInfo)
	named := make(map[*types.Named]*guardInfo)
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, name := range s.Names {
						obj := info.Defs[name]
						if obj == nil {
							continue
						}
						if gi := guardedStruct(obj.Type()); gi != nil {
							vars[obj] = gi
						}
					}
				case *ast.TypeSpec:
					obj := info.Defs[s.Name]
					if obj == nil {
						continue
					}
					if n, ok := obj.Type().(*types.Named); ok {
						if gi := guardedStruct(n); gi != nil {
							named[n] = gi
						}
					}
				}
			}
		}
	}
	return vars, named
}

// guardFor resolves the guard info for a selector base object, if the
// object is a guarded root.
func guardFor(obj types.Object, vars map[types.Object]*guardInfo, named map[*types.Named]*guardInfo) *guardInfo {
	if obj == nil {
		return nil
	}
	if gi, ok := vars[obj]; ok {
		return gi
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if gi, ok := named[n]; ok {
			return gi
		}
	}
	return nil
}

// checkLockDiscipline verifies one function: guarded field accesses
// require a Lock/RLock on the same root in the function body, or the
// *Locked naming convention.
func checkLockDiscipline(pass *Pass, info *types.Info, fd *ast.FuncDecl,
	vars map[types.Object]*guardInfo, named map[*types.Named]*guardInfo) {

	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	// Pass 1: which guarded roots does this function lock?
	locked := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if id := rootIdent(sel.X); id != nil {
				if obj := info.ObjectOf(id); obj != nil && guardFor(obj, vars, named) != nil {
					locked[obj] = true
				}
			}
		}
		return true
	})
	// Pass 2: flag guarded field accesses on unlocked roots.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		id := rootIdent(sel.X)
		if id == nil {
			return true
		}
		obj := info.ObjectOf(id)
		gi := guardFor(obj, vars, named)
		if gi == nil || locked[obj] {
			return true
		}
		field := sel.Sel.Name
		if !gi.fields[field] || gi.mutex[field] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(),
			"field %s.%s is guarded by the struct's mutex but %s neither locks %s nor is named *Locked",
			id.Name, field, fd.Name.Name, id.Name)
		return true
	})
}
