package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestProgramClosure: NewProgram must union the loader's module import
// closure, so whole-program analyzers see cross-package bodies even
// when only one directory was selected. Loading just the detflow
// fixture root (no /... pattern) must still surface the leak in its
// inner subpackage, reached through an import edge.
func TestProgramClosure(t *testing.T) {
	pkgs := loadFixture(t, "detflow")
	if len(pkgs) != 1 {
		t.Fatalf("selected %d packages, want 1 (the fixture root)", len(pkgs))
	}
	prog := NewProgram(pkgs)
	var paths []string
	for _, p := range prog.Pkgs {
		paths = append(paths, p.Path)
	}
	want := "vcprof/internal/analysis/testdata/detflow/inner"
	found := false
	for _, p := range paths {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("program closure %v missing import-reached package %s", paths, want)
	}

	diags := Run(pkgs, VCProfAnalyzers())
	var crossPkg bool
	for _, d := range diags {
		if d.Analyzer == "detflow" && strings.Contains(d.File, "inner") {
			crossPkg = true
			if len(d.Chain) != 3 {
				t.Errorf("inner-package finding chain has %d hops, want 3: %+v", len(d.Chain), d.Chain)
			}
		}
	}
	if !crossPkg {
		t.Error("no detflow finding in the inner package; closure-reached bodies were not analyzed")
	}
}

// TestCallGraphEdges pins the resolution kinds on the detflow fixture:
// a static intra-package edge, a static cross-package edge, and chain
// reconstruction from a BFS sweep.
func TestCallGraphEdges(t *testing.T) {
	prog := NewProgram(loadFixture(t, "detflow"))
	g := prog.CallGraph()

	var root *Node
	for _, n := range g.Nodes {
		if n.Name() == "detflow.DetRootCell" {
			root = n
		}
	}
	if root == nil {
		t.Fatal("call graph has no node for detflow.DetRootCell")
	}
	callees := make(map[string]EdgeKind)
	for _, e := range root.Out {
		callees[e.Callee.Name()] = e.Kind
	}
	for _, want := range []string{"detflow.step", "inner.Frame", "detflow.hostName", "detflow.narrate"} {
		if _, ok := callees[want]; !ok {
			t.Errorf("DetRootCell has no edge to %s (callees: %v)", want, callees)
		}
	}
	if kind, ok := callees["inner.Frame"]; ok && kind != EdgeStatic {
		t.Errorf("cross-package call resolved as kind %d, want static", kind)
	}

	reached := g.reachFrom([]*Node{root})
	var tick *Node
	for _, n := range g.Nodes {
		if n.Name() == "inner.tick" {
			tick = n
		}
	}
	if tick == nil {
		t.Fatal("call graph has no node for inner.tick")
	}
	chain := g.chainTo(reached, tick)
	var names []string
	for _, h := range chain {
		names = append(names, h.Func)
	}
	if got, want := strings.Join(names, " → "), "detflow.DetRootCell → inner.Frame → inner.tick"; got != want {
		t.Errorf("chain = %s, want %s", got, want)
	}
	if _, ok := reached[nodeByName(g, "detflow.orphan")]; ok {
		t.Error("orphan is reached from the root; reachability is unsound")
	}
}

func nodeByName(g *CallGraph, name string) *Node {
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// TestInterfaceEdges: a call through an interface method must fan out
// to the fixture implementation (CHA), which is how scheduler task
// bodies become reachable. The shardpure fixture's cellGraph implements
// sched.Graph, so sched's pool internals must grow an edge to its Run.
func TestInterfaceEdges(t *testing.T) {
	prog := NewProgram(loadFixture(t, "shardpure"))
	g := prog.CallGraph()
	run := nodeByName(g, "shardpure.(*cellGraph).Run")
	if run == nil {
		t.Fatal("no node for the fixture's Graph implementation")
	}
	var viaInterface bool
	for _, n := range g.Nodes {
		if n.Pkg.Path != "vcprof/internal/sched" {
			continue
		}
		for _, e := range n.Out {
			if e.Callee == run && e.Kind == EdgeInterface {
				viaInterface = true
			}
		}
	}
	if !viaInterface {
		t.Error("no interface edge from sched into the fixture's Run; CHA resolution is broken")
	}
}

// TestLoaderParseError: a syntactically invalid file must fail Load
// with an error (the CLI maps this to exit 2). The broken source lives
// in a temp module so the committed tree stays parseable end to end.
func TestLoaderParseError(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module tmpmod\n\ngo 1.24\n")
	writeFile("bad.go", "package bad\n\nfunc Unclosed() {\n")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("."); err == nil {
		t.Fatal("Load succeeded on a syntactically broken package")
	}
}
