package analysis

import "fmt"

// VCProfAnalyzers returns vclint's analyzer set configured for this
// repository's invariants (DESIGN.md §6):
//
//   - detnow: wall-clock reads are banned in the cell-assembly and
//     table paths (harness, metrics, perf, encoders) and in the obs
//     self-observation layer, whose span clock must stay virtual
//     (DESIGN.md §7). The sanctioned wall-clock holders — the engine's
//     progress/timing functions in harness/engine.go, the obs
//     real-clock adapter (obs/realclock.go), and encoders.Encode's
//     Result.Wall — each carry a //lint:ignore with its justification
//     on the function or site, which the chain-aware suppression
//     honors; there is no file-level allowlist.
//   - detflow (whole-program): the deterministic roots — harness cell
//     execution (RunAll/RunCell/RunExperiment), the encoder Encode
//     path, every scheduler task body (implementations of
//     sched.Graph.Run and encoders.TaskGraph.Run), the obs
//     deterministic writers (Trace.Advance/Begin, Span.End,
//     Counter.Add), the cluster fold-digest root (cluster.FoldDigest,
//     the value every cross-topology equivalence test compares), and
//     the live-session roots (live.Session.Feed, whose virtual-tick
//     timeline decides misses and degrades, and live.SessionDigest,
//     the value the live smoke compares across topologies) — are
//     tainted through the module call graph, and
//     any reachable volatile source in the deterministic core is
//     reported with its root→sink chain (vclint -why).
//   - lockorder (whole-program): the mutex-bearing layers (sched,
//     service, harness, obs, cluster, live) plus video's caches must acquire
//     lock classes in a cycle-free order; cycles are potential
//     deadlocks. The cluster router's contract — the shard registry's
//     mutex is a leaf, never held across an HTTP call or a histogram
//     observation — is exactly the shape this analyzer pins.
//   - shardpure (whole-program): scheduler task bodies (the same
//     Graph/TaskGraph implementations plus run closures handed to the
//     encode graph builder) may write shared state only through their
//     own shard-indexed slot.
//   - detmaprange / detrand: unscoped; randomized map order and
//     randomness sources are wrong anywhere in a byte-deterministic
//     measurement stack.
//   - lockheld: the engine's worker pool hits the cell/clip caches and
//     the experiment registry concurrently, so their mutex discipline
//     is checked in harness and video; the service daemon's queue, job
//     table and result store, the cluster router's drive/warm/LRU
//     state, and the live session engine's per-session state are in
//     scope for the same reason.
//   - hotalloc: the codec kernels and the per-op simulator loops are
//     the measured hot paths; allocations there distort the counts the
//     experiments report.
//   - detenv: nothing under internal/ may read host environment state;
//     cmd/ front-ends pass such values down as explicit configuration.
//   - httpctx: the service daemon's and the cluster gate's HTTP
//     handlers must derive contexts from r.Context(); a
//     context.Background()/TODO() minted inside a handler severs
//     client disconnects, per-job deadlines and the graceful drain
//     from the harness work they should cancel.
//   - histbuckets: unscoped; histogram bucket layouts passed to
//     obs.NewHistogram/NewVolatileHistogram (and the shared
//     *Buckets* layout vars in internal/telemetry) must be strictly
//     increasing literals, so the registry's init-time panic can
//     never fire in a shipped binary.
//
// Fixture packages under internal/analysis/testdata/<name> opt into the
// matching analyzer's scope automatically (see pathScope), so the CLI
// exercises each analyzer end to end on its fixture tree.
func VCProfAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDetNow([]string{
			"vcprof/internal/harness",
			"vcprof/internal/metrics",
			"vcprof/internal/perf",
			"vcprof/internal/encoders",
			"vcprof/internal/obs",
		}),
		NewDetFlow(DetFlowConfig{
			Funcs: []string{
				"vcprof/internal/harness.RunAll",
				"vcprof/internal/harness.RunCell",
				"vcprof/internal/harness.RunExperiment",
				"vcprof/internal/cluster.FoldDigest",
				"vcprof/internal/live.SessionDigest",
				"vcprof/internal/obs.MergeHops",
			},
			Methods: []string{
				"vcprof/internal/encoders.model.Encode",
				"vcprof/internal/obs.Trace.Advance",
				"vcprof/internal/obs.Trace.Begin",
				"vcprof/internal/obs.Span.End",
				"vcprof/internal/obs.Counter.Add",
				"vcprof/internal/live.Session.Feed",
			},
			IfaceImpls: []string{
				"vcprof/internal/sched.Graph.Run",
				"vcprof/internal/encoders.TaskGraph.Run",
			},
			SinkPaths: []string{
				"vcprof/internal/harness",
				"vcprof/internal/metrics",
				"vcprof/internal/perf",
				"vcprof/internal/encoders",
				"vcprof/internal/obs",
				"vcprof/internal/sched",
				"vcprof/internal/trace",
				"vcprof/internal/video",
				"vcprof/internal/codec",
				"vcprof/internal/uarch",
				"vcprof/internal/cbp",
				"vcprof/internal/core",
				"vcprof/internal/cluster",
				"vcprof/internal/live",
			},
		}),
		NewLockOrder([]string{
			"vcprof/internal/sched",
			"vcprof/internal/service",
			"vcprof/internal/harness",
			"vcprof/internal/obs",
			"vcprof/internal/video",
			"vcprof/internal/cluster",
			"vcprof/internal/live",
		}),
		NewShardPure(ShardPureConfig{
			TaskIfaces: []string{
				"vcprof/internal/sched.Graph.Run",
				"vcprof/internal/encoders.TaskGraph.Run",
			},
			SubmitFuncs: []string{
				"vcprof/internal/encoders.graph.add",
				"vcprof/internal/analysis/testdata/shardpure.graph.add",
			},
		}),
		NewDetMapRange(),
		NewDetRand(),
		NewLockHeld([]string{
			"vcprof/internal/harness",
			"vcprof/internal/video",
			"vcprof/internal/service",
			"vcprof/internal/cluster",
			"vcprof/internal/live",
		}),
		NewHotAlloc([]string{
			"vcprof/internal/codec/transform",
			"vcprof/internal/codec/motion",
			"vcprof/internal/codec/intra",
			"vcprof/internal/codec/quant",
			"vcprof/internal/uarch/cache",
			"vcprof/internal/uarch/pipeline",
		}),
		NewDetEnv([]string{"vcprof/internal"}),
		NewHTTPCtx([]string{
			"vcprof/internal/service",
			"vcprof/internal/cluster",
			"vcprof/internal/live",
			"vcprof/cmd",
		}),
		NewHistBuckets(),
	}
}

// LookupAnalyzer finds one of the configured analyzers by name.
func LookupAnalyzer(name string) (*Analyzer, error) {
	for _, az := range VCProfAnalyzers() {
		if az.Name == name {
			return az, nil
		}
	}
	return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
}
