package analysis

import "fmt"

// VCProfAnalyzers returns vclint's analyzer set configured for this
// repository's invariants (DESIGN.md §6):
//
//   - detnow: wall-clock reads are banned in the cell-assembly and
//     table paths (harness, metrics, perf, encoders) and in the obs
//     self-observation layer, whose span clock must stay virtual
//     (DESIGN.md §7). Two files are allowlisted: the engine's
//     progress/timing layer (harness/engine.go), whose wall-clock
//     numbers are explicitly reporting and never table cells, and the
//     obs real-clock adapter (obs/realclock.go), the single sanctioned
//     bridge to host time for cmd/ progress narration — its readings
//     may never feed a Trace, a Counter or rendered tables. The one
//     deliberate read outside the allowlist (encoders.Encode's
//     Result.Wall) carries a //lint:ignore with its justification.
//   - detmaprange / detrand: unscoped; randomized map order and
//     randomness sources are wrong anywhere in a byte-deterministic
//     measurement stack.
//   - lockheld: the engine's worker pool hits the cell/clip caches and
//     the experiment registry concurrently, so their mutex discipline
//     is checked in harness and video; the service daemon's queue, job
//     table and result store are in scope for the same reason.
//   - hotalloc: the codec kernels and the per-op simulator loops are
//     the measured hot paths; allocations there distort the counts the
//     experiments report.
//   - detenv: nothing under internal/ may read host environment state;
//     cmd/ front-ends pass such values down as explicit configuration.
//   - httpctx: the service daemon's HTTP handlers must derive contexts
//     from r.Context(); a context.Background()/TODO() minted inside a
//     handler severs client disconnects, per-job deadlines and the
//     graceful drain from the harness work they should cancel.
//   - histbuckets: unscoped; histogram bucket layouts passed to
//     obs.NewHistogram/NewVolatileHistogram (and the shared
//     *Buckets* layout vars in internal/telemetry) must be strictly
//     increasing literals, so the registry's init-time panic can
//     never fire in a shipped binary.
//
// Fixture packages under internal/analysis/testdata/<name> opt into the
// matching analyzer's scope automatically (see pathScope), so the CLI
// exercises each analyzer end to end on its fixture tree.
func VCProfAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDetNow([]string{
			"vcprof/internal/harness",
			"vcprof/internal/metrics",
			"vcprof/internal/perf",
			"vcprof/internal/encoders",
			"vcprof/internal/obs",
		}, []string{"engine.go", "realclock.go"}),
		NewDetMapRange(),
		NewDetRand(),
		NewLockHeld([]string{
			"vcprof/internal/harness",
			"vcprof/internal/video",
			"vcprof/internal/service",
		}),
		NewHotAlloc([]string{
			"vcprof/internal/codec/transform",
			"vcprof/internal/codec/motion",
			"vcprof/internal/codec/intra",
			"vcprof/internal/codec/quant",
			"vcprof/internal/uarch/cache",
			"vcprof/internal/uarch/pipeline",
		}),
		NewDetEnv([]string{"vcprof/internal"}),
		NewHTTPCtx([]string{
			"vcprof/internal/service",
			"vcprof/cmd",
		}),
		NewHistBuckets(),
	}
}

// LookupAnalyzer finds one of the configured analyzers by name.
func LookupAnalyzer(name string) (*Analyzer, error) {
	for _, az := range VCProfAnalyzers() {
		if az.Name == name {
			return az, nil
		}
	}
	return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
}
