package analysis

import (
	"go/ast"
	"path/filepath"
)

// NewDetNow builds the detnow analyzer: no wall-clock reads (time.Now,
// time.Since, time.Until) inside the configured deterministic paths —
// cell assembly, metric computation, and table rendering. Wall-clock
// values differ on every run and host; anything they feed cannot be
// byte-deterministic, which would break the golden-table suite and the
// worker-count equivalence guarantee. Time that must appear in a table
// is modeled (harness.cycleMS over simulated cycles) instead.
//
// allowFiles lists base file names (e.g. "engine.go") that form the
// engine's progress/timing layer, where wall-clock accounting is the
// point and the values never feed table cells. Individual sites outside
// the allowlist are suppressed with //lint:ignore detnow <reason>.
func NewDetNow(paths, allowFiles []string) *Analyzer {
	scope := pathScope{name: "detnow", paths: paths}
	allowed := make(map[string]bool, len(allowFiles))
	for _, f := range allowFiles {
		allowed[f] = true
	}
	az := &Analyzer{
		Name: "detnow",
		Doc:  "forbid wall-clock reads in cell-assembly and table-rendering paths",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			if allowed[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if pkgFuncIn(fn, "time", "Now", "Since", "Until") {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in deterministic path; report modeled cycles (harness.cycleMS) or move the timing into the engine's allowlisted progress layer",
						fn.Name())
				}
				return true
			})
		}
	}
	return az
}
