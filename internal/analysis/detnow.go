package analysis

import (
	"go/ast"
	"go/types"
)

// NewDetNow builds the detnow analyzer: no wall-clock reads (time.Now,
// time.Since, time.Until) inside the configured deterministic paths —
// cell assembly, metric computation, and table rendering. Wall-clock
// values differ on every run and host; anything they feed cannot be
// byte-deterministic, which would break the golden-table suite and the
// worker-count equivalence guarantee. Time that must appear in a table
// is modeled (harness.cycleMS over simulated cycles) instead.
//
// Every finding carries its enclosing function as a one-hop chain, so
// a progress/timing function that legitimately owns wall-clock is
// exempted with //lint:ignore detnow <reason> on its declaration line —
// function-grained and review-visible, unlike the base-filename
// allowlist this replaces (which silenced any same-named file anywhere).
func NewDetNow(paths []string) *Analyzer {
	scope := pathScope{name: "detnow", paths: paths}
	az := &Analyzer{
		Name: "detnow",
		Doc:  "forbid wall-clock reads in cell-assembly and table-rendering paths",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			for _, fd := range funcDecls(f) {
				pos := pass.Fset.Position(fd.Pos())
				name := fd.Name.Name
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					name = funcDisplayName(fn)
				}
				hop := []ChainHop{{Func: name, File: pos.Filename, Line: pos.Line, Col: pos.Column}}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(info, call)
					if pkgFuncIn(fn, "time", "Now", "Since", "Until") {
						pass.ReportfChain(call.Pos(), hop,
							"wall-clock time.%s in deterministic path; report modeled cycles (harness.cycleMS) or justify with //lint:ignore detnow on the enclosing function",
							fn.Name())
					}
					return true
				})
			}
		}
	}
	return az
}
