package analysis

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

// TestCleanFixture: the zero-finding fixture must stay silent under the
// full analyzer set — the baseline for "vclint ./... exits 0".
func TestCleanFixture(t *testing.T) {
	diags := Run(loadFixture(t, "clean"), VCProfAnalyzers())
	for _, d := range diags {
		t.Errorf("clean fixture produced finding: %s", d)
	}
}

// TestIgnoreSuppression: both directive placements (line above, same
// line) must silence their findings, and nothing else may fire.
func TestIgnoreSuppression(t *testing.T) {
	pkgs := loadFixture(t, "ignore")
	diags := Run(pkgs, VCProfAnalyzers())
	for _, d := range diags {
		t.Errorf("suppressed fixture produced finding: %s", d)
	}
	// The same package without suppression honored must trip detrand
	// and detmaprange — proving the directives did the silencing.
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, az := range VCProfAnalyzers() {
			if az.Run == nil {
				continue // whole-program analyzers run via Run()
			}
			pass := &Pass{Analyzer: az, Fset: pkg.fset, Pkg: pkg, diags: &raw}
			az.Run(pass)
		}
	}
	seen := map[string]bool{}
	for _, d := range raw {
		seen[d.Analyzer] = true
	}
	for _, want := range []string{"detrand", "detmaprange"} {
		if !seen[want] {
			t.Errorf("ignore fixture never tripped %s; suppression test is vacuous", want)
		}
	}
}

// TestMalformedIgnoreReported: a directive without a reason is itself a
// finding, attributed to the "vclint" pseudo-analyzer.
func TestMalformedIgnoreReported(t *testing.T) {
	diags := Run(loadFixture(t, "badignore"), VCProfAnalyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "vclint" || !strings.Contains(d.Message, "malformed lint:ignore") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestJSONShape pins the -json output contract: an object with a
// findings array (never null) and a count, each finding carrying
// analyzer/file/line/col/message.
func TestJSONShape(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "detnow", File: "a.go", Line: 3, Col: 7, Message: "m"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []map[string]any `json:"findings"`
		Count    int              `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Count != 1 || len(doc.Findings) != 1 {
		t.Fatalf("count/findings mismatch: %s", buf.String())
	}
	var keys []string
	for k := range doc.Findings[0] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if got, want := strings.Join(keys, ","), "analyzer,col,file,line,message"; got != want {
		t.Errorf("finding keys = %s, want %s", got, want)
	}

	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty findings must marshal as [], got %s", buf.String())
	}
}

// TestRunOrdersDiagnostics: findings come back sorted by position so
// output is byte-stable run to run.
func TestRunOrdersDiagnostics(t *testing.T) {
	diags := Run(loadFixture(t, "detenv"), VCProfAnalyzers())
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	}) {
		t.Errorf("diagnostics not position-sorted: %v", diags)
	}
}

// TestLookupAnalyzer covers the CLI's analyzer registry.
func TestLookupAnalyzer(t *testing.T) {
	for _, name := range []string{
		"detnow", "detmaprange", "detrand", "lockheld", "hotalloc", "detenv",
	} {
		az, err := LookupAnalyzer(name)
		if err != nil || az.Name != name {
			t.Errorf("LookupAnalyzer(%q) = %v, %v", name, az, err)
		}
	}
	if _, err := LookupAnalyzer("nosuch"); err == nil {
		t.Error("LookupAnalyzer accepted an unknown name")
	}
}

// TestDirectiveParsing unit-tests the directive grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment string
		names   string // comma-joined expected names; "" = not a directive or malformed
		ok      bool
	}{
		{"//lint:ignore detnow reason here", "detnow", true},
		{"// lint:ignore detnow spaced form", "detnow", true},
		{"//lint:ignore detnow,detenv shared reason", "detnow,detenv", true},
		{"//lint:ignore detnow", "", false},      // no reason
		{"//lint:ignore", "", false},             // nothing at all
		{"//lint:ignorance is bliss", "", false}, // not the directive
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		text, isDir := directiveText(tc.comment)
		if !isDir {
			if tc.ok {
				t.Errorf("%q: not recognized as directive", tc.comment)
			}
			if tc.comment == "//lint:ignore detnow" || tc.comment == "//lint:ignore" {
				t.Errorf("%q: must be recognized (then rejected as malformed)", tc.comment)
			}
			continue
		}
		names, _, ok := splitDirective(text)
		if ok != tc.ok {
			t.Errorf("%q: ok = %v, want %v", tc.comment, ok, tc.ok)
			continue
		}
		if ok && strings.Join(names, ",") != tc.names {
			t.Errorf("%q: names = %v, want %s", tc.comment, names, tc.names)
		}
	}
}
