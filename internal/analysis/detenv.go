package analysis

import (
	"go/ast"
)

// hostEnvReads maps package path → function names whose return values
// depend on the host environment. detenv bans them per package; detflow
// bans them anywhere reachable from a deterministic root.
var hostEnvReads = map[string]map[string]bool{
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
		"Hostname": true, "Getpid": true, "Getppid": true,
		"Getwd": true, "UserHomeDir": true, "UserCacheDir": true,
		"UserConfigDir": true,
	},
	"runtime": {"NumCPU": true, "GOMAXPROCS": true},
}

// NewDetEnv builds the detenv analyzer: values read from the host
// environment — environment variables, hostname, pid, CPU count — vary
// between machines and runs, so any measurement or table they reach is
// not reproducible. Inside the scoped deterministic packages such reads
// are forbidden; host-adaptive behaviour (picking a worker count from
// runtime.NumCPU, say) belongs in the cmd/ front-ends, which pass the
// result down as explicit, recorded configuration.
func NewDetEnv(paths []string) *Analyzer {
	scope := pathScope{name: "detenv", paths: paths}
	banned := hostEnvReads
	az := &Analyzer{
		Name: "detenv",
		Doc:  "forbid host-environment reads in deterministic packages",
	}
	az.Run = func(pass *Pass) {
		if !scope.in(pass.Pkg.Path) {
			return
		}
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if names, ok := banned[fn.Pkg().Path()]; ok && names[fn.Name()] {
					pass.Reportf(call.Pos(),
						"host-dependent %s.%s in deterministic package; take the value as explicit configuration from the cmd/ layer instead",
						fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
	}
	return az
}
