package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Run applies every analyzer to every package, filters findings through
// //lint:ignore directives, and returns the surviving diagnostics in a
// deterministic order (file, line, col, analyzer, message). Malformed
// ignore directives are reported as findings of the pseudo-analyzer
// "vclint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores, bad := parseIgnores(fsetOf(pkg), pkg.Files)
		out = append(out, bad...)
		var diags []Diagnostic
		for _, az := range analyzers {
			pass := &Pass{Analyzer: az, Fset: fsetOf(pkg), Pkg: pkg, diags: &diags}
			az.Run(pass)
		}
		for _, d := range diags {
			if !ignores.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// fsetOf recovers the FileSet a package was parsed into. Every package
// from one Loader shares one FileSet; it is threaded through Package
// positions rather than stored globally.
func fsetOf(pkg *Package) *token.FileSet { return pkg.fset }

// WriteText renders findings one per line in compiler style.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
}

// report is the JSON document vclint -json emits.
type report struct {
	Findings []Diagnostic `json:"findings"`
	Count    int          `json:"count"`
}

// WriteJSON renders findings as a single JSON object:
// {"findings":[{analyzer,file,line,col,message}...],"count":N}.
// An empty finding list marshals as [], not null.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Findings: diags, Count: len(diags)})
}
