package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Run applies every analyzer to every package, filters findings through
// //lint:ignore directives, and returns the surviving diagnostics in a
// deterministic order (file, line, col, analyzer, message). Malformed
// ignore directives are reported as findings of the pseudo-analyzer
// "vclint".
//
// Per-package analyzers (Run) see one package at a time; whole-program
// analyzers (RunProgram) execute once afterwards over the packages plus
// their module import closure. Suppression directives are honored
// program-wide: a chain-carrying finding may be silenced at the
// declaration of the sink's enclosing function even when that function
// lives in a package reached only through an import edge.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	var diags []Diagnostic
	ignores := make(ignoreSet)
	for _, pkg := range pkgs {
		pkgIgnores, bad := parseIgnores(fsetOf(pkg), pkg.Files)
		out = append(out, bad...)
		ignores.union(pkgIgnores)
		for _, az := range analyzers {
			if az.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: az, Fset: fsetOf(pkg), Pkg: pkg, diags: &diags}
			az.Run(pass)
		}
	}
	var progAz []*Analyzer
	for _, az := range analyzers {
		if az.RunProgram != nil {
			progAz = append(progAz, az)
		}
	}
	if len(progAz) > 0 && len(pkgs) > 0 {
		prog := NewProgram(pkgs)
		selected := make(map[string]bool, len(pkgs))
		for _, pkg := range pkgs {
			selected[pkg.Path] = true
		}
		// Closure-only packages contribute directives (their functions
		// can carry chain hops) but not malformed-directive findings:
		// they were not asked for.
		for _, pkg := range prog.Pkgs {
			if !selected[pkg.Path] {
				pkgIgnores, _ := parseIgnores(fsetOf(pkg), pkg.Files)
				ignores.union(pkgIgnores)
			}
		}
		for _, az := range progAz {
			pp := &ProgramPass{Analyzer: az, Prog: prog, diags: &diags}
			az.RunProgram(pp)
		}
	}
	for _, d := range diags {
		if !ignores.suppressed(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// fsetOf recovers the FileSet a package was parsed into. Every package
// from one Loader shares one FileSet; it is threaded through Package
// positions rather than stored globally.
func fsetOf(pkg *Package) *token.FileSet { return pkg.fset }

// WriteText renders findings one per line in compiler style. With why
// set, each chain-carrying finding is followed by its root→sink call
// chain, one indented hop per line.
func WriteText(w io.Writer, diags []Diagnostic, why bool) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
		if why && len(d.Chain) > 0 {
			for i, h := range d.Chain {
				arrow := "   "
				if i > 0 {
					arrow = " → "
				}
				fmt.Fprintf(w, "\t%s%s (%s:%d)\n", arrow, h.Func, h.File, h.Line)
			}
		}
	}
}

// report is the JSON document vclint -json emits.
type report struct {
	Findings []Diagnostic `json:"findings"`
	Count    int          `json:"count"`
}

// WriteJSON renders findings as a single JSON object:
// {"findings":[{analyzer,file,line,col,message}...],"count":N}.
// An empty finding list marshals as [], not null.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report{Findings: diags, Count: len(diags)})
}
