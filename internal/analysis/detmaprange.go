package analysis

import (
	"go/ast"
	"go/types"
)

// NewDetMapRange builds the detmaprange analyzer: a `range` over a map
// whose body has order-dependent effects — appending to a slice,
// writing rows/bytes to an output sink, or feeding a hash — silently
// breaks byte-determinism, because Go randomizes map iteration order.
// The required fix is to collect the keys, sort them, and range over
// the sorted slice. Commutative bodies (counter merges, set unions) are
// fine and not flagged; an append whose target slice is later passed to
// a sort.*/slices.Sort* call in the same function is also accepted,
// since sorting re-establishes a canonical order.
//
// The analyzer is deliberately unscoped: ordered output from a map walk
// is wrong anywhere in a measurement stack whose tables must be
// byte-identical across runs.
func NewDetMapRange() *Analyzer {
	az := &Analyzer{
		Name: "detmaprange",
		Doc:  "forbid map iteration with order-dependent effects unless keys are sorted",
	}
	az.Run = func(pass *Pass) {
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			for _, fd := range funcDecls(f) {
				checkMapRanges(pass, info, fd)
			}
		}
	}
	return az
}

// sinkMethods are method names whose call inside a map-range body means
// the iteration order reaches rendered output or a hash state.
var sinkMethods = map[string]bool{
	"AddRow": true, "Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Sum": true, "Sum32": true, "Sum64": true,
}

// fmtSinks are fmt functions that emit to a writer (pure Sprintf-style
// formatting is covered through the append/assignment paths instead).
var fmtSinks = []string{"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println"}

func checkMapRanges(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		appends, fieldAppend, sink := mapRangeEffects(info, rng.Body)
		switch {
		case sink != "":
			pass.Reportf(rng.Pos(),
				"map iteration over %s writes ordered output via %s; collect the keys, sort them, and range over the slice",
				types.ExprString(rng.X), sink)
		case fieldAppend:
			pass.Reportf(rng.Pos(),
				"map iteration over %s appends to a struct field in randomized order; collect the keys, sort them, and range over the slice",
				types.ExprString(rng.X))
		case len(appends) > 0 && !sortedAfter(info, fd.Body, appends):
			pass.Reportf(rng.Pos(),
				"map iteration over %s appends to a slice in randomized order and the slice is never sorted; sort the keys first (or sort the result)",
				types.ExprString(rng.X))
		}
		return true
	})
}

// mapRangeEffects scans a range body for order-dependent effects:
// slice-append targets (by object), appends to struct fields, and
// output-sink calls.
func mapRangeEffects(info *types.Info, body *ast.BlockStmt) (appends map[types.Object]bool, fieldAppend bool, sink string) {
	appends = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(s.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(s.Lhs[i]).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(lhs); obj != nil {
						appends[obj] = true
					}
				case *ast.SelectorExpr:
					fieldAppend = true
				}
			}
		case *ast.CallExpr:
			if name := sinkCallName(info, s); name != "" {
				sink = name
			}
		}
		return true
	})
	return appends, fieldAppend, sink
}

// isBuiltinAppend reports whether a call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sinkCallName classifies a call as an output sink, returning a
// human-readable name ("" if not a sink).
func sinkCallName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if pkgFuncIn(fn, "fmt", fmtSinks...) {
		return "fmt." + fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && sinkMethods[fn.Name()] {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	return ""
}

// sortedAfter reports whether the enclosing body passes any of the
// appended slices to a sort.* or slices.Sort* call, which restores a
// canonical order. The check is flow-insensitive on purpose: a sort
// anywhere in the body is accepted, and vclint's fixture suite pins
// the accepted shapes.
func sortedAfter(info *types.Info, body *ast.BlockStmt, targets map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(info, call)
		isSort := pkgFuncIn(fn, "sort", "Sort", "Stable", "Slice", "SliceStable",
			"Strings", "Ints", "Float64s") ||
			pkgFuncIn(fn, "slices", "Sort", "SortFunc", "SortStableFunc")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && targets[info.ObjectOf(id)] {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
