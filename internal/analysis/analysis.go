// Package analysis is vcprof's stdlib-only static-analysis framework:
// a package loader built on go/parser + go/types (no x/tools), a driver
// with //lint:ignore suppression and deterministic diagnostic ordering,
// and the vclint analyzers that prove the repository's determinism and
// concurrency invariants (see DESIGN.md §6). cmd/vclint is the CLI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Per-package analyzers set Run and
// inspect one type-checked package at a time; whole-program analyzers
// set RunProgram instead and see every loaded package plus the module
// import closure at once (call graphs, cross-package taint). Exactly
// one of the two should be set.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by `vclint -list`.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
	// RunProgram performs the check once over the whole program.
	RunProgram func(*ProgramPass)
}

// Pass carries one (package, analyzer) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfChain(pos, nil, format, args...)
}

// ReportfChain records a finding at pos carrying a call chain. The
// chain's last hop must be the function containing pos: it is the one
// extra place a //lint:ignore directive may suppress the finding from
// (on or above that function's declaration line).
func (p *Pass) ReportfChain(pos token.Pos, chain []ChainHop, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// ProgramPass carries one (program, analyzer) unit of work for
// whole-program analyzers.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// ReportfChain records a whole-program finding at pos with its call
// chain (nil for chainless findings such as lock cycles reported at an
// acquisition site).
func (p *ProgramPass) ReportfChain(pos token.Pos, chain []ChainHop, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Diagnostic is one finding, addressable to file:line:col. The JSON
// field names are part of vclint's output contract (tested). Chain,
// when present, is the root→sink call path that makes the finding
// reachable; `vclint -why` prints it and the JSON output carries it.
type Diagnostic struct {
	Analyzer string     `json:"analyzer"`
	File     string     `json:"file"`
	Line     int        `json:"line"`
	Col      int        `json:"col"`
	Message  string     `json:"message"`
	Chain    []ChainHop `json:"chain,omitempty"`
}

// ChainHop is one function on a diagnostic's call chain, positioned at
// its declaration.
type ChainHop struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the conventional compiler-style line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}
