// Package analysis is vcprof's stdlib-only static-analysis framework:
// a package loader built on go/parser + go/types (no x/tools), a driver
// with //lint:ignore suppression and deterministic diagnostic ordering,
// and the vclint analyzers that prove the repository's determinism and
// concurrency invariants (see DESIGN.md §6). cmd/vclint is the CLI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a fully type-checked
// package via the Pass and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description shown by `vclint -list`.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags *[]Diagnostic
}

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checker results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, addressable to file:line:col. The JSON
// field names are part of vclint's output contract (tested).
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional compiler-style line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}
