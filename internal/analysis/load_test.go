package analysis

import (
	"strings"
	"testing"
)

// TestLoadModuleTree type-checks the real repository tree (everything
// under internal/) with the stdlib-only loader — the strongest check
// that the custom importer chain (module-internal recursion + GOROOT
// source importer) resolves every dependency the codebase actually has.
func TestLoadModuleTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "vcprof" {
		t.Fatalf("module = %q, want vcprof", loader.Module)
	}
	pkgs, err := loader.Load("../...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded %d packages, expected the internal tree (>= 15)", len(pkgs))
	}
	for _, pkg := range pkgs {
		if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
			t.Errorf("package %s loaded without types or syntax", pkg.Path)
		}
		if !strings.HasPrefix(pkg.Path, "vcprof/") {
			t.Errorf("package path %q not under the module", pkg.Path)
		}
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("wildcard walk descended into %s", pkg.Path)
		}
	}
}

// TestLoadSkipsTestdataButAllowsExplicit: wildcard patterns must not
// pick up fixture trees, explicit patterns must.
func TestLoadSkipsTestdataButAllowsExplicit(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("./... loaded fixture package %s", pkg.Path)
		}
	}
	expl, err := loader.Load("./testdata/clean")
	if err != nil {
		t.Fatal(err)
	}
	if len(expl) != 1 || !strings.HasSuffix(expl[0].Path, "internal/analysis/testdata/clean") {
		t.Errorf("explicit testdata load = %v", expl)
	}
}

// TestLoadErrors covers the failure modes the CLI maps to exit 2.
func TestLoadErrors(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("./nosuchdir"); err == nil {
		t.Error("missing directory accepted")
	}
	if _, err := loader.Load("/"); err == nil {
		t.Error("directory outside the module accepted")
	}
	if _, err := loader.Load("./testdata"); err == nil {
		t.Error("directory without Go files accepted")
	}
}

// TestLoadTestFilesExcluded: the loader must never parse _test.go
// files — several analyzers exempt tests structurally.
func TestLoadTestFilesExcluded(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("loader parsed test file %s", name)
			}
		}
	}
}
