package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// obsPkgPath is the histogram registry package histbuckets keys on.
const obsPkgPath = "vcprof/internal/obs"

// NewHistBuckets builds the histbuckets analyzer: histogram bucket
// bounds must be strictly increasing literals, checkable without
// running anything. obs.NewHistogram panics at init time on a bad
// layout, but a panic in a rarely-imported package is a runtime
// discovery; this check moves it to lint time. Two rules, unscoped:
//
//  1. A bucket argument to obs.NewHistogram / NewVolatileHistogram
//     must be a composite literal of strictly increasing constants, a
//     same-package var initialized with one, or a package-level var
//     whose name contains "Buckets" (rule 2 vouches for those at
//     their declaration, wherever they live).
//  2. Every package-level []uint64 var whose name contains "Buckets"
//     must be initialized with a strictly increasing constant
//     literal — the shared layouts in internal/telemetry are checked
//     once here and may then cross package boundaries freely.
func NewHistBuckets() *Analyzer {
	az := &Analyzer{
		Name: "histbuckets",
		Doc:  "require strictly increasing literal histogram bucket bounds",
	}
	az.Run = func(pass *Pass) {
		info := pass.TypesInfo()
		for _, f := range pass.Files() {
			checkBucketVars(pass, info, f)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if pkgFuncIn(fn, obsPkgPath, "NewHistogram", "NewVolatileHistogram") && len(call.Args) == 2 {
					checkBucketArg(pass, info, call.Args[1])
				}
				return true
			})
		}
	}
	return az
}

// checkBucketVars enforces rule 2 on one file's package-level vars.
func checkBucketVars(pass *Pass, info *types.Info, f *ast.File) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.Contains(name.Name, "Buckets") || !isUintSliceVar(info, name) {
					continue
				}
				if i >= len(vs.Values) {
					pass.Reportf(name.Pos(),
						"bucket layout %s has no initializer; give it a strictly increasing literal so callers can rely on it", name.Name)
					continue
				}
				if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
					checkBucketLit(pass, info, lit)
				} else {
					pass.Reportf(vs.Values[i].Pos(),
						"bucket layout %s must be initialized with a composite literal of strictly increasing constants", name.Name)
				}
			}
		}
	}
}

// isUintSliceVar reports whether the declared name is a package-level
// var of an unsigned-integer slice type.
func isUintSliceVar(info *types.Info, name *ast.Ident) bool {
	v, ok := info.Defs[name].(*types.Var)
	if !ok || v.Parent() != v.Pkg().Scope() {
		return false
	}
	sl, ok := v.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// checkBucketArg enforces rule 1 on one bucket argument.
func checkBucketArg(pass *Pass, info *types.Info, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.CompositeLit:
		checkBucketLit(pass, info, e)
	case *ast.Ident:
		if strings.Contains(e.Name, "Buckets") {
			return // rule 2 validated (or flagged) the declaration
		}
		if lit := localVarLiteral(pass, info, e); lit != nil {
			checkBucketLit(pass, info, lit)
			return
		}
		pass.Reportf(arg.Pos(),
			"cannot verify bucket bounds of %s; use a composite literal, a same-package literal var, or a package-level *Buckets* layout", e.Name)
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && strings.Contains(v.Name(), "Buckets") {
			return // rule 2 validates the layout where it is declared
		}
		pass.Reportf(arg.Pos(),
			"cannot verify imported bucket bounds; share the layout as a package-level *Buckets* var so it is checked at its declaration")
	default:
		pass.Reportf(arg.Pos(),
			"cannot verify computed bucket bounds; histogram layouts must be strictly increasing literals")
	}
}

// localVarLiteral finds the composite-literal initializer of a
// same-package package-level var, or nil.
func localVarLiteral(pass *Pass, info *types.Info, id *ast.Ident) *ast.CompositeLit {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != pass.Pkg.Path || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if info.Defs[name] != info.Uses[id] || i >= len(vs.Values) {
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return lit
					}
				}
			}
		}
	}
	return nil
}

// checkBucketLit validates one literal: non-empty, every element a
// constant, and the sequence strictly increasing.
func checkBucketLit(pass *Pass, info *types.Info, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		pass.Reportf(lit.Pos(), "empty bucket bound list; a histogram needs at least one finite bucket")
		return
	}
	var prev uint64
	havePrev := false
	for _, elt := range lit.Elts {
		tv, ok := info.Types[elt]
		if !ok || tv.Value == nil {
			pass.Reportf(elt.Pos(), "non-constant bucket bound; histogram layouts must be literal so lint can prove them increasing")
			return
		}
		v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
		if !ok {
			pass.Reportf(elt.Pos(), "bucket bound does not fit uint64")
			return
		}
		if havePrev && v <= prev {
			pass.Reportf(elt.Pos(), "bucket bounds not strictly increasing (%d after %d)", v, prev)
			return
		}
		prev, havePrev = v, true
	}
}
