// Package detflow is vclint's fixture for the whole-program
// determinism-taint analyzer. By fixture convention, functions named
// DetRoot* in a testdata/detflow package are taint roots, and the
// package opts into detflow's sink scope automatically, so the tree
// exercises the exact analyzer instance cmd/vclint ships.
package detflow

import (
	"os"
	"time"

	"vcprof/internal/analysis/testdata/detflow/inner"
)

// DetRootCell is a deterministic root: everything it can reach must be
// volatile-free. The leaks below are one hop down (step), two hops down
// across a package boundary (inner.Frame → inner tick), and in a
// host-env helper; the directive-carrying narrate is exempt.
func DetRootCell() float64 {
	v := step()
	v += inner.Frame(3)
	v += float64(len(hostName()))
	narrate()
	return v
}

// step leaks wall-clock one call below the root.
func step() float64 {
	t0 := time.Now() // want `detflow: wall-clock time\.Now reachable from deterministic root detflow\.DetRootCell \(2 hops\)`
	work()
	return float64(t0.Nanosecond())
}

// hostName leaks a host-environment read; detenv also flags the site
// per-package, detflow adds the reachability claim.
func hostName() string {
	return os.Getenv("HOST") // want `detenv: host-dependent os\.Getenv` `detflow: host-dependent os\.Getenv reachable from deterministic root detflow\.DetRootCell`
}

// narrate owns wall-clock legitimately (progress narration); the
// function-level directive suppresses the reachable findings inside it
// and ONLY it — chain-aware, not file-wide.
//
//lint:ignore detflow progress narration only, never feeds result bytes
func narrate() {
	t0 := time.Now()
	_ = time.Since(t0)
}

// DetRootMerge spawns a goroutine whose unsynchronized captured write
// makes the merged result schedule-dependent.
func DetRootMerge() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total = 42 // want `detflow: goroutine-captured write to total`
		close(done)
	}()
	<-done
	return total
}

// DetRootTable renders from a map in randomized order; detmaprange
// flags the range per-package, detflow adds root reachability.
func DetRootTable(m map[string]int) []string {
	var keys []string
	for k := range m { // want `detmaprange: map iteration` `detflow: map iteration with order-dependent effects`
		keys = append(keys, k)
	}
	return keys
}

// orphan is volatile but unreachable from any root: no detflow finding
// (detnow does not apply — this package is outside its scope).
func orphan() time.Time { return time.Now() }

func work() {}
