// Package inner proves detflow chains cross package boundaries: its
// leak is only reachable through the root package's DetRootCell, three
// hops up, and the diagnostic's chain records the full path.
package inner

import "time"

var epoch = time.Unix(0, 0)

// Frame is called from the detflow fixture root.
func Frame(n int) float64 {
	return float64(n) * tick()
}

// tick leaks wall-clock at the end of a cross-package chain.
func tick() float64 {
	return time.Since(epoch).Seconds() // want `detflow: wall-clock time\.Since reachable from deterministic root detflow\.DetRootCell \(3 hops\)`
}
