// digest.go extends the detflow fixture with the cluster fold-digest
// shape: cluster.FoldDigest is a deterministic root (its value is what
// every cross-topology equivalence test compares), so a fold helper
// that reaches wall-clock anywhere down the chain must be reported
// with the full root→sink path. The clean fold pins the negative.
package detflow

import "time"

// DetRootFold mirrors cluster.FoldDigest: fold per-job digests in
// index order into one value. The taint reaches the leak two hops
// down, through the per-item helper.
func DetRootFold(perJob [][]byte) string {
	out := ""
	for _, d := range perJob {
		out += foldOne(d)
	}
	return out
}

// foldOne stamps empty digests with wall-clock — the volatile sink.
func foldOne(d []byte) string {
	if len(d) == 0 {
		return stampEmpty()
	}
	return string(d)
}

func stampEmpty() string {
	return time.Now().String() // want `detflow: wall-clock time\.Now reachable from deterministic root detflow\.DetRootFold \(3 hops\)`
}

// DetRootFoldClean is the deterministic counterpart: pure
// concatenation in index order, nothing volatile reachable, silent.
func DetRootFoldClean(perJob [][]byte) string {
	out := ""
	for _, d := range perJob {
		out += string(d)
	}
	return out
}
