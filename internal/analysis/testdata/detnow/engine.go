// engine.go matches detnow's allow-file list (the engine's
// progress/timing layer), so wall-clock reads in this file are not
// findings even though the package is in scope.
package detnow

import "time"

// Progress is allowlisted wall-clock accounting.
func Progress() time.Duration {
	t0 := time.Now()
	work()
	return time.Since(t0)
}
