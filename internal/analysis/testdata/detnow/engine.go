// engine.go pins detnow's function-level suppression: a //lint:ignore
// directly above a progress/timing function's declaration silences
// every wall-clock read inside it (the finding's chain ends at the
// enclosing function), while sibling functions in the same file stay
// checked — unlike the base-filename allowlist this replaced.
package detnow

import "time"

// Progress is sanctioned wall-clock accounting; the directive covers
// both reads in its body.
//
//lint:ignore detnow progress reporting only, values never feed table cells
func Progress() time.Duration {
	t0 := time.Now()
	work()
	return time.Since(t0)
}

// Unjustified proves the suppression above is function-grained: same
// file, no directive, still flagged.
func Unjustified() time.Duration {
	t0 := time.Now() // want `detnow: wall-clock time\.Now`
	work()
	return time.Since(t0) // want `detnow: wall-clock time\.Since`
}
