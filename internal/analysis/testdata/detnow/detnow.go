// Package detnow is vclint's fixture for the detnow analyzer: the
// package path opts into the banned scope, so wall-clock reads here
// must be flagged.
package detnow

import "time"

// AssembleCell stands in for a cell-assembly path.
func AssembleCell() float64 {
	start := time.Now() // want `detnow: wall-clock time\.Now`
	work()
	return time.Since(start).Seconds() // want `detnow: wall-clock time\.Since`
}

// Remaining stands in for a table-rendering path.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `detnow: wall-clock time\.Until`
}

// Epoch is fine: time.Unix is pure arithmetic, not a clock read.
func Epoch() time.Time {
	return time.Unix(0, 0)
}

func work() {}
