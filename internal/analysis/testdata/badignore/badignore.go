// Package badignore holds a malformed suppression directive (analyzer
// name but no reason): vclint must report the directive itself rather
// than silently suppressing nothing.
package badignore

//lint:ignore detrand
var x = 1

// Use keeps x referenced.
func Use() int { return x }
