// Package clean is vclint's zero-finding fixture: idiomatic,
// determinism-respecting code that the full analyzer set must pass
// without a single diagnostic.
package clean

import (
	"sort"
	"strings"
	"sync"
)

// Render walks a map in sorted key order before writing rows.
func Render(rows map[string]int) string {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// Total merges counters commutatively; map order is irrelevant.
func Total(rows map[string]int) int {
	total := 0
	for _, v := range rows {
		total += v
	}
	return total
}

// counter follows the mutex discipline lockheld checks.
type counter struct {
	mu sync.Mutex
	n  int
}

// Add locks around the guarded write.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}
