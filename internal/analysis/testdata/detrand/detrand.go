// Package detrand is vclint's fixture for the detrand analyzer: the
// randomness imports themselves are the findings.
package detrand

import (
	crand "crypto/rand" // want `detrand: nondeterministic randomness source "crypto/rand"`
	"math/rand"         // want `detrand: nondeterministic randomness source "math/rand"`
)

// Roll mixes both banned sources.
func Roll() int {
	var b [1]byte
	if _, err := crand.Read(b[:]); err != nil {
		return 0
	}
	return rand.Intn(6) + int(b[0])
}
