// Package detmaprange is vclint's fixture for the detmaprange
// analyzer: map iterations with order-dependent effects must be
// flagged, commutative or sorted-afterwards iterations must not.
package detmaprange

import (
	"fmt"
	"sort"
	"strings"
)

// BadAppend collects keys in randomized order and never sorts them.
func BadAppend(rows map[string]int) []string {
	var out []string
	for name := range rows { // want `detmaprange: .*appends to a slice in randomized order`
		out = append(out, name)
	}
	return out
}

// BadWrite renders output directly from map order.
func BadWrite(rows map[string]int, b *strings.Builder) {
	for name, v := range rows { // want `detmaprange: .*ordered output via fmt\.Fprintf`
		fmt.Fprintf(b, "%s=%d\n", name, v)
	}
}

// BadSink streams into a builder method.
func BadSink(rows map[string]int, b *strings.Builder) {
	for name := range rows { // want `detmaprange: .*ordered output via .*Builder.*WriteString`
		b.WriteString(name)
	}
}

type table struct{ rows []string }

// BadFieldAppend appends into a struct field, where the later-sort
// heuristic cannot apply.
func BadFieldAppend(rows map[string]int, t *table) {
	for name := range rows { // want `detmaprange: .*appends to a struct field`
		t.rows = append(t.rows, name)
	}
}

// GoodSorted collects keys and sorts them afterwards: canonical order
// is restored, so no finding.
func GoodSorted(rows map[string]int) []string {
	keys := make([]string, 0, len(rows))
	for name := range rows {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	return keys
}

// GoodCommutative merges counters; iteration order cannot matter.
func GoodCommutative(dst, src map[string]int) {
	for name, v := range src {
		dst[name] += v
	}
}

// GoodSlice ranges over a slice, which is ordered by construction.
func GoodSlice(names []string, b *strings.Builder) {
	for _, name := range names {
		b.WriteString(name)
	}
}
