// Package histbuckets exercises the histbuckets analyzer: bucket
// layouts must be strictly increasing constant literals, whether they
// appear inline at a NewHistogram call, behind a same-package var, or
// as a shared package-level *Buckets* layout.
package histbuckets

import "vcprof/internal/obs"

// GoodBuckets is a valid shared layout: checked here, usable anywhere.
var GoodBuckets = []uint64{1, 2, 5, 10, 1 << 8}

var StuckBuckets = []uint64{1, 2, 2, 10} // want `histbuckets: bucket bounds not strictly increasing \(2 after 2\)`

var EmptyBuckets = []uint64{} // want `histbuckets: empty bucket bound list`

var ComputedBuckets = makeBounds() // want `histbuckets: bucket layout ComputedBuckets must be initialized with a composite literal`

// rungs lacks the Buckets opt-in name, so it is only checked when a
// histogram call actually uses it.
var rungs = []uint64{4, 8, 16}

var descending = []uint64{9, 1} // want `histbuckets: bucket bounds not strictly increasing \(1 after 9\)`

var (
	_ = obs.NewHistogram("fixture.inline.good", []uint64{1, 2, 3})
	_ = obs.NewHistogram("fixture.inline.bad", []uint64{10, 5}) // want `histbuckets: bucket bounds not strictly increasing \(5 after 10\)`
	_ = obs.NewVolatileHistogram("fixture.layout.good", GoodBuckets)
	_ = obs.NewHistogram("fixture.localvar.good", rungs)
	_ = obs.NewHistogram("fixture.localvar.bad", descending) // reported at the declaration above
	_ = obs.NewHistogram("fixture.computed", makeBounds())   // want `histbuckets: cannot verify computed bucket bounds`
)

func makeBounds() []uint64 { return []uint64{1, 2} }

func dynamic(n uint64) *obs.Histogram {
	return obs.NewHistogram("fixture.dynamic", []uint64{n, n + 1}) // want `histbuckets: non-constant bucket bound`
}
