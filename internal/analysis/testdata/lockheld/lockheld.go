// Package lockheld is vclint's fixture for the lockheld analyzer:
// fields sharing a struct with a sync mutex must only be touched with
// the lock held or from *Locked helpers.
package lockheld

import "sync"

// cache is the named-type form: a mutex field guards its siblings.
type cache struct {
	mu      sync.Mutex
	entries map[string]int
	hits    int
}

// Get follows the lock discipline.
func (c *cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	if ok {
		c.hits++
	}
	return v, ok
}

// Peek reads guarded state without the lock.
func (c *cache) Peek(k string) int {
	return c.entries[k] // want `lockheld: field c\.entries is guarded`
}

// resetLocked declares lock ownership by the naming convention, so its
// unlocked accesses are accepted.
func (c *cache) resetLocked() {
	c.entries = map[string]int{}
	c.hits = 0
}

// Reset drives resetLocked under the lock.
func (c *cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}

// stats is the anonymous-struct package-cache idiom the harness uses:
// an embedded Mutex guards the remaining fields.
var stats = struct {
	sync.Mutex
	gets uint64
}{}

// BumpGood locks the struct around the write.
func BumpGood() {
	stats.Lock()
	stats.gets++
	stats.Unlock()
}

// BumpBad writes without holding the lock.
func BumpBad() {
	stats.gets++ // want `lockheld: field stats\.gets is guarded`
}

// drainGate mirrors the live-session table's shutdown shape: a
// sync.WaitGroup sharing a struct with the mutex is guarded state like
// any sibling field, so feed pins and drains must take the lock (or
// snapshot the pointer under it) before touching the group.
type drainGate struct {
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// BeginFeed pins an in-flight feed under the lock.
func (g *drainGate) BeginFeed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.wg.Add(1)
	return true
}

// Drain blocks on the gate without ever taking the lock.
func (g *drainGate) Drain() {
	g.wg.Wait() // want `lockheld: field g\.wg is guarded`
}

// drainLocked is exempt by the naming convention: the caller owns the
// lock, so the unlocked read is accepted.
func (g *drainGate) drainLocked() bool { return g.closed }
