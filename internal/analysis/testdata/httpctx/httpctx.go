// Package httpctx is the fixture for the httpctx analyzer: handlers
// minting root contexts are findings; handlers deriving from
// r.Context() — and root contexts outside handler-shaped functions —
// are the negatives.
package httpctx

import (
	"context"
	"net/http"
)

func sink(context.Context) {}

// badBackground mints a root context in a handler, losing the request's
// cancellation.
func badBackground(w http.ResponseWriter, r *http.Request) {
	sink(context.Background()) // want `httpctx: context.Background inside an HTTP handler`
	_, _ = w, r
}

// badTODO is the same defect spelled TODO.
func badTODO(w http.ResponseWriter, r *http.Request) {
	ctx := context.TODO() // want `httpctx: context.TODO inside an HTTP handler`
	sink(ctx)
	_, _ = w, r
}

// badNested hides the root context inside a closure; it still runs on
// behalf of the request.
func badNested(w http.ResponseWriter, r *http.Request) {
	go func() {
		sink(context.Background()) // want `httpctx: context.Background inside an HTTP handler`
	}()
	_, _ = w, r
}

// badLiteral is a handler-shaped func literal, the mux-registration
// idiom.
var badLiteral = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	sink(context.Background()) // want `httpctx: context.Background inside an HTTP handler`
	_, _ = w, r
})

// goodPropagates derives everything from the request.
func goodPropagates(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sink(ctx)
	_ = w
}

// goodNotAHandler: root contexts are fine outside handler signatures
// (main functions, tests, servers wiring their base context).
func goodNotAHandler(ctx context.Context) {
	sink(context.Background())
	_ = ctx
}

// goodWrongOrder is not handler-shaped; the analyzer must not match it.
func goodWrongOrder(r *http.Request, w http.ResponseWriter) {
	sink(context.Background())
	_, _ = w, r
}
