// Package lockorder is vclint's fixture for the whole-program
// lock-order analyzer: a seeded two-class cycle taken directly, a
// cycle completed through a helper call (the interprocedural edge), a
// self-deadlock, and consistently ordered counterparts that must stay
// silent.
package lockorder

import "sync"

type accountA struct{ mu sync.Mutex }
type accountB struct{ mu sync.Mutex }

var a accountA
var b accountB

// Transfer takes a then b; Refund takes b then a — the seeded cycle.
// The finding lands on the first conflicting acquisition in the file.
func Transfer() {
	a.mu.Lock()
	b.mu.Lock() // want `lockorder: potential deadlock: lock classes lockorder\.a\.mu, lockorder\.b\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// Refund closes the cycle in the opposite order.
func Refund() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type cacheC struct{ mu sync.Mutex }
type cacheD struct{ mu sync.Mutex }

var c cacheC
var d cacheD

// Ordered and OrderedViaHelper take c before d consistently — the
// interprocedural edge (c held across the lockD call) agrees with the
// direct one, so no cycle and no finding.
func Ordered() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func OrderedViaHelper() {
	c.mu.Lock()
	defer c.mu.Unlock()
	lockD()
}

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

type tableE struct{ mu sync.Mutex }
type tableF struct{ mu sync.Mutex }

var e tableE
var f tableF

// TakeEThenF acquires f only transitively, through lockF, while
// holding e — the analyzer must see the call-graph edge to pair with
// TakeFThenE's direct opposite order.
func TakeEThenF() {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF() // want `lockorder: potential deadlock: lock classes lockorder\.e\.mu, lockorder\.f\.mu`
}

func lockF() {
	f.mu.Lock()
	f.mu.Unlock()
}

func TakeFThenE() {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// reentrant re-acquires a held class: guaranteed self-deadlock for a
// plain Mutex, reported as a one-class cycle.
type reentrant struct{ mu sync.Mutex }

func (r *reentrant) Double() {
	r.mu.Lock()
	r.mu.Lock() // want `lockorder: lock class lockorder\.reentrant\.mu can be re-acquired`
	r.mu.Unlock()
	r.mu.Unlock()
}

// Parallel goroutines start with an empty held set: the write lock
// taken inside the literal while the caller holds c is NOT an edge
// c → d (the goroutine does not inherit the caller's locks).
func SpawnClean() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		d.mu.Lock()
		d.mu.Unlock()
	}()
}
