// cluster.go extends the lockorder fixture with the shard-router
// shapes from internal/cluster: the registry's leaf-lock discipline
// (snapshot under the lock, observe after release — silent), the same
// pair nested inconsistently (the cycle the leaf rule exists to
// prevent), and a drive spawned by `go` on a named function, which
// starts from an empty held set exactly like a goroutine literal.
package lockorder

import "sync"

type registryS struct{ mu sync.Mutex }
type latTable struct{ mu sync.Mutex }

var regS registryS
var lat latTable

// SnapshotLeaf copies under the registry lock, releases, then reads
// the latency table: no nesting, no edge, no finding.
func SnapshotLeaf() {
	regS.mu.Lock()
	regS.mu.Unlock()
	lat.mu.Lock()
	lat.mu.Unlock()
}

// SnapshotNested holds the registry lock across the latency read while
// ObserveNested nests the other way — a potential deadlock.
func SnapshotNested() {
	regS.mu.Lock()
	defer regS.mu.Unlock()
	readLat() // want `lockorder: potential deadlock: lock classes lockorder\.lat\.mu, lockorder\.regS\.mu`
}

func readLat() {
	lat.mu.Lock()
	lat.mu.Unlock()
}

func ObserveNested() {
	lat.mu.Lock()
	defer lat.mu.Unlock()
	regS.mu.Lock()
	regS.mu.Unlock()
}

type routerR struct{ mu sync.Mutex }
type histQ struct{ mu sync.Mutex }

var rr routerR
var q histQ

// SubmitSpawn spawns a named drive while holding the router lock. The
// callee nests q before rr — a deadlock if the call ran synchronously
// under the held lock, but the spawned goroutine starts with an empty
// held set (same rule as a goroutine literal), so no rr → q edge
// arises and the fixture stays silent.
func SubmitSpawn() {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	go driveNamed()
}

func driveNamed() {
	q.mu.Lock()
	defer q.mu.Unlock()
	rr.mu.Lock()
	rr.mu.Unlock()
}
