// Package shardpure is vclint's fixture for the task-body purity
// analyzer: an impure sched.Graph implementation whose Run updates
// shared aggregate state, submit-closures that write captured
// variables, and the pure shard-indexed counterparts that must stay
// silent. The sched import pulls the real Graph interface into the
// program so the CHA implementation check runs against the shipped
// type, not a fixture copy.
package shardpure

import (
	"context"

	"vcprof/internal/sched"
)

// cellGraph implements sched.Graph, so its Run is a scheduler task
// body: concurrent workers execute it for distinct task indices.
type cellGraph struct {
	res  []int
	done int
}

var _ sched.Graph = (*cellGraph)(nil)

func (g *cellGraph) NumTasks() int      { return len(g.res) }
func (g *cellGraph) Deps(i int) []int   { return nil }
func (g *cellGraph) Cost(i int) uint64  { return 1 }
func (g *cellGraph) Label(i int) string { return "cell" }

// Run fills its own slot (fine) and then updates a shared counter —
// the seeded impurity: which worker increments last is a schedule
// accident.
func (g *cellGraph) Run(ctx context.Context, task, worker int) error {
	g.res[task] = task * 2
	g.done++ // want `shardpure: task body increments shared "g"`
	return nil
}

// graph mimics the encoders' task-graph builder; its add method is a
// configured submit function, so run closures are task bodies.
type graph struct {
	tasks []func(worker int) error
}

func (g *graph) add(name string, run func(worker int) error) int {
	g.tasks = append(g.tasks, run)
	return len(g.tasks) - 1
}

// build submits one pure closure (element store into a captured slice:
// every task owns its slot) and two impure ones.
func build(res []int, total *int) *graph {
	g := &graph{}
	last := 0
	g.add("pure", func(worker int) error {
		res[0] = worker // element store: allowed
		return nil
	})
	g.add("accumulate", func(worker int) error {
		*total += worker // want `shardpure: task body read-modify-writes shared "total"`
		return nil
	})
	g.add("capture", func(worker int) error {
		last = worker // want `shardpure: task body writes shared "last" without an element index`
		return nil
	})
	_ = last
	return g
}
