// Package broken fails type-checking on purpose (valid syntax, so the
// repo-wide gofmt gate is unaffected and go tooling skips it as
// testdata): cmd/vclint must exit 2 — load error — when pointed here,
// pinning the documented 0/1/2 exit-code contract.
package broken

// Mismatched carries the seeded type error.
var Mismatched int = "not an int"
