// Package detenv is vclint's fixture for the detenv analyzer:
// host-environment reads are banned in deterministic packages.
package detenv

import (
	"os"
	"runtime"
)

// Workers sizes a pool from the host CPU count.
func Workers() int {
	return runtime.NumCPU() // want `detenv: host-dependent runtime\.NumCPU`
}

// Tag mixes hostname and environment into output.
func Tag() string {
	host, _ := os.Hostname()              // want `detenv: host-dependent os\.Hostname`
	return host + os.Getenv("VCPROF_TAG") // want `detenv: host-dependent os\.Getenv`
}

// Pid records the process id.
func Pid() int {
	return os.Getpid() // want `detenv: host-dependent os\.Getpid`
}
