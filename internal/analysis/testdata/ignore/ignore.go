// Package ignorefix exercises //lint:ignore suppression in both
// placements (line above, same line): every violation below carries a
// reasoned directive, so vclint must report nothing here.
package ignorefix

import (
	//lint:ignore detrand suppression fixture: exercises the directive on the line above an import
	"math/rand"
)

// Roll uses the suppressed import.
func Roll() int {
	return rand.Intn(6)
}

// Dump iterates a map into a slice; suppressed on the same line.
func Dump(m map[string]int) []string {
	var out []string
	for k := range m { //lint:ignore detmaprange suppression fixture: consumer treats the result as a set
		out = append(out, k)
	}
	return out
}
