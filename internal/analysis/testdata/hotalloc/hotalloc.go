// Package hotalloc is vclint's fixture for the hotalloc analyzer:
// allocation patterns inside kernel loops must be flagged; the same
// constructs outside loops must not.
package hotalloc

import "fmt"

// SumLabel formats and concatenates inside the per-sample loop.
func SumLabel(px []byte) string {
	out := ""
	for i, p := range px {
		lbl := fmt.Sprintf("%d:%d", i, p) // want `hotalloc: fmt\.Sprintf inside a kernel loop`
		out += lbl                        // want `hotalloc: string \+= inside a kernel loop`
	}
	return out
}

// Join concatenates per iteration.
func Join(names []string) string {
	s := ""
	for _, n := range names {
		s = s + n // want `hotalloc: string concatenation inside a kernel loop`
	}
	return s
}

// Box converts to an interface per element.
func Box(vals []int) []any {
	out := make([]any, 0, len(vals))
	for _, v := range vals {
		out = append(out, any(v)) // want `hotalloc: conversion to any inside a kernel loop`
	}
	return out
}

// CondAlloc allocates in the loop condition, which runs per iteration.
func CondAlloc(n int) int {
	total := 0
	for i := 0; len(fmt.Sprint(i)) < n; i++ { // want `hotalloc: fmt\.Sprint inside a kernel loop`
		total += i
	}
	return total
}

// Describe formats once, outside any loop: not a finding.
func Describe(px []byte) string {
	return fmt.Sprintf("%d samples", len(px))
}
