package live

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"vcprof/internal/encoders"
	"vcprof/internal/video"
)

// SessionSpec declares one live-encode session: a clip fed frame by
// frame at a fixed rate, encoded GOP by GOP, optionally at several ABR
// ladder rungs, with scripted mid-stream codec/preset switches. Like
// service.JobSpec it is content-addressed: Key() hashes the canonical
// form, and every digest the session produces depends only on the spec
// (plus feed progress), never on where or when the session runs.
type SessionSpec struct {
	// Clip names a vbench catalog entry; Frames is the total number of
	// frames the session feeds (0 = 4 GOPs); Div divides the resolution
	// (0/1 = native).
	Clip   string `json:"clip"`
	Frames int    `json:"frames,omitempty"`
	Div    int    `json:"div,omitempty"`

	// Initial operating point.
	Family string `json:"family"`
	CRF    int    `json:"crf"`
	Preset int    `json:"preset"`

	// GOP is the keyframe cadence and splice/switch granularity in
	// frames (default 8). FPS is the feed rate (0 = the clip's native
	// rate). Deadline is the per-frame latency budget in frame
	// intervals (default 2 GOPs): frame i must finish encoding within
	// Deadline intervals of its arrival or it counts as a miss.
	GOP      int `json:"gop,omitempty"`
	FPS      int `json:"fps,omitempty"`
	Deadline int `json:"deadline,omitempty"`

	// Rungs lists additional ladder CRFs encoded alongside CRF (rung
	// 0). Share reuses rung 0's open-loop motion/intra analysis for the
	// other rungs via encoders.AnalysisCache.
	Rungs []int `json:"rungs,omitempty"`
	Share bool  `json:"share,omitempty"`

	// Switches change the operating point mid-stream. Each applies at a
	// GOP boundary — the splice points where every rung starts with a
	// keyframe — so switched streams stay independently decodable.
	Switches []Switch `json:"switches,omitempty"`
}

// Switch is a scripted mid-stream operating-point change: from GOP
// AtGOP on, encode with the given family/CRF/preset (all fields
// required — a switch names the complete new target).
type Switch struct {
	AtGOP  int    `json:"at_gop"`
	Family string `json:"family"`
	CRF    int    `json:"crf"`
	Preset int    `json:"preset"`
}

// Normalize fills defaulted fields in place so equal sessions canonize
// equally. FPS 0 stays 0 ("clip native"), resolved at session start.
func (s *SessionSpec) Normalize() {
	if s.Div == 0 {
		s.Div = 1
	}
	if s.GOP == 0 {
		s.GOP = 8
	}
	if s.Frames == 0 {
		s.Frames = 4 * s.GOP
	}
	if s.Deadline == 0 {
		s.Deadline = 2 * s.GOP
	}
}

// Validate checks the normalized spec against the clip catalog and
// every encoder family the session will pass through.
func (s *SessionSpec) Validate() error {
	if _, err := video.LookupClip(s.Clip); err != nil {
		return err
	}
	if s.Frames < 1 || s.Frames > 4096 {
		return fmt.Errorf("live: frame count %d out of range [1, 4096]", s.Frames)
	}
	if s.Div < 1 || s.Div > 16 {
		return fmt.Errorf("live: resolution divisor %d out of range [1, 16]", s.Div)
	}
	if s.GOP < 2 || s.GOP > 64 {
		return fmt.Errorf("live: GOP size %d out of range [2, 64]", s.GOP)
	}
	if s.FPS < 0 || s.FPS > 240 {
		return fmt.Errorf("live: fps %d out of range [0, 240]", s.FPS)
	}
	if s.Deadline < 1 || s.Deadline > 1024 {
		return fmt.Errorf("live: deadline %d out of range [1, 1024] frame intervals", s.Deadline)
	}
	if len(s.Rungs) > 7 {
		return fmt.Errorf("live: %d extra ladder rungs, max 7", len(s.Rungs))
	}
	if err := validPoint(s.Family, s.CRF, s.Preset); err != nil {
		return err
	}
	// Ladder CRFs must be distinct and valid for every family the
	// session can switch through (rungs persist across switches).
	families := []string{s.Family}
	seen := map[int]bool{s.CRF: true}
	for _, crf := range s.Rungs {
		if seen[crf] {
			return fmt.Errorf("live: duplicate ladder rung CRF %d", crf)
		}
		seen[crf] = true
	}
	prev := 0
	for i, sw := range s.Switches {
		if sw.AtGOP < 1 {
			return fmt.Errorf("live: switch %d at GOP %d, must be >= 1", i, sw.AtGOP)
		}
		if sw.AtGOP <= prev {
			return fmt.Errorf("live: switches out of order at GOP %d", sw.AtGOP)
		}
		prev = sw.AtGOP
		if err := validPoint(sw.Family, sw.CRF, sw.Preset); err != nil {
			return fmt.Errorf("live: switch %d: %w", i, err)
		}
		families = append(families, sw.Family)
	}
	for _, fam := range families {
		enc, err := encoders.New(encoders.Family(fam))
		if err != nil {
			return err
		}
		lo, hi := enc.CRFRange()
		for _, crf := range s.Rungs {
			if crf < lo || crf > hi {
				return fmt.Errorf("live: ladder rung CRF %d out of %s range [%d, %d]", crf, fam, lo, hi)
			}
		}
	}
	return nil
}

func validPoint(family string, crf, preset int) error {
	enc, err := encoders.New(encoders.Family(family))
	if err != nil {
		return err
	}
	lo, hi := enc.CRFRange()
	if crf < lo || crf > hi {
		return fmt.Errorf("live: %s CRF %d out of range [%d, %d]", family, crf, lo, hi)
	}
	plo, phi, _ := enc.PresetRange()
	if preset < plo || preset > phi {
		return fmt.Errorf("live: %s preset %d out of range [%d, %d]", family, preset, plo, phi)
	}
	return nil
}

// Canonical renders the normalized spec as canonical JSON — the bytes
// Key hashes.
func (s *SessionSpec) Canonical() ([]byte, error) {
	n := *s
	n.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Key returns the session's content address: the hex SHA-256 of the
// canonical spec.
func (s *SessionSpec) Key() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// rungCRFs returns the full ladder: rung 0 is the spec CRF (or the
// active switch's), followed by the extra rungs.
func rungCRFs(baseCRF int, extra []int) []int {
	out := make([]int, 0, 1+len(extra))
	out = append(out, baseCRF)
	out = append(out, extra...)
	return out
}
