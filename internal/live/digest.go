package live

import (
	"crypto/sha256"
	"encoding/hex"
)

// SessionDigest folds per-GOP digests into one session digest: the
// SHA-256 of the concatenated GOP digests in GOP-index order. Because
// the fold is ordered by GOP index — not encode or arrival order — any
// schedule, feed batching, or shard placement that encodes the same
// GOPs yields the same session digest. Mirrors cluster.FoldDigest,
// which does the same for job results.
func SessionDigest(ds [][32]byte) string {
	h := sha256.New()
	for _, d := range ds {
		h.Write(d[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
