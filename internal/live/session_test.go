package live

import (
	"context"
	"encoding/hex"
	"runtime"
	"sync"
	"testing"
	"time"

	"vcprof/internal/encoders"
	"vcprof/internal/sched"
)

// baseSpec is the calibrated reference session: at 30 fps the div-8
// encode is far faster than real time, so a correct engine reports zero
// deadline misses (the live-smoke contract).
func baseSpec() SessionSpec {
	return SessionSpec{
		Clip: "game1", Frames: 16, Div: 8,
		Family: "svt-av1", CRF: 28, Preset: 8,
		GOP: 8, FPS: 30, Deadline: 16,
		Rungs: []int{36, 44, 52}, Share: true,
	}
}

func runSession(t *testing.T, spec SessionSpec, cfg Config, batch int) (*Session, []GOPResult) {
	t.Helper()
	s, err := New(spec, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if batch <= 0 {
		batch = spec.Frames
	}
	var gops []GOPResult
	for fed := 0; fed < spec.Frames; fed += batch {
		n := batch
		eos := fed+n >= spec.Frames
		gs, err := s.Feed(context.Background(), n, eos)
		if err != nil {
			t.Fatalf("Feed: %v", err)
		}
		gops = append(gops, gs...)
	}
	return s, gops
}

// foldResults folds GOPResult digests the way the engine does — the
// cross-instance equivalent of Session.Digest for resumed sessions.
func foldResults(t *testing.T, gops []GOPResult) string {
	t.Helper()
	var ds [][32]byte
	for _, g := range gops {
		b, err := hex.DecodeString(g.Digest)
		if err != nil || len(b) != 32 {
			t.Fatalf("bad GOP digest %q: %v", g.Digest, err)
		}
		var d [32]byte
		copy(d[:], b)
		ds = append(ds, d)
	}
	return SessionDigest(ds)
}

// TestScheduleInvariance is the live half of the repo's scheduling
// contract: the session digest must not depend on pool presence,
// worker count, steal seed, or feed batching.
func TestScheduleInvariance(t *testing.T) {
	spec := baseSpec()
	ref, _ := runSession(t, spec, Config{}, 0)
	want := ref.Digest()
	if st := ref.Stats(); st.Misses != 0 || st.Dropped != 0 {
		t.Fatalf("calibrated spec missed deadlines: %+v", st)
	}

	type env struct {
		name    string
		workers int
		seed    uint64
		batch   int
	}
	for _, e := range []env{
		{"pool-j1", 1, 1, 0},
		{"pool-j8", 8, 1, 0},
		{"pool-j8-seed", 8, 0xdecade, 0},
		{"pool-j8-feed1", 8, 7, 1},
		{"nopool-feed3", 0, 0, 3},
	} {
		t.Run(e.name, func(t *testing.T) {
			cfg := Config{}
			if e.workers > 0 {
				p := sched.NewPool(sched.Config{Workers: e.workers, Seed: e.seed})
				defer p.Close()
				cfg.Pool = p
			}
			s, _ := runSession(t, spec, cfg, e.batch)
			if got := s.Digest(); got != want {
				t.Fatalf("digest diverged: got %s want %s", got, want)
			}
			if st := s.Stats(); st.Misses != 0 {
				t.Fatalf("misses diverged: %+v", st)
			}
		})
	}
}

// TestLadderShareSaving pins the tentpole's headline number: sharing
// the open-loop analysis across 4 rungs must cut instructions by at
// least 20% while leaving every output byte identical.
func TestLadderShareSaving(t *testing.T) {
	spec := baseSpec()
	shared, _ := runSession(t, spec, Config{}, 0)
	spec2 := baseSpec()
	spec2.Share = false
	indep, _ := runSession(t, spec2, Config{}, 0)

	if shared.Digest() != indep.Digest() {
		t.Fatalf("ladder sharing changed output bytes: %s vs %s", shared.Digest(), indep.Digest())
	}
	si, ii := shared.Stats().Insts, indep.Stats().Insts
	saving := 1 - float64(si)/float64(ii)
	t.Logf("ladder share: indep=%d shared=%d saving=%.1f%%", ii, si, 100*saving)
	if saving < 0.20 {
		t.Fatalf("ladder share saving %.1f%% below the 20%% floor", 100*saving)
	}
	if shared.Stats().SharedGOPs == 0 {
		t.Fatalf("no rung encodes reused the analysis cache")
	}
}

// TestSwitchSplice checks mid-stream switching: the operating point
// changes exactly at the scripted GOP boundary, and every rung of every
// GOP — across the switch — decodes standalone (the splice guarantee).
func TestSwitchSplice(t *testing.T) {
	spec := baseSpec()
	spec.Rungs = []int{40}
	spec.Switches = []Switch{{AtGOP: 1, Family: "x264", CRF: 30, Preset: 2}}
	s, gops := runSession(t, spec, Config{}, 0)
	if len(gops) != 2 {
		t.Fatalf("got %d GOPs, want 2", len(gops))
	}
	if gops[0].Family != "svt-av1" || gops[0].Preset != 8 || gops[0].CRF != 28 {
		t.Fatalf("GOP 0 at wrong point: %+v", gops[0])
	}
	if gops[1].Family != "x264" || gops[1].Preset != 2 || gops[1].CRF != 30 {
		t.Fatalf("GOP 1 did not switch: %+v", gops[1])
	}
	for _, g := range gops {
		if len(g.Bitstreams) != 2 {
			t.Fatalf("GOP %d has %d rung bitstreams, want 2", g.Index, len(g.Bitstreams))
		}
		for ri, bs := range g.Bitstreams {
			frames, err := encoders.DecodeBitstream(bs)
			if err != nil {
				t.Fatalf("GOP %d rung %d bitstream not standalone-decodable: %v", g.Index, ri, err)
			}
			if len(frames) != g.Frames {
				t.Fatalf("GOP %d rung %d decoded %d frames, want %d", g.Index, ri, len(frames), g.Frames)
			}
		}
	}
	if st := s.Stats(); st.GOPs != 2 || st.Encoded != spec.Frames {
		t.Fatalf("stats off after switch: %+v", st)
	}
}

// TestResumeEquivalence is the failover contract: splitting a session
// at a GOP boundary via ResumeToken and continuing elsewhere yields the
// same GOP digests, misses, and timeline as the session that never
// moved.
func TestResumeEquivalence(t *testing.T) {
	spec := baseSpec()
	spec.Switches = []Switch{{AtGOP: 1, Family: "svt-av1", CRF: 30, Preset: 7}}
	straight, sg := runSession(t, spec, Config{}, 0)

	a, err := New(spec, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ga, err := a.Feed(context.Background(), 8, false)
	if err != nil {
		t.Fatalf("Feed A: %v", err)
	}
	tok := a.ResumeToken()
	if tok.StartFrame != 8 || tok.GOP != 1 {
		t.Fatalf("unexpected token: %+v", tok)
	}
	b, err := Resume(spec, Config{}, tok)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	gb, err := b.Feed(context.Background(), 8, true)
	if err != nil {
		t.Fatalf("Feed B: %v", err)
	}
	combined := foldResults(t, append(append([]GOPResult{}, ga...), gb...))
	if want := foldResults(t, sg); combined != want {
		t.Fatalf("resumed digests diverge: %s vs %s", combined, want)
	}
	if straight.Digest() != foldResults(t, sg) {
		t.Fatalf("Session.Digest disagrees with folded results")
	}
	ss, bs := straight.Stats(), b.Stats()
	if ss.Misses != bs.Misses || ss.FinishTick != bs.FinishTick || ss.Insts != bs.Insts {
		t.Fatalf("resumed timeline diverged: straight=%+v resumed=%+v", ss, bs)
	}
}

// TestDegradeShedsEffort: sustained overload at a slow preset sheds
// effort toward the family's fastest preset instead of dropping.
func TestDegradeShedsEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("overload calibration is expensive")
	}
	spec := SessionSpec{
		Clip: "game1", Frames: 32, Div: 8,
		Family: "svt-av1", CRF: 28, Preset: 4,
		GOP: 8, FPS: 240, Deadline: 4,
	}
	s, gops := runSession(t, spec, Config{}, 0)
	st := s.Stats()
	if st.DegradeTotal == 0 {
		t.Fatalf("overloaded session never degraded: %+v", st)
	}
	if st.Dropped != 0 {
		t.Fatalf("degrade headroom remained but frames dropped: %+v", st)
	}
	shed := false
	for _, g := range gops {
		if g.Preset > 4 {
			shed = true
		}
	}
	if !shed {
		t.Fatalf("no GOP encoded at a shed preset: %+v", gops)
	}
}

// TestDropAtEffortFloor: overload with zero shed headroom (x264 preset
// 0 is already the fastest) must drop whole GOPs once the backlog
// exceeds the latency budget — and recover once the drop catches the
// timeline up.
func TestDropAtEffortFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("overload calibration is expensive")
	}
	spec := SessionSpec{
		Clip: "game1", Frames: 24, Div: 2,
		Family: "x264", CRF: 30, Preset: 0,
		GOP: 4, FPS: 240, Deadline: 5,
		Rungs: []int{38, 46},
	}
	s, gops := runSession(t, spec, Config{}, 0)
	st := s.Stats()
	if st.Dropped == 0 {
		t.Fatalf("overloaded floor session never dropped: %+v", st)
	}
	if st.DegradeTotal != 0 {
		t.Fatalf("preset 0 has no shed headroom, yet degraded: %+v", st)
	}
	var dropped, after int
	for _, g := range gops {
		if g.Dropped {
			dropped++
		} else if dropped > 0 {
			after++
		}
	}
	if dropped == 0 || after == 0 {
		t.Fatalf("want drop followed by recovery, got gops %+v", gops)
	}
}

// TestSpecValidation covers the representative rejection paths.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SessionSpec)
	}{
		{"unknown clip", func(s *SessionSpec) { s.Clip = "nope" }},
		{"bad family", func(s *SessionSpec) { s.Family = "vp9000" }},
		{"preset out of range", func(s *SessionSpec) { s.Preset = 99 }},
		{"duplicate rung", func(s *SessionSpec) { s.Rungs = []int{36, 36} }},
		{"rung equals base", func(s *SessionSpec) { s.Rungs = []int{28} }},
		{"switch at gop 0", func(s *SessionSpec) {
			s.Switches = []Switch{{AtGOP: 0, Family: "x264", CRF: 30, Preset: 2}}
		}},
		{"switches out of order", func(s *SessionSpec) {
			s.Switches = []Switch{
				{AtGOP: 2, Family: "x264", CRF: 30, Preset: 2},
				{AtGOP: 1, Family: "x264", CRF: 32, Preset: 2},
			}
		}},
		{"rung invalid for switch family", func(s *SessionSpec) {
			s.Rungs = []int{60}
			s.Switches = []Switch{{AtGOP: 1, Family: "x264", CRF: 30, Preset: 2}}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := baseSpec()
			c.mut(&spec)
			if _, err := New(spec, Config{}); err == nil {
				t.Fatalf("spec accepted: %+v", spec)
			}
		})
	}
	if _, err := Resume(baseSpec(), Config{}, ResumeToken{StartFrame: 3, GOP: 0}); err == nil {
		t.Fatalf("unaligned resume token accepted")
	}
	if _, err := Resume(baseSpec(), Config{}, ResumeToken{StartFrame: 8, GOP: 2}); err == nil {
		t.Fatalf("inconsistent resume token accepted")
	}
}

// TestFeedHammer drives concurrent sessions on one shared pool — with a
// mid-flight cancellation — under the race detector, then checks the
// pool winds down without leaking goroutines and that a cancelled feed
// leaves the session consistent (it can be re-fed to the same digest).
func TestFeedHammer(t *testing.T) {
	spec := baseSpec()
	spec.Frames = 8
	spec.GOP = 4
	spec.Rungs = []int{44}
	ref, _ := runSession(t, spec, Config{}, 0)
	want := ref.Digest()

	before := runtime.NumGoroutine()
	pool := sched.NewPool(sched.Config{Workers: 4, Seed: 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := New(spec, Config{Pool: pool})
			if err != nil {
				t.Errorf("New: %v", err)
				return
			}
			// First GOP under a cancelled context must fail cleanly...
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := s.Feed(cctx, 4, false); err == nil {
				t.Errorf("cancelled feed succeeded")
				return
			}
			// ...and the session must still run to the reference digest.
			for f := 0; f < spec.Frames; f += 2 {
				if _, err := s.Feed(context.Background(), 2, f+2 >= spec.Frames); err != nil {
					t.Errorf("Feed: %v", err)
					return
				}
			}
			if got := s.Digest(); got != want {
				t.Errorf("hammer digest diverged: got %s want %s", got, want)
			}
		}()
	}
	wg.Wait()
	pool.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
