package live

import "vcprof/internal/obs"

// Session telemetry. All of these count modeled events, so for a fixed
// workload they are schedule-independent and register as deterministic
// counters. A resumed session re-registers only what it encodes itself,
// so per-process values always reflect that process's work.
var (
	obsSessions = obs.NewCounter("live.sessions")
	obsResumes  = obs.NewCounter("live.session_resumes")
	obsFrames   = obs.NewCounter("live.frames_fed")
	obsGOPs     = obs.NewCounter("live.gops")
	obsDropped  = obs.NewCounter("live.dropped_frames")
	obsMisses   = obs.NewCounter("live.deadline_misses")
	obsDegrades = obs.NewCounter("live.degrade_steps")
	obsShared   = obs.NewCounter("live.rung_gops_shared")
)
