package live

import "vcprof/internal/obs"

// Session telemetry, named per the cluster-wide convention documented
// in internal/telemetry/naming.go (<domain>.<group>.<metric>). All of
// these count modeled events, so for a fixed workload they are
// schedule-independent and register as deterministic counters; they
// are also the inputs to telemetry.SLOFromRegistry, which folds them
// into the /v1/slo burn rates. A resumed session re-registers only
// what it encodes itself, so per-process values always reflect that
// process's work.
var (
	obsSessions = obs.NewCounter("live.sessions")
	obsResumes  = obs.NewCounter("live.sessions.resumed")
	obsFrames   = obs.NewCounter("live.frames.fed")
	obsGOPs     = obs.NewCounter("live.gops")
	obsDropped  = obs.NewCounter("live.frames.dropped")
	obsMisses   = obs.NewCounter("live.frames.deadline_misses")
	obsDegrades = obs.NewCounter("live.gops.degrade_steps")
	obsShared   = obs.NewCounter("live.gops.rung_shared")
)
