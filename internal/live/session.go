package live

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/sched"
	"vcprof/internal/trace"
	"vcprof/internal/video"
)

// instPerCycle is the nominal IPC the virtual timeline charges encode
// work at — the same constant harness.instMS uses to convert modeled
// instructions to modeled time, so live deadlines and VOD table
// milliseconds are on one scale.
const instPerCycle = 2

// Config carries the session's execution environment.
type Config struct {
	// Pool, when non-nil, runs each GOP's encode task graph on the
	// shared work-stealing pool. Results are byte-identical with and
	// without it (the schedule-invariance contract).
	Pool *sched.Pool
}

// ResumeToken is the complete modeled state a session carries across a
// shard failover: a session resumed from a token at a GOP boundary
// continues byte-identically (digests, misses, degrade decisions) with
// the session that never moved. All fields are modeled quantities —
// nothing in it depends on the host.
type ResumeToken struct {
	StartFrame   int    `json:"start_frame"` // frames already encoded (GOP-aligned)
	GOP          int    `json:"gop"`         // next GOP index
	FinishTick   uint64 `json:"finish_tick"` // encode pipeline position
	Degrade      int    `json:"degrade"`     // preset effort steps currently shed
	DegradeTotal int    `json:"degrade_total"`
	Misses       int    `json:"misses"`
	Dropped      int    `json:"dropped"`
	SharedGOPs   int    `json:"shared_gops"`
	Insts        uint64 `json:"insts"`
	Bytes        uint64 `json:"bytes"`
}

// GOPResult reports one encoded (or dropped) GOP.
type GOPResult struct {
	Index  int    `json:"index"`
	Start  int    `json:"start"`  // first frame index
	Frames int    `json:"frames"` // frames in this GOP
	Family string `json:"family"` // effective operating point
	Preset int    `json:"preset"`
	CRF    int    `json:"crf"`
	Digest string `json:"digest"` // hex SHA-256, see gopDigest

	Dropped bool   `json:"dropped,omitempty"`
	Misses  int    `json:"misses"`
	Bytes   int    `json:"bytes"` // summed over rungs
	Insts   uint64 `json:"insts"` // summed over rungs

	// Bitstreams holds the per-rung decodable containers. Local callers
	// (tests, the splice validator) read them; the service layer strips
	// them from wire responses and keeps only the digest.
	Bitstreams [][]byte `json:"-"`
}

// Stats is a session's cumulative accounting, all modeled.
type Stats struct {
	Fed          int    `json:"fed"`     // frames fed
	Encoded      int    `json:"encoded"` // frames encoded (GOP-aligned)
	Dropped      int    `json:"dropped"` // frames shed by the degrade policy
	GOPs         int    `json:"gops"`
	Misses       int    `json:"misses"`  // per-frame deadline misses
	Degrade      int    `json:"degrade"` // current effort steps shed
	DegradeTotal int    `json:"degrade_total"`
	FinishTick   uint64 `json:"finish_tick"`
	BacklogTicks uint64 `json:"backlog_ticks"`
	SharedGOPs   int    `json:"shared_gops"` // rung encodes that reused analysis
	Insts        uint64 `json:"insts"`
	Bytes        uint64 `json:"bytes"`
	Rungs        int    `json:"rungs"`
	Done         bool   `json:"done"`
}

// Session is a long-lived live-encode job. Frames arrive at the spec's
// frame rate on a virtual-tick clock (perf.BaseHz ticks per second);
// every completed GOP is encoded — at every ladder rung — and charged
// to the timeline at the nominal IPC, which is where deadline misses
// and the degrade policy come from. One mutex serializes Feed against
// itself and the accessors; encode work inside Feed runs on the
// configured pool.
type Session struct {
	spec SessionSpec
	cfg  Config
	clip *video.Clip
	fps  int
	tpf  uint64 // virtual ticks per frame interval

	mu         sync.Mutex
	fed        int
	encoded    int
	gop        int // next GOP index
	finishTick uint64
	degrade    int
	degradeTot int
	misses     int
	dropped    int
	sharedGOPs int
	insts      uint64
	bytes      uint64
	digests    [][32]byte // per-GOP digests encoded by this instance
	done       bool
}

// New creates a fresh session: the clip is generated up front (the
// camera the feed reads from), nothing is encoded yet.
func New(spec SessionSpec, cfg Config) (*Session, error) {
	return Resume(spec, cfg, ResumeToken{})
}

// Resume creates a session continuing from a failover token (the zero
// token means a fresh session). The token must sit on a GOP boundary.
func Resume(spec SessionSpec, cfg Config, tok ResumeToken) (*Session, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	meta, err := video.LookupClip(spec.Clip)
	if err != nil {
		return nil, err
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: spec.Frames, ScaleDiv: spec.Div})
	if err != nil {
		return nil, err
	}
	fps := spec.FPS
	if fps == 0 {
		fps = meta.FPS
	}
	if tok.StartFrame < 0 || tok.StartFrame > spec.Frames || tok.StartFrame%spec.GOP != 0 {
		return nil, fmt.Errorf("live: resume frame %d not on a GOP boundary of %d", tok.StartFrame, spec.GOP)
	}
	if tok.GOP != tok.StartFrame/spec.GOP {
		return nil, fmt.Errorf("live: resume GOP %d inconsistent with frame %d", tok.GOP, tok.StartFrame)
	}
	s := &Session{
		spec: spec, cfg: cfg, clip: clip, fps: fps,
		tpf:        ticksPerFrame(fps),
		fed:        tok.StartFrame,
		encoded:    tok.StartFrame,
		gop:        tok.GOP,
		finishTick: tok.FinishTick,
		degrade:    tok.Degrade,
		degradeTot: tok.DegradeTotal,
		misses:     tok.Misses,
		dropped:    tok.Dropped,
		sharedGOPs: tok.SharedGOPs,
		insts:      tok.Insts,
		bytes:      tok.Bytes,
	}
	if tok == (ResumeToken{}) {
		obsSessions.Add(1)
	} else {
		obsResumes.Add(1)
	}
	return s, nil
}

// Spec returns the normalized spec the session runs.
func (s *Session) Spec() SessionSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spec
}

// Feed delivers n more frames to the session (clamped to the spec's
// total) and encodes every GOP they complete. With eos, the trailing
// partial GOP is flushed too and the session is done. The returned
// results are the GOPs encoded by this call, in order.
func (s *Session) Feed(ctx context.Context, n int, eos bool) ([]GOPResult, error) {
	if n < 0 {
		return nil, fmt.Errorf("live: negative frame count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil, fmt.Errorf("live: session already finished")
	}
	s.fed += n
	if s.fed > s.spec.Frames {
		s.fed = s.spec.Frames
	}
	obsFrames.Add(uint64(n))
	var out []GOPResult
	for {
		start := s.gop * s.spec.GOP
		end := start + s.spec.GOP
		if end > s.spec.Frames {
			end = s.spec.Frames
		}
		if start >= s.spec.Frames {
			break
		}
		if s.fed < end && !(eos && s.fed > start) {
			break
		}
		if s.fed < end {
			end = s.fed // eos: flush the partial tail GOP
		}
		res, err := s.encodeGOPLocked(ctx, s.gop, start, end)
		if err != nil {
			return out, err
		}
		out = append(out, res)
		s.gop++
		s.encoded = end
		if end == s.fed {
			break
		}
	}
	if eos {
		s.done = true
	}
	return out, nil
}

// encodeGOPLocked runs one GOP at the effective operating point under the
// degrade policy, advances the virtual timeline, and accounts deadline
// misses. Caller holds s.mu.
func (s *Session) encodeGOPLocked(ctx context.Context, gop, start, end int) (GOPResult, error) {
	family, crf, preset := s.operatingPointLocked(gop)
	ready := s.arrivalTickLocked(end - 1)
	backlog := uint64(0)
	if s.finishTick > ready {
		backlog = s.finishTick - ready
	}
	gopTicks := uint64(end-start) * s.tpf

	// Degrade policy, decided at the GOP boundary from modeled backlog
	// only: shed preset effort first; drop frames only at the floor
	// with the latency budget already blown; recover one step per
	// caught-up GOP.
	maxShed := effortSteps(family, preset)
	switch {
	case backlog > uint64(s.spec.Deadline)*s.tpf && s.degrade >= maxShed:
		s.dropped += end - start
		obsDropped.Add(uint64(end - start))
		res := GOPResult{Index: gop, Start: start, Frames: end - start,
			Family: family, Preset: preset, CRF: crf, Dropped: true}
		d := gopDigest(&res, nil)
		res.Digest = hex.EncodeToString(d[:])
		s.digests = append(s.digests, d)
		obsGOPs.Add(1)
		return res, nil
	case backlog > gopTicks && s.degrade < maxShed:
		s.degrade++
		s.degradeTot++
		obsDegrades.Add(1)
	case backlog == 0 && s.degrade > 0:
		s.degrade--
	}
	effPreset := shedPreset(family, preset, s.degrade)

	sub := &video.Clip{Meta: s.clip.Meta, Frames: s.clip.Frames[start:end]}
	enc, err := encoders.New(encoders.Family(family))
	if err != nil {
		return GOPResult{}, err
	}
	crfs := rungCRFs(crf, s.spec.Rungs)
	share := s.spec.Share && len(crfs) > 1
	var cache *encoders.AnalysisCache
	if share {
		cache = &encoders.AnalysisCache{}
	}

	res := GOPResult{Index: gop, Start: start, Frames: end - start,
		Family: family, Preset: effPreset, CRF: crf}
	frameWork := make([]uint64, end-start) // summed insts per frame across rungs
	for ri, rcrf := range crfs {
		opts := encoders.Options{
			CRF: rcrf, Preset: effPreset, Threads: 1,
			KeepBitstream: true, AnalyzeIntra: true,
			NewWorkerCtx: func(int) *trace.Ctx { return trace.New() },
		}
		if s.cfg.Pool != nil {
			opts.Executor = poolExecutor{p: s.cfg.Pool}
		}
		if share {
			if ri == 0 {
				opts.AnalysisPublish = cache
			} else {
				opts.AnalysisConsume = cache
				s.sharedGOPs++
				obsShared.Add(1)
			}
		}
		r, err := enc.Encode(ctx, sub, opts)
		if err != nil {
			return GOPResult{}, err
		}
		res.Bytes += r.Bytes
		res.Insts += r.Insts
		res.Bitstreams = append(res.Bitstreams, r.Bitstream)
		for i := range r.FrameStages {
			frameWork[i] += r.FrameStages[i].Total()
		}
	}

	// Advance the virtual timeline frame by frame and count misses
	// against each frame's arrival + latency budget.
	t := s.finishTick
	if ready > t {
		t = ready
	}
	for i := 0; i < end-start; i++ {
		t += frameWork[i] / instPerCycle
		if t > s.arrivalTickLocked(start+i)+uint64(s.spec.Deadline)*s.tpf {
			res.Misses++
		}
	}
	s.finishTick = t
	s.misses += res.Misses
	s.insts += res.Insts
	s.bytes += uint64(res.Bytes)
	obsMisses.Add(uint64(res.Misses))
	obsGOPs.Add(1)

	d := gopDigest(&res, res.Bitstreams)
	res.Digest = hex.EncodeToString(d[:])
	s.digests = append(s.digests, d)
	return res, nil
}

// operatingPointLocked resolves the scripted operating point for a GOP: the
// spec's initial point, overridden by the last switch at or before it.
func (s *Session) operatingPointLocked(gop int) (family string, crf, preset int) {
	family, crf, preset = s.spec.Family, s.spec.CRF, s.spec.Preset
	for _, sw := range s.spec.Switches {
		if sw.AtGOP > gop {
			break
		}
		family, crf, preset = sw.Family, sw.CRF, sw.Preset
	}
	return family, crf, preset
}

// arrivalTickLocked is the virtual tick at which frame i has fully arrived
// (one frame interval after its start).
func (s *Session) arrivalTickLocked(i int) uint64 { return uint64(i+1) * s.tpf }

// Stats snapshots the session's cumulative accounting.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	backlog := uint64(0)
	if arrived := s.arrivalTickLocked(s.fed - 1); s.fed > 0 && s.finishTick > arrived {
		backlog = s.finishTick - arrived
	}
	return Stats{
		Fed: s.fed, Encoded: s.encoded, Dropped: s.dropped,
		GOPs: s.gop, Misses: s.misses,
		Degrade: s.degrade, DegradeTotal: s.degradeTot,
		FinishTick: s.finishTick, BacklogTicks: backlog,
		SharedGOPs: s.sharedGOPs, Insts: s.insts, Bytes: s.bytes,
		Rungs: 1 + len(s.spec.Rungs), Done: s.done,
	}
}

// Resume returns the failover token for the session's current
// GOP-boundary state.
func (s *Session) ResumeToken() ResumeToken {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ResumeToken{
		StartFrame: s.encoded, GOP: s.gop,
		FinishTick: s.finishTick,
		Degrade:    s.degrade, DegradeTotal: s.degradeTot,
		Misses: s.misses, Dropped: s.dropped,
		SharedGOPs: s.sharedGOPs, Insts: s.insts, Bytes: s.bytes,
	}
}

// Digest folds the per-GOP digests this instance encoded, in GOP
// order. For a never-resumed session this is the whole-session digest.
func (s *Session) Digest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionDigest(s.digests)
}

// ticksPerFrame converts a frame rate to virtual ticks per frame
// interval on the perf.BaseHz clock.
func ticksPerFrame(fps int) uint64 {
	return uint64(perf.BaseHz) / uint64(fps)
}

// effortSteps returns how many presets separate the point from the
// family's fastest preset — the degrade policy's shedding headroom.
func effortSteps(family string, preset int) int {
	enc, err := encoders.New(encoders.Family(family))
	if err != nil {
		return 0
	}
	lo, hi, reversed := enc.PresetRange()
	if reversed { // x264/x265: lo is fastest
		return preset - lo
	}
	return hi - preset // AV1/VP9: hi is fastest
}

// shedPreset applies n degrade steps toward the family's fastest
// preset.
func shedPreset(family string, preset, n int) int {
	enc, err := encoders.New(encoders.Family(family))
	if err != nil {
		return preset
	}
	lo, hi, reversed := enc.PresetRange()
	if reversed {
		p := preset - n
		if p < lo {
			p = lo
		}
		return p
	}
	p := preset + n
	if p > hi {
		p = hi
	}
	return p
}

// gopDigest hashes everything observable about a GOP's output: the
// header (placement + effective operating point + drop flag) and every
// rung's bitstream bytes. Instruction counts are deliberately excluded
// so ladder sharing — which changes cost, never bytes — leaves digests
// untouched.
func gopDigest(res *GOPResult, bitstreams [][]byte) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "gop %d start %d frames %d family %s preset %d crf %d dropped %v\n",
		res.Index, res.Start, res.Frames, res.Family, res.Preset, res.CRF, res.Dropped)
	for i, bs := range bitstreams {
		fmt.Fprintf(h, "rung %d bytes %d\n", i, len(bs))
		h.Write(bs)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}
