package live

import (
	"context"
	"fmt"

	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/uarch/topdown"
	"vcprof/internal/video"
)

// The live-vs-VOD characterization study (EXPERIMENTS.md §live). A VOD
// encode runs the whole clip at one operating point; a live session
// under deadline pressure walks a *schedule* of operating points as the
// degrade policy sheds preset effort, and adds the open-loop lookahead
// the VOD path never runs. The study asks whether that changes what the
// microarchitecture sees: it replays a session to recover the effective
// per-GOP schedule, measures each distinct operating point with full
// instrumentation (perf.Stat), frame-weights the top-down breakdowns,
// and sets the result against the VOD encode of the same clip at the
// nominal point.

// StudyPoint is one distinct operating point a session passed through.
type StudyPoint struct {
	Family string
	Preset int
	CRF    int
	Frames int // frames the session encoded at this point (the weight)
	C      *perf.Counters
}

// StudyReport is the paired live/VOD characterization.
type StudyReport struct {
	Spec SessionSpec

	Live    []StudyPoint      // distinct live operating points, first-seen order
	LiveTD  topdown.Breakdown // frame-weighted across points
	LiveIPC float64
	Misses  int
	Dropped int
	Degrade int // total degrade steps taken

	VOD *perf.Counters // whole clip at the nominal point, GOP keyframe cadence
}

// Study replays the session spec (unpooled — the schedule only depends
// on modeled arithmetic), recovers the operating-point schedule, and
// measures live vs VOD. Deterministic: same spec, same report.
func Study(ctx context.Context, spec SessionSpec) (*StudyReport, error) {
	s, err := New(spec, Config{})
	if err != nil {
		return nil, err
	}
	spec = s.Spec() // normalized
	gops, err := s.Feed(ctx, spec.Frames, true)
	if err != nil {
		return nil, err
	}
	st := s.Stats()
	rep := &StudyReport{Spec: spec, Misses: st.Misses, Dropped: st.Dropped, Degrade: st.DegradeTotal}

	meta, err := video.LookupClip(spec.Clip)
	if err != nil {
		return nil, err
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: spec.Frames, ScaleDiv: spec.Div})
	if err != nil {
		return nil, err
	}

	// Group the schedule into distinct operating points; remember each
	// point's first contiguous GOP run as its measurement segment.
	type seg struct{ start, end int }
	idx := map[string]int{}
	segs := map[string]seg{}
	for _, g := range gops {
		if g.Dropped {
			continue
		}
		k := fmt.Sprintf("%s/p%d/crf%d", g.Family, g.Preset, g.CRF)
		if i, ok := idx[k]; ok {
			rep.Live[i].Frames += g.Frames
			if sg := segs[k]; sg.end == g.Start {
				sg.end = g.Start + g.Frames
				segs[k] = sg
			}
			continue
		}
		idx[k] = len(rep.Live)
		rep.Live = append(rep.Live, StudyPoint{Family: g.Family, Preset: g.Preset, CRF: g.CRF, Frames: g.Frames})
		segs[k] = seg{start: g.Start, end: g.Start + g.Frames}
	}

	// Measure each point over its segment with the live option set
	// (open-loop lookahead on, keyframe every GOP), then frame-weight.
	// Windows are capped at one GOP: the model is deterministic, so a
	// GOP-sized window measures a point exactly, and full segments at
	// slow presets would make the study needlessly expensive — the
	// frame-weighting below scales each window to the frames the
	// session actually encoded at the point.
	var wSum, cycW, instW float64
	var td topdown.Breakdown
	for i := range rep.Live {
		p := &rep.Live[i]
		k := fmt.Sprintf("%s/p%d/crf%d", p.Family, p.Preset, p.CRF)
		sg := segs[k]
		if sg.end > sg.start+spec.GOP {
			sg.end = sg.start + spec.GOP
		}
		sub := &video.Clip{Meta: clip.Meta, Frames: clip.Frames[sg.start:sg.end]}
		enc, err := encoders.New(encoders.Family(p.Family))
		if err != nil {
			return nil, err
		}
		c, err := perf.Stat(ctx, enc, sub, encoders.Options{
			CRF: p.CRF, Preset: p.Preset,
			KeyInterval: spec.GOP, AnalyzeIntra: true,
		})
		if err != nil {
			return nil, err
		}
		p.C = c
		// Scale the segment measurement to the frames encoded at the
		// point; weight the breakdown by scaled cycles.
		scale := float64(p.Frames) / float64(sg.end-sg.start)
		w := float64(c.Cycles) * scale
		wSum += w
		cycW += float64(c.Cycles) * scale
		instW += float64(c.Instructions) * scale
		td.Retiring += w * c.TopDown.Retiring
		td.BadSpec += w * c.TopDown.BadSpec
		td.Frontend += w * c.TopDown.Frontend
		td.Backend += w * c.TopDown.Backend
		td.MemoryBound += w * c.TopDown.MemoryBound
		td.CoreBound += w * c.TopDown.CoreBound
		td.FrontendLatency += w * c.TopDown.FrontendLatency
		td.FrontendBandwidth += w * c.TopDown.FrontendBandwidth
	}
	if wSum > 0 {
		td.Retiring /= wSum
		td.BadSpec /= wSum
		td.Frontend /= wSum
		td.Backend /= wSum
		td.MemoryBound /= wSum
		td.CoreBound /= wSum
		td.FrontendLatency /= wSum
		td.FrontendBandwidth /= wSum
		rep.LiveTD = td
	}
	if cycW > 0 {
		rep.LiveIPC = instW / cycW
	}

	// VOD baseline: the nominal point at the same keyframe cadence, no
	// lookahead pass, measured over the same GOP-sized window as the
	// live points so the comparison is like for like.
	vclip := clip
	if len(clip.Frames) > spec.GOP {
		vclip = &video.Clip{Meta: clip.Meta, Frames: clip.Frames[:spec.GOP]}
	}
	enc, err := encoders.New(encoders.Family(spec.Family))
	if err != nil {
		return nil, err
	}
	rep.VOD, err = perf.Stat(ctx, enc, vclip, encoders.Options{
		CRF: spec.CRF, Preset: spec.Preset, KeyInterval: spec.GOP,
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}
