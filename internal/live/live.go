// Package live is the live-encode session engine: long-lived streaming
// sessions whose frames arrive on a virtual-tick clock, are encoded GOP
// by GOP (optionally at several ABR ladder rungs sharing one open-loop
// analysis pass), and can switch codec/preset mid-stream at GOP
// boundaries without breaking decodability.
//
// Everything is modeled. Time is virtual ticks on the perf.BaseHz
// clock: frame i of an FPS-rate session arrives at tick (i+1)*BaseHz/FPS,
// and encoding a GOP advances the pipeline by its summed modeled
// instructions at the nominal IPC. Deadline misses, backlog, and the
// degrade policy (shed preset effort, then drop) all derive from that
// arithmetic — so the same spec fed the same way produces byte-identical
// per-GOP digests on any host, at any worker count, with or without
// ladder sharing, and across a failover resume (ResumeToken). That is
// the property the scheduler-invariance and cluster-failover tests pin.
package live
