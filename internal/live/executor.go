package live

import (
	"context"

	"vcprof/internal/encoders"
	"vcprof/internal/sched"
)

// poolExecutor adapts a sched.Pool to the encoders.Executor surface,
// exactly as the harness does for cell evaluation: the GOP encode's
// shards become pool tasks, and the work-stealing schedule cannot
// change any byte of the result.
type poolExecutor struct {
	p *sched.Pool
}

func (e poolExecutor) Workers() int { return e.p.Workers() }

func (e poolExecutor) RunGraph(ctx context.Context, g encoders.TaskGraph) error {
	return e.p.RunGraph(ctx, g)
}
