package trace

import (
	"fmt"
	"sync"
)

// AddressSpace hands out non-overlapping virtual address ranges for the
// buffers an encoder touches (frame planes, reference pictures, block
// scratch). Kernels report loads and stores at base+offset addresses so
// the cache simulator sees the same spatial locality the native encoder
// would exhibit: long unit-stride scans of frame-sized buffers plus
// small hot scratch regions.
type AddressSpace struct {
	mu     sync.Mutex
	next   uint64
	byName map[string]Region
}

// Region is an allocated virtual range.
type Region struct {
	Base uint64
	Size uint64
}

// End returns one past the last byte of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// heapBase separates data from the synthetic code segment used by Site.
const heapBase = 0x10000000

// ScratchBase is a shared virtual region for small, hot kernel scratch
// buffers (transform tiles, quantizer levels) whose exact placement does
// not matter: they are L1-resident in any realistic run. Kernels that do
// not receive a caller buffer address report scratch traffic here.
const ScratchBase = 0x08000000

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{next: heapBase, byName: make(map[string]Region)}
}

// Alloc reserves size bytes aligned to 64 (a cache line) under the given
// name and returns the region. Allocating an existing name returns the
// prior region when the size matches, and an error otherwise; encoders
// allocate plane buffers once per stream and reuse them per frame.
func (a *AddressSpace) Alloc(name string, size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("trace: invalid allocation %q size %d", name, size)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.byName[name]; ok {
		if r.Size != uint64(size) {
			return Region{}, fmt.Errorf("trace: allocation %q re-requested with size %d, have %d", name, size, r.Size)
		}
		return r, nil
	}
	const align = 64
	base := (a.next + align - 1) &^ (align - 1)
	r := Region{Base: base, Size: uint64(size)}
	// A guard gap between regions avoids false sharing of cache lines
	// between unrelated buffers.
	a.next = r.End() + align
	a.byName[name] = r
	return r, nil
}

// MustAlloc is Alloc for static setup paths where failure is a
// programming error (fixed names, positive sizes).
func (a *AddressSpace) MustAlloc(name string, size int) Region {
	r, err := a.Alloc(name, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Lookup returns the region registered under name.
func (a *AddressSpace) Lookup(name string) (Region, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.byName[name]
	return r, ok
}
