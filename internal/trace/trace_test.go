package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNilCtxIsSafe(t *testing.T) {
	var c *Ctx
	c.Op(OpAVX, 10)
	c.Loads(0, 0, 4, 1, 4)
	c.Stores(0, 0, 4, 1, 4)
	c.Branch(0, true)
	c.Loop(0, 5)
	c.Enter(0)
	c.Leave()
	c.Merge(New())
	if c.Total() != 0 {
		t.Error("nil ctx reported nonzero total")
	}
}

func TestCtxCountsMix(t *testing.T) {
	c := New()
	c.Op(OpAVX, 10)
	c.Op(OpSSE, 2)
	c.Op(OpOther, 5)
	c.Loads(Site("t/l"), 0x1000, 4, 16, 16)
	c.Stores(Site("t/s"), 0x2000, 3, 16, 16)
	c.Branch(Site("t/b"), true)
	c.Loop(Site("t/loop"), 4)
	if got := c.Mix[OpAVX]; got != 10 {
		t.Errorf("AVX = %d, want 10", got)
	}
	if got := c.Mix[OpLoad]; got != 4 {
		t.Errorf("Load = %d, want 4", got)
	}
	if got := c.Mix[OpStore]; got != 3 {
		t.Errorf("Store = %d, want 3", got)
	}
	if got := c.Mix[OpBranch]; got != 5 {
		t.Errorf("Branch = %d, want 5 (1 + loop of 4)", got)
	}
	if c.Total() != c.Mix.Total() {
		t.Errorf("Total %d != Mix.Total %d", c.Total(), c.Mix.Total())
	}
	if c.Mix.Total() != 10+2+5+4+3+5 {
		t.Errorf("Mix.Total = %d, want 29", c.Mix.Total())
	}
	if p := c.Mix.Percent(OpAVX); p < 34 || p > 35 {
		t.Errorf("Percent(AVX) = %v, want ~34.5", p)
	}
}

func TestMixPercentEmpty(t *testing.T) {
	var m Mix
	if m.Percent(OpLoad) != 0 {
		t.Error("Percent on empty mix should be 0")
	}
}

func TestSiteStableAndDistinct(t *testing.T) {
	a := Site("pkg.fn/loop1")
	b := Site("pkg.fn/loop2")
	if a == b {
		t.Error("distinct site names mapped to same PC")
	}
	if again := Site("pkg.fn/loop1"); again != a {
		t.Error("same site name mapped to different PCs")
	}
	if SiteName(a) != "pkg.fn/loop1" {
		t.Errorf("SiteName = %q", SiteName(a))
	}
	if a%16 != 0 {
		t.Errorf("PC %#x not 16-byte aligned", uint64(a))
	}
}

func TestFuncRegistry(t *testing.T) {
	f1 := Func("encoder.EncodeFrame")
	f2 := Func("motion.Search")
	if f1 == f2 {
		t.Error("distinct functions got same id")
	}
	if Func("encoder.EncodeFrame") != f1 {
		t.Error("re-registration changed id")
	}
	if FuncName(f1) != "encoder.EncodeFrame" {
		t.Errorf("FuncName = %q", FuncName(f1))
	}
	if FuncName(FuncID(1<<30)) != "" {
		t.Error("unknown FuncID should yield empty name")
	}
}

type branchCapture struct{ events []bool }

func (b *branchCapture) Branch(pc PC, taken bool) { b.events = append(b.events, taken) }

func TestLoopBranchPattern(t *testing.T) {
	c := New()
	cap := &branchCapture{}
	c.AttachBranchSink(cap)
	c.Loop(Site("t/loop2"), 5)
	want := []bool{true, true, true, true, false}
	if len(cap.events) != len(want) {
		t.Fatalf("loop emitted %d events, want %d", len(cap.events), len(want))
	}
	for i := range want {
		if cap.events[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, cap.events[i], want[i])
		}
	}
	cap.events = nil
	c.Loop(Site("t/loop2"), 0)
	if len(cap.events) != 1 || cap.events[0] != false {
		t.Errorf("zero-iteration loop events = %v, want [false]", cap.events)
	}
}

type memCapture struct {
	addrs  []uint64
	stores int
}

func (m *memCapture) Access(addr uint64, size int, store bool) {
	m.addrs = append(m.addrs, addr)
	if store {
		m.stores++
	}
}

func TestMemSinkStriding(t *testing.T) {
	c := New()
	cap := &memCapture{}
	c.AttachMemSink(cap)
	c.Loads(Site("t/mem"), 0x1000, 3, 64, 32)
	c.Stores(Site("t/mem2"), 0x8000, 2, 16, 16)
	wantAddrs := []uint64{0x1000, 0x1040, 0x1080, 0x8000, 0x8010}
	if len(cap.addrs) != len(wantAddrs) {
		t.Fatalf("got %d accesses, want %d", len(cap.addrs), len(wantAddrs))
	}
	for i, a := range wantAddrs {
		if cap.addrs[i] != a {
			t.Errorf("access %d addr %#x, want %#x", i, cap.addrs[i], a)
		}
	}
	if cap.stores != 2 {
		t.Errorf("stores = %d, want 2", cap.stores)
	}
}

func TestRecorderWindow(t *testing.T) {
	c := New()
	rec := NewRecorder(5, 10)
	c.AttachRecorder(rec)
	c.Op(OpOther, 3)                      // idx 0..2, all before window
	c.Loop(Site("t/rw"), 4)               // idx 3..6: 5 and 6 in window
	c.Loads(Site("t/rl"), 0x100, 8, 4, 4) // idx 7..14 in window
	c.Op(OpAVX, 20)                       // idx 15..34: 15..14? window is [5,15): no wait
	// window [5, 15): AVX idx 15.. all outside except none.
	if len(rec.Ops) != 10 {
		t.Fatalf("recorded %d ops, want 10", len(rec.Ops))
	}
	// First two recorded are loop branches at idx 5 (taken) and 6 (not taken).
	if !rec.Ops[0].IsBranch() || !rec.Ops[0].Taken {
		t.Errorf("op 0 = %+v, want taken branch", rec.Ops[0])
	}
	if !rec.Ops[1].IsBranch() || rec.Ops[1].Taken {
		t.Errorf("op 1 = %+v, want not-taken branch", rec.Ops[1])
	}
	for i := 2; i < 10; i++ {
		if rec.Ops[i].Class != OpLoad {
			t.Errorf("op %d class = %v, want Load", i, rec.Ops[i].Class)
		}
	}
	if rec.Ops[2].Addr != 0x100 || rec.Ops[3].Addr != 0x104 {
		t.Errorf("load addrs %#x,%#x want 0x100,0x104", rec.Ops[2].Addr, rec.Ops[3].Addr)
	}
	if !rec.Full() {
		t.Error("recorder should report Full after window complete")
	}
	if n := len(rec.Branches()); n != 2 {
		t.Errorf("Branches() = %d entries, want 2", n)
	}
}

func TestProfileAttribution(t *testing.T) {
	c := New()
	p := NewProfile()
	c.AttachProfile(p)
	fEnc := Func("test.Encode")
	fSad := Func("test.SAD")
	c.Enter(fEnc)
	c.Op(OpOther, 10)
	c.Enter(fSad)
	c.Op(OpAVX, 90)
	c.Leave()
	c.Op(OpOther, 5)
	c.Leave()
	flat := p.Flat()
	if len(flat) != 2 {
		t.Fatalf("profile has %d entries, want 2", len(flat))
	}
	if flat[0].Name != "test.SAD" || flat[0].Insts != 90 {
		t.Errorf("hottest = %+v, want test.SAD with 90", flat[0])
	}
	if flat[1].Insts != 15 {
		t.Errorf("test.Encode insts = %d, want 15", flat[1].Insts)
	}
	if p.Hottest() != "test.SAD" {
		t.Errorf("Hottest = %q", p.Hottest())
	}
	if flat[0].Percent < 85 || flat[0].Percent > 86 {
		t.Errorf("percent = %v, want ~85.7", flat[0].Percent)
	}
	if r := p.Render(); len(r) == 0 {
		t.Error("Render returned empty string")
	}
}

func TestCtxMerge(t *testing.T) {
	a, b := New(), New()
	a.Op(OpAVX, 10)
	b.Op(OpAVX, 5)
	b.Branch(Site("t/m"), true)
	a.Merge(b)
	if a.Mix[OpAVX] != 15 || a.Mix[OpBranch] != 1 {
		t.Errorf("merged mix = %+v", a.Mix)
	}
	if a.Total() != 16 {
		t.Errorf("merged total = %d, want 16", a.Total())
	}
}

func TestAddressSpace(t *testing.T) {
	as := NewAddressSpace()
	r1, err := as.Alloc("plane/Y", 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as.Alloc("plane/U", 500)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base%64 != 0 || r2.Base%64 != 0 {
		t.Error("regions not cache-line aligned")
	}
	if r2.Base < r1.End() {
		t.Errorf("regions overlap: %+v then %+v", r1, r2)
	}
	// Same name, same size: idempotent.
	r1b, err := as.Alloc("plane/Y", 1000)
	if err != nil || r1b != r1 {
		t.Errorf("re-alloc returned %+v, %v; want %+v", r1b, err, r1)
	}
	// Same name, different size: error.
	if _, err := as.Alloc("plane/Y", 2000); err == nil {
		t.Error("conflicting re-alloc accepted")
	}
	if _, err := as.Alloc("bad", 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if got, ok := as.Lookup("plane/U"); !ok || got != r2 {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := as.Lookup("missing"); ok {
		t.Error("Lookup found missing region")
	}
}

func TestAddressSpaceNeverOverlaps(t *testing.T) {
	as := NewAddressSpace()
	var regions []Region
	f := func(sz uint16) bool {
		size := int(sz%4096) + 1
		r, err := as.Alloc(string(rune('a'+len(regions)%26))+string(rune('0'+len(regions)/26)), size)
		if err != nil {
			return false
		}
		for _, prev := range regions {
			if r.Base < prev.End() && prev.Base < r.End() {
				return false
			}
		}
		regions = append(regions, r)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	ops := []MicroOp{
		{PC: 0x400010, Class: OpBranch, Taken: true},
		{PC: 0x400020, Addr: 0x12345678, Class: OpLoad, Size: 32},
		{PC: 0x400030, Addr: 0xDEADBEEF, Class: OpStore, Size: 16},
		{PC: 0x400040, Class: OpAVX},
		{PC: 0x400050, Class: OpOther},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip: %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestTraceIORejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACE HEADER"))); err == nil {
		t.Error("ReadTrace accepted bad magic")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []MicroOp{{Class: OpAVX}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadTrace accepted truncated trace")
	}
	// Corrupt class byte.
	full := buf.Bytes()
	full[16+16] = 99
	if _, err := ReadTrace(bytes.NewReader(full)); err == nil {
		t.Error("ReadTrace accepted invalid op class")
	}
}

func TestOpClassString(t *testing.T) {
	if OpBranch.String() != "Branch" || OpAVX.String() != "AVX" {
		t.Error("OpClass names wrong")
	}
	if OpClass(200).String() != "Invalid" {
		t.Error("out-of-range class should be Invalid")
	}
}

func TestBranchTraceRoundTrip(t *testing.T) {
	ops := []MicroOp{
		{PC: 0x400010, Class: OpBranch, Taken: true},
		{PC: 0x400020, Addr: 0x1234, Class: OpLoad, Size: 8}, // filtered out
		{PC: 0x400030, Class: OpBranch, Taken: false},
		{PC: 0x400040, Class: OpAVX}, // filtered out
		{PC: 0x400050, Class: OpBranch, Taken: true},
	}
	var buf bytes.Buffer
	if err := WriteBranchTrace(&buf, ops, 1234); err != nil {
		t.Fatal(err)
	}
	got, window, err := ReadBranchTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if window != 1234 {
		t.Errorf("window = %d, want 1234", window)
	}
	want := []MicroOp{
		{PC: 0x400010, Class: OpBranch, Taken: true},
		{PC: 0x400030, Class: OpBranch, Taken: false},
		{PC: 0x400050, Class: OpBranch, Taken: true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d branches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("branch %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBranchTraceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadBranchTrace(bytes.NewReader([]byte("VCTRWRONGFORMATHEADERDATA"))); err == nil {
		t.Error("accepted wrong magic")
	}
	var buf bytes.Buffer
	if err := WriteBranchTrace(&buf, []MicroOp{{Class: OpBranch, Taken: true}}, 10); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadBranchTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("accepted truncated branch trace")
	}
}
