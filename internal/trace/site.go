package trace

import (
	"fmt"
	"sort"
	"sync"
)

// PC is a synthetic program counter. Every static instrumentation site
// (a loop branch, a compare, a kernel's load stream) registers once and
// receives a stable PC, so dynamic events from the same source location
// share a PC exactly as native branches share an address — the property
// branch predictors and BTBs key on.
type PC uint64

// FuncID identifies a function for gprof-style profiling.
type FuncID uint32

var siteRegistry = struct {
	sync.Mutex
	byName map[string]PC
	names  map[PC]string
}{
	byName: make(map[string]PC),
	names:  make(map[PC]string),
}

// codeBase and codeSpan define the synthetic text segment. Sites are
// placed by a hash of their name across a multi-megabyte span, matching
// how branches of a real encoder binary scatter over its text section —
// the spread that creates index-aliasing pressure in small predictor
// tables and realistic I-cache footprints.
const (
	codeBase = 0x400000
	codeSpan = 1 << 22 // 4 MiB of text
)

// fnv1a hashes a site name.
func fnv1a(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Site registers (or looks up) the instrumentation site with the given
// name and returns its PC. Sites are typically package-level variables:
//
//	var pcSADLoop = trace.Site("motion.SAD/rowloop")
func Site(name string) PC {
	r := &siteRegistry
	r.Lock()
	defer r.Unlock()
	if pc, ok := r.byName[name]; ok {
		return pc
	}
	pc := PC(codeBase + (fnv1a(name)%codeSpan)&^15)
	// Linear-probe hash collisions so distinct sites keep distinct PCs.
	for {
		if _, taken := r.names[pc]; !taken {
			break
		}
		pc += 16
	}
	r.byName[name] = pc
	r.names[pc] = name
	return pc
}

// Sites registers a family of n related sites ("name#0" … "name#n-1"),
// modeling the per-block-size kernel specializations real codecs compile
// (sad4x4, sad16x16, …): each specialization is a distinct static branch
// in the binary, and that static-site diversity is what pressures
// finite predictor tables.
func Sites(name string, n int) []PC {
	out := make([]PC, n)
	for i := range out {
		out[i] = Site(fmt.Sprintf("%s#%d", name, i))
	}
	return out
}

// SiteName returns the registered name for a PC, or "" if unknown.
func SiteName(pc PC) string {
	r := &siteRegistry
	r.Lock()
	defer r.Unlock()
	return r.names[pc]
}

var funcRegistry = struct {
	sync.Mutex
	byName map[string]FuncID
	names  []string
}{byName: make(map[string]FuncID)}

// Func registers (or looks up) a profiled function name and returns its
// identifier. Used with Ctx.Enter / Ctx.Leave for flat profiles.
func Func(name string) FuncID {
	r := &funcRegistry
	r.Lock()
	defer r.Unlock()
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := FuncID(len(r.names))
	r.names = append(r.names, name)
	r.byName[name] = id
	return id
}

// FuncName returns the registered name for an id, or "" if unknown.
func FuncName(id FuncID) string {
	r := &funcRegistry
	r.Lock()
	defer r.Unlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return ""
}

// RegisteredFuncs returns all registered function names, sorted.
func RegisteredFuncs() []string {
	r := &funcRegistry
	r.Lock()
	defer r.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
