package trace

// MicroOp is one recorded dynamic instruction, the unit replayed by the
// out-of-order pipeline model and the CBP branch-prediction harness.
type MicroOp struct {
	PC    PC
	Addr  uint64 // memory ops: effective address; others: 0
	Class OpClass
	Size  uint8 // memory ops: access width in bytes
	Taken bool  // branches: outcome
}

// IsBranch reports whether the op is a conditional branch.
func (o MicroOp) IsBranch() bool { return o.Class == OpBranch }

// IsMem reports whether the op accesses memory.
func (o MicroOp) IsMem() bool { return o.Class == OpLoad || o.Class == OpStore }

// Recorder captures a window of the dynamic instruction stream, mirroring
// the paper's methodology of tracing a fixed-length interval (1 billion
// instructions, scaled here) roughly halfway through the encode rather
// than the whole multi-hour run.
type Recorder struct {
	// Start and Limit bound the recorded window in dynamic instruction
	// indices: ops with index in [Start, Start+Limit) are kept.
	Start uint64
	Limit uint64
	Ops   []MicroOp
}

// NewRecorder records up to limit micro-ops starting at dynamic
// instruction index start. A limit of 0 records nothing.
func NewRecorder(start, limit uint64) *Recorder {
	return &Recorder{Start: start, Limit: limit}
}

// Full reports whether the window has been completely captured.
func (r *Recorder) Full() bool { return uint64(len(r.Ops)) >= r.Limit }

func (r *Recorder) inWindow(idx uint64) bool {
	return idx >= r.Start && idx < r.Start+r.Limit
}

// ops expands a batched non-memory event whose first dynamic index is
// firstIdx.
func (r *Recorder) ops(firstIdx uint64, class OpClass, n int) {
	if firstIdx+uint64(n) <= r.Start || firstIdx >= r.Start+r.Limit {
		return
	}
	pc := classPC(class)
	for i := 0; i < n; i++ {
		if r.inWindow(firstIdx + uint64(i)) {
			r.Ops = append(r.Ops, MicroOp{PC: pc, Class: class})
		}
	}
}

func (r *Recorder) mems(firstIdx uint64, pc PC, addr uint64, count, stride, size int, store bool) {
	if firstIdx+uint64(count) <= r.Start || firstIdx >= r.Start+r.Limit {
		return
	}
	class := OpLoad
	if store {
		class = OpStore
	}
	sz := uint8(size)
	if size > 255 {
		sz = 255
	}
	a := addr
	for i := 0; i < count; i++ {
		if r.inWindow(firstIdx + uint64(i)) {
			r.Ops = append(r.Ops, MicroOp{PC: pc, Addr: a, Class: class, Size: sz})
		}
		a += uint64(stride)
	}
}

func (r *Recorder) branch(idx uint64, pc PC, taken bool) {
	if r.inWindow(idx) {
		r.Ops = append(r.Ops, MicroOp{PC: pc, Class: OpBranch, Taken: taken})
	}
}

func (r *Recorder) loop(firstIdx uint64, pc PC, iters int) {
	if firstIdx+uint64(iters) <= r.Start || firstIdx >= r.Start+r.Limit {
		return
	}
	for i := 0; i < iters; i++ {
		if r.inWindow(firstIdx + uint64(i)) {
			r.Ops = append(r.Ops, MicroOp{PC: pc, Class: OpBranch, Taken: i < iters-1})
		}
	}
}

// Branches returns only the conditional-branch ops of the window, the
// input format of the CBP harness.
func (r *Recorder) Branches() []MicroOp {
	out := make([]MicroOp, 0, len(r.Ops)/16)
	for _, op := range r.Ops {
		if op.IsBranch() {
			out = append(out, op)
		}
	}
	return out
}

// classPC returns a stable synthetic PC for batched anonymous ops of a
// class (vector arithmetic bursts and similar), registered lazily.
var classPCs [NumClasses]PC

func init() {
	for c := OpClass(0); c < NumClasses; c++ {
		classPCs[c] = Site("trace/bulk." + c.String())
	}
}

func classPC(c OpClass) PC { return classPCs[c] }
