package trace

// Stage labels the codec pipeline stage instructions are attributed to.
// The five classic encoder stages mirror the paper's decomposition of
// encode work (motion estimation, intra prediction, transform,
// quantization, entropy coding); everything else — partition control,
// deblocking, rate control — lands in StageOther. Kernel entry points
// in internal/codec set the active stage around their bodies, so every
// encoder family gets per-stage attribution without per-family hooks.
type Stage uint8

const (
	StageOther Stage = iota
	StageMotion
	StageIntra
	StageTransform
	StageQuant
	StageEntropy
	// NumStages sizes per-stage accumulator arrays.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageOther:
		return "other"
	case StageMotion:
		return "motion"
	case StageIntra:
		return "intra"
	case StageTransform:
		return "transform"
	case StageQuant:
		return "quant"
	case StageEntropy:
		return "entropy"
	}
	return "invalid"
}

// StageCounts is the per-stage dynamic instruction breakdown of one
// context, frame or run. Indexed by Stage.
type StageCounts [NumStages]uint64

// Total sums all stages.
func (sc *StageCounts) Total() uint64 {
	var t uint64
	for _, n := range sc {
		t += n
	}
	return t
}

// Add folds another breakdown into sc.
func (sc *StageCounts) Add(o *StageCounts) {
	for i, n := range o {
		sc[i] += n
	}
}

// Sub returns sc - o element-wise (the delta between two snapshots of
// the same monotone accumulator).
func (sc StageCounts) Sub(o StageCounts) StageCounts {
	var d StageCounts
	for i := range d {
		d[i] = sc[i] - o[i]
	}
	return d
}

// BeginStage switches the context's active attribution stage and
// returns the previous one for restoring. Stage switches nest: the
// innermost active stage wins (flat self-time attribution, the way a
// sampling profiler would see it).
func (c *Ctx) BeginStage(s Stage) Stage {
	if c == nil {
		return StageOther
	}
	prev := c.stage
	c.stage = s
	return prev
}

// EndStage restores the attribution stage saved by BeginStage.
func (c *Ctx) EndStage(prev Stage) {
	if c == nil {
		return
	}
	c.stage = prev
}

// StageCounts snapshots the per-stage instruction breakdown.
func (c *Ctx) StageCounts() StageCounts {
	if c == nil {
		return StageCounts{}
	}
	return c.stages
}
