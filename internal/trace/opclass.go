// Package trace is the instrumentation substrate that substitutes for
// Intel Pin in the paper's methodology. Codec kernels perform their real
// arithmetic in Go and simultaneously report abstract micro-ops to a
// trace context: instruction-class counts (the paper's Table 2 mix),
// branch events with synthetic program counters and real data-dependent
// outcomes (for branch-prediction simulation), and memory accesses with
// virtual addresses (for cache simulation). A context can count, stream
// events to live simulators, and/or record full micro-op windows for
// replay through the out-of-order pipeline model.
package trace

// OpClass classifies a dynamic instruction the way the paper's
// Pin-based mix analysis does (Table 2): branches, loads, stores, AVX
// (256-bit vector arithmetic), SSE (128-bit vector arithmetic), and
// everything else (scalar ALU, control, address math).
type OpClass uint8

// Instruction classes. NumClasses bounds arrays indexed by OpClass.
const (
	OpBranch OpClass = iota
	OpLoad
	OpStore
	OpAVX
	OpSSE
	OpOther
	NumClasses
)

var opClassNames = [NumClasses]string{"Branch", "Load", "Store", "AVX", "SSE", "Other"}

// String returns the class name used in report tables.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "Invalid"
}

// Mix is a dynamic instruction-class histogram.
type Mix [NumClasses]uint64

// Total returns the dynamic instruction count across all classes.
func (m *Mix) Total() uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// Percent returns the share of class c in percent (0 if empty).
func (m *Mix) Percent(c OpClass) float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(m[c]) / float64(t)
}

// Add accumulates another mix into m.
func (m *Mix) Add(o *Mix) {
	for i := range m {
		m[i] += o[i]
	}
}
