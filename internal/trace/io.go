package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace container written by cmd/vencode and consumed by
// cmd/uarchsim and cmd/cbpsim. Little-endian; fixed 19-byte records:
//
//	magic "VCTR" | u32 version | u64 count
//	records: u64 pc | u64 addr | u8 class | u8 size | u8 taken
const (
	traceMagic   = "VCTR"
	traceVersion = 1
	recordSize   = 19
)

// WriteTrace serializes ops to w.
func WriteTrace(w io.Writer, ops []MicroOp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(ops)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, op := range ops {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(op.PC))
		binary.LittleEndian.PutUint64(rec[8:16], op.Addr)
		rec[16] = byte(op.Class)
		rec[17] = op.Size
		if op.Taken {
			rec[18] = 1
		} else {
			rec[18] = 0
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]MicroOp, error) {
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[0:4]) != traceMagic {
		return nil, errors.New("trace: bad magic (not a vcprof trace)")
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	const maxOps = 1 << 31
	if count > maxOps {
		return nil, fmt.Errorf("trace: unreasonable op count %d", count)
	}
	ops := make([]MicroOp, 0, count)
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		cls := OpClass(rec[16])
		if cls >= NumClasses {
			return nil, fmt.Errorf("trace: invalid op class %d at record %d", rec[16], i)
		}
		ops = append(ops, MicroOp{
			PC:    PC(binary.LittleEndian.Uint64(rec[0:8])),
			Addr:  binary.LittleEndian.Uint64(rec[8:16]),
			Class: cls,
			Size:  rec[17],
			Taken: rec[18] != 0,
		})
	}
	return ops, nil
}

// Branch-only trace container ("VCBR"): the compact format the CBP
// harness consumes — 10-byte records of (pc, taken), roughly 2x smaller
// per branch than full micro-op traces that carry addresses.
const (
	branchMagic      = "VCBR"
	branchVersion    = 1
	branchRecordSize = 9
)

// WriteBranchTrace serializes only the conditional branches of ops,
// recording the total instruction window size for MPKI computation.
func WriteBranchTrace(w io.Writer, ops []MicroOp, windowInsts uint64) error {
	bw := bufio.NewWriter(w)
	var branches uint64
	for _, op := range ops {
		if op.IsBranch() {
			branches++
		}
	}
	if _, err := bw.WriteString(branchMagic); err != nil {
		return err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], branchVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], branches)
	binary.LittleEndian.PutUint64(hdr[12:20], windowInsts)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [branchRecordSize]byte
	for _, op := range ops {
		if !op.IsBranch() {
			continue
		}
		binary.LittleEndian.PutUint64(rec[0:8], uint64(op.PC))
		if op.Taken {
			rec[8] = 1
		} else {
			rec[8] = 0
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBranchTrace deserializes a VCBR stream, returning the branch ops
// and the instruction window they were cut from.
func ReadBranchTrace(r io.Reader) ([]MicroOp, uint64, error) {
	br := bufio.NewReader(r)
	var head [24]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: short branch-trace header: %w", err)
	}
	if string(head[0:4]) != branchMagic {
		return nil, 0, errors.New("trace: bad magic (not a vcprof branch trace)")
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != branchVersion {
		return nil, 0, fmt.Errorf("trace: unsupported branch-trace version %d", v)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	window := binary.LittleEndian.Uint64(head[16:24])
	if count > 1<<31 {
		return nil, 0, fmt.Errorf("trace: unreasonable branch count %d", count)
	}
	ops := make([]MicroOp, 0, count)
	var rec [branchRecordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("trace: truncated branch trace at record %d: %w", i, err)
		}
		ops = append(ops, MicroOp{
			PC:    PC(binary.LittleEndian.Uint64(rec[0:8])),
			Class: OpBranch,
			Taken: rec[8] != 0,
		})
	}
	return ops, window, nil
}
