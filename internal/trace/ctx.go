package trace

// BranchSink consumes dynamic conditional-branch events as they happen
// (live branch-predictor simulation, the perf-counter substitute).
type BranchSink interface {
	Branch(pc PC, taken bool)
}

// MemSink consumes dynamic memory accesses as they happen (live cache
// simulation, the perf-counter substitute).
type MemSink interface {
	Access(addr uint64, size int, store bool)
}

// Ctx is an instrumentation context. Kernels call its methods to report
// the abstract instructions they execute. A nil *Ctx is valid and every
// method is a cheap no-op on it, so un-instrumented runs (wall-clock
// thread-scaling measurements) pay almost nothing.
//
// A Ctx always counts the instruction mix. Optional sinks add live
// branch-predictor and cache simulation; an optional Recorder captures a
// full micro-op window for out-of-order pipeline replay; an optional
// Profile accumulates gprof-style per-function instruction counts.
type Ctx struct {
	Mix   Mix
	total uint64

	branchSinks []BranchSink
	memSinks    []MemSink
	rec         *Recorder
	prof        *Profile

	cur   FuncID
	stack []FuncID

	stage  Stage
	stages StageCounts
}

// New returns an empty counting context.
func New() *Ctx { return &Ctx{} }

// AttachBranchSink adds a live branch-event consumer.
func (c *Ctx) AttachBranchSink(s BranchSink) { c.branchSinks = append(c.branchSinks, s) }

// AttachMemSink adds a live memory-access consumer.
func (c *Ctx) AttachMemSink(s MemSink) { c.memSinks = append(c.memSinks, s) }

// AttachRecorder sets the micro-op recorder.
func (c *Ctx) AttachRecorder(r *Recorder) { c.rec = r }

// AttachProfile sets the per-function profile accumulator.
func (c *Ctx) AttachProfile(p *Profile) { c.prof = p }

// Total returns the dynamic instruction count seen so far.
func (c *Ctx) Total() uint64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Op reports n non-memory, non-branch instructions of the given class.
func (c *Ctx) Op(class OpClass, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.Mix[class] += uint64(n)
	c.account(uint64(n))
	if c.rec != nil {
		c.rec.ops(c.total-uint64(n), class, n)
	}
}

// Loads reports count load instructions starting at addr with the given
// byte stride, each loading size bytes.
func (c *Ctx) Loads(pc PC, addr uint64, count, stride, size int) {
	c.mem(pc, addr, count, stride, size, false)
}

// Stores reports count store instructions starting at addr with the
// given byte stride, each storing size bytes.
func (c *Ctx) Stores(pc PC, addr uint64, count, stride, size int) {
	c.mem(pc, addr, count, stride, size, true)
}

func (c *Ctx) mem(pc PC, addr uint64, count, stride, size int, store bool) {
	if c == nil || count <= 0 {
		return
	}
	class := OpLoad
	if store {
		class = OpStore
	}
	c.Mix[class] += uint64(count)
	c.account(uint64(count))
	if len(c.memSinks) > 0 {
		a := addr
		for i := 0; i < count; i++ {
			for _, s := range c.memSinks {
				s.Access(a, size, store)
			}
			a += uint64(stride)
		}
	}
	if c.rec != nil {
		c.rec.mems(c.total-uint64(count), pc, addr, count, stride, size, store)
	}
}

// Branch reports one conditional branch with its real outcome.
func (c *Ctx) Branch(pc PC, taken bool) {
	if c == nil {
		return
	}
	c.Mix[OpBranch]++
	c.account(1)
	for _, s := range c.branchSinks {
		s.Branch(pc, taken)
	}
	if c.rec != nil {
		c.rec.branch(c.total-1, pc, taken)
	}
}

// Loop reports the branch behaviour of a counted loop that executes
// iters times: the backward branch is taken iters-1 times and finally
// not taken. A zero-iteration loop reports one not-taken branch (the
// guard test).
func (c *Ctx) Loop(pc PC, iters int) {
	if c == nil {
		return
	}
	if iters < 1 {
		c.Branch(pc, false)
		return
	}
	n := uint64(iters)
	c.Mix[OpBranch] += n
	c.account(n)
	if len(c.branchSinks) > 0 {
		for i := 0; i < iters-1; i++ {
			for _, s := range c.branchSinks {
				s.Branch(pc, true)
			}
		}
		for _, s := range c.branchSinks {
			s.Branch(pc, false)
		}
	}
	if c.rec != nil {
		c.rec.loop(c.total-n, pc, iters)
	}
}

// Enter records entry into a profiled function.
func (c *Ctx) Enter(fn FuncID) {
	if c == nil {
		return
	}
	c.stack = append(c.stack, c.cur)
	c.cur = fn
	if c.prof != nil {
		c.prof.call(fn)
	}
}

// Leave records return from the current profiled function.
func (c *Ctx) Leave() {
	if c == nil || len(c.stack) == 0 {
		return
	}
	c.cur = c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
}

func (c *Ctx) account(n uint64) {
	c.total += n
	c.stages[c.stage] += n
	if c.prof != nil {
		c.prof.ops(c.cur, n)
	}
}

// Merge folds the counters of another context into c (used to combine
// per-worker contexts after a parallel encode). Sinks and recorders are
// not merged; workers share sinks only if the sinks are thread-safe.
func (c *Ctx) Merge(o *Ctx) {
	if c == nil || o == nil {
		return
	}
	c.Mix.Add(&o.Mix)
	c.total += o.total
	c.stages.Add(&o.stages)
	if c.prof != nil && o.prof != nil && c.prof != o.prof {
		c.prof.Merge(o.prof)
	}
}
