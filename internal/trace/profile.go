package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Profile accumulates gprof-style flat profiles: per-function call and
// dynamic-instruction counts. It substitutes for the paper's use of GNU
// gprof to find hot functions and choose trace windows.
type Profile struct {
	mu    sync.Mutex
	calls map[FuncID]uint64
	insts map[FuncID]uint64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{calls: make(map[FuncID]uint64), insts: make(map[FuncID]uint64)}
}

func (p *Profile) call(fn FuncID) {
	p.mu.Lock()
	p.calls[fn]++
	p.mu.Unlock()
}

func (p *Profile) ops(fn FuncID, n uint64) {
	p.mu.Lock()
	p.insts[fn] += n
	p.mu.Unlock()
}

// Merge folds another profile into p.
func (p *Profile) Merge(o *Profile) {
	if o == nil || o == p {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	for fn, n := range o.calls {
		p.calls[fn] += n
	}
	for fn, n := range o.insts {
		p.insts[fn] += n
	}
}

// Entry is one row of a flat profile.
type Entry struct {
	Name    string
	Calls   uint64
	Insts   uint64
	Percent float64
}

// Flat returns the profile sorted by descending instruction count.
func (p *Profile) Flat() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, n := range p.insts {
		total += n
	}
	out := make([]Entry, 0, len(p.insts))
	for fn, n := range p.insts {
		e := Entry{Name: FuncName(fn), Calls: p.calls[fn], Insts: n}
		if total > 0 {
			e.Percent = 100 * float64(n) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Insts != out[j].Insts {
			return out[i].Insts > out[j].Insts
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Hottest returns the name of the function with the most instructions,
// or "" for an empty profile.
func (p *Profile) Hottest() string {
	flat := p.Flat()
	if len(flat) == 0 {
		return ""
	}
	return flat[0].Name
}

// Render formats the flat profile like gprof's flat listing.
func (p *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %16s %7s\n", "function", "calls", "instructions", "%")
	for _, e := range p.Flat() {
		fmt.Fprintf(&b, "%-40s %12d %16d %6.2f%%\n", e.Name, e.Calls, e.Insts, e.Percent)
	}
	return b.String()
}
