package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vcprof/internal/obs"
)

// GaugeSample is one instantaneous gauge reading for exposition.
type GaugeSample struct {
	Name  string
	Value float64
}

// PromOptions configures one exposition render.
type PromOptions struct {
	// IncludeVolatile adds the scheduling-dependent counters and
	// histograms. With it false (and no Gauges) the output is the
	// deterministic subset: byte-stable across worker counts and warm
	// restarts, safe for golden comparison.
	IncludeVolatile bool
	// Gauges are instantaneous values rendered as gauge metrics; they
	// are sorted by name here, so callers may pass them in any order.
	Gauges []GaugeSample
}

// WriteProm renders the obs registry in the Prometheus text exposition
// format v0.0.4. Metric names get the vcprof_ prefix with dots mapped
// to underscores; every section and every family is sorted by name, so
// identical registry states render to identical bytes. No timestamps
// are emitted — byte-stability is the contract the restart test pins.
//
// Histograms render cumulatively with the conventional le labels,
// +Inf bucket, _sum and _count series, so any Prometheus-compatible
// scraper (and vcperf) can reconstruct quantiles.
func WriteProm(w io.Writer, opts PromOptions) error {
	bw := &errWriter{w: w}
	for _, c := range obs.Counters(opts.IncludeVolatile) {
		name := promName(c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	gauges := make([]GaugeSample, len(opts.Gauges))
	copy(gauges, opts.Gauges)
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	for _, g := range gauges {
		name := promName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(g.Value))
	}
	for _, h := range obs.Histograms(opts.IncludeVolatile) {
		writePromHistogram(bw, h)
	}
	return bw.err
}

func writePromHistogram(w io.Writer, h obs.HistogramValue) {
	name := promName(h.Name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}

// promName maps a dotted obs name into the Prometheus grammar:
// vcprof_ prefix, [a-zA-Z0-9_] body.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("vcprof_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders gauges the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so the render loop stays
// linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// RenderHistogram returns a human-oriented aligned dump of one
// histogram snapshot with per-bucket bars and the standard quantiles —
// the form vcload and vcperf print for latency distributions.
func RenderHistogram(h obs.HistogramValue, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: count %d sum %d%s", h.Name, h.Count, h.Sum, unit)
	if h.Count > 0 {
		fmt.Fprintf(&b, " p50 %d%s p95 %d%s p99 %d%s",
			h.Quantile(0.50), unit, h.Quantile(0.95), unit, h.Quantile(0.99), unit)
	}
	b.WriteByte('\n')
	max := uint64(1)
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.Bounds) {
			label = strconv.FormatUint(h.Bounds[i], 10)
		}
		bar := strings.Repeat("#", int(1+c*39/max))
		fmt.Fprintf(&b, "  le %8s%s  %8d %s\n", label, unit, c, bar)
	}
	return b.String()
}
