package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Cluster metrics federation (DESIGN.md §13): the gate scrapes every
// live shard's /metrics, parses each exposition, and re-renders one
// combined document — every family sorted by name, one labeled sample
// per shard plus a shard="cluster" rollup (sum). The render is a pure
// function of the parsed inputs, so the same shard states federate to
// byte-identical output no matter when or how often the gate is asked;
// the ?volatile=0 form federates only the shards' deterministic
// subsets and inherits their byte-stability.

// ShardExposition is one shard's parsed scrape. Callers pass shards in
// the order the output should list them (the gate sorts by shard name).
type ShardExposition struct {
	Shard string
	P     *ParsedProm
}

// WriteFederation renders the federated exposition. Scalars emit one
// sample per shard holding the family plus the cluster sum; histograms
// emit the cluster-level bucket sum (per-shard bucket fan-out would
// dwarf the document) under shard="cluster", skipping families whose
// bucket layouts disagree across shards.
func WriteFederation(w io.Writer, shards []ShardExposition) error {
	bw := &errWriter{w: w}

	scalarNames := map[string]bool{}
	histNames := map[string]bool{}
	for _, se := range shards {
		if se.P == nil {
			continue
		}
		for n := range se.P.Scalars {
			scalarNames[n] = true
		}
		for n := range se.P.Hists {
			histNames[n] = true
		}
	}
	for _, name := range sortedKeys(scalarNames) {
		typ := ""
		for _, se := range shards {
			if se.P == nil {
				continue
			}
			if t, ok := se.P.Types[name]; ok && typ == "" {
				typ = t
			}
		}
		if typ == "" {
			typ = "gauge"
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
		var sum float64
		for _, se := range shards {
			if se.P == nil {
				continue
			}
			v, ok := se.P.Scalars[name]
			if !ok {
				continue
			}
			sum += v
			fmt.Fprintf(bw, "%s{shard=%q} %s\n", name, se.Shard, formatFloat(v))
		}
		fmt.Fprintf(bw, "%s{shard=\"cluster\"} %s\n", name, formatFloat(sum))
	}
	for _, name := range sortedKeys(histNames) {
		var bounds []uint64
		var counts []uint64
		var sum, count uint64
		mismatched := false
		seen := false
		for _, se := range shards {
			if se.P == nil {
				continue
			}
			h, ok := se.P.Hists[name]
			if !ok {
				continue
			}
			if !seen {
				seen = true
				bounds = h.Bounds
				counts = make([]uint64, len(h.Counts))
			} else if !equalBounds(bounds, h.Bounds) {
				mismatched = true
				break
			}
			for i, c := range h.Counts {
				counts[i] += c
			}
			sum += h.Sum
			count += h.Count
		}
		if !seen || mismatched {
			if mismatched {
				fmt.Fprintf(bw, "# federation: %s skipped (bucket layouts disagree)\n", name)
			}
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, bound := range bounds {
			cum += counts[i]
			fmt.Fprintf(bw, "%s_bucket{shard=\"cluster\",le=\"%d\"} %d\n", name, bound, cum)
		}
		cum += counts[len(bounds)]
		fmt.Fprintf(bw, "%s_bucket{shard=\"cluster\",le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "%s_sum{shard=\"cluster\"} %d\n", name, sum)
		fmt.Fprintf(bw, "%s_count{shard=\"cluster\"} %d\n", name, count)
	}
	return bw.err
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalBounds(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
