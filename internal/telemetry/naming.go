package telemetry

// Metric naming convention — the single authoritative statement; the
// per-package observe.go files (internal/service, internal/cluster,
// internal/live, internal/sched) reference this block instead of
// restating it.
//
// Registry names are dotted: <domain>.<group>.<metric>, where domain
// names the owning layer (svc, gate, live, sched, perf, uarch, ...),
// group the subsystem noun, and metric the event with underscores
// inside multi-word leaves (queue.wait_ms, hedges.launched). Exposition
// maps every name through promName: the vcprof_ prefix plus [a-zA-Z0-9_]
// with each other byte folded to '_', so gate.hedges.launched is
// scraped as vcprof_gate_hedges_launched. Federated cluster rollups
// (WriteFederation) keep the same names and add a shard label —
// shard="<name>" per source, shard="cluster" for the sum.
//
// The deterministic/volatile split is decided at registration and
// never at render time:
//
//   - Deterministic (obs.NewCounter / obs.NewHistogram): counts of
//     modeled events — frames, GOPs, instructions, deadline misses on
//     the virtual clock, jobs admitted. For a fixed workload they are
//     schedule- and topology-independent, appear in ?volatile=0
//     expositions, and may be golden-pinned or byte-compared.
//   - Volatile (obs.NewVolatileCounter / obs.NewVolatileHistogram and
//     all Gauges): anything following wall-clock, health, placement or
//     scheduling — latencies, queue waits, hedges, failovers, cache
//     occupancy. Excluded from every byte-compared export; rendered
//     only in full expositions and human-facing views.
//
// The same split governs hop tracing (obs.HopVolatile): deterministic
// hops are content-addressed and byte-pinned, volatile hops carry
// process labels and wall stamps and only appear in the full view.
