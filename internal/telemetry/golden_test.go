// Golden test for the Prometheus exposition: a pinned harness run's
// deterministic metric subset must render to identical bytes at -j1
// and -j8 and match the checked-in golden file. This is the exposition
// form of the repo's worker-count equivalence contract — scheduling
// may never show through /metrics' deterministic domain.
package telemetry_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vcprof/internal/harness"
	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
)

// update regenerates the golden file:
//
//	go test ./internal/telemetry -run Golden -update
var update = flag.Bool("update", false, "rewrite the exposition golden file")

const goldenPath = "testdata/golden/metrics.prom"

// captureExposition runs pinned experiments from a cold cache and
// renders the deterministic exposition subset. The experiment set
// covers counted encodes (stage-tick histograms), the perf façade
// (perf.stat counters) and cache counters.
func captureExposition(t *testing.T, workers int) string {
	t.Helper()
	harness.ResetCellCache()
	harness.ResetClipCache()
	obs.ResetCounters()
	obs.ResetHistograms()
	scale := harness.QuickScale()
	scale.Clips = []string{"desktop"}
	scale.Frames = 2
	scale.CRFs = []int{20, 40}
	_, err := harness.RunAll(context.Background(), scale, harness.Options{
		Workers:     workers,
		Experiments: []string{"table2", "fig3", "fig4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := telemetry.WriteProm(&b, telemetry.PromOptions{}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestGoldenExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full harness cells; skipped in -short")
	}
	expo1 := captureExposition(t, 1)
	expo8 := captureExposition(t, 8)
	if expo1 != expo8 {
		t.Errorf("deterministic exposition differs between -j1 and -j8:\n%s", firstDiff(expo1, expo8))
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(expo1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file %s (run with -update): %v", goldenPath, err)
	}
	if expo1 != string(want) {
		t.Errorf("exposition differs from golden file\n%s", firstDiff(string(want), expo1))
	}
}

// firstDiff renders the first divergent line of two renderings.
func firstDiff(want, got string) string {
	wl := bytes.Split([]byte(want), []byte("\n"))
	gl := bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if !bytes.Equal(w, g) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	return "(identical?)"
}
