package telemetry

import "testing"

func TestSLOBurnMath(t *testing.T) {
	r := SLOReport{Frames: 2000, Misses: 3, GOPs: 500, Degrades: 2}.WithBurn()
	if r.MissBurnPPM != 1500 {
		t.Errorf("miss burn = %d ppm, want 1500", r.MissBurnPPM)
	}
	if r.DegradeBurnPPM != 4000 {
		t.Errorf("degrade burn = %d ppm, want 4000", r.DegradeBurnPPM)
	}
	// Zero denominators burn nothing rather than dividing by zero.
	z := SLOReport{Misses: 5, Degrades: 5}.WithBurn()
	if z.MissBurnPPM != 0 || z.DegradeBurnPPM != 0 {
		t.Errorf("zero-denominator burns = %d/%d, want 0/0", z.MissBurnPPM, z.DegradeBurnPPM)
	}
}

// TestSLOAddRecomputesOverMergedDenominators pins the federation rule:
// cluster burn is total misses over total frames, not a mean of rates.
func TestSLOAddRecomputesOverMergedDenominators(t *testing.T) {
	a := SLOReport{Sessions: 1, Frames: 1000, Misses: 10, GOPs: 100}.WithBurn() // 10000 ppm
	b := SLOReport{Sessions: 2, Frames: 9000, Misses: 0, GOPs: 900, Resumes: 1}.WithBurn()
	sum := a.Add(b)
	if sum.Sessions != 3 || sum.Resumes != 1 || sum.Frames != 10000 || sum.Misses != 10 {
		t.Fatalf("counts did not sum: %+v", sum)
	}
	if sum.MissBurnPPM != 1000 {
		t.Errorf("merged miss burn = %d ppm, want 1000 (10/10000), not the 5000 a rate-mean would give",
			sum.MissBurnPPM)
	}
}

func TestSLOCheck(t *testing.T) {
	ok := SLOReport{Frames: 1000, GOPs: 100}.WithBurn()
	if msgs := ok.Check(0, 0); len(msgs) != 0 {
		t.Errorf("clean report failed zero budgets: %v", msgs)
	}
	hot := SLOReport{Frames: 1000, Misses: 2, GOPs: 100, Degrades: 1}.WithBurn()
	if msgs := hot.Check(1000, 10000); len(msgs) != 1 {
		t.Errorf("want exactly the miss-burn violation, got %v", msgs)
	}
	if msgs := hot.Check(2000, 10000); len(msgs) != 0 {
		t.Errorf("report within budgets still failed: %v", msgs)
	}
	bad := SLOReport{Frames: 1, Misses: 2}.WithBurn()
	if msgs := bad.Check(3_000_000, 0); len(msgs) != 1 {
		t.Errorf("inconsistent misses>frames not flagged: %v", msgs)
	}
}

func TestParsePromTypesAndLabels(t *testing.T) {
	p, err := ParseProm(`# TYPE vcprof_svc_jobs_completed counter
vcprof_svc_jobs_completed 7
vcprof_svc_jobs_completed{shard="s0"} 3
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Types["vcprof_svc_jobs_completed"] != "counter" {
		t.Errorf("TYPE not parsed: %v", p.Types)
	}
	if p.Scalars["vcprof_svc_jobs_completed"] != 7 {
		t.Errorf("plain sample = %v", p.Scalars)
	}
	if p.Scalars[`vcprof_svc_jobs_completed{shard="s0"}`] != 3 {
		t.Errorf("labeled sample keyed by full name: %v", p.Scalars)
	}
}
