package telemetry

import (
	"fmt"
	"strconv"
	"strings"

	"vcprof/internal/obs"
)

// ParsedProm is one parsed text exposition: scalar samples (counters
// and gauges), reconstructed histograms, and the declared # TYPE of
// every family. Names are the exposed (vcprof_-prefixed) forms.
type ParsedProm struct {
	Scalars map[string]float64
	Hists   map[string]obs.HistogramValue
	Types   map[string]string
}

// ParseProm reads the subset of the Prometheus text exposition format
// this repository emits: unlabeled counter/gauge samples, conventional
// histogram series, and # TYPE lines. Histograms come back as
// obs.HistogramValue (per-bucket counts, not cumulative) so quantile
// logic is shared with the server. Labeled samples (federated output)
// parse as scalars keyed by their full labeled name.
func ParseProm(text string) (*ParsedProm, error) {
	p := &ParsedProm{
		Scalars: make(map[string]float64),
		Hists:   make(map[string]obs.HistogramValue),
		Types:   make(map[string]string),
	}
	type hist struct {
		bounds []uint64
		cum    []uint64
		inf    uint64
		sum    uint64
	}
	hists := make(map[string]*hist)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if f := strings.Fields(line); len(f) == 4 && f[1] == "TYPE" {
				p.Types[f[2]] = f[3]
			}
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("exposition line %q: no value", line)
		}
		if base, le, isBucket := cutBucket(name); isBucket {
			h, tracked := hists[base]
			if !tracked {
				h = &hist{}
				hists[base] = h
			}
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bucket %q: %w", line, err)
			}
			if le == "+Inf" {
				h.inf = v
			} else {
				bound, err := strconv.ParseUint(le, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bucket bound %q: %w", le, err)
				}
				h.bounds = append(h.bounds, bound)
				h.cum = append(h.cum, v)
			}
			continue
		}
		if base, okSum := strings.CutSuffix(name, "_sum"); okSum {
			if h, tracked := hists[base]; tracked {
				v, err := strconv.ParseUint(rest, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sum %q: %w", line, err)
				}
				h.sum = v
				continue
			}
		}
		if base, okCount := strings.CutSuffix(name, "_count"); okCount {
			if _, tracked := hists[base]; tracked {
				continue // redundant with the +Inf bucket
			}
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("sample %q: %w", line, err)
		}
		p.Scalars[name] = v
	}
	for name, h := range hists {
		counts := make([]uint64, len(h.bounds)+1)
		var prev uint64
		for i, c := range h.cum {
			if c < prev {
				return nil, fmt.Errorf("histogram %s: non-monotone cumulative buckets", name)
			}
			counts[i] = c - prev
			prev = c
		}
		if h.inf < prev {
			return nil, fmt.Errorf("histogram %s: +Inf below last bucket", name)
		}
		counts[len(h.bounds)] = h.inf - prev
		p.Hists[name] = obs.HistogramValue{
			Name:   name,
			Bounds: h.bounds,
			Counts: counts,
			Sum:    h.sum,
			Count:  h.inf,
		}
	}
	return p, nil
}

// cutBucket splits `name_bucket{le="X"}` into (name, X, true).
func cutBucket(sample string) (base, le string, ok bool) {
	i := strings.Index(sample, "_bucket{le=\"")
	if i < 0 {
		return "", "", false
	}
	rest := sample[i+len("_bucket{le=\""):]
	j := strings.Index(rest, "\"}")
	if j < 0 {
		return "", "", false
	}
	return sample[:i], rest[:j], true
}
