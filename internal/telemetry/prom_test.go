package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"vcprof/internal/obs"
)

// render runs WriteProm into a string, failing the test on error.
func render(t *testing.T, opts PromOptions) string {
	t.Helper()
	var b bytes.Buffer
	if err := WriteProm(&b, opts); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// testHist registers an ad-hoc histogram and removes it again when the
// test ends, so test names never leak into the golden exposition
// capture that shares this test binary.
func testHist(t *testing.T, name string, bounds []uint64, volatile bool) *obs.Histogram {
	t.Helper()
	t.Cleanup(func() { obs.UnregisterHistogram(name) })
	if volatile {
		return obs.NewVolatileHistogram(name, bounds)
	}
	return obs.NewHistogram(name, bounds)
}

// TestWritePromHistogram pins the exposition grammar for one
// histogram: vcprof_ prefix, dots to underscores, cumulative buckets,
// +Inf, _sum and _count.
func TestWritePromHistogram(t *testing.T) {
	h := testHist(t, "test.prom.hist", []uint64{10, 100}, false)
	for _, v := range []uint64{5, 50, 50, 500} {
		h.Observe(v)
	}
	out := render(t, PromOptions{})
	want := strings.Join([]string{
		"# TYPE vcprof_test_prom_hist histogram",
		`vcprof_test_prom_hist_bucket{le="10"} 1`,
		`vcprof_test_prom_hist_bucket{le="100"} 3`,
		`vcprof_test_prom_hist_bucket{le="+Inf"} 4`,
		"vcprof_test_prom_hist_sum 605",
		"vcprof_test_prom_hist_count 4",
		"",
	}, "\n")
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing histogram block:\n--- want ---\n%s--- got ---\n%s", want, out)
	}
}

// TestWritePromVolatileSplit pins the deterministic/volatile contract:
// the default render is the deterministic subset; volatile metrics and
// gauges appear only when asked for.
func TestWritePromVolatileSplit(t *testing.T) {
	testHist(t, "test.prom.det", []uint64{1}, false).Observe(1)
	testHist(t, "test.prom.vol", []uint64{1}, true).Observe(1)

	det := render(t, PromOptions{})
	if strings.Contains(det, "vcprof_test_prom_vol") {
		t.Error("volatile histogram leaked into deterministic exposition")
	}
	if !strings.Contains(det, "vcprof_test_prom_det") {
		t.Error("deterministic histogram missing")
	}
	if strings.Contains(det, "gauge") {
		t.Error("deterministic exposition contains gauges")
	}

	full := render(t, PromOptions{
		IncludeVolatile: true,
		Gauges: []GaugeSample{
			{Name: "z.gauge", Value: 2.5},
			{Name: "a.gauge", Value: 3},
		},
	})
	for _, wantLine := range []string{
		"vcprof_test_prom_vol_count 1",
		"# TYPE vcprof_a_gauge gauge\nvcprof_a_gauge 3\n",
		"# TYPE vcprof_z_gauge gauge\nvcprof_z_gauge 2.5\n",
	} {
		if !strings.Contains(full, wantLine) {
			t.Errorf("full exposition missing %q:\n%s", wantLine, full)
		}
	}
	// Gauges render sorted by name regardless of input order.
	if strings.Index(full, "vcprof_a_gauge") > strings.Index(full, "vcprof_z_gauge") {
		t.Error("gauges not sorted by name")
	}
}

// TestWritePromByteStable pins the byte-stability contract directly:
// two renders of the same registry state are identical bytes, families
// are sorted, and no timestamps appear.
func TestWritePromByteStable(t *testing.T) {
	testHist(t, "test.prom.b", []uint64{1, 2}, false).Observe(1)
	testHist(t, "test.prom.a", []uint64{1, 2}, false).Observe(2)
	opts := PromOptions{}
	r1, r2 := render(t, opts), render(t, opts)
	if r1 != r2 {
		t.Fatal("two renders of identical state differ")
	}
	if strings.Index(r1, "vcprof_test_prom_a") > strings.Index(r1, "vcprof_test_prom_b") {
		t.Error("histogram families not sorted by name")
	}
	for _, line := range strings.Split(strings.TrimSuffix(r1, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if n := len(strings.Fields(line)); n != 2 {
			t.Errorf("sample line %q has %d fields, want 2 (no timestamps)", line, n)
		}
	}
}

// TestRenderHistogramHuman pins the human dump: quantile summary line
// plus one bar per non-empty bucket.
func TestRenderHistogramHuman(t *testing.T) {
	h := testHist(t, "test.prom.human", []uint64{10, 100, 1000}, true)
	for i := uint64(0); i < 20; i++ {
		h.Observe(i * 30)
	}
	out := RenderHistogram(h.Snapshot(), "ms")
	for _, want := range []string{"test.prom.human", "count 20", "p50 ", "p95 ", "p99 ", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("human render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le       10ms         0`) {
		t.Errorf("zero buckets should be elided:\n%s", out)
	}
}

// TestSharedBucketLayouts sanity-checks the exported layouts the
// serving layer and the load generator share: non-empty and strictly
// increasing (the histbuckets lint proves the same statically).
func TestSharedBucketLayouts(t *testing.T) {
	for name, bs := range map[string][]uint64{
		"LatencyBucketsMS": LatencyBucketsMS,
		"TickBuckets":      TickBuckets,
		"LookupBucketsUS":  LookupBucketsUS,
	} {
		if len(bs) == 0 {
			t.Errorf("%s empty", name)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Errorf("%s not strictly increasing at %d", name, i)
			}
		}
	}
}
