package telemetry

import (
	"fmt"

	"vcprof/internal/obs"
)

// Live SLO layer. The live engine's deterministic counters already
// count every frame, GOP, deadline miss and degrade step on the
// virtual clock; an SLOReport folds them into burn rates — integer
// parts-per-million, so the report itself stays byte-deterministic for
// a fixed workload and mergeable across shards with no float drift.

// SLOReport is the /v1/slo wire document: live-session event totals
// plus the two burn rates vcperf slo -assert gates on.
type SLOReport struct {
	Sessions uint64 `json:"sessions"`
	Resumes  uint64 `json:"session_resumes"`
	Frames   uint64 `json:"frames_fed"`
	GOPs     uint64 `json:"gops"`
	Dropped  uint64 `json:"dropped_frames"`
	Misses   uint64 `json:"deadline_misses"`
	Degrades uint64 `json:"degrade_steps"`

	// MissBurnPPM is deadline misses per million fed frames;
	// DegradeBurnPPM is degrade steps per million encoded GOPs. Both
	// are 0 when their denominator is 0.
	MissBurnPPM    uint64 `json:"miss_burn_ppm"`
	DegradeBurnPPM uint64 `json:"degrade_burn_ppm"`
}

// WithBurn returns the report with burn rates recomputed from counts.
func (r SLOReport) WithBurn() SLOReport {
	r.MissBurnPPM, r.DegradeBurnPPM = 0, 0
	if r.Frames > 0 {
		r.MissBurnPPM = r.Misses * 1_000_000 / r.Frames
	}
	if r.GOPs > 0 {
		r.DegradeBurnPPM = r.Degrades * 1_000_000 / r.GOPs
	}
	return r
}

// Add merges another shard's report into this one (counts sum, burn
// rates recompute over the merged denominators).
func (r SLOReport) Add(o SLOReport) SLOReport {
	r.Sessions += o.Sessions
	r.Resumes += o.Resumes
	r.Frames += o.Frames
	r.GOPs += o.GOPs
	r.Dropped += o.Dropped
	r.Misses += o.Misses
	r.Degrades += o.Degrades
	return r.WithBurn()
}

// SLOFromRegistry reads the process's live.* counters into a report.
func SLOFromRegistry() SLOReport {
	var r SLOReport
	for _, c := range obs.Counters(true) {
		switch c.Name {
		case "live.sessions":
			r.Sessions = c.Value
		case "live.sessions.resumed":
			r.Resumes = c.Value
		case "live.frames.fed":
			r.Frames = c.Value
		case "live.gops":
			r.GOPs = c.Value
		case "live.frames.dropped":
			r.Dropped = c.Value
		case "live.frames.deadline_misses":
			r.Misses = c.Value
		case "live.gops.degrade_steps":
			r.Degrades = c.Value
		}
	}
	return r.WithBurn()
}

// Check enforces the CI gates: burn rates at or under the given
// ceilings and internally consistent counts. Empty means pass.
func (r SLOReport) Check(maxMissPPM, maxDegradePPM uint64) []string {
	var msgs []string
	if r.MissBurnPPM > maxMissPPM {
		msgs = append(msgs, fmt.Sprintf("deadline-miss burn %d ppm > budget %d ppm (%d misses / %d frames)",
			r.MissBurnPPM, maxMissPPM, r.Misses, r.Frames))
	}
	if r.DegradeBurnPPM > maxDegradePPM {
		msgs = append(msgs, fmt.Sprintf("degrade burn %d ppm > budget %d ppm (%d steps / %d GOPs)",
			r.DegradeBurnPPM, maxDegradePPM, r.Degrades, r.GOPs))
	}
	if r.Misses > r.Frames {
		msgs = append(msgs, fmt.Sprintf("inconsistent report: %d misses > %d frames", r.Misses, r.Frames))
	}
	return msgs
}
