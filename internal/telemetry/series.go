package telemetry

import (
	"sync"
)

// Gauge is one sampled instantaneous quantity. Sample must be cheap
// and safe to call from the sampler goroutine (atomic loads, mutexed
// counters) — it runs outside the ring lock.
type Gauge struct {
	Name   string
	Sample func() float64
}

// Series is a fixed-capacity ring buffer of gauge snapshot rows, the
// daemon's in-memory time-series store. One coarse ticker appends a
// row per tick; readers copy windows out under the same single mutex.
// The lock covers only row copy-in/copy-out — gauge evaluation happens
// outside it — so the cost to the serving path is a few microseconds
// per tick regardless of scrape traffic.
type Series struct {
	gauges []Gauge

	mu    sync.Mutex
	times []int64     // unix milliseconds, parallel to rows
	rows  [][]float64 // rows[i][g] = gauge g at sample i
	next  int         // ring cursor
	count int         // rows filled, <= cap(rows)
}

// NewSeries builds a store holding the last capacity samples of the
// given gauges.
func NewSeries(capacity int, gauges []Gauge) *Series {
	if capacity <= 0 {
		capacity = 1
	}
	gs := make([]Gauge, len(gauges))
	copy(gs, gauges)
	return &Series{
		gauges: gs,
		times:  make([]int64, capacity),
		rows:   make([][]float64, capacity),
	}
}

// Sample evaluates every gauge and appends one row stamped unixMS,
// overwriting the oldest row once the ring is full.
func (s *Series) Sample(unixMS int64) {
	if s == nil {
		return
	}
	row := make([]float64, len(s.gauges))
	for i, g := range s.gauges {
		row[i] = g.Sample()
	}
	s.mu.Lock()
	s.times[s.next] = unixMS
	s.rows[s.next] = row
	s.next = (s.next + 1) % len(s.rows)
	if s.count < len(s.rows) {
		s.count++
	}
	s.mu.Unlock()
}

// Window is a copied-out slice of the series, oldest sample first.
type Window struct {
	Names   []string    `json:"names"`
	TimesMS []int64     `json:"times_ms"`
	Samples [][]float64 `json:"samples"`
}

// Window returns the most recent n samples (all of them when n <= 0),
// oldest first. The returned rows are copies; callers own them.
func (s *Series) Window(n int) Window {
	if s == nil {
		return Window{}
	}
	w := Window{Names: make([]string, len(s.gauges))}
	for i, g := range s.gauges {
		w.Names[i] = g.Name
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > s.count {
		n = s.count
	}
	w.TimesMS = make([]int64, 0, n)
	w.Samples = make([][]float64, 0, n)
	start := s.next - n
	if start < 0 {
		start += len(s.rows)
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % len(s.rows)
		w.TimesMS = append(w.TimesMS, s.times[idx])
		row := make([]float64, len(s.rows[idx]))
		copy(row, s.rows[idx])
		w.Samples = append(w.Samples, row)
	}
	return w
}

// Len reports how many samples the ring currently holds.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
