package telemetry

import (
	"sync"
	"testing"
)

// counterGauge returns a gauge whose samples count up 1, 2, 3, … so a
// row's values identify exactly which Sample call produced it.
func counterGauge(name string) (Gauge, *int) {
	n := new(int)
	return Gauge{Name: name, Sample: func() float64 { *n++; return float64(*n) }}, n
}

// TestSeriesWindowBasics pins ordering and copy-out semantics before
// the ring wraps.
func TestSeriesWindowBasics(t *testing.T) {
	g, _ := counterGauge("g")
	s := NewSeries(4, []Gauge{g})
	if s.Len() != 0 {
		t.Fatal("fresh series not empty")
	}
	for i := int64(1); i <= 3; i++ {
		s.Sample(i * 100)
	}
	w := s.Window(0)
	if len(w.Names) != 1 || w.Names[0] != "g" {
		t.Fatalf("names %v", w.Names)
	}
	wantT := []int64{100, 200, 300}
	if len(w.TimesMS) != 3 {
		t.Fatalf("times %v, want %v", w.TimesMS, wantT)
	}
	for i := range wantT {
		if w.TimesMS[i] != wantT[i] {
			t.Errorf("time %d = %d, want %d", i, w.TimesMS[i], wantT[i])
		}
		if w.Samples[i][0] != float64(i+1) {
			t.Errorf("sample %d = %v, want %d", i, w.Samples[i][0], i+1)
		}
	}
	// Mutating the returned window must not touch the ring.
	w.Samples[0][0] = -1
	if s.Window(0).Samples[0][0] == -1 {
		t.Fatal("window aliases ring storage")
	}
}

// TestSeriesRingWraparound is the overwrite contract: a capacity-4
// ring fed 6 samples retains exactly the last 4, oldest first, and a
// partial window returns the most recent n.
func TestSeriesRingWraparound(t *testing.T) {
	g, _ := counterGauge("g")
	s := NewSeries(4, []Gauge{g})
	for i := int64(1); i <= 6; i++ {
		s.Sample(i * 10)
	}
	if s.Len() != 4 {
		t.Fatalf("len %d, want 4", s.Len())
	}
	w := s.Window(0)
	wantT := []int64{30, 40, 50, 60}
	for i := range wantT {
		if w.TimesMS[i] != wantT[i] {
			t.Fatalf("wrapped times %v, want %v", w.TimesMS, wantT)
		}
		if w.Samples[i][0] != float64(i+3) {
			t.Fatalf("wrapped samples %v", w.Samples)
		}
	}
	w2 := s.Window(2)
	if len(w2.TimesMS) != 2 || w2.TimesMS[0] != 50 || w2.TimesMS[1] != 60 {
		t.Fatalf("window(2) times %v, want [50 60]", w2.TimesMS)
	}
	// Asking for more than retained returns what exists.
	if got := len(s.Window(100).TimesMS); got != 4 {
		t.Fatalf("window(100) returned %d rows, want 4", got)
	}
}

// TestSeriesNilAndEmpty pins the disabled store and the degenerate
// capacity.
func TestSeriesNilAndEmpty(t *testing.T) {
	var s *Series
	s.Sample(1)
	if s.Len() != 0 || len(s.Window(0).TimesMS) != 0 {
		t.Fatal("nil series reported samples")
	}
	one := NewSeries(0, nil) // capacity clamps to 1
	one.Sample(7)
	one.Sample(8)
	if w := one.Window(0); len(w.TimesMS) != 1 || w.TimesMS[0] != 8 {
		t.Fatalf("capacity-0 series window %v", w)
	}
}

// TestSeriesConcurrent hammers Sample against Window under -race;
// every window must be rectangular and time-ordered.
func TestSeriesConcurrent(t *testing.T) {
	g, _ := counterGauge("g")
	s := NewSeries(8, []Gauge{g})
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := s.Window(0)
			for i, row := range w.Samples {
				if len(row) != len(w.Names) {
					t.Error("ragged window row")
					return
				}
				if i > 0 && w.TimesMS[i] < w.TimesMS[i-1] {
					t.Error("window times not ordered")
					return
				}
			}
		}
	}()
	for i := int64(1); i <= 2000; i++ {
		s.Sample(i)
	}
	close(stop)
	readers.Wait()
}
