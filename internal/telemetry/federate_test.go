package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"vcprof/internal/obs"
)

func parsedFixture(jobs float64, latCounts []uint64) *ParsedProm {
	return &ParsedProm{
		Scalars: map[string]float64{
			"vcprof_svc_jobs_completed": jobs,
			"vcprof_live_gops":          2 * jobs,
		},
		Hists: map[string]obs.HistogramValue{
			"vcprof_svc_job_latency_ms": {
				Name:   "vcprof_svc_job_latency_ms",
				Bounds: []uint64{1, 10},
				Counts: latCounts,
				Sum:    5,
				Count:  latCounts[0] + latCounts[1] + latCounts[2],
			},
		},
		Types: map[string]string{
			"vcprof_svc_jobs_completed": "counter",
			"vcprof_svc_job_latency_ms": "histogram",
		},
	}
}

func TestWriteFederationShapeAndSums(t *testing.T) {
	shards := []ShardExposition{
		{Shard: "s0", P: parsedFixture(3, []uint64{1, 1, 0})},
		{Shard: "s1", P: parsedFixture(5, []uint64{0, 2, 1})},
	}
	var b bytes.Buffer
	if err := WriteFederation(&b, shards); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE vcprof_svc_jobs_completed counter",
		`vcprof_svc_jobs_completed{shard="s0"} 3`,
		`vcprof_svc_jobs_completed{shard="s1"} 5`,
		`vcprof_svc_jobs_completed{shard="cluster"} 8`,
		`vcprof_live_gops{shard="cluster"} 16`,
		"# TYPE vcprof_svc_job_latency_ms histogram",
		`vcprof_svc_job_latency_ms_bucket{shard="cluster",le="1"} 1`,
		`vcprof_svc_job_latency_ms_bucket{shard="cluster",le="10"} 4`,
		`vcprof_svc_job_latency_ms_bucket{shard="cluster",le="+Inf"} 5`,
		`vcprof_svc_job_latency_ms_count{shard="cluster"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federation missing %q:\n%s", want, out)
		}
	}
	// A family with no TYPE declaration defaults to gauge.
	if !strings.Contains(out, "# TYPE vcprof_live_gops gauge") {
		t.Errorf("undeclared family did not default to gauge:\n%s", out)
	}
}

// TestFederationByteStable pins the render as a pure function: the same
// parsed shard states federate to identical bytes however often asked,
// and the output round-trips through ParseProm.
func TestFederationByteStable(t *testing.T) {
	shards := []ShardExposition{
		{Shard: "s0", P: parsedFixture(3, []uint64{1, 1, 0})},
		{Shard: "s1", P: parsedFixture(5, []uint64{0, 2, 1})},
		{Shard: "s2", P: nil}, // unreachable shard: contributes nothing
	}
	var a, b bytes.Buffer
	if err := WriteFederation(&a, shards); err != nil {
		t.Fatal(err)
	}
	if err := WriteFederation(&b, shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same inputs differ")
	}
	if _, err := ParseProm(a.String()); err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
}

func TestFederationSkipsMismatchedBuckets(t *testing.T) {
	odd := parsedFixture(1, []uint64{1, 0, 0})
	h := odd.Hists["vcprof_svc_job_latency_ms"]
	h.Bounds = []uint64{2, 20}
	odd.Hists["vcprof_svc_job_latency_ms"] = h
	var b bytes.Buffer
	err := WriteFederation(&b, []ShardExposition{
		{Shard: "s0", P: parsedFixture(1, []uint64{1, 0, 0})},
		{Shard: "s1", P: odd},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "vcprof_svc_job_latency_ms_bucket") {
		t.Errorf("mismatched histogram federated anyway:\n%s", out)
	}
	if !strings.Contains(out, "skipped (bucket layouts disagree)") {
		t.Errorf("mismatch not surfaced as a comment:\n%s", out)
	}
}
