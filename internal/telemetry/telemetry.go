// Package telemetry is the live metric-extraction loop over the obs
// registry: a Prometheus text exposition renderer (counters,
// histograms, gauges) and a lock-cheap ring-buffer time-series store
// the daemon samples on a coarse ticker. It is read-only over obs —
// rendering or sampling never perturbs the measurements, the same
// discipline the paper applies to its perf sampling.
//
// The deterministic/volatile split carries through: a deterministic
// exposition (volatile filtered, no gauges) is byte-stable across
// worker counts and warm restarts and is pinned by golden tests;
// the full exposition adds the scheduling- and wall-clock-dependent
// series for humans and dashboards.
package telemetry

// LatencyBucketsMS is the shared bucket layout for wall-clock latency
// histograms in milliseconds, used by the daemon's job-latency and
// queue-wait histograms and by vcload's client-side distribution so
// the two are directly comparable. Power-of-two-ish edges cover one
// tick of the scheduler (1ms) up to the default job timeout order
// (2min).
var LatencyBucketsMS = []uint64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000, 60000, 120000}

// TickBuckets is the shared bucket layout for virtual-tick histograms
// (per-stage encode ticks): wide geometric steps, since modeled
// instruction counts span from tiny intra blocks to multi-million-op
// motion searches.
var TickBuckets = []uint64{
	1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16,
	1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26,
}

// LookupBucketsUS is the shared bucket layout for host-time
// micro-latency histograms in microseconds (cell-cache lookups).
var LookupBucketsUS = []uint64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 1000000}
