package cbp

import (
	"strings"
	"testing"

	"vcprof/internal/trace"
	"vcprof/internal/uarch/bpred"
)

// synthTrace builds a branch trace with a mix of biased and patterned
// branches, with total instruction window n*4.
func synthTrace(name string, n int) Trace {
	ops := make([]trace.MicroOp, n)
	for i := range ops {
		var pc trace.PC
		var taken bool
		switch i % 3 {
		case 0: // biased branch
			pc = 0x400000
			taken = i%10 != 0
		case 1: // loop-like
			pc = 0x400100
			taken = i%8 != 7
		default: // patterned
			pc = trace.PC(0x400200 + (i%16)*16)
			taken = (i/3)%4 < 2
		}
		ops[i] = trace.MicroOp{PC: pc, Class: trace.OpBranch, Taken: taken}
	}
	return Trace{Name: name, Branches: ops, Instructions: uint64(n) * 20}
}

func TestRunScoresPredictor(t *testing.T) {
	p, err := bpred.NewByName("tage-64KB")
	if err != nil {
		t.Fatal(err)
	}
	tr := synthTrace("synthetic", 30000)
	s, err := Run(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Branches != 30000 {
		t.Errorf("branches = %d", s.Branches)
	}
	if s.MissRate <= 0 || s.MissRate > 0.5 {
		t.Errorf("miss rate %v out of plausible range", s.MissRate)
	}
	if s.MPKI <= 0 {
		t.Error("MPKI should be positive")
	}
	// MPKI must equal mispredicts scaled by the window.
	want := float64(s.Mispredicts) / (float64(tr.Instructions) / 1000)
	if s.MPKI != want {
		t.Errorf("MPKI = %v, want %v", s.MPKI, want)
	}
}

func TestChampionshipOrdering(t *testing.T) {
	tr := synthTrace("synthetic", 60000)
	scores, err := Championship(bpred.PaperSet(), []Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("got %d scores, want 4", len(scores))
	}
	byName := map[string]Score{}
	for _, s := range scores {
		byName[s.Predictor] = s
	}
	// The paper's headline result: larger predictors beat smaller ones of
	// the same family, and TAGE beats Gshare at comparable budgets.
	if byName["gshare-32KB"].MPKI > byName["gshare-2KB"].MPKI {
		t.Errorf("gshare-32KB (%v) worse than gshare-2KB (%v)",
			byName["gshare-32KB"].MPKI, byName["gshare-2KB"].MPKI)
	}
	if byName["tage-64KB"].MPKI > byName["tage-8KB"].MPKI {
		t.Errorf("tage-64KB (%v) worse than tage-8KB (%v)",
			byName["tage-64KB"].MPKI, byName["tage-8KB"].MPKI)
	}
	if byName["tage-8KB"].MPKI > byName["gshare-2KB"].MPKI {
		t.Errorf("tage-8KB (%v) worse than gshare-2KB (%v)",
			byName["tage-8KB"].MPKI, byName["gshare-2KB"].MPKI)
	}
}

func TestChampionshipErrors(t *testing.T) {
	tr := synthTrace("x", 100)
	if _, err := Championship([]string{"bogus"}, []Trace{tr}); err == nil {
		t.Error("accepted unknown predictor")
	}
	p, _ := bpred.NewByName("gshare-2KB")
	if _, err := Run(p, Trace{Name: "empty"}); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := Run(p, Trace{Name: "nowin", Branches: tr.Branches}); err == nil {
		t.Error("accepted zero instruction window")
	}
	bad := Trace{Name: "bad", Branches: []trace.MicroOp{{Class: trace.OpLoad}}, Instructions: 10}
	if _, err := Run(p, bad); err == nil {
		t.Error("accepted non-branch ops")
	}
}

func TestFromRecorder(t *testing.T) {
	tc := trace.New()
	rec := trace.NewRecorder(0, 1000)
	tc.AttachRecorder(rec)
	for i := 0; i < 300; i++ {
		tc.Op(trace.OpAVX, 2)
		tc.Branch(trace.Site("cbp/test"), i%2 == 0)
	}
	tr, err := FromRecorder("w", rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Branches) == 0 {
		t.Fatal("no branches extracted")
	}
	if tr.Instructions == 0 {
		t.Error("no window size recorded")
	}
	if _, err := FromRecorder("nil", nil); err == nil {
		t.Error("accepted nil recorder")
	}
	empty := trace.NewRecorder(0, 10)
	if _, err := FromRecorder("e", empty); err == nil {
		t.Error("accepted branchless window")
	}
}

func TestTableRendering(t *testing.T) {
	tr := synthTrace("clipA", 5000)
	scores, err := Championship([]string{"gshare-2KB", "tage-8KB"}, []Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	txt, err := Table(scores, "mpki")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "clipA") || !strings.Contains(txt, "tage-8KB") {
		t.Errorf("table missing headers:\n%s", txt)
	}
	if _, err := Table(scores, "nonsense"); err == nil {
		t.Error("accepted unknown metric")
	}
	if _, err := Table(nil, "mpki"); err == nil {
		t.Error("accepted empty scores")
	}
	txt, err = Table(scores, "missrate")
	if err != nil || !strings.Contains(txt, "clipA") {
		t.Errorf("missrate table failed: %v", err)
	}
}
