// Package cbp reimplements the Championship Branch Prediction (CBP-2016)
// evaluation flow the paper uses in §4.4: branch traces recorded from
// encoder runs are replayed through candidate predictors, and each
// predictor is scored by miss rate and by MPKI relative to the full
// instruction window the trace was cut from.
package cbp

import (
	"fmt"
	"sort"
	"strings"

	"vcprof/internal/trace"
	"vcprof/internal/uarch/bpred"
)

// Trace is one branch trace plus the size of the instruction window it
// was recorded from (needed for MPKI).
type Trace struct {
	Name         string
	Branches     []trace.MicroOp
	Instructions uint64
}

// FromRecorder extracts a CBP trace from a recorded micro-op window.
func FromRecorder(name string, rec *trace.Recorder) (Trace, error) {
	if rec == nil {
		return Trace{}, fmt.Errorf("cbp: nil recorder")
	}
	br := rec.Branches()
	if len(br) == 0 {
		return Trace{}, fmt.Errorf("cbp: window %q contains no branches", name)
	}
	n := uint64(len(rec.Ops))
	if rec.Limit < n {
		n = rec.Limit
	}
	return Trace{Name: name, Branches: br, Instructions: n}, nil
}

// Score is one predictor's result on one trace.
type Score struct {
	Predictor   string
	Trace       string
	Branches    uint64
	Mispredicts uint64
	MissRate    float64 // mispredicts per branch
	MPKI        float64 // mispredicts per kilo-instruction
}

// Run replays one trace through one predictor (which is Reset first).
func Run(p bpred.Predictor, tr Trace) (Score, error) {
	if len(tr.Branches) == 0 {
		return Score{}, fmt.Errorf("cbp: trace %q is empty", tr.Name)
	}
	if tr.Instructions == 0 {
		return Score{}, fmt.Errorf("cbp: trace %q has no instruction window size", tr.Name)
	}
	p.Reset()
	var miss uint64
	for _, b := range tr.Branches {
		if !b.IsBranch() {
			return Score{}, fmt.Errorf("cbp: trace %q contains non-branch op class %v", tr.Name, b.Class)
		}
		if p.Predict(uint64(b.PC)) != b.Taken {
			miss++
		}
		p.Update(uint64(b.PC), b.Taken)
	}
	n := uint64(len(tr.Branches))
	return Score{
		Predictor:   p.Name(),
		Trace:       tr.Name,
		Branches:    n,
		Mispredicts: miss,
		MissRate:    float64(miss) / float64(n),
		MPKI:        float64(miss) / (float64(tr.Instructions) / 1000),
	}, nil
}

// Championship evaluates every named predictor on every trace.
func Championship(predictorNames []string, traces []Trace) ([]Score, error) {
	var out []Score
	for _, name := range predictorNames {
		p, err := bpred.NewByName(name)
		if err != nil {
			return nil, err
		}
		for _, tr := range traces {
			s, err := Run(p, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Table renders championship scores as an aligned text table grouped by
// trace, the way Figs. 8–10 group bars per video.
func Table(scores []Score, metric string) (string, error) {
	if len(scores) == 0 {
		return "", fmt.Errorf("cbp: no scores")
	}
	var traces, preds []string
	seenT := map[string]bool{}
	seenP := map[string]bool{}
	val := map[[2]string]float64{}
	for _, s := range scores {
		if !seenT[s.Trace] {
			seenT[s.Trace] = true
			traces = append(traces, s.Trace)
		}
		if !seenP[s.Predictor] {
			seenP[s.Predictor] = true
			preds = append(preds, s.Predictor)
		}
		switch metric {
		case "mpki":
			val[[2]string{s.Trace, s.Predictor}] = s.MPKI
		case "missrate":
			val[[2]string{s.Trace, s.Predictor}] = s.MissRate * 100
		default:
			return "", fmt.Errorf("cbp: unknown metric %q", metric)
		}
	}
	sort.Strings(traces)
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "trace")
	for _, p := range preds {
		fmt.Fprintf(&b, " %14s", p)
	}
	b.WriteString("\n")
	for _, tr := range traces {
		fmt.Fprintf(&b, "%-14s", tr)
		for _, p := range preds {
			fmt.Fprintf(&b, " %14.3f", val[[2]string{tr, p}])
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
