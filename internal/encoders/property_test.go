package encoders

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
)

// randomDAG builds a random schedule whose edges always point backward,
// so it is acyclic by construction.
func randomDAG(r *rand.Rand, n int) *Schedule {
	s := &Schedule{}
	for i := 0; i < n; i++ {
		s.Costs = append(s.Costs, uint64(r.Intn(50)+1))
		var deps []int
		for d := 0; d < i; d++ {
			if r.Intn(4) == 0 {
				deps = append(deps, d)
			}
		}
		s.Deps = append(s.Deps, deps)
	}
	return s
}

// criticalPath returns the longest dependency chain cost.
func criticalPath(s *Schedule) uint64 {
	finish := make([]uint64, len(s.Costs))
	var max uint64
	for i := range s.Costs {
		var ready uint64
		for _, d := range s.Deps[i] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		finish[i] = ready + s.Costs[i]
		if finish[i] > max {
			max = finish[i]
		}
	}
	return max
}

// TestScheduleMakespanProperties checks list-scheduling invariants on
// random DAGs: the makespan is bounded below by both the critical path
// and work/cores, bounded above by total work, and never increases when
// cores are added.
func TestScheduleMakespanProperties(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%40) + 1
		s := randomDAG(r, n)
		total := s.TotalWork()
		cp := criticalPath(s)
		prev := uint64(0)
		for cores := 1; cores <= 9; cores++ {
			span, busy, err := s.Makespan(cores)
			if err != nil {
				return false
			}
			if span > total || span < cp {
				return false // outside [criticalPath, totalWork]
			}
			if span < (total+uint64(cores)-1)/uint64(cores) {
				return false // beats the work bound
			}
			var busySum uint64
			for _, b := range busy {
				busySum += b
			}
			if busySum != total {
				return false // work conservation
			}
			if cores > 1 && span > prev {
				return false // more cores never slower under this list scheduler
			}
			prev = span
		}
		one, _, _ := s.Makespan(1)
		return one == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCoefBlockRoundTripQuick fuzzes the coefficient syntax with random
// sparse levels across all transform sizes.
func TestCoefBlockRoundTripQuick(t *testing.T) {
	f := func(seed int64, sizeSel uint8, density uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := []int{4, 8, 16, 32}[sizeSel%4]
		levels := make([]int32, n*n)
		fill := int(density%100) + 1
		for i := range levels {
			if r.Intn(100) < fill {
				levels[i] = int32(r.Intn(4001) - 2000)
			}
		}
		enc := entropy.NewEncoder(nil, 0)
		if err := writeCoefBlock(enc, newProbModel(), levels, n); err != nil {
			return false
		}
		dec := entropy.NewDecoder(enc.Finish())
		got, err := readCoefBlock(dec, newProbModel(), n)
		if err != nil {
			return false
		}
		for i := range levels {
			if got[i] != levels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMVRoundTripQuick fuzzes motion-vector coding.
func TestMVRoundTripQuick(t *testing.T) {
	f := func(mx, my, px, py int16) bool {
		mv := codec.MV{X: mx % 512, Y: my % 512}
		pred := codec.MV{X: px % 512, Y: py % 512}
		enc := entropy.NewEncoder(nil, 0)
		pmE := newProbModel()
		writeMV(enc, pmE, mv, pred)
		dec := entropy.NewDecoder(enc.Finish())
		return readMV(dec, newProbModel(), pred) == mv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// --- cross-encoder property suite -----------------------------------
//
// The three properties below hold for every encoder family at every
// operating point, so they are checked on randomized (but seeded, hence
// reproducible) parameter grids rather than hand-picked cases. A
// failure message always carries the full operating point; re-running
// the named subtest replays it exactly.

// propPoint is one randomized operating point.
type propPoint struct {
	clip    string
	frames  int
	crf     int // AV1 scale 0–63; mapped into the family's range
	preset  int
	threads int
}

func (p propPoint) String() string {
	return fmt.Sprintf("%s f%d crf%d p%d t%d", p.clip, p.frames, p.crf, p.preset, p.threads)
}

// propClips spans the content classes (screen content, game, camera).
var propClips = []string{"desktop", "game1", "game2", "hall"}

// randomPoints draws seeded operating points for a family. CRF is kept
// off the extreme endpoints, where some families clamp to the same
// quantizer and points would alias.
func randomPoints(r *rand.Rand, enc Encoder, n int) []propPoint {
	pLo, pHi, _ := enc.PresetRange()
	pts := make([]propPoint, n)
	for i := range pts {
		pts[i] = propPoint{
			clip:    propClips[r.Intn(len(propClips))],
			frames:  2 + r.Intn(2),
			crf:     5 + r.Intn(54),
			preset:  pLo + r.Intn(pHi-pLo+1),
			threads: 1 + r.Intn(4),
		}
	}
	return pts
}

// famCRF maps an AV1-scale CRF into the family's own range, the same
// proportional mapping the harness grids use.
func famCRF(enc Encoder, crf int) int {
	_, hi := enc.CRFRange()
	return crf * hi / 63
}

// propSeed derives a stable per-family seed so each family replays its
// own grid independently of the others.
func propSeed(fam Family) int64 {
	var s int64 = 0x9E3779B9
	for _, c := range []byte(fam) {
		s = s*131 + int64(c)
	}
	return s
}

// TestCrossEncoderRoundTripAndDeterminism encodes randomized operating
// points for all five families and asserts, per point: the container
// decodes back bit-identically to the encoder's own reconstruction,
// and an immediately repeated encode reproduces the identical
// bitstream and instruction count (including at thread counts > 1 —
// worker scheduling must not leak into output).
func TestCrossEncoderRoundTripAndDeterminism(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			enc := MustNew(fam)
			r := rand.New(rand.NewSource(propSeed(fam)))
			for _, pt := range randomPoints(r, enc, 3) {
				clip := testClip(t, pt.clip, pt.frames, 16)
				opts := Options{CRF: famCRF(enc, pt.crf), Preset: pt.preset,
					Threads: pt.threads, KeepBitstream: true}
				res, err := enc.Encode(context.Background(), clip, opts)
				if err != nil {
					t.Fatalf("%v: encode: %v", pt, err)
				}
				dec, err := DecodeBitstream(res.Bitstream)
				if err != nil {
					t.Fatalf("%v: decode: %v", pt, err)
				}
				assertFramesEqual(t, pt.String(), res.Recon, dec)
				res2, err := enc.Encode(context.Background(), clip, opts)
				if err != nil {
					t.Fatalf("%v: re-encode: %v", pt, err)
				}
				if !bytes.Equal(res.Bitstream, res2.Bitstream) {
					t.Errorf("%v: bitstream differs between identical runs (%d vs %d bytes)",
						pt, len(res.Bitstream), len(res2.Bitstream))
				}
				if res.Insts != res2.Insts {
					t.Errorf("%v: instruction count differs between identical runs (%d vs %d)",
						pt, res.Insts, res2.Insts)
				}
			}
		})
	}
}

// TestCrossEncoderSizeMonotoneInCRF asserts the rate-control direction
// for every family: at well-separated CRF points (the quantizer maps
// are step functions, so adjacent points may tie) the lower CRF must
// produce the strictly larger bitstream.
func TestCrossEncoderSizeMonotoneInCRF(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			enc := MustNew(fam)
			r := rand.New(rand.NewSource(propSeed(fam) ^ 0x5bd1e995))
			for i := 0; i < 2; i++ {
				clipName := propClips[r.Intn(len(propClips))]
				clip := testClip(t, clipName, 2, 16)
				pLo, pHi, _ := enc.PresetRange()
				preset := pLo + r.Intn(pHi-pLo+1)
				crfLo := 5 + r.Intn(12)  // 5..16
				crfHi := 45 + r.Intn(12) // 45..56
				sizeAt := func(crf int) int {
					res, err := enc.Encode(context.Background(), clip, Options{CRF: famCRF(enc, crf), Preset: preset,
						Threads: 1, KeepBitstream: true})
					if err != nil {
						t.Fatalf("%s crf%d p%d: %v", clipName, crf, preset, err)
					}
					return len(res.Bitstream)
				}
				lo, hi := sizeAt(crfLo), sizeAt(crfHi)
				if lo <= hi {
					t.Errorf("%s p%d: size(crf%d)=%d not greater than size(crf%d)=%d",
						clipName, preset, crfLo, lo, crfHi, hi)
				}
			}
		})
	}
}

// TestDecodeBitstreamNeverPanics mutates valid bitstreams at random and
// requires the decoder to fail cleanly (error, not panic) or succeed.
func TestDecodeBitstreamNeverPanics(t *testing.T) {
	clip := testClip(t, "game2", 3, 16)
	res, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{CRF: 45, Preset: 6, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Bitstream
	f := func(seed int64, nmut uint8) bool {
		r := rand.New(rand.NewSource(seed))
		data := append([]byte{}, base...)
		for m := 0; m < int(nmut%8)+1; m++ {
			data[r.Intn(len(data))] ^= byte(1 << uint(r.Intn(8)))
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("decoder panicked on mutated stream (seed %d): %v", seed, rec)
			}
		}()
		_, _ = DecodeBitstream(data) // error or success are both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
