package encoders

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
)

// randomDAG builds a random schedule whose edges always point backward,
// so it is acyclic by construction.
func randomDAG(r *rand.Rand, n int) *Schedule {
	s := &Schedule{}
	for i := 0; i < n; i++ {
		s.Costs = append(s.Costs, uint64(r.Intn(50)+1))
		var deps []int
		for d := 0; d < i; d++ {
			if r.Intn(4) == 0 {
				deps = append(deps, d)
			}
		}
		s.Deps = append(s.Deps, deps)
	}
	return s
}

// criticalPath returns the longest dependency chain cost.
func criticalPath(s *Schedule) uint64 {
	finish := make([]uint64, len(s.Costs))
	var max uint64
	for i := range s.Costs {
		var ready uint64
		for _, d := range s.Deps[i] {
			if finish[d] > ready {
				ready = finish[d]
			}
		}
		finish[i] = ready + s.Costs[i]
		if finish[i] > max {
			max = finish[i]
		}
	}
	return max
}

// TestScheduleMakespanProperties checks list-scheduling invariants on
// random DAGs: the makespan is bounded below by both the critical path
// and work/cores, bounded above by total work, and never increases when
// cores are added.
func TestScheduleMakespanProperties(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%40) + 1
		s := randomDAG(r, n)
		total := s.TotalWork()
		cp := criticalPath(s)
		prev := uint64(0)
		for cores := 1; cores <= 9; cores++ {
			span, busy, err := s.Makespan(cores)
			if err != nil {
				return false
			}
			if span > total || span < cp {
				return false // outside [criticalPath, totalWork]
			}
			if span < (total+uint64(cores)-1)/uint64(cores) {
				return false // beats the work bound
			}
			var busySum uint64
			for _, b := range busy {
				busySum += b
			}
			if busySum != total {
				return false // work conservation
			}
			if cores > 1 && span > prev {
				return false // more cores never slower under this list scheduler
			}
			prev = span
		}
		one, _, _ := s.Makespan(1)
		return one == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCoefBlockRoundTripQuick fuzzes the coefficient syntax with random
// sparse levels across all transform sizes.
func TestCoefBlockRoundTripQuick(t *testing.T) {
	f := func(seed int64, sizeSel uint8, density uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := []int{4, 8, 16, 32}[sizeSel%4]
		levels := make([]int32, n*n)
		fill := int(density%100) + 1
		for i := range levels {
			if r.Intn(100) < fill {
				levels[i] = int32(r.Intn(4001) - 2000)
			}
		}
		enc := entropy.NewEncoder(nil, 0)
		if err := writeCoefBlock(enc, newProbModel(), levels, n); err != nil {
			return false
		}
		dec := entropy.NewDecoder(enc.Finish())
		got, err := readCoefBlock(dec, newProbModel(), n)
		if err != nil {
			return false
		}
		for i := range levels {
			if got[i] != levels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMVRoundTripQuick fuzzes motion-vector coding.
func TestMVRoundTripQuick(t *testing.T) {
	f := func(mx, my, px, py int16) bool {
		mv := codec.MV{X: mx % 512, Y: my % 512}
		pred := codec.MV{X: px % 512, Y: py % 512}
		enc := entropy.NewEncoder(nil, 0)
		pmE := newProbModel()
		writeMV(enc, pmE, mv, pred)
		dec := entropy.NewDecoder(enc.Finish())
		return readMV(dec, newProbModel(), pred) == mv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodeBitstreamNeverPanics mutates valid bitstreams at random and
// requires the decoder to fail cleanly (error, not panic) or succeed.
func TestDecodeBitstreamNeverPanics(t *testing.T) {
	clip := testClip(t, "game2", 3, 16)
	res, err := MustNew(SVTAV1).Encode(clip, Options{CRF: 45, Preset: 6, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Bitstream
	f := func(seed int64, nmut uint8) bool {
		r := rand.New(rand.NewSource(seed))
		data := append([]byte{}, base...)
		for m := 0; m < int(nmut%8)+1; m++ {
			data[r.Intn(len(data))] ^= byte(1 << uint(r.Intn(8)))
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("decoder panicked on mutated stream (seed %d): %v", seed, rec)
			}
		}()
		_, _ = DecodeBitstream(data) // error or success are both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
