package encoders

import (
	"fmt"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
	"vcprof/internal/codec/intra"
	"vcprof/internal/codec/motion"
	"vcprof/internal/codec/quant"
	"vcprof/internal/codec/transform"
	"vcprof/internal/video"
)

// DecodeBitstream decodes a container produced by an encode with
// Options.KeepBitstream and returns the reconstructed frames. The
// decoder mirrors the encoder's commit path exactly, so its output is
// bit-identical to Result.Recon — the property the round-trip tests
// assert for every family.
func DecodeBitstream(data []byte) ([]*video.Frame, error) {
	r := &bsReader{data: data}
	hdr, err := parseHeader(r)
	if err != nil {
		return nil, err
	}
	d, err := newDecoder(hdr)
	if err != nil {
		return nil, err
	}
	for i := 0; i < hdr.frames; i++ {
		if err := d.decodeFrame(r, i); err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
	}
	if r.remain() != 0 {
		return nil, fmt.Errorf("encoders: %d trailing bytes after last frame", r.remain())
	}
	return d.output, nil
}

// decPicture is a decoded reference picture (aligned planes).
type decPicture struct {
	isKey bool
	y     *video.Plane
	u     *video.Plane
	v     *video.Plane
}

type decoder struct {
	hdr    *bitstreamHeader
	aw, ah int
	// Per-frame quantizer state, refreshed from each frame header.
	qindex int
	step   float64
	pics   []*decPicture
	output []*video.Frame
	// scratch
	pred []byte
	res  []int32
	res2 []int32
	rec  []byte
}

func newDecoder(hdr *bitstreamHeader) (*decoder, error) {
	if _, err := quant.StepSize(hdr.qindex); err != nil {
		return nil, err
	}
	step, _ := quant.StepSize(hdr.qindex)
	const n = sbSize * sbSize
	return &decoder{
		hdr:    hdr,
		aw:     align(hdr.w, sbSize),
		ah:     align(hdr.h, sbSize),
		qindex: hdr.qindex,
		step:   step,
		pred:   make([]byte, n),
		res:    make([]int32, n),
		res2:   make([]int32, n),
		rec:    make([]byte, n),
	}, nil
}

// decSeg is the per-partition parse state, the decoder's mirror of
// segCtx.
type decSeg struct {
	d          *decoder
	pic        *decPicture
	prev       *decPicture
	prev2      *decPicture
	dec        *entropy.Decoder
	pm         *probModel
	prevMV     codec.MV
	segTopPx   int
	segEndPx   int
	segLeftPx  int
	segRightPx int
	isKey      bool
}

// decLeaf mirrors leafPlan for the chroma-inheritance walk.
type decLeaf struct {
	inter bool
	ref2  bool
	mv    codec.MV
}

func (d *decoder) decodeFrame(r *bsReader, idx int) error {
	flags, err := r.u8()
	if err != nil {
		return err
	}
	isKey := flags&1 != 0
	qindex, err := r.u8()
	if err != nil {
		return err
	}
	step, err := quant.StepSize(qindex)
	if err != nil {
		return err
	}
	d.qindex = qindex
	d.step = step
	segCount, err := r.u16()
	if err != nil {
		return err
	}
	if segCount == 0 || segCount > 4096 {
		return fmt.Errorf("encoders: implausible segment count %d", segCount)
	}
	type seg struct {
		rect segRect
		n    int
	}
	segs := make([]seg, segCount)
	rows, cols := d.ah/sbSize, d.aw/sbSize
	for i := range segs {
		var v [4]int
		for j := range v {
			if v[j], err = r.u8(); err != nil {
				return err
			}
		}
		rect := segRect{row0: v[0], row1: v[1], col0: v[2], col1: v[3]}
		if rect.row0 < 0 || rect.row1 > rows || rect.row0 >= rect.row1 ||
			rect.col0 < 0 || rect.col1 > cols || rect.col0 >= rect.col1 {
			return fmt.Errorf("encoders: invalid segment rect %+v for %dx%d SBs", rect, cols, rows)
		}
		if segs[i].n, err = r.u32(); err != nil {
			return err
		}
		segs[i].rect = rect
	}

	pic := &decPicture{
		isKey: isKey,
		y:     video.NewPlane(d.aw, d.ah),
		u:     video.NewPlane(d.aw/2, d.ah/2),
		v:     video.NewPlane(d.aw/2, d.ah/2),
	}
	var prev, prev2 *decPicture
	if !isKey && idx > 0 {
		prev = d.pics[idx-1]
		if idx >= 2 && d.hdr.refs >= 2 {
			prev2 = d.pics[idx-2]
		}
	}
	if !isKey && prev == nil {
		return fmt.Errorf("encoders: inter frame %d without a reference", idx)
	}

	for _, sg := range segs {
		payload, err := r.bytes(sg.n)
		if err != nil {
			return err
		}
		sc := &decSeg{
			d: d, pic: pic, prev: prev, prev2: prev2,
			dec:        entropy.NewDecoder(payload),
			pm:         newProbModel(),
			segTopPx:   sg.rect.row0 * sbSize,
			segEndPx:   sg.rect.row1 * sbSize,
			segLeftPx:  sg.rect.col0 * sbSize,
			segRightPx: sg.rect.col1 * sbSize,
			isKey:      isKey,
		}
		for row := sg.rect.row0; row < sg.rect.row1; row++ {
			for c := sg.rect.col0; c < sg.rect.col1; c++ {
				leaves, err := sc.parseNode(c*sbSize, row*sbSize, sbSize, 0)
				if err != nil {
					return err
				}
				if err := sc.decodeChromaSB(c, row, leaves); err != nil {
					return err
				}
				cdefApply(pic.y, c*sbSize, row*sbSize, d.step)
			}
		}
		if err := sc.dec.Err(); err != nil {
			return err
		}
	}

	deblockRows(nil, codec.Surface{Plane: pic.y}, 0, d.ah, d.step)
	d.pics = append(d.pics, pic)
	d.output = append(d.output, &video.Frame{
		Y:     cropPlane(pic.y, d.hdr.w, d.hdr.h),
		U:     cropPlane(pic.u, d.hdr.w/2, d.hdr.h/2),
		V:     cropPlane(pic.v, d.hdr.w/2, d.hdr.h/2),
		Index: idx,
	})
	return nil
}

// parseNode mirrors commitNode: partition flag + shape index, then the
// leaves (or recursion for SPLIT). It returns the decoded leaves so the
// chroma pass can inherit the superblock's first inter decision.
func (sc *decSeg) parseNode(x, y, n, depth int) ([]decLeaf, error) {
	notNone := sc.dec.BitAdaptive(&sc.pm.partNone[minInt(depth, 3)]) == 1
	shape := ShapeNone
	if notNone {
		idx := int(sc.dec.Literal(sc.d.hdr.shapeBits()))
		if idx >= len(sc.d.hdr.shapes) {
			return nil, fmt.Errorf("encoders: shape index %d out of range", idx)
		}
		shape = sc.d.hdr.shapes[idx]
	}
	if shape == ShapeSplit {
		if n/2 < 4 {
			return nil, fmt.Errorf("encoders: split below minimum block size at (%d,%d)", x, y)
		}
		var all []decLeaf
		half := n / 2
		for _, off := range [4][2]int{{0, 0}, {half, 0}, {0, half}, {half, half}} {
			leaves, err := sc.parseNode(x+off[0], y+off[1], half, depth+1)
			if err != nil {
				return nil, err
			}
			all = append(all, leaves...)
		}
		return all, nil
	}
	rects := shape.subBlocks(x, y, n)
	if rects == nil {
		return nil, fmt.Errorf("encoders: shape %v not applicable at size %d", shape, n)
	}
	var all []decLeaf
	for _, rc := range rects {
		lf, err := sc.parseLeaf(rc.x, rc.y, rc.w, rc.h)
		if err != nil {
			return nil, err
		}
		all = append(all, lf)
	}
	return all, nil
}

// parseLeaf mirrors commitLeaf: syntax, prediction, residual decode and
// reconstruction for one coding block.
func (sc *decSeg) parseLeaf(x, y, w, h int) (decLeaf, error) {
	d := sc.d
	if !sc.isKey {
		if sc.dec.BitAdaptive(&sc.pm.skip) == 1 {
			mv := clampMVTo(sc.prevMV, x, y, w, h, d.aw, d.ah)
			copyBlockPlane(sc.prev.y, x+int(mv.X), y+int(mv.Y), w, h, d.pred)
			writeBlockPlane(sc.pic.y, x, y, w, h, d.pred)
			sc.prevMV = mv
			return decLeaf{inter: true, mv: mv}, nil
		}
	}
	interBlk := sc.isKey == false && sc.dec.BitAdaptive(&sc.pm.interFlg) == 1
	lf := decLeaf{inter: interBlk}
	if interBlk {
		lf.mv = readMV(sc.dec, sc.pm, sc.prevMV)
		ref := sc.prev
		if d.hdr.refs >= 2 && sc.prev2 != nil {
			if sc.dec.Bit(entropy.DefaultProb) == 1 {
				lf.ref2 = true
				ref = sc.prev2
			}
		}
		var sub motion.SubPel
		if d.hdr.halfPel {
			sub.X = uint8(sc.dec.Literal(1))
			sub.Y = uint8(sc.dec.Literal(1))
		}
		if err := checkBlock(x+int(lf.mv.X), y+int(lf.mv.Y), w+int(sub.X), h+int(sub.Y), d.aw, d.ah); err != nil {
			return lf, err
		}
		if sub.X == 0 && sub.Y == 0 {
			copyBlockPlane(ref.y, x+int(lf.mv.X), y+int(lf.mv.Y), w, h, d.pred)
		} else if err := motion.InterpHalfPel(nil, codec.Surface{Plane: ref.y}, x+int(lf.mv.X), y+int(lf.mv.Y), sub, w, h, d.pred); err != nil {
			return lf, err
		}
		sc.prevMV = lf.mv
	} else {
		mode := intra.Mode(sc.dec.Literal(4))
		if w != h {
			return lf, fmt.Errorf("encoders: rectangular intra leaf %dx%d in bitstream", w, h)
		}
		nb := gatherBordersPlane(sc.pic.y, x, y, w, sc.segTopPx, sc.segLeftPx)
		if err := intra.Predict(nil, mode, nb, w, d.pred); err != nil {
			return lf, err
		}
	}

	// Residual: per square tile, mirror of commitLeaf.
	side := minInt(minInt(w, h), sbSize)
	for ty := 0; ty < h; ty += side {
		for tx := 0; tx < w; tx += side {
			levels, err := readCoefBlock(sc.dec, sc.pm, side)
			if err != nil {
				return lf, err
			}
			if err := quant.Dequantize(nil, levels, d.qindex, levels); err != nil {
				return lf, err
			}
			if err := transform.Inverse(nil, levels, side, d.res2[:side*side]); err != nil {
				return lf, err
			}
			for j := 0; j < side; j++ {
				copy(d.res[(ty+j)*w+tx:(ty+j)*w+tx+side], d.res2[j*side:(j+1)*side])
			}
		}
	}
	codec.Reconstruct(nil, d.pred, d.res[:w*h], w, h, d.rec)
	writeBlockPlane(sc.pic.y, x, y, w, h, d.rec)
	return lf, nil
}

// decodeChromaSB mirrors encodeChromaSB: one 16×16 chroma block pair per
// superblock, inheriting the first inter leaf's motion.
func (sc *decSeg) decodeChromaSB(sbx, sby int, leaves []decLeaf) error {
	d := sc.d
	var mv codec.MV
	interSB := false
	var refPic *decPicture
	for _, lf := range leaves {
		if lf.inter {
			interSB = true
			mv = lf.mv
			if lf.ref2 {
				refPic = sc.prev2
			} else {
				refPic = sc.prev
			}
			break
		}
	}
	const cb = sbSize / 2
	cx, cy := sbx*cb, sby*cb
	for pi, rec := range [2]*video.Plane{sc.pic.u, sc.pic.v} {
		if interSB && refPic != nil {
			cmv := clampMVTo(codec.MV{X: mv.X / 2, Y: mv.Y / 2}, cx, cy, cb, cb, d.aw/2, d.ah/2)
			var refPlane *video.Plane
			if pi == 0 {
				refPlane = refPic.u
			} else {
				refPlane = refPic.v
			}
			copyBlockPlane(refPlane, cx+int(cmv.X), cy+int(cmv.Y), cb, cb, d.pred)
		} else {
			nb := gatherBordersPlane(rec, cx, cy, cb, sc.segTopPx/2, sc.segLeftPx/2)
			if err := intra.Predict(nil, intra.DC, nb, cb, d.pred); err != nil {
				return err
			}
		}
		levels, err := readCoefBlock(sc.dec, sc.pm, cb)
		if err != nil {
			return err
		}
		if err := quant.Dequantize(nil, levels, d.qindex, levels); err != nil {
			return err
		}
		if err := transform.Inverse(nil, levels, cb, d.res[:cb*cb]); err != nil {
			return err
		}
		codec.Reconstruct(nil, d.pred, d.res[:cb*cb], cb, cb, d.rec)
		writeBlockPlane(rec, cx, cy, cb, cb, d.rec)
	}
	return nil
}

// --- plane helpers mirroring the encoder's surface operations --------

func checkBlock(x, y, w, h, aw, ah int) error {
	if x < 0 || y < 0 || x+w > aw || y+h > ah {
		return fmt.Errorf("encoders: motion block %d,%d %dx%d outside %dx%d", x, y, w, h, aw, ah)
	}
	return nil
}

func copyBlockPlane(p *video.Plane, x, y, w, h int, dst []byte) {
	for j := 0; j < h; j++ {
		copy(dst[j*w:(j+1)*w], p.Pix[(y+j)*p.Stride+x:(y+j)*p.Stride+x+w])
	}
}

func writeBlockPlane(p *video.Plane, x, y, w, h int, src []byte) {
	for j := 0; j < h; j++ {
		copy(p.Pix[(y+j)*p.Stride+x:(y+j)*p.Stride+x+w], src[j*w:(j+1)*w])
	}
}

func gatherBordersPlane(p *video.Plane, x, y, n, topPx, leftPx int) intra.Neighbors {
	nb := intra.Neighbors{}
	if y > topPx {
		nb.HasTop = true
		nb.Top = make([]byte, n)
		copy(nb.Top, p.Pix[(y-1)*p.Stride+x:(y-1)*p.Stride+x+n])
	}
	if x > leftPx {
		nb.HasLeft = true
		nb.Left = make([]byte, n)
		for j := 0; j < n; j++ {
			nb.Left[j] = p.Pix[(y+j)*p.Stride+x-1]
		}
	}
	return nb
}

// clampMVTo mirrors segCtx.clampMV for arbitrary plane bounds.
func clampMVTo(mv codec.MV, x, y, w, h, aw, ah int) codec.MV {
	mx, my := int(mv.X), int(mv.Y)
	if x+mx < 0 {
		mx = -x
	}
	if y+my < 0 {
		my = -y
	}
	if x+mx+w > aw {
		mx = aw - w - x
	}
	if y+my+h > ah {
		my = ah - h - y
	}
	return codec.MV{X: int16(mx), Y: int16(my)}
}
