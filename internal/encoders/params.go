package encoders

import (
	"vcprof/internal/codec/intra"
	"vcprof/internal/codec/motion"
)

// Shape is a block partition shape. ShapeNone codes the block whole;
// ShapeSplit recurses into four quadrants; the others split the block
// into rectangles without recursion. AV1 evaluates all ten shapes, VP9
// and the H.26x models only the first four — the search-space gap the
// paper identifies as the root of AV1's instruction count (§2.2: "AV1
// allows 10 different ways to partition each block … VP9 only allows 4").
type Shape uint8

// Partition shapes.
const (
	ShapeNone Shape = iota
	ShapeSplit
	ShapeHorz
	ShapeVert
	ShapeHorzA
	ShapeHorzB
	ShapeVertA
	ShapeVertB
	ShapeHorz4
	ShapeVert4
	numShapes
)

var shapeNames = [numShapes]string{
	"NONE", "SPLIT", "HORZ", "VERT", "HORZ_A", "HORZ_B", "VERT_A", "VERT_B", "HORZ_4", "VERT_4",
}

// String names the shape.
func (s Shape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return "?"
}

// rect is a sub-block of a partition.
type rect struct{ x, y, w, h int }

// subBlocks returns the sub-rectangles of shape s applied to an n×n
// block at (x, y). ShapeSplit returns the four quadrants (the caller
// recurses into them); nil means the shape is not applicable at size n.
func (s Shape) subBlocks(x, y, n int) []rect {
	h := n / 2
	q := n / 4
	switch s {
	case ShapeNone:
		return []rect{{x, y, n, n}}
	case ShapeSplit:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, h, h}, {x + h, y, h, h}, {x, y + h, h, h}, {x + h, y + h, h, h}}
	case ShapeHorz:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, n, h}, {x, y + h, n, h}}
	case ShapeVert:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, h, n}, {x + h, y, h, n}}
	case ShapeHorzA: // two quarters on top, full-width half below
		if h < 4 {
			return nil
		}
		return []rect{{x, y, h, h}, {x + h, y, h, h}, {x, y + h, n, h}}
	case ShapeHorzB:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, n, h}, {x, y + h, h, h}, {x + h, y + h, h, h}}
	case ShapeVertA:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, h, h}, {x, y + h, h, h}, {x + h, y, h, n}}
	case ShapeVertB:
		if h < 4 {
			return nil
		}
		return []rect{{x, y, h, n}, {x + h, y, h, h}, {x + h, y + h, h, h}}
	case ShapeHorz4:
		if q < 4 {
			return nil
		}
		return []rect{{x, y, n, q}, {x, y + q, n, q}, {x, y + 2*q, n, q}, {x, y + 3*q, n, q}}
	case ShapeVert4:
		if q < 4 {
			return nil
		}
		return []rect{{x, y, q, n}, {x + q, y, q, n}, {x + 2*q, y, q, n}, {x + 3*q, y, q, n}}
	}
	return nil
}

// toolset is the concrete search configuration a (family, preset) pair
// resolves to.
type toolset struct {
	shapes        []Shape // shapes beyond NONE/SPLIT to evaluate
	trySplit      bool
	minBlock      int // recursion floor (luma samples)
	intraModes    []intra.Mode
	motionAlg     motion.Algorithm
	motionRange   int
	refineRange   int  // refinement range around the analysis MV
	fullRD        bool // transform-domain RD in mode decision
	txSplitSearch bool // additionally evaluate split transforms
	halfPel       bool // half-sample motion compensation + search
	refs          int  // reference frames searched (1 or 2)
	skipBias      float64
	earlyExitBias float64
}

type schedKind uint8

// Threading architectures (§4.6).
const (
	schedSegments  schedKind = iota // SVT-AV1: segment + frame pipeline
	schedWavefront                  // x264: row wavefront
	schedMaster                     // x265: master thread + filter helpers
	schedTiles                      // libaom / vp9: tile parallelism
)

type familySpec struct {
	family         Family
	crfMax         int
	presetMax      int
	presetReversed bool
	// qindexForCRF maps the family CRF scale to the shared 0..255
	// quantizer-index scale.
	qindexForCRF func(crf int) int
	// tools resolves effort (0 fastest .. 1 slowest) to a toolset.
	tools func(effort float64) toolset
	sched schedKind
	// rdBonus scales the rate estimate used in RD decisions, modeling
	// entropy-coding efficiency differences between generations (newer
	// codecs pack the same syntax into fewer bits).
	rdBonus float64
}

var (
	intraModesBasic = []intra.Mode{intra.DC, intra.Vertical, intra.Horizontal}
	intraModesStd   = []intra.Mode{intra.DC, intra.Vertical, intra.Horizontal, intra.Planar}
)

// angularModes returns n synthetic angular refinements (see package
// intra); generations with richer intra toolkits evaluate more of them.
func intraModesWithAngles(n int) []intra.Mode {
	out := append([]intra.Mode{}, intraModesStd...)
	for i := 0; i < n && i < int(intra.NumAngles); i++ {
		out = append(out, intra.Angular(i))
	}
	return out
}

func lerpInt(lo, hi int, t float64) int {
	return lo + int(t*float64(hi-lo)+0.5)
}

// av1Tools is shared by the SVT-AV1 and libaom models: the full
// ten-shape partition search and the widest intra set. exhaustive
// selects libaom's slower decision style (less aggressive early exits).
func av1Tools(effort float64, exhaustive bool) toolset {
	ts := toolset{
		trySplit:      true,
		minBlock:      8,
		motionAlg:     motion.Diamond,
		motionRange:   lerpInt(6, 16, effort),
		refineRange:   lerpInt(2, 6, effort),
		refs:          1,
		skipBias:      1.4 - effort, // slow presets skip less eagerly
		earlyExitBias: 1.5 - effort,
	}
	switch {
	case effort >= 0.75: // presets 0–2: everything on
		ts.shapes = []Shape{ShapeHorz, ShapeVert, ShapeHorzA, ShapeHorzB, ShapeVertA, ShapeVertB, ShapeHorz4, ShapeVert4}
		ts.intraModes = intraModesWithAngles(8)
		ts.motionAlg = motion.Full
		ts.fullRD = true
		ts.txSplitSearch = true
		ts.halfPel = true
		ts.refs = 2
		ts.minBlock = 4
	case effort >= 0.5: // presets 3–4
		ts.shapes = []Shape{ShapeHorz, ShapeVert, ShapeHorzA, ShapeHorzB, ShapeVertA, ShapeVertB, ShapeHorz4, ShapeVert4}
		ts.intraModes = intraModesWithAngles(4)
		ts.fullRD = true
		ts.halfPel = true
		ts.refs = 2
		ts.minBlock = 8
	case effort >= 0.25: // presets 5–6
		ts.shapes = []Shape{ShapeHorz, ShapeVert, ShapeHorz4, ShapeVert4}
		ts.intraModes = intraModesWithAngles(2)
		ts.minBlock = 8
	default: // presets 7–8
		ts.shapes = []Shape{ShapeHorz, ShapeVert}
		ts.intraModes = intraModesStd
		ts.motionAlg = motion.Hex
		ts.minBlock = 16
	}
	if exhaustive {
		// libaom's decision loops terminate later than SVT's.
		ts.skipBias *= 0.7
		ts.earlyExitBias *= 0.7
		ts.refineRange++
	}
	return ts
}

func vp9Tools(effort float64) toolset {
	ts := toolset{
		trySplit:      true,
		minBlock:      8,
		intraModes:    intraModesStd,
		motionAlg:     motion.Diamond,
		motionRange:   lerpInt(6, 14, effort),
		refineRange:   lerpInt(2, 5, effort),
		refs:          1,
		skipBias:      1.4 - effort,
		earlyExitBias: 1.4 - effort,
	}
	switch {
	case effort >= 0.6:
		ts.shapes = []Shape{ShapeHorz, ShapeVert}
		ts.fullRD = true
		ts.halfPel = true
		ts.minBlock = 4
	case effort >= 0.3:
		ts.shapes = []Shape{ShapeHorz, ShapeVert}
	default:
		ts.shapes = nil
		ts.motionAlg = motion.Hex
		ts.minBlock = 16
	}
	return ts
}

func x264Tools(effort float64) toolset {
	ts := toolset{
		trySplit:      true,
		minBlock:      8,
		intraModes:    intraModesBasic,
		motionAlg:     motion.Hex,
		motionRange:   lerpInt(6, 14, effort),
		refineRange:   lerpInt(1, 4, effort),
		refs:          1,
		skipBias:      1.5 - effort,
		earlyExitBias: 1.5 - effort,
	}
	switch {
	case effort >= 0.6:
		ts.shapes = []Shape{ShapeHorz, ShapeVert}
		ts.intraModes = intraModesStd
		ts.motionAlg = motion.Diamond
		ts.fullRD = true
		ts.halfPel = true
	case effort >= 0.3:
		ts.shapes = []Shape{ShapeHorz, ShapeVert}
	default:
		ts.shapes = nil
		ts.minBlock = 16
	}
	return ts
}

func x265Tools(effort float64) toolset {
	ts := x264Tools(effort)
	// HEVC adds larger blocks, more intra angles and deeper RD.
	ts.intraModes = intraModesWithAngles(lerpInt(0, 4, effort))
	if effort >= 0.6 {
		ts.minBlock = 4
		ts.txSplitSearch = true
	}
	return ts
}

var specs = map[Family]familySpec{
	SVTAV1: {
		family: SVTAV1, crfMax: 63, presetMax: 8,
		qindexForCRF: func(crf int) int { return clampQ(crf * 4) },
		tools:        func(e float64) toolset { return av1Tools(e, false) },
		sched:        schedSegments,
		rdBonus:      0.72,
	},
	Libaom: {
		family: Libaom, crfMax: 63, presetMax: 8,
		qindexForCRF: func(crf int) int { return clampQ(crf * 4) },
		tools:        func(e float64) toolset { return av1Tools(e, true) },
		sched:        schedTiles,
		rdBonus:      0.72,
	},
	VP9: {
		family: VP9, crfMax: 63, presetMax: 8,
		qindexForCRF: func(crf int) int { return clampQ(crf * 4) },
		tools:        vp9Tools,
		sched:        schedTiles,
		rdBonus:      0.80,
	},
	X264: {
		family: X264, crfMax: 51, presetMax: 9, presetReversed: true,
		qindexForCRF: func(crf int) int { return clampQ(crf * 5) },
		tools:        x264Tools,
		sched:        schedWavefront,
		rdBonus:      1.0,
	},
	X265: {
		family: X265, crfMax: 51, presetMax: 9, presetReversed: true,
		qindexForCRF: func(crf int) int { return clampQ(crf * 5) },
		tools:        x265Tools,
		sched:        schedMaster,
		rdBonus:      0.82,
	},
}

func clampQ(q int) int {
	if q < 1 {
		return 1
	}
	if q > 255 {
		return 255
	}
	return q
}
