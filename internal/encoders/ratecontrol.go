package encoders

import (
	"fmt"
	"math"

	"vcprof/internal/codec/motion"
	"vcprof/internal/trace"
)

// rateController implements average-bitrate (ABR) control: the frame
// quantizer adapts after every coded frame so the running byte count
// tracks the target. It is the closed-loop counterpart of the paper's
// constant-quality CRF runs (its "capped CRF" reference [13] combines
// both). Rate decisions depend on completed frames, so ABR serializes
// the frame pipeline — exactly the trade-off two-pass/VBV rate control
// imposes on threaded encoders.
type rateController struct {
	targetBytesPerFrame float64
	spentBytes          float64
	codedFrames         int
	qindex              int
	rdBonus             float64
}

// rcMinQ keeps ABR away from the near-lossless floor where a single
// frame could blow the whole budget.
const rcMinQ = 24

// newRateController sizes the controller for a target bitrate.
func newRateController(targetKbps float64, fps, w, h int, rdBonus float64) (*rateController, error) {
	if targetKbps <= 0 {
		return nil, fmt.Errorf("encoders: invalid target bitrate %v kbps", targetKbps)
	}
	if fps <= 0 {
		fps = 30
	}
	bytesPerFrame := targetKbps * 1000 / 8 / float64(fps)
	// Initial quantizer from bits per pixel: a coarse log model anchored
	// so ~0.05 bpp starts near qindex 170 and ~1 bpp near qindex 90.
	bpp := bytesPerFrame * 8 / float64(w*h)
	q := int(math.Round(90 - 26*math.Log2(bpp)))
	if q < rcMinQ {
		q = rcMinQ
	}
	if q > 240 {
		q = 240
	}
	return &rateController{
		targetBytesPerFrame: bytesPerFrame,
		qindex:              q,
		rdBonus:             rdBonus,
	}, nil
}

// onFrameCoded records a finished frame and returns the quantizer for
// the next one: proportional control on the accumulated budget error,
// bounded per step so quality cannot oscillate wildly.
func (rc *rateController) onFrameCoded(bytes int) int {
	rc.spentBytes += float64(bytes)
	rc.codedFrames++
	errFrames := (rc.spentBytes - rc.targetBytesPerFrame*float64(rc.codedFrames)) / rc.targetBytesPerFrame
	adjust := int(math.Round(errFrames * 10))
	if adjust > 24 {
		adjust = 24
	} else if adjust < -24 {
		adjust = -24
	}
	rc.qindex += adjust
	if rc.qindex < rcMinQ {
		rc.qindex = rcMinQ
	}
	if rc.qindex > 250 {
		rc.qindex = 250
	}
	return rc.qindex
}

// ---------------------------------------------------------------------
// Scene-cut detection: an open-loop pass over the source frames marks
// keyframes where the temporal SAD jumps well above its running level,
// the lookahead heuristic production encoders use.

// detectSceneCuts flags pictures that start a new scene. The first
// frame is always a keyframe; subsequent frames become keyframes when
// their frame-difference SAD exceeds sceneCutRatio times the running
// average of previous diffs (and an absolute floor that keeps static
// content immune to the ratio test).
const sceneCutRatio = 1.8

func (se *streamEncoder) detectSceneCuts(tc *trace.Ctx) error {
	if len(se.pics) < 2 {
		return nil
	}
	var runAvg float64
	for i := 1; i < len(se.pics); i++ {
		cur, prev := se.pics[i], se.pics[i-1]
		sad, err := motion.SAD(tc, cur.srcY, 0, 0, prev.srcY, 0, 0, se.aw, se.ah)
		if err != nil {
			return err
		}
		d := float64(sad) / float64(se.aw*se.ah)
		if runAvg > 0 && d > sceneCutRatio*runAvg && d > 8 {
			cur.isKey = true
		}
		// Exponential running average of "normal" temporal change; scene
		// cuts are excluded so one cut does not mask the next.
		if !cur.isKey {
			if runAvg == 0 {
				runAvg = d
			} else {
				runAvg = 0.75*runAvg + 0.25*d
			}
		}
	}
	return nil
}
