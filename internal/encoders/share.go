package encoders

import (
	"fmt"
	"sync"

	"vcprof/internal/codec"
	"vcprof/internal/codec/motion"
	"vcprof/internal/trace"
)

// AnalysisCache shares the open-loop motion-analysis stage across
// encodes of the same source frames. The analysis MV grid depends only
// on the source pixels and the preset-derived search configuration
// (motion algorithm + range), never on CRF or rate control, so ABR
// ladder rungs that differ only in quality can compute it once at the
// top rung and reuse it everywhere — the classic shared-lookahead trick
// real ladder encoders use, and a measurable instruction-count saving.
//
// Protocol: one encode runs with Options.AnalysisPublish set and fills
// the cache as a side effect; Encode seals it on success. Any number of
// later encodes run with Options.AnalysisConsume set and copy the grids
// instead of searching. Consuming an unsealed cache or one built for a
// different source/toolset is an error, never a silent recompute — a
// recompute fallback would make instruction counts depend on encode
// ordering and break the determinism contract.
//
// Concurrency: grid storage is pre-allocated before the publishing
// encode starts, so concurrent analysis tasks write disjoint indexed
// regions without locking; the mutex guards only prepare/seal/check
// bookkeeping. Consumers only read after seal, which the publisher's
// task-graph completion orders before any consumer task starts.
type AnalysisCache struct {
	mu     sync.Mutex
	sealed bool
	frames int
	w, h   int
	gw, gh int
	alg    motion.Algorithm
	rng    int
	intra  bool
	grids  [][]codec.MV
	// intraGrids mirrors the lookahead intra cost grids (only when the
	// publishing encode ran with AnalyzeIntra).
	intraGrids [][]uint32
}

// shareCopyOps is the modeled per-grid-cell cost of reusing a cached MV
// (load + store + loop overhead) — what remains of the analysis stage
// when the search itself is skipped.
const shareCopyOps = 4

// prepare claims the cache for a publishing encode, recording the
// source/toolset identity and allocating every frame's grid.
func (c *AnalysisCache) prepare(se *streamEncoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sealed || c.grids != nil {
		return fmt.Errorf("encoders: analysis cache already published")
	}
	c.frames = len(se.pics)
	c.w, c.h = se.w, se.h
	c.gw, c.gh = se.gw, se.gh
	c.alg = se.ts.motionAlg
	c.rng = se.ts.motionRange
	c.intra = se.opts.AnalyzeIntra
	c.grids = make([][]codec.MV, c.frames)
	for i := range c.grids {
		c.grids[i] = make([]codec.MV, c.gw*c.gh)
	}
	if c.intra {
		c.intraGrids = make([][]uint32, c.frames)
		for i := range c.intraGrids {
			c.intraGrids[i] = make([]uint32, c.gw*c.gh)
		}
	}
	return nil
}

// seal marks the publishing encode complete; only sealed caches may be
// consumed.
func (c *AnalysisCache) seal() {
	c.mu.Lock()
	c.sealed = true
	c.mu.Unlock()
}

// check validates that a consuming encode matches the sealed cache's
// source dimensions and analysis toolset.
func (c *AnalysisCache) check(se *streamEncoder) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sealed {
		return fmt.Errorf("encoders: analysis cache consumed before publish completed")
	}
	if len(se.pics) != c.frames {
		return fmt.Errorf("encoders: analysis cache holds %d frames, encode has %d", c.frames, len(se.pics))
	}
	if se.w != c.w || se.h != c.h || se.gw != c.gw || se.gh != c.gh {
		return fmt.Errorf("encoders: analysis cache built for %dx%d (grid %dx%d), encode is %dx%d (grid %dx%d)",
			c.w, c.h, c.gw, c.gh, se.w, se.h, se.gw, se.gh)
	}
	if se.ts.motionAlg != c.alg || se.ts.motionRange != c.rng {
		return fmt.Errorf("encoders: analysis cache built for a different preset toolset (alg/range mismatch)")
	}
	if se.opts.AnalyzeIntra && !c.intra {
		return fmt.Errorf("encoders: analysis cache published without AnalyzeIntra, encode needs it")
	}
	return nil
}

// publishRows mirrors an analyzed region into the cache. Regions of
// concurrent tasks are disjoint, so indexed stores need no lock.
func (c *AnalysisCache) publishRows(pic *picture, gw, gy0, gy1, gx0, gx1 int) {
	dst := c.grids[pic.index]
	for gy := gy0; gy < gy1; gy++ {
		copy(dst[gy*gw+gx0:gy*gw+gx1], pic.mvGrid[gy*gw+gx0:gy*gw+gx1])
	}
	if c.intra && pic.intraGrid != nil {
		di := c.intraGrids[pic.index]
		for gy := gy0; gy < gy1; gy++ {
			copy(di[gy*gw+gx0:gy*gw+gx1], pic.intraGrid[gy*gw+gx0:gy*gw+gx1])
		}
	}
}

// copyRows replaces the motion search of analyzeRows with a cached-grid
// copy, charging the modeled per-cell reuse cost to the analysis stage
// so the saving is visible in instruction counts rather than silently
// free.
func (c *AnalysisCache) copyRows(tc *trace.Ctx, pic *picture, gw, gy0, gy1, gx0, gx1 int) {
	src := c.grids[pic.index]
	for gy := gy0; gy < gy1; gy++ {
		copy(pic.mvGrid[gy*gw+gx0:gy*gw+gx1], src[gy*gw+gx0:gy*gw+gx1])
		tc.Op(trace.OpOther, shareCopyOps*(gx1-gx0))
	}
	if pic.intraGrid != nil && c.intra {
		si := c.intraGrids[pic.index]
		for gy := gy0; gy < gy1; gy++ {
			copy(pic.intraGrid[gy*gw+gx0:gy*gw+gx1], si[gy*gw+gx0:gy*gw+gx1])
			tc.Op(trace.OpOther, shareCopyOps*(gx1-gx0))
		}
	}
}
