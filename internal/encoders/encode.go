package encoders

import (
	"context"
	"fmt"
	"time"

	"vcprof/internal/metrics"
	"vcprof/internal/video"
)

// Encode runs the model on the clip. It is safe for concurrent use with
// distinct clips and options. The bitstream size, reconstruction,
// quality metrics and (if instrumented) instruction-level counters are
// returned in the Result. Cancelling ctx aborts the encode at the next
// task boundary and returns ctx's error, so a killed job stops burning
// its worker instead of running to completion.
func (m *model) Encode(ctx context.Context, clip *video.Clip, opts Options) (*Result, error) {
	if err := m.validate(clip, opts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	se, err := newStreamEncoder(m.spec, clip, opts)
	if err != nil {
		return nil, err
	}
	ws, err := newWorkerSet(se, opts)
	if err != nil {
		return nil, err
	}
	g, err := se.buildGraph(ws)
	if err != nil {
		return nil, err
	}
	//lint:ignore detnow,detflow Result.Wall is host wall-clock by contract (live-run reporting); tables use modeled cycles (harness.cycleMS), never this value
	start := time.Now()
	if opts.Executor != nil {
		err = runSharded(ctx, se, g, ws, opts.Executor)
	} else {
		err = runLive(ctx, g, ws)
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start) //lint:ignore detnow,detflow same contract as above: informational Result.Wall only

	if c := opts.AnalysisPublish; c != nil {
		c.seal()
	}
	return m.assemble(se, ws, clip, wall)
}

// assemble collects the Result from a completed stream encode.
func (m *model) assemble(se *streamEncoder, ws *workerSet, clip *video.Clip, wall time.Duration) (*Result, error) {
	res := &Result{Family: m.spec.family, Wall: wall}
	for _, pic := range se.pics {
		res.Bytes += pic.bytes
		res.FrameBytes = append(res.FrameBytes, pic.bytes)
		res.Recon = append(res.Recon, se.cropRecon(pic))
		res.QIndices = append(res.QIndices, pic.qindex)
		for i, n := range pic.shapeCount {
			res.Shapes[i] += n
		}
		res.SkipBlocks += pic.skipCount
		if pic.isKey {
			res.KeyFrames = append(res.KeyFrames, pic.index)
		}
		res.FrameStages = append(res.FrameStages, pic.stages)
		if pic.intraGrid != nil {
			var sum uint64
			for _, v := range pic.intraGrid {
				sum += uint64(v)
			}
			res.IntraCosts = append(res.IntraCosts, sum)
		}
	}
	var err error
	if res.PSNR, err = metrics.SequencePSNR(clip.Frames, res.Recon); err != nil {
		return nil, err
	}
	if res.SSIM, err = metrics.SequenceSSIM(clip.Frames, res.Recon); err != nil {
		return nil, err
	}
	fps := clip.Meta.FPS
	if fps <= 0 {
		fps = 30
	}
	if res.BitrateKbps, err = metrics.BitrateKbps(res.Bytes, len(clip.Frames), fps); err != nil {
		return nil, err
	}
	for _, tc := range ws.ctxs {
		if tc == nil {
			continue
		}
		res.Mix.Add(&tc.Mix)
		res.Insts += tc.Total()
		res.WorkerInsts = append(res.WorkerInsts, tc.Total())
	}
	if se.opts.KeepBitstream {
		bs, err := se.assembleBitstream()
		if err != nil {
			return nil, err
		}
		res.Bitstream = bs
	}
	return res, nil
}

// ProfileSchedule runs the encode once, serially, measuring the
// instruction cost of every task of the family's threading architecture
// and returning the dependence graph for makespan simulation. This is
// the thread-scalability substitute: Schedule.Speedup(n) predicts the
// paper's wall-clock speedup on an n-core machine from the measured
// work distribution.
func ProfileSchedule(ctx context.Context, enc Encoder, clip *video.Clip, opts Options) (*Schedule, *Result, error) {
	m, ok := enc.(*model)
	if !ok {
		return nil, nil, fmt.Errorf("encoders: ProfileSchedule requires a model encoder")
	}
	opts.Threads = 1
	if err := m.validate(clip, opts); err != nil {
		return nil, nil, err
	}
	se, err := newStreamEncoder(m.spec, clip, opts)
	if err != nil {
		return nil, nil, err
	}
	ws, err := newWorkerSet(se, opts)
	if err != nil {
		return nil, nil, err
	}
	g, err := se.buildGraph(ws)
	if err != nil {
		return nil, nil, err
	}
	costs, err := runProfiled(ctx, g, ws)
	if err != nil {
		return nil, nil, err
	}
	sched := &Schedule{Costs: costs}
	for _, t := range g.tasks {
		sched.Deps = append(sched.Deps, t.deps)
		sched.Names = append(sched.Names, t.name)
	}
	res, err := m.assemble(se, ws, clip, 0)
	if err != nil {
		return nil, nil, err
	}
	return sched, res, nil
}

// cropRecon extracts the unpadded reconstruction of a picture.
func (se *streamEncoder) cropRecon(pic *picture) *video.Frame {
	f := &video.Frame{
		Y:     cropPlane(pic.recY.Plane, se.w, se.h),
		U:     cropPlane(pic.recU.Plane, se.w/2, se.h/2),
		V:     cropPlane(pic.recV.Plane, se.w/2, se.h/2),
		Index: pic.index,
	}
	return f
}

func cropPlane(p *video.Plane, w, h int) *video.Plane {
	out := video.NewPlane(w, h)
	for y := 0; y < h; y++ {
		copy(out.Row(y), p.Row(y)[:w])
	}
	return out
}
