package encoders

import (
	"strconv"

	"vcprof/internal/obs"
	"vcprof/internal/trace"
)

// Span names for the per-frame stage breakdown, interned once. The
// stage names come from trace.Stage so the trace vocabulary and the
// span vocabulary cannot drift apart.
var (
	obsFrameName  = obs.Name("frame")
	obsStageNames = func() [trace.NumStages]obs.NameID {
		var a [trace.NumStages]obs.NameID
		for i := range a {
			a[i] = obs.Name("stage/" + trace.Stage(i).String())
		}
		return a
	}()
)

// ObserveFrameStages appends one span per frame, with one child span
// per active pipeline stage, advancing the virtual clock by the stage's
// instruction count. The input is deterministic across thread counts
// (see Result.FrameStages), so the emitted spans are too. Zero-count
// stages are skipped; the frame span's duration is the frame's total
// instructions.
func ObserveFrameStages(tr *obs.Trace, frames []trace.StageCounts) {
	if !tr.Enabled() {
		return
	}
	for i := range frames {
		fs := tr.BeginArg(obsFrameName, "f"+strconv.Itoa(i))
		for s, n := range frames[i] {
			if n == 0 {
				continue
			}
			ss := tr.Begin(obsStageNames[s])
			tr.Advance(n)
			ss.End()
		}
		fs.End()
	}
}

// ObserveResult appends the encode's frame/stage spans to tr — the
// cmd/vencode entry point for the obs trace of a single encode.
func ObserveResult(tr *obs.Trace, res *Result) {
	if !tr.Enabled() || res == nil {
		return
	}
	ObserveFrameStages(tr, res.FrameStages)
}
