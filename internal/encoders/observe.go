package encoders

import (
	"strconv"

	"vcprof/internal/obs"
	"vcprof/internal/telemetry"
	"vcprof/internal/trace"
)

// Span names for the per-frame stage breakdown, interned once. The
// stage names come from trace.Stage so the trace vocabulary and the
// span vocabulary cannot drift apart.
var (
	obsFrameName  = obs.Name("frame")
	obsStageNames = func() [trace.NumStages]obs.NameID {
		var a [trace.NumStages]obs.NameID
		for i := range a {
			a[i] = obs.Name("stage/" + trace.Stage(i).String())
		}
		return a
	}()
)

// ObserveFrameStages appends one span per frame, with one child span
// per active pipeline stage, advancing the virtual clock by the stage's
// instruction count. The input is deterministic across thread counts
// (see Result.FrameStages), so the emitted spans are too. Zero-count
// stages are skipped; the frame span's duration is the frame's total
// instructions.
func ObserveFrameStages(tr *obs.Trace, frames []trace.StageCounts) {
	if !tr.Enabled() {
		return
	}
	for i := range frames {
		fs := tr.BeginArg(obsFrameName, "f"+strconv.Itoa(i))
		for s, n := range frames[i] {
			if n == 0 {
				continue
			}
			ss := tr.Begin(obsStageNames[s])
			tr.Advance(n)
			ss.End()
		}
		fs.End()
	}
}

// ObserveResult appends the encode's frame/stage spans to tr — the
// cmd/vencode entry point for the obs trace of a single encode.
func ObserveResult(tr *obs.Trace, res *Result) {
	if !tr.Enabled() || res == nil {
		return
	}
	ObserveFrameStages(tr, res.FrameStages)
}

// Per-stage encode-tick histograms, one per pipeline stage, keyed by
// the trace.Stage vocabulary like the span names above. Deterministic:
// the observed values are per-frame modeled instruction counts, which
// are thread- and worker-count independent.
var stageTickHists = func() [trace.NumStages]*obs.Histogram {
	var a [trace.NumStages]*obs.Histogram
	for i := range a {
		a[i] = obs.NewHistogram("encode.stage_ticks."+trace.Stage(i).String(), telemetry.TickBuckets)
	}
	return a
}()

// ObserveStageHistograms records every frame's per-stage instruction
// counts into the stage histograms. Unlike the span observers this is
// not session-gated: histograms are registry-wide like counters, so
// stage distributions accumulate whether or not a trace session is
// attached. Zero-count stages are skipped, matching the span rule.
func ObserveStageHistograms(frames []trace.StageCounts) {
	for i := range frames {
		for s, n := range frames[i] {
			if n == 0 {
				continue
			}
			stageTickHists[s].Observe(n)
		}
	}
}

// StageHistogramName returns the registry name of one stage's
// histogram, for telemetry gauges that track per-stage throughput.
func StageHistogramName(s trace.Stage) string {
	return "encode.stage_ticks." + s.String()
}
