package encoders

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vcprof/internal/video"
)

var updateGolden = flag.Bool("update", false, "regenerate the conformance corpus")

// conformancePoint is one corpus entry: an encode configuration plus
// the expected bitstream and reconstruction digests.
type conformancePoint struct {
	Name   string  `json:"name"`
	Family Family  `json:"family"`
	Clip   string  `json:"clip"`
	Frames int     `json:"frames"`
	Scale  int     `json:"scale"`
	CRF    int     `json:"crf"`
	Preset int     `json:"preset"`
	Kbps   float64 `json:"kbps,omitempty"`
	KeyInt int     `json:"key_interval,omitempty"`
	Cut    int     `json:"cut,omitempty"`
	Scene  bool    `json:"scenecut,omitempty"`
	Stream string  `json:"stream_sha256"`
	Recon  string  `json:"recon_sha256"`
	Bytes  int     `json:"bytes"`
}

// conformanceConfigs defines the corpus. Changing encoder behaviour
// intentionally requires regenerating with:
//
//	go test ./internal/encoders -run TestBitstreamConformance -update
func conformanceConfigs() []conformancePoint {
	return []conformancePoint{
		{Name: "svt-mid", Family: SVTAV1, Clip: "game1", Frames: 3, Scale: 16, CRF: 32, Preset: 4},
		{Name: "svt-fast", Family: SVTAV1, Clip: "hall", Frames: 3, Scale: 16, CRF: 60, Preset: 8},
		{Name: "svt-slow", Family: SVTAV1, Clip: "desktop", Frames: 3, Scale: 16, CRF: 20, Preset: 1},
		{Name: "libaom-mid", Family: Libaom, Clip: "game2", Frames: 3, Scale: 16, CRF: 40, Preset: 5},
		{Name: "vp9-mid", Family: VP9, Clip: "cat", Frames: 3, Scale: 16, CRF: 35, Preset: 4},
		{Name: "x264-mid", Family: X264, Clip: "bike", Frames: 3, Scale: 16, CRF: 28, Preset: 5},
		{Name: "x265-slow", Family: X265, Clip: "girl", Frames: 3, Scale: 16, CRF: 24, Preset: 8},
		{Name: "svt-abr", Family: SVTAV1, Clip: "game1", Frames: 4, Scale: 16, Kbps: 300, Preset: 6},
		{Name: "svt-scenecut", Family: SVTAV1, Clip: "game1", Frames: 6, Scale: 16, CRF: 40, Preset: 6, Cut: 3, Scene: true},
		{Name: "svt-keyed", Family: SVTAV1, Clip: "funny", Frames: 4, Scale: 16, CRF: 44, Preset: 6, KeyInt: 2},
	}
}

func conformanceEncode(t *testing.T, cp conformancePoint) *Result {
	t.Helper()
	meta, err := video.LookupClip(cp.Clip)
	if err != nil {
		t.Fatal(err)
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: cp.Frames, ScaleDiv: cp.Scale, CutAt: cp.Cut})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MustNew(cp.Family).Encode(context.Background(), clip, Options{
		CRF: cp.CRF, Preset: cp.Preset, TargetKbps: cp.Kbps,
		KeyInterval: cp.KeyInt, SceneCut: cp.Scene, KeepBitstream: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", cp.Name, err)
	}
	return res
}

func reconDigest(frames []*video.Frame) string {
	h := sha256.New()
	for _, f := range frames {
		h.Write(f.Y.Pix)
		h.Write(f.U.Pix)
		h.Write(f.V.Pix)
	}
	return hex.EncodeToString(h.Sum(nil))
}

const goldenPath = "testdata/conformance.json"

// TestBitstreamConformance locks the bitstream format: every corpus
// point's container bytes and decoded reconstruction must match the
// recorded digests bit-for-bit. Run with -update after an intentional
// format change.
func TestBitstreamConformance(t *testing.T) {
	if *updateGolden {
		var out []conformancePoint
		for _, cp := range conformanceConfigs() {
			res := conformanceEncode(t, cp)
			sum := sha256.Sum256(res.Bitstream)
			cp.Stream = hex.EncodeToString(sum[:])
			dec, err := DecodeBitstream(res.Bitstream)
			if err != nil {
				t.Fatalf("%s: decode: %v", cp.Name, err)
			}
			cp.Recon = reconDigest(dec)
			cp.Bytes = len(res.Bitstream)
			out = append(out, cp)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d conformance points to %s", len(out), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("conformance corpus missing (run with -update to create): %v", err)
	}
	var golden []conformancePoint
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) != len(conformanceConfigs()) {
		t.Fatalf("corpus has %d points, configs define %d — regenerate with -update",
			len(golden), len(conformanceConfigs()))
	}
	for _, cp := range golden {
		cp := cp
		t.Run(cp.Name, func(t *testing.T) {
			res := conformanceEncode(t, cp)
			sum := sha256.Sum256(res.Bitstream)
			if got := hex.EncodeToString(sum[:]); got != cp.Stream {
				t.Errorf("bitstream digest changed: %s (was %s) — the format drifted; if intentional, regenerate with -update", got, cp.Stream)
			}
			if len(res.Bitstream) != cp.Bytes {
				t.Errorf("bitstream size %d, golden %d", len(res.Bitstream), cp.Bytes)
			}
			dec, err := DecodeBitstream(res.Bitstream)
			if err != nil {
				t.Fatal(err)
			}
			if got := reconDigest(dec); got != cp.Recon {
				t.Errorf("reconstruction digest changed: %s (was %s)", got, cp.Recon)
			}
		})
	}
}
