package encoders

import (
	"context"
	"reflect"
	"testing"

	"vcprof/internal/sched"
	"vcprof/internal/trace"
)

// poolExec adapts a sched.Pool for the Options.Executor hook the way
// the harness does (the interfaces are structurally identical).
type poolExec struct{ p *sched.Pool }

func (e poolExec) Workers() int                                    { return e.p.Workers() }
func (e poolExec) RunGraph(ctx context.Context, g TaskGraph) error { return e.p.RunGraph(ctx, g) }

// TestExecutorMatchesSerial pins the shard-handoff contract at the
// encoder level: an encode whose task graph runs on a work-stealing
// pool returns a Result identical to the serial runLive path — same
// bitstream, quality, instruction totals, mix, per-worker attribution
// and per-frame stage breakdown — at several worker counts and seeds.
func TestExecutorMatchesSerial(t *testing.T) {
	clip := testClip(t, "game1", 3, 16)
	for _, fam := range []Family{SVTAV1, X264, X265} {
		enc := MustNew(fam)
		opts := Options{CRF: 30, Preset: 3, NewWorkerCtx: func(int) *trace.Ctx { return trace.New() }}
		serial, err := enc.Encode(context.Background(), clip, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", fam, err)
		}
		for _, cfg := range []struct {
			workers int
			seed    uint64
		}{{1, 1}, {4, 1}, {4, 12345}, {8, 7}} {
			p := sched.NewPool(sched.Config{Workers: cfg.workers, Seed: cfg.seed})
			o := opts
			o.Executor = poolExec{p: p}
			sharded, err := enc.Encode(context.Background(), clip, o)
			p.Close()
			if err != nil {
				t.Fatalf("%s workers=%d seed=%d: %v", fam, cfg.workers, cfg.seed, err)
			}
			if sharded.Bytes != serial.Bytes || sharded.PSNR != serial.PSNR || sharded.SSIM != serial.SSIM {
				t.Errorf("%s workers=%d seed=%d: output differs: %d/%v/%v vs %d/%v/%v",
					fam, cfg.workers, cfg.seed, sharded.Bytes, sharded.PSNR, sharded.SSIM, serial.Bytes, serial.PSNR, serial.SSIM)
			}
			if sharded.Insts != serial.Insts {
				t.Errorf("%s workers=%d seed=%d: instructions differ: %d vs %d",
					fam, cfg.workers, cfg.seed, sharded.Insts, serial.Insts)
			}
			if sharded.Mix != serial.Mix {
				t.Errorf("%s workers=%d seed=%d: mix differs", fam, cfg.workers, cfg.seed)
			}
			if !reflect.DeepEqual(sharded.WorkerInsts, serial.WorkerInsts) {
				t.Errorf("%s workers=%d seed=%d: worker attribution differs:\nserial  %v\nsharded %v",
					fam, cfg.workers, cfg.seed, serial.WorkerInsts, sharded.WorkerInsts)
			}
			if !reflect.DeepEqual(sharded.FrameStages, serial.FrameStages) {
				t.Errorf("%s workers=%d seed=%d: frame stage breakdown differs", fam, cfg.workers, cfg.seed)
			}
			if !reflect.DeepEqual(sharded.FrameBytes, serial.FrameBytes) {
				t.Errorf("%s workers=%d seed=%d: frame bytes differ", fam, cfg.workers, cfg.seed)
			}
		}
	}
}

// TestExecutorCancellation pins that a cancelled sharded encode
// returns the context error and no result.
func TestExecutorCancellation(t *testing.T) {
	clip := testClip(t, "desktop", 3, 16)
	p := sched.NewPool(sched.Config{Workers: 2})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	enc := MustNew(Libaom)
	_, err := enc.Encode(ctx, clip, Options{CRF: 30, Preset: 3, Executor: poolExec{p: p}})
	if err == nil {
		t.Fatal("cancelled sharded encode returned nil error")
	}
}

// TestThreadsZeroEqualsOne is the Threads:0 regression test at the
// encoder level: 0 means the 1-thread default everywhere, so both
// spellings must validate and produce identical results.
func TestThreadsZeroEqualsOne(t *testing.T) {
	clip := testClip(t, "game2", 2, 16)
	for _, fam := range []Family{SVTAV1, X264} {
		enc := MustNew(fam)
		zero, err := enc.Encode(context.Background(), clip, Options{CRF: 30, Preset: 3, Threads: 0})
		if err != nil {
			t.Fatalf("%s threads=0 rejected: %v", fam, err)
		}
		one, err := enc.Encode(context.Background(), clip, Options{CRF: 30, Preset: 3, Threads: 1})
		if err != nil {
			t.Fatalf("%s threads=1: %v", fam, err)
		}
		if zero.Bytes != one.Bytes || zero.PSNR != one.PSNR || zero.Insts != one.Insts {
			t.Errorf("%s: Threads 0 and 1 diverge: %d/%v/%d vs %d/%v/%d",
				fam, zero.Bytes, zero.PSNR, zero.Insts, one.Bytes, one.PSNR, one.Insts)
		}
	}
}

// TestCostHintOrdering pins the admission cost table's robust
// orderings: the paper's Fig.1 endpoints (x264 ≪ libaom — the 15×
// base ratio dominates any effort/CRF shaping), more pixels and more
// frames cost more, cheaper CRF costs more, and unknown families fall
// back to the most expensive band rather than the cheapest.
func TestCostHintOrdering(t *testing.T) {
	px, frames := 320*180, 4
	for preset := 0; preset <= 8; preset++ {
		fast := CostHint(X264, px, frames, 30, preset)
		slow := CostHint(Libaom, px, frames, 30, preset)
		if fast >= slow {
			t.Errorf("preset %d: CostHint(x264)=%d not below CostHint(libaom)=%d", preset, fast, slow)
		}
	}
	if CostHint(X264, 2*px, frames, 30, 4) <= CostHint(X264, px, frames, 30, 4) {
		t.Error("doubling pixels did not raise the cost")
	}
	if CostHint(X264, px, 2*frames, 30, 4) <= CostHint(X264, px, frames, 30, 4) {
		t.Error("doubling frames did not raise the cost")
	}
	if CostHint(SVTAV1, px, frames, 0, 4) <= CostHint(SVTAV1, px, frames, 63, 4) {
		t.Error("CRF 0 (most coefficients alive) must cost more than the max CRF")
	}
	if CostHint(Family("nope"), px, frames, 30, 4) < CostHint(Libaom, px, frames, 30, 4)/12 {
		t.Error("unknown family must land in the most expensive band")
	}
	if CostHint(X264, 0, 0, 0, 0) == 0 {
		t.Error("degenerate inputs must still cost at least 1")
	}
}
