package encoders

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
	"vcprof/internal/codec/intra"
	"vcprof/internal/codec/motion"
	"vcprof/internal/codec/quant"
	"vcprof/internal/codec/rdo"
	"vcprof/internal/codec/transform"
	"vcprof/internal/trace"
	"vcprof/internal/video"
)

// sbSize is the superblock side in luma samples for all encoder models.
const sbSize = 32

// blkClass maps a block dimension to a kernel-specialization class
// {≤4, 8, 16, 32, 64, other} → 0..5, used to pick per-size
// instrumentation sites.
func blkClass(v int) int {
	switch {
	case v <= 4:
		return 0
	case v <= 8:
		return 1
	case v <= 16:
		return 2
	case v <= 32:
		return 3
	case v <= 64:
		return 4
	}
	return 5
}

// analysisGrid is the granularity of open-loop motion analysis.
const analysisGrid = 16

var (
	pcPredCopy   = trace.Sites("encoders.predCopy/rowloop", 6)
	pcBorderLoad = trace.Site("encoders.intraBorders/load")
	pcSkipTest   = trace.Sites("encoders.chooseLeaf/skiptest", 6)
	pcModeBetter = trace.Sites("encoders.chooseLeaf/modebetter", 6)
	pcIntraTry   = trace.Site("encoders.chooseLeaf/intratry")
	pcPartEarly  = trace.Sites("encoders.searchPartition/earlyexit", 4)
	pcPartBetter = trace.Sites("encoders.searchPartition/shapebetter", 10)
	pcDeblockCmp = trace.Site("encoders.deblock/edgetest")
	fnAnalysis   = trace.Func("encoders.AnalysisStage")
	fnModeDec    = trace.Func("encoders.ModeDecision")
	fnCommit     = trace.Func("encoders.CommitLeaf")
	fnChroma     = trace.Func("encoders.ChromaEncode")
	fnDeblock    = trace.Func("encoders.Deblock")
)

// picture is the per-frame encoding state.
type picture struct {
	index  int
	isKey  bool
	srcY   codec.Surface
	srcU   codec.Surface
	srcV   codec.Surface
	recY   codec.Surface
	recU   codec.Surface
	recV   codec.Surface
	mvGrid []codec.MV
	// intraGrid holds the open-loop lookahead intra cost per analysis
	// cell (only with Options.AnalyzeIntra).
	intraGrid []uint32
	bytes     int
	// Per-frame quantizer parameters: equal to the stream defaults in
	// CRF mode, adapted per frame by the rate controller in ABR mode.
	qindex int
	step   float64
	lambda float64
	sqrtL  float64
	// Entropy partitions of the coded frame, in slot order.
	segRects   []segRect
	segStreams [][]byte
	// Partition-decision statistics, merged from segments under statMu.
	statMu     sync.Mutex
	shapeCount [numShapes]uint64
	skipCount  uint64
	// Per-stage instruction totals of this frame's tasks, merged from
	// runTask snapshots under statMu. Task-to-frame attribution is
	// scheduling-independent, so these sums are deterministic across
	// thread counts (the obs frame-span contract).
	stages trace.StageCounts
}

// mergeStats folds a finished segment's decision tallies into the
// picture.
func (p *picture) mergeStats(sc *segCtx) {
	p.statMu.Lock()
	for i, n := range sc.shapeCount {
		p.shapeCount[i] += n
	}
	p.skipCount += sc.skipCount
	p.statMu.Unlock()
}

// addStages folds one task's per-stage instruction delta into the
// frame totals.
func (p *picture) addStages(d *trace.StageCounts) {
	p.statMu.Lock()
	p.stages.Add(d)
	p.statMu.Unlock()
}

// setQIndex installs a frame quantizer and its derived RD parameters.
func (p *picture) setQIndex(qindex int, rdBonus float64) error {
	step, err := quant.StepSize(qindex)
	if err != nil {
		return err
	}
	lambda, err := rdo.Lambda(step)
	if err != nil {
		return err
	}
	p.qindex = qindex
	p.step = step
	p.lambda = lambda * rdBonus
	p.sqrtL = math.Sqrt(lambda) * rdBonus
	return nil
}

// initSegments sizes the partition slots (idempotent).
func (p *picture) initSegments(n int) {
	if len(p.segRects) != n {
		p.segRects = make([]segRect, n)
		p.segStreams = make([][]byte, n)
	}
}

// finalizeBytes computes the coded frame size from the partitions.
func (p *picture) finalizeBytes() {
	p.bytes = frameOverheadBytes
	for _, s := range p.segStreams {
		p.bytes += len(s) + segmentOverheadBytes
	}
}

// streamEncoder is the per-encode shared state.
type streamEncoder struct {
	spec   familySpec
	ts     toolset
	opts   Options
	qindex int
	step   float64
	lambda float64 // SSE-domain RD multiplier
	sqrtL  float64 // SATD-domain RD multiplier
	w, h   int     // original luma dims
	aw, ah int     // aligned (padded) luma dims
	gw, gh int     // analysis grid dims
	as     *trace.AddressSpace
	pics   []*picture
	rc     *rateController
}

func align(v, m int) int { return (v + m - 1) / m * m }

func newStreamEncoder(spec familySpec, clip *video.Clip, opts Options) (*streamEncoder, error) {
	ts := spec.tools(spec.effort(opts.Preset))
	qi := spec.qindexForCRF(opts.CRF)
	step, err := quant.StepSize(qi)
	if err != nil {
		return nil, err
	}
	lambda, err := rdo.Lambda(step)
	if err != nil {
		return nil, err
	}
	w, h := clip.Frames[0].Width(), clip.Frames[0].Height()
	se := &streamEncoder{
		spec: spec, ts: ts, opts: opts,
		qindex: qi, step: step,
		lambda: lambda * spec.rdBonus,
		sqrtL:  math.Sqrt(lambda) * spec.rdBonus,
		w:      w, h: h,
		aw: align(w, sbSize), ah: align(h, sbSize),
		as: trace.NewAddressSpace(),
	}
	se.gw = se.aw / analysisGrid
	se.gh = se.ah / analysisGrid
	for i, f := range clip.Frames {
		pic, err := se.newPicture(i, f)
		if err != nil {
			return nil, err
		}
		se.pics = append(se.pics, pic)
	}
	if opts.SceneCut {
		if err := se.detectSceneCuts(nil); err != nil {
			return nil, err
		}
	}
	if opts.TargetKbps > 0 {
		fps := clip.Meta.FPS
		rc, err := newRateController(opts.TargetKbps, fps, w, h, spec.rdBonus)
		if err != nil {
			return nil, err
		}
		se.rc = rc
		for _, pic := range se.pics {
			if err := pic.setQIndex(rc.qindex, spec.rdBonus); err != nil {
				return nil, err
			}
		}
	}
	if c := opts.AnalysisPublish; c != nil {
		if err := c.prepare(se); err != nil {
			return nil, err
		}
	}
	if c := opts.AnalysisConsume; c != nil {
		if err := c.check(se); err != nil {
			return nil, err
		}
	}
	return se, nil
}

// rateUpdate feeds a finished frame to the rate controller (if any) and
// installs the adapted quantizer on the next picture. Callers invoke it
// from the task that finalizes a frame, which the builders order before
// any encode task of the next frame when ABR is active.
func (se *streamEncoder) rateUpdate(pic *picture) error {
	if se.rc == nil || pic.index+1 >= len(se.pics) {
		return nil
	}
	q := se.rc.onFrameCoded(pic.bytes)
	return se.pics[pic.index+1].setQIndex(q, se.spec.rdBonus)
}

// newPicture pads the source frame to superblock alignment by edge
// replication and allocates its surfaces in the traced address space.
func (se *streamEncoder) newPicture(idx int, f *video.Frame) (*picture, error) {
	p := &picture{index: idx}
	ki := se.opts.KeyInterval
	p.isKey = idx == 0 || (ki > 0 && idx%ki == 0)
	caw, cah := se.aw/2, se.ah/2
	var err error
	mk := func(name string, w, h int) codec.Surface {
		if err != nil {
			return codec.Surface{}
		}
		var s codec.Surface
		s, err = codec.NewSurface(se.as, fmt.Sprintf("pic%d/%s", idx, name), w, h)
		return s
	}
	p.srcY = mk("srcY", se.aw, se.ah)
	p.srcU = mk("srcU", caw, cah)
	p.srcV = mk("srcV", caw, cah)
	p.recY = mk("recY", se.aw, se.ah)
	p.recU = mk("recU", caw, cah)
	p.recV = mk("recV", caw, cah)
	if err != nil {
		return nil, err
	}
	padInto(p.srcY.Plane, f.Y)
	padInto(p.srcU.Plane, f.U)
	padInto(p.srcV.Plane, f.V)
	p.mvGrid = make([]codec.MV, se.gw*se.gh)
	if se.opts.AnalyzeIntra {
		p.intraGrid = make([]uint32, se.gw*se.gh)
	}
	if err := p.setQIndex(se.qindex, se.spec.rdBonus); err != nil {
		return nil, err
	}
	return p, nil
}

// padInto copies src into the top-left of dst and extends the last row
// and column into the padding.
func padInto(dst, src *video.Plane) {
	for y := 0; y < dst.H; y++ {
		sy := y
		if sy >= src.H {
			sy = src.H - 1
		}
		drow := dst.Row(y)
		srow := src.Row(sy)
		copy(drow, srow)
		for x := src.W; x < dst.W; x++ {
			drow[x] = srow[src.W-1]
		}
	}
}

// workScratch is per-segment scratch memory, registered in the traced
// address space so its (hot, small) accesses shape L1 behaviour.
type workScratch struct {
	pred  []byte
	pred2 []byte
	res   []int32
	res2  []int32
	coef  []int32
	lev   []int32
	rec   []byte
	vbase uint64
}

func newWorkScratch(as *trace.AddressSpace, name string) (*workScratch, error) {
	const n = sbSize * sbSize
	r, err := as.Alloc("scratch/"+name, n*24)
	if err != nil {
		return nil, err
	}
	return &workScratch{
		pred:  make([]byte, n),
		pred2: make([]byte, n),
		res:   make([]int32, n),
		res2:  make([]int32, n),
		coef:  make([]int32, n),
		lev:   make([]int32, n),
		rec:   make([]byte, n),
		vbase: r.Base,
	}, nil
}

// segCtx is the state of one entropy partition (segment/tile) during a
// frame encode.
type segCtx struct {
	se         *streamEncoder
	pic        *picture
	prev       *picture // reference picture (nil on keyframes)
	prev2      *picture // second reference (may be nil)
	enc        *entropy.Encoder
	pm         *probModel
	tc         *trace.Ctx
	scratch    *workScratch
	prevMV     codec.MV
	segTopPx   int // first luma row of the segment (prediction break above)
	segEndPx   int
	segLeftPx  int // first luma column (prediction break to the left)
	segRightPx int // one past the segment's last luma column
	// shapeCount tallies committed partition decisions, merged into the
	// picture when the segment finishes.
	shapeCount [numShapes]uint64
	skipCount  uint64
}

// leafPlan is one chosen coding block.
type leafPlan struct {
	x, y, w, h int
	skip       bool
	inter      bool
	mv         codec.MV
	ref2       bool
	sub        motion.SubPel // half-pel phase (inter, halfPel tool only)
	mode       intra.Mode
	cost       int64
	bits       int // estimated coded bits (full-RD mode decision only)
}

// planNode is a chosen partition subtree.
type planNode struct {
	shape    Shape
	x, y, n  int
	leaves   []leafPlan
	children [4]*planNode
	cost     int64
}

// ---------------------------------------------------------------------
// Analysis stage: open-loop motion estimation per 16×16 grid cell
// against the previous source frame. Runs before (and, in the SVT
// model, concurrently with) the closed-loop encode.

// analyzeRows runs motion analysis for grid rows [gy0, gy1) × grid
// columns [gx0, gx1) of pic. Regions given to concurrent tasks must be
// disjoint: the left-neighbour MV predictor chain restarts at gx0.
func (se *streamEncoder) analyzeRows(tc *trace.Ctx, pic, prev *picture, gy0, gy1, gx0, gx1 int) error {
	if prev == nil {
		return nil
	}
	tc.Enter(fnAnalysis)
	defer tc.Leave()
	if c := se.opts.AnalysisConsume; c != nil {
		c.copyRows(tc, pic, se.gw, gy0, gy1, gx0, gx1)
		return nil
	}
	for gy := gy0; gy < gy1; gy++ {
		for gx := gx0; gx < gx1; gx++ {
			pred := codec.MV{}
			if gx > gx0 {
				pred = pic.mvGrid[gy*se.gw+gx-1]
			}
			res, err := motion.Search(tc, se.ts.motionAlg, pic.srcY, gx*analysisGrid, gy*analysisGrid,
				prev.srcY, analysisGrid, analysisGrid, se.ts.motionRange, pred)
			if err != nil {
				return err
			}
			pic.mvGrid[gy*se.gw+gx] = res.MV
		}
	}
	if se.opts.AnalyzeIntra {
		if err := se.analyzeIntraRows(tc, pic, gy0, gy1, gx0, gx1); err != nil {
			return err
		}
	}
	if c := se.opts.AnalysisPublish; c != nil {
		c.publishRows(pic, se.gw, gy0, gy1, gx0, gx1)
	}
	return nil
}

// ---------------------------------------------------------------------
// Mode decision.

// clampedStep saturates the quantizer step used by pruning heuristics.
// Real encoders' early-exit thresholds stop tightening at very coarse
// quantizers (decision noise would otherwise dominate); the clamp keeps
// the search-space gap between codec families visible at high CRF, as
// Fig. 1 of the paper shows.
func (sc *segCtx) clampedStep() float64 {
	const maxPruneStep = 48
	if sc.pic.step > maxPruneStep {
		return maxPruneStep
	}
	return sc.pic.step
}

// skipThreshold is the SAD below which a block is coded as SKIP.
func (sc *segCtx) skipThreshold(area int) int32 {
	return int32(sc.se.ts.skipBias * sc.clampedStep() * float64(area) / 6)
}

// earlyExitThreshold prunes the partition-shape search when coding the
// whole block is already cheap relative to the quantizer scale. The
// threshold lives in the mode-decision cost domain: SSE-domain costs
// scale with step² (quantization error ∝ step²/12 per sample), SATD
// costs with step, so each domain gets the matching exponent and the
// exit *fraction* stays content-driven rather than collapsing at coarse
// quantizers.
func (sc *segCtx) earlyExitThreshold(area int) int64 {
	var t float64
	step := sc.pic.step
	if sc.se.ts.fullRD {
		t = sc.se.ts.earlyExitBias * step * step * float64(area) / 14
	} else {
		t = sc.se.ts.earlyExitBias * step * float64(area) / 2
	}
	return int64(t)
}

func mvBits(mv, pred codec.MV) int {
	b := 0
	for _, d := range [2]int32{int32(mv.X) - int32(pred.X), int32(mv.Y) - int32(pred.Y)} {
		u := uint32(d<<1) ^ uint32(d>>31)
		b += 2*bits.Len32(u+1) - 1
	}
	return b
}

// extractPred copies the w×h block at (x, y) of ref into dst, reporting
// the loads and stores of the motion-compensation copy.
func extractPred(tc *trace.Ctx, ref codec.Surface, x, y, w, h int, dst []byte, dstVBase uint64) {
	for j := 0; j < h; j++ {
		copy(dst[j*w:j*w+w], ref.Pix[(y+j)*ref.Stride+x:(y+j)*ref.Stride+x+w])
	}
	vec := (w + 31) / 32
	pc := pcPredCopy[blkClass(w)]
	tc.Loads(pc, ref.VAddr(x, y), h*vec, ref.Stride, minInt(w, 32))
	tc.Stores(pc, dstVBase, h*vec, w, minInt(w, 32))
	tc.Loop(pc, (h+3)/4)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gatherBorders collects reconstructed (or, during search, source)
// border samples for intra prediction of an n-wide block at (x, y).
func (sc *segCtx) gatherBorders(surf codec.Surface, x, y, n int) intra.Neighbors {
	nb := intra.Neighbors{}
	if y > sc.segTopPx {
		nb.HasTop = true
		nb.Top = make([]byte, n)
		copy(nb.Top, surf.Pix[(y-1)*surf.Stride+x:(y-1)*surf.Stride+x+n])
		sc.tc.Loads(pcBorderLoad, surf.VAddr(x, y-1), (n+31)/32, 32, minInt(n, 32))
	}
	if x > sc.segLeftPx {
		nb.HasLeft = true
		nb.Left = make([]byte, n)
		for j := 0; j < n; j++ {
			nb.Left[j] = surf.Pix[(y+j)*surf.Stride+x-1]
		}
		sc.tc.Loads(pcBorderLoad, surf.VAddr(x-1, y), n, surf.Stride, 1)
	}
	return nb
}

// residualCost evaluates the RD cost of coding the residual in
// sc.scratch.res for a w×h block: transform-domain full RD at slow
// presets, SATD at fast ones. Extra instructions at slow presets are the
// point — that is where preset-dependent effort comes from. For the full
// RD path it also returns the estimated coefficient bits, which the
// partition search uses for its early-exit heuristic.
func (sc *segCtx) residualCost(w, h int) (int64, int, error) {
	se := sc.se
	s := sc.scratch
	if !se.ts.fullRD {
		satd, err := transform.SATD(sc.tc, s.res, w, h)
		if err != nil {
			return 0, 0, err
		}
		return int64(satd), 0, nil
	}
	side := minInt(minInt(w, h), sbSize)
	evalTx := func(side int) (int64, int, error) {
		var total int64
		var bits int
		tile := s.res2
		for ty := 0; ty < h; ty += side {
			for tx := 0; tx < w; tx += side {
				for j := 0; j < side; j++ {
					copy(tile[j*side:(j+1)*side], s.res[(ty+j)*w+tx:(ty+j)*w+tx+side])
				}
				if err := transform.Forward(sc.tc, tile[:side*side], side, s.coef[:side*side]); err != nil {
					return 0, 0, err
				}
				if _, err := quant.Quantize(sc.tc, s.coef[:side*side], sc.pic.qindex, s.lev[:side*side]); err != nil {
					return 0, 0, err
				}
				bitsEst := rdo.BitsEstimate(s.lev[:side*side])
				if err := quant.Dequantize(sc.tc, s.lev[:side*side], sc.pic.qindex, s.coef[:side*side]); err != nil {
					return 0, 0, err
				}
				if err := transform.Inverse(sc.tc, s.coef[:side*side], side, tile[:side*side]); err != nil {
					return 0, 0, err
				}
				var sse int64
				for j := 0; j < side; j++ {
					for i := 0; i < side; i++ {
						d := int64(s.res[(ty+j)*w+tx+i] - tile[j*side+i])
						sse += d * d
					}
				}
				sc.tc.Op(trace.OpAVX, side*side/8+1)
				total += rdo.Cost(sse, bitsEst, sc.pic.lambda)
				bits += bitsEst
			}
		}
		return total, bits, nil
	}
	cost, bits, err := evalTx(side)
	if err != nil {
		return 0, 0, err
	}
	if se.ts.txSplitSearch && side >= 8 {
		// Also evaluate the split transform and keep the better cost —
		// AV1's transform-size search, doubling the transform work at the
		// slowest presets.
		c2, b2, err := evalTx(side / 2)
		if err != nil {
			return 0, 0, err
		}
		if c2 < cost {
			cost, bits = c2, b2
		}
	}
	return cost, bits, nil
}

// chooseLeafMode picks the best coding mode for the block (x, y, w, h).
func (sc *segCtx) chooseLeafMode(x, y, w, h int) (leafPlan, error) {
	se := sc.se
	s := sc.scratch
	tc := sc.tc
	tc.Enter(fnModeDec)
	defer tc.Leave()
	area := w * h
	best := leafPlan{x: x, y: y, w: w, h: h, cost: 1 << 60}
	// Candidate-management bookkeeping: context setup, neighbour fetch,
	// cost-array maintenance.
	tc.Op(trace.OpOther, 30)
	tc.Loads(pcModeBetter[blkClass(w)], trace.ScratchBase+0x6000, 4, 8, 8)
	tc.Stores(pcModeBetter[blkClass(w)], trace.ScratchBase+0x6000, 2, 8, 8)

	if !sc.pic.isKey && sc.prev != nil {
		// SKIP test at the inherited motion vector.
		pmv := sc.clampMV(sc.prevMV, x, y, w, h)
		sad, err := motion.SAD(tc, sc.pic.srcY, x, y, sc.prev.recY, x+int(pmv.X), y+int(pmv.Y), w, h)
		if err != nil {
			return best, err
		}
		isSkip := sad < sc.skipThreshold(area)
		tc.Branch(pcSkipTest[blkClass(w)], isSkip)
		if isSkip {
			best = leafPlan{x: x, y: y, w: w, h: h, skip: true, inter: true, mv: pmv,
				cost: int64(sad) + int64(sc.pic.sqrtL*2), bits: 2}
			return best, nil
		}

		// Motion refinement around the analysis MV.
		seed := sc.analysisMV(x, y)
		refs := []*picture{sc.prev}
		if se.ts.refs >= 2 && sc.prev2 != nil {
			refs = append(refs, sc.prev2)
		}
		for ri, ref := range refs {
			res, err := motion.Search(tc, se.ts.motionAlg, sc.pic.srcY, x, y, ref.recY, w, h, se.ts.refineRange+int16abs(seed), seed)
			if err != nil {
				return best, err
			}
			sub := motion.SubPel{}
			if se.ts.halfPel {
				if sub, err = sc.halfPelRefine(ref, res.MV, x, y, w, h); err != nil {
					return best, err
				}
			}
			if sub.X == 0 && sub.Y == 0 {
				extractPred(tc, ref.recY, x+int(res.MV.X), y+int(res.MV.Y), w, h, s.pred, s.vbase)
			} else if err := motion.InterpHalfPel(tc, ref.recY, x+int(res.MV.X), y+int(res.MV.Y), sub, w, h, s.pred); err != nil {
				return best, err
			}
			codec.Residual(tc, blockOf(sc.pic.srcY, x, y, w, h, s.rec), s.pred, w, h, s.res)
			dist, coefBits, err := sc.residualCost(w, h)
			if err != nil {
				return best, err
			}
			bitCost := mvBits(res.MV, sc.prevMV) + 3 + ri
			if se.ts.halfPel {
				bitCost += 2
			}
			cost := dist + int64(sc.rateMul()*float64(bitCost))
			better := cost < best.cost
			tc.Branch(pcModeBetter[blkClass(w)], better)
			if better {
				best = leafPlan{x: x, y: y, w: w, h: h, inter: true, mv: res.MV, ref2: ri == 1, sub: sub, cost: cost, bits: coefBits + bitCost}
			}
		}
	}

	// Intra candidates: always on keyframes; on inter frames only when
	// inter coding is struggling (or at exhaustive presets).
	tryIntra := sc.pic.isKey || w == h && (se.ts.fullRD || best.cost > int64(2*sc.pic.step*sc.pic.step*float64(area)))
	if !sc.pic.isKey {
		tc.Branch(pcIntraTry, tryIntra)
	}
	if tryIntra && w == h {
		nb := sc.gatherBorders(sc.pic.srcY, x, y, w) // open-loop borders during search
		cur := blockOf(sc.pic.srcY, x, y, w, h, s.rec)
		for _, m := range se.ts.intraModes {
			if err := intra.Predict(tc, m, nb, w, s.pred); err != nil {
				return best, err
			}
			codec.Residual(tc, cur, s.pred, w, h, s.res)
			dist, coefBits, err := sc.residualCost(w, h)
			if err != nil {
				return best, err
			}
			cost := dist + int64(sc.rateMul()*float64(5))
			better := cost < best.cost
			tc.Branch(pcModeBetter[blkClass(w)], better)
			if better {
				best = leafPlan{x: x, y: y, w: w, h: h, inter: false, mode: m, cost: cost, bits: coefBits + 5}
			}
		}
	}
	if best.cost == 1<<60 {
		return best, fmt.Errorf("encoders: no coding mode available for %dx%d block at (%d,%d)", w, h, x, y)
	}
	return best, nil
}

// rateMul returns the bit-cost multiplier matching the active
// distortion domain (SSE for full RD, SATD otherwise).
func (sc *segCtx) rateMul() float64 {
	if sc.se.ts.fullRD {
		return sc.pic.lambda
	}
	return sc.pic.sqrtL
}

func int16abs(mv codec.MV) int {
	a := int(mv.X)
	if a < 0 {
		a = -a
	}
	b := int(mv.Y)
	if b < 0 {
		b = -b
	}
	if b > a {
		a = b
	}
	return minInt(a, 8)
}

// analysisMV returns the open-loop MV of the grid cell containing the
// block center, clamped to the segment's own analysis region so that
// concurrently encoded segments never read each other's in-flight
// analysis results.
func (sc *segCtx) analysisMV(x, y int) codec.MV {
	gx := (x + analysisGrid/2) / analysisGrid
	gy := (y + analysisGrid/2) / analysisGrid
	if right := sc.segRightPx / analysisGrid; sc.segRightPx > 0 && gx >= right {
		gx = right - 1
	}
	if gx >= sc.se.gw {
		gx = sc.se.gw - 1
	}
	if top := sc.segTopPx / analysisGrid; gy < top {
		gy = top
	}
	if end := sc.segEndPx / analysisGrid; sc.segEndPx > 0 && gy >= end {
		gy = end - 1
	}
	if gy >= sc.se.gh {
		gy = sc.se.gh - 1
	}
	return sc.pic.mvGrid[gy*sc.se.gw+gx]
}

// halfPelRefine evaluates the three half-sample phases around an
// integer MV by plain SAD and returns the best phase (integer included).
// Phases whose interpolation would read outside the frame are skipped.
func (sc *segCtx) halfPelRefine(ref *picture, mv codec.MV, x, y, w, h int) (motion.SubPel, error) {
	se := sc.se
	s := sc.scratch
	tc := sc.tc
	cur := blockOf(sc.pic.srcY, x, y, w, h, s.rec)
	rx, ry := x+int(mv.X), y+int(mv.Y)
	best := motion.SubPel{}
	bestSAD := int32(1 << 30)
	for _, sub := range [4]motion.SubPel{{}, {X: 1}, {Y: 1}, {X: 1, Y: 1}} {
		if rx+w+int(sub.X) > se.aw || ry+h+int(sub.Y) > se.ah {
			continue
		}
		if err := motion.InterpHalfPel(tc, ref.recY, rx, ry, sub, w, h, s.pred2); err != nil {
			return best, err
		}
		var sad int32
		for i := 0; i < w*h; i++ {
			d := int32(cur[i]) - int32(s.pred2[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		tc.Op(trace.OpAVX, w*h/16+1)
		betterSub := sad < bestSAD
		tc.Branch(pcSkipTest[blkClass(w)], betterSub)
		if betterSub {
			bestSAD = sad
			best = sub
		}
	}
	return best, nil
}

// clampMV restricts mv so the w×h block at (x, y) stays inside the
// aligned frame.
func (sc *segCtx) clampMV(mv codec.MV, x, y, w, h int) codec.MV {
	se := sc.se
	mx, my := int(mv.X), int(mv.Y)
	if x+mx < 0 {
		mx = -x
	}
	if y+my < 0 {
		my = -y
	}
	if x+mx+w > se.aw {
		mx = se.aw - w - x
	}
	if y+my+h > se.ah {
		my = se.ah - h - y
	}
	return codec.MV{X: int16(mx), Y: int16(my)}
}

// blockOf copies the block into scratch and returns it (row-major,
// stride w). The copy is not separately instrumented; the consuming
// kernels report their own loads against the surface address.
func blockOf(surf codec.Surface, x, y, w, h int, buf []byte) []byte {
	for j := 0; j < h; j++ {
		copy(buf[j*w:(j+1)*w], surf.Pix[(y+j)*surf.Stride+x:(y+j)*surf.Stride+x+w])
	}
	return buf[:w*h]
}

// ---------------------------------------------------------------------
// Partition search.

func (sc *segCtx) shapeSignalBits(depth int) float64 { return float64(2 + depth) }

// searchPartition explores the family's partition shapes for the n×n
// block at (x, y) and returns the cheapest plan.
func (sc *segCtx) searchPartition(x, y, n, depth int) (*planNode, error) {
	se := sc.se
	sc.tc.Op(trace.OpOther, 14) // partition-context bookkeeping
	leaf, err := sc.chooseLeafMode(x, y, n, n)
	if err != nil {
		return nil, err
	}
	node := &planNode{shape: ShapeNone, x: x, y: y, n: n,
		leaves: []leafPlan{leaf},
		cost:   leaf.cost + int64(sc.rateMul()*sc.shapeSignalBits(depth))}

	// Early exit: cheap blocks do not justify exploring more shapes.
	// Full-RD presets exit when the whole block codes into a trivial
	// number of bits (bit costs shrink smoothly as CRF coarsens the
	// quantizer, which is how higher CRF mechanically removes
	// instructions, §4.2.1); SATD presets exit on a quantizer-scaled
	// distortion threshold.
	var early bool
	if se.ts.fullRD {
		early = leaf.skip || leaf.bits <= int(14*se.ts.earlyExitBias)
	} else {
		early = leaf.skip || node.cost < sc.earlyExitThreshold(n*n)
	}
	sc.tc.Branch(pcPartEarly[minInt(depth, 3)], early)
	if early || n <= se.ts.minBlock {
		return node, nil
	}

	consider := func(cand *planNode) {
		better := cand.cost < node.cost
		sc.tc.Branch(pcPartBetter[int(cand.shape)%len(pcPartBetter)], better)
		if better {
			node = cand
		}
	}

	// Rectangular (non-recursive) shapes; inter-only, so skipped on
	// keyframes.
	if !sc.pic.isKey {
		for _, shape := range se.ts.shapes {
			rects := shape.subBlocks(x, y, n)
			if rects == nil {
				continue
			}
			cand := &planNode{shape: shape, x: x, y: y, n: n}
			cand.cost = int64(sc.rateMul() * sc.shapeSignalBits(depth))
			ok := true
			for _, r := range rects {
				lf, err := sc.chooseLeafMode(r.x, r.y, r.w, r.h)
				if err != nil {
					return nil, err
				}
				if !lf.inter && lf.w != lf.h {
					ok = false
					break
				}
				cand.leaves = append(cand.leaves, lf)
				cand.cost += lf.cost
			}
			if ok {
				consider(cand)
			}
		}
	}

	// Recursive split.
	if se.ts.trySplit && n/2 >= se.ts.minBlock {
		cand := &planNode{shape: ShapeSplit, x: x, y: y, n: n}
		cand.cost = int64(sc.rateMul() * sc.shapeSignalBits(depth))
		half := n / 2
		for i, off := range [4][2]int{{0, 0}, {half, 0}, {0, half}, {half, half}} {
			child, err := sc.searchPartition(x+off[0], y+off[1], half, depth+1)
			if err != nil {
				return nil, err
			}
			cand.children[i] = child
			cand.cost += child.cost
		}
		consider(cand)
	}
	return node, nil
}

// ---------------------------------------------------------------------
// Commit: signal the chosen tree and write the reconstruction.

// shapeList returns the non-NONE shapes this configuration can signal,
// in canonical order (SPLIT first, then the toolset's rect shapes).
// NONE itself is carried by the partition flag.
func (se *streamEncoder) shapeList() []Shape {
	out := make([]Shape, 0, 1+len(se.ts.shapes))
	out = append(out, ShapeSplit)
	return append(out, se.ts.shapes...)
}

// shapeIndexBits returns how many flat bits signal a non-NONE shape
// choice: an index into shapeList.
func (se *streamEncoder) shapeIndexBits() int {
	n := bits.Len(uint(len(se.shapeList()) - 1))
	if n < 1 {
		n = 1
	}
	return n
}

func (sc *segCtx) commitNode(node *planNode, depth int) error {
	sc.shapeCount[node.shape]++
	isNone := node.shape == ShapeNone
	sc.enc.SetSite(pcSynPart)
	sc.enc.BitAdaptive(boolBit(!isNone), &sc.pm.partNone[minInt(depth, 3)])
	if !isNone {
		idx := -1
		for i, sh := range sc.se.shapeList() {
			if sh == node.shape {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("encoders: shape %v not in the configuration's shape list", node.shape)
		}
		sc.enc.Literal(uint32(idx), sc.se.shapeIndexBits())
	}
	sc.enc.SetSite(0)
	if node.shape == ShapeSplit {
		for _, child := range node.children {
			if child == nil {
				return fmt.Errorf("encoders: split node missing child at (%d,%d)", node.x, node.y)
			}
			if err := sc.commitNode(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range node.leaves {
		if err := sc.commitLeaf(&node.leaves[i]); err != nil {
			return err
		}
	}
	return nil
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// commitLeaf writes one leaf's syntax and reconstruction.
func (sc *segCtx) commitLeaf(lf *leafPlan) error {
	se := sc.se
	s := sc.scratch
	tc := sc.tc
	tc.Enter(fnCommit)
	defer tc.Leave()
	tc.Op(trace.OpOther, 26) // syntax bookkeeping
	tc.Stores(pcModeBetter[blkClass(lf.w)], trace.ScratchBase+0x6800, 8, 8, 8)

	if !sc.pic.isKey {
		sc.enc.SetSite(pcSynSkip)
		sc.enc.BitAdaptive(boolBit(lf.skip), &sc.pm.skip)
		sc.enc.SetSite(0)
		if lf.skip {
			// SKIP inherits the decoder-visible predictor: the last
			// committed MV, clamped — the search-time estimate may differ
			// slightly, which is the usual estimate/commit gap.
			mv := sc.clampMV(sc.prevMV, lf.x, lf.y, lf.w, lf.h)
			lf.mv = mv // the chroma pass inherits the committed motion
			extractPred(tc, sc.prev.recY, lf.x+int(mv.X), lf.y+int(mv.Y), lf.w, lf.h, s.pred, s.vbase)
			writeBlock(tc, sc.pic.recY, lf.x, lf.y, lf.w, lf.h, s.pred)
			sc.prevMV = mv
			sc.skipCount++
			return nil
		}
		sc.enc.SetSite(pcSynInter)
		sc.enc.BitAdaptive(boolBit(lf.inter), &sc.pm.interFlg)
		sc.enc.SetSite(0)
	}

	if lf.inter {
		writeMV(sc.enc, sc.pm, lf.mv, sc.prevMV)
		ref := sc.prev
		if lf.ref2 {
			sc.enc.Bit(1, entropy.DefaultProb)
			ref = sc.prev2
		} else if se.ts.refs >= 2 && sc.prev2 != nil {
			sc.enc.Bit(0, entropy.DefaultProb)
		}
		if se.ts.halfPel {
			sc.enc.Literal(uint32(lf.sub.X), 1)
			sc.enc.Literal(uint32(lf.sub.Y), 1)
		}
		if lf.sub.X == 0 && lf.sub.Y == 0 {
			extractPred(tc, ref.recY, lf.x+int(lf.mv.X), lf.y+int(lf.mv.Y), lf.w, lf.h, s.pred, s.vbase)
		} else if err := motion.InterpHalfPel(tc, ref.recY, lf.x+int(lf.mv.X), lf.y+int(lf.mv.Y), lf.sub, lf.w, lf.h, s.pred); err != nil {
			return err
		}
		sc.prevMV = lf.mv
	} else {
		sc.enc.SetSite(pcSynMode)
		sc.enc.Literal(uint32(lf.mode), 4)
		sc.enc.SetSite(0)
		if lf.w != lf.h {
			return fmt.Errorf("encoders: rectangular intra leaf %dx%d at (%d,%d)", lf.w, lf.h, lf.x, lf.y)
		}
		nb := sc.gatherBorders(sc.pic.recY, lf.x, lf.y, lf.w) // closed-loop borders at commit
		if err := intra.Predict(tc, lf.mode, nb, lf.w, s.pred); err != nil {
			return err
		}
	}

	cur := blockOf(sc.pic.srcY, lf.x, lf.y, lf.w, lf.h, s.rec)
	codec.Residual(tc, cur, s.pred, lf.w, lf.h, s.res)

	// Transform, quantize, code and reconstruct per square tile.
	side := minInt(minInt(lf.w, lf.h), sbSize)
	tile := s.res2
	for ty := 0; ty < lf.h; ty += side {
		for tx := 0; tx < lf.w; tx += side {
			for j := 0; j < side; j++ {
				copy(tile[j*side:(j+1)*side], s.res[(ty+j)*lf.w+tx:(ty+j)*lf.w+tx+side])
			}
			if err := transform.Forward(tc, tile[:side*side], side, s.coef[:side*side]); err != nil {
				return err
			}
			if _, err := quant.Quantize(tc, s.coef[:side*side], sc.pic.qindex, s.lev[:side*side]); err != nil {
				return err
			}
			if err := writeCoefBlock(sc.enc, sc.pm, s.lev[:side*side], side); err != nil {
				return err
			}
			if err := quant.Dequantize(tc, s.lev[:side*side], sc.pic.qindex, s.coef[:side*side]); err != nil {
				return err
			}
			if err := transform.Inverse(tc, s.coef[:side*side], side, tile[:side*side]); err != nil {
				return err
			}
			for j := 0; j < side; j++ {
				copy(s.res[(ty+j)*lf.w+tx:(ty+j)*lf.w+tx+side], tile[j*side:(j+1)*side])
			}
		}
	}
	codec.Reconstruct(tc, s.pred, s.res[:lf.w*lf.h], lf.w, lf.h, s.rec)
	writeBlock(tc, sc.pic.recY, lf.x, lf.y, lf.w, lf.h, s.rec)
	return nil
}

// writeBlock stores a reconstructed block into the surface.
func writeBlock(tc *trace.Ctx, surf codec.Surface, x, y, w, h int, src []byte) {
	for j := 0; j < h; j++ {
		copy(surf.Pix[(y+j)*surf.Stride+x:(y+j)*surf.Stride+x+w], src[j*w:(j+1)*w])
	}
	vec := (w + 31) / 32
	tc.Stores(pcPredCopy[blkClass(w)], surf.VAddr(x, y), h*vec, surf.Stride, minInt(w, 32))
}

// ---------------------------------------------------------------------
// Chroma: coded per superblock with the decision inherited from luma.

func (sc *segCtx) encodeChromaSB(sbx, sby int, lumaPlan *planNode) error {
	tc := sc.tc
	tc.Enter(fnChroma)
	defer tc.Leave()
	// Inherit the first inter leaf's MV, or intra DC.
	var mv codec.MV
	interSB := false
	var ref *picture
	var walk func(n *planNode)
	walk = func(n *planNode) {
		if interSB || n == nil {
			return
		}
		if n.shape == ShapeSplit {
			for _, c := range n.children {
				walk(c)
			}
			return
		}
		for _, lf := range n.leaves {
			if lf.inter {
				interSB = true
				mv = lf.mv
				if lf.ref2 {
					ref = sc.prev2
				} else {
					ref = sc.prev
				}
				return
			}
		}
	}
	walk(lumaPlan)

	const cb = sbSize / 2
	cx, cy := sbx*cb, sby*cb
	s := sc.scratch
	for pi, pl := range [2]struct {
		src codec.Surface
		rec codec.Surface
	}{{sc.pic.srcU, sc.pic.recU}, {sc.pic.srcV, sc.pic.recV}} {
		if interSB && ref != nil {
			cmv := sc.clampChromaMV(mv, cx, cy, cb)
			var refPlane codec.Surface
			if pi == 0 {
				refPlane = ref.recU
			} else {
				refPlane = ref.recV
			}
			extractPred(tc, refPlane, cx+int(cmv.X), cy+int(cmv.Y), cb, cb, s.pred, s.vbase)
		} else {
			nb := sc.gatherChromaBorders(pl.rec, cx, cy, cb)
			if err := intra.Predict(tc, intra.DC, nb, cb, s.pred); err != nil {
				return err
			}
		}
		cur := blockOf(pl.src, cx, cy, cb, cb, s.rec)
		codec.Residual(tc, cur, s.pred, cb, cb, s.res)
		if err := transform.Forward(tc, s.res[:cb*cb], cb, s.coef[:cb*cb]); err != nil {
			return err
		}
		if _, err := quant.Quantize(tc, s.coef[:cb*cb], sc.pic.qindex, s.lev[:cb*cb]); err != nil {
			return err
		}
		if err := writeCoefBlock(sc.enc, sc.pm, s.lev[:cb*cb], cb); err != nil {
			return err
		}
		if err := quant.Dequantize(tc, s.lev[:cb*cb], sc.pic.qindex, s.coef[:cb*cb]); err != nil {
			return err
		}
		if err := transform.Inverse(tc, s.coef[:cb*cb], cb, s.res[:cb*cb]); err != nil {
			return err
		}
		codec.Reconstruct(tc, s.pred, s.res[:cb*cb], cb, cb, s.rec)
		writeBlock(tc, pl.rec, cx, cy, cb, cb, s.rec)
	}
	return nil
}

// cdefApply is a light constrained directional filter over one
// reconstructed superblock, standing in for AV1's CDEF/loop-restoration
// stages. It is shared verbatim by the encoder's in-loop pass and the
// decoder, so reconstructions stay bit-identical.
func cdefApply(rec *video.Plane, x0, y0 int, step float64) {
	thresh := int32(3 + step/4)
	for y := y0 + 1; y < y0+sbSize-1 && y < rec.H-1; y += 2 {
		row := rec.Pix[y*rec.Stride:]
		above := rec.Pix[(y-1)*rec.Stride:]
		below := rec.Pix[(y+1)*rec.Stride:]
		for x := x0 + 1; x < x0+sbSize-1; x++ {
			c := int32(row[x])
			avg := (int32(above[x]) + int32(below[x]) + int32(row[x-1]) + int32(row[x+1]) + 2) / 4
			d := avg - c
			if d > thresh {
				d = thresh
			} else if d < -thresh {
				d = -thresh
			}
			row[x] = byte(c + d/2)
		}
	}
}

// cdefSB runs the shared CDEF kernel in-loop with instrumentation.
func (sc *segCtx) cdefSB(sbx, sby int) {
	tc := sc.tc
	rec := sc.pic.recY
	x0, y0 := sbx*sbSize, sby*sbSize
	cdefApply(rec.Plane, x0, y0, sc.pic.step)
	tc.Loads(pcDeblockCmp, rec.VAddr(x0, y0), sbSize*sbSize/16, 16, 16)
	tc.Stores(pcDeblockCmp, rec.VAddr(x0, y0), sbSize*sbSize/32, 16, 16)
	tc.Op(trace.OpAVX, sbSize*sbSize/16)
	tc.Op(trace.OpOther, sbSize*3)
	tc.Stores(pcDeblockCmp, rec.VAddr(x0, y0), sbSize, 16, 8)
	tc.Loop(pcDeblockCmp, sbSize/4)
}

func (sc *segCtx) clampChromaMV(mv codec.MV, cx, cy, cb int) codec.MV {
	se := sc.se
	mx, my := int(mv.X)/2, int(mv.Y)/2
	if cx+mx < 0 {
		mx = -cx
	}
	if cy+my < 0 {
		my = -cy
	}
	if cx+mx+cb > se.aw/2 {
		mx = se.aw/2 - cb - cx
	}
	if cy+my+cb > se.ah/2 {
		my = se.ah/2 - cb - cy
	}
	return codec.MV{X: int16(mx), Y: int16(my)}
}

func (sc *segCtx) gatherChromaBorders(surf codec.Surface, x, y, n int) intra.Neighbors {
	nb := intra.Neighbors{}
	if y > sc.segTopPx/2 {
		nb.HasTop = true
		nb.Top = make([]byte, n)
		copy(nb.Top, surf.Pix[(y-1)*surf.Stride+x:(y-1)*surf.Stride+x+n])
	}
	if x > sc.segLeftPx/2 {
		nb.HasLeft = true
		nb.Left = make([]byte, n)
		for j := 0; j < n; j++ {
			nb.Left[j] = surf.Pix[(y+j)*surf.Stride+x-1]
		}
	}
	return nb
}

// ---------------------------------------------------------------------
// Deblocking filter: smooths 8-aligned block edges of the luma recon.
// It is real reconstruction work (it changes the reference the next
// frame predicts from) and the parallelizable helper workload of the
// x265 threading model.

func deblockRows(tc *trace.Ctx, rec codec.Surface, y0, y1 int, step float64) {
	tc.Enter(fnDeblock)
	defer tc.Leave()
	thresh := int32(4 + step/2)
	// Vertical edges.
	for y := y0; y < y1; y++ {
		row := rec.Pix[y*rec.Stride:]
		for x := 8; x < rec.W; x += 8 {
			a, b := int32(row[x-1]), int32(row[x])
			d := a - b
			if d < 0 {
				d = -d
			}
			strong := d < thresh && d > 0
			tc.Branch(pcDeblockCmp, strong)
			if strong {
				row[x-1] = byte((3*a + b + 2) / 4)
				row[x] = byte((a + 3*b + 2) / 4)
			}
		}
		tc.Loads(pcDeblockCmp, rec.VAddr(0, y), rec.W/32+1, 32, 32)
		tc.Op(trace.OpAVX, rec.W/16+1)
	}
	// Horizontal edges.
	for y := y0; y < y1; y++ {
		if y%8 != 0 || y == 0 {
			continue
		}
		rowA := rec.Pix[(y-1)*rec.Stride:]
		rowB := rec.Pix[y*rec.Stride:]
		for x := 0; x < rec.W; x++ {
			a, b := int32(rowA[x]), int32(rowB[x])
			d := a - b
			if d < 0 {
				d = -d
			}
			if d < thresh && d > 0 {
				rowA[x] = byte((3*a + b + 2) / 4)
				rowB[x] = byte((a + 3*b + 2) / 4)
			}
		}
		tc.Loads(pcDeblockCmp, rec.VAddr(0, y-1), rec.W/16+2, 32, 32)
		tc.Stores(pcDeblockCmp, rec.VAddr(0, y-1), rec.W/16+2, 32, 32)
		tc.Op(trace.OpAVX, rec.W/8+1)
		tc.Branch(pcDeblockCmp, true)
	}
}
