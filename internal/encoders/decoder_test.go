package encoders

import (
	"context"
	"testing"

	"vcprof/internal/video"
)

// assertFramesEqual compares two frame sequences sample-exactly.
func assertFramesEqual(t *testing.T, what string, a, b []*video.Frame) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d frames vs %d", what, len(a), len(b))
	}
	for i := range a {
		for _, pl := range []struct {
			name   string
			pa, pb *video.Plane
		}{
			{"Y", a[i].Y, b[i].Y}, {"U", a[i].U, b[i].U}, {"V", a[i].V, b[i].V},
		} {
			name, pa, pb := pl.name, pl.pa, pl.pb
			if pa.W != pb.W || pa.H != pb.H {
				t.Fatalf("%s: frame %d %s size %dx%d vs %dx%d", what, i, name, pa.W, pa.H, pb.W, pb.H)
			}
			for y := 0; y < pa.H; y++ {
				ra, rb := pa.Row(y), pb.Row(y)
				for x := range ra {
					if ra[x] != rb[x] {
						t.Fatalf("%s: frame %d %s (%d,%d): %d vs %d", what, i, name, x, y, ra[x], rb[x])
					}
				}
			}
		}
	}
}

// TestDecodeRoundTripAllFamilies is the end-to-end bitstream check: the
// decoder's output must be bit-identical to the encoder's own
// reconstruction for every family.
func TestDecodeRoundTripAllFamilies(t *testing.T) {
	clip := testClip(t, "game1", 4, 16)
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			enc := MustNew(fam)
			_, crfHi := enc.CRFRange()
			res, err := enc.Encode(context.Background(), clip, Options{CRF: crfHi / 2, Preset: midPresetFor(enc), KeepBitstream: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Bitstream) == 0 {
				t.Fatal("no bitstream assembled")
			}
			dec, err := DecodeBitstream(res.Bitstream)
			if err != nil {
				t.Fatal(err)
			}
			assertFramesEqual(t, string(fam), res.Recon, dec)
		})
	}
}

func TestDecodeRoundTripOperatingPoints(t *testing.T) {
	// Cover keyframe intervals, slow presets (full shape search, two
	// references, transform-size search) and very coarse quantizers.
	clip := testClip(t, "hall", 5, 16)
	enc := MustNew(SVTAV1)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"slow-preset", Options{CRF: 20, Preset: 1, KeepBitstream: true}},
		{"coarse-q", Options{CRF: 63, Preset: 8, KeepBitstream: true}},
		{"keyed", Options{CRF: 40, Preset: 6, KeyInterval: 2, KeepBitstream: true}},
		{"threaded", Options{CRF: 40, Preset: 6, Threads: 4, KeepBitstream: true}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := enc.Encode(context.Background(), clip, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeBitstream(res.Bitstream)
			if err != nil {
				t.Fatal(err)
			}
			assertFramesEqual(t, tc.name, res.Recon, dec)
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBitstream(nil); err == nil {
		t.Error("accepted empty data")
	}
	if _, err := DecodeBitstream([]byte("NOTABITSTREAMATALL")); err == nil {
		t.Error("accepted bad magic")
	}
	clip := testClip(t, "desktop", 2, 16)
	res, err := MustNew(X264).Encode(context.Background(), clip, Options{CRF: 30, Preset: 4, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	// Truncation at various points must error, not panic.
	for _, cut := range []int{5, 10, 20, len(res.Bitstream) / 2, len(res.Bitstream) - 3} {
		if cut >= len(res.Bitstream) {
			continue
		}
		if _, err := DecodeBitstream(res.Bitstream[:cut]); err == nil {
			t.Errorf("accepted bitstream truncated at %d", cut)
		}
	}
	// Trailing junk must be flagged.
	if _, err := DecodeBitstream(append(append([]byte{}, res.Bitstream...), 1, 2, 3)); err == nil {
		t.Error("accepted trailing bytes")
	}
	// Corrupt version byte.
	bad := append([]byte{}, res.Bitstream...)
	bad[4] = 99
	if _, err := DecodeBitstream(bad); err == nil {
		t.Error("accepted bad version")
	}
}

func TestBitstreamOmittedByDefault(t *testing.T) {
	clip := testClip(t, "desktop", 2, 16)
	res, err := MustNew(X264).Encode(context.Background(), clip, Options{CRF: 30, Preset: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitstream != nil {
		t.Error("bitstream assembled without KeepBitstream")
	}
}

func TestBitstreamSizeMatchesAccounting(t *testing.T) {
	// The container must be close to the accounted frame bytes (headers
	// are counted per frame; the sequence header adds a few bytes).
	clip := testClip(t, "game2", 3, 16)
	res, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{CRF: 40, Preset: 6, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bitstream) > res.Bytes+64 || len(res.Bitstream) < res.Bytes/2 {
		t.Errorf("container %d bytes vs accounted %d", len(res.Bitstream), res.Bytes)
	}
}
