package encoders

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"vcprof/internal/codec/entropy"
	"vcprof/internal/trace"
)

// The threading architecture of each encoder family is expressed as an
// explicit task graph: tasks are the units its real scheduler
// dispatches (SVT-AV1 segments, libaom tiles, x264 frame rows under a
// reconstruction watermark, the x265 master chain), and edges are the
// data dependences between them. The graph serves two executors:
//
//   - the live executor runs it with a goroutine worker pool
//     (Options.Threads), giving real parallel encodes on multicore
//     hosts; and
//   - the profiling executor runs it serially, measuring each task's
//     dynamic instruction cost, from which Schedule.Makespan computes
//     the runtime on any number of simulated cores.
//
// The second path is the substitution for the paper's 12-core Xeon
// thread-scalability measurements (§4.6): speedups derive from the
// measured work distribution and the dependence structure rather than
// from host wall-clock, so they are deterministic and reproducible on
// any machine, including single-core CI runners.

// task is one schedulable unit. pic, when set, is the picture the
// task's work is attributed to for the per-frame stage breakdown.
// cost is the builder's static work estimate (roughly superblocks
// scaled by preset effort), used only to steer external schedulers.
type task struct {
	name string
	deps []int
	pic  *picture
	cost uint64
	run  func(worker int, tc *trace.Ctx) error
}

// graph is a DAG of tasks in insertion order (a valid topological
// order: builders only reference earlier tasks).
type graph struct {
	tasks []task
}

// add appends a task attributed to pic and returns its id. All deps
// must already exist.
func (g *graph) add(pic *picture, name string, deps []int, cost uint64, run func(worker int, tc *trace.Ctx) error) int {
	id := len(g.tasks)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("encoders: task %q depends on invalid task %d", name, d))
		}
	}
	g.tasks = append(g.tasks, task{name: name, deps: append([]int(nil), deps...), pic: pic, cost: cost, run: run})
	return id
}

// sbCost is the static per-superblock work estimate of closed-loop
// encode tasks at the stream's preset: slower presets search more.
func (se *streamEncoder) sbCost() uint64 {
	return uint64(4 + int(12*se.spec.effort(se.opts.Preset)))
}

// runTask executes one task on tc, snapshotting the context's
// per-stage instruction counters around the body and folding the delta
// into the task's picture. Each task runs wholly on one worker's
// context, so the delta is exact; per-frame sums are therefore
// independent of which worker ran what — the property that keeps the
// obs frame spans byte-identical across worker counts.
func runTask(t *task, worker int, tc *trace.Ctx) error {
	if t.pic == nil || tc == nil {
		return t.run(worker, tc)
	}
	before := tc.StageCounts()
	err := t.run(worker, tc)
	delta := tc.StageCounts().Sub(before)
	t.pic.addStages(&delta)
	return err
}

// workerSet holds the per-worker instrumentation contexts and scratch
// buffers shared by all scheduling strategies.
type workerSet struct {
	n       int
	ctxs    []*trace.Ctx
	scratch []*workScratch
}

func newWorkerSet(se *streamEncoder, opts Options) (*workerSet, error) {
	n := opts.Threads
	if n < 1 {
		n = 1
	}
	ws := &workerSet{n: n, ctxs: make([]*trace.Ctx, n), scratch: make([]*workScratch, n)}
	for i := 0; i < n; i++ {
		if opts.NewWorkerCtx != nil {
			ws.ctxs[i] = opts.NewWorkerCtx(i)
		}
		s, err := newWorkScratch(se.as, fmt.Sprintf("w%d", i))
		if err != nil {
			return nil, err
		}
		ws.scratch[i] = s
	}
	return ws, nil
}

// runLive executes the graph on the worker pool. With one worker it
// runs inline in topological order. Cancelling ctx stops execution at
// the next task boundary: tasks are sub-frame units (rows, segments,
// tiles), so an encode aborts between frames at the latest.
func runLive(ctx context.Context, g *graph, ws *workerSet) error {
	n := len(g.tasks)
	if n == 0 {
		return ctx.Err()
	}
	if ws.n == 1 {
		for i := range g.tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(&g.tasks[i], 0, ws.ctxs[0]); err != nil {
				return fmt.Errorf("task %s: %w", g.tasks[i].name, err)
			}
		}
		return nil
	}
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, t := range g.tasks {
		indeg[i] = len(t.deps)
		for _, d := range t.deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	ready := make(chan int, n)
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
		done     int
	)
	for i, d := range indeg {
		if d == 0 {
			ready <- i
		}
	}
	complete := func(id int) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if done == n {
			close(ready)
			return
		}
		for _, dep := range dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready <- dep
			}
		}
	}
	for w := 0; w < ws.n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for id := range ready {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if !stop {
					err := ctx.Err()
					if err == nil {
						err = runTask(&g.tasks[id], worker, ws.ctxs[worker])
						if err != nil {
							err = fmt.Errorf("task %s: %w", g.tasks[id].name, err)
						}
					}
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
				complete(id)
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// runProfiled executes the graph serially on worker 0, measuring each
// task's instruction cost with a private context that is then merged
// into the worker context (if any). Cancelling ctx aborts between
// tasks, like runLive.
func runProfiled(ctx context.Context, g *graph, ws *workerSet) ([]uint64, error) {
	costs := make([]uint64, len(g.tasks))
	for i := range g.tasks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tc := trace.New()
		if err := runTask(&g.tasks[i], 0, tc); err != nil {
			return nil, fmt.Errorf("task %s: %w", g.tasks[i].name, err)
		}
		costs[i] = tc.Total()
		if ws.ctxs[0] != nil {
			ws.ctxs[0].Merge(tc)
		}
	}
	return costs, nil
}

// ---------------------------------------------------------------------
// Shard handoff: the external-executor surface.

// TaskGraph is the read-only view of an encode's task graph handed to
// an external Executor: tasks in topological numbering (deps always
// precede their task), static cost estimates, and a Run that executes
// one task on behalf of the given executor worker. Run may be called
// concurrently for independent tasks; the graph enforces its own
// instrumentation merging, so any schedule honoring Deps yields
// byte-identical results.
type TaskGraph interface {
	NumTasks() int
	Deps(i int) []int
	Cost(i int) uint64
	Label(i int) string
	Run(ctx context.Context, task, worker int) error
}

// Executor schedules a TaskGraph to completion. Workers reports the
// executor's worker-id range: Run worker arguments are in [0,
// Workers()). RunGraph must not return while any task is executing.
type Executor interface {
	Workers() int
	RunGraph(ctx context.Context, g TaskGraph) error
}

// shardGraph adapts a built encode graph to the TaskGraph surface.
// Each task runs with a private trace context that is merged into the
// worker set's context slot chosen by task index — a schedule-free
// assignment, so Insts, Mix and WorkerInsts are identical no matter
// which executor worker ran what. Frame stage attribution stays exact
// because runTask snapshots the private context around the body.
type shardGraph struct {
	g  *graph
	ws *workerSet
	mu []sync.Mutex // one per merge slot; nil when uninstrumented
}

func (s *shardGraph) NumTasks() int      { return len(s.g.tasks) }
func (s *shardGraph) Deps(i int) []int   { return s.g.tasks[i].deps }
func (s *shardGraph) Cost(i int) uint64  { return s.g.tasks[i].cost }
func (s *shardGraph) Label(i int) string { return s.g.tasks[i].name }

func (s *shardGraph) Run(ctx context.Context, i, worker int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if worker < 0 || worker >= len(s.ws.scratch) {
		return fmt.Errorf("encoders: executor worker %d outside scratch range %d", worker, len(s.ws.scratch))
	}
	t := &s.g.tasks[i]
	var tc *trace.Ctx
	if s.mu != nil {
		tc = trace.New()
	}
	err := runTask(t, worker, tc)
	if tc != nil {
		slot := i % len(s.ws.ctxs)
		s.mu[slot].Lock()
		s.ws.ctxs[slot].Merge(tc)
		s.mu[slot].Unlock()
	}
	if err != nil {
		return fmt.Errorf("task %s: %w", t.name, err)
	}
	return nil
}

// ensureSlots grows the worker set's scratch array to n executor
// workers. Instrumentation context slots are NOT grown: merge targets
// stay keyed by task index modulo the configured thread count, which
// keeps counted results independent of the executor's width.
func (ws *workerSet) ensureSlots(se *streamEncoder, n int) error {
	for len(ws.scratch) < n {
		s, err := newWorkScratch(se.as, fmt.Sprintf("w%d", len(ws.scratch)))
		if err != nil {
			return err
		}
		ws.scratch = append(ws.scratch, s)
	}
	return nil
}

// runSharded executes the graph on an external executor instead of the
// built-in pool.
func runSharded(ctx context.Context, se *streamEncoder, g *graph, ws *workerSet, ex Executor) error {
	if err := ws.ensureSlots(se, ex.Workers()); err != nil {
		return err
	}
	sg := &shardGraph{g: g, ws: ws}
	if ws.ctxs[0] != nil {
		sg.mu = make([]sync.Mutex, len(ws.ctxs))
	}
	return ex.RunGraph(ctx, sg)
}

// Schedule is a measured task graph: per-task instruction costs plus
// dependences, ready for makespan simulation on any core count.
type Schedule struct {
	Costs []uint64
	Deps  [][]int
	Names []string
}

// TotalWork returns the serial work (sum of task costs).
func (s *Schedule) TotalWork() uint64 {
	var t uint64
	for _, c := range s.Costs {
		t += c
	}
	return t
}

// Makespan list-schedules the graph greedily on the given core count
// and returns the finish time in work units along with each core's busy
// time. Ready tasks are started in id order on the earliest-free core,
// the classic work-conserving list scheduler.
func (s *Schedule) Makespan(cores int) (uint64, []uint64, error) {
	n := len(s.Costs)
	if cores < 1 {
		return 0, nil, fmt.Errorf("encoders: invalid core count %d", cores)
	}
	if n == 0 {
		return 0, make([]uint64, cores), nil
	}
	finish := make([]uint64, n)
	coreFree := make([]uint64, cores)
	coreBusy := make([]uint64, cores)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, deps := range s.Deps {
		indeg[i] = len(deps)
		for _, d := range deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	// readyAt[i]: when all deps are done.
	readyAt := make([]uint64, n)
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	scheduled := 0
	for scheduled < n {
		if len(ready) == 0 {
			return 0, nil, fmt.Errorf("encoders: schedule deadlock (cycle in task graph)")
		}
		sort.Ints(ready)
		next := ready
		ready = nil
		for _, id := range next {
			// Earliest-free core (stable tie-break on index).
			core := 0
			for c := 1; c < cores; c++ {
				if coreFree[c] < coreFree[core] {
					core = c
				}
			}
			start := coreFree[core]
			if readyAt[id] > start {
				start = readyAt[id]
			}
			end := start + s.Costs[id]
			finish[id] = end
			coreFree[core] = end
			coreBusy[core] += s.Costs[id]
			scheduled++
			for _, dep := range dependents[id] {
				indeg[dep]--
				if readyAt[dep] < end {
					readyAt[dep] = end
				}
				if indeg[dep] == 0 {
					ready = append(ready, dep)
				}
			}
		}
	}
	var span uint64
	for _, f := range finish {
		if f > span {
			span = f
		}
	}
	return span, coreBusy, nil
}

// Speedup returns serial work divided by the makespan on the given
// number of cores.
func (s *Schedule) Speedup(cores int) (float64, error) {
	span, _, err := s.Makespan(cores)
	if err != nil {
		return 0, err
	}
	if span == 0 {
		return 1, nil
	}
	return float64(s.TotalWork()) / float64(span), nil
}

// Imbalance returns the effective serialization on the given cores:
// core count divided by achieved speedup. 1.0 means every core is busy
// for the whole run; a value near the core count means one core does
// essentially all the work — the x265 master-thread signature the paper
// infers in §4.6.
func (s *Schedule) Imbalance(cores int) (float64, error) {
	sp, err := s.Speedup(cores)
	if err != nil {
		return 0, err
	}
	if sp <= 0 {
		return float64(cores), nil
	}
	return float64(cores) / sp, nil
}

// ---------------------------------------------------------------------
// Shared graph-building helpers.

// sbRows returns the number of superblock rows of the aligned frame.
func (se *streamEncoder) sbRows() int { return se.ah / sbSize }

// sbCols returns the number of superblock columns.
func (se *streamEncoder) sbCols() int { return se.aw / sbSize }

// refsFor returns the reference pictures of pic (nil on keyframes).
func (se *streamEncoder) refsFor(pic *picture) (prev, prev2 *picture) {
	if pic.isKey || pic.index == 0 {
		return nil, nil
	}
	prev = se.pics[pic.index-1]
	if pic.index >= 2 && se.ts.refs >= 2 {
		prev2 = se.pics[pic.index-2]
	}
	return prev, prev2
}

// segRect is one entropy partition: SB rows [row0,row1) × cols
// [col0,col1).
type segRect struct{ row0, row1, col0, col1 int }

// encodeSegment encodes one rectangular entropy partition of pic and
// returns the partition's finished bitstream.
func (se *streamEncoder) encodeSegment(worker int, tc *trace.Ctx, ws *workerSet, pic *picture, r segRect) ([]byte, error) {
	prev, prev2 := se.refsFor(pic)
	sc := &segCtx{
		se: se, pic: pic, prev: prev, prev2: prev2,
		enc:        entropy.NewEncoder(tc, se.streamVBase(pic, r.row0, r.col0)),
		pm:         newProbModel(),
		tc:         tc,
		scratch:    ws.scratch[worker],
		segTopPx:   r.row0 * sbSize,
		segEndPx:   r.row1 * sbSize,
		segLeftPx:  r.col0 * sbSize,
		segRightPx: r.col1 * sbSize,
	}
	for row := r.row0; row < r.row1; row++ {
		for c := r.col0; c < r.col1; c++ {
			node, err := sc.searchPartition(c*sbSize, row*sbSize, sbSize, 0)
			if err != nil {
				return nil, err
			}
			if err := sc.commitNode(node, 0); err != nil {
				return nil, err
			}
			if err := sc.encodeChromaSB(c, row, node); err != nil {
				return nil, err
			}
			sc.cdefSB(c, row)
		}
	}
	pic.mergeStats(sc)
	return sc.enc.Finish(), nil
}

// streamVBase returns a virtual address for a segment's output stream.
func (se *streamEncoder) streamVBase(pic *picture, row0, col0 int) uint64 {
	r, err := se.as.Alloc(fmt.Sprintf("stream/p%d/r%d/c%d", pic.index, row0, col0), 1<<20)
	if err != nil {
		return 0
	}
	return r.Base
}

// frameOverheadBytes is the fixed per-frame header cost, plus a
// per-partition length field.
const (
	frameOverheadBytes   = 16
	segmentOverheadBytes = 4
)

// buildGraph dispatches to the family's threading architecture.
func (se *streamEncoder) buildGraph(ws *workerSet) (*graph, error) {
	switch se.spec.sched {
	case schedSegments:
		return se.buildSegments(ws), nil
	case schedTiles:
		return se.buildTiles(ws), nil
	case schedWavefront:
		return se.buildFrameParallel(ws), nil
	case schedMaster:
		return se.buildMaster(ws), nil
	}
	return nil, fmt.Errorf("encoders: unknown scheduler %d", se.spec.sched)
}

// analysisBand is the grid-row granularity of analysis tasks.
const analysisBand = 4

// addAnalysisTasks appends open-loop analysis tasks for every inter
// picture (no dependences: analysis reads source frames only) and
// returns the task ids per picture index.
func (se *streamEncoder) addAnalysisTasks(g *graph) [][]int {
	byPic := make([][]int, len(se.pics))
	for _, pic := range se.pics {
		if pic.index == 0 {
			continue
		}
		pic := pic
		for gy := 0; gy < se.gh; gy += analysisBand {
			gy := gy
			end := gy + analysisBand
			if end > se.gh {
				end = se.gh
			}
			id := g.add(pic, fmt.Sprintf("analyze/p%d/g%d", pic.index, gy), nil,
				uint64((end-gy)*se.gw+3)/4,
				func(w int, tc *trace.Ctx) error {
					return se.analyzeRows(tc, pic, se.pics[pic.index-1], gy, end, 0, se.gw)
				})
			byPic[pic.index] = append(byPic[pic.index], id)
		}
	}
	return byPic
}

// ---------------------------------------------------------------------
// SVT-AV1: segment parallelism. Analysis of all frames is fully
// parallel (the picture-analysis processes of SVT's pipeline); the
// closed-loop encode of each frame splits into independent rectangular
// segments (SVT disables prediction across segment borders exactly so
// they can run concurrently); frames chain through the deblocked
// reference.
func (se *streamEncoder) buildSegments(ws *workerSet) *graph {
	g := &graph{}
	analysis := se.addAnalysisTasks(g)
	rows, cols := se.sbRows(), se.sbCols()
	// Two column chunks per SB row when the frame is wide enough.
	colChunks := 1
	if cols >= 8 {
		colChunks = 2
	}
	var prevDeblock []int
	for _, pic := range se.pics {
		pic := pic
		pic.initSegments(rows * colChunks)
		var segIDs []int
		segAt := make([][]int, rows)
		for r := 0; r < rows; r++ {
			r := r
			for cc := 0; cc < colChunks; cc++ {
				cc := cc
				rect := segRect{row0: r, row1: r + 1,
					col0: cc * cols / colChunks, col1: (cc + 1) * cols / colChunks}
				deps := append([]int(nil), analysis[pic.index]...)
				deps = append(deps, prevDeblock...)
				slot := r*colChunks + cc
				pic.segRects[slot] = rect
				id := g.add(pic, fmt.Sprintf("seg/p%d/r%d/c%d", pic.index, r, cc), deps,
					uint64((rect.row1-rect.row0)*(rect.col1-rect.col0))*se.sbCost(),
					func(w int, tc *trace.Ctx) error {
						data, err := se.encodeSegment(w, tc, ws, pic, rect)
						pic.segStreams[slot] = data
						return err
					})
				segIDs = append(segIDs, id)
				segAt[r] = append(segAt[r], id)
			}
		}
		var deblockIDs []int
		for r := 0; r < rows; r++ {
			r := r
			deps := append([]int(nil), segAt[r]...)
			if r > 0 {
				deps = append(deps, segAt[r-1]...)
				// Boundary rows are touched by both adjacent deblock
				// passes; chain them so the filter order is fixed.
				deps = append(deps, deblockIDs[r-1])
			}
			if r+1 < rows {
				deps = append(deps, segAt[r+1]...)
			}
			id := g.add(pic, fmt.Sprintf("deblock/p%d/r%d", pic.index, r), deps,
				uint64(cols),
				func(w int, tc *trace.Ctx) error {
					deblockRows(tc, pic.recY, r*sbSize, (r+1)*sbSize, pic.step)
					return nil
				})
			deblockIDs = append(deblockIDs, id)
		}
		fin := g.add(pic, fmt.Sprintf("finalize/p%d", pic.index), segIDs, 1,
			func(w int, tc *trace.Ctx) error {
				pic.finalizeBytes()
				return se.rateUpdate(pic)
			})
		prevDeblock = append(deblockIDs, fin)
	}
	return g
}

// ---------------------------------------------------------------------
// libaom / libvpx-vp9: tile parallelism. A fixed 2×2 tile grid bounds
// parallelism near 4x regardless of core count; each tile runs its own
// analysis and encode, and frames chain through the deblocked reference.
func (se *streamEncoder) buildTiles(ws *workerSet) *graph {
	g := &graph{}
	rows, cols := se.sbRows(), se.sbCols()
	tileRows := 2
	if rows < 2 {
		tileRows = 1
	}
	tileCols := 2
	if cols < 2 {
		tileCols = 1
	}
	var prevPicDone []int
	for _, pic := range se.pics {
		pic := pic
		nTiles := tileRows * tileCols
		pic.initSegments(nTiles)
		var tileIDs []int
		for tr := 0; tr < tileRows; tr++ {
			for tcI := 0; tcI < tileCols; tcI++ {
				rect := segRect{
					row0: tr * rows / tileRows, row1: (tr + 1) * rows / tileRows,
					col0: tcI * cols / tileCols, col1: (tcI + 1) * cols / tileCols,
				}
				slot := tr*tileCols + tcI
				pic.segRects[slot] = rect
				id := g.add(pic, fmt.Sprintf("tile/p%d/t%d", pic.index, slot), prevPicDone,
					uint64((rect.row1-rect.row0)*(rect.col1-rect.col0))*(se.sbCost()+1),
					func(w int, tc *trace.Ctx) error {
						if pic.index > 0 {
							gy0 := rect.row0 * sbSize / analysisGrid
							gy1 := rect.row1 * sbSize / analysisGrid
							gx0 := rect.col0 * sbSize / analysisGrid
							gx1 := rect.col1 * sbSize / analysisGrid
							if err := se.analyzeRows(tc, pic, se.pics[pic.index-1], gy0, gy1, gx0, gx1); err != nil {
								return err
							}
						}
						data, err := se.encodeSegment(w, tc, ws, pic, rect)
						pic.segStreams[slot] = data
						return err
					})
				tileIDs = append(tileIDs, id)
			}
		}
		fin := g.add(pic, fmt.Sprintf("finalize/p%d", pic.index), tileIDs,
			uint64(rows*cols)+1,
			func(w int, tc *trace.Ctx) error {
				deblockRows(tc, pic.recY, 0, se.ah, pic.step)
				pic.finalizeBytes()
				return se.rateUpdate(pic)
			})
		prevPicDone = []int{fin}
	}
	return g
}

// ---------------------------------------------------------------------
// x264: frame-level parallelism with a reconstruction-row watermark.
// Each frame's superblock rows form a chain; row r of frame i also
// depends on row r+lag of frame i−1, where lag covers the downward
// motion-search reach — x264's classic threading design.
func (se *streamEncoder) buildFrameParallel(ws *workerSet) *graph {
	g := &graph{}
	rows, cols := se.sbRows(), se.sbCols()
	mvReach := se.ts.motionRange + se.ts.refineRange + 16
	lag := (mvReach + sbSize - 1) / sbSize
	type picState struct {
		sc     *segCtx
		rowIDs []int
	}
	states := make([]*picState, len(se.pics))
	for _, pic := range se.pics {
		pic := pic
		st := &picState{}
		states[pic.index] = st
		for r := 0; r < rows; r++ {
			r := r
			var deps []int
			if r > 0 {
				deps = append(deps, st.rowIDs[r-1])
			}
			if pic.index > 0 {
				refRow := r + lag
				if refRow >= rows || se.rc != nil {
					// ABR serializes frames: the quantizer for this frame
					// is only known once the previous frame finalizes.
					refRow = rows - 1
				}
				deps = append(deps, states[pic.index-1].rowIDs[refRow])
			}
			id := g.add(pic, fmt.Sprintf("row/p%d/r%d", pic.index, r), deps,
				uint64(cols)*(se.sbCost()+2),
				func(w int, tc *trace.Ctx) error {
					if st.sc == nil {
						prev, prev2 := se.refsFor(pic)
						//lint:ignore shardpure row tasks of one frame share st through a dependency chain (row r waits on row r-1), so exactly one task initializes sc — never concurrent
						st.sc = &segCtx{
							se: se, pic: pic, prev: prev, prev2: prev2,
							enc:      entropy.NewEncoder(tc, se.streamVBase(pic, 0, 0)),
							pm:       newProbModel(),
							scratch:  ws.scratch[w],
							segTopPx: 0, segEndPx: se.ah, segLeftPx: 0, segRightPx: se.aw,
						}
					}
					sc := st.sc
					sc.tc = tc
					sc.enc.SetCtx(tc)
					sc.scratch = ws.scratch[w]
					if pic.index > 0 {
						gy0 := r * sbSize / analysisGrid
						gy1 := (r + 1) * sbSize / analysisGrid
						if err := se.analyzeRows(tc, pic, se.pics[pic.index-1], gy0, gy1, 0, se.gw); err != nil {
							return err
						}
					}
					for c := 0; c < cols; c++ {
						node, err := sc.searchPartition(c*sbSize, r*sbSize, sbSize, 0)
						if err != nil {
							return err
						}
						if err := sc.commitNode(node, 0); err != nil {
							return err
						}
						if err := sc.encodeChromaSB(c, r, node); err != nil {
							return err
						}
						sc.cdefSB(c, r)
					}
					// Deblock the region that can no longer change.
					if r > 0 {
						deblockRows(tc, pic.recY, r*sbSize-8, r*sbSize+sbSize-8, pic.step)
					} else {
						deblockRows(tc, pic.recY, 0, sbSize-8, pic.step)
					}
					if r == rows-1 {
						deblockRows(tc, pic.recY, se.ah-8, se.ah, pic.step)
						pic.mergeStats(sc)
						pic.initSegments(1)
						pic.segRects[0] = segRect{row0: 0, row1: rows, col0: 0, col1: cols}
						pic.segStreams[0] = sc.enc.Finish()
						pic.finalizeBytes()
						return se.rateUpdate(pic)
					}
					return nil
				})
			st.rowIDs = append(st.rowIDs, id)
		}
	}
	return g
}

// ---------------------------------------------------------------------
// x265: a master chain performs the whole closed-loop encode serially;
// the open-loop analysis (lookahead) of future frames is the only work
// other cores can absorb. That division caps the speedup near the
// lookahead's share of total work and concentrates everything else on
// one core — the imbalance signature the paper reads from x265.
func (se *streamEncoder) buildMaster(ws *workerSet) *graph {
	g := &graph{}
	analysis := se.addAnalysisTasks(g)
	prev := -1
	for _, pic := range se.pics {
		pic := pic
		deps := append([]int(nil), analysis[pic.index]...)
		if prev >= 0 {
			deps = append(deps, prev)
		}
		prev = g.add(pic, fmt.Sprintf("encode/p%d", pic.index), deps,
			uint64(se.sbRows()*se.sbCols())*(se.sbCost()+1),
			func(w int, tc *trace.Ctx) error {
				rect := segRect{row0: 0, row1: se.sbRows(), col0: 0, col1: se.sbCols()}
				data, err := se.encodeSegment(w, tc, ws, pic, rect)
				if err != nil {
					return err
				}
				deblockRows(tc, pic.recY, 0, se.ah, pic.step)
				pic.initSegments(1)
				pic.segRects[0] = rect
				pic.segStreams[0] = data
				pic.finalizeBytes()
				return se.rateUpdate(pic)
			})
	}
	return g
}
