// Package encoders implements the five encoder models the paper
// studies — SVT-AV1, x264, x265, libaom and libvpx-vp9 — on top of the
// shared codec toolkit. The models do real block-based hybrid encoding
// (motion estimation, intra prediction, transform, quantization,
// adaptive range coding, reconstruction and deblocking); they differ in
// the codec family's search-space shape (partition shapes, intra mode
// counts, reference counts, transform-search depth), in CRF/preset
// ranges and direction, and in threading architecture. Those structural
// differences — not hand-tuned constants — produce the paper's headline
// effects: the AV1 family's instruction-count explosion, CRF-dependent
// effort, and the disparate thread-scaling curves.
package encoders

import (
	"context"
	"fmt"
	"time"

	"vcprof/internal/trace"
	"vcprof/internal/video"
)

// Family identifies a codec family / encoder implementation model.
type Family string

// The five encoders of the paper.
const (
	SVTAV1 Family = "svt-av1"
	X264   Family = "x264"
	X265   Family = "x265"
	Libaom Family = "libaom"
	VP9    Family = "libvpx-vp9"
)

// Families lists all encoder models in the paper's presentation order.
func Families() []Family {
	return []Family{X264, X265, VP9, Libaom, SVTAV1}
}

// Options configures one encode run.
type Options struct {
	// CRF is the constant-rate-factor quality target. Range depends on
	// the family: 0–63 for the AV1/VP9 family, 0–51 for x264/x265; lower
	// is higher quality everywhere.
	CRF int
	// Preset is the speed preset. AV1/VP9 family: 0 (slowest) to 8
	// (fastest). x264/x265: 0 (fastest) to 9 (slowest) — the reversed
	// direction the paper notes in §3.3.
	Preset int
	// Threads is the number of worker goroutines. 0 means the default
	// of 1 everywhere — Encode, validation, and cache keys treat the
	// two spellings as the same encode.
	Threads int
	// NewWorkerCtx, when non-nil, supplies an instrumentation context for
	// each worker. Worker 0 exists in every run. Contexts are merged into
	// Result.Mix after the encode.
	NewWorkerCtx func(worker int) *trace.Ctx
	// Executor, when non-nil, runs the encode's task graph on an
	// external scheduler (the harness shard pool) instead of the
	// built-in worker pool. Results are byte-identical either way:
	// the graph carries every true dependence, and instrumentation is
	// merged in task-index order. See TaskGraph.
	Executor Executor
	// KeyInterval inserts a keyframe every n frames (0 = only frame 0).
	KeyInterval int
	// KeepBitstream assembles the full decodable container into
	// Result.Bitstream (see DecodeBitstream).
	KeepBitstream bool
	// TargetKbps switches from constant-quality (CRF) to average-bitrate
	// control: the frame quantizer adapts to hit this rate and CRF is
	// ignored. Rate decisions depend on completed frames, so ABR
	// serializes the frame pipeline.
	TargetKbps float64
	// SceneCut inserts keyframes at detected scene changes (open-loop
	// lookahead over the source frames), in addition to KeyInterval.
	SceneCut bool
	// AnalyzeIntra extends the open-loop analysis stage with a
	// lookahead intra-cost pass: per analysis cell, a reduced fixed
	// intra mode set is evaluated on downsampled source pixels and the
	// best SATD is reported in Result.IntraCosts. The pass never feeds
	// back into encode decisions (bitstreams are unchanged); it exists
	// for complexity-driven policies (live degrade, rate forecasting)
	// and is shareable across ladder rungs like the motion grid.
	AnalyzeIntra bool
	// AnalysisPublish records this encode's open-loop motion analysis
	// into the cache for later same-source encodes to reuse; Encode
	// seals the cache on success. Mutually exclusive with
	// AnalysisConsume. See AnalysisCache.
	AnalysisPublish *AnalysisCache
	// AnalysisConsume reuses a sealed cache's analysis grids instead of
	// searching, charging only the modeled copy cost — the ABR
	// ladder-share path. The cache must have been published for the
	// same source frames and preset toolset.
	AnalysisConsume *AnalysisCache
}

// Result reports the outcome of an encode.
type Result struct {
	Family      Family
	Bytes       int   // total bitstream size
	FrameBytes  []int // per-frame bitstream sizes
	Recon       []*video.Frame
	PSNR        float64 // sequence YUV PSNR vs the source
	SSIM        float64 // sequence luma SSIM vs the source
	BitrateKbps float64
	// Bitstream is the decodable container (only with KeepBitstream).
	Bitstream []byte
	Wall      time.Duration // wall-clock encode time
	// Shapes tallies the committed partition decisions across the whole
	// sequence, indexed by Shape — the search-space usage the paper's
	// §2.2 argument is about. SkipBlocks counts SKIP-coded leaves.
	Shapes     [10]uint64
	SkipBlocks uint64
	// KeyFrames lists the indices coded as keyframes.
	KeyFrames []int
	// QIndices lists the per-frame quantizer indices (constant in CRF
	// mode, adapted in ABR mode).
	QIndices []int
	// Instrumentation results (zero unless NewWorkerCtx was set).
	Mix         trace.Mix
	Insts       uint64
	WorkerInsts []uint64
	// FrameStages is the per-frame, per-pipeline-stage instruction
	// breakdown (motion/intra/transform/quant/entropy/other), summed
	// from task-level snapshots; deterministic across thread counts.
	FrameStages []trace.StageCounts
	// IntraCosts is the per-frame summed open-loop intra SATD (only
	// with AnalyzeIntra; zero for frame 0, which has no analysis pass).
	// Depends only on source pixels — a CRF-independent complexity
	// signal.
	IntraCosts []uint64
}

// Encoder is one encoder model.
type Encoder interface {
	// Family returns the model's identity.
	Family() Family
	// CRFRange returns the inclusive CRF range.
	CRFRange() (lo, hi int)
	// PresetRange returns the inclusive preset range and whether larger
	// presets mean slower encodes (x264/x265 direction).
	PresetRange() (lo, hi int, reversed bool)
	// Encode encodes the clip. Cancelling ctx aborts the encode at the
	// next task boundary (between superblock rows, segments, tiles or
	// frames, depending on the family's threading architecture) and
	// returns the context's error.
	Encode(ctx context.Context, clip *video.Clip, opts Options) (*Result, error)
}

// New returns the encoder model for a family.
func New(f Family) (Encoder, error) {
	spec, ok := specs[f]
	if !ok {
		return nil, fmt.Errorf("encoders: unknown family %q", f)
	}
	return &model{spec: spec}, nil
}

// MustNew is New for known-constant families.
func MustNew(f Family) Encoder {
	e, err := New(f)
	if err != nil {
		panic(err)
	}
	return e
}

type model struct {
	spec familySpec
}

func (m *model) Family() Family { return m.spec.family }

func (m *model) CRFRange() (int, int) { return 0, m.spec.crfMax }

func (m *model) PresetRange() (int, int, bool) {
	return 0, m.spec.presetMax, m.spec.presetReversed
}

func (m *model) validate(clip *video.Clip, opts Options) error {
	if clip == nil {
		return fmt.Errorf("encoders: nil clip")
	}
	if err := clip.Validate(); err != nil {
		return err
	}
	if opts.CRF < 0 || opts.CRF > m.spec.crfMax {
		return fmt.Errorf("encoders: %s CRF %d out of range [0, %d]", m.spec.family, opts.CRF, m.spec.crfMax)
	}
	if opts.Preset < 0 || opts.Preset > m.spec.presetMax {
		return fmt.Errorf("encoders: %s preset %d out of range [0, %d]", m.spec.family, opts.Preset, m.spec.presetMax)
	}
	if opts.Threads < 0 || opts.Threads > 64 {
		return fmt.Errorf("encoders: thread count %d out of range [0, 64]", opts.Threads)
	}
	if opts.KeyInterval < 0 {
		return fmt.Errorf("encoders: negative key interval %d", opts.KeyInterval)
	}
	if opts.TargetKbps < 0 {
		return fmt.Errorf("encoders: negative target bitrate %v", opts.TargetKbps)
	}
	if opts.AnalysisPublish != nil && opts.AnalysisConsume != nil {
		return fmt.Errorf("encoders: AnalysisPublish and AnalysisConsume are mutually exclusive")
	}
	return nil
}

// effort converts a family preset into the internal effort scale where
// 0.0 is the fastest configuration and 1.0 the slowest, normalizing the
// reversed preset direction of x264/x265.
func (s familySpec) effort(preset int) float64 {
	frac := float64(preset) / float64(s.presetMax)
	if s.presetReversed {
		return frac // x264/x265: preset 9 = slowest = effort 1
	}
	return 1 - frac // AV1/VP9: preset 0 = slowest = effort 1
}
