package encoders

import (
	"vcprof/internal/codec"
	"vcprof/internal/codec/intra"
	"vcprof/internal/codec/transform"
	"vcprof/internal/trace"
)

// Open-loop intra analysis — the second half of the lookahead pass
// (Options.AnalyzeIntra). For every 16×16 analysis cell it estimates
// the cost of coding the cell without a temporal reference: a reduced
// fixed mode set (DC/vertical/horizontal, the set real lookaheads use
// regardless of preset) is predicted from *source* border samples at
// full cell resolution — the open-loop intra search SVT-AV1 runs in its
// motion-estimation stage — and the best residual SATD is stored in the
// picture's intra cost grid. Like the motion grid, the result depends
// only on the source pixels — never on CRF, preset or rate control — so
// ladder rungs share it bit-exactly and the live engine can use it as a
// frame-complexity signal without perturbing encode decisions.

var lookaheadModes = [...]intra.Mode{intra.DC, intra.Vertical, intra.Horizontal}

// analyzeIntraRows estimates open-loop intra cost for grid rows
// [gy0, gy1) × grid columns [gx0, gx1) of pic. Cells are independent
// (no predictor chain), so any disjoint region split is safe.
func (se *streamEncoder) analyzeIntraRows(tc *trace.Ctx, pic *picture, gy0, gy1, gx0, gx1 int) error {
	const n = analysisGrid
	var cur, pred [n * n]byte
	var res [n * n]int32
	for gy := gy0; gy < gy1; gy++ {
		for gx := gx0; gx < gx1; gx++ {
			x, y := gx*n, gy*n
			blockOf(pic.srcY, x, y, n, n, cur[:])
			tc.Loads(pcLookaheadLoad, pic.srcY.VAddr(x, y), n, pic.srcY.Stride, n)
			tc.Op(trace.OpSSE, n+2)

			nb := intra.Neighbors{}
			if y > 0 {
				nb.HasTop = true
				nb.Top = make([]byte, n)
				copy(nb.Top, pic.srcY.Pix[(y-1)*pic.srcY.Stride+x:(y-1)*pic.srcY.Stride+x+n])
				tc.Loads(pcLookaheadLoad, pic.srcY.VAddr(x, y-1), 1, 1, n)
			}
			if x > 0 {
				nb.HasLeft = true
				nb.Left = make([]byte, n)
				for j := 0; j < n; j++ {
					nb.Left[j] = pic.srcY.Pix[(y+j)*pic.srcY.Stride+x-1]
				}
				tc.Loads(pcLookaheadLoad, pic.srcY.VAddr(x-1, y), n, pic.srcY.Stride, 1)
			}

			best := int32(1<<31 - 1)
			for _, m := range lookaheadModes {
				if err := intra.Predict(tc, m, nb, n, pred[:]); err != nil {
					return err
				}
				codec.Residual(tc, cur[:], pred[:], n, n, res[:])
				satd, err := transform.SATD(tc, res[:], n, n)
				if err != nil {
					return err
				}
				better := satd < best
				tc.Branch(pcLookaheadBest, better)
				if better {
					best = satd
				}
			}
			pic.intraGrid[gy*se.gw+gx] = uint32(best)
		}
	}
	return nil
}

var (
	pcLookaheadLoad = trace.Site("encoders.lookahead/block")
	pcLookaheadBest = trace.Site("encoders.lookahead/best")
)
