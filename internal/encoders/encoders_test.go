package encoders

import (
	"context"
	"testing"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
	"vcprof/internal/trace"
	"vcprof/internal/video"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("h266"); err == nil {
		t.Error("accepted unknown family")
	}
	for _, fam := range Families() {
		enc, err := New(fam)
		if err != nil {
			t.Fatalf("New(%s): %v", fam, err)
		}
		if enc.Family() != fam {
			t.Errorf("Family() = %s, want %s", enc.Family(), fam)
		}
	}
}

func TestRangesMatchPaperSection33(t *testing.T) {
	// §3.3: AV1/VP9 family CRF 0–63 preset 0–8; x264/x265 CRF 0–51
	// preset 0–9 with the reversed direction.
	for _, tc := range []struct {
		fam      Family
		crfHi    int
		presetHi int
		reversed bool
	}{
		{SVTAV1, 63, 8, false},
		{Libaom, 63, 8, false},
		{VP9, 63, 8, false},
		{X264, 51, 9, true},
		{X265, 51, 9, true},
	} {
		enc := MustNew(tc.fam)
		if _, hi := enc.CRFRange(); hi != tc.crfHi {
			t.Errorf("%s CRF max = %d, want %d", tc.fam, hi, tc.crfHi)
		}
		if _, hi, rev := enc.PresetRange(); hi != tc.presetHi || rev != tc.reversed {
			t.Errorf("%s preset = (0..%d, reversed=%v), want (0..%d, %v)",
				tc.fam, hi, rev, tc.presetHi, tc.reversed)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	clip := testClip(t, "desktop", 2, 16)
	enc := MustNew(SVTAV1)
	if _, err := enc.Encode(context.Background(), nil, Options{}); err == nil {
		t.Error("accepted nil clip")
	}
	if _, err := enc.Encode(context.Background(), clip, Options{CRF: 99}); err == nil {
		t.Error("accepted out-of-range CRF")
	}
	if _, err := enc.Encode(context.Background(), clip, Options{Preset: 99}); err == nil {
		t.Error("accepted out-of-range preset")
	}
	if _, err := enc.Encode(context.Background(), clip, Options{Threads: -1}); err == nil {
		t.Error("accepted negative threads")
	}
	if _, err := enc.Encode(context.Background(), clip, Options{KeyInterval: -2}); err == nil {
		t.Error("accepted negative key interval")
	}
	// x264's CRF tops out at 51.
	if _, err := MustNew(X264).Encode(context.Background(), clip, Options{CRF: 60}); err == nil {
		t.Error("x264 accepted CRF 60")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	clip := testClip(t, "game2", 3, 16)
	enc := MustNew(SVTAV1)
	a, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes || a.PSNR != b.PSNR {
		t.Errorf("repeat encode differs: %d/%v vs %d/%v", a.Bytes, a.PSNR, b.Bytes, b.PSNR)
	}
}

func TestEncodeThreadCountInvariant(t *testing.T) {
	// The task-graph executor must produce identical bitstreams and
	// reconstructions regardless of worker count.
	clip := testClip(t, "game1", 4, 16)
	for _, fam := range []Family{SVTAV1, X264, X265, Libaom} {
		enc := MustNew(fam)
		_, crfHi := enc.CRFRange()
		base, err := enc.Encode(context.Background(), clip, Options{CRF: crfHi / 2, Preset: 2, Threads: 1})
		if err != nil {
			t.Fatalf("%s threads=1: %v", fam, err)
		}
		par, err := enc.Encode(context.Background(), clip, Options{CRF: crfHi / 2, Preset: 2, Threads: 4})
		if err != nil {
			t.Fatalf("%s threads=4: %v", fam, err)
		}
		if base.Bytes != par.Bytes {
			t.Errorf("%s: bytes differ across thread counts: %d vs %d", fam, base.Bytes, par.Bytes)
		}
		if base.PSNR != par.PSNR {
			t.Errorf("%s: PSNR differs across thread counts: %v vs %v", fam, base.PSNR, par.PSNR)
		}
	}
}

func TestCRFControlsRateAndQuality(t *testing.T) {
	clip := testClip(t, "cricket", 4, 16)
	for _, fam := range []Family{SVTAV1, X264} {
		enc := MustNew(fam)
		_, crfHi := enc.CRFRange()
		lo, err := enc.Encode(context.Background(), clip, Options{CRF: crfHi / 6, Preset: midPresetFor(enc)})
		if err != nil {
			t.Fatal(err)
		}
		hi, err := enc.Encode(context.Background(), clip, Options{CRF: crfHi - 3, Preset: midPresetFor(enc)})
		if err != nil {
			t.Fatal(err)
		}
		if lo.Bytes <= hi.Bytes {
			t.Errorf("%s: low CRF bytes %d not above high CRF bytes %d", fam, lo.Bytes, hi.Bytes)
		}
		if lo.PSNR <= hi.PSNR {
			t.Errorf("%s: low CRF PSNR %v not above high CRF PSNR %v", fam, lo.PSNR, hi.PSNR)
		}
		if lo.Insts != 0 || hi.Insts != 0 {
			t.Error("uninstrumented run reported instructions")
		}
	}
}

func midPresetFor(enc Encoder) int {
	lo, hi, _ := enc.PresetRange()
	return (lo + hi) / 2
}

func TestSlowPresetImprovesRD(t *testing.T) {
	// Slower presets must buy compression (fewer bits at similar or
	// better quality), or the preset sweep of Fig. 11 cannot reproduce.
	clip := testClip(t, "game1", 4, 16)
	enc := MustNew(SVTAV1)
	slow, err := enc.Encode(context.Background(), clip, Options{CRF: 35, Preset: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := enc.Encode(context.Background(), clip, Options{CRF: 35, Preset: 8})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Bytes >= fast.Bytes {
		t.Errorf("slow preset bytes %d not below fast preset bytes %d", slow.Bytes, fast.Bytes)
	}
	if slow.PSNR < fast.PSNR-0.5 {
		t.Errorf("slow preset PSNR %v collapsed vs fast %v", slow.PSNR, fast.PSNR)
	}
}

func TestKeyIntervalInsertsKeyframes(t *testing.T) {
	clip := testClip(t, "desktop", 6, 16)
	enc := MustNew(SVTAV1)
	allInter, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6, KeyInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if keyed.Bytes <= allInter.Bytes {
		t.Errorf("keyframes every 2 (%d bytes) not larger than single keyframe (%d bytes)",
			keyed.Bytes, allInter.Bytes)
	}
	if len(keyed.FrameBytes) != 6 {
		t.Fatalf("FrameBytes has %d entries, want 6", len(keyed.FrameBytes))
	}
}

func TestReconMatchesSourceDimensions(t *testing.T) {
	clip := testClip(t, "cat", 3, 16)
	res, err := MustNew(VP9).Encode(context.Background(), clip, Options{CRF: 30, Preset: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recon) != 3 {
		t.Fatalf("%d recon frames, want 3", len(res.Recon))
	}
	src := clip.Frames[0]
	for i, f := range res.Recon {
		if f.Width() != src.Width() || f.Height() != src.Height() {
			t.Errorf("recon %d is %dx%d, want %dx%d", i, f.Width(), f.Height(), src.Width(), src.Height())
		}
	}
}

// ---------------------------------------------------------------------
// Bitstream syntax round trips.

func TestCoefBlockRoundTrip(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		levels := make([]int32, n*n)
		for i := range levels {
			switch i % 7 {
			case 0:
				levels[i] = int32(i%11 - 5)
			case 3:
				levels[i] = int32(-(i % 200))
			}
		}
		enc := entropy.NewEncoder(nil, 0)
		pmE := newProbModel()
		if err := writeCoefBlock(enc, pmE, levels, n); err != nil {
			t.Fatal(err)
		}
		dec := entropy.NewDecoder(enc.Finish())
		pmD := newProbModel()
		got, err := readCoefBlock(dec, pmD, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range levels {
			if got[i] != levels[i] {
				t.Fatalf("n=%d level %d: got %d want %d", n, i, got[i], levels[i])
			}
		}
	}
}

func TestCoefBlockAllZero(t *testing.T) {
	enc := entropy.NewEncoder(nil, 0)
	pm := newProbModel()
	if err := writeCoefBlock(enc, pm, make([]int32, 64), 8); err != nil {
		t.Fatal(err)
	}
	if enc.Len() > 2 {
		t.Errorf("all-zero block used %d bytes, want ~1 flag bit", enc.Len())
	}
	dec := entropy.NewDecoder(enc.Finish())
	got, err := readCoefBlock(dec, newProbModel(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("level %d = %d, want 0", i, v)
		}
	}
}

func TestCoefBlockValidation(t *testing.T) {
	enc := entropy.NewEncoder(nil, 0)
	if err := writeCoefBlock(enc, newProbModel(), make([]int32, 10), 8); err == nil {
		t.Error("accepted short level buffer")
	}
}

func TestMVRoundTrip(t *testing.T) {
	mvs := []codec.MV{{X: 0, Y: 0}, {X: 5, Y: -3}, {X: -16, Y: 16}, {X: 127, Y: -127}}
	pred := codec.MV{X: 2, Y: -1}
	enc := entropy.NewEncoder(nil, 0)
	pmE := newProbModel()
	for _, mv := range mvs {
		writeMV(enc, pmE, mv, pred)
	}
	dec := entropy.NewDecoder(enc.Finish())
	pmD := newProbModel()
	for i, want := range mvs {
		if got := readMV(dec, pmD, pred); got != want {
			t.Errorf("mv %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestUnsignedRoundTrip(t *testing.T) {
	vals := []uint32{0, 1, 2, 5, 17, 255, 1000, 65535}
	enc := entropy.NewEncoder(nil, 0)
	var pE entropy.Prob = entropy.DefaultProb
	for _, v := range vals {
		writeUnsigned(enc, &pE, v)
	}
	dec := entropy.NewDecoder(enc.Finish())
	var pD entropy.Prob = entropy.DefaultProb
	for i, want := range vals {
		if got := readUnsigned(dec, &pD); got != want {
			t.Errorf("val %d: got %d want %d", i, got, want)
		}
	}
}

func TestScanOrderIsPermutation(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		scan := scanOrder(n)
		if len(scan) != n*n {
			t.Fatalf("scan(%d) has %d entries", n, len(scan))
		}
		seen := make([]bool, n*n)
		for _, idx := range scan {
			if idx < 0 || idx >= n*n || seen[idx] {
				t.Fatalf("scan(%d) not a permutation at %d", n, idx)
			}
			seen[idx] = true
		}
		// Low frequencies first: DC must be the first entry.
		if scan[0] != 0 {
			t.Errorf("scan(%d)[0] = %d, want 0 (DC)", n, scan[0])
		}
	}
}

// ---------------------------------------------------------------------
// Partition shapes.

func TestShapeSubBlocksCoverExactly(t *testing.T) {
	for s := ShapeNone; s < numShapes; s++ {
		rects := s.subBlocks(32, 64, 32)
		if rects == nil {
			t.Fatalf("%v not applicable at 32", s)
		}
		covered := map[[2]int]bool{}
		for _, r := range rects {
			if r.w <= 0 || r.h <= 0 {
				t.Fatalf("%v produced empty rect %+v", s, r)
			}
			for y := r.y; y < r.y+r.h; y++ {
				for x := r.x; x < r.x+r.w; x++ {
					key := [2]int{x, y}
					if covered[key] {
						t.Fatalf("%v overlaps at (%d,%d)", s, x, y)
					}
					covered[key] = true
				}
			}
		}
		if len(covered) != 32*32 {
			t.Errorf("%v covers %d samples, want 1024", s, len(covered))
		}
	}
	// Quarter shapes are not applicable below 16.
	if ShapeHorz4.subBlocks(0, 0, 8) != nil {
		t.Error("HORZ_4 applicable at 8 (strips below 4 samples)")
	}
	if ShapeSplit.subBlocks(0, 0, 4) != nil {
		t.Error("SPLIT applicable at 4")
	}
}

func TestShapeNames(t *testing.T) {
	if ShapeNone.String() != "NONE" || ShapeVert4.String() != "VERT_4" || Shape(99).String() != "?" {
		t.Error("shape names wrong")
	}
}

func TestAV1FamilyHasTenShapesVP9Four(t *testing.T) {
	av1 := specs[SVTAV1].tools(1.0) // slowest preset: everything on
	vp9 := specs[VP9].tools(1.0)
	// NONE + SPLIT + rect shapes.
	if got := 2 + len(av1.shapes); got != 10 {
		t.Errorf("AV1 family evaluates %d shapes, want 10", got)
	}
	if got := 2 + len(vp9.shapes); got != 4 {
		t.Errorf("VP9 evaluates %d shapes, want 4", got)
	}
}

// ---------------------------------------------------------------------
// Schedule simulation.

func TestScheduleMakespanBasics(t *testing.T) {
	// Two independent tasks of cost 10: serial 20, two cores 10.
	s := &Schedule{Costs: []uint64{10, 10}, Deps: [][]int{nil, nil}}
	span1, _, err := s.Makespan(1)
	if err != nil || span1 != 20 {
		t.Errorf("Makespan(1) = %d, %v; want 20", span1, err)
	}
	span2, busy, err := s.Makespan(2)
	if err != nil || span2 != 10 {
		t.Errorf("Makespan(2) = %d, %v; want 10", span2, err)
	}
	if busy[0] != 10 || busy[1] != 10 {
		t.Errorf("core busy = %v, want [10 10]", busy)
	}
	// A chain cannot speed up.
	c := &Schedule{Costs: []uint64{10, 10}, Deps: [][]int{nil, {0}}}
	span, _, err := c.Makespan(4)
	if err != nil || span != 20 {
		t.Errorf("chain Makespan(4) = %d, want 20", span)
	}
	sp, err := c.Speedup(4)
	if err != nil || sp != 1 {
		t.Errorf("chain Speedup(4) = %v, want 1", sp)
	}
	imb, err := c.Imbalance(4)
	if err != nil || imb != 4 {
		t.Errorf("chain Imbalance(4) = %v, want 4", imb)
	}
	if _, _, err := s.Makespan(0); err == nil {
		t.Error("accepted zero cores")
	}
}

func TestProfileScheduleShapes(t *testing.T) {
	clip := testClip(t, "game1", 6, 8)
	get := func(fam Family) *Schedule {
		sched, res, err := ProfileSchedule(context.Background(), MustNew(fam), clip, Options{CRF: 45, Preset: 5})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if res.Bytes == 0 || res.PSNR == 0 {
			t.Fatalf("%s: profile run produced no encode result", fam)
		}
		if sched.TotalWork() == 0 {
			t.Fatalf("%s: zero task costs", fam)
		}
		return sched
	}
	sp := func(s *Schedule, n int) float64 {
		v, err := s.Speedup(n)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	svt := get(SVTAV1)
	x265 := get(X265)
	aom := get(Libaom)
	x264 := get(X264)

	// The paper's §4.6 ordering at 8 threads: SVT-AV1 best (~6x), x265
	// worst (~1.3x), libaom capped by its tiles (~3x).
	if got := sp(svt, 8); got < 4 {
		t.Errorf("SVT-AV1 speedup at 8 = %v, want >= 4 (paper ~6x)", got)
	}
	if got := sp(x265, 8); got > 2 {
		t.Errorf("x265 speedup at 8 = %v, want <= 2 (paper ~1.3x)", got)
	}
	if got := sp(aom, 8); got < 2 || got > 4.5 {
		t.Errorf("libaom speedup at 8 = %v, want tile-capped 2–4.5", got)
	}
	if sp(svt, 8) <= sp(x264, 8) {
		t.Errorf("SVT-AV1 (%v) not above x264 (%v) at 8 threads", sp(svt, 8), sp(x264, 8))
	}
	if sp(x264, 8) <= sp(x265, 8) {
		t.Errorf("x264 (%v) not above x265 (%v) at 8 threads", sp(x264, 8), sp(x265, 8))
	}
	// Speedups are monotone non-decreasing in cores for every family.
	for _, s := range []*Schedule{svt, x265, aom, x264} {
		prev := 0.0
		for n := 1; n <= 8; n++ {
			v := sp(s, n)
			if v+1e-9 < prev {
				t.Errorf("speedup fell from %v to %v at %d cores", prev, v, n)
			}
			prev = v
		}
	}
	// x265 concentrates work: highest imbalance at 8 cores.
	imb := func(s *Schedule) float64 {
		v, err := s.Imbalance(8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if imb(x265) <= imb(svt) {
		t.Errorf("x265 imbalance (%v) not above SVT-AV1 (%v)", imb(x265), imb(svt))
	}
}

func TestWorkerContextsReceiveCounts(t *testing.T) {
	clip := testClip(t, "desktop", 3, 16)
	var ctxs []*trace.Ctx
	res, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{
		CRF: 40, Preset: 6, Threads: 2,
		NewWorkerCtx: func(int) *trace.Ctx {
			tc := trace.New()
			ctxs = append(ctxs, tc)
			return tc
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctxs) != 2 {
		t.Fatalf("created %d worker contexts, want 2", len(ctxs))
	}
	if res.Insts == 0 {
		t.Error("no instructions recorded")
	}
	var sum uint64
	for _, w := range res.WorkerInsts {
		sum += w
	}
	if sum != res.Insts {
		t.Errorf("worker insts %d != total %d", sum, res.Insts)
	}
}

func TestABRHitsTargetBitrate(t *testing.T) {
	meta, err := video.LookupClip("game1")
	if err != nil {
		t.Fatal(err)
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: 12, ScaleDiv: 12})
	if err != nil {
		t.Fatal(err)
	}
	enc := MustNew(SVTAV1)
	for _, target := range []float64{150, 600} {
		res, err := enc.Encode(context.Background(), clip, Options{TargetKbps: target, Preset: 6, KeepBitstream: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.BitrateKbps < target*0.55 || res.BitrateKbps > target*1.7 {
			t.Errorf("target %v kbps: achieved %v, outside the convergence band", target, res.BitrateKbps)
		}
		// Quantizer must actually adapt (unless it converged instantly).
		varied := false
		for _, q := range res.QIndices[1:] {
			if q != res.QIndices[0] {
				varied = true
			}
		}
		if !varied {
			t.Errorf("target %v: quantizer never adapted: %v", target, res.QIndices)
		}
		// ABR streams must stay decodable (per-frame qindex in headers).
		dec, err := DecodeBitstream(res.Bitstream)
		if err != nil {
			t.Fatalf("target %v: decode: %v", target, err)
		}
		assertFramesEqual(t, "abr", res.Recon, dec)
	}
	// Higher target buys more bytes and quality.
	lo, err := enc.Encode(context.Background(), clip, Options{TargetKbps: 150, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := enc.Encode(context.Background(), clip, Options{TargetKbps: 600, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if hi.Bytes <= lo.Bytes || hi.PSNR <= lo.PSNR {
		t.Errorf("600 kbps (%d bytes, %.2f dB) not above 150 kbps (%d bytes, %.2f dB)",
			hi.Bytes, hi.PSNR, lo.Bytes, lo.PSNR)
	}
}

func TestABRThreadInvariant(t *testing.T) {
	clip := testClip(t, "game2", 6, 16)
	enc := MustNew(SVTAV1)
	a, err := enc.Encode(context.Background(), clip, Options{TargetKbps: 300, Preset: 6, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode(context.Background(), clip, Options{TargetKbps: 300, Preset: 6, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes || a.PSNR != b.PSNR {
		t.Errorf("ABR not thread-invariant: %d/%v vs %d/%v", a.Bytes, a.PSNR, b.Bytes, b.PSNR)
	}
}

func TestABRValidation(t *testing.T) {
	clip := testClip(t, "desktop", 2, 16)
	if _, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{TargetKbps: -5}); err == nil {
		t.Error("accepted negative target bitrate")
	}
}

func TestSceneCutInsertsKeyframe(t *testing.T) {
	meta, err := video.LookupClip("game1")
	if err != nil {
		t.Fatal(err)
	}
	const cut = 4
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: 8, ScaleDiv: 16, CutAt: cut})
	if err != nil {
		t.Fatal(err)
	}
	enc := MustNew(SVTAV1)
	res, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6, SceneCut: true, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range res.KeyFrames {
		if k == cut {
			found = true
		}
	}
	if !found {
		t.Errorf("scene cut at frame %d not keyed; keyframes = %v", cut, res.KeyFrames)
	}
	// Without scene-cut detection, only frame 0 is a keyframe.
	plain, err := enc.Encode(context.Background(), clip, Options{CRF: 40, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.KeyFrames) != 1 || plain.KeyFrames[0] != 0 {
		t.Errorf("plain keyframes = %v, want [0]", plain.KeyFrames)
	}
	// Keyed scene change must still decode bit-exactly.
	dec, err := DecodeBitstream(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "scenecut", res.Recon, dec)
	// Coding the cut frame as intra should beat coding it as inter from
	// an unrelated scene (quality at similar-or-better efficiency).
	if res.PSNR < plain.PSNR-0.1 {
		t.Errorf("scene-cut keyframes lowered PSNR: %v vs %v", res.PSNR, plain.PSNR)
	}
}

func TestSceneCutNoFalsePositives(t *testing.T) {
	clip := testClip(t, "desktop", 8, 16) // static screen content
	res, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{CRF: 40, Preset: 6, SceneCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KeyFrames) != 1 {
		t.Errorf("static clip grew keyframes at %v", res.KeyFrames)
	}
}

func TestHalfPelImprovesSlowPresetRD(t *testing.T) {
	// game1 has non-integer dominant motion, so half-pel compensation at
	// the slow presets must buy compression over the fast integer-only
	// presets beyond what their other tools explain. Sanity: slow-preset
	// encodes round-trip (covered elsewhere) and actually use half-pel
	// phases in the bitstream.
	clip := testClip(t, "game1", 5, 12)
	enc := MustNew(SVTAV1)
	res, err := enc.Encode(context.Background(), clip, Options{CRF: 30, Preset: 3, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBitstream(res.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "halfpel", res.Recon, dec)
	// The header must advertise the tool at this preset.
	r := &bsReader{data: res.Bitstream}
	hdr, err := parseHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.halfPel {
		t.Error("preset 3 stream does not advertise half-pel MC")
	}
	fast, err := enc.Encode(context.Background(), clip, Options{CRF: 30, Preset: 8, KeepBitstream: true})
	if err != nil {
		t.Fatal(err)
	}
	rf := &bsReader{data: fast.Bitstream}
	fhdr, err := parseHeader(rf)
	if err != nil {
		t.Fatal(err)
	}
	if fhdr.halfPel {
		t.Error("preset 8 stream advertises half-pel MC")
	}
}

func TestShapeHistogramReflectsSearchSpace(t *testing.T) {
	clip := testClip(t, "game1", 4, 12)
	// SVT-AV1 at a slow preset must actually use rectangular shapes.
	svt, err := MustNew(SVTAV1).Encode(context.Background(), clip, Options{CRF: 25, Preset: 2})
	if err != nil {
		t.Fatal(err)
	}
	var rectUsed int
	for sh := ShapeHorz; sh < numShapes; sh++ {
		if svt.Shapes[sh] > 0 {
			rectUsed++
		}
	}
	if rectUsed < 2 {
		t.Errorf("SVT-AV1 slow preset used only %d rect shape kinds: %v", rectUsed, svt.Shapes)
	}
	if svt.Shapes[ShapeNone] == 0 || svt.Shapes[ShapeSplit] == 0 {
		t.Errorf("NONE/SPLIT never chosen: %v", svt.Shapes)
	}
	// VP9 can never emit the AV1-only shapes.
	vp9, err := MustNew(VP9).Encode(context.Background(), clip, Options{CRF: 25, Preset: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range []Shape{ShapeHorzA, ShapeHorzB, ShapeVertA, ShapeVertB, ShapeHorz4, ShapeVert4} {
		if vp9.Shapes[sh] != 0 {
			t.Errorf("VP9 emitted AV1-only shape %v", sh)
		}
	}
	// Skips appear on static content (desktop) and grow with CRF; noisy
	// game1 legitimately fails the skip SAD test at most blocks.
	static := testClip(t, "desktop", 4, 12)
	hi, err := MustNew(SVTAV1).Encode(context.Background(), static, Options{CRF: 55, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if hi.SkipBlocks == 0 {
		t.Error("no SKIP blocks on static content at high CRF")
	}
	lo, err := MustNew(SVTAV1).Encode(context.Background(), static, Options{CRF: 5, Preset: 6})
	if err != nil {
		t.Fatal(err)
	}
	if lo.SkipBlocks >= hi.SkipBlocks {
		t.Errorf("skips at CRF 5 (%d) not below CRF 55 (%d)", lo.SkipBlocks, hi.SkipBlocks)
	}
}
