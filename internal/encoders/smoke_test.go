package encoders

import (
	"context"
	"fmt"
	"testing"

	"vcprof/internal/trace"
	"vcprof/internal/video"
)

func testClip(t testing.TB, name string, frames, scaleDiv int) *video.Clip {
	t.Helper()
	meta, err := video.LookupClip(name)
	if err != nil {
		t.Fatal(err)
	}
	clip, err := video.Generate(meta, video.GenerateOptions{Frames: frames, ScaleDiv: scaleDiv})
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// TestSmokeAllFamilies exercises a tiny encode on every model and prints
// the headline stats, which double as the calibration readout.
func TestSmokeAllFamilies(t *testing.T) {
	clip := testClip(t, "game1", 4, 16)
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			enc := MustNew(fam)
			_, crfHi := enc.CRFRange()
			crf := crfHi / 2
			lo, hi, rev := enc.PresetRange()
			preset := (lo + hi) / 2
			_ = rev
			tc := trace.New()
			res, err := enc.Encode(context.Background(), clip, Options{
				CRF: crf, Preset: preset, Threads: 1,
				NewWorkerCtx: func(int) *trace.Ctx { return tc },
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes <= 0 {
				t.Error("empty bitstream")
			}
			if res.PSNR < 20 || res.PSNR > 100 {
				t.Errorf("implausible PSNR %v", res.PSNR)
			}
			if res.Insts == 0 {
				t.Error("no instructions counted")
			}
			mix := res.Mix
			tot := mix.Total()
			fmt.Printf("%-12s insts=%9d psnr=%5.2f kbps=%8.1f bytes=%6d  branch=%4.1f%% load=%4.1f%% store=%4.1f%% avx=%4.1f%% sse=%4.1f%% other=%4.1f%%\n",
				fam, tot, res.PSNR, res.BitrateKbps, res.Bytes,
				mix.Percent(trace.OpBranch), mix.Percent(trace.OpLoad), mix.Percent(trace.OpStore),
				mix.Percent(trace.OpAVX), mix.Percent(trace.OpSSE), mix.Percent(trace.OpOther))
		})
	}
}
