package encoders

import (
	"encoding/binary"
	"fmt"
)

// Container format produced when Options.KeepBitstream is set and
// consumed by DecodeBitstream. Little-endian throughout.
//
//	sequence header:
//	  magic "VCBS" | version u8 | family-name len u8 + bytes |
//	  width u16 | height u16 | frames u16 | qindex u8 | refs u8 |
//	  tools u8 (bit0 = half-pel MC) | shapeCount u8 + shape values |
//	  sbSize u8
//	per frame:
//	  flags u8 (bit0 = keyframe) | qindex u8 | segCount u16 |
//	  per segment: row0 u8 | row1 u8 | col0 u8 | col1 u8 | length u32
//	  then the segment payloads in slot order.
const (
	bitstreamMagic   = "VCBS"
	bitstreamVersion = 3
)

// assembleBitstream serializes the coded sequence.
func (se *streamEncoder) assembleBitstream() ([]byte, error) {
	famName := string(se.spec.family)
	if len(famName) > 255 {
		return nil, fmt.Errorf("encoders: family name too long")
	}
	out := make([]byte, 0, 1024)
	out = append(out, bitstreamMagic...)
	out = append(out, bitstreamVersion, byte(len(famName)))
	out = append(out, famName...)
	var u16 [2]byte
	put16 := func(v int) {
		binary.LittleEndian.PutUint16(u16[:], uint16(v))
		out = append(out, u16[:]...)
	}
	put16(se.w)
	put16(se.h)
	put16(len(se.pics))
	var tools byte
	if se.ts.halfPel {
		tools |= 1
	}
	out = append(out, byte(se.qindex), byte(se.ts.refs), tools)
	shapes := se.shapeList()
	out = append(out, byte(len(shapes)))
	for _, sh := range shapes {
		out = append(out, byte(sh))
	}
	out = append(out, byte(sbSize))

	for _, pic := range se.pics {
		if len(pic.segRects) == 0 || len(pic.segStreams) != len(pic.segRects) {
			return nil, fmt.Errorf("encoders: picture %d has no coded partitions", pic.index)
		}
		var flags byte
		if pic.isKey {
			flags |= 1
		}
		out = append(out, flags, byte(pic.qindex))
		put16(len(pic.segRects))
		for i, r := range pic.segRects {
			if r.row0 > 255 || r.row1 > 255 || r.col0 > 255 || r.col1 > 255 {
				return nil, fmt.Errorf("encoders: segment rect %+v exceeds container limits", r)
			}
			out = append(out, byte(r.row0), byte(r.row1), byte(r.col0), byte(r.col1))
			var u32 [4]byte
			binary.LittleEndian.PutUint32(u32[:], uint32(len(pic.segStreams[i])))
			out = append(out, u32[:]...)
		}
		for _, s := range pic.segStreams {
			out = append(out, s...)
		}
	}
	return out, nil
}

// bitstreamHeader is the parsed sequence header.
type bitstreamHeader struct {
	family  Family
	w, h    int
	frames  int
	qindex  int
	refs    int
	halfPel bool
	shapes  []Shape
}

// shapeBits returns the index width used to signal a non-NONE shape.
func (h *bitstreamHeader) shapeBits() int {
	n := 1
	for 1<<n < len(h.shapes) {
		n++
	}
	return n
}

type bsReader struct {
	data []byte
	pos  int
}

func (r *bsReader) remain() int { return len(r.data) - r.pos }

func (r *bsReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remain() < n {
		return nil, fmt.Errorf("encoders: bitstream truncated at offset %d (need %d bytes)", r.pos, n)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *bsReader) u8() (int, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return int(b[0]), nil
}

func (r *bsReader) u16() (int, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint16(b)), nil
}

func (r *bsReader) u32() (int, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(b)
	if v > 1<<30 {
		return 0, fmt.Errorf("encoders: unreasonable length %d in bitstream", v)
	}
	return int(v), nil
}

func parseHeader(r *bsReader) (*bitstreamHeader, error) {
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != bitstreamMagic {
		return nil, fmt.Errorf("encoders: bad bitstream magic %q", magic)
	}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != bitstreamVersion {
		return nil, fmt.Errorf("encoders: unsupported bitstream version %d", ver)
	}
	nameLen, err := r.u8()
	if err != nil {
		return nil, err
	}
	name, err := r.bytes(nameLen)
	if err != nil {
		return nil, err
	}
	h := &bitstreamHeader{family: Family(name)}
	if h.w, err = r.u16(); err != nil {
		return nil, err
	}
	if h.h, err = r.u16(); err != nil {
		return nil, err
	}
	if h.frames, err = r.u16(); err != nil {
		return nil, err
	}
	if h.qindex, err = r.u8(); err != nil {
		return nil, err
	}
	if h.refs, err = r.u8(); err != nil {
		return nil, err
	}
	tools, err := r.u8()
	if err != nil {
		return nil, err
	}
	h.halfPel = tools&1 != 0
	shapeCount, err := r.u8()
	if err != nil {
		return nil, err
	}
	if shapeCount < 1 || shapeCount > int(numShapes) {
		return nil, fmt.Errorf("encoders: invalid shape count %d", shapeCount)
	}
	for i := 0; i < shapeCount; i++ {
		v, err := r.u8()
		if err != nil {
			return nil, err
		}
		if v >= int(numShapes) || Shape(v) == ShapeNone {
			return nil, fmt.Errorf("encoders: invalid shape %d in header", v)
		}
		h.shapes = append(h.shapes, Shape(v))
	}
	sb, err := r.u8()
	if err != nil {
		return nil, err
	}
	if sb != sbSize {
		return nil, fmt.Errorf("encoders: bitstream superblock size %d unsupported (want %d)", sb, sbSize)
	}
	if h.w <= 0 || h.h <= 0 || h.frames <= 0 {
		return nil, fmt.Errorf("encoders: invalid sequence geometry %dx%d x%d", h.w, h.h, h.frames)
	}
	// Plausibility bound: the decoder allocates aligned planes per frame
	// and keeps every reference picture, so an adversarial header must
	// not be able to demand gigabytes before the first payload byte is
	// read. 8192 px per side covers 8K video; the total-sample budget is
	// two orders of magnitude above anything the scaled harness encodes.
	const maxDim, maxSamples = 8192, 1 << 26
	if h.w > maxDim || h.h > maxDim || h.w*h.h*h.frames > maxSamples {
		return nil, fmt.Errorf("encoders: implausible sequence geometry %dx%d x%d", h.w, h.h, h.frames)
	}
	return h, nil
}
