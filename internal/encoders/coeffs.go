package encoders

import (
	"fmt"
	"math/bits"
	"sync"

	"vcprof/internal/codec"
	"vcprof/internal/codec/entropy"
	"vcprof/internal/trace"
)

// Syntax-element call sites of the inlined boolean coder.
var (
	pcSynCBF   = trace.Site("syntax/cbf")
	pcSynEOB   = trace.Site("syntax/eob")
	pcSynZero  = trace.Sites("syntax/zero", 3)
	pcSynSign  = trace.Site("syntax/sign")
	pcSynGt1   = trace.Site("syntax/gt1")
	pcSynMag   = trace.Site("syntax/mag")
	pcSynMV    = trace.Sites("syntax/mv", 2)
	pcSynPart  = trace.Site("syntax/partition")
	pcSynMode  = trace.Site("syntax/mode")
	pcSynSkip  = trace.Site("syntax/skip")
	pcSynInter = trace.Site("syntax/inter")
)

// probModel holds the adaptive probability contexts of one entropy
// partition (a segment or tile), mirroring how real codecs keep
// per-tile context state.
type probModel struct {
	skip     entropy.Prob
	interFlg entropy.Prob
	cbf      entropy.Prob
	partNone [4]entropy.Prob // per depth
	zero     [3]entropy.Prob // per coefficient band
	gt1      entropy.Prob
	magPfx   entropy.Prob
	eobBits  [10]entropy.Prob
	mvPfx    [2]entropy.Prob
	sign     entropy.Prob
}

// newProbModel returns contexts initialized to the uninformed prior.
func newProbModel() *probModel {
	pm := &probModel{}
	pm.skip = entropy.DefaultProb
	pm.interFlg = entropy.DefaultProb
	pm.cbf = entropy.DefaultProb
	pm.gt1 = entropy.DefaultProb
	pm.magPfx = entropy.DefaultProb
	pm.sign = entropy.DefaultProb
	for i := range pm.partNone {
		pm.partNone[i] = entropy.DefaultProb
	}
	for i := range pm.zero {
		pm.zero[i] = entropy.DefaultProb
	}
	for i := range pm.eobBits {
		pm.eobBits[i] = entropy.DefaultProb
	}
	for i := range pm.mvPfx {
		pm.mvPfx[i] = entropy.DefaultProb
	}
	return pm
}

// zigzag scan tables, cached per transform size.
var scanTables sync.Map // int -> []int

// scanOrder returns the diagonal (zigzag) scan for an n×n block:
// coefficients ordered by anti-diagonal, which front-loads the
// low-frequency coefficients so end-of-block indices stay small.
func scanOrder(n int) []int {
	if t, ok := scanTables.Load(n); ok {
		return t.([]int)
	}
	order := make([]int, 0, n*n)
	for d := 0; d <= 2*(n-1); d++ {
		if d%2 == 0 {
			for y := min(d, n-1); y >= 0 && d-y < n; y-- {
				order = append(order, y*n+(d-y))
			}
		} else {
			for x := min(d, n-1); x >= 0 && d-x < n; x-- {
				order = append(order, (d-x)*n+x)
			}
		}
	}
	actual, _ := scanTables.LoadOrStore(n, order)
	return actual.([]int)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func coefBand(i int) int {
	switch {
	case i < 4:
		return 0
	case i < 16:
		return 1
	default:
		return 2
	}
}

// writeUnsigned codes v >= 0 as an adaptive Exp-Golomb-style code: the
// bit-length of v+1 in unary under pfx, then the low bits flat.
func writeUnsigned(enc *entropy.Encoder, pfx *entropy.Prob, v uint32) {
	n := bits.Len32(v + 1)
	for i := 0; i < n-1; i++ {
		enc.BitAdaptive(1, pfx)
	}
	enc.BitAdaptive(0, pfx)
	if n > 1 {
		enc.Literal((v+1)&((1<<uint(n-1))-1), n-1)
	}
}

func readUnsigned(dec *entropy.Decoder, pfx *entropy.Prob) uint32 {
	n := 1
	for dec.BitAdaptive(pfx) == 1 {
		n++
		if n > 32 {
			return 0 // corrupt stream; bounded
		}
	}
	if n == 1 {
		return 0
	}
	low := dec.Literal(n - 1)
	return (1<<uint(n-1) | low) - 1
}

// writeCoefBlock entropy-codes an n×n block of quantized levels:
// coded-block flag, end-of-block index, then per-coefficient zero flag,
// sign and magnitude in zigzag order.
func writeCoefBlock(enc *entropy.Encoder, pm *probModel, levels []int32, n int) error {
	if len(levels) < n*n {
		return fmt.Errorf("encoders: coef block %d×%d but %d levels", n, n, len(levels))
	}
	scan := scanOrder(n)
	eob := 0
	for i, idx := range scan {
		if levels[idx] != 0 {
			eob = i + 1
		}
	}
	if eob == 0 {
		enc.SetSite(pcSynCBF)
		enc.BitAdaptive(0, &pm.cbf)
		return nil
	}
	enc.SetSite(pcSynCBF)
	enc.BitAdaptive(1, &pm.cbf)
	eobBits := bits.Len32(uint32(n*n - 1))
	enc.SetSite(pcSynEOB)
	for i := eobBits - 1; i >= 0; i-- {
		enc.BitAdaptive(int(uint32(eob-1)>>uint(i))&1, &pm.eobBits[i])
	}
	for i := 0; i < eob; i++ {
		l := levels[scan[i]]
		band := coefBand(i)
		if l == 0 {
			enc.SetSite(pcSynZero[band])
			enc.BitAdaptive(1, &pm.zero[band])
			continue
		}
		enc.SetSite(pcSynZero[band])
		enc.BitAdaptive(0, &pm.zero[band])
		sign := 0
		m := uint32(l)
		if l < 0 {
			sign = 1
			m = uint32(-l)
		}
		enc.SetSite(pcSynSign)
		enc.BitAdaptive(sign, &pm.sign)
		enc.SetSite(pcSynGt1)
		if m == 1 {
			enc.BitAdaptive(0, &pm.gt1)
		} else {
			enc.BitAdaptive(1, &pm.gt1)
			enc.SetSite(pcSynMag)
			writeUnsigned(enc, &pm.magPfx, m-2)
		}
	}
	enc.SetSite(0)
	return nil
}

// readCoefBlock decodes a block written by writeCoefBlock.
func readCoefBlock(dec *entropy.Decoder, pm *probModel, n int) ([]int32, error) {
	levels := make([]int32, n*n)
	if dec.BitAdaptive(&pm.cbf) == 0 {
		return levels, nil
	}
	scan := scanOrder(n)
	eobBits := bits.Len32(uint32(n*n - 1))
	eob := 0
	for i := eobBits - 1; i >= 0; i-- {
		eob = eob<<1 | dec.BitAdaptive(&pm.eobBits[i])
	}
	eob++
	if eob > n*n {
		return nil, fmt.Errorf("encoders: decoded eob %d exceeds block size %d", eob, n*n)
	}
	for i := 0; i < eob; i++ {
		if dec.BitAdaptive(&pm.zero[coefBand(i)]) == 1 {
			continue
		}
		sign := dec.BitAdaptive(&pm.sign)
		var m uint32
		if dec.BitAdaptive(&pm.gt1) == 0 {
			m = 1
		} else {
			m = readUnsigned(dec, &pm.magPfx) + 2
		}
		v := int32(m)
		if sign == 1 {
			v = -v
		}
		levels[scan[i]] = v
	}
	return levels, dec.Err()
}

// writeMV codes a motion vector as a delta from pred.
func writeMV(enc *entropy.Encoder, pm *probModel, mv, pred codec.MV) {
	for i, d := range [2]int32{int32(mv.X) - int32(pred.X), int32(mv.Y) - int32(pred.Y)} {
		u := uint32(d<<1) ^ uint32(d>>31) // zigzag signed→unsigned
		enc.SetSite(pcSynMV[i])
		writeUnsigned(enc, &pm.mvPfx[i], u)
	}
	enc.SetSite(0)
}

// readMV decodes a motion vector coded by writeMV.
func readMV(dec *entropy.Decoder, pm *probModel, pred codec.MV) codec.MV {
	var comp [2]int32
	for i := range comp {
		u := readUnsigned(dec, &pm.mvPfx[i])
		comp[i] = int32(u>>1) ^ -int32(u&1)
	}
	return codec.MV{X: pred.X + int16(comp[0]), Y: pred.Y + int16(comp[1])}
}
