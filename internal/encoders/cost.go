package encoders

// The static cost table behind size-aware admission. CostHint predicts
// the relative dynamic cost of an encode from its operating point
// before any work happens — the signal the service queue uses to run
// shortest-expected-work first so a heavy encode cannot head-of-line
// block cheap ones. Estimates only steer scheduling: they are never
// part of a result, a content address, or any byte-compared export,
// and ROADMAP item 3's learned model can replace this table without
// touching results.

// familyBaseCost is the per-pixel relative work of each family at
// middle effort, in 1/16ths of the x264 baseline. The ratios follow
// the paper's Fig. 1 instruction-count ordering: the AV1-family
// encoders burn an order of magnitude more instructions per pixel
// than x264, with SVT-AV1 roughly halfway to libaom.
var familyBaseCost = map[Family]uint64{
	X264:   16,
	X265:   40,
	VP9:    56,
	SVTAV1: 120,
	Libaom: 240,
}

// CostHint estimates the relative dynamic cost of one encode in
// arbitrary work units: per-pixel family base cost × scaled pixels ×
// frames, shaped by preset effort (slower presets search up to 4×
// more) and CRF (lower CRF keeps more coefficients alive, up to ~1.5×
// at CRF 0). Unknown families get the heaviest base so they are never
// under-scheduled. The result is always at least 1.
func CostHint(f Family, pixelsPerFrame, frames, crf, preset int) uint64 {
	base := familyBaseCost[f]
	if base == 0 {
		base = 240
	}
	if pixelsPerFrame < 1 {
		pixelsPerFrame = 1
	}
	if frames < 1 {
		frames = 1
	}
	effMul := 4.0
	crfMul := 1.0
	if s, ok := specs[f]; ok {
		effMul = 1 + 3*s.effort(preset)
		if s.crfMax > 0 {
			c := crf
			if c < 0 {
				c = 0
			}
			if c > s.crfMax {
				c = s.crfMax
			}
			crfMul = 1.5 - float64(c)/float64(s.crfMax)
		}
	}
	u := float64(base) / 16 * float64(pixelsPerFrame) * float64(frames) * effMul * crfMul
	if u < 1 {
		return 1
	}
	return uint64(u)
}
