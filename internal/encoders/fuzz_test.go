package encoders

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vcprof/internal/video"
)

// gencorpus regenerates the committed seed corpus from real encodes:
//
//	go test ./internal/encoders -run GenFuzzCorpus -gencorpus
var gencorpus = flag.Bool("gencorpus", false, "rewrite the committed fuzz seed corpus")

// fuzzClip builds the tiny deterministic clip the seed corpus encodes.
func fuzzClip(t testing.TB, frames int) *video.Clip {
	t.Helper()
	clip, err := video.Generate(video.ClipMeta{
		Name: "fuzzseed", Width: 64, Height: 64, FPS: 30, Entropy: 4.5, Seed: 7,
	}, video.GenerateOptions{Frames: frames, ScaleDiv: 1})
	if err != nil {
		t.Fatal(err)
	}
	return clip
}

// fuzzSeedStreams encodes one tiny clip per family and returns the
// containers: real, decodable inputs that put the fuzzer deep inside
// the payload parser from the first execution.
func fuzzSeedStreams(t testing.TB) map[string][]byte {
	t.Helper()
	clip := fuzzClip(t, 3)
	out := map[string][]byte{}
	for _, fam := range Families() {
		enc := MustNew(fam)
		lo, hi := enc.CRFRange()
		res, err := enc.Encode(context.Background(), clip, Options{CRF: (lo + hi) / 2, Preset: 5, Threads: 1, KeepBitstream: true})
		if err != nil {
			t.Fatalf("%s: seed encode: %v", fam, err)
		}
		out[string(fam)] = res.Bitstream
	}
	return out
}

const fuzzCorpusDir = "testdata/fuzz/FuzzDecodeBitstream"

// TestGenFuzzCorpus rewrites the committed corpus under -gencorpus and
// otherwise verifies the committed seeds still decode (i.e. the corpus
// is not stale against the current container version).
func TestGenFuzzCorpus(t *testing.T) {
	if *gencorpus {
		if err := os.MkdirAll(fuzzCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for fam, bs := range fuzzSeedStreams(t) {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(bs)) + ")\n"
			path := filepath.Join(fuzzCorpusDir, "seed-"+fam)
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("seed corpus rewritten under %s", fuzzCorpusDir)
		return
	}
	entries, err := os.ReadDir(fuzzCorpusDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("seed corpus missing (run with -gencorpus): %v", err)
	}
}

// FuzzDecodeBitstream feeds arbitrary bytes to the container decoder.
// The decoder must never panic, never allocate implausibly (the header
// geometry cap), and when it does accept an input, the frames it
// returns must be structurally sound.
func FuzzDecodeBitstream(f *testing.F) {
	// Truncations and near-miss headers steer early mutation toward the
	// parser's decision points; the committed corpus under testdata/fuzz
	// contributes full valid streams for every family.
	f.Add([]byte{})
	f.Add([]byte("VCBS"))
	f.Add([]byte("VCBS\x03\x07svt-av1"))
	f.Add([]byte("XCBS\x03\x07svt-av1\x40\x00\x40\x00\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := DecodeBitstream(data)
		if err != nil {
			return
		}
		if len(frames) == 0 {
			t.Fatal("accepted bitstream decoded to zero frames")
		}
		w, h := frames[0].Y.W, frames[0].Y.H
		for i, fr := range frames {
			if fr == nil || fr.Y == nil || fr.U == nil || fr.V == nil {
				t.Fatalf("frame %d has nil planes", i)
			}
			if fr.Y.W != w || fr.Y.H != h {
				t.Fatalf("frame %d geometry %dx%d differs from frame 0 %dx%d", i, fr.Y.W, fr.Y.H, w, h)
			}
			if fr.U.W != fr.V.W || fr.U.H != fr.V.H || fr.U.W != w/2 || fr.U.H != h/2 {
				t.Fatalf("frame %d chroma geometry %dx%d inconsistent with luma %dx%d", i, fr.U.W, fr.U.H, w, h)
			}
			if len(fr.Y.Pix) < fr.Y.W*fr.Y.H {
				t.Fatalf("frame %d luma buffer %d too small for %dx%d", i, len(fr.Y.Pix), fr.Y.W, fr.Y.H)
			}
			if fr.Index != i {
				t.Fatalf("frame %d carries index %d", i, fr.Index)
			}
		}
	})
}
