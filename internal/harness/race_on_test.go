//go:build race

package harness

// raceEnabled reports whether this test binary was built with the race
// detector. The golden comparison (pure value determinism, no added
// concurrency) is skipped under -race to keep the detector pass — which
// runs the worker-equivalence and cache suites — inside a sane budget.
const raceEnabled = true
