package harness

import (
	"fmt"

	"vcprof/internal/encoders"
	"vcprof/internal/metrics"
	"vcprof/internal/video"
)

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func d(v uint64) string    { return fmt.Sprintf("%d", v) }
func sci(v float64) string { return fmt.Sprintf("%.3g", v) }

func init() {
	register(Experiment{ID: "table1", Title: "vbench input catalog (resolution, fps, entropy)", Plan: planTable1})
	register(Experiment{ID: "fig1", Title: "Execution time vs CRF for the five encoders (game1)", Plan: planFig1})
	register(Experiment{ID: "fig2a", Title: "PSNR BD-Rate vs execution time per encoder", Plan: planFig2a})
	register(Experiment{ID: "fig2b", Title: "PSNR vs execution time, SVT-AV1 CRF sweep (game1)", Plan: planFig2b})
}

func planTable1(Scale) (*Plan, error) {
	assemble := func(Scale, []CellResult) ([]*Table, error) {
		t := &Table{ID: "table1", Title: "vbench catalog", Header: []string{"video", "resolution", "fps", "entropy"}}
		for _, m := range video.Vbench() {
			t.AddRow(m.Name, fmt.Sprintf("%dx%d", m.Width, m.Height), fmt.Sprintf("%d", m.FPS), f2(m.Entropy))
		}
		return []*Table{t}, nil
	}
	return &Plan{Assemble: assemble}, nil
}

// famCRF keys the (encoder, CRF) grids of fig1 and fig2a. Both declare
// the same counted cells at mapped CRF and mid preset, so the grids
// overlap in the memo cache wherever the CRF sets coincide.
type famCRF struct {
	fam encoders.Family
	crf int
}

func famNames() []string {
	var out []string
	for _, f := range encoders.Families() {
		out = append(out, string(f))
	}
	return out
}

// planFig1 encodes game1 at each CRF with every encoder and reports
// modeled wall time and instruction count; the paper's Fig. 1 shape is
// SVT-AV1 ≫ libaom > x265 ≈ x264 ≈ vp9, falling with CRF.
func planFig1(s Scale) (*Plan, error) {
	var cells []Cell
	idx := map[famCRF]int{}
	for _, crf := range s.CRFs {
		for _, fam := range encoders.Families() {
			idx[famCRF{fam, crf}] = len(cells)
			cells = append(cells, s.CountedCell(fam, "game1", mapCRF(fam, crf), midPreset(fam)))
		}
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		tTime := &Table{ID: "fig1", Title: "encode wall time (ms, modeled), game1",
			Header: append([]string{"crf"}, famNames()...)}
		tInst := &Table{ID: "fig1-insts", Title: "instructions (millions), game1",
			Header: append([]string{"crf"}, famNames()...)}
		for _, crf := range s.CRFs {
			rowT := []string{d(uint64(crf))}
			rowI := []string{d(uint64(crf))}
			for _, fam := range encoders.Families() {
				r := res[idx[famCRF{fam, crf}]].Enc
				rowT = append(rowT, f2(instMS(r.Insts)))
				rowI = append(rowI, f2(float64(r.Insts)/1e6))
			}
			tTime.AddRow(rowT...)
			tInst.AddRow(rowI...)
		}
		return []*Table{tTime, tInst}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

// fig2aCRFs is the RD-curve grid: the scale's CRF set, padded to the
// four points BD-Rate integration needs.
func fig2aCRFs(s Scale) []int {
	if len(s.CRFs) >= 4 {
		return s.CRFs
	}
	return []int{10, 25, 40, 55}
}

// planFig2a builds an RD curve per encoder over the CRF grid, computes
// BD-Rate against the x264 anchor, and pairs it with total modeled
// runtime.
func planFig2a(s Scale) (*Plan, error) {
	crfs := fig2aCRFs(s)
	var cells []Cell
	idx := map[famCRF]int{}
	for _, fam := range encoders.Families() {
		for _, crf := range crfs {
			idx[famCRF{fam, crf}] = len(cells)
			cells = append(cells, s.CountedCell(fam, "game1", mapCRF(fam, crf), midPreset(fam)))
		}
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		crfs := fig2aCRFs(s)
		curves := map[encoders.Family]metrics.RDCurve{}
		ms := map[encoders.Family]float64{}
		for _, fam := range encoders.Families() {
			for _, crf := range crfs {
				r := res[idx[famCRF{fam, crf}]].Enc
				curves[fam] = append(curves[fam], metrics.RDPoint{BitrateKbps: r.BitrateKbps, PSNR: r.PSNR})
				ms[fam] += instMS(r.Insts)
			}
		}
		t := &Table{ID: "fig2a", Title: "PSNR BD-Rate (% vs x264) and total encode time",
			Header: []string{"encoder", "bdrate_pct", "time_ms"}}
		for _, fam := range encoders.Families() {
			bd := 0.0
			if fam != encoders.X264 {
				var err error
				bd, err = metrics.BDRate(curves[encoders.X264], curves[fam])
				if err != nil {
					return nil, fmt.Errorf("fig2a: BD-Rate for %s: %w", fam, err)
				}
			}
			t.AddRow(string(fam), f2(bd), f2(ms[fam]))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

// planFig2b sweeps SVT-AV1 CRF on game1. Its cells are the same
// preset-4 stat cells fig4–fig7 measure, so a full suite run computes
// them once.
func planFig2b(s Scale) (*Plan, error) {
	var cells []Cell
	for _, crf := range s.CRFs {
		cells = append(cells, s.StatCell(encoders.SVTAV1, "game1", crf, 4))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "fig2b", Title: "PSNR vs encode time, SVT-AV1 preset 4 (game1)",
			Header: []string{"crf", "psnr_db", "time_ms", "kbps"}}
		for i, crf := range s.CRFs {
			st := res[i].Stat
			t.AddRow(d(uint64(crf)), f2(st.PSNR), f2(st.ModeledMS()), f1(st.BitrateKbps))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}
