package harness

import (
	"fmt"

	"vcprof/internal/encoders"
	"vcprof/internal/metrics"
	"vcprof/internal/video"
)

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func d(v uint64) string    { return fmt.Sprintf("%d", v) }
func sci(v float64) string { return fmt.Sprintf("%.3g", v) }

func init() {
	register(Experiment{ID: "table1", Title: "vbench input catalog (resolution, fps, entropy)", Run: runTable1})
	register(Experiment{ID: "fig1", Title: "Execution time vs CRF for the five encoders (game1)", Run: runFig1})
	register(Experiment{ID: "fig2a", Title: "PSNR BD-Rate vs execution time per encoder", Run: runFig2a})
	register(Experiment{ID: "fig2b", Title: "PSNR vs execution time, SVT-AV1 CRF sweep (game1)", Run: runFig2b})
}

func runTable1(s Scale) ([]*Table, error) {
	t := &Table{ID: "table1", Title: "vbench catalog", Header: []string{"video", "resolution", "fps", "entropy"}}
	for _, m := range video.Vbench() {
		t.AddRow(m.Name, fmt.Sprintf("%dx%d", m.Width, m.Height), fmt.Sprintf("%d", m.FPS), f2(m.Entropy))
	}
	return []*Table{t}, nil
}

// runFig1 encodes game1 at each CRF with every encoder and reports
// wall time and instruction count; the paper's Fig. 1 shape is
// SVT-AV1 ≫ libaom > x265 ≈ x264 ≈ vp9, falling with CRF.
func runFig1(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	tTime := &Table{ID: "fig1", Title: "encode wall time (ms), game1",
		Header: append([]string{"crf"}, famNames()...)}
	tInst := &Table{ID: "fig1-insts", Title: "instructions (millions), game1",
		Header: append([]string{"crf"}, famNames()...)}
	for _, crf := range s.CRFs {
		rowT := []string{d(uint64(crf))}
		rowI := []string{d(uint64(crf))}
		for _, fam := range encoders.Families() {
			res, err := runCounted(fam, clip, mapCRF(fam, crf), midPreset(fam))
			if err != nil {
				return nil, err
			}
			rowT = append(rowT, f2(res.Wall.Seconds()*1000))
			rowI = append(rowI, f2(float64(res.Insts)/1e6))
		}
		tTime.AddRow(rowT...)
		tInst.AddRow(rowI...)
	}
	return []*Table{tTime, tInst}, nil
}

func famNames() []string {
	var out []string
	for _, f := range encoders.Families() {
		out = append(out, string(f))
	}
	return out
}

// runCounted runs a single-threaded instrumented encode.
func runCounted(fam encoders.Family, clip *video.Clip, crf, preset int) (*encoders.Result, error) {
	enc, err := encoders.New(fam)
	if err != nil {
		return nil, err
	}
	return enc.Encode(clip, encoders.Options{
		CRF: crf, Preset: preset, Threads: 1,
		NewWorkerCtx: newCountingCtx,
	})
}

// runFig2a builds an RD curve per encoder over the CRF grid, computes
// BD-Rate against the x264 anchor, and pairs it with total runtime.
func runFig2a(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	crfs := s.CRFs
	if len(crfs) < 4 {
		crfs = []int{10, 25, 40, 55}
	}
	curves := map[encoders.Family]metrics.RDCurve{}
	seconds := map[encoders.Family]float64{}
	for _, fam := range encoders.Families() {
		enc, err := encoders.New(fam)
		if err != nil {
			return nil, err
		}
		for _, crf := range crfs {
			res, err := enc.Encode(clip, encoders.Options{CRF: mapCRF(fam, crf), Preset: midPreset(fam)})
			if err != nil {
				return nil, err
			}
			curves[fam] = append(curves[fam], metrics.RDPoint{BitrateKbps: res.BitrateKbps, PSNR: res.PSNR})
			seconds[fam] += res.Wall.Seconds()
		}
	}
	t := &Table{ID: "fig2a", Title: "PSNR BD-Rate (% vs x264) and total encode time",
		Header: []string{"encoder", "bdrate_pct", "time_ms"}}
	for _, fam := range encoders.Families() {
		bd := 0.0
		if fam != encoders.X264 {
			var err error
			bd, err = metrics.BDRate(curves[encoders.X264], curves[fam])
			if err != nil {
				return nil, fmt.Errorf("fig2a: BD-Rate for %s: %w", fam, err)
			}
		}
		t.AddRow(string(fam), f2(bd), f2(seconds[fam]*1000))
	}
	return []*Table{t}, nil
}

func runFig2b(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	enc, err := encoders.New(encoders.SVTAV1)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig2b", Title: "PSNR vs encode time, SVT-AV1 preset 4 (game1)",
		Header: []string{"crf", "psnr_db", "time_ms", "kbps"}}
	for _, crf := range s.CRFs {
		res, err := enc.Encode(clip, encoders.Options{CRF: crf, Preset: 4})
		if err != nil {
			return nil, err
		}
		t.AddRow(d(uint64(crf)), f2(res.PSNR), f2(res.Wall.Seconds()*1000), f1(res.BitrateKbps))
	}
	return []*Table{t}, nil
}
