package harness

import (
	"context"

	"vcprof/internal/encoders"
	"vcprof/internal/sched"
)

// The bridge between the cell engine and sub-cell sharding: a counted
// cell running on (or under a context that carries) a shard pool hands
// its encode task graph back to that pool through the encoders'
// Executor hook. Cell-level tasks forked this way are fork-join
// nested: the pool worker that started the cell keeps executing shards
// — its own or stolen — while the cell's graph completes, so sharding
// adds parallelism without adding goroutines or deadlock risk.
//
// Only counted cells shard. Stat, window and pipeline cells attach
// live cache-hierarchy and branch-predictor sinks whose simulated
// state depends on instruction interleaving; the perf façade pins
// those to the serial executor (see perf.Stat), which is what keeps
// their golden counters byte-identical.

// poolExecutor adapts a sched.Pool to the encoders.Executor surface.
// encoders.TaskGraph and sched.Graph are structurally identical, so
// the handoff is direct: the encode's shards become pool tasks.
type poolExecutor struct {
	p *sched.Pool
}

func (e poolExecutor) Workers() int { return e.p.Workers() }

func (e poolExecutor) RunGraph(ctx context.Context, g encoders.TaskGraph) error {
	return e.p.RunGraph(ctx, g)
}

// executorFrom returns the Executor for a cell evaluation context, or
// nil when no pool governs it (direct Encode calls, tests).
func executorFrom(ctx context.Context) encoders.Executor {
	if p := sched.PoolFrom(ctx); p != nil {
		return poolExecutor{p: p}
	}
	return nil
}
