package harness

import (
	"vcprof/internal/encoders"
	"vcprof/internal/trace"
)

func init() {
	register(Experiment{ID: "table2", Title: "Instruction mix per video, SVT-AV1 preset 8 CRF 63", Plan: planTable2})
	register(Experiment{ID: "fig3", Title: "Op-mix per video across the CRF sweep (SVT-AV1)", Plan: planFig3})
}

// CountingCtx is the worker-context factory for counting-only runs.
func CountingCtx(int) *trace.Ctx { return trace.New() }

func mixRow(prefix []string, insts uint64, m *trace.Mix) []string {
	return append(prefix,
		sci(float64(insts)),
		f1(m.Percent(trace.OpBranch)),
		f1(m.Percent(trace.OpLoad)),
		f1(m.Percent(trace.OpStore)),
		f1(m.Percent(trace.OpAVX)),
		f1(m.Percent(trace.OpSSE)),
		f1(m.Percent(trace.OpOther)),
	)
}

var mixHeader = []string{"insts", "branch%", "load%", "store%", "avx%", "sse%", "other%"}

func planTable2(s Scale) (*Plan, error) {
	var cells []Cell
	for _, name := range s.clipNames() {
		cells = append(cells, s.CountedCell(encoders.SVTAV1, name, 63, 8))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "table2", Title: "instruction mix, SVT-AV1 preset 8, CRF 63",
			Header: append([]string{"video"}, mixHeader...)}
		for i, name := range s.clipNames() {
			r := res[i].Enc
			mix := r.Mix
			t.AddRow(mixRow([]string{name}, r.Insts, &mix)...)
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

func planFig3(s Scale) (*Plan, error) {
	var cells []Cell
	idx := map[clipCRF]int{}
	for _, name := range s.clipNames() {
		for _, crf := range s.CRFs {
			idx[clipCRF{name, crf}] = len(cells)
			cells = append(cells, s.CountedCell(encoders.SVTAV1, name, crf, 4))
		}
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "fig3", Title: "op-mix vs CRF (SVT-AV1 preset 4)",
			Header: append([]string{"video", "crf"}, mixHeader...)}
		for _, name := range s.clipNames() {
			for _, crf := range s.CRFs {
				r := res[idx[clipCRF{name, crf}]].Enc
				mix := r.Mix
				t.AddRow(mixRow([]string{name, d(uint64(crf))}, r.Insts, &mix)...)
			}
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}
