package harness

import (
	"vcprof/internal/encoders"
	"vcprof/internal/trace"
)

func init() {
	register(Experiment{ID: "table2", Title: "Instruction mix per video, SVT-AV1 preset 8 CRF 63", Run: runTable2})
	register(Experiment{ID: "fig3", Title: "Op-mix per video across the CRF sweep (SVT-AV1)", Run: runFig3})
}

// CountingCtx is the worker-context factory for counting-only runs.
func CountingCtx(int) *trace.Ctx { return trace.New() }

// newCountingCtx is the internal alias used by the experiment runners.
func newCountingCtx(w int) *trace.Ctx { return CountingCtx(w) }

func mixRow(prefix []string, insts uint64, m *trace.Mix) []string {
	return append(prefix,
		sci(float64(insts)),
		f1(m.Percent(trace.OpBranch)),
		f1(m.Percent(trace.OpLoad)),
		f1(m.Percent(trace.OpStore)),
		f1(m.Percent(trace.OpAVX)),
		f1(m.Percent(trace.OpSSE)),
		f1(m.Percent(trace.OpOther)),
	)
}

var mixHeader = []string{"insts", "branch%", "load%", "store%", "avx%", "sse%", "other%"}

func runTable2(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{ID: "table2", Title: "instruction mix, SVT-AV1 preset 8, CRF 63",
		Header: append([]string{"video"}, mixHeader...)}
	for _, name := range s.clipNames() {
		clip, err := s.Clip(name)
		if err != nil {
			return nil, err
		}
		res, err := runCounted(encoders.SVTAV1, clip, 63, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(mixRow([]string{name}, res.Insts, &res.Mix)...)
	}
	return []*Table{t}, nil
}

func runFig3(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{ID: "fig3", Title: "op-mix vs CRF (SVT-AV1 preset 4)",
		Header: append([]string{"video", "crf"}, mixHeader...)}
	for _, name := range s.clipNames() {
		clip, err := s.Clip(name)
		if err != nil {
			return nil, err
		}
		for _, crf := range s.CRFs {
			res, err := runCounted(encoders.SVTAV1, clip, crf, 4)
			if err != nil {
				return nil, err
			}
			t.AddRow(mixRow([]string{name, d(uint64(crf))}, res.Insts, &res.Mix)...)
		}
	}
	return []*Table{t}, nil
}
