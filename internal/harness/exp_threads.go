package harness

import (
	"fmt"

	"vcprof/internal/encoders"
)

func init() {
	// The paper shows four thread-scalability panels (Figs. 12–15) that
	// differ in the x264 preset/CRF operating point; the AV1-family
	// encoders run the same configuration in all four, so their schedule
	// cells are shared between panels through the memo cache.
	register(Experiment{ID: "fig12", Title: "Thread scalability, game1 (x264 preset 0, CRF 51)", Plan: threadPlan("fig12", 0, 51)})
	register(Experiment{ID: "fig13", Title: "Thread scalability, game1 (x264 preset 2, CRF 51)", Plan: threadPlan("fig13", 2, 51)})
	register(Experiment{ID: "fig14", Title: "Thread scalability, game1 (x264 preset 5, CRF 50)", Plan: threadPlan("fig14", 5, 50)})
	register(Experiment{ID: "fig15", Title: "Thread scalability, game1 (x264 preset 5, CRF 30)", Plan: threadPlan("fig15", 5, 30)})
	register(Experiment{ID: "fig16", Title: "Top-down vs thread count for the four encoders", Plan: planFig16})
}

// scalingFamilies are the four encoders of the thread study.
func scalingFamilies() []encoders.Family {
	return []encoders.Family{encoders.X264, encoders.X265, encoders.Libaom, encoders.SVTAV1}
}

// threadOperatingPoint maps the per-panel x264 setting onto each family.
func threadOperatingPoint(fam encoders.Family, x264Preset, x264CRF int) (crf, preset int) {
	if fam == encoders.X264 || fam == encoders.X265 {
		return x264CRF, x264Preset
	}
	// AV1-family encoders run a comparable-effort point: map the x264
	// CRF into 0–63 and use a mid-fast preset.
	return x264CRF * 63 / 51, 6
}

// threadPlan reproduces one thread-scalability panel: each encoder's
// task graph is profiled once (one schedule cell per family) and its
// makespan simulated for every core count — the substitution for the
// paper's wall-clock runs on a 12-core Xeon (see DESIGN.md).
func threadPlan(id string, x264Preset, x264CRF int) func(Scale) (*Plan, error) {
	return func(s Scale) (*Plan, error) {
		var cells []Cell
		for _, fam := range scalingFamilies() {
			crf, preset := threadOperatingPoint(fam, x264Preset, x264CRF)
			cells = append(cells, s.ScheduleCell(fam, "game1", crf, preset))
		}
		assemble := func(s Scale, res []CellResult) ([]*Table, error) {
			t := &Table{ID: id, Title: fmt.Sprintf("speedup vs threads (x264 preset %d, CRF %d)", x264Preset, x264CRF),
				Header: []string{"threads"}}
			for _, fam := range scalingFamilies() {
				t.Header = append(t.Header, string(fam))
			}
			rows := map[int][]string{}
			for _, th := range s.Threads {
				rows[th] = []string{d(uint64(th))}
			}
			for i := range scalingFamilies() {
				sched := res[i].Sched
				for _, th := range s.Threads {
					sp, err := sched.Speedup(th)
					if err != nil {
						return nil, err
					}
					rows[th] = append(rows[th], f2(sp))
				}
			}
			for _, th := range s.Threads {
				t.AddRow(rows[th]...)
			}
			return []*Table{t}, nil
		}
		return &Plan{Cells: cells, Assemble: assemble}, nil
	}
}

// planFig16 reports top-down breakdowns as the thread count grows. The
// single-thread breakdown comes from a perf cell on the thread-study
// clip; at higher thread counts the same workload profile is adjusted
// by the simulated parallel efficiency: slots issued on under-utilized
// or waiting cores surface as backend-bound stalls, which is exactly
// the imbalance signature the paper reads from x265.
func planFig16(s Scale) (*Plan, error) {
	var cells []Cell
	fams := scalingFamilies()
	statIdx := make([]int, len(fams))
	schedIdx := make([]int, len(fams))
	for i, fam := range fams {
		crf, preset := threadOperatingPoint(fam, 5, 40)
		statIdx[i] = len(cells)
		cells = append(cells, s.ThreadStatCell(fam, "game1", crf, preset))
		schedIdx[i] = len(cells)
		cells = append(cells, s.ScheduleCell(fam, "game1", crf, preset))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "fig16", Title: "top-down vs thread count (game1)",
			Header: []string{"encoder", "threads", "retiring", "badspec", "frontend", "backend", "imbalance"}}
		for i, fam := range fams {
			st := res[statIdx[i]].Stat
			sched := res[schedIdx[i]].Sched
			for _, th := range s.Threads {
				if th != 1 && th != 2 && th != 4 && th != 8 {
					continue
				}
				sp, err := sched.Speedup(th)
				if err != nil {
					return nil, err
				}
				imb, err := sched.Imbalance(th)
				if err != nil {
					return nil, err
				}
				eff := sp / float64(th)
				if eff > 1 {
					eff = 1
				}
				td := st.TopDown
				// Under-utilization: busy cores keep the single-thread
				// profile; the efficiency shortfall surfaces as extra
				// backend-bound (waiting) slots.
				shift := (1 - eff) * td.Retiring * 0.5
				td.Retiring -= shift
				td.Backend += shift
				td.MemoryBound += shift / 2
				td.CoreBound = td.Backend - td.MemoryBound
				t.AddRow(string(fam), d(uint64(th)),
					f3(td.Retiring), f3(td.BadSpec), f3(td.Frontend), f3(td.Backend),
					f2(imb))
			}
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}
