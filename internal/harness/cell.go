package harness

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/pipeline"
)

// CellKind selects which measurement a Cell performs.
type CellKind uint8

const (
	// CellStat runs the perf façade (live branch predictor + cache
	// hierarchy) and yields Counters.
	CellStat CellKind = iota
	// CellCounted runs a counting-only instrumented encode and yields
	// the encoder Result (instructions, mix, quality, bitstream size).
	CellCounted
	// CellWindow records a halfway micro-op window (the Pin substitute)
	// and yields the Recorder.
	CellWindow
	// CellPipeline replays the cell's recorded window through the
	// Broadwell core model and yields stall counters. It derives its
	// window through the cache, so a CellWindow at the same operating
	// point is computed at most once.
	CellPipeline
	// CellSchedule profiles the encoder's task graph for makespan
	// simulation (the thread-scalability substitute).
	CellSchedule
)

func (k CellKind) String() string {
	switch k {
	case CellStat:
		return "stat"
	case CellCounted:
		return "counted"
	case CellWindow:
		return "window"
	case CellPipeline:
		return "pipeline"
	case CellSchedule:
		return "schedule"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Cell keys one measurement of an experiment's grid: the kind plus the
// full operating point (family, clip, frames, resolution divisor, CRF,
// preset, threads, window length). Two experiments that need the same
// measurement construct equal Cells and therefore share one computation
// through the process-wide memo cache.
type Cell struct {
	Kind    CellKind
	Family  encoders.Family
	Clip    string
	Frames  int
	Div     int
	CRF     int
	Preset  int
	Threads int
	// WindowOps bounds the recorded window (CellWindow/CellPipeline).
	WindowOps uint64
}

func (c Cell) String() string {
	return fmt.Sprintf("%s(%s %s f%d/d%d crf%d p%d t%d w%d)",
		c.Kind, c.Family, c.Clip, c.Frames, c.Div, c.CRF, c.Preset, c.Threads, c.WindowOps)
}

// windowKey returns the CellWindow cell a CellPipeline cell replays.
func (c Cell) windowKey() Cell {
	c.Kind = CellWindow
	return c
}

// StatCell keys a perf-façade run at the characterization scale.
func (s Scale) StatCell(fam encoders.Family, clip string, crf, preset int) Cell {
	return Cell{Kind: CellStat, Family: fam, Clip: clip, Frames: s.Frames, Div: s.ScaleDiv,
		CRF: crf, Preset: preset, Threads: 1}
}

// CountedCell keys a counting-only instrumented encode.
func (s Scale) CountedCell(fam encoders.Family, clip string, crf, preset int) Cell {
	return Cell{Kind: CellCounted, Family: fam, Clip: clip, Frames: s.Frames, Div: s.ScaleDiv,
		CRF: crf, Preset: preset, Threads: 1}
}

// WindowCell keys a recorded micro-op window at the scale's window size.
func (s Scale) WindowCell(fam encoders.Family, clip string, crf, preset int) Cell {
	return Cell{Kind: CellWindow, Family: fam, Clip: clip, Frames: s.Frames, Div: s.ScaleDiv,
		CRF: crf, Preset: preset, Threads: 1, WindowOps: s.WindowOps}
}

// PipelineCell keys a pipeline replay of the corresponding window.
func (s Scale) PipelineCell(fam encoders.Family, clip string, crf, preset int) Cell {
	c := s.WindowCell(fam, clip, crf, preset)
	c.Kind = CellPipeline
	return c
}

// ThreadStatCell keys a perf-façade run on the larger thread-study clip.
func (s Scale) ThreadStatCell(fam encoders.Family, clip string, crf, preset int) Cell {
	return Cell{Kind: CellStat, Family: fam, Clip: clip, Frames: s.ThreadFrames, Div: s.ThreadScaleDiv,
		CRF: crf, Preset: preset, Threads: 1}
}

// ScheduleCell keys a task-graph profile on the thread-study clip.
func (s Scale) ScheduleCell(fam encoders.Family, clip string, crf, preset int) Cell {
	return Cell{Kind: CellSchedule, Family: fam, Clip: clip, Frames: s.ThreadFrames, Div: s.ThreadScaleDiv,
		CRF: crf, Preset: preset, Threads: 1}
}

// CellResult carries the outcome of one cell. Exactly one field is set,
// selected by the cell's kind. Results are shared between experiments
// and between goroutines: treat every field as immutable.
type CellResult struct {
	Stat  *perf.Counters     // CellStat
	Enc   *encoders.Result   // CellCounted
	Rec   *trace.Recorder    // CellWindow
	Pipe  *pipeline.Result   // CellPipeline
	Sched *encoders.Schedule // CellSchedule
}

// run computes the cell's measurement (uncached). Cancelling ctx
// aborts the underlying encode at its next task boundary.
func (c Cell) run(ctx context.Context) (CellResult, error) {
	clip, err := cachedClip(c.Clip, c.Frames, c.Div)
	if err != nil {
		return CellResult{}, err
	}
	enc, err := encoders.New(c.Family)
	if err != nil {
		return CellResult{}, err
	}
	opts := encoders.Options{CRF: c.CRF, Preset: c.Preset, Threads: c.Threads}
	switch c.Kind {
	case CellStat:
		st, err := perf.Stat(ctx, enc, clip, opts)
		return CellResult{Stat: st}, err
	case CellCounted:
		opts.NewWorkerCtx = func(int) *trace.Ctx { return trace.New() }
		// Counting-only encodes shard below the cell when a pool governs
		// the run; merge order is pinned, so results are schedule-proof.
		opts.Executor = executorFrom(ctx)
		res, err := enc.Encode(ctx, clip, opts)
		return CellResult{Enc: res}, err
	case CellWindow:
		rec, _, err := perf.RecordWindow(ctx, enc, clip, opts, 0.5, c.WindowOps)
		return CellResult{Rec: rec}, err
	case CellPipeline:
		win, _, err := getCell(ctx, c.windowKey())
		if err != nil {
			return CellResult{}, err
		}
		sim, err := pipeline.New(pipeline.Broadwell())
		if err != nil {
			return CellResult{}, err
		}
		res, err := sim.RunCtx(ctx, win.Rec.Ops)
		return CellResult{Pipe: res}, err
	case CellSchedule:
		sched, _, err := encoders.ProfileSchedule(ctx, enc, clip, opts)
		return CellResult{Sched: sched}, err
	}
	return CellResult{}, fmt.Errorf("harness: unknown cell kind %d", c.Kind)
}

// weight returns the eviction weight of a completed cell. Window cells
// hold the recorded micro-ops and dominate memory; everything else is a
// handful of counters.
func (r CellResult) weight() int64 {
	if r.Rec != nil {
		return 1 + int64(len(r.Rec.Ops))
	}
	return 1
}

// cellEntry is one memo-cache slot. done is closed when val/err are
// set; waiters block on it so each cell is computed exactly once even
// under concurrent requests.
type cellEntry struct {
	cell   Cell
	done   chan struct{}
	val    CellResult
	err    error
	weight int64
	elem   *list.Element
}

// defaultCellWeight bounds the memo cache: roughly the micro-op count
// held by cached windows (~32 bytes per op, so 4M ≈ 128MB) plus one
// unit per light cell.
const defaultCellWeight = 4 << 20

var cellCache = struct {
	sync.Mutex
	m      map[Cell]*cellEntry
	lru    *list.List // front = most recently used
	weight int64      // total weight of completed entries
	cap    int64
	hits   uint64
	misses uint64
}{m: make(map[Cell]*cellEntry), lru: list.New(), cap: defaultCellWeight}

// getCell returns the memoized result for a cell, computing it on the
// first request. The second return reports whether the entry already
// existed (a cache hit, including joins on an in-flight computation).
//
// Cancellation never poisons the cache: a computation aborted by its
// requester's ctx is removed from the cache, and a waiter whose own ctx
// is still live retries (recomputing under its own ctx) instead of
// inheriting another caller's cancellation.
func getCell(ctx context.Context, c Cell) (CellResult, bool, error) {
	if c.Threads < 1 {
		// 0 and 1 mean the same encode (see encoders.Options.Threads);
		// fold them to one cache key so the spellings share a memo entry.
		c.Threads = 1
	}
	for {
		res, hit, err := getCellOnce(ctx, c)
		if hit && err != nil && ctx.Err() == nil && isCancellation(err) {
			// We joined a computation that its own requester cancelled;
			// the entry has been dropped, so try again under our ctx.
			continue
		}
		return res, hit, err
	}
}

// isCancellation reports whether err is a context cancellation or
// deadline error (possibly wrapped by task labels).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func getCellOnce(ctx context.Context, c Cell) (CellResult, bool, error) {
	cellCache.Lock()
	if e, ok := cellCache.m[c]; ok {
		cellCache.lru.MoveToFront(e.elem)
		cellCache.hits++
		cellCache.Unlock()
		obsCellHits.Add(1)
		select {
		case <-e.done:
			return e.val, true, e.err
		case <-ctx.Done():
			// Abandon the wait; the computation continues for others.
			return CellResult{}, true, ctx.Err()
		}
	}
	e := &cellEntry{cell: c, done: make(chan struct{})}
	e.elem = cellCache.lru.PushFront(e)
	cellCache.m[c] = e
	cellCache.misses++
	cellCache.Unlock()
	obsCellMisses.Add(1)

	e.val, e.err = c.run(ctx)
	close(e.done)

	cellCache.Lock()
	if e.err != nil && isCancellation(e.err) {
		// Drop the aborted entry so the next request recomputes.
		if _, ok := cellCache.m[c]; ok && cellCache.m[c] == e {
			cellCache.lru.Remove(e.elem)
			delete(cellCache.m, c)
		}
		cellCache.Unlock()
		return e.val, false, e.err
	}
	e.weight = e.val.weight()
	cellCache.weight += e.weight
	evictCellsLocked()
	cellCache.Unlock()
	return e.val, false, e.err
}

// evictCellsLocked drops least-recently-used completed entries until the
// cache is back under its weight budget. In-flight entries (weight 0)
// are never evicted; dropped cells are simply recomputed on next use.
func evictCellsLocked() {
	for cellCache.weight > cellCache.cap {
		evicted := false
		for el := cellCache.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cellEntry)
			if e.weight == 0 {
				continue // still computing
			}
			cellCache.lru.Remove(el)
			delete(cellCache.m, e.cell)
			cellCache.weight -= e.weight
			evicted = true
			break
		}
		if !evicted {
			return // everything left is in flight
		}
	}
}

// CacheStats is a snapshot of the cell memo cache.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
	Weight  int64
	Cap     int64
}

// CellCacheStats reports hit/miss counts and occupancy.
func CellCacheStats() CacheStats {
	cellCache.Lock()
	defer cellCache.Unlock()
	return CacheStats{
		Hits:    cellCache.hits,
		Misses:  cellCache.misses,
		Entries: len(cellCache.m),
		Weight:  cellCache.weight,
		Cap:     cellCache.cap,
	}
}

// ResetCellCache empties the memo cache and its counters. Benchmarks
// call it to measure uncached runs; tests call it to force fresh
// computation. Entries still being computed are abandoned to their
// current waiters and recomputed on the next request.
func ResetCellCache() {
	cellCache.Lock()
	defer cellCache.Unlock()
	cellCache.m = make(map[Cell]*cellEntry)
	cellCache.lru = list.New()
	cellCache.weight = 0
	cellCache.hits = 0
	cellCache.misses = 0
}

// setCellCacheCap adjusts the eviction budget (test hook).
func setCellCacheCap(w int64) {
	cellCache.Lock()
	cellCache.cap = w
	evictCellsLocked()
	cellCache.Unlock()
}
