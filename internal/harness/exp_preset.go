package harness

import (
	"vcprof/internal/encoders"
)

func init() {
	register(Experiment{ID: "fig11", Title: "Preset sweep for game1: runtime, bitrate/PSNR, top-down, MPKIs, stalls", Plan: planFig11})
}

// fig11CRF is the fixed quality point of the preset sweep.
const fig11CRF = 30

// planFig11 sweeps SVT-AV1's speed preset 0..8 at fixed CRF on game1
// and reports the five panels of Fig. 11: (a) runtime, (b) bitrate and
// PSNR, (c) top-down, (d) branch/cache MPKI, (e) resource stalls.
func planFig11(s Scale) (*Plan, error) {
	var cells []Cell
	statIdx := make([]int, 9)
	pipeIdx := make([]int, 9)
	for preset := 0; preset <= 8; preset++ {
		statIdx[preset] = len(cells)
		cells = append(cells, s.StatCell(encoders.SVTAV1, "game1", fig11CRF, preset))
	}
	for preset := 0; preset <= 8; preset++ {
		pipeIdx[preset] = len(cells)
		cells = append(cells, s.PipelineCell(encoders.SVTAV1, "game1", fig11CRF, preset))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		tA := &Table{ID: "fig11a", Title: "runtime vs preset (CRF 30, game1)",
			Header: []string{"preset", "time_ms", "insts_m"}}
		tB := &Table{ID: "fig11b", Title: "bitrate and PSNR vs preset",
			Header: []string{"preset", "kbps", "psnr_db"}}
		tC := &Table{ID: "fig11c", Title: "top-down vs preset",
			Header: []string{"preset", "retiring", "badspec", "frontend", "backend"}}
		tD := &Table{ID: "fig11d", Title: "MPKIs vs preset",
			Header: []string{"preset", "branch_mpki", "l1d_mpki", "l2_mpki", "llc_mpki"}}
		tE := &Table{ID: "fig11e", Title: "resource stalls per kilo-instruction vs preset",
			Header: []string{"preset", "fu_spki", "rs_spki", "lq_spki", "rob_spki"}}
		for preset := 0; preset <= 8; preset++ {
			st := res[statIdx[preset]].Stat
			p := d(uint64(preset))
			tA.AddRow(p, f2(st.ModeledMS()), f2(float64(st.Instructions)/1e6))
			tB.AddRow(p, f1(st.BitrateKbps), f2(st.PSNR))
			tC.AddRow(p, f3(st.TopDown.Retiring), f3(st.TopDown.BadSpec), f3(st.TopDown.Frontend), f3(st.TopDown.Backend))
			tD.AddRow(p, f3(st.BranchMPKI), f2(st.L1DMPKI), f2(st.L2MPKI), f3(st.LLCMPKI))

			pr := res[pipeIdx[preset]].Pipe
			k := float64(pr.Ops) / 1000
			tE.AddRow(p, f2(float64(pr.StallFU)/k), f2(float64(pr.StallRS)/k),
				f2(float64(pr.StallLQ)/k), f2(float64(pr.StallROB)/k))
		}
		return []*Table{tA, tB, tC, tD, tE}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}
