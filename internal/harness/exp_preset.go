package harness

import (
	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/uarch/pipeline"
)

func init() {
	register(Experiment{ID: "fig11", Title: "Preset sweep for game1: runtime, bitrate/PSNR, top-down, MPKIs, stalls", Run: runFig11})
}

// runFig11 sweeps SVT-AV1's speed preset 0..8 at fixed CRF on game1 and
// reports the five panels of Fig. 11: (a) runtime, (b) bitrate and PSNR,
// (c) top-down, (d) branch/cache MPKI, (e) resource stalls.
func runFig11(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	enc, err := encoders.New(encoders.SVTAV1)
	if err != nil {
		return nil, err
	}
	const crf = 30
	tA := &Table{ID: "fig11a", Title: "runtime vs preset (CRF 30, game1)",
		Header: []string{"preset", "time_ms", "insts_m"}}
	tB := &Table{ID: "fig11b", Title: "bitrate and PSNR vs preset",
		Header: []string{"preset", "kbps", "psnr_db"}}
	tC := &Table{ID: "fig11c", Title: "top-down vs preset",
		Header: []string{"preset", "retiring", "badspec", "frontend", "backend"}}
	tD := &Table{ID: "fig11d", Title: "MPKIs vs preset",
		Header: []string{"preset", "branch_mpki", "l1d_mpki", "l2_mpki", "llc_mpki"}}
	tE := &Table{ID: "fig11e", Title: "resource stalls per kilo-instruction vs preset",
		Header: []string{"preset", "fu_spki", "rs_spki", "lq_spki", "rob_spki"}}
	sim, err := pipeline.New(pipeline.Broadwell())
	if err != nil {
		return nil, err
	}
	for preset := 0; preset <= 8; preset++ {
		st, err := perf.Stat(enc, clip, encoders.Options{CRF: crf, Preset: preset})
		if err != nil {
			return nil, err
		}
		p := d(uint64(preset))
		tA.AddRow(p, f2(st.WallSeconds*1000), f2(float64(st.Instructions)/1e6))
		tB.AddRow(p, f1(st.BitrateKbps), f2(st.PSNR))
		tC.AddRow(p, f3(st.TopDown.Retiring), f3(st.TopDown.BadSpec), f3(st.TopDown.Frontend), f3(st.TopDown.Backend))
		tD.AddRow(p, f3(st.BranchMPKI), f2(st.L1DMPKI), f2(st.L2MPKI), f3(st.LLCMPKI))

		rec, _, err := perf.RecordWindow(enc, clip, encoders.Options{CRF: crf, Preset: preset}, 0.5, s.WindowOps)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(rec.Ops)
		if err != nil {
			return nil, err
		}
		k := float64(res.Ops) / 1000
		tE.AddRow(p, f2(float64(res.StallFU)/k), f2(float64(res.StallRS)/k),
			f2(float64(res.StallLQ)/k), f2(float64(res.StallROB)/k))
	}
	return []*Table{tA, tB, tC, tD, tE}, nil
}
