// Deterministic observation of engine runs. Spans are assembled after
// each experiment's parallel section completes, walking the cell grid
// in index order on the experiment's own lane, so the trace is
// byte-identical for any worker count: the parallel execution decides
// nothing about the trace but how fast it was produced. Durations are
// modeled quantities per cell kind (instructions, recorded micro-ops,
// simulated cycles, task-graph work) — never host time.
package harness

import (
	"vcprof/internal/encoders"
	"vcprof/internal/obs"
)

// Engine counters. The cell/clip cache counters are deterministic:
// each distinct cell is computed exactly once (joins and repeats are
// hits), so the split depends only on the requested grids, not on
// scheduling. Worker occupancy is genuinely scheduling-dependent and
// therefore volatile — it renders for humans but never enters goldens.
var (
	obsExperiments   = obs.NewCounter("harness.engine.experiments")
	obsCells         = obs.NewCounter("harness.engine.cells")
	obsCellHits      = obs.NewCounter("harness.cellcache.hits")
	obsCellMisses    = obs.NewCounter("harness.cellcache.misses")
	obsClipGens      = obs.NewCounter("harness.clipcache.generations")
	obsOccupancyPeak = obs.NewVolatileCounter("harness.engine.occupancy_peak")
)

var (
	obsExperimentName = obs.Name("experiment")
	obsCellNames      = func() [5]obs.NameID {
		var a [5]obs.NameID
		for k := range a {
			a[k] = obs.Name("cell/" + CellKind(k).String())
		}
		return a
	}()
)

// observeExperiment replays one completed experiment onto its session
// lane. res is indexed like cells (the engine's assembly contract).
func observeExperiment(tr *obs.Trace, e Experiment, cells []Cell, res []CellResult) {
	if !tr.Enabled() {
		return
	}
	root := tr.BeginArg(obsExperimentName, e.ID)
	for i, c := range cells {
		nm := obs.Name("cell/" + c.Kind.String())
		if int(c.Kind) < len(obsCellNames) {
			nm = obsCellNames[c.Kind]
		}
		sp := tr.BeginArg(nm, c.String())
		r := res[i]
		switch {
		case r.Enc != nil:
			encoders.ObserveFrameStages(tr, r.Enc.FrameStages)
		case r.Stat != nil:
			encoders.ObserveFrameStages(tr, r.Stat.FrameStages)
		case r.Rec != nil:
			tr.Advance(uint64(len(r.Rec.Ops)))
		case r.Pipe != nil:
			tr.Advance(r.Pipe.Cycles)
		case r.Sched != nil:
			tr.Advance(r.Sched.TotalWork())
		}
		sp.End()
	}
	root.End()
}

// observeStageHistograms feeds each completed cell's per-frame stage
// counts into the deterministic encode-stage histograms. Runs after
// the parallel section like observeExperiment, but is not
// session-gated: histograms accumulate registry-wide regardless of
// tracing, and the observed values are modeled counts, so totals stay
// worker-count independent.
func observeStageHistograms(res []CellResult) {
	for _, r := range res {
		switch {
		case r.Enc != nil:
			encoders.ObserveStageHistograms(r.Enc.FrameStages)
		case r.Stat != nil:
			encoders.ObserveStageHistograms(r.Stat.FrameStages)
		}
	}
}
