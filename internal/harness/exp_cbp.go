package harness

import (
	"fmt"

	"vcprof/internal/cbp"
	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/uarch/bpred"
)

func init() {
	register(Experiment{ID: "fig8", Title: "Simulated branch MPKI per video (preset 8, CRF 63)", Run: cbpExperiment("fig8", 8, 63)})
	register(Experiment{ID: "fig9", Title: "Simulated branch MPKI per video (preset 4, CRF 10)", Run: cbpExperiment("fig9", 4, 10)})
	register(Experiment{ID: "fig10", Title: "Simulated branch MPKI per video (preset 4, CRF 60)", Run: cbpExperiment("fig10", 4, 60)})
}

// cbpExperiment records a halfway micro-op window from each clip's
// SVT-AV1 encode at the given operating point and scores the paper's
// four predictors on its branches, reproducing Figs. 8–10.
func cbpExperiment(id string, preset, crf int) func(Scale) ([]*Table, error) {
	return func(s Scale) ([]*Table, error) {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		enc, err := encoders.New(encoders.SVTAV1)
		if err != nil {
			return nil, err
		}
		var traces []cbp.Trace
		for _, name := range s.clipNames() {
			clip, err := s.Clip(name)
			if err != nil {
				return nil, err
			}
			rec, _, err := perf.RecordWindow(enc, clip, encoders.Options{CRF: crf, Preset: preset}, 0.5, s.WindowOps)
			if err != nil {
				return nil, fmt.Errorf("%s: record %s: %w", id, name, err)
			}
			tr, err := cbp.FromRecorder(name, rec)
			if err != nil {
				return nil, err
			}
			traces = append(traces, tr)
		}
		scores, err := cbp.Championship(bpred.PaperSet(), traces)
		if err != nil {
			return nil, err
		}
		preds := bpred.PaperSet()
		tm := &Table{ID: id, Title: fmt.Sprintf("branch MPKI per predictor (preset %d, CRF %d)", preset, crf),
			Header: append([]string{"video"}, preds...)}
		tr := &Table{ID: id + "-missrate", Title: fmt.Sprintf("branch miss rate %% per predictor (preset %d, CRF %d)", preset, crf),
			Header: append([]string{"video"}, preds...)}
		byKey := map[[2]string]cbp.Score{}
		for _, sc := range scores {
			byKey[[2]string{sc.Trace, sc.Predictor}] = sc
		}
		for _, name := range s.clipNames() {
			rowM := []string{name}
			rowR := []string{name}
			for _, p := range preds {
				sc := byKey[[2]string{name, p}]
				rowM = append(rowM, f3(sc.MPKI))
				rowR = append(rowR, f2(sc.MissRate*100))
			}
			tm.AddRow(rowM...)
			tr.AddRow(rowR...)
		}
		return []*Table{tm, tr}, nil
	}
}
