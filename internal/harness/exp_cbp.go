package harness

import (
	"fmt"

	"vcprof/internal/cbp"
	"vcprof/internal/encoders"
	"vcprof/internal/uarch/bpred"
)

func init() {
	register(Experiment{ID: "fig8", Title: "Simulated branch MPKI per video (preset 8, CRF 63)", Plan: cbpPlan("fig8", 8, 63)})
	register(Experiment{ID: "fig9", Title: "Simulated branch MPKI per video (preset 4, CRF 10)", Plan: cbpPlan("fig9", 4, 10)})
	register(Experiment{ID: "fig10", Title: "Simulated branch MPKI per video (preset 4, CRF 60)", Plan: cbpPlan("fig10", 4, 60)})
}

// cbpPlan records a halfway micro-op window from each clip's SVT-AV1
// encode at the given operating point (one window cell per clip) and
// scores the paper's four predictors on its branches, reproducing
// Figs. 8–10. At preset 4 the CRF 10/60 window cells coincide with
// fig6's grid wherever the scale sweeps those CRFs.
func cbpPlan(id string, preset, crf int) func(Scale) (*Plan, error) {
	return func(s Scale) (*Plan, error) {
		var cells []Cell
		for _, name := range s.clipNames() {
			cells = append(cells, s.WindowCell(encoders.SVTAV1, name, crf, preset))
		}
		assemble := func(s Scale, res []CellResult) ([]*Table, error) {
			var traces []cbp.Trace
			for i, name := range s.clipNames() {
				tr, err := cbp.FromRecorder(name, res[i].Rec)
				if err != nil {
					return nil, fmt.Errorf("%s: trace %s: %w", id, name, err)
				}
				traces = append(traces, tr)
			}
			scores, err := cbp.Championship(bpred.PaperSet(), traces)
			if err != nil {
				return nil, err
			}
			preds := bpred.PaperSet()
			tm := &Table{ID: id, Title: fmt.Sprintf("branch MPKI per predictor (preset %d, CRF %d)", preset, crf),
				Header: append([]string{"video"}, preds...)}
			tr := &Table{ID: id + "-missrate", Title: fmt.Sprintf("branch miss rate %% per predictor (preset %d, CRF %d)", preset, crf),
				Header: append([]string{"video"}, preds...)}
			byKey := map[[2]string]cbp.Score{}
			for _, sc := range scores {
				byKey[[2]string{sc.Trace, sc.Predictor}] = sc
			}
			for _, name := range s.clipNames() {
				rowM := []string{name}
				rowR := []string{name}
				for _, p := range preds {
					sc := byKey[[2]string{name, p}]
					rowM = append(rowM, f3(sc.MPKI))
					rowR = append(rowR, f2(sc.MissRate*100))
				}
				tm.AddRow(rowM...)
				tr.AddRow(rowR...)
			}
			return []*Table{tm, tr}, nil
		}
		return &Plan{Cells: cells, Assemble: assemble}, nil
	}
}
