package harness

import (
	"fmt"

	"vcprof/internal/cbp"
	"vcprof/internal/encoders"
	"vcprof/internal/perf"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/cache"
)

func init() {
	register(Experiment{ID: "ablation-partition", Title: "Partition-space ablation: AV1's 10 shapes vs a VP9-like 4", Run: runAblationPartition})
	register(Experiment{ID: "ablation-predictor", Title: "Predictor-family ablation at equal budget (gshare/TAGE/perceptron)", Run: runAblationPredictor})
	register(Experiment{ID: "ablation-cache", Title: "Cache-geometry ablation on an encoder access stream", Run: runAblationCache})
	register(Experiment{ID: "ablation-motion", Title: "Motion-search ablation: hex vs diamond vs full", Run: runAblationMotion})
	register(Experiment{ID: "ablation-prefetch", Title: "L2 prefetcher ablation on an encoder access stream", Run: runAblationPrefetch})
}

// runAblationPartition isolates the paper's central claim — the AV1
// runtime gap is search-space driven — by comparing the SVT-AV1 model
// (10 partition shapes) with the VP9 model (4 shapes) at the same CRF
// point, where everything else in the toolkit is shared code.
func runAblationPartition(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ablation-partition", Title: "search-space driven instruction gap",
		Header: []string{"encoder", "shapes", "insts_m", "kbps", "psnr_db"}}
	for _, row := range []struct {
		fam    encoders.Family
		shapes string
	}{
		{encoders.SVTAV1, "10"},
		{encoders.VP9, "4"},
	} {
		res, err := runCounted(row.fam, clip, 35, 4)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(row.fam), row.shapes, f2(float64(res.Insts)/1e6), f1(res.BitrateKbps), f2(res.PSNR))
	}
	return []*Table{t}, nil
}

func runAblationPredictor(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	enc, err := encoders.New(encoders.SVTAV1)
	if err != nil {
		return nil, err
	}
	rec, _, err := perf.RecordWindow(enc, clip, encoders.Options{CRF: 35, Preset: 4}, 0.5, s.WindowOps)
	if err != nil {
		return nil, err
	}
	tr, err := cbp.FromRecorder("game1", rec)
	if err != nil {
		return nil, err
	}
	// Equal ~8KB budget across four families, plus a bimodal floor; the
	// loop-augmented TAGE (the TAGE-SC-L component of the paper's [33])
	// targets the fixed-trip-count kernel loops encoders are full of.
	names := []string{"bimodal-8KB", "gshare-2KB", "tage-8KB", "perceptron-8KB", "tage-l-8KB"}
	scores, err := cbp.Championship(names, []cbp.Trace{tr})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ablation-predictor", Title: "predictor families on one encoder trace",
		Header: []string{"predictor", "missrate_pct", "mpki"}}
	for _, sc := range scores {
		t.AddRow(sc.Predictor, f2(sc.MissRate*100), f3(sc.MPKI))
	}
	return []*Table{t}, nil
}

// runAblationCache replays one recorded window against alternative
// cache geometries (paper machine vs smaller LLC vs bigger L2).
func runAblationCache(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	enc, err := encoders.New(encoders.SVTAV1)
	if err != nil {
		return nil, err
	}
	rec, total, err := perf.RecordWindow(enc, clip, encoders.Options{CRF: 35, Preset: 4}, 0.5, s.WindowOps)
	if err != nil {
		return nil, err
	}
	_ = total
	l1, l2, llc := cache.XeonE52650v4()
	geos := []struct {
		name           string
		l1c, l2c, llcc cache.Config
	}{
		{"xeon(32K/256K/30M)", l1, l2, llc},
		{"small-llc(32K/256K/8M)", l1, l2, cache.Config{Name: "LLC", SizeBytes: 8 << 20, Assoc: 16, LatencyCyc: 30}},
		{"big-l2(32K/1M/30M)", l1, cache.Config{Name: "L2", SizeBytes: 1 << 20, Assoc: 16, LatencyCyc: 14}, llc},
	}
	t := &Table{ID: "ablation-cache", Title: "MPKI under alternative cache geometries",
		Header: []string{"geometry", "l1d_mpki", "l2_mpki", "llc_mpki"}}
	for _, g := range geos {
		h, err := cache.NewHierarchy(g.l1c, g.l2c, g.llcc)
		if err != nil {
			return nil, err
		}
		var n uint64
		for _, op := range rec.Ops {
			if op.IsMem() {
				h.SpanAccess(op.Addr, int(op.Size), op.Class == trace.OpStore)
			}
			n++
		}
		a, b, c := h.MPKI(n)
		t.AddRow(g.name, f2(a), f2(b), f3(c))
	}
	return []*Table{t}, nil
}

// runAblationPrefetch replays one window's memory stream through the
// hierarchy with no prefetcher, a next-line prefetcher and a stride
// prefetcher: the encoder's row scans are stride-friendly, so both
// schemes recover streaming misses.
func runAblationPrefetch(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	enc, err := encoders.New(encoders.SVTAV1)
	if err != nil {
		return nil, err
	}
	rec, _, err := perf.RecordWindow(enc, clip, encoders.Options{CRF: 55, Preset: 6}, 0.5, s.WindowOps)
	if err != nil {
		return nil, err
	}
	type accessor interface {
		Access(addr uint64, store bool) int
		MPKI(insts uint64) (float64, float64, float64)
	}
	plain, err := cache.NewXeonHierarchy()
	if err != nil {
		return nil, err
	}
	nl, err := cache.NewPrefetchHierarchy(cache.NextLinePrefetcher{})
	if err != nil {
		return nil, err
	}
	st, err := cache.NewPrefetchHierarchy(&cache.StridePrefetcher{})
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "ablation-prefetch", Title: "L2 prefetching on the encoder's access stream",
		Header: []string{"prefetcher", "l1d_mpki", "l2_mpki", "llc_mpki"}}
	for _, row := range []struct {
		name string
		h    accessor
	}{{"none", plain}, {"next-line", nl}, {"stride", st}} {
		n := uint64(len(rec.Ops))
		for _, op := range rec.Ops {
			if op.IsMem() {
				row.h.Access(op.Addr, op.Class == trace.OpStore)
			}
		}
		a, b, c := row.h.MPKI(n)
		t.AddRow(row.name, f2(a), f2(b), f3(c))
	}
	return []*Table{t}, nil
}

func runAblationMotion(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	clip, err := s.Clip("game1")
	if err != nil {
		return nil, err
	}
	// Preset position selects the search algorithm in every family:
	// exercise the SVT-AV1 model across the presets whose toolsets use
	// hex (8), diamond (4) and full (0) search.
	t := &Table{ID: "ablation-motion", Title: "motion search strategy cost/quality (SVT-AV1 presets 8/4/0)",
		Header: []string{"preset", "search", "insts_m", "psnr_db", "kbps"}}
	for _, row := range []struct {
		preset int
		search string
	}{{8, "hex"}, {4, "diamond"}, {0, "full"}} {
		res, err := runCounted(encoders.SVTAV1, clip, 35, row.preset)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", row.preset), row.search,
			f2(float64(res.Insts)/1e6), f2(res.PSNR), f1(res.BitrateKbps))
	}
	return []*Table{t}, nil
}
