package harness

import (
	"fmt"

	"vcprof/internal/cbp"
	"vcprof/internal/encoders"
	"vcprof/internal/trace"
	"vcprof/internal/uarch/cache"
)

func init() {
	register(Experiment{ID: "ablation-partition", Title: "Partition-space ablation: AV1's 10 shapes vs a VP9-like 4", Plan: planAblationPartition})
	register(Experiment{ID: "ablation-predictor", Title: "Predictor-family ablation at equal budget (gshare/TAGE/perceptron)", Plan: planAblationPredictor})
	register(Experiment{ID: "ablation-cache", Title: "Cache-geometry ablation on an encoder access stream", Plan: planAblationCache})
	register(Experiment{ID: "ablation-motion", Title: "Motion-search ablation: hex vs diamond vs full", Plan: planAblationMotion})
	register(Experiment{ID: "ablation-prefetch", Title: "L2 prefetcher ablation on an encoder access stream", Plan: planAblationPrefetch})
}

// planAblationPartition isolates the paper's central claim — the AV1
// runtime gap is search-space driven — by comparing the SVT-AV1 model
// (10 partition shapes) with the VP9 model (4 shapes) at the same CRF
// point, where everything else in the toolkit is shared code.
func planAblationPartition(s Scale) (*Plan, error) {
	rows := []struct {
		fam    encoders.Family
		shapes string
	}{
		{encoders.SVTAV1, "10"},
		{encoders.VP9, "4"},
	}
	var cells []Cell
	for _, row := range rows {
		cells = append(cells, s.CountedCell(row.fam, "game1", 35, 4))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "ablation-partition", Title: "search-space driven instruction gap",
			Header: []string{"encoder", "shapes", "insts_m", "kbps", "psnr_db"}}
		for i, row := range rows {
			r := res[i].Enc
			t.AddRow(string(row.fam), row.shapes, f2(float64(r.Insts)/1e6), f1(r.BitrateKbps), f2(r.PSNR))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

func planAblationPredictor(s Scale) (*Plan, error) {
	cells := []Cell{s.WindowCell(encoders.SVTAV1, "game1", 35, 4)}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		tr, err := cbp.FromRecorder("game1", res[0].Rec)
		if err != nil {
			return nil, err
		}
		// Equal ~8KB budget across four families, plus a bimodal floor; the
		// loop-augmented TAGE (the TAGE-SC-L component of the paper's [33])
		// targets the fixed-trip-count kernel loops encoders are full of.
		names := []string{"bimodal-8KB", "gshare-2KB", "tage-8KB", "perceptron-8KB", "tage-l-8KB"}
		scores, err := cbp.Championship(names, []cbp.Trace{tr})
		if err != nil {
			return nil, err
		}
		t := &Table{ID: "ablation-predictor", Title: "predictor families on one encoder trace",
			Header: []string{"predictor", "missrate_pct", "mpki"}}
		for _, sc := range scores {
			t.AddRow(sc.Predictor, f2(sc.MissRate*100), f3(sc.MPKI))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

// planAblationCache replays one recorded window against alternative
// cache geometries (paper machine vs smaller LLC vs bigger L2). Its
// window cell is the same one ablation-predictor records.
func planAblationCache(s Scale) (*Plan, error) {
	cells := []Cell{s.WindowCell(encoders.SVTAV1, "game1", 35, 4)}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		rec := res[0].Rec
		l1, l2, llc := cache.XeonE52650v4()
		geos := []struct {
			name           string
			l1c, l2c, llcc cache.Config
		}{
			{"xeon(32K/256K/30M)", l1, l2, llc},
			{"small-llc(32K/256K/8M)", l1, l2, cache.Config{Name: "LLC", SizeBytes: 8 << 20, Assoc: 16, LatencyCyc: 30}},
			{"big-l2(32K/1M/30M)", l1, cache.Config{Name: "L2", SizeBytes: 1 << 20, Assoc: 16, LatencyCyc: 14}, llc},
		}
		t := &Table{ID: "ablation-cache", Title: "MPKI under alternative cache geometries",
			Header: []string{"geometry", "l1d_mpki", "l2_mpki", "llc_mpki"}}
		for _, g := range geos {
			h, err := cache.NewHierarchy(g.l1c, g.l2c, g.llcc)
			if err != nil {
				return nil, err
			}
			var n uint64
			for _, op := range rec.Ops {
				if op.IsMem() {
					h.SpanAccess(op.Addr, int(op.Size), op.Class == trace.OpStore)
				}
				n++
			}
			a, b, c := h.MPKI(n)
			t.AddRow(g.name, f2(a), f2(b), f3(c))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

// planAblationPrefetch replays one window's memory stream through the
// hierarchy with no prefetcher, a next-line prefetcher and a stride
// prefetcher: the encoder's row scans are stride-friendly, so both
// schemes recover streaming misses.
func planAblationPrefetch(s Scale) (*Plan, error) {
	cells := []Cell{s.WindowCell(encoders.SVTAV1, "game1", 55, 6)}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		rec := res[0].Rec
		type accessor interface {
			Access(addr uint64, store bool) int
			MPKI(insts uint64) (float64, float64, float64)
		}
		plain, err := cache.NewXeonHierarchy()
		if err != nil {
			return nil, err
		}
		nl, err := cache.NewPrefetchHierarchy(cache.NextLinePrefetcher{})
		if err != nil {
			return nil, err
		}
		st, err := cache.NewPrefetchHierarchy(&cache.StridePrefetcher{})
		if err != nil {
			return nil, err
		}
		t := &Table{ID: "ablation-prefetch", Title: "L2 prefetching on the encoder's access stream",
			Header: []string{"prefetcher", "l1d_mpki", "l2_mpki", "llc_mpki"}}
		for _, row := range []struct {
			name string
			h    accessor
		}{{"none", plain}, {"next-line", nl}, {"stride", st}} {
			n := uint64(len(rec.Ops))
			for _, op := range rec.Ops {
				if op.IsMem() {
					row.h.Access(op.Addr, op.Class == trace.OpStore)
				}
			}
			a, b, c := row.h.MPKI(n)
			t.AddRow(row.name, f2(a), f2(b), f3(c))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}

func planAblationMotion(s Scale) (*Plan, error) {
	// Preset position selects the search algorithm in every family:
	// exercise the SVT-AV1 model across the presets whose toolsets use
	// hex (8), diamond (4) and full (0) search.
	rows := []struct {
		preset int
		search string
	}{{8, "hex"}, {4, "diamond"}, {0, "full"}}
	var cells []Cell
	for _, row := range rows {
		cells = append(cells, s.CountedCell(encoders.SVTAV1, "game1", 35, row.preset))
	}
	assemble := func(s Scale, res []CellResult) ([]*Table, error) {
		t := &Table{ID: "ablation-motion", Title: "motion search strategy cost/quality (SVT-AV1 presets 8/4/0)",
			Header: []string{"preset", "search", "insts_m", "psnr_db", "kbps"}}
		for i, row := range rows {
			r := res[i].Enc
			t.AddRow(fmt.Sprintf("%d", row.preset), row.search,
				f2(float64(r.Insts)/1e6), f2(r.PSNR), f1(r.BitrateKbps))
		}
		return []*Table{t}, nil
	}
	return &Plan{Cells: cells, Assemble: assemble}, nil
}
