package harness

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// update regenerates the golden files:
//
//	go test ./internal/harness -run Golden -update
var update = flag.Bool("update", false, "rewrite golden table files")

// goldenScale pins the configuration the golden files were rendered at.
// It must never change silently: every value below is part of the
// regression contract, and the harness is deterministic at a fixed
// scale (procedural clips, simulated encoders, modeled wall time), so
// CSV output is byte-stable across runs and hosts.
func goldenScale() Scale {
	return QuickScale()
}

const goldenDir = "testdata/golden"

// TestGoldenTables regenerates every registered experiment at the
// golden scale and compares each table's CSV rendering byte-for-byte
// with the checked-in file. A diff means an intentional change
// (regenerate with -update and review the diff) or a regression.
func TestGoldenTables(t *testing.T) {
	if raceEnabled {
		t.Skip("value determinism is covered without -race; the race pass runs the worker-equivalence suite instead")
	}
	ResetCellCache()
	rep, err := RunAll(context.Background(), goldenScale(), Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(List()) {
		t.Fatalf("ran %d experiments, registry has %d", len(rep.Results), len(List()))
	}
	seen := map[string]bool{}
	var missing int
	for _, er := range rep.Results {
		if len(er.Tables) == 0 {
			t.Errorf("%s produced no tables", er.ID)
		}
		for _, tab := range er.Tables {
			if seen[tab.ID] {
				t.Fatalf("duplicate table ID %q: golden files need unique names", tab.ID)
			}
			seen[tab.ID] = true
			path := filepath.Join(goldenDir, tab.ID+".csv")
			got := tab.CSV()
			if *update {
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				missing++
				t.Errorf("%s: no golden file for table %s (run with -update): %v", er.ID, tab.ID, err)
				continue
			}
			if got != string(want) {
				t.Errorf("%s: table %s differs from golden file %s\n%s", er.ID, tab.ID, path, firstDiff(string(want), got))
			}
		}
	}
	if *update {
		t.Logf("golden files rewritten under %s", goldenDir)
		return
	}
	// Every golden file must correspond to a live table — stale files
	// mean an experiment was renamed without regenerating.
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("golden dir missing (run with -update): %v", err)
	}
	for _, e := range entries {
		id := e.Name()
		if filepath.Ext(id) != ".csv" {
			continue
		}
		id = id[:len(id)-len(".csv")]
		if !seen[id] {
			t.Errorf("stale golden file %s: no experiment renders table %q", e.Name(), id)
		}
	}
}

// firstDiff renders the first divergent line of two CSV strings.
func firstDiff(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, w, g)
		}
	}
	return "(identical?)"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
